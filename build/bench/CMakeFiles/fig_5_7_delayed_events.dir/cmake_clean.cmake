file(REMOVE_RECURSE
  "CMakeFiles/fig_5_7_delayed_events.dir/fig_5_7_delayed_events.cpp.o"
  "CMakeFiles/fig_5_7_delayed_events.dir/fig_5_7_delayed_events.cpp.o.d"
  "fig_5_7_delayed_events"
  "fig_5_7_delayed_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_7_delayed_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
