# Empty dependencies file for fig_5_7_delayed_events.
# This may be replaced when dependencies are built.
