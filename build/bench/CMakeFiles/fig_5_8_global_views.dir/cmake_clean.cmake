file(REMOVE_RECURSE
  "CMakeFiles/fig_5_8_global_views.dir/fig_5_8_global_views.cpp.o"
  "CMakeFiles/fig_5_8_global_views.dir/fig_5_8_global_views.cpp.o.d"
  "fig_5_8_global_views"
  "fig_5_8_global_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_8_global_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
