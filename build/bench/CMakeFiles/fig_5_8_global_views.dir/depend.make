# Empty dependencies file for fig_5_8_global_views.
# This may be replaced when dependencies are built.
