file(REMOVE_RECURSE
  "CMakeFiles/fig_5_9_comm_frequency.dir/fig_5_9_comm_frequency.cpp.o"
  "CMakeFiles/fig_5_9_comm_frequency.dir/fig_5_9_comm_frequency.cpp.o.d"
  "fig_5_9_comm_frequency"
  "fig_5_9_comm_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_9_comm_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
