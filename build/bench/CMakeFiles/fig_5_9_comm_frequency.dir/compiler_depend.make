# Empty compiler generated dependencies file for fig_5_9_comm_frequency.
# This may be replaced when dependencies are built.
