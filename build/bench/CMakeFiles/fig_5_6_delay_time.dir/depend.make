# Empty dependencies file for fig_5_6_delay_time.
# This may be replaced when dependencies are built.
