file(REMOVE_RECURSE
  "CMakeFiles/fig_5_6_delay_time.dir/fig_5_6_delay_time.cpp.o"
  "CMakeFiles/fig_5_6_delay_time.dir/fig_5_6_delay_time.cpp.o.d"
  "fig_5_6_delay_time"
  "fig_5_6_delay_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_6_delay_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
