file(REMOVE_RECURSE
  "CMakeFiles/table_5_1_transitions.dir/table_5_1_transitions.cpp.o"
  "CMakeFiles/table_5_1_transitions.dir/table_5_1_transitions.cpp.o.d"
  "table_5_1_transitions"
  "table_5_1_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_5_1_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
