# Empty dependencies file for table_5_1_transitions.
# This may be replaced when dependencies are built.
