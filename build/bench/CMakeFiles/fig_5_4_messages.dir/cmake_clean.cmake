file(REMOVE_RECURSE
  "CMakeFiles/fig_5_4_messages.dir/fig_5_4_messages.cpp.o"
  "CMakeFiles/fig_5_4_messages.dir/fig_5_4_messages.cpp.o.d"
  "fig_5_4_messages"
  "fig_5_4_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_4_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
