# Empty compiler generated dependencies file for fig_5_4_messages.
# This may be replaced when dependencies are built.
