file(REMOVE_RECURSE
  "CMakeFiles/fig_5_5_messages.dir/fig_5_5_messages.cpp.o"
  "CMakeFiles/fig_5_5_messages.dir/fig_5_5_messages.cpp.o.d"
  "fig_5_5_messages"
  "fig_5_5_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_5_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
