# Empty compiler generated dependencies file for fig_5_5_messages.
# This may be replaced when dependencies are built.
