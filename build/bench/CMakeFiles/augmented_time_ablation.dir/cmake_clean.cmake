file(REMOVE_RECURSE
  "CMakeFiles/augmented_time_ablation.dir/augmented_time_ablation.cpp.o"
  "CMakeFiles/augmented_time_ablation.dir/augmented_time_ablation.cpp.o.d"
  "augmented_time_ablation"
  "augmented_time_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augmented_time_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
