# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for augmented_time_ablation.
