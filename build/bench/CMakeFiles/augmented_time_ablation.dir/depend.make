# Empty dependencies file for augmented_time_ablation.
# This may be replaced when dependencies are built.
