file(REMOVE_RECURSE
  "libdecmon.a"
)
