
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/analysis.cpp" "src/CMakeFiles/decmon.dir/automata/analysis.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/automata/analysis.cpp.o.d"
  "/root/repo/src/automata/buchi.cpp" "src/CMakeFiles/decmon.dir/automata/buchi.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/automata/buchi.cpp.o.d"
  "/root/repo/src/automata/guard.cpp" "src/CMakeFiles/decmon.dir/automata/guard.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/automata/guard.cpp.o.d"
  "/root/repo/src/automata/ltl3_monitor.cpp" "src/CMakeFiles/decmon.dir/automata/ltl3_monitor.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/automata/ltl3_monitor.cpp.o.d"
  "/root/repo/src/automata/monitor_automaton.cpp" "src/CMakeFiles/decmon.dir/automata/monitor_automaton.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/automata/monitor_automaton.cpp.o.d"
  "/root/repo/src/automata/moore_minimize.cpp" "src/CMakeFiles/decmon.dir/automata/moore_minimize.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/automata/moore_minimize.cpp.o.d"
  "/root/repo/src/automata/qm_minimize.cpp" "src/CMakeFiles/decmon.dir/automata/qm_minimize.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/automata/qm_minimize.cpp.o.d"
  "/root/repo/src/core/properties.cpp" "src/CMakeFiles/decmon.dir/core/properties.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/core/properties.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/decmon.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/core/session.cpp.o.d"
  "/root/repo/src/distributed/event.cpp" "src/CMakeFiles/decmon.dir/distributed/event.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/distributed/event.cpp.o.d"
  "/root/repo/src/distributed/process.cpp" "src/CMakeFiles/decmon.dir/distributed/process.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/distributed/process.cpp.o.d"
  "/root/repo/src/distributed/replay_runtime.cpp" "src/CMakeFiles/decmon.dir/distributed/replay_runtime.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/distributed/replay_runtime.cpp.o.d"
  "/root/repo/src/distributed/sim_runtime.cpp" "src/CMakeFiles/decmon.dir/distributed/sim_runtime.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/distributed/sim_runtime.cpp.o.d"
  "/root/repo/src/distributed/thread_runtime.cpp" "src/CMakeFiles/decmon.dir/distributed/thread_runtime.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/distributed/thread_runtime.cpp.o.d"
  "/root/repo/src/distributed/trace.cpp" "src/CMakeFiles/decmon.dir/distributed/trace.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/distributed/trace.cpp.o.d"
  "/root/repo/src/lattice/augmented_time.cpp" "src/CMakeFiles/decmon.dir/lattice/augmented_time.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/lattice/augmented_time.cpp.o.d"
  "/root/repo/src/lattice/computation.cpp" "src/CMakeFiles/decmon.dir/lattice/computation.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/lattice/computation.cpp.o.d"
  "/root/repo/src/lattice/event_log.cpp" "src/CMakeFiles/decmon.dir/lattice/event_log.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/lattice/event_log.cpp.o.d"
  "/root/repo/src/lattice/lattice.cpp" "src/CMakeFiles/decmon.dir/lattice/lattice.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/lattice/lattice.cpp.o.d"
  "/root/repo/src/lattice/oracle.cpp" "src/CMakeFiles/decmon.dir/lattice/oracle.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/lattice/oracle.cpp.o.d"
  "/root/repo/src/lattice/slicer.cpp" "src/CMakeFiles/decmon.dir/lattice/slicer.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/lattice/slicer.cpp.o.d"
  "/root/repo/src/ltl/atoms.cpp" "src/CMakeFiles/decmon.dir/ltl/atoms.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/ltl/atoms.cpp.o.d"
  "/root/repo/src/ltl/formula.cpp" "src/CMakeFiles/decmon.dir/ltl/formula.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/ltl/formula.cpp.o.d"
  "/root/repo/src/ltl/parser.cpp" "src/CMakeFiles/decmon.dir/ltl/parser.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/ltl/parser.cpp.o.d"
  "/root/repo/src/ltl/simplify.cpp" "src/CMakeFiles/decmon.dir/ltl/simplify.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/ltl/simplify.cpp.o.d"
  "/root/repo/src/monitor/centralized_monitor.cpp" "src/CMakeFiles/decmon.dir/monitor/centralized_monitor.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/monitor/centralized_monitor.cpp.o.d"
  "/root/repo/src/monitor/decentralized_monitor.cpp" "src/CMakeFiles/decmon.dir/monitor/decentralized_monitor.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/monitor/decentralized_monitor.cpp.o.d"
  "/root/repo/src/monitor/global_view.cpp" "src/CMakeFiles/decmon.dir/monitor/global_view.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/monitor/global_view.cpp.o.d"
  "/root/repo/src/monitor/monitor_process.cpp" "src/CMakeFiles/decmon.dir/monitor/monitor_process.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/monitor/monitor_process.cpp.o.d"
  "/root/repo/src/monitor/predicate.cpp" "src/CMakeFiles/decmon.dir/monitor/predicate.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/monitor/predicate.cpp.o.d"
  "/root/repo/src/monitor/stats.cpp" "src/CMakeFiles/decmon.dir/monitor/stats.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/monitor/stats.cpp.o.d"
  "/root/repo/src/monitor/token.cpp" "src/CMakeFiles/decmon.dir/monitor/token.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/monitor/token.cpp.o.d"
  "/root/repo/src/monitor/wire.cpp" "src/CMakeFiles/decmon.dir/monitor/wire.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/monitor/wire.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/decmon.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/decmon.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/vector_clock.cpp" "src/CMakeFiles/decmon.dir/util/vector_clock.cpp.o" "gcc" "src/CMakeFiles/decmon.dir/util/vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
