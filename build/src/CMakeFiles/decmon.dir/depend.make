# Empty dependencies file for decmon.
# This may be replaced when dependencies are built.
