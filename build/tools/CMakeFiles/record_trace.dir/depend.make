# Empty dependencies file for record_trace.
# This may be replaced when dependencies are built.
