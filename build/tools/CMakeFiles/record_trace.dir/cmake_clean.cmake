file(REMOVE_RECURSE
  "CMakeFiles/record_trace.dir/record_trace.cpp.o"
  "CMakeFiles/record_trace.dir/record_trace.cpp.o.d"
  "record_trace"
  "record_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
