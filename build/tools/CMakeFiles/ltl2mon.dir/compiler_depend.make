# Empty compiler generated dependencies file for ltl2mon.
# This may be replaced when dependencies are built.
