file(REMOVE_RECURSE
  "CMakeFiles/ltl2mon.dir/ltl2mon.cpp.o"
  "CMakeFiles/ltl2mon.dir/ltl2mon.cpp.o.d"
  "ltl2mon"
  "ltl2mon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltl2mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
