file(REMOVE_RECURSE
  "CMakeFiles/monitor_log.dir/monitor_log.cpp.o"
  "CMakeFiles/monitor_log.dir/monitor_log.cpp.o.d"
  "monitor_log"
  "monitor_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
