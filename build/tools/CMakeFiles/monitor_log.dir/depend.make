# Empty dependencies file for monitor_log.
# This may be replaced when dependencies are built.
