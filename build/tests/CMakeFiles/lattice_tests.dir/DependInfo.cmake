
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lattice/augmented_time_test.cpp" "tests/CMakeFiles/lattice_tests.dir/lattice/augmented_time_test.cpp.o" "gcc" "tests/CMakeFiles/lattice_tests.dir/lattice/augmented_time_test.cpp.o.d"
  "/root/repo/tests/lattice/computation_test.cpp" "tests/CMakeFiles/lattice_tests.dir/lattice/computation_test.cpp.o" "gcc" "tests/CMakeFiles/lattice_tests.dir/lattice/computation_test.cpp.o.d"
  "/root/repo/tests/lattice/event_log_test.cpp" "tests/CMakeFiles/lattice_tests.dir/lattice/event_log_test.cpp.o" "gcc" "tests/CMakeFiles/lattice_tests.dir/lattice/event_log_test.cpp.o.d"
  "/root/repo/tests/lattice/oracle_test.cpp" "tests/CMakeFiles/lattice_tests.dir/lattice/oracle_test.cpp.o" "gcc" "tests/CMakeFiles/lattice_tests.dir/lattice/oracle_test.cpp.o.d"
  "/root/repo/tests/lattice/slicer_test.cpp" "tests/CMakeFiles/lattice_tests.dir/lattice/slicer_test.cpp.o" "gcc" "tests/CMakeFiles/lattice_tests.dir/lattice/slicer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decmon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
