file(REMOVE_RECURSE
  "CMakeFiles/lattice_tests.dir/lattice/augmented_time_test.cpp.o"
  "CMakeFiles/lattice_tests.dir/lattice/augmented_time_test.cpp.o.d"
  "CMakeFiles/lattice_tests.dir/lattice/computation_test.cpp.o"
  "CMakeFiles/lattice_tests.dir/lattice/computation_test.cpp.o.d"
  "CMakeFiles/lattice_tests.dir/lattice/event_log_test.cpp.o"
  "CMakeFiles/lattice_tests.dir/lattice/event_log_test.cpp.o.d"
  "CMakeFiles/lattice_tests.dir/lattice/oracle_test.cpp.o"
  "CMakeFiles/lattice_tests.dir/lattice/oracle_test.cpp.o.d"
  "CMakeFiles/lattice_tests.dir/lattice/slicer_test.cpp.o"
  "CMakeFiles/lattice_tests.dir/lattice/slicer_test.cpp.o.d"
  "lattice_tests"
  "lattice_tests.pdb"
  "lattice_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
