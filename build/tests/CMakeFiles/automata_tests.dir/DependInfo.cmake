
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/automata/analysis_test.cpp" "tests/CMakeFiles/automata_tests.dir/automata/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/automata_tests.dir/automata/analysis_test.cpp.o.d"
  "/root/repo/tests/automata/buchi_test.cpp" "tests/CMakeFiles/automata_tests.dir/automata/buchi_test.cpp.o" "gcc" "tests/CMakeFiles/automata_tests.dir/automata/buchi_test.cpp.o.d"
  "/root/repo/tests/automata/guard_test.cpp" "tests/CMakeFiles/automata_tests.dir/automata/guard_test.cpp.o" "gcc" "tests/CMakeFiles/automata_tests.dir/automata/guard_test.cpp.o.d"
  "/root/repo/tests/automata/ltl3_monitor_test.cpp" "tests/CMakeFiles/automata_tests.dir/automata/ltl3_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/automata_tests.dir/automata/ltl3_monitor_test.cpp.o.d"
  "/root/repo/tests/automata/qm_minimize_test.cpp" "tests/CMakeFiles/automata_tests.dir/automata/qm_minimize_test.cpp.o" "gcc" "tests/CMakeFiles/automata_tests.dir/automata/qm_minimize_test.cpp.o.d"
  "/root/repo/tests/automata/synthesis_sweep_test.cpp" "tests/CMakeFiles/automata_tests.dir/automata/synthesis_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/automata_tests.dir/automata/synthesis_sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decmon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
