file(REMOVE_RECURSE
  "CMakeFiles/automata_tests.dir/automata/analysis_test.cpp.o"
  "CMakeFiles/automata_tests.dir/automata/analysis_test.cpp.o.d"
  "CMakeFiles/automata_tests.dir/automata/buchi_test.cpp.o"
  "CMakeFiles/automata_tests.dir/automata/buchi_test.cpp.o.d"
  "CMakeFiles/automata_tests.dir/automata/guard_test.cpp.o"
  "CMakeFiles/automata_tests.dir/automata/guard_test.cpp.o.d"
  "CMakeFiles/automata_tests.dir/automata/ltl3_monitor_test.cpp.o"
  "CMakeFiles/automata_tests.dir/automata/ltl3_monitor_test.cpp.o.d"
  "CMakeFiles/automata_tests.dir/automata/qm_minimize_test.cpp.o"
  "CMakeFiles/automata_tests.dir/automata/qm_minimize_test.cpp.o.d"
  "CMakeFiles/automata_tests.dir/automata/synthesis_sweep_test.cpp.o"
  "CMakeFiles/automata_tests.dir/automata/synthesis_sweep_test.cpp.o.d"
  "automata_tests"
  "automata_tests.pdb"
  "automata_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
