file(REMOVE_RECURSE
  "CMakeFiles/ltl_tests.dir/ltl/atoms_test.cpp.o"
  "CMakeFiles/ltl_tests.dir/ltl/atoms_test.cpp.o.d"
  "CMakeFiles/ltl_tests.dir/ltl/formula_test.cpp.o"
  "CMakeFiles/ltl_tests.dir/ltl/formula_test.cpp.o.d"
  "CMakeFiles/ltl_tests.dir/ltl/lasso_eval_test.cpp.o"
  "CMakeFiles/ltl_tests.dir/ltl/lasso_eval_test.cpp.o.d"
  "CMakeFiles/ltl_tests.dir/ltl/parser_fuzz_test.cpp.o"
  "CMakeFiles/ltl_tests.dir/ltl/parser_fuzz_test.cpp.o.d"
  "CMakeFiles/ltl_tests.dir/ltl/parser_test.cpp.o"
  "CMakeFiles/ltl_tests.dir/ltl/parser_test.cpp.o.d"
  "ltl_tests"
  "ltl_tests.pdb"
  "ltl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
