
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ltl/atoms_test.cpp" "tests/CMakeFiles/ltl_tests.dir/ltl/atoms_test.cpp.o" "gcc" "tests/CMakeFiles/ltl_tests.dir/ltl/atoms_test.cpp.o.d"
  "/root/repo/tests/ltl/formula_test.cpp" "tests/CMakeFiles/ltl_tests.dir/ltl/formula_test.cpp.o" "gcc" "tests/CMakeFiles/ltl_tests.dir/ltl/formula_test.cpp.o.d"
  "/root/repo/tests/ltl/lasso_eval_test.cpp" "tests/CMakeFiles/ltl_tests.dir/ltl/lasso_eval_test.cpp.o" "gcc" "tests/CMakeFiles/ltl_tests.dir/ltl/lasso_eval_test.cpp.o.d"
  "/root/repo/tests/ltl/parser_fuzz_test.cpp" "tests/CMakeFiles/ltl_tests.dir/ltl/parser_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ltl_tests.dir/ltl/parser_fuzz_test.cpp.o.d"
  "/root/repo/tests/ltl/parser_test.cpp" "tests/CMakeFiles/ltl_tests.dir/ltl/parser_test.cpp.o" "gcc" "tests/CMakeFiles/ltl_tests.dir/ltl/parser_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decmon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
