# Empty compiler generated dependencies file for ltl_tests.
# This may be replaced when dependencies are built.
