file(REMOVE_RECURSE
  "CMakeFiles/monitor_tests.dir/monitor/centralized_test.cpp.o"
  "CMakeFiles/monitor_tests.dir/monitor/centralized_test.cpp.o.d"
  "CMakeFiles/monitor_tests.dir/monitor/monitor_process_test.cpp.o"
  "CMakeFiles/monitor_tests.dir/monitor/monitor_process_test.cpp.o.d"
  "CMakeFiles/monitor_tests.dir/monitor/predicate_test.cpp.o"
  "CMakeFiles/monitor_tests.dir/monitor/predicate_test.cpp.o.d"
  "CMakeFiles/monitor_tests.dir/monitor/soundness_completeness_test.cpp.o"
  "CMakeFiles/monitor_tests.dir/monitor/soundness_completeness_test.cpp.o.d"
  "CMakeFiles/monitor_tests.dir/monitor/stress_test.cpp.o"
  "CMakeFiles/monitor_tests.dir/monitor/stress_test.cpp.o.d"
  "CMakeFiles/monitor_tests.dir/monitor/sweep_test.cpp.o"
  "CMakeFiles/monitor_tests.dir/monitor/sweep_test.cpp.o.d"
  "CMakeFiles/monitor_tests.dir/monitor/walk_mode_test.cpp.o"
  "CMakeFiles/monitor_tests.dir/monitor/walk_mode_test.cpp.o.d"
  "CMakeFiles/monitor_tests.dir/monitor/wire_test.cpp.o"
  "CMakeFiles/monitor_tests.dir/monitor/wire_test.cpp.o.d"
  "monitor_tests"
  "monitor_tests.pdb"
  "monitor_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
