
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/monitor/centralized_test.cpp" "tests/CMakeFiles/monitor_tests.dir/monitor/centralized_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_tests.dir/monitor/centralized_test.cpp.o.d"
  "/root/repo/tests/monitor/monitor_process_test.cpp" "tests/CMakeFiles/monitor_tests.dir/monitor/monitor_process_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_tests.dir/monitor/monitor_process_test.cpp.o.d"
  "/root/repo/tests/monitor/predicate_test.cpp" "tests/CMakeFiles/monitor_tests.dir/monitor/predicate_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_tests.dir/monitor/predicate_test.cpp.o.d"
  "/root/repo/tests/monitor/soundness_completeness_test.cpp" "tests/CMakeFiles/monitor_tests.dir/monitor/soundness_completeness_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_tests.dir/monitor/soundness_completeness_test.cpp.o.d"
  "/root/repo/tests/monitor/stress_test.cpp" "tests/CMakeFiles/monitor_tests.dir/monitor/stress_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_tests.dir/monitor/stress_test.cpp.o.d"
  "/root/repo/tests/monitor/sweep_test.cpp" "tests/CMakeFiles/monitor_tests.dir/monitor/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_tests.dir/monitor/sweep_test.cpp.o.d"
  "/root/repo/tests/monitor/walk_mode_test.cpp" "tests/CMakeFiles/monitor_tests.dir/monitor/walk_mode_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_tests.dir/monitor/walk_mode_test.cpp.o.d"
  "/root/repo/tests/monitor/wire_test.cpp" "tests/CMakeFiles/monitor_tests.dir/monitor/wire_test.cpp.o" "gcc" "tests/CMakeFiles/monitor_tests.dir/monitor/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/decmon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
