file(REMOVE_RECURSE
  "CMakeFiles/distributed_tests.dir/distributed/sim_runtime_test.cpp.o"
  "CMakeFiles/distributed_tests.dir/distributed/sim_runtime_test.cpp.o.d"
  "CMakeFiles/distributed_tests.dir/distributed/thread_runtime_test.cpp.o"
  "CMakeFiles/distributed_tests.dir/distributed/thread_runtime_test.cpp.o.d"
  "CMakeFiles/distributed_tests.dir/distributed/trace_test.cpp.o"
  "CMakeFiles/distributed_tests.dir/distributed/trace_test.cpp.o.d"
  "distributed_tests"
  "distributed_tests.pdb"
  "distributed_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
