# Empty dependencies file for distributed_tests.
# This may be replaced when dependencies are built.
