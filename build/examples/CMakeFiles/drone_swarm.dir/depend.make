# Empty dependencies file for drone_swarm.
# This may be replaced when dependencies are built.
