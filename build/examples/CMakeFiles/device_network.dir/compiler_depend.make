# Empty compiler generated dependencies file for device_network.
# This may be replaced when dependencies are built.
