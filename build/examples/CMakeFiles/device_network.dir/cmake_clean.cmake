file(REMOVE_RECURSE
  "CMakeFiles/device_network.dir/device_network.cpp.o"
  "CMakeFiles/device_network.dir/device_network.cpp.o.d"
  "device_network"
  "device_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
