#include "decmon/lattice/computation.hpp"

#include <gtest/gtest.h>

#include "../common/paper_example.hpp"
#include "decmon/lattice/lattice.hpp"

namespace decmon {
namespace {

using testing::PaperExample;

TEST(Computation, PaperExampleShape) {
  PaperExample ex;
  const Computation& c = ex.computation;
  EXPECT_EQ(c.num_processes(), 2);
  EXPECT_EQ(c.num_events(0), 4u);
  EXPECT_EQ(c.num_events(1), 4u);
  EXPECT_EQ(c.total_events(), 8u);
  EXPECT_EQ(c.event(0, 1).type, EventType::kSend);
  EXPECT_EQ(c.event(1, 1).type, EventType::kReceive);
  EXPECT_EQ(c.event(0, 2).state, (LocalState{5}));
  EXPECT_EQ(c.event(1, 3).state, (LocalState{20}));
}

TEST(Computation, HappenedBeforeViaClocks) {
  PaperExample ex;
  const Computation& c = ex.computation;
  // e1_0 (send) happened-before e2_2 (x2 = 20): paper's example.
  EXPECT_TRUE(c.event(0, 1).vc.happened_before(c.event(1, 3).vc));
  // e1_2 (x1=10) concurrent with e2_1 (x2=15): paper's example (e12 || e21).
  EXPECT_TRUE(c.event(0, 3).vc.concurrent_with(c.event(1, 2).vc));
}

TEST(Computation, ConsistencyMatchesPaper) {
  PaperExample ex;
  const Computation& c = ex.computation;
  // Frontier <e1_1, e2_0> == cut {2, 1}: consistent (paper, after Def. 4).
  EXPECT_TRUE(c.consistent({2, 1}));
  // Frontier <e1_3, e2_2> == cut {4, 3}: NOT consistent (e1_3 receives the
  // message P2 sends at e2_3, which is outside the cut).
  EXPECT_FALSE(c.consistent({4, 3}));
  EXPECT_TRUE(c.consistent(c.bottom()));
  EXPECT_TRUE(c.consistent(c.top()));
  // P2's first event receives P1's first send: {0,1} is inconsistent.
  EXPECT_FALSE(c.consistent({0, 1}));
}

TEST(Computation, CanAdvanceRespectsCausality) {
  PaperExample ex;
  const Computation& c = ex.computation;
  // From the bottom, only P1 can move (P2 starts with a receive).
  EXPECT_TRUE(c.can_advance(c.bottom(), 0));
  EXPECT_FALSE(c.can_advance(c.bottom(), 1));
  // After P1's send, P2's receive becomes possible.
  EXPECT_TRUE(c.can_advance({1, 0}, 1));
  // At the top, nothing can advance.
  EXPECT_FALSE(c.can_advance(c.top(), 0));
  EXPECT_FALSE(c.can_advance(c.top(), 1));
  // P1's final receive needs P2's send first.
  EXPECT_FALSE(c.can_advance({3, 2}, 0));
  EXPECT_TRUE(c.can_advance({3, 4}, 0));
}

TEST(Computation, LetterAtCut) {
  PaperExample ex;
  const Computation& c = ex.computation;
  // Atoms: bit0 = x1>=5, bit1 = x2>=15, bit2 = x1==10, bit3 = x2==15.
  EXPECT_EQ(c.letter(c.bottom()), AtomSet{0});
  EXPECT_EQ(c.letter({2, 2}), AtomSet{0b1011});  // x1=5, x2=15
  EXPECT_EQ(c.letter({3, 2}), AtomSet{0b1111});  // x1=10, x2=15
  EXPECT_EQ(c.letter({3, 0}), AtomSet{0b0101});  // x1=10, x2=0
}

TEST(Computation, GlobalStateAtCut) {
  PaperExample ex;
  GlobalState g = ex.computation.global_state({2, 3});
  EXPECT_EQ(g, (GlobalState{{5}, {20}}));
}

TEST(Computation, RejectsBadIndexing) {
  // Missing initial pseudo-event.
  EXPECT_THROW(Computation({{}, {}}), std::invalid_argument);
}

TEST(Lattice, PaperExampleHasSeventeenCuts) {
  PaperExample ex;
  Lattice lat = Lattice::build(ex.computation);
  // (0,0); a in 1..3 x b in 0..4 (P2 unlocked after P1's send); (4,4).
  EXPECT_EQ(lat.size(), 17u);
  EXPECT_EQ(lat.nodes()[static_cast<std::size_t>(lat.bottom())].cut,
            (Computation::Cut{0, 0}));
  EXPECT_EQ(lat.nodes()[static_cast<std::size_t>(lat.top())].cut,
            (Computation::Cut{4, 4}));
}

TEST(Lattice, EveryNodeIsConsistent) {
  PaperExample ex;
  Lattice lat = Lattice::build(ex.computation);
  for (const auto& node : lat.nodes()) {
    EXPECT_TRUE(ex.computation.consistent(node.cut));
  }
}

TEST(Lattice, PathCountPositive) {
  PaperExample ex;
  Lattice lat = Lattice::build(ex.computation);
  // Each maximal path interleaves the two processes' remaining events.
  EXPECT_GT(lat.num_paths(), 1.0);
}

TEST(Lattice, SizeCapThrows) {
  PaperExample ex;
  EXPECT_THROW(Lattice::build(ex.computation, 4), std::length_error);
}

TEST(Lattice, SequentialComputationIsAChain) {
  // Two processes, fully serialized by messages: lattice is a chain.
  AtomRegistry reg(2);
  reg.declare_variable(0, "a");
  reg.declare_variable(1, "b");
  ComputationBuilder b(2, &reg);
  const int m1 = b.send(0);
  b.receive(1, m1);
  b.internal(1, {1});
  const int m2 = b.send(1);
  b.receive(0, m2);
  b.internal(0, {1});
  Computation c = b.build();
  Lattice lat = Lattice::build(c);
  EXPECT_EQ(lat.num_paths(), 1.0);
  EXPECT_EQ(lat.size(), c.total_events() + 1);
}

TEST(Lattice, IndependentProcessesFormAGrid) {
  // No messages: the lattice is the full (k+1) x (k+1) grid.
  AtomRegistry reg(2);
  reg.declare_variable(0, "a");
  reg.declare_variable(1, "b");
  ComputationBuilder b(2, &reg);
  for (int i = 0; i < 3; ++i) {
    b.internal(0, {i});
    b.internal(1, {i});
  }
  Lattice lat = Lattice::build(b.build());
  EXPECT_EQ(lat.size(), 16u);
  // Paths in a 3x3 grid: C(6,3) = 20.
  EXPECT_EQ(lat.num_paths(), 20.0);
}

}  // namespace
}  // namespace decmon
