#include "decmon/lattice/event_log.hpp"

#include <gtest/gtest.h>

#include "../common/paper_example.hpp"
#include "../common/random_computation.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

using testing::PaperExample;

void expect_equal(const Computation& a, const Computation& b) {
  ASSERT_EQ(a.num_processes(), b.num_processes());
  for (int p = 0; p < a.num_processes(); ++p) {
    ASSERT_EQ(a.num_events(p), b.num_events(p));
    for (std::uint32_t sn = 0; sn <= a.num_events(p); ++sn) {
      const Event& x = a.event(p, sn);
      const Event& y = b.event(p, sn);
      EXPECT_EQ(x.type, y.type);
      EXPECT_EQ(x.vc, y.vc);
      EXPECT_EQ(x.state, y.state);
      EXPECT_EQ(x.sn, y.sn);
    }
  }
}

TEST(EventLog, RoundTripPaperExample) {
  PaperExample ex;
  const std::string log = to_event_log(ex.computation);
  Computation back = computation_from_event_log(log);
  expect_equal(ex.computation, back);
}

TEST(EventLog, RoundTripRandomComputations) {
  std::mt19937_64 rng(2);
  AtomRegistry reg = testing::standard_registry(3);
  for (int iter = 0; iter < 20; ++iter) {
    Computation comp = testing::random_computation(rng, 3, reg, 6);
    Computation back = computation_from_event_log(to_event_log(comp));
    expect_equal(comp, back);
  }
}

TEST(EventLog, RelabelRestoresLetters) {
  // Letters are not serialized; relabel() recomputes them, and the oracle
  // then agrees with the original run.
  PaperExample ex;
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  OracleResult original = oracle_evaluate(ex.computation, m);

  Computation loaded = computation_from_event_log(to_event_log(ex.computation));
  Computation relabeled = relabel(loaded, ex.registry);
  OracleResult after = oracle_evaluate(relabeled, m);
  EXPECT_EQ(after.verdicts, original.verdicts);
  EXPECT_EQ(after.final_states, original.final_states);
}

TEST(EventLog, FileRoundTrip) {
  PaperExample ex;
  const std::string path = ::testing::TempDir() + "decmon_event_log_test.log";
  save_event_log(ex.computation, path);
  Computation back = load_event_log(path, &ex.registry);
  expect_equal(ex.computation, back);
  // Letters restored through the registry parameter.
  EXPECT_EQ(back.letter({2, 2}), ex.computation.letter({2, 2}));
  std::remove(path.c_str());
}

TEST(EventLog, RejectsGarbage) {
  EXPECT_THROW(computation_from_event_log("not a log"), std::runtime_error);
  EXPECT_THROW(computation_from_event_log("eventlog v1\nprocesses 0\nend\n"),
               std::runtime_error);
  EXPECT_THROW(computation_from_event_log(
                   "eventlog v1\nprocesses 1\nevent 0 1 internal 1 0 vars 0\n"
                   "end\n"),
               std::runtime_error);  // sn 1 before sn 0
  EXPECT_THROW(computation_from_event_log(
                   "eventlog v1\nprocesses 1\nevent 5 0 internal 0 0 vars 0\n"
                   "end\n"),
               std::runtime_error);  // bad process index
  EXPECT_THROW(computation_from_event_log(
                   "eventlog v1\nprocesses 1\nevent 0 0 warp 0 0 vars 0\nend\n"),
               std::runtime_error);  // unknown type
}

TEST(EventLog, RejectsMissingEnd) {
  PaperExample ex;
  std::string log = to_event_log(ex.computation);
  log.resize(log.size() - 4);  // drop "end\n"
  EXPECT_THROW(computation_from_event_log(log), std::runtime_error);
}

TEST(EventLog, LoadRejectsMissingFile) {
  EXPECT_THROW(load_event_log("/nonexistent/decmon.log"), std::runtime_error);
}

}  // namespace
}  // namespace decmon
