#include "decmon/lattice/slicer.hpp"

#include <gtest/gtest.h>

#include <random>

#include "../common/paper_example.hpp"
#include "decmon/lattice/lattice.hpp"

namespace decmon {
namespace {

using testing::PaperExample;

// Brute force: smallest-cardinality consistent cut >= from whose frontier
// satisfies pred, via explicit lattice enumeration.
std::optional<Computation::Cut> brute_force_least(const Computation& comp,
                                                  const Cube& pred,
                                                  const Computation::Cut& from) {
  Lattice lat = Lattice::build(comp);
  std::optional<Computation::Cut> best;
  auto dominates = [](const Computation::Cut& a, const Computation::Cut& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] < b[i]) return false;
    }
    return true;
  };
  for (const auto& node : lat.nodes()) {
    if (!dominates(node.cut, from)) continue;
    if (!pred.matches(comp.letter(node.cut))) continue;
    if (!best || dominates(*best, node.cut)) best = node.cut;
  }
  return best;
}

TEST(Slicer, ConsistentClosureOnPaperExample) {
  PaperExample ex;
  // Cut {0, 1} needs P1's send pulled in: closure is {1, 1}.
  EXPECT_EQ(consistent_closure(ex.computation, {0, 1}),
            (Computation::Cut{1, 1}));
  // Cut {4, 0} needs P2 up to its send: closure is {4, 4}.
  EXPECT_EQ(consistent_closure(ex.computation, {4, 0}),
            (Computation::Cut{4, 4}));
  // Already consistent cuts are fixed points.
  EXPECT_EQ(consistent_closure(ex.computation, {2, 1}),
            (Computation::Cut{2, 1}));
}

TEST(Slicer, PaperPredicateDetection) {
  PaperExample ex;
  // B = (x1 >= 5 && x2 >= 15): atoms bit0 and bit1. The least satisfying
  // cut from bottom is <e1_1, e2_1> = {2, 2} (paper: "the global state where
  // x1 = 5 and x2 = 15" starts the satisfying sub-lattice).
  Cube pred{0b011, 0};
  auto cut = least_satisfying_cut(ex.computation, pred, ex.registry,
                                  ex.computation.bottom());
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, (Computation::Cut{2, 2}));
}

TEST(Slicer, DetectsFromLaterStart) {
  PaperExample ex;
  // Same predicate but starting past e1_2 (x1 = 10 still >= 5).
  Cube pred{0b011, 0};
  auto cut = least_satisfying_cut(ex.computation, pred, ex.registry,
                                  {3, 0});
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, (Computation::Cut{3, 2}));
}

TEST(Slicer, UnsatisfiablePredicateReturnsNothing) {
  PaperExample ex;
  // x1 >= 5 && !(x1 >= 5) is contradictory on the same atom.
  Cube pred{0b001, 0b001};
  EXPECT_FALSE(least_satisfying_cut(ex.computation, pred, ex.registry,
                                    ex.computation.bottom())
                   .has_value());
}

TEST(Slicer, NeverSatisfiedPredicateReturnsNothing) {
  PaperExample ex;
  // x2 >= 15 && x1 not >= 5... after x2 >= 15, x1 may still be < 5: cut
  // {1,2}. But require also x1 == 10 false and x1 >= 5 true: impossible to
  // have bit0 && !bit0. Use bit2 && !bit0: x1 == 10 implies x1 >= 5 in this
  // computation, so the predicate is never satisfied.
  Cube pred{0b100, 0b001};
  EXPECT_FALSE(least_satisfying_cut(ex.computation, pred, ex.registry,
                                    ex.computation.bottom())
                   .has_value());
}

TEST(Slicer, StartCutBeyondSatisfactionFails) {
  PaperExample ex;
  // x2 >= 15 stays true to the end, but !(x2 >= 15) from {0,2} onwards is
  // never true again.
  Cube pred{0, 0b010};
  auto cut = least_satisfying_cut(ex.computation, pred, ex.registry, {0, 2});
  EXPECT_FALSE(cut.has_value());
}

TEST(Slicer, LeastCutIsMinimal) {
  PaperExample ex;
  Cube pred{0b011, 0};
  auto fast = least_satisfying_cut(ex.computation, pred, ex.registry,
                                   ex.computation.bottom());
  auto brute = brute_force_least(ex.computation, pred,
                                 ex.computation.bottom());
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(*fast, *brute);
}

// Property: against brute force on random computations and random cubes.
TEST(SlicerProperty, MatchesBruteForce) {
  std::mt19937_64 rng(808);
  for (int iter = 0; iter < 120; ++iter) {
    AtomRegistry reg(2);
    for (int p = 0; p < 2; ++p) {
      reg.declare_variable(p, "p");
      reg.declare_variable(p, "q");
    }
    // Atoms: P0.p, P0.q, P1.p, P1.q.
    for (int p = 0; p < 2; ++p) {
      reg.boolean_atom(p, 0);
      reg.boolean_atom(p, 1);
    }
    ComputationBuilder b(2, &reg);
    std::vector<std::pair<int, int>> pending;
    for (int e = 0; e < 8; ++e) {
      const int p = static_cast<int>(rng() % 2);
      if (rng() % 4 == 0) {
        pending.emplace_back(b.send(p), p);
      } else if (rng() % 4 == 1 && !pending.empty()) {
        auto [h, sender] = pending.front();
        pending.erase(pending.begin());
        b.receive(1 - sender, h);
      } else {
        b.internal(p, {static_cast<std::int64_t>(rng() % 2),
                       static_cast<std::int64_t>(rng() % 2)});
      }
    }
    Computation comp = b.build();
    // Random satisfiable cube over the 4 atoms.
    Cube pred;
    for (int a = 0; a < 4; ++a) {
      switch (rng() % 3) {
        case 0: pred.pos |= AtomSet{1} << a; break;
        case 1: pred.neg |= AtomSet{1} << a; break;
        default: break;
      }
    }
    auto fast = least_satisfying_cut(comp, pred, reg, comp.bottom());
    auto brute = brute_force_least(comp, pred, comp.bottom());
    EXPECT_EQ(fast.has_value(), brute.has_value());
    if (fast && brute) EXPECT_EQ(*fast, *brute);
  }
}

}  // namespace
}  // namespace decmon
