#include "decmon/lattice/oracle.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "../common/paper_example.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/lattice/lattice.hpp"
#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

using testing::PaperExample;

// Brute force: enumerate every maximal lattice path, run the monitor over
// its global-state trace, collect the verdict-state set. Exponential; only
// for small lattices.
std::set<int> brute_force_final_states(const Computation& comp,
                                       const MonitorAutomaton& monitor) {
  Lattice lat = Lattice::build(comp);
  std::set<int> finals;
  struct Frame {
    int node;
    int q;
  };
  std::vector<Frame> stack;
  const int q_init = *monitor.step(monitor.initial_state(),
                                   comp.letter(comp.bottom()));
  stack.push_back({lat.bottom(), q_init});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    bool is_max = true;
    for (int succ : lat.nodes()[static_cast<std::size_t>(f.node)].succ) {
      if (succ < 0) continue;
      is_max = false;
      const AtomSet letter =
          comp.letter(lat.nodes()[static_cast<std::size_t>(succ)].cut);
      stack.push_back({succ, *monitor.step(f.q, letter)});
    }
    if (is_max) finals.insert(f.q);
  }
  return finals;
}

TEST(Oracle, PaperPropertyPsiYieldsBothFalseAndUnknown) {
  // psi = G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10))): Chapter 3 shows paths
  // through <e1_1, x2 < 15> evaluate to FALSE while path beta stays UNKNOWN.
  PaperExample ex;
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  OracleResult r = oracle_evaluate(ex.computation, m);
  EXPECT_EQ(r.verdicts,
            (std::set<Verdict>{Verdict::kFalse, Verdict::kUnknown}));
  EXPECT_EQ(r.lattice_nodes, 17u);
  EXPECT_GT(r.pivot_states, 0u);
}

TEST(Oracle, PaperPropertyPsiPrimeViolates) {
  // psi' = G((x1 >= 5) -> ((x2 == 15) U (x1 == 10))): Chapter 3 claims all
  // paths violate; a FALSE verdict must certainly be present.
  PaperExample ex;
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 == 15) U (x1 == 10)))", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  OracleResult r = oracle_evaluate(ex.computation, m);
  EXPECT_TRUE(r.verdicts.count(Verdict::kFalse));
  // Cross-check the full verdict set against brute-force path enumeration.
  std::set<Verdict> brute;
  for (int q : brute_force_final_states(ex.computation, m)) {
    brute.insert(m.verdict(q));
  }
  EXPECT_EQ(r.verdicts, brute);
}

TEST(Oracle, AgreesWithBruteForceOnPaperExample) {
  PaperExample ex;
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  OracleResult r = oracle_evaluate(ex.computation, m);
  EXPECT_EQ(r.final_states, brute_force_final_states(ex.computation, m));
}

// Randomized: DP oracle == brute-force path enumeration on small random
// computations and random properties over the processes' boolean vars.
TEST(OracleProperty, MatchesBruteForceOnRandomComputations) {
  std::mt19937_64 rng(20150715);
  const char* props[] = {
      "F(P0.p && P1.p)",
      "G(P0.p || P1.p)",
      "(P0.p) U (P1.p)",
      "G((P0.p) -> F(P1.p))",
      "G((P0.p && P1.p) U (P0.q && P1.q))",
      "X X (P0.p)",
  };
  for (int iter = 0; iter < 60; ++iter) {
    AtomRegistry reg(2);
    for (int p = 0; p < 2; ++p) {
      reg.declare_variable(p, "p");
      reg.declare_variable(p, "q");
    }
    FormulaPtr f = parse_ltl(props[iter % 6], reg);
    MonitorAutomaton m = synthesize_monitor(f);

    // Random computation: 2 processes, 3-5 events each, random messages.
    ComputationBuilder b(2, &reg);
    std::vector<std::pair<int, int>> unreceived;  // (handle, sender)
    const int k = 3 + static_cast<int>(rng() % 3);
    for (int e = 0; e < 2 * k; ++e) {
      const int p = static_cast<int>(rng() % 2);
      switch (rng() % 4) {
        case 0:
          unreceived.emplace_back(b.send(p), p);
          break;
        case 1:
          if (!unreceived.empty()) {
            // Deliver the oldest pending message to its peer (FIFO).
            auto [handle, sender] = unreceived.front();
            unreceived.erase(unreceived.begin());
            b.receive(1 - sender, handle);
            break;
          }
          [[fallthrough]];
        default:
          b.internal(p, {static_cast<std::int64_t>(rng() % 2),
                         static_cast<std::int64_t>(rng() % 2)});
      }
    }
    Computation comp = b.build();
    OracleResult r = oracle_evaluate(comp, m);
    EXPECT_EQ(r.final_states, brute_force_final_states(comp, m))
        << props[iter % 6];
  }
}

TEST(Oracle, ChainHasSingleVerdict) {
  // A fully sequential computation has one path, hence one verdict.
  AtomRegistry reg(2);
  reg.declare_variable(0, "p");
  reg.declare_variable(1, "p");
  FormulaPtr f = parse_ltl("F(P1.p)", reg);
  ComputationBuilder b(2, &reg);
  const int m1 = b.send(0);
  b.receive(1, m1);
  b.internal(1, {1});  // P1.p becomes true: F(P1.p) is satisfied
  Computation comp = b.build();
  OracleResult r = oracle_evaluate(comp, synthesize_monitor(f));
  EXPECT_EQ(r.verdicts, (std::set<Verdict>{Verdict::kTrue}));
  EXPECT_EQ(r.final_states.size(), 1u);
}

}  // namespace
}  // namespace decmon
