#include "decmon/lattice/augmented_time.hpp"

#include <gtest/gtest.h>

#include "../common/random_computation.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/distributed/sim_runtime.hpp"
#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

/// A computation with realistic timestamps, via the simulator.
Computation simulated(int n, std::uint64_t seed, int events = 8) {
  static AtomRegistry reg = testing::standard_registry(3);
  TraceParams params;
  params.num_processes = n;
  params.internal_events = events;
  params.seed = seed;
  SimRuntime sim(generate_trace(params), &reg);
  sim.run();
  return Computation(sim.history());
}

TEST(AugmentedTime, InfiniteEpsilonMatchesPlainOracle) {
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("G((P0.p) U (P1.p))", reg));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Computation comp = simulated(2, seed);
    OracleResult plain = oracle_evaluate(comp, m);
    OracleResult timed =
        oracle_evaluate_timed(TimedComputation(&comp, 1e18), m);
    EXPECT_EQ(timed.verdicts, plain.verdicts);
    EXPECT_EQ(timed.final_states, plain.final_states);
    EXPECT_EQ(timed.lattice_nodes, plain.lattice_nodes);
  }
}

TEST(AugmentedTime, TighterSkewShrinksTheLattice) {
  Computation comp = simulated(3, 7, 10);
  std::uint64_t prev = 0;
  bool first = true;
  // Epsilon from hours down to milliseconds: cut counts must be monotone.
  for (double eps : {1e6, 10.0, 2.0, 0.5, 0.01}) {
    TimedComputation timed(&comp, eps);
    const std::uint64_t cuts = timed.count_cuts();
    if (!first) EXPECT_LE(cuts, prev) << "eps " << eps;
    prev = cuts;
    first = false;
  }
  // Near-zero skew leaves (almost) a single interleaving: one more cut per
  // event.
  TimedComputation tight(&comp, 0.0001);
  EXPECT_EQ(tight.count_cuts(), comp.total_events() + 1);
}

TEST(AugmentedTime, VerdictsNarrowMonotonically) {
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("G((P0.p) U (P1.p))", reg));
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Computation comp = simulated(2, seed);
    OracleResult plain = oracle_evaluate(comp, m);
    OracleResult mid =
        oracle_evaluate_timed(TimedComputation(&comp, 0.5), m);
    OracleResult tight =
        oracle_evaluate_timed(TimedComputation(&comp, 0.0001), m);
    // Refinements only remove paths: state sets shrink down the chain.
    for (int q : mid.final_states) EXPECT_TRUE(plain.final_states.count(q));
    for (int q : tight.final_states) EXPECT_TRUE(mid.final_states.count(q));
    // Zero-skew leaves exactly one path, hence one final state.
    EXPECT_EQ(tight.final_states.size(), 1u);
  }
}

TEST(AugmentedTime, RefinementRespectsCausality) {
  // can_advance never allows what plain causality forbids.
  Computation comp = simulated(3, 3);
  TimedComputation timed(&comp, 0.5);
  Computation::Cut cut = comp.bottom();
  for (int p = 0; p < comp.num_processes(); ++p) {
    if (timed.can_advance(cut, p)) {
      EXPECT_TRUE(comp.consistent([&] {
        Computation::Cut c = cut;
        ++c[static_cast<std::size_t>(p)];
        return c;
      }()));
    }
  }
}

TEST(AugmentedTime, TopCutAlwaysReachableOnRealRuns) {
  // Simulator timestamps respect happened-before, so the refined order can
  // always linearize to the top.
  AtomRegistry reg = testing::standard_registry(3);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("F(P0.p && P1.p && P2.p)", reg));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Computation comp = simulated(3, seed);
    for (double eps : {5.0, 0.5, 0.001}) {
      EXPECT_NO_THROW(
          oracle_evaluate_timed(TimedComputation(&comp, eps), m));
    }
  }
}

}  // namespace
}  // namespace decmon
