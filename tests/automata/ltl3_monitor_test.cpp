#include "decmon/automata/ltl3_monitor.hpp"

#include <gtest/gtest.h>

#include <random>

#include "../common/random_formula.hpp"
#include "decmon/ltl/eval.hpp"
#include "decmon/ltl/formula.hpp"
#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

constexpr AtomSet kA = 0b01;
constexpr AtomSet kB = 0b10;

TEST(Ltl3Monitor, EventuallyVerdicts) {
  FormulaPtr f = f_eventually(f_atom(0));
  MonitorAutomaton m = synthesize_monitor(f);
  EXPECT_EQ(m.verdict(m.run({})), Verdict::kUnknown);
  EXPECT_EQ(m.verdict(m.run({0, 0})), Verdict::kUnknown);
  EXPECT_EQ(m.verdict(m.run({0, kA})), Verdict::kTrue);
  EXPECT_EQ(m.verdict(m.run({0, kA, 0})), Verdict::kTrue);  // irrevocable
}

TEST(Ltl3Monitor, AlwaysVerdicts) {
  FormulaPtr f = f_always(f_atom(0));
  MonitorAutomaton m = synthesize_monitor(f);
  EXPECT_EQ(m.verdict(m.run({kA, kA})), Verdict::kUnknown);
  EXPECT_EQ(m.verdict(m.run({kA, 0})), Verdict::kFalse);
  EXPECT_EQ(m.verdict(m.run({kA, 0, kA})), Verdict::kFalse);
}

TEST(Ltl3Monitor, MinimizedEventuallyIsTwoStates) {
  MonitorAutomaton m = synthesize_monitor(f_eventually(f_atom(0)));
  EXPECT_EQ(m.num_states(), 2);
  EXPECT_EQ(m.verdict(m.initial_state()), Verdict::kUnknown);
}

TEST(Ltl3Monitor, UntilVerdicts) {
  // a U b: FALSE once !a && !b; TRUE once b.
  MonitorAutomaton m = synthesize_monitor(f_until(f_atom(0), f_atom(1)));
  EXPECT_EQ(m.verdict(m.run({kA, kA})), Verdict::kUnknown);
  EXPECT_EQ(m.verdict(m.run({kA, kB})), Verdict::kTrue);
  EXPECT_EQ(m.verdict(m.run({kB})), Verdict::kTrue);
  EXPECT_EQ(m.verdict(m.run({kA, 0})), Verdict::kFalse);
  EXPECT_EQ(m.verdict(m.run({0})), Verdict::kFalse);
}

TEST(Ltl3Monitor, NextVerdicts) {
  MonitorAutomaton m = synthesize_monitor(f_next(f_atom(0)));
  EXPECT_EQ(m.verdict(m.run({0})), Verdict::kUnknown);
  EXPECT_EQ(m.verdict(m.run({0, kA})), Verdict::kTrue);
  EXPECT_EQ(m.verdict(m.run({kA, 0})), Verdict::kFalse);
}

TEST(Ltl3Monitor, NonMonitorableGF) {
  // G F a never reaches a definite verdict on any finite trace.
  MonitorAutomaton m = synthesize_monitor(f_always(f_eventually(f_atom(0))));
  std::mt19937_64 rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    auto word = testing::random_word(rng, 1, 1 + static_cast<int>(rng() % 8));
    EXPECT_EQ(m.verdict(m.run(word)), Verdict::kUnknown);
  }
  // Minimization collapses it to a single ? state.
  EXPECT_EQ(m.num_states(), 1);
}

TEST(Ltl3Monitor, SafetyNeverTrue) {
  // G a can never be satisfied by a finite prefix.
  MonitorAutomaton m = synthesize_monitor(f_always(f_atom(0)));
  std::mt19937_64 rng(6);
  for (int iter = 0; iter < 50; ++iter) {
    auto word = testing::random_word(rng, 1, 1 + static_cast<int>(rng() % 8));
    EXPECT_NE(m.verdict(m.run(word)), Verdict::kTrue);
  }
}

TEST(Ltl3Monitor, PaperRunningExample) {
  // psi = G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10))), Fig. 2.3.
  AtomRegistry reg(2);
  reg.declare_variable(0, "x1");
  reg.declare_variable(1, "x2");
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))", reg);
  MonitorAutomaton m = synthesize_monitor(psi);
  // The monitor has exactly the three states of Fig. 2.3 (q0, q1, qF).
  EXPECT_EQ(m.num_states(), 3);
  int unknown = 0;
  int fals = 0;
  int tru = 0;
  for (int q = 0; q < m.num_states(); ++q) {
    switch (m.verdict(q)) {
      case Verdict::kUnknown: ++unknown; break;
      case Verdict::kFalse: ++fals; break;
      case Verdict::kTrue: ++tru; break;
    }
  }
  EXPECT_EQ(unknown, 2);
  EXPECT_EQ(fals, 1);
  EXPECT_EQ(tru, 0);

  // Atoms: bit0 = (x1 >= 5), bit1 = (x2 >= 15), bit2 = (x1 == 10).
  auto letter = [&](std::int64_t x1, std::int64_t x2) {
    return reg.evaluate({{x1}, {x2}});
  };
  // The path beta from Chapter 3 stays inconclusive:
  // x1: 0 -> 0 -> 0 -> 0 -> 5 -> 5 -> 10; x2: 0 -> 15 -> 20 -> 20 ...
  std::vector<AtomSet> beta{letter(0, 0),  letter(0, 0),  letter(0, 15),
                            letter(0, 20), letter(5, 20), letter(5, 20),
                            letter(10, 20)};
  EXPECT_EQ(m.verdict(m.run(beta)), Verdict::kUnknown);
  // A path going through x1=5 with x2 < 15 violates.
  std::vector<AtomSet> bad{letter(0, 0), letter(5, 0)};
  EXPECT_EQ(m.verdict(m.run(bad)), Verdict::kFalse);
}

TEST(Ltl3Monitor, ValidatePassesOnSynthesizedAutomata) {
  std::mt19937_64 rng(77);
  for (int iter = 0; iter < 25; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 3);
    MonitorAutomaton m = synthesize_monitor(f);  // validate=true built in
    EXPECT_FALSE(m.validate().has_value());
  }
}

TEST(Ltl3Monitor, FinalStatesAreAbsorbingTrueLoops) {
  MonitorAutomaton m = synthesize_monitor(f_eventually(f_atom(0)));
  for (int q = 0; q < m.num_states(); ++q) {
    if (!m.is_final(q)) continue;
    const auto& out = m.transitions_from(q);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(m.transition(out[0]).self_loop());
    EXPECT_TRUE(m.transition(out[0]).guard.is_true());
  }
}

TEST(Ltl3Monitor, MinimizationNeverGrows) {
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 25; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 3);
    MooreTable raw = build_moore_table(f);
    MooreTable min = minimize_moore(raw);
    EXPECT_LE(min.num_states, raw.num_states);
    // Same language: equal verdicts on random traces.
    MonitorAutomaton m_raw = monitor_from_table(raw);
    MonitorAutomaton m_min = monitor_from_table(min);
    for (int w = 0; w < 20; ++w) {
      auto word = testing::random_word(rng, 2, static_cast<int>(rng() % 6));
      EXPECT_EQ(m_raw.verdict(m_raw.run(word)),
                m_min.verdict(m_min.run(word)));
    }
  }
}

// Verdict semantics, checked against the lasso oracle:
//  - TRUE  => every sampled infinite extension satisfies the formula.
//  - FALSE => every sampled infinite extension violates it.
//  - verdicts are monotone (never change once definite).
TEST(Ltl3MonitorProperty, VerdictSoundAgainstLassoOracle) {
  std::mt19937_64 rng(101);
  for (int iter = 0; iter < 60; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 3);
    MonitorAutomaton m = synthesize_monitor(f);
    for (int w = 0; w < 6; ++w) {
      auto word = testing::random_word(rng, 2, static_cast<int>(rng() % 5));
      const Verdict v = m.verdict(m.run(word));
      // Check against all small extensions.
      for (int llen = 1; llen <= 2; ++llen) {
        for_each_lasso(2, 0, llen, [&](const std::vector<AtomSet>&,
                                       const std::vector<AtomSet>& loop) {
          const bool sat = lasso_satisfies(f, word, loop);
          if (v == Verdict::kTrue) EXPECT_TRUE(sat) << f->to_string();
          if (v == Verdict::kFalse) EXPECT_FALSE(sat) << f->to_string();
          return true;
        });
      }
    }
  }
}

// Monotonicity: once TRUE/FALSE, extending the trace never changes it.
TEST(Ltl3MonitorProperty, VerdictsAreIrrevocable) {
  std::mt19937_64 rng(555);
  for (int iter = 0; iter < 40; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 3);
    MonitorAutomaton m = synthesize_monitor(f);
    auto word = testing::random_word(rng, 2, 8);
    int q = m.initial_state();
    Verdict seen = Verdict::kUnknown;
    for (AtomSet letter : word) {
      q = *m.step(q, letter);
      const Verdict v = m.verdict(q);
      if (seen != Verdict::kUnknown) {
        EXPECT_EQ(v, seen) << f->to_string();
      } else {
        seen = v;
      }
    }
  }
}

// Duality: monitor of !f gives the opposite definite verdicts.
TEST(Ltl3MonitorProperty, NegationSwapsVerdicts) {
  std::mt19937_64 rng(8);
  for (int iter = 0; iter < 40; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 3);
    MonitorAutomaton mf = synthesize_monitor(f);
    MonitorAutomaton mn = synthesize_monitor(f_not(f));
    for (int w = 0; w < 10; ++w) {
      auto word = testing::random_word(rng, 2, static_cast<int>(rng() % 6));
      const Verdict vf = mf.verdict(mf.run(word));
      const Verdict vn = mn.verdict(mn.run(word));
      switch (vf) {
        case Verdict::kTrue: EXPECT_EQ(vn, Verdict::kFalse); break;
        case Verdict::kFalse: EXPECT_EQ(vn, Verdict::kTrue); break;
        case Verdict::kUnknown: EXPECT_EQ(vn, Verdict::kUnknown); break;
      }
    }
  }
}

TEST(Ltl3Monitor, EvaluateConvenience) {
  EXPECT_EQ(evaluate_ltl3(f_eventually(f_atom(0)), {0, kA}), Verdict::kTrue);
  EXPECT_EQ(evaluate_ltl3(f_always(f_atom(0)), {0}), Verdict::kFalse);
  EXPECT_EQ(evaluate_ltl3(f_always(f_atom(0)), {kA}), Verdict::kUnknown);
}

}  // namespace
}  // namespace decmon
