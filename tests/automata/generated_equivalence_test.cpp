// Generated-code equivalence, layer 1: every checked-in generated monitor
// (src/generated/, emitted by decmon_gen --golden-set) materializes to an
// automaton STRUCTURALLY IDENTICAL to what runtime synthesis builds today
// -- same states, verdicts, transitions in dense-id order, guard cubes, and
// dense dispatch tables. Structural identity makes the two observationally
// indistinguishable on every runtime; the monitor/ differential tests then
// confirm bit-identical verdicts end to end. A failure here means the
// synthesizer changed shape and src/generated/ must be regenerated (the CI
// codegen-drift job catches the same skew byte-wise).
#include <gtest/gtest.h>

#include <string>

#include "decmon/core/properties.hpp"
#include "decmon/generated/gen_tables.hpp"
#include "decmon/monitor/property_registry.hpp"

namespace decmon::gen {
// Emitted by decmon_gen; registered in builtin.cpp. Declared here rather
// than in a header so the golden set stays private to generated code and
// its tests.
extern const GenAutomaton kGen_A_n3;
extern const GenAutomaton kGen_A_n5;
extern const GenAutomaton kGen_B_n3;
extern const GenAutomaton kGen_B_n5;
extern const GenAutomaton kGen_C_n3;
extern const GenAutomaton kGen_C_n5;
extern const GenAutomaton kGen_D_n3;
extern const GenAutomaton kGen_D_n5;
extern const GenAutomaton kGen_E_n3;
extern const GenAutomaton kGen_E_n5;
extern const GenAutomaton kGen_F_n3;
extern const GenAutomaton kGen_F_n5;
}  // namespace decmon::gen

namespace decmon {
namespace {

struct GoldenUnit {
  const gen::GenAutomaton* g;
  paper::Property p;
};

const GoldenUnit kGoldenUnits[] = {
    {&gen::kGen_A_n3, paper::Property::kA},
    {&gen::kGen_A_n5, paper::Property::kA},
    {&gen::kGen_B_n3, paper::Property::kB},
    {&gen::kGen_B_n5, paper::Property::kB},
    {&gen::kGen_C_n3, paper::Property::kC},
    {&gen::kGen_C_n5, paper::Property::kC},
    {&gen::kGen_D_n3, paper::Property::kD},
    {&gen::kGen_D_n5, paper::Property::kD},
    {&gen::kGen_E_n3, paper::Property::kE},
    {&gen::kGen_E_n5, paper::Property::kE},
    {&gen::kGen_F_n3, paper::Property::kF},
    {&gen::kGen_F_n5, paper::Property::kF},
};

TEST(GeneratedEquivalence, EveryUnitMatchesRuntimeSynthesisStructurally) {
  for (const GoldenUnit& unit : kGoldenUnits) {
    const gen::GenAutomaton& g = *unit.g;
    SCOPED_TRACE(g.name);
    const int n = g.num_processes;
    AtomRegistry reg = paper::make_registry(n);

    // The registered identity is exactly what the admission path keys on.
    EXPECT_EQ(paper::formula_text(unit.p, n), g.formula);
    EXPECT_EQ(paper::atom_signature(reg), g.atom_signature);

    const MonitorAutomaton generated = gen::materialize(g);
    MonitorAutomaton synthesized =
        paper::build_automaton_uncached(unit.p, n, reg);
    ASSERT_TRUE(generated.dispatch_built());
    ASSERT_TRUE(synthesized.dispatch_built());
    EXPECT_TRUE(generated.same_structure(synthesized));
    EXPECT_TRUE(synthesized.same_structure(generated));
    EXPECT_FALSE(generated.validate().has_value());
  }
}

TEST(GeneratedEquivalence, GoldenSetCoversTheEquivalenceGrid) {
  // A-F x n in {3,5}: same grid the equivalence goldens pin.
  ASSERT_EQ(std::size(kGoldenUnits), 12u);
  for (paper::Property p : paper::kAllProperties) {
    for (int n : {3, 5}) {
      const std::string formula = paper::formula_text(p, n);
      bool found = false;
      for (const GoldenUnit& unit : kGoldenUnits) {
        if (formula == unit.g->formula) found = true;
      }
      EXPECT_TRUE(found) << formula;
    }
  }
}

TEST(GeneratedEquivalence, MaterializedDispatchAgreesWithLinearScan) {
  // The installed tables must reproduce first-match-in-insertion-order
  // exactly (the same cross-check build_dispatch gets in
  // dispatch_table_test, now for tables we did NOT build at runtime).
  for (const GoldenUnit& unit : kGoldenUnits) {
    const gen::GenAutomaton& g = *unit.g;
    SCOPED_TRACE(g.name);
    const MonitorAutomaton m = gen::materialize(g);
    const std::uint64_t letters = std::uint64_t{1} << g.dispatch_bits;
    for (int q = 0; q < m.num_states(); ++q) {
      for (std::uint64_t i = 0; i < letters; ++i) {
        AtomSet letter = 0;
        for (int b = 0; b < g.dispatch_bits; ++b) {
          if (i & (std::uint64_t{1} << b)) {
            letter |= AtomSet{1} << g.atom_pos[b];
          }
        }
        const MonitorTransition* fast = m.matching_transition(q, letter);
        const MonitorTransition* ref = m.matching_transition_linear(q, letter);
        ASSERT_EQ(fast, ref) << "state " << q << " letter " << letter;
      }
    }
  }
}

TEST(GeneratedEquivalence, InstallDispatchRejectsForeignTables) {
  // install_dispatch guards the only unchecked coupling: the atom positions
  // must be the automaton's own relevant mask, ascending.
  const gen::GenAutomaton& g = gen::kGen_A_n3;
  MonitorAutomaton m;
  for (std::int32_t q = 0; q < g.num_states; ++q) {
    m.add_state(static_cast<Verdict>(g.verdicts[q]));
  }
  m.set_initial(g.initial);
  for (std::int32_t i = 0; i < g.num_transitions; ++i) {
    const gen::GenTransition& t = g.transitions[i];
    m.add_transition(t.from, t.to, Cube{t.pos, t.neg});
  }
  MonitorAutomaton::PrebuiltDispatch pre;
  pre.bits = g.dispatch_bits + 1;  // wrong width for the relevant mask
  pre.atom_pos = g.atom_pos;
  pre.dispatch = g.dispatch;
  pre.dispatch_to = g.dispatch_to;
  EXPECT_THROW(m.install_dispatch(pre), std::invalid_argument);

  const std::uint8_t wrong_pos[] = {0, 1, 2};  // not the relevant atoms
  pre.bits = g.dispatch_bits;
  pre.atom_pos = wrong_pos;
  EXPECT_THROW(m.install_dispatch(pre), std::invalid_argument);
  EXPECT_FALSE(m.dispatch_built());
}

}  // namespace
}  // namespace decmon
