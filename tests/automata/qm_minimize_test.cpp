#include "decmon/automata/qm_minimize.hpp"

#include <gtest/gtest.h>

#include <random>

namespace decmon {
namespace {

// Evaluate a cover against a minterm (over the dense variables mapped
// through atom_ids).
bool cover_matches(const std::vector<Cube>& cover, std::uint32_t minterm,
                   const std::vector<int>& atom_ids) {
  AtomSet letter = 0;
  for (std::size_t b = 0; b < atom_ids.size(); ++b) {
    if (minterm & (1u << b)) {
      letter |= AtomSet{1} << atom_ids[b];
    }
  }
  for (const Cube& c : cover) {
    if (c.matches(letter)) return true;
  }
  return false;
}

TEST(QmMinimize, EmptyOnsetYieldsEmptyCover) {
  std::vector<char> onset(4, 0);
  EXPECT_TRUE(minimize_cover(onset, 2, {0, 1}).empty());
}

TEST(QmMinimize, FullOnsetYieldsTrueCube) {
  std::vector<char> onset(4, 1);
  auto cover = minimize_cover(onset, 2, {0, 1});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_TRUE(cover[0].is_true());
}

TEST(QmMinimize, SingleMinterm) {
  std::vector<char> onset(4, 0);
  onset[0b01] = 1;  // a0 && !a1
  auto cover = minimize_cover(onset, 2, {0, 1});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].pos, AtomSet{0b01});
  EXPECT_EQ(cover[0].neg, AtomSet{0b10});
}

TEST(QmMinimize, SingleVariableProjection) {
  // f = a0 (independent of a1): minterms 01 and 11.
  std::vector<char> onset(4, 0);
  onset[0b01] = onset[0b11] = 1;
  auto cover = minimize_cover(onset, 2, {0, 1});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].pos, AtomSet{0b01});
  EXPECT_EQ(cover[0].neg, AtomSet{0});
}

TEST(QmMinimize, DisjunctionOfNegations) {
  // f = !a0 || !a1 (the self-loop of property B with 2 processes):
  // expect exactly 2 cubes.
  std::vector<char> onset(4, 1);
  onset[0b11] = 0;
  auto cover = minimize_cover(onset, 2, {0, 1});
  EXPECT_EQ(cover.size(), 2u);
}

TEST(QmMinimize, NegatedConjunctionOfNAtoms) {
  // !(a0 && ... && a(k-1)) needs exactly k cubes -- the structure behind
  // the self-loop counts in Table 5.1 (property B/E rows).
  for (int k = 2; k <= 6; ++k) {
    std::vector<char> onset(std::size_t{1} << k, 1);
    onset.back() = 0;  // all atoms true
    std::vector<int> ids;
    for (int i = 0; i < k; ++i) ids.push_back(i);
    auto cover = minimize_cover(onset, k, ids);
    EXPECT_EQ(cover.size(), static_cast<std::size_t>(k)) << "k=" << k;
  }
}

TEST(QmMinimize, ProductOfDisjunctions) {
  // (!a0 || !a1) && (!a2 || !a3) needs 4 cubes (property A/D bottom
  // transitions).
  std::vector<char> onset(16, 0);
  for (std::uint32_t m = 0; m < 16; ++m) {
    const bool left = ((m & 0b0011) != 0b0011);
    const bool right = ((m & 0b1100) != 0b1100);
    onset[m] = left && right;
  }
  auto cover = minimize_cover(onset, 4, {0, 1, 2, 3});
  EXPECT_EQ(cover.size(), 4u);
}

TEST(QmMinimize, XorNeedsTwoCubes) {
  std::vector<char> onset(4, 0);
  onset[0b01] = onset[0b10] = 1;
  auto cover = minimize_cover(onset, 2, {0, 1});
  EXPECT_EQ(cover.size(), 2u);
}

TEST(QmMinimize, AtomIdsRemapBits) {
  std::vector<char> onset(4, 0);
  onset[0b01] = onset[0b11] = 1;  // f = dense bit 0
  auto cover = minimize_cover(onset, 2, {5, 9});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].pos, AtomSet{1} << 5);
}

TEST(QmMinimize, RejectsOutOfRangeK) {
  std::vector<char> onset(2, 1);
  EXPECT_THROW(minimize_cover(onset, 21, {}), std::invalid_argument);
}

// Property: on random functions, the cover is exact (covers the on-set and
// nothing else).
TEST(QmMinimizeProperty, CoverIsExact) {
  std::mt19937_64 rng(31337);
  for (int iter = 0; iter < 300; ++iter) {
    const int k = 1 + static_cast<int>(rng() % 5);
    const std::size_t n = std::size_t{1} << k;
    std::vector<char> onset(n);
    for (auto& x : onset) x = rng() & 1;
    std::vector<int> ids;
    for (int i = 0; i < k; ++i) ids.push_back(i);
    auto cover = minimize_cover(onset, k, ids);
    for (std::uint32_t m = 0; m < n; ++m) {
      EXPECT_EQ(cover_matches(cover, m, ids), onset[m] != 0)
          << "k=" << k << " m=" << m;
    }
  }
}

// Property: the cover never exceeds the number of on-set minterms.
TEST(QmMinimizeProperty, CoverNoLargerThanMinterms) {
  std::mt19937_64 rng(555);
  for (int iter = 0; iter < 200; ++iter) {
    const int k = 1 + static_cast<int>(rng() % 5);
    const std::size_t n = std::size_t{1} << k;
    std::vector<char> onset(n);
    std::size_t count = 0;
    for (auto& x : onset) {
      x = rng() & 1;
      count += static_cast<std::size_t>(x);
    }
    std::vector<int> ids;
    for (int i = 0; i < k; ++i) ids.push_back(i);
    auto cover = minimize_cover(onset, k, ids);
    EXPECT_LE(cover.size(), std::max<std::size_t>(count, 1));
  }
}

}  // namespace
}  // namespace decmon
