#include "decmon/automata/guard.hpp"

#include <gtest/gtest.h>

#include "decmon/ltl/atoms.hpp"

namespace decmon {
namespace {

TEST(Cube, TrueMatchesEverything) {
  Cube t;
  EXPECT_TRUE(t.is_true());
  EXPECT_TRUE(t.matches(0));
  EXPECT_TRUE(t.matches(0xFF));
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.to_string(), "true");
}

TEST(Cube, MatchesSemantics) {
  Cube c{0b001, 0b010};  // a0 && !a1
  EXPECT_TRUE(c.matches(0b001));
  EXPECT_TRUE(c.matches(0b101));
  EXPECT_FALSE(c.matches(0b011));  // a1 set
  EXPECT_FALSE(c.matches(0b000));  // a0 clear
  EXPECT_EQ(c.size(), 2);
}

TEST(Cube, ContradictionDetection) {
  EXPECT_TRUE((Cube{0b1, 0b1}.contradictory()));
  EXPECT_FALSE((Cube{0b1, 0b10}.contradictory()));
  // A contradictory cube matches nothing.
  Cube c{0b1, 0b1};
  for (AtomSet a = 0; a < 4; ++a) EXPECT_FALSE(c.matches(a));
}

TEST(Cube, ConjoinUnionsLiterals) {
  Cube a{0b001, 0b010};
  Cube b{0b100, 0b000};
  Cube c = Cube::conjoin(a, b);
  EXPECT_EQ(c.pos, AtomSet{0b101});
  EXPECT_EQ(c.neg, AtomSet{0b010});
}

TEST(Cube, ImpliesIsLiteralSubset) {
  Cube strong{0b011, 0b100};  // a0 && a1 && !a2
  Cube weak{0b001, 0};        // a0
  EXPECT_TRUE(strong.implies(weak));
  EXPECT_FALSE(weak.implies(strong));
  EXPECT_TRUE(strong.implies(strong));
  EXPECT_TRUE(strong.implies(Cube{}));  // everything implies true
}

TEST(Cube, SupportUnionsBothSides) {
  Cube c{0b001, 0b100};
  EXPECT_EQ(c.support(), AtomSet{0b101});
}

TEST(Cube, ToStringWithRegistry) {
  AtomRegistry reg(2);
  const int v = reg.declare_variable(0, "p");
  reg.boolean_atom(0, v);               // atom 0: P0.p
  const int w = reg.declare_variable(1, "p");
  reg.boolean_atom(1, w);               // atom 1: P1.p
  Cube c{0b01, 0b10};
  EXPECT_EQ(c.to_string(&reg), "P0.p && !P1.p");
}

TEST(Guard, RestrictToProcess) {
  AtomRegistry reg(2);
  reg.boolean_atom(0, reg.declare_variable(0, "p"));  // atom 0
  reg.boolean_atom(1, reg.declare_variable(1, "p"));  // atom 1
  Cube c{0b01, 0b10};  // P0.p && !P1.p
  Cube p0 = restrict_to_process(c, reg, 0);
  EXPECT_EQ(p0.pos, AtomSet{0b01});
  EXPECT_EQ(p0.neg, AtomSet{0});
  Cube p1 = restrict_to_process(c, reg, 1);
  EXPECT_EQ(p1.pos, AtomSet{0});
  EXPECT_EQ(p1.neg, AtomSet{0b10});
}

TEST(Guard, LocallySatisfiedIgnoresForeignLiterals) {
  AtomRegistry reg(2);
  reg.boolean_atom(0, reg.declare_variable(0, "p"));  // atom 0
  reg.boolean_atom(1, reg.declare_variable(1, "p"));  // atom 1
  Cube c{0b11, 0};  // P0.p && P1.p
  // P0's letter has its own bit set: locally fine even though P1's is not.
  EXPECT_TRUE(locally_satisfied(c, 0b01, reg.owned_mask(0)));
  EXPECT_FALSE(locally_satisfied(c, 0b00, reg.owned_mask(0)));
  // P1's side.
  EXPECT_TRUE(locally_satisfied(c, 0b10, reg.owned_mask(1)));
  EXPECT_FALSE(locally_satisfied(c, 0b01, reg.owned_mask(1)));
}

}  // namespace
}  // namespace decmon
