#include "decmon/automata/analysis.hpp"

#include <gtest/gtest.h>

#include "../common/random_computation.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/core/properties.hpp"
#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

TEST(AutomatonAnalysis, SafetyReachesFalseOnly) {
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m = synthesize_monitor(parse_ltl("G(P0.p)", reg));
  AutomatonAnalysis a = analyze_automaton(m);
  const int q0 = m.initial_state();
  EXPECT_TRUE(a.can_reach_false[static_cast<std::size_t>(q0)]);
  EXPECT_FALSE(a.can_reach_true[static_cast<std::size_t>(q0)]);
  EXPECT_FALSE(a.verdict_settled(q0));
  EXPECT_EQ(a.distance_to_verdict[static_cast<std::size_t>(q0)], 1);
}

TEST(AutomatonAnalysis, CoSafetyReachesTrueOnly) {
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m = synthesize_monitor(parse_ltl("F(P0.p)", reg));
  AutomatonAnalysis a = analyze_automaton(m);
  const int q0 = m.initial_state();
  EXPECT_TRUE(a.can_reach_true[static_cast<std::size_t>(q0)]);
  EXPECT_FALSE(a.can_reach_false[static_cast<std::size_t>(q0)]);
}

TEST(AutomatonAnalysis, NonMonitorableIsSettled) {
  // G F p: the single '?' state can never reach a verdict.
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("G(F(P0.p))", reg));
  AutomatonAnalysis a = analyze_automaton(m);
  ASSERT_EQ(m.num_states(), 1);
  EXPECT_TRUE(a.verdict_settled(0));
  EXPECT_EQ(a.distance_to_verdict[0], AutomatonAnalysis::kUnreachable);
}

TEST(AutomatonAnalysis, FinalStatesHaveDistanceZero) {
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("(P0.p) U (P1.p)", reg));
  AutomatonAnalysis a = analyze_automaton(m);
  for (int q = 0; q < m.num_states(); ++q) {
    if (m.is_final(q)) {
      EXPECT_EQ(a.distance_to_verdict[static_cast<std::size_t>(q)], 0);
      // Final states are absorbing: they only "reach" themselves.
      EXPECT_EQ(a.can_reach_false[static_cast<std::size_t>(q)],
                m.verdict(q) == Verdict::kFalse);
      EXPECT_EQ(a.can_reach_true[static_cast<std::size_t>(q)],
                m.verdict(q) == Verdict::kTrue);
    }
  }
}

TEST(AutomatonAnalysis, XPropertyDistancesCountSteps) {
  // X X p decides on the third letter: the initial state (zero letters
  // consumed) is three steps from the verdict frontier.
  AtomRegistry reg = testing::standard_registry(1);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("X(X(P0.p))", reg));
  AutomatonAnalysis a = analyze_automaton(m);
  EXPECT_EQ(a.distance_to_verdict[static_cast<std::size_t>(
                m.initial_state())],
            3);
}

TEST(AutomatonAnalysis, MixedPropertyReachesBoth) {
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("(P0.p) U (P1.p)", reg));
  AutomatonAnalysis a = analyze_automaton(m);
  const int q0 = m.initial_state();
  EXPECT_TRUE(a.can_reach_false[static_cast<std::size_t>(q0)]);
  EXPECT_TRUE(a.can_reach_true[static_cast<std::size_t>(q0)]);
}


TEST(Monitorability, ClassifiesCanonicalShapes) {
  AtomRegistry reg = testing::standard_registry(2);
  auto cls = [&](const char* text) {
    return classify(synthesize_monitor(parse_ltl(text, reg)));
  };
  EXPECT_EQ(cls("G(P0.p)"), Monitorability::kSafety);
  EXPECT_EQ(cls("F(P0.p)"), Monitorability::kCoSafety);
  EXPECT_EQ(cls("(P0.p) U (P1.p)"), Monitorability::kMonitorable);
  EXPECT_EQ(cls("G(F(P0.p))"), Monitorability::kNonMonitorable);
  EXPECT_EQ(cls("F(G(P0.p))"), Monitorability::kNonMonitorable);
  // Verdicts possible, but one branch can fall into a settled region.
  EXPECT_EQ(cls("X(P0.p) || G(F(P1.p))"),
            Monitorability::kWeaklyMonitorable);
}

TEST(Monitorability, ToStringCoversAllClasses) {
  EXPECT_EQ(to_string(Monitorability::kSafety), "safety");
  EXPECT_EQ(to_string(Monitorability::kCoSafety), "co-safety");
  EXPECT_EQ(to_string(Monitorability::kMonitorable), "monitorable");
  EXPECT_EQ(to_string(Monitorability::kWeaklyMonitorable),
            "weakly-monitorable");
  EXPECT_EQ(to_string(Monitorability::kNonMonitorable), "non-monitorable");
}

TEST(Monitorability, PaperPropertiesClassify) {
  // A/C/D/F are safety-shaped (G of an until: never satisfiable finitely);
  // B/E are co-safety (F of a state predicate).
  for (paper::Property p : paper::kAllProperties) {
    AtomRegistry reg = paper::make_registry(3);
    MonitorAutomaton m = paper::build_automaton(p, 3, reg);
    const Monitorability cls = classify(m);
    if (p == paper::Property::kB || p == paper::Property::kE) {
      EXPECT_EQ(cls, Monitorability::kCoSafety) << paper::name(p);
    } else {
      EXPECT_EQ(cls, Monitorability::kSafety) << paper::name(p);
    }
  }
}

}  // namespace
}  // namespace decmon
