#include "decmon/automata/buchi.hpp"

#include <gtest/gtest.h>

#include <random>

#include "../common/random_formula.hpp"
#include "decmon/ltl/eval.hpp"
#include "decmon/ltl/formula.hpp"

namespace decmon {
namespace {

constexpr AtomSet kA = 0b01;
constexpr AtomSet kB = 0b10;

TEST(Buchi, EventuallyAccepts) {
  Nba nba = ltl_to_nba(f_eventually(f_atom(0)));
  EXPECT_TRUE(nba.accepts_lasso({0, 0, kA}, {0}));
  EXPECT_TRUE(nba.accepts_lasso({}, {kA}));
  EXPECT_FALSE(nba.accepts_lasso({0, 0}, {0}));
}

TEST(Buchi, AlwaysAccepts) {
  Nba nba = ltl_to_nba(f_always(f_atom(0)));
  EXPECT_TRUE(nba.accepts_lasso({kA}, {kA}));
  EXPECT_FALSE(nba.accepts_lasso({kA, 0}, {kA}));
  EXPECT_FALSE(nba.accepts_lasso({kA}, {kA, 0}));
}

TEST(Buchi, UntilIsStrong) {
  Nba nba = ltl_to_nba(f_until(f_atom(0), f_atom(1)));
  EXPECT_TRUE(nba.accepts_lasso({kA, kA, kB}, {0}));
  EXPECT_FALSE(nba.accepts_lasso({}, {kA}));  // b never arrives
}

TEST(Buchi, GFNeedsInfinitelyOften) {
  Nba nba = ltl_to_nba(f_always(f_eventually(f_atom(0))));
  EXPECT_TRUE(nba.accepts_lasso({}, {0, kA}));
  EXPECT_FALSE(nba.accepts_lasso({kA, kA, kA}, {0}));
}

TEST(Buchi, ConjunctionOfUntilsDegeneralizes) {
  // Two Until obligations force the degeneralization path.
  FormulaPtr f = f_and(f_eventually(f_atom(0)), f_eventually(f_atom(1)));
  Nba nba = ltl_to_nba(f);
  EXPECT_TRUE(nba.accepts_lasso({kA, kB}, {0}));
  EXPECT_TRUE(nba.accepts_lasso({kA}, {0, kB}));
  EXPECT_FALSE(nba.accepts_lasso({kA}, {0}));
  EXPECT_FALSE(nba.accepts_lasso({kB, kB}, {kB}));
}

TEST(Buchi, NonemptyStatesOnSafety) {
  // G a: from the initial state some word is accepted; the automaton has no
  // dead initial state.
  Nba nba = ltl_to_nba(f_always(f_atom(0)));
  auto ne = nba.nonempty_states();
  for (int q0 : nba.initial) {
    EXPECT_TRUE(ne[static_cast<std::size_t>(q0)]);
  }
}

TEST(Buchi, FalseFormulaHasEmptyLanguage) {
  // a && !a is unsatisfiable; GPVW discards all nodes.
  Nba nba = ltl_to_nba(f_and(f_atom(0), f_not(f_atom(0))));
  auto ne = nba.nonempty_states();
  for (int q0 : nba.initial) {
    EXPECT_FALSE(ne[static_cast<std::size_t>(q0)]);
  }
  EXPECT_FALSE(nba.accepts_lasso({kA}, {kA}));
}

TEST(Buchi, TrueFormulaAcceptsEverything) {
  Nba nba = ltl_to_nba(f_true());
  EXPECT_TRUE(nba.accepts_lasso({}, {0}));
  EXPECT_TRUE(nba.accepts_lasso({kA, kB}, {kA | kB, 0}));
}

TEST(Buchi, NextShiftsObligation) {
  Nba nba = ltl_to_nba(f_next(f_atom(0)));
  EXPECT_TRUE(nba.accepts_lasso({0, kA}, {0}));
  EXPECT_FALSE(nba.accepts_lasso({kA, 0}, {0}));
}

TEST(Buchi, ReleaseAllowsForeverB) {
  Nba nba = ltl_to_nba(f_release(f_atom(0), f_atom(1)));
  EXPECT_TRUE(nba.accepts_lasso({}, {kB}));
  EXPECT_TRUE(nba.accepts_lasso({kB, kA | kB}, {0}));
  EXPECT_FALSE(nba.accepts_lasso({kB}, {0}));
}

// The central randomized check: the NBA accepts a lasso word iff the direct
// fixpoint semantics says the word satisfies the formula. This validates
// the GPVW construction end to end with an independent oracle.
TEST(BuchiProperty, AgreesWithLassoSemantics) {
  std::mt19937_64 rng(20240707);
  int checked = 0;
  for (int iter = 0; iter < 150; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 3);
    Nba nba = ltl_to_nba(f);
    for (int w = 0; w < 12; ++w) {
      auto prefix = testing::random_word(rng, 2, static_cast<int>(rng() % 3));
      auto loop = testing::random_word(rng, 2, 1 + static_cast<int>(rng() % 3));
      const bool expected = lasso_satisfies(f, prefix, loop);
      EXPECT_EQ(nba.accepts_lasso(prefix, loop), expected)
          << "formula: " << f->to_string() << " prefix=" << prefix.size()
          << " loop=" << loop.size();
      ++checked;
    }
  }
  EXPECT_GE(checked, 1000);
}

// Exhaustive check on small formulas: all lassos with |prefix|<=1,
// |loop|<=2 over 2 atoms.
TEST(BuchiProperty, ExhaustiveSmallLassos) {
  std::mt19937_64 rng(4242);
  for (int iter = 0; iter < 40; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 2);
    Nba nba = ltl_to_nba(f);
    for (int plen = 0; plen <= 1; ++plen) {
      for (int llen = 1; llen <= 2; ++llen) {
        for_each_lasso(2, plen, llen, [&](const std::vector<AtomSet>& prefix,
                                          const std::vector<AtomSet>& loop) {
          EXPECT_EQ(nba.accepts_lasso(prefix, loop),
                    lasso_satisfies(f, prefix, loop))
              << f->to_string();
          return true;
        });
      }
    }
  }
}

}  // namespace
}  // namespace decmon
