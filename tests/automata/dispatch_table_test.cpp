// The dense (state, letter) dispatch table must reproduce the linear guard
// scan exactly: same matching transition for every state and every letter,
// including letters with bits outside the relevant-atom mask. Checked
// exhaustively over the relevant alphabet for every thesis-shaped automaton
// (properties A-F at several n) and a corpus of synthesized automata, plus
// random 64-bit letters for the irrelevant-bit invariance.
#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <string>
#include <vector>

#include "../common/random_formula.hpp"
#include "decmon/decmon.hpp"

namespace decmon {
namespace {

/// Expand dense index `m` over the relevant atom positions of `mask`.
AtomSet expand_letter(AtomSet mask, std::uint64_t m) {
  AtomSet letter = 0;
  int b = 0;
  for (int i = 0; i < 64; ++i) {
    if (!(mask & (AtomSet{1} << i))) continue;
    if (m & (std::uint64_t{1} << b)) letter |= AtomSet{1} << i;
    ++b;
  }
  return letter;
}

void check_dispatch_matches_linear(const MonitorAutomaton& m,
                                   const std::string& what) {
  ASSERT_TRUE(m.dispatch_built()) << what;
  const AtomSet mask = m.relevant_atoms();
  const int k = std::popcount(mask);
  ASSERT_LE(k, MonitorAutomaton::kMaxDispatchAtoms) << what;

  // Exhaustive over the relevant alphabet.
  for (int q = 0; q < m.num_states(); ++q) {
    for (std::uint64_t i = 0; i < (std::uint64_t{1} << k); ++i) {
      const AtomSet letter = expand_letter(mask, i);
      const MonitorTransition* table = m.matching_transition(q, letter);
      const MonitorTransition* linear = m.matching_transition_linear(q, letter);
      ASSERT_EQ(table, linear)
          << what << ": state " << q << " letter " << letter;
    }
  }

  // Random full-width letters: bits outside the mask must not matter.
  std::mt19937_64 rng(0xD15BA7C4u);
  for (int q = 0; q < m.num_states(); ++q) {
    for (int i = 0; i < 64; ++i) {
      const AtomSet letter = rng();
      ASSERT_EQ(m.matching_transition(q, letter),
                m.matching_transition_linear(q, letter))
          << what << ": state " << q << " letter " << letter;
    }
  }
}

TEST(DispatchTable, MatchesLinearScanOnThesisAutomata) {
  for (paper::Property p : paper::kAllProperties) {
    for (int n : {2, 3, 4, 5}) {
      AtomRegistry reg = paper::make_registry(n);
      MonitorAutomaton m = paper::build_automaton(p, n, reg);
      check_dispatch_matches_linear(
          m, paper::name(p) + " n=" + std::to_string(n));
    }
  }
}

TEST(DispatchTable, MatchesLinearScanOnSynthesizedCorpus) {
  const char* texts[] = {
      "G(P0.p)",
      "F(P0.p && P1.p)",
      "(P0.p) U (P1.p)",
      "X(X(P0.p))",
      "G(F(P0.p || P1.q))",
      "G((P0.p && P1.p) U (P2.p && P2.q))",
      "(P0.p R P1.p) && F(P2.q)",
  };
  for (const char* text : texts) {
    AtomRegistry reg = paper::make_registry(3);
    MonitorAutomaton m = synthesize_monitor(parse_ltl(text, reg));
    check_dispatch_matches_linear(m, text);
  }
}

TEST(DispatchTable, MatchesLinearScanOnRandomFormulas) {
  std::mt19937_64 rng(77);
  for (int iter = 0; iter < 40; ++iter) {
    FormulaPtr f = testing::random_formula(rng, /*num_atoms=*/4, /*depth=*/3);
    MonitorAutomaton m = synthesize_monitor(f);
    check_dispatch_matches_linear(m, "random formula #" + std::to_string(iter));
  }
}

TEST(DispatchTable, StepAgreesWithMatchingTransition) {
  AtomRegistry reg = paper::make_registry(4);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kF, 4, reg);
  std::mt19937_64 rng(5);
  for (int q = 0; q < m.num_states(); ++q) {
    for (int i = 0; i < 256; ++i) {
      const AtomSet letter = rng();
      const MonitorTransition* t = m.matching_transition(q, letter);
      const auto to = m.step(q, letter);
      ASSERT_TRUE(t != nullptr && to.has_value());
      EXPECT_EQ(*to, t->to);
    }
  }
}

TEST(DispatchTable, MutationInvalidatesAndRebuilds) {
  AtomRegistry reg = paper::make_registry(2);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kB, 2, reg);
  EXPECT_TRUE(m.dispatch_built());
  const int q = m.add_state(Verdict::kUnknown);
  EXPECT_FALSE(m.dispatch_built());  // stale table must not be consulted
  m.add_transition(q, q, Cube{});
  m.build_dispatch();
  EXPECT_TRUE(m.dispatch_built());
  check_dispatch_matches_linear(m, "mutated B automaton");
}

TEST(DispatchTable, RelevantAtomsIsMaintainedIncrementally) {
  MonitorAutomaton m;
  const int a = m.add_state(Verdict::kUnknown);
  const int b = m.add_state(Verdict::kTrue);
  EXPECT_EQ(m.relevant_atoms(), 0u);
  m.add_transition(a, b, Cube{/*pos=*/0b101, /*neg=*/0});
  EXPECT_EQ(m.relevant_atoms(), 0b101u);
  m.add_transition(a, a, Cube{/*pos=*/0, /*neg=*/0b010});
  EXPECT_EQ(m.relevant_atoms(), 0b111u);
}

}  // namespace
}  // namespace decmon
