// Parameterized synthesis sweep: for seeded families of random formulas,
// the whole pipeline (GPVW -> subset construction -> minimization -> cube
// extraction) agrees with the independent lasso semantics, letter by
// letter, and stays structurally valid.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "../common/random_formula.hpp"
#include "decmon/automata/buchi.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/ltl/eval.hpp"

namespace decmon {
namespace {

using SweepParam = std::tuple<int /*seed*/, int /*atoms*/, int /*depth*/>;

class SynthesisSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SynthesisSweep, MonitorAgreesWithLassoSemantics) {
  const auto [seed, atoms, depth] = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
  for (int iter = 0; iter < 12; ++iter) {
    FormulaPtr f = testing::random_formula(rng, atoms, depth);
    // Pipeline validity.
    MonitorAutomaton minimized = synthesize_monitor(f);
    SynthesisOptions raw_options;
    raw_options.minimize = false;
    MonitorAutomaton raw = synthesize_monitor(f, raw_options);
    EXPECT_LE(minimized.num_states(), raw.num_states());

    // Semantic checks against the lasso oracle.
    for (int w = 0; w < 8; ++w) {
      auto word =
          testing::random_word(rng, atoms, static_cast<int>(rng() % 6));
      const int q_min = minimized.run(word);
      const int q_raw = raw.run(word);
      EXPECT_EQ(minimized.verdict(q_min), raw.verdict(q_raw));
      const Verdict v = minimized.verdict(q_min);
      // Sample continuations: a definite verdict must bind them all.
      for (int c = 0; c < 6; ++c) {
        auto loop =
            testing::random_word(rng, atoms, 1 + static_cast<int>(rng() % 2));
        const bool sat = lasso_satisfies(f, word, loop);
        if (v == Verdict::kTrue) EXPECT_TRUE(sat) << f->to_string();
        if (v == Verdict::kFalse) EXPECT_FALSE(sat) << f->to_string();
      }
    }
  }
}

TEST_P(SynthesisSweep, NbaMatchesLassoSemantics) {
  const auto [seed, atoms, depth] = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 40503u + 3);
  for (int iter = 0; iter < 10; ++iter) {
    FormulaPtr f = testing::random_formula(rng, atoms, depth);
    Nba nba = ltl_to_nba(f);
    for (int w = 0; w < 8; ++w) {
      auto prefix =
          testing::random_word(rng, atoms, static_cast<int>(rng() % 3));
      auto loop =
          testing::random_word(rng, atoms, 1 + static_cast<int>(rng() % 3));
      EXPECT_EQ(nba.accepts_lasso(prefix, loop),
                lasso_satisfies(f, prefix, loop))
          << f->to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeded, SynthesisSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(2, 3)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      // std::get, not structured bindings: the macro splits arguments on
      // commas inside square brackets.
      return "seed" + std::to_string(std::get<0>(info.param)) + "_a" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace decmon
