// Allocation-budget regression test for the token path.
//
// Replaces global operator new in THIS binary only, counts heap
// allocations across a fixed monitored run (cell D, n=5, communication
// on, seed 1 -- the heaviest token-routing cell in the bench grid), and
// asserts the per-event allocation rate stays under a recorded budget.
//
// History: before the inline-storage/free-list overhaul this run cost
// ~547 allocations per event; after it, ~10. The budget of 40 leaves 4x
// headroom over the measured value while staying far below half the old
// cost (the regression bar), so the test flags any return of per-hop
// heap traffic without being brittle to library noise.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "decmon/decmon.hpp"

// Sanitizer builds own the allocator; interposing operator new there both
// skews the count and trips ASan's alloc/dealloc matching, so the hook and
// the assertion are compiled out.
#if defined(__SANITIZE_ADDRESS__)
#define DECMON_ALLOC_TEST_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DECMON_ALLOC_TEST_DISABLED 1
#endif
#endif

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

}  // namespace

#ifndef DECMON_ALLOC_TEST_DISABLED

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // DECMON_ALLOC_TEST_DISABLED

namespace decmon {
namespace {

constexpr double kAllocsPerEventBudget = 40.0;

TEST(AllocBudget, CellDStaysUnderBudget) {
#ifdef DECMON_ALLOC_TEST_DISABLED
  GTEST_SKIP() << "allocation counting is disabled under sanitizers";
#endif
  const int n = 5;
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kD, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));

  TraceParams params = paper::experiment_params(
      paper::Property::kD, n, /*seed=*/1, /*comm_mu=*/3.0,
      /*comm_enabled=*/true, /*internal_events=*/25);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  RunResult run = session.run(trace);
  g_counting.store(false, std::memory_order_relaxed);

  const double events = static_cast<double>(run.program_events);
  ASSERT_GT(events, 0.0);
  const double per_event =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed)) / events;

  RecordProperty("allocs_per_event", std::to_string(per_event));
  EXPECT_LE(per_event, kAllocsPerEventBudget)
      << "token path regressed: " << per_event
      << " heap allocations per event (budget " << kAllocsPerEventBudget
      << ", pre-overhaul baseline ~547)";
}

TEST(AllocBudget, BatchedTransitSendsStayUnderBudget) {
#ifdef DECMON_ALLOC_TEST_DISABLED
  GTEST_SKIP() << "allocation counting is disabled under sanitizers";
#endif
  // The same run in CoalesceMode::kTransit (the bench posture): every send
  // goes monitor staging -> frame pool -> convoy re-batching, so this pins
  // the whole batched path. Frame shells are pooled on both sides and the
  // staging buffer reuses its capacity, so after warm-up the flush must add
  // no per-send heap traffic; the budget is the same as the bare run.
  const int n = 5;
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kD, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));

  TraceParams params = paper::experiment_params(
      paper::Property::kD, n, /*seed=*/1, /*comm_mu=*/3.0,
      /*comm_enabled=*/true, /*internal_events=*/25);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);

  SimConfig sim;
  sim.coalesce = CoalesceMode::kTransit;

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  RunResult run = session.run(trace, sim);
  g_counting.store(false, std::memory_order_relaxed);

  const double events = static_cast<double>(run.program_events);
  ASSERT_GT(events, 0.0);
  EXPECT_GT(run.verdict.aggregate.bytes_sent, 0u);
  EXPECT_GT(run.verdict.aggregate.frames_sent, 0u);
  const double per_event =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed)) / events;

  RecordProperty("allocs_per_event_transit", std::to_string(per_event));
  EXPECT_LE(per_event, kAllocsPerEventBudget)
      << "batched send path regressed: " << per_event
      << " heap allocations per event (budget " << kAllocsPerEventBudget
      << ")";
}

TEST(AllocBudget, ReliableChannelCleanPathStaysUnderBudget) {
#ifdef DECMON_ALLOC_TEST_DISABLED
  GTEST_SKIP() << "allocation counting is disabled under sanitizers";
#endif
  // Same cell-D run, but with the ReliableChannel stacked between monitors
  // and runtime. Envelope shells and byte buffers are pooled, so on a
  // fault-free run the channel adds only bounded pool warm-up -- the
  // per-event rate must hold under the same budget as the bare run.
  const int n = 5;
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kD, n, reg);
  automaton.build_dispatch();
  CompiledProperty prop(&automaton, &reg);

  TraceParams params = paper::experiment_params(
      paper::Property::kD, n, /*seed=*/1, /*comm_mu=*/3.0,
      /*comm_enabled=*/true, /*internal_events=*/25);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);

  SimRuntime runtime(std::move(trace), &reg, SimConfig{});
  ReliableChannel channel(&runtime, n);
  DecentralizedMonitor monitors(
      &prop, &channel, initial_letters_of(reg, runtime.initial_states()));
  channel.set_hooks(&monitors);
  runtime.set_hooks(&channel);

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  runtime.run();
  g_counting.store(false, std::memory_order_relaxed);

  EXPECT_TRUE(monitors.all_finished());
  const double events = static_cast<double>(runtime.program_events());
  ASSERT_GT(events, 0.0);
  const double per_event =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed)) / events;

  RecordProperty("allocs_per_event_with_channel", std::to_string(per_event));
  EXPECT_LE(per_event, kAllocsPerEventBudget)
      << "reliable channel leaks per-event heap traffic on the clean path: "
      << per_event << " allocations per event (budget "
      << kAllocsPerEventBudget << ")";
}

TEST(AllocBudget, SteadyStateShardStaysUnderBudget) {
#ifdef DECMON_ALLOC_TEST_DISABLED
  GTEST_SKIP() << "allocation counting is disabled under sanitizers";
#endif
  // The bare-run tests above exclude trace generation from the counted
  // window; the service cannot, because its workers generate traces inline.
  // Measured steady state is ~36 allocs/event, almost all of it trace
  // construction and the per-session SimRuntime setup -- the monitor hot
  // loop itself still runs at the bare-run rate. 60 gives the same ~1.6x
  // headroom proportion as the bare budget over its measurement.
  constexpr double kServiceAllocsPerEventBudget = 60.0;

  // One service shard at steady state: the first drain warms the shard's
  // session catalog, the synthesis memo, and the frame/envelope pools, and
  // then a second batch of identical cell-D sessions must run at the same
  // per-event allocation rate as a bare MonitorSession::run. Admission
  // (slot deque, queue push), trace generation, and outcome recording all
  // happen inside the counted window, so this budget covers the whole
  // service path, not just the monitor hot loop.
  service::ServiceConfig config;
  config.num_shards = 1;
  config.keep_outcomes = false;  // large-fleet posture: scalars only
  service::MonitoringService svc(config);

  auto spec_for = [](std::uint64_t seed) {
    service::SessionSpec spec;
    spec.property = paper::Property::kD;
    spec.num_processes = 5;
    spec.trace_seed = seed;
    return spec;
  };

  for (std::uint64_t seed = 1; seed <= 2; ++seed) svc.submit(spec_for(seed));
  svc.drain();  // warm-up: catalog build + pool growth land here

  const std::uint64_t events_before = svc.stats().program_events;
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (std::uint64_t seed = 3; seed <= 6; ++seed) svc.submit(spec_for(seed));
  svc.drain();
  g_counting.store(false, std::memory_order_relaxed);

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 6u);
  EXPECT_EQ(st.failed, 0u);
  const double events =
      static_cast<double>(st.program_events - events_before);
  ASSERT_GT(events, 0.0);
  const double per_event =
      static_cast<double>(g_allocs.load(std::memory_order_relaxed)) / events;

  RecordProperty("allocs_per_event_service", std::to_string(per_event));
  EXPECT_LE(per_event, kServiceAllocsPerEventBudget)
      << "steady-state shard regressed: " << per_event
      << " heap allocations per event across admission + trace generation + "
         "monitoring (budget "
      << kServiceAllocsPerEventBudget << ")";
}

}  // namespace
}  // namespace decmon
