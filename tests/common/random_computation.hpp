// Shared test helper: random computations over n processes with boolean
// propositions p and q per process, plus the standard registry and a suite
// of representative LTL properties.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "decmon/lattice/computation.hpp"
#include "decmon/ltl/atoms.hpp"

namespace decmon::testing {

/// Registry with variables p, q per process, and the boolean atoms
/// registered in a fixed order: P0.p, P0.q, P1.p, P1.q, ...
inline AtomRegistry standard_registry(int n) {
  AtomRegistry reg(n);
  for (int p = 0; p < n; ++p) {
    const int vp = reg.declare_variable(p, "p");
    const int vq = reg.declare_variable(p, "q");
    reg.boolean_atom(p, vp);
    reg.boolean_atom(p, vq);
  }
  return reg;
}

/// Random computation: `events_per_proc` events per process, a mix of
/// internal flips and matched send/receive pairs (FIFO per channel).
inline Computation random_computation(std::mt19937_64& rng, int n,
                                      const AtomRegistry& reg,
                                      int events_per_proc,
                                      int message_percent = 25) {
  ComputationBuilder b(n, &reg);
  struct Pending {
    int handle;
    int sender;
  };
  std::vector<Pending> pending;
  std::vector<int> remaining(static_cast<std::size_t>(n), events_per_proc);
  int total = n * events_per_proc;
  while (total > 0) {
    // Pick a process with remaining budget.
    int p = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    while (remaining[static_cast<std::size_t>(p)] == 0) p = (p + 1) % n;
    const int roll = static_cast<int>(rng() % 100);
    if (n > 1 && roll < message_percent / 2) {
      pending.push_back({b.send(p), p});
    } else if (!pending.empty() && roll < message_percent) {
      // Deliver the oldest message to a random other process (FIFO-ish).
      Pending m = pending.front();
      pending.erase(pending.begin());
      int to = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
      if (to == m.sender) to = (to + 1) % n;
      if (remaining[static_cast<std::size_t>(to)] > 0) {
        b.receive(to, m.handle);
        --remaining[static_cast<std::size_t>(to)];
        --total;
        continue;
      }
      pending.insert(pending.begin(), m);  // receiver exhausted; retry later
      b.internal(p, {static_cast<std::int64_t>(rng() % 2),
                     static_cast<std::int64_t>(rng() % 2)});
    } else {
      b.internal(p, {static_cast<std::int64_t>(rng() % 2),
                     static_cast<std::int64_t>(rng() % 2)});
    }
    --remaining[static_cast<std::size_t>(p)];
    --total;
  }
  return b.build();
}

/// Representative properties over 2 processes (safety, liveness, until,
/// response, nested).
inline std::vector<std::string> property_suite_2() {
  return {
      "F(P0.p && P1.p)",
      "G(P0.p || P1.p)",
      "(P0.p) U (P1.p)",
      "G((P0.p) -> F(P1.p))",
      "G((P0.p && P1.p) U (P0.q && P1.q))",
      "G((P0.p) U (P1.p))",
      "F(P0.p && P0.q && P1.p && P1.q)",
      "X X (P0.p && P1.q)",
      "(!P0.q) U (P1.p)",
      "G(!(P0.p && P1.p))",
  };
}

/// Representative properties over 3 processes.
inline std::vector<std::string> property_suite_3() {
  return {
      "F(P0.p && P1.p && P2.p)",
      "G((P0.p) U (P1.p && P2.p))",
      "G((P0.p) -> F(P1.p && P2.q))",
      "G(!(P0.p && P1.p && P2.p))",
  };
}

}  // namespace decmon::testing
