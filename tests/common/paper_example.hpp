// Shared fixture: the paper's running example (Fig. 2.1).
//
//   P1: send(P2); x1 = 5; x1 = 10; recv(m2);
//   P2: recv(m1); x2 = 15; x2 = 20; send(P1);
//
// with x1 = x2 = 0 initially.
#pragma once

#include "decmon/lattice/computation.hpp"
#include "decmon/ltl/atoms.hpp"

namespace decmon::testing {

struct PaperExample {
  AtomRegistry registry{2};
  Computation computation;

  PaperExample() {
    registry.declare_variable(0, "x1");
    registry.declare_variable(1, "x2");
    // Register the atoms of the running properties psi and psi' (Ch. 3) up
    // front, so event letters carry all of them: x1 >= 5, x2 >= 15,
    // x1 == 10, x2 == 15. (Letters are baked at build time; atoms added
    // after construction would evaluate to a constant false.)
    registry.comparison_atom(0, 0, CmpOp::kGe, 5);
    registry.comparison_atom(1, 0, CmpOp::kGe, 15);
    registry.comparison_atom(0, 0, CmpOp::kEq, 10);
    registry.comparison_atom(1, 0, CmpOp::kEq, 15);

    ComputationBuilder b(2, &registry);
    b.set_initial(0, {0});
    b.set_initial(1, {0});
    const int m1 = b.send(0);       // e1_0: send "hello"
    b.receive(1, m1);               // e2_0: recv m1
    b.internal(0, {5});             // e1_1: x1 = 5
    b.internal(1, {15});            // e2_1: x2 = 15
    b.internal(0, {10});            // e1_2: x1 = 10
    b.internal(1, {20});            // e2_2: x2 = 20
    const int m2 = b.send(1);       // e2_3: send "world"
    b.receive(0, m2);               // e1_3: recv m2
    computation = b.build();
  }
};

}  // namespace decmon::testing
