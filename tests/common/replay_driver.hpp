// Shared test helper: alias for the library's replay runtime (see
// decmon/distributed/replay_runtime.hpp) -- the tests predate its promotion
// into the library and keep the old name.
#pragma once

#include "decmon/distributed/replay_runtime.hpp"

namespace decmon::testing {

using ReplayDriver = decmon::ReplayRuntime;

}  // namespace decmon::testing
