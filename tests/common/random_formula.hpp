// Shared test helper: random LTL formula generation for property tests.
#pragma once

#include <random>
#include <vector>

#include "decmon/ltl/formula.hpp"

namespace decmon::testing {

/// Generate a random LTL formula over atoms [0, num_atoms) with at most
/// `depth` operator nestings. Distribution favours temporal operators enough
/// to exercise U/R/X paths.
inline FormulaPtr random_formula(std::mt19937_64& rng, int num_atoms,
                                 int depth) {
  std::uniform_int_distribution<int> atom_dist(0, num_atoms - 1);
  if (depth == 0) {
    switch (rng() % 4) {
      case 0: return f_not(f_atom(atom_dist(rng)));
      case 1: return f_true();
      default: return f_atom(atom_dist(rng));
    }
  }
  switch (rng() % 9) {
    case 0: return f_not(random_formula(rng, num_atoms, depth - 1));
    case 1:
      return f_and(random_formula(rng, num_atoms, depth - 1),
                   random_formula(rng, num_atoms, depth - 1));
    case 2:
      return f_or(random_formula(rng, num_atoms, depth - 1),
                  random_formula(rng, num_atoms, depth - 1));
    case 3: return f_next(random_formula(rng, num_atoms, depth - 1));
    case 4:
      return f_until(random_formula(rng, num_atoms, depth - 1),
                     random_formula(rng, num_atoms, depth - 1));
    case 5:
      return f_release(random_formula(rng, num_atoms, depth - 1),
                       random_formula(rng, num_atoms, depth - 1));
    case 6: return f_eventually(random_formula(rng, num_atoms, depth - 1));
    case 7: return f_always(random_formula(rng, num_atoms, depth - 1));
    default: return f_atom(atom_dist(rng));
  }
}

/// Random word of `len` letters over `num_atoms` atoms.
inline std::vector<AtomSet> random_word(std::mt19937_64& rng, int num_atoms,
                                        int len) {
  std::vector<AtomSet> word;
  word.reserve(static_cast<std::size_t>(len));
  const AtomSet mask = (AtomSet{1} << num_atoms) - 1;
  for (int i = 0; i < len; ++i) word.push_back(rng() & mask);
  return word;
}

}  // namespace decmon::testing
