// Compile-level check: the umbrella header exposes the full public API in
// one include, and the major entry points are usable together.
#include "decmon/decmon.hpp"

#include <gtest/gtest.h>

namespace decmon {
namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  AtomRegistry reg = paper::make_registry(2);
  FormulaPtr f = parse_ltl("G((P0.p) U (P1.p))", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  EXPECT_EQ(classify(m), Monitorability::kSafety);

  MonitorSession session(std::move(reg), std::move(m));
  TraceParams params = paper::experiment_params(paper::Property::kC, 2, 1);
  params.internal_events = 5;
  SystemTrace trace = generate_trace(params);
  RunResult run = session.run(trace);
  EXPECT_TRUE(run.verdict.all_finished);

  // Wire format, event logs and the oracle are reachable too.
  Token t;
  t.parent_vc = VectorClock(2);
  EXPECT_NO_THROW(decode_token(encode_token(t)));
  SimRuntime sim(trace, &session.registry());
  sim.run();
  Computation comp(sim.history());
  EXPECT_NO_THROW(to_event_log(comp));
  EXPECT_NO_THROW(oracle_evaluate(comp, session.automaton()));
}

}  // namespace
}  // namespace decmon
