#include "decmon/core/properties.hpp"

#include <gtest/gtest.h>

#include <random>

#include "../common/random_formula.hpp"
#include "decmon/automata/ltl3_monitor.hpp"

namespace decmon {
namespace {

using paper::Property;

struct Row {
  Property prop;
  int n;
  int total;
  int outgoing;
  int self_loops;
};

// Table 5.1 of the thesis (transition counts per automaton). Rows marked in
// EXPERIMENTS.md as internally inconsistent in the thesis (B5, C4, D4) use
// the arithmetically consistent values our parametric construction yields;
// all other rows match the thesis verbatim.
const Row kTable51[] = {
    {Property::kA, 2, 7, 4, 3},   {Property::kA, 3, 11, 7, 4},
    {Property::kA, 4, 15, 11, 4}, {Property::kA, 5, 21, 16, 5},
    {Property::kB, 2, 4, 1, 3},   {Property::kB, 3, 5, 1, 4},
    {Property::kB, 4, 6, 1, 5},   {Property::kB, 5, 7, 1, 6},
    {Property::kC, 2, 7, 4, 3},   {Property::kC, 3, 11, 7, 4},
    {Property::kC, 4, 15, 10, 5}, {Property::kC, 5, 19, 13, 6},
    {Property::kD, 2, 15, 11, 4}, {Property::kD, 3, 27, 22, 5},
    {Property::kD, 4, 43, 37, 6}, {Property::kD, 5, 63, 56, 7},
    {Property::kE, 2, 6, 1, 5},   {Property::kE, 3, 8, 1, 7},
    {Property::kE, 4, 10, 1, 9},  {Property::kE, 5, 12, 1, 11},
};

TEST(PaperProperties, Table51TransitionCounts) {
  for (const Row& row : kTable51) {
    AtomRegistry reg = paper::make_registry(row.n);
    MonitorAutomaton m = paper::build_automaton(row.prop, row.n, reg);
    EXPECT_EQ(m.count_total(), row.total)
        << paper::name(row.prop) << "(" << row.n << ")";
    EXPECT_EQ(m.count_outgoing(), row.outgoing)
        << paper::name(row.prop) << "(" << row.n << ")";
    EXPECT_EQ(m.count_self_loops(), row.self_loops)
        << paper::name(row.prop) << "(" << row.n << ")";
  }
}

TEST(PaperProperties, PropertyFCounts) {
  // Our principled product construction for F (4 live states + violation;
  // see EXPERIMENTS.md for the comparison against the thesis's counts).
  for (int n = 2; n <= 5; ++n) {
    AtomRegistry reg = paper::make_registry(n);
    MonitorAutomaton m = paper::build_automaton(Property::kF, n, reg);
    const int b = n - 1;
    EXPECT_EQ(m.count_total(), 4 * b * b + 16 * b + 5) << n;
    EXPECT_EQ(m.count_self_loops(), b * b + 2 * b + 2) << n;
    EXPECT_EQ(m.num_states(), 5);
  }
}

TEST(PaperProperties, AllAutomataValidate) {
  for (Property p : paper::kAllProperties) {
    for (int n = 2; n <= 5; ++n) {
      AtomRegistry reg = paper::make_registry(n);
      MonitorAutomaton m = paper::build_automaton(p, n, reg);
      EXPECT_FALSE(m.validate().has_value())
          << paper::name(p) << "(" << n << ")";
    }
  }
}

TEST(PaperProperties, FormulaTextsScale) {
  EXPECT_EQ(paper::formula_text(Property::kA, 4),
            "G((P0.p && P1.p) U (P2.p && P3.p))");
  EXPECT_EQ(paper::formula_text(Property::kA, 2), "G((P0.p) U (P1.p))");
  EXPECT_EQ(paper::formula_text(Property::kB, 3),
            "F(P0.p && P1.p && P2.p)");
  EXPECT_EQ(paper::formula_text(Property::kC, 4),
            "G((P0.p) U (P1.p && P2.p && P3.p))");
  EXPECT_EQ(paper::formula_text(Property::kD, 2),
            "G((P0.p && P1.p) U (P0.q && P1.q))");
  EXPECT_EQ(paper::formula_text(Property::kE, 2),
            "F(P0.p && P1.p && P0.q && P1.q)");
  EXPECT_EQ(paper::formula_text(Property::kF, 3),
            "G((P0.p U (P1.p && P2.p)) && (P0.q U (P1.q && P2.q)))");
}

TEST(PaperProperties, AAndCIdenticalForSmallN) {
  // "automatons A and C for the 2 processes and 3 processes experiments are
  // identical" (5.1).
  for (int n = 2; n <= 3; ++n) {
    AtomRegistry reg = paper::make_registry(n);
    MonitorAutomaton a = paper::build_automaton(Property::kA, n, reg);
    MonitorAutomaton c = paper::build_automaton(Property::kC, n, reg);
    EXPECT_EQ(a.count_total(), c.count_total());
    EXPECT_EQ(a.count_outgoing(), c.count_outgoing());
  }
}

// The hand-built automata must agree with the synthesized-and-minimized
// monitors on every trace: same verdict, letter by letter.
TEST(PaperPropertiesSemantics, HandbuiltMatchesSynthesized) {
  std::mt19937_64 rng(987);
  for (Property p : paper::kAllProperties) {
    for (int n = 2; n <= 4; ++n) {
      AtomRegistry reg = paper::make_registry(n);
      MonitorAutomaton hand = paper::build_automaton(p, n, reg);
      MonitorAutomaton synth = synthesize_monitor(paper::formula(p, n, reg));
      const int atoms = 2 * n;
      for (int w = 0; w < 40; ++w) {
        auto word =
            testing::random_word(rng, atoms, static_cast<int>(rng() % 10));
        EXPECT_EQ(hand.verdict(hand.run(word)),
                  synth.verdict(synth.run(word)))
            << paper::name(p) << "(" << n << ")";
      }
    }
  }
}

TEST(PaperProperties, SynthesizedAreSmallerOrEqual) {
  // Minimization pays: the synthesized automata never have more states.
  for (Property p : paper::kAllProperties) {
    AtomRegistry reg = paper::make_registry(3);
    MonitorAutomaton hand = paper::build_automaton(p, 3, reg);
    MonitorAutomaton synth = synthesize_monitor(paper::formula(p, 3, reg));
    EXPECT_LE(synth.num_states(), hand.num_states()) << paper::name(p);
  }
}

TEST(PaperProperties, RejectsTooFewProcesses) {
  EXPECT_THROW(paper::formula_text(Property::kA, 1), std::invalid_argument);
}

TEST(PaperProperties, RegistryMismatchThrows) {
  AtomRegistry reg = paper::make_registry(3);
  EXPECT_THROW(paper::build_automaton(Property::kA, 4, reg),
               std::invalid_argument);
}

TEST(SynthesisCache, CountsHitsAndMissesPerDistinctKey) {
  paper::synthesis_cache_clear();
  AtomRegistry reg3 = paper::make_registry(3);
  paper::build_automaton(Property::kD, 3, reg3);
  auto s = paper::synthesis_cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);

  paper::build_automaton(Property::kD, 3, reg3);
  AtomRegistry other3 = paper::make_registry(3);  // same signature
  paper::build_automaton(Property::kD, 3, other3);
  s = paper::synthesis_cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);

  AtomRegistry reg4 = paper::make_registry(4);  // different key: n changed
  paper::build_automaton(Property::kD, 4, reg4);
  paper::build_automaton(Property::kA, 3, reg3);  // different key: formula
  s = paper::synthesis_cache_stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 2u);
}

TEST(SynthesisCache, HitReturnsAutomatonEqualToFreshBuild) {
  paper::synthesis_cache_clear();
  for (Property p : paper::kAllProperties) {
    AtomRegistry reg = paper::make_registry(3);
    MonitorAutomaton fresh = paper::build_automaton(p, 3, reg);
    MonitorAutomaton cached = paper::build_automaton(p, 3, reg);
    EXPECT_EQ(cached.num_states(), fresh.num_states()) << paper::name(p);
    EXPECT_EQ(cached.initial_state(), fresh.initial_state())
        << paper::name(p);
    EXPECT_EQ(cached.count_total(), fresh.count_total()) << paper::name(p);
    EXPECT_EQ(cached.count_outgoing(), fresh.count_outgoing())
        << paper::name(p);
    EXPECT_EQ(cached.count_self_loops(), fresh.count_self_loops())
        << paper::name(p);
    for (int q = 0; q < fresh.num_states(); ++q) {
      EXPECT_EQ(cached.verdict(q), fresh.verdict(q))
          << paper::name(p) << " state " << q;
    }
    EXPECT_FALSE(cached.validate().has_value()) << paper::name(p);
  }
}

TEST(SynthesisCache, HandsOutIndependentCopies) {
  paper::synthesis_cache_clear();
  AtomRegistry reg = paper::make_registry(3);
  MonitorAutomaton first = paper::build_automaton(Property::kB, 3, reg);
  const int states = first.num_states();
  first.add_state(Verdict::kUnknown);  // mutate the handed-out copy
  MonitorAutomaton second = paper::build_automaton(Property::kB, 3, reg);
  EXPECT_EQ(second.num_states(), states);  // memoized value untouched
}

TEST(SynthesisCache, ClearResetsMemoAndCounters) {
  paper::synthesis_cache_clear();
  AtomRegistry reg = paper::make_registry(3);
  paper::build_automaton(Property::kC, 3, reg);
  paper::build_automaton(Property::kC, 3, reg);
  paper::synthesis_cache_clear();
  auto s = paper::synthesis_cache_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  paper::build_automaton(Property::kC, 3, reg);
  s = paper::synthesis_cache_stats();
  EXPECT_EQ(s.misses, 1u);  // really rebuilt, not served stale
  EXPECT_EQ(s.hits, 0u);
}

}  // namespace
}  // namespace decmon
