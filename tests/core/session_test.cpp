#include "decmon/core/session.hpp"

#include <gtest/gtest.h>

#include "decmon/core/properties.hpp"
#include "decmon/lattice/event_log.hpp"

namespace decmon {
namespace {

TraceParams small_params(int n, std::uint64_t seed = 11) {
  TraceParams p;
  p.num_processes = n;
  p.internal_events = 6;
  p.seed = seed;
  return p;
}

TEST(Session, FromTextBuildsWorkingSession) {
  AtomRegistry reg = paper::make_registry(2);
  MonitorSession s = MonitorSession::from_text("F(P0.p && P1.p)",
                                               std::move(reg));
  EXPECT_EQ(s.automaton().num_states(), 2);
  EXPECT_EQ(s.property().num_processes(), 2);
}

TEST(Session, RunProducesFinishedVerdict) {
  AtomRegistry reg = paper::make_registry(2);
  MonitorSession s = MonitorSession::from_text("F(P0.p && P1.p)",
                                               std::move(reg));
  SystemTrace trace = generate_trace(small_params(2));
  force_final_all_true(trace);
  RunResult r = s.run(trace);
  EXPECT_TRUE(r.verdict.all_finished);
  EXPECT_GT(r.program_events, 0u);
  EXPECT_GT(r.program_end, 0.0);
  // All processes end with p = q = 1, so F(all p) must be satisfied on
  // every path: the verdict set is exactly {TRUE}.
  EXPECT_TRUE(r.verdict.satisfied());
}

TEST(Session, VerdictContractAgainstOracle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    AtomRegistry reg = paper::make_registry(2);
    MonitorSession s =
        MonitorSession::from_text("G((P0.p) U (P1.p))", std::move(reg));
    SystemTrace trace = generate_trace(small_params(2, seed));
    OracleResult oracle = s.oracle(trace);
    RunResult r = s.run(trace);
    EXPECT_TRUE(r.verdict.all_finished);
    for (Verdict v : oracle.verdicts) {
      EXPECT_TRUE(r.verdict.verdicts.count(v)) << "seed " << seed;
    }
    for (Verdict v : r.verdict.verdicts) {
      if (v != Verdict::kUnknown) {
        EXPECT_TRUE(oracle.verdicts.count(v)) << "seed " << seed;
      }
    }
  }
}

TEST(Session, CentralizedMatchesOracleExactly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    AtomRegistry reg = paper::make_registry(3);
    MonitorSession s = MonitorSession::from_text(
        "G((P0.p) U (P1.p && P2.p))", std::move(reg));
    SystemTrace trace = generate_trace(small_params(3, seed));
    OracleResult oracle = s.oracle(trace);
    RunResult r = s.run_centralized(trace);
    EXPECT_TRUE(r.verdict.all_finished) << "seed " << seed;
    EXPECT_EQ(r.verdict.verdicts, oracle.verdicts) << "seed " << seed;
    EXPECT_EQ(std::set<int>(r.verdict.states.begin(), r.verdict.states.end()),
              oracle.final_states)
        << "seed " << seed;
  }
}

TEST(Session, CentralizedForwardsEveryRemoteEvent) {
  AtomRegistry reg = paper::make_registry(3);
  MonitorSession s =
      MonitorSession::from_text("F(P0.p && P1.p && P2.p)", std::move(reg));
  SystemTrace trace = generate_trace(small_params(3));
  RunResult r = s.run_centralized(trace);
  // Every event of a non-central process crosses the network.
  SimRuntime probe(trace, &s.registry());
  probe.run();
  std::uint64_t remote_events = 0;
  for (int p = 1; p < 3; ++p) {
    remote_events += probe.history()[static_cast<std::size_t>(p)].size() - 1;
  }
  EXPECT_GE(r.monitor_messages, remote_events);
}

TEST(Session, DecentralizedSendsFewerMessagesThanCentralized) {
  // The headline comparison: decentralized monitoring avoids shipping every
  // event to one node.
  AtomRegistry reg = paper::make_registry(4);
  MonitorSession s = MonitorSession::from_text(
      paper::formula_text(paper::Property::kB, 4), std::move(reg));
  TraceParams params = small_params(4);
  params.internal_events = 15;
  SystemTrace trace = generate_trace(params);
  RunResult dec = s.run(trace);
  RunResult cen = s.run_centralized(trace);
  EXPECT_LT(dec.monitor_messages, cen.monitor_messages);
}

TEST(Session, DelayFormulaMatchesPaperDefinition) {
  RunResult r;
  r.program_end = 10.0;
  r.monitor_end = 12.0;
  r.total_global_views = 4;
  // ((2 / 10) * 100) / 4 = 5.
  EXPECT_DOUBLE_EQ(r.delay_time_percent_per_view(), 5.0);
  r.monitor_end = 9.0;  // monitor finished before program: no extra time
  EXPECT_DOUBLE_EQ(r.delay_time_percent_per_view(), 0.0);
}

TEST(Session, RunsArePerfectlyReproducible) {
  AtomRegistry reg = paper::make_registry(3);
  MonitorSession s = MonitorSession::from_text(
      paper::formula_text(paper::Property::kC, 3), std::move(reg));
  SystemTrace trace = generate_trace(small_params(3));
  RunResult a = s.run(trace);
  RunResult b = s.run(trace);
  EXPECT_EQ(a.monitor_messages, b.monitor_messages);
  EXPECT_EQ(a.total_global_views, b.total_global_views);
  EXPECT_EQ(a.verdict.verdicts, b.verdict.verdicts);
  EXPECT_EQ(a.monitor_end, b.monitor_end);
}

TEST(Session, PaperPropertySuiteRunsAtScale) {
  // Smoke: all six properties on 4 processes complete and stay finished.
  for (paper::Property p : paper::kAllProperties) {
    AtomRegistry reg = paper::make_registry(4);
    MonitorAutomaton m = paper::build_automaton(p, 4, reg);
    MonitorSession s(std::move(reg), std::move(m));
    SystemTrace trace = generate_trace(small_params(4));
    RunResult r = s.run(trace);
    EXPECT_TRUE(r.verdict.all_finished) << paper::name(p);
  }
}


TEST(Session, OfflineReplayMatchesContract) {
  // Record once, analyze offline (6.2.1): the replayed decentralized run
  // over the event-log round trip satisfies the oracle contract.
  AtomRegistry reg = paper::make_registry(3);
  MonitorSession s = MonitorSession::from_text(
      "G((P0.p) U (P1.p && P2.p))", std::move(reg));
  SystemTrace trace = generate_trace(small_params(3, 21));

  SimRuntime sim(trace, &s.registry());
  sim.run();
  Computation recorded(sim.history());
  Computation loaded =
      relabel(computation_from_event_log(to_event_log(recorded)),
              s.registry());
  OracleResult oracle = oracle_evaluate(loaded, s.automaton());

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunResult r = s.replay(loaded, seed);
    EXPECT_TRUE(r.verdict.all_finished) << "seed " << seed;
    for (Verdict v : oracle.verdicts) {
      EXPECT_TRUE(r.verdict.verdicts.count(v)) << "seed " << seed;
    }
    for (Verdict v : r.verdict.verdicts) {
      if (v != Verdict::kUnknown) {
        EXPECT_TRUE(oracle.verdicts.count(v)) << "seed " << seed;
      }
    }
  }
}

TEST(Session, ReplayCountsMessages) {
  AtomRegistry reg = paper::make_registry(2);
  MonitorSession s =
      MonitorSession::from_text("F(P0.p && P1.p)", std::move(reg));
  SystemTrace trace = generate_trace(small_params(2));
  force_final_all_true(trace);
  SimRuntime sim(trace, &s.registry());
  sim.run();
  Computation comp(sim.history());
  RunResult r = s.replay(comp, 5);
  EXPECT_EQ(r.program_events, comp.total_events());
  EXPECT_GT(r.monitor_messages, 0u);
  EXPECT_TRUE(r.verdict.satisfied());
}

}  // namespace
}  // namespace decmon
