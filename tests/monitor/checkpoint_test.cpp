// Monitor checkpoint tests (DESIGN.md §8): snapshot -> restore -> snapshot
// must be byte-identical at every hook boundary of a monitored run (the
// crash injector relies on this to prove recovery is lossless), a restored
// run must be semantically indistinguishable from an undisturbed one, and a
// corrupted blob -- any truncation, any byte flip -- must fail with a clean
// CheckpointError that leaves the target monitor untouched.
#include "decmon/monitor/checkpoint.hpp"

#include <gtest/gtest.h>

#include <random>
#include <utility>
#include <vector>

#include "../common/random_computation.hpp"
#include "../common/replay_driver.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/ltl/parser.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"
#include "decmon/monitor/predicate.hpp"

namespace decmon {
namespace {

using testing::ReplayDriver;

std::vector<AtomSet> initial_letters(const Computation& comp) {
  std::vector<AtomSet> letters;
  for (int p = 0; p < comp.num_processes(); ++p) {
    letters.push_back(comp.event(p, 0).letter);
  }
  return letters;
}

/// Hooks decorator that checkpoint-round-trips the touched monitor after
/// every single hook invocation: the densest possible sampling of reachable
/// mid-run states (tokens parked, views mid-path, probe sets live).
class RoundTripHooks final : public MonitorHooks {
 public:
  explicit RoundTripHooks(DecentralizedMonitor* dm) : dm_(dm) {}

  void on_local_event(int proc, const Event& event, double now) override {
    dm_->on_local_event(proc, event, now);
    round_trip(proc);
  }
  void on_local_termination(int proc, double now) override {
    dm_->on_local_termination(proc, now);
    round_trip(proc);
  }
  void on_monitor_message(MonitorMessage msg, double now) override {
    const int to = msg.to;
    dm_->on_monitor_message(std::move(msg), now);
    round_trip(to);
  }

  int round_trips = 0;
  std::size_t max_blob_bytes = 0;

 private:
  void round_trip(int i) {
    MonitorProcess& m = dm_->monitor(i);
    const std::vector<std::uint8_t> before = checkpoint_monitor(m);
    restore_monitor(m, before);
    const std::vector<std::uint8_t> after = checkpoint_monitor(m);
    EXPECT_EQ(before, after) << "round trip diverged at monitor " << i;
    max_blob_bytes = std::max(max_blob_bytes, before.size());
    ++round_trips;
  }

  DecentralizedMonitor* dm_;
};

TEST(Checkpoint, RoundTripIsByteIdenticalAtEveryHookOfAFuzzGrid) {
  std::mt19937_64 rng(20260805);
  AtomRegistry reg = testing::standard_registry(2);
  int total_round_trips = 0;
  for (const std::string& text : testing::property_suite_2()) {
    MonitorAutomaton m = synthesize_monitor(parse_ltl(text, reg));
    CompiledProperty prop(&m, &reg);
    for (int c = 0; c < 3; ++c) {
      Computation comp = testing::random_computation(rng, 2, reg, 6);
      for (std::uint64_t seed = 0; seed < 2; ++seed) {
        // Reference run, undisturbed.
        ReplayDriver plain_driver;
        DecentralizedMonitor plain(&prop, &plain_driver,
                                   initial_letters(comp));
        plain_driver.run(comp, plain, seed);

        // Same run, but every hook boundary snapshot->restore->snapshots
        // the touched monitor. Byte identity is checked inside; verdict
        // equality with the plain run proves restore is also semantically
        // lossless.
        ReplayDriver driver;
        DecentralizedMonitor dm(&prop, &driver, initial_letters(comp));
        RoundTripHooks hooks(&dm);
        driver.run(comp, hooks, seed);

        EXPECT_EQ(dm.result().verdicts, plain.result().verdicts)
            << text << " seed " << seed;
        EXPECT_TRUE(dm.all_finished());
        total_round_trips += hooks.round_trips;
      }
    }
  }
  EXPECT_GT(total_round_trips, 500);
}

TEST(Checkpoint, RestoreAfterViewCapBreach) {
  // A MonitorOverflow is an intentional bound, not a crash: the monitor it
  // unwound from must still produce a checkpoint that restores into a fresh
  // replica byte-identically, so an operator can snapshot-and-migrate a
  // session that hit its cap instead of losing it.
  std::mt19937_64 rng(99);
  AtomRegistry reg = testing::standard_registry(2);
  // max_views=2 is the tightest survivable cap: the constructor itself
  // probes the initial view, so a cap of 1 would throw before run starts.
  MonitorOptions tight;
  tight.max_views = 2;

  int trips = 0;
  for (const std::string& text : testing::property_suite_2()) {
    MonitorAutomaton m = synthesize_monitor(parse_ltl(text, reg));
    CompiledProperty prop(&m, &reg);
    for (int c = 0; c < 4; ++c) {
      Computation comp = testing::random_computation(rng, 2, reg, 8);
      ReplayDriver driver;
      DecentralizedMonitor dm(&prop, &driver, initial_letters(comp), tight);
      bool tripped = false;
      try {
        driver.run(comp, dm, /*seed=*/c);
      } catch (const MonitorOverflow&) {
        tripped = true;
      }
      if (!tripped) continue;
      ++trips;

      std::uint64_t overflowed = 0;
      for (int i = 0; i < 2; ++i) {
        MonitorProcess& mon = dm.monitor(i);
        overflowed += mon.stats().views_overflowed;
        const std::vector<std::uint8_t> blob = checkpoint_monitor(mon);

        ReplayDriver fresh_driver;
        DecentralizedMonitor fresh(&prop, &fresh_driver,
                                   initial_letters(comp), tight);
        restore_monitor(fresh.monitor(i), blob);
        EXPECT_EQ(checkpoint_monitor(fresh.monitor(i)), blob)
            << text << " monitor " << i;
      }
      EXPECT_GE(overflowed, 1u) << text;
    }
  }
  EXPECT_GT(trips, 3) << "the suite barely exercises the cap";
}

TEST(Checkpoint, RestoreIntoFreshMonitorTransfersTheFullState) {
  std::mt19937_64 rng(7);
  AtomRegistry reg = testing::standard_registry(3);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("G((P0.p) -> F(P1.p && P2.q))", reg));
  CompiledProperty prop(&m, &reg);
  Computation comp = testing::random_computation(rng, 3, reg, 6);

  ReplayDriver driver;
  DecentralizedMonitor dm(&prop, &driver, initial_letters(comp));
  driver.run(comp, dm, /*seed=*/11);

  ReplayDriver fresh_driver;
  DecentralizedMonitor fresh(&prop, &fresh_driver, initial_letters(comp));
  for (int i = 0; i < 3; ++i) {
    const std::vector<std::uint8_t> blob = checkpoint_monitor(dm.monitor(i));
    restore_monitor(fresh.monitor(i), blob);
    EXPECT_EQ(checkpoint_monitor(fresh.monitor(i)), blob);
  }
  EXPECT_EQ(fresh.result().verdicts, dm.result().verdicts);
  EXPECT_EQ(fresh.all_finished(), dm.all_finished());
}

TEST(Checkpoint, RestoreRejectsIndexMismatch) {
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m = synthesize_monitor(parse_ltl("F(P0.p && P1.p)", reg));
  CompiledProperty prop(&m, &reg);
  std::mt19937_64 rng(3);
  Computation comp = testing::random_computation(rng, 2, reg, 4);

  ReplayDriver driver;
  DecentralizedMonitor dm(&prop, &driver, initial_letters(comp));
  driver.run(comp, dm, 0);
  const std::vector<std::uint8_t> blob = checkpoint_monitor(dm.monitor(0));
  EXPECT_THROW(restore_monitor(dm.monitor(1), blob), CheckpointError);
}

TEST(Checkpoint, CorruptionFuzzNeverCrashesOrSilentlyRestores) {
  // Truncate at every length and flip every byte of a real mid-run blob:
  // each mutation must be rejected with CheckpointError (never a crash,
  // never an accepted restore), and the rejected restore must leave the
  // monitor exactly as it was.
  std::mt19937_64 rng(99);
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m =
      synthesize_monitor(parse_ltl("G((P0.p) U (P1.p))", reg));
  CompiledProperty prop(&m, &reg);
  Computation comp = testing::random_computation(rng, 2, reg, 5);

  ReplayDriver driver;
  DecentralizedMonitor dm(&prop, &driver, initial_letters(comp));
  driver.run(comp, dm, 1);
  MonitorProcess& target = dm.monitor(0);
  const std::vector<std::uint8_t> blob = checkpoint_monitor(target);
  ASSERT_GT(blob.size(), 16u);

  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::vector<std::uint8_t> truncated(
        blob.begin(), blob.begin() + static_cast<long>(len));
    EXPECT_THROW(restore_monitor(target, truncated), CheckpointError)
        << "truncation to " << len << " bytes accepted";
  }
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> flipped = blob;
      flipped[pos] ^= mask;
      EXPECT_THROW(restore_monitor(target, flipped), CheckpointError)
          << "flip of bit " << int(mask) << " at byte " << pos << " accepted";
    }
  }
  EXPECT_EQ(checkpoint_monitor(target), blob);  // every failure was clean
}

/// Minimal sink for monitors driven directly (no runtime underneath):
/// collects floor gossip so epoch stamps are observable.
class FloorSink final : public MonitorNetwork {
 public:
  void send(MonitorMessage msg) override {
    if (msg.payload && msg.payload->tag == PayloadFrame::kTag) {
      auto* frame = static_cast<PayloadFrame*>(msg.payload.get());
      for (const auto& unit : frame->units) {
        if (unit->tag == HistoryFloorMessage::kTag) {
          floors.push_back(static_cast<const HistoryFloorMessage&>(*unit));
        }
      }
      return;
    }
    if (msg.payload && msg.payload->tag == HistoryFloorMessage::kTag) {
      floors.push_back(static_cast<const HistoryFloorMessage&>(*msg.payload));
    }
  }
  double now() const override { return 0.0; }
  std::vector<HistoryFloorMessage> floors;
};

TEST(Checkpoint, StreamingWindowSurvivesAMidGcCrash) {
  // The crash×GC corner the v3 format exists for: a monitor that has
  // already trimmed its window AND holds epoch-stamped peer promises must
  // checkpoint byte-identically, and the restored replica must carry the
  // whole floor state -- base, per-peer folds, both epochs -- not just the
  // views. A restore that forgot an epoch would either accept pre-crash
  // stragglers (unsound trims) or mis-stamp its own resync.
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m = synthesize_monitor(parse_ltl("F(P0.p && P1.p)", reg));
  CompiledProperty prop(&m, &reg);
  MonitorOptions options;
  options.streaming = true;
  options.gc_interval = 1000;  // manual sweeps keep the scenario exact

  FloorSink net;
  MonitorProcess mon(0, &prop, &net, {0, 0}, options);
  for (std::uint32_t sn = 1; sn <= 8; ++sn) {
    Event e;
    e.type = EventType::kInternal;
    e.process = 0;
    e.sn = sn;
    e.vc = VectorClock{sn, 0};
    e.letter = 0;
    mon.on_local_event(e, double(sn));
  }
  // The peer is already in epoch 1 (it crashed once) and has promised up
  // to 5; one sweep trims the window, one resync bumps our own epoch.
  mon.on_history_floor(1, 5, /*epoch=*/1, 9.0);
  mon.gc_sweep(9.5);
  ASSERT_EQ(mon.history_base(), 5u);
  mon.resync_floors(9.8);
  ASSERT_EQ(mon.stats().resync_floors, 1u);

  const std::vector<std::uint8_t> blob = checkpoint_monitor(mon);
  FloorSink fresh_net;
  MonitorProcess fresh(0, &prop, &fresh_net, {0, 0}, options);
  restore_monitor(fresh, blob);
  EXPECT_EQ(checkpoint_monitor(fresh), blob);
  EXPECT_EQ(fresh.history_base(), 5u);
  EXPECT_EQ(fresh.history_end(), 9u);  // initial state + 8 events

  // Peer epoch survived: a pre-crash (epoch-0) straggler with a higher
  // floor must still be ignored by the restored fold.
  fresh.on_history_floor(1, 7, 0, 10.0);
  fresh.gc_sweep(10.5);
  EXPECT_EQ(fresh.history_base(), 5u);

  // Our own epoch survived: the next resync stamps epoch 2, strictly above
  // everything the pre-checkpoint incarnation ever sent.
  fresh.resync_floors(11.0);
  ASSERT_FALSE(fresh_net.floors.empty());
  EXPECT_EQ(fresh_net.floors.back().epoch, 2u);

  // And the restored window still trims forward once the peer catches up.
  fresh.on_history_floor(1, 8, 1, 12.0);
  fresh.gc_sweep(12.5);
  EXPECT_EQ(fresh.history_base(), 8u);
}

TEST(Checkpoint, GarbageIsRejected) {
  AtomRegistry reg = testing::standard_registry(2);
  MonitorAutomaton m = synthesize_monitor(parse_ltl("F(P0.p)", reg));
  CompiledProperty prop(&m, &reg);
  ReplayDriver driver;
  std::mt19937_64 rng(1);
  Computation comp = testing::random_computation(rng, 2, reg, 3);
  DecentralizedMonitor dm(&prop, &driver, initial_letters(comp));

  EXPECT_THROW(restore_monitor(dm.monitor(0), {}), CheckpointError);
  std::vector<std::uint8_t> noise(200);
  std::mt19937_64 noise_rng(5);
  for (auto& b : noise) b = static_cast<std::uint8_t>(noise_rng());
  EXPECT_THROW(restore_monitor(dm.monitor(0), noise), CheckpointError);
}

}  // namespace
}  // namespace decmon
