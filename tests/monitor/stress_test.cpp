// Stress and robustness: long monitored runs at the paper's largest scale,
// memory boundedness, determinism, trace hook, and liveness under hostile
// communication patterns.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "decmon/core/properties.hpp"
#include "decmon/core/session.hpp"
#include "decmon/distributed/sim_runtime.hpp"
#include "decmon/monitor/checkpoint.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"

namespace decmon {
namespace {

TEST(Stress, LongRunFiveProcessesDrains) {
  AtomRegistry reg = paper::make_registry(5);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kD, 5, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params = paper::experiment_params(paper::Property::kD, 5, 404,
                                                3.0, true,
                                                /*internal_events=*/60);
  SystemTrace trace = generate_trace(params);
  RunResult r = session.run(trace);
  EXPECT_TRUE(r.verdict.all_finished);
  EXPECT_EQ(r.program_events,
            static_cast<std::uint64_t>(trace.total_events()));
}

TEST(Stress, PeakViewsStayBounded) {
  // Memory claim (4.4.2): live views do not grow with the event count.
  AtomRegistry reg = paper::make_registry(3);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kC, 3, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  std::uint64_t prev_peak = 0;
  for (int events : {20, 40, 80}) {
    TraceParams params =
        paper::experiment_params(paper::Property::kC, 3, 7, 3.0, true, events);
    RunResult r = session.run(generate_trace(params));
    std::uint64_t peak = 0;
    for (const MonitorStats& s : r.verdict.per_monitor) {
      peak = std::max(peak, s.peak_global_views);
    }
    // Allow some growth but nothing near linear in the events.
    if (prev_peak > 0) {
      EXPECT_LE(peak, prev_peak * 3 + 20) << events;
    }
    prev_peak = peak;
  }
}

TEST(Stress, ViewCapGuardsRunaway) {
  AtomRegistry reg = paper::make_registry(3);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kF, 3, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params =
      paper::experiment_params(paper::Property::kF, 3, 9, 3.0, true, 20);
  MonitorOptions tight;
  tight.max_views = 2;  // absurdly small: must trip
  EXPECT_THROW(session.run(generate_trace(params), SimConfig{}, tight),
               std::length_error);
}

/// One paper cell under a tight cap, with the monitors kept accessible
/// after the throw (MonitorSession::run would discard them).
struct CapBreach {
  bool hit = false;
  std::string what;            ///< exception text: names the breach site
  std::uint64_t overflowed = 0;  ///< views_overflowed summed over monitors
};

CapBreach run_with_cap(paper::Property prop, int n, std::uint64_t seed,
                       std::size_t max_views) {
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
  automaton.build_dispatch();
  CompiledProperty property(&automaton, &reg);
  TraceParams params =
      paper::experiment_params(prop, n, seed, 3.0, true, 20);
  SimRuntime runtime(generate_trace(params), &reg, SimConfig{});
  MonitorOptions tight;
  tight.max_views = max_views;
  DecentralizedMonitor monitors(
      &property, &runtime,
      initial_letters_of(reg, runtime.initial_states()), tight);
  runtime.set_hooks(&monitors);

  CapBreach breach;
  try {
    runtime.run();
  } catch (const MonitorOverflow& e) {
    breach.hit = true;
    breach.what = e.what();
  }
  for (int i = 0; i < n; ++i) {
    MonitorProcess& m = monitors.monitor(i);
    breach.overflowed += m.stats().views_overflowed;
    // The breach is surfaced *before* any view is pushed, so the cap is a
    // true invariant and the abandoned creation is never counted.
    EXPECT_LE(m.num_views(), max_views);
    EXPECT_LE(m.stats().peak_global_views, max_views);
    // The thrower unwound cleanly: every monitor still checkpoint
    // round-trips byte-identically.
    const std::vector<std::uint8_t> blob = checkpoint_monitor(m);
    restore_monitor(m, blob);
    EXPECT_EQ(checkpoint_monitor(m), blob) << "monitor " << i;
  }
  return breach;
}

TEST(Stress, ViewCapBreachIsCleanAtBothSites) {
  // Sweep small cells until both creation sites have tripped: the fork of a
  // consistent probe (pool token must be recycled, view must not be left
  // waiting) and the spawn of a pivot view mid-token-dispatch (memo must not
  // record a view that was never pushed). Every breach must leave the
  // monitors valid and the stat accounting honest.
  bool saw_fork = false;
  bool saw_spawn = false;
  for (paper::Property prop : paper::kAllProperties) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      SCOPED_TRACE(paper::name(prop) + " seed=" + std::to_string(seed));
      const CapBreach breach = run_with_cap(prop, 3, seed, 2);
      if (!breach.hit) continue;
      EXPECT_GE(breach.overflowed, 1u);
      if (breach.what.find("(fork)") != std::string::npos) saw_fork = true;
      if (breach.what.find("(spawn)") != std::string::npos) saw_spawn = true;
    }
  }
  EXPECT_TRUE(saw_fork) << "no cell tripped the probe-fork cap site";
  EXPECT_TRUE(saw_spawn) << "no cell tripped the spawn cap site";
}

TEST(Stress, HeavyCommunicationStillDrains) {
  // Communication every ~0.5s: receives dominate, views churn through
  // inconsistency repair constantly.
  AtomRegistry reg = paper::make_registry(4);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kA, 4, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params =
      paper::experiment_params(paper::Property::kA, 4, 5, 0.5, true, 15);
  RunResult r = session.run(generate_trace(params));
  EXPECT_TRUE(r.verdict.all_finished);
}

TEST(Stress, HighLatencyNetworkStillDrains) {
  // Token replies arrive long after the program finished.
  AtomRegistry reg = paper::make_registry(3);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kD, 3, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  SimConfig slow;
  slow.mon_latency_mu = 30.0;  // monitor messages are 10x slower than events
  slow.mon_latency_sigma = 10.0;
  TraceParams params =
      paper::experiment_params(paper::Property::kD, 3, 6, 3.0, true, 12);
  RunResult r = session.run(generate_trace(params), slow);
  EXPECT_TRUE(r.verdict.all_finished);
  EXPECT_GT(r.monitor_end, r.program_end);  // drain continues after program
}

TEST(Stress, TraceHookReceivesLines) {
  AtomRegistry reg = paper::make_registry(2);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kB, 2, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params =
      paper::experiment_params(paper::Property::kB, 2, 3, 3.0, true, 10);
  MonitorOptions options;
  std::vector<std::string> lines;
  options.trace = [&lines](const std::string& s) { lines.push_back(s); };
  session.run(generate_trace(params), SimConfig{}, options);
  ASSERT_FALSE(lines.empty());
  bool saw_probe = false;
  for (const std::string& l : lines) {
    if (l.find("probe") != std::string::npos) saw_probe = true;
  }
  EXPECT_TRUE(saw_probe);
}

TEST(Stress, SampledWireAccountingEstimatesExactBytes) {
  // Sampled mode must not change behaviour (identical verdicts and frame
  // counts vs the exact run), must stamp only ~1/stride of the frames, and
  // its extrapolated byte total must land near the exact total -- frame
  // sizes are not adversarial in these workloads, so a wide band is a real
  // check that the estimator is wired to the right counters.
  AtomRegistry reg = paper::make_registry(5);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kD, 5, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params = paper::experiment_params(paper::Property::kD, 5, 7,
                                                3.0, true,
                                                /*internal_events=*/25);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);
  SimConfig sim;
  sim.coalesce = CoalesceMode::kTransit;

  RunResult exact = session.run(trace, sim);
  const MonitorStats& es = exact.verdict.aggregate;
  EXPECT_EQ(es.frames_sampled, es.frames_sent);  // exact = every frame
  EXPECT_EQ(es.estimated_bytes_sent(), es.bytes_sent);

  MonitorOptions options;
  options.wire_accounting = WireAccounting::kSampled;
  options.wire_sample_stride = 16;
  RunResult sampled = session.run(trace, sim, options);
  const MonitorStats& ss = sampled.verdict.aggregate;

  EXPECT_EQ(sampled.verdict.verdicts, exact.verdict.verdicts);
  EXPECT_EQ(ss.frames_sent, es.frames_sent);
  ASSERT_GT(ss.frames_sent, 32u);  // workload big enough to sample
  EXPECT_LT(ss.frames_sampled, ss.frames_sent);
  EXPECT_GT(ss.frames_sampled, 0u);
  EXPECT_LT(ss.bytes_sent, es.bytes_sent);  // only sampled frames stamped

  const double est = static_cast<double>(ss.estimated_bytes_sent());
  const double truth = static_cast<double>(es.bytes_sent);
  EXPECT_GT(est, 0.5 * truth);
  EXPECT_LT(est, 2.0 * truth);
}

TEST(Stress, RepeatedRunsShareNoState) {
  // Back-to-back runs through one session are independent and identical.
  AtomRegistry reg = paper::make_registry(3);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kE, 3, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params =
      paper::experiment_params(paper::Property::kE, 3, 12, 3.0, true, 20);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);
  RunResult first = session.run(trace);
  for (int i = 0; i < 3; ++i) {
    RunResult again = session.run(trace);
    EXPECT_EQ(again.verdict.verdicts, first.verdict.verdicts);
    EXPECT_EQ(again.monitor_messages, first.monitor_messages);
    EXPECT_EQ(again.total_global_views, first.total_global_views);
  }
}

}  // namespace
}  // namespace decmon
