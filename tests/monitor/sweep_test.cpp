// Parameterized end-to-end sweeps over the paper's experimental grid:
// property x process-count x communication frequency. Each cell runs the
// full simulated system and checks the correctness contract against the
// lattice oracle (where tractable) plus structural invariants.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "decmon/core/properties.hpp"
#include "decmon/core/session.hpp"

namespace decmon {
namespace {

using SweepParam = std::tuple<paper::Property, int /*n*/, double /*commMu*/>;

class ExperimentSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ExperimentSweep, ContractAndInvariants) {
  const auto [prop, n, comm_mu] = GetParam();
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));

  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    TraceParams params = paper::experiment_params(prop, n, seed, comm_mu,
                                                  comm_mu > 0.0,
                                                  /*internal_events=*/8);
    SystemTrace trace = generate_trace(params);
    force_final_all_true(trace);
    RunResult r = session.run(trace);

    // Liveness of the monitoring layer itself (Theorem 1).
    EXPECT_TRUE(r.verdict.all_finished);
    // Basic accounting.
    EXPECT_EQ(r.program_events,
              static_cast<std::uint64_t>(trace.total_events()));
    EXPECT_GT(r.total_global_views, 0u);

    // Oracle contract, when the lattice fits.
    try {
      OracleResult oracle = session.oracle(trace, SimConfig{},
                                           std::size_t{1} << 18);
      for (Verdict v : oracle.verdicts) {
        EXPECT_TRUE(r.verdict.verdicts.count(v))
            << paper::name(prop) << "(" << n << ") commMu=" << comm_mu
            << " seed=" << seed << ": oracle verdict " << to_string(v)
            << " missed";
      }
      for (Verdict v : r.verdict.verdicts) {
        if (v != Verdict::kUnknown) {
          EXPECT_TRUE(oracle.verdicts.count(v))
              << paper::name(prop) << "(" << n << ") commMu=" << comm_mu
              << " seed=" << seed << ": unsound " << to_string(v);
        }
      }
    } catch (const std::length_error&) {
      // Lattice too wide for ground truth; the structural checks above
      // still ran.
    }
  }
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [prop, n, comm_mu] = info.param;
  std::string comm = comm_mu > 0.0
                         ? "comm" + std::to_string(static_cast<int>(comm_mu))
                         : "nocomm";
  return paper::name(prop) + std::to_string(n) + "_" + comm;
}

INSTANTIATE_TEST_SUITE_P(
    PropertyGrid, ExperimentSweep,
    ::testing::Combine(::testing::Values(paper::Property::kA,
                                         paper::Property::kB,
                                         paper::Property::kC,
                                         paper::Property::kD,
                                         paper::Property::kE,
                                         paper::Property::kF),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(3.0)),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    CommFrequencyGrid, ExperimentSweep,
    ::testing::Combine(::testing::Values(paper::Property::kC),
                       ::testing::Values(4),
                       ::testing::Values(3.0, 6.0, 9.0, 15.0, 0.0)),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    FiveProcesses, ExperimentSweep,
    ::testing::Combine(::testing::Values(paper::Property::kB,
                                         paper::Property::kD),
                       ::testing::Values(5),
                       ::testing::Values(3.0)),
    sweep_name);

}  // namespace
}  // namespace decmon
