// Direct unit tests of one MonitorProcess replica: token creation, routing
// rules, parking, termination flush, probe suppression, statistics. A
// capturing fake network makes every send observable.
#include "decmon/monitor/monitor_process.hpp"

#include <gtest/gtest.h>

#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/core/properties.hpp"
#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

class CapturingNetwork : public MonitorNetwork {
 public:
  // The monitor flushes batched frames; flatten them back into one message
  // per unit so the assertions below observe individual tokens and
  // termination signals (frames_seen still counts the actual sends).
  void send(MonitorMessage msg) override {
    if (msg.payload && msg.payload->tag == PayloadFrame::kTag) {
      ++frames_seen;
      std::unique_ptr<PayloadFrame> frame(
          static_cast<PayloadFrame*>(msg.payload.release()));
      for (std::unique_ptr<NetPayload>& unit : frame->units) {
        sent.push_back(MonitorMessage{msg.from, msg.to, std::move(unit)});
      }
      return;
    }
    sent.push_back(std::move(msg));
  }
  double now() const override { return t; }

  std::vector<MonitorMessage> sent;
  int frames_seen = 0;
  double t = 0.0;

  std::vector<Token> tokens_to(int proc, int parent = -1) {
    std::vector<Token> out;
    for (const MonitorMessage& m : sent) {
      if (m.to != proc) continue;
      if (auto* tok = dynamic_cast<TokenMessage*>(m.payload.get())) {
        if (parent >= 0 && tok->token.parent != parent) continue;
        out.push_back(tok->token);
      }
    }
    return out;
  }
  int terminations() const {
    int n = 0;
    for (const MonitorMessage& m : sent) {
      if (dynamic_cast<TerminationMessage*>(m.payload.get())) ++n;
    }
    return n;
  }
};

Event make_event(int proc, std::uint32_t sn, VectorClock vc, AtomSet letter,
                 EventType type = EventType::kInternal) {
  Event e;
  e.type = type;
  e.process = proc;
  e.sn = sn;
  e.vc = std::move(vc);
  e.letter = letter;
  return e;
}

struct Fixture {
  AtomRegistry reg;
  MonitorAutomaton automaton;
  CompiledProperty prop;
  CapturingNetwork net;

  Fixture(const std::string& formula, int n)
      : reg(paper::make_registry(n)),
        automaton(synthesize_monitor(parse_ltl(formula, reg))),
        prop(&automaton, &reg) {}
};

// Atoms for n=2: P0.p=bit0, P0.q=bit1, P1.p=bit2, P1.q=bit3.

TEST(MonitorProcessUnit, NoProbeWhenLocallyForbidden) {
  // F(P0.p && P1.p): M0's local p is false, so M0 forbids the transition
  // and sends nothing.
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  m.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0), 1.0);
  EXPECT_TRUE(f.net.sent.empty());
  EXPECT_EQ(m.stats().tokens_created, 0u);
}

TEST(MonitorProcessUnit, ProbeSentWhenLocalConjunctHolds) {
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  m.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  auto tokens = f.net.tokens_to(1);
  ASSERT_EQ(tokens.size(), 1u);
  const Token& t = tokens[0];
  EXPECT_EQ(t.parent, 0);
  EXPECT_EQ(t.parent_sn, 1u);
  ASSERT_EQ(t.entries.size(), 1u);
  // The entry asks P1 for its next event.
  EXPECT_EQ(t.next_target_process, 1);
  EXPECT_EQ(t.next_target_event, 1u);
  EXPECT_EQ(m.stats().token_messages_sent, 1u);
}

TEST(MonitorProcessUnit, DuplicateProbesSuppressed) {
  // Two consecutive events with the same letter and state: the second probe
  // is deduplicated (4.3.2) while the first token is outstanding.
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  m.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  m.on_local_event(make_event(0, 2, VectorClock{2, 0}, 0b01), 2.0);
  EXPECT_EQ(f.net.tokens_to(1).size(), 1u);
  // With dedup off, the second probe goes out too.
  CapturingNetwork net2;
  MonitorOptions options;
  options.dedupe_probes = false;
  MonitorProcess m2(0, &f.prop, &net2, {0, 0}, options);
  m2.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  m2.on_local_event(make_event(0, 2, VectorClock{2, 0}, 0b01), 2.0);
  EXPECT_EQ(net2.tokens_to(1).size(), 2u);
}

TEST(MonitorProcessUnit, VisitingTokenWalksHistoryAndAnswers) {
  // M1 receives a token from M0 asking for P1.p; the satisfying event is
  // already in M1's history, so the token returns immediately.
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m0(0, &f.prop, &f.net, {0, 0});
  m0.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  Token probe = f.net.tokens_to(1).at(0);

  CapturingNetwork net1;
  MonitorProcess m1(1, &f.prop, &net1, {0, 0});
  m1.on_local_event(make_event(1, 1, VectorClock{0, 1}, 0b100), 1.5);
  m1.on_token(probe, 2.0);
  // Filter to the reply: M1 also launches its own probe towards P0.
  auto replies = net1.tokens_to(0, /*parent=*/0);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].entries.at(0).eval, EntryEval::kTrue);
  ASSERT_EQ(replies[0].entries.at(0).width(), 2u);
  EXPECT_EQ(replies[0].entries.at(0).cut(0), 1u);
  EXPECT_EQ(replies[0].entries.at(0).cut(1), 1u);
}

TEST(MonitorProcessUnit, VisitingTokenParksForFutureEvent) {
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m0(0, &f.prop, &f.net, {0, 0});
  m0.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  Token probe = f.net.tokens_to(1).at(0);

  CapturingNetwork net1;
  MonitorProcess m1(1, &f.prop, &net1, {0, 0});
  m1.on_token(probe, 2.0);  // P1 has no events yet
  EXPECT_EQ(m1.num_waiting_tokens(), 1u);
  EXPECT_TRUE(net1.tokens_to(0).empty());
  // The event arrives: the token wakes and answers.
  m1.on_local_event(make_event(1, 1, VectorClock{0, 1}, 0b100), 3.0);
  EXPECT_EQ(m1.num_waiting_tokens(), 0u);
  ASSERT_EQ(net1.tokens_to(0, /*parent=*/0).size(), 1u);
  EXPECT_EQ(net1.tokens_to(0, 0).at(0).entries.at(0).eval, EntryEval::kTrue);
}

TEST(MonitorProcessUnit, TerminationFlushesParkedTokens) {
  // Theorem 1 / Lemma 1: the awaited event never happens; termination sends
  // the token home with the entry disabled.
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m0(0, &f.prop, &f.net, {0, 0});
  m0.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  Token probe = f.net.tokens_to(1).at(0);

  CapturingNetwork net1;
  MonitorProcess m1(1, &f.prop, &net1, {0, 0});
  m1.on_token(probe, 2.0);
  ASSERT_EQ(m1.num_waiting_tokens(), 1u);
  m1.on_local_termination(3.0);
  EXPECT_EQ(m1.num_waiting_tokens(), 0u);
  ASSERT_EQ(net1.tokens_to(0, /*parent=*/0).size(), 1u);
  EXPECT_EQ(net1.tokens_to(0, 0).at(0).entries.at(0).eval,
            EntryEval::kFalse);
  EXPECT_EQ(net1.terminations(), 1);
}

TEST(MonitorProcessUnit, ReturnedEnabledTokenSpawnsAndDeclares) {
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m0(0, &f.prop, &f.net, {0, 0});
  m0.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  Token probe = f.net.tokens_to(1).at(0);
  // Simulate M1's answer: the entry enabled at cut {1,1}.
  probe.entries[0].cut(0) = 1;
  probe.entries[0].cut(1) = 1;
  probe.entries[0].gstate(0) = 0b01;
  probe.entries[0].gstate(1) = 0b100;
  probe.entries[0].conj(0) = ConjunctEval::kTrue;
  probe.entries[0].conj(1) = ConjunctEval::kTrue;
  probe.entries[0].eval = EntryEval::kTrue;
  probe.next_target_process = 0;
  m0.on_token(probe, 3.0);
  EXPECT_TRUE(m0.declared().count(Verdict::kTrue));
  EXPECT_TRUE(m0.verdicts().count(Verdict::kTrue));
}

TEST(MonitorProcessUnit, SettledStateProbesPruned) {
  // G F (p0 && p1): no finite trace ever decides it. Minimization would
  // collapse the monitor to one state; an *unminimized* monitor keeps
  // several '?' states with outgoing transitions between them -- all
  // settled, so the 7.2.2 pruning drops every probe.
  AtomRegistry reg = paper::make_registry(2);
  SynthesisOptions synth;
  synth.minimize = false;
  MonitorAutomaton automaton =
      synthesize_monitor(parse_ltl("G(F(P0.p && P1.p))", reg), synth);
  ASSERT_GT(automaton.num_states(), 1);
  CompiledProperty prop(&automaton, &reg);
  for (int q = 0; q < automaton.num_states(); ++q) {
    EXPECT_TRUE(prop.verdict_settled(q));
  }

  CapturingNetwork net;
  MonitorProcess m(0, &prop, &net, {0, 0});
  m.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  m.on_local_event(make_event(0, 2, VectorClock{2, 0}, 0b00), 2.0);
  EXPECT_EQ(m.stats().tokens_created, 0u);
  EXPECT_TRUE(net.sent.empty());

  // With pruning off, probes do go out.
  CapturingNetwork net2;
  MonitorOptions options;
  options.prune_settled_states = false;
  MonitorProcess m2(0, &prop, &net2, {0, 0}, options);
  m2.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  m2.on_local_event(make_event(0, 2, VectorClock{2, 0}, 0b00), 2.0);
  EXPECT_GT(m2.stats().tokens_created, 0u);
}

TEST(MonitorProcessUnit, FinishesAfterAllTermination) {
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  EXPECT_FALSE(m.finished());
  m.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0), 1.0);
  m.on_local_termination(2.0);
  EXPECT_FALSE(m.finished());  // peer still running
  m.on_peer_termination(1, 0, 3.0);
  EXPECT_TRUE(m.finished());
  EXPECT_DOUBLE_EQ(m.stats().finish_time, 3.0);
}

TEST(MonitorProcessUnit, RejectsOutOfOrderEvents) {
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  EXPECT_THROW(
      m.on_local_event(make_event(0, 5, VectorClock{5, 0}, 0), 1.0),
      std::logic_error);
}

TEST(MonitorProcessUnit, ImmediateVerdictAtInitialState) {
  // G(P0.p && P1.p) with an all-false initial state: violated at INIT.
  Fixture f("G(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  EXPECT_TRUE(m.declared().count(Verdict::kFalse));
}

TEST(MonitorProcessUnit, VerdictCallbackFires) {
  Fixture f("F(P0.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  Verdict seen = Verdict::kUnknown;
  double at = -1;
  m.set_verdict_callback([&](Verdict v, double now) {
    seen = v;
    at = now;
  });
  m.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 4.5);
  EXPECT_EQ(seen, Verdict::kTrue);
  EXPECT_DOUBLE_EQ(at, 4.5);
}

TEST(MonitorProcessUnit, EventsQueueBehindOutstandingToken) {
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  m.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0b01), 1.0);
  ASSERT_EQ(f.net.tokens_to(1).size(), 1u);
  // While the token is away, further events are delayed for the launchpad
  // view (its forked copy keeps processing them).
  m.on_local_event(make_event(0, 2, VectorClock{2, 0}, 0b00), 2.0);
  m.on_local_event(make_event(0, 3, VectorClock{3, 0}, 0b00), 3.0);
  EXPECT_GT(m.stats().events_delayed, 0u);
}

// ---------------------------------------------------------------------------
// Streaming-GC floor fold under crash epochs (DESIGN.md §13). The fold is
// observable through trim_bound(): the per-peer slot is one of its minima.
// ---------------------------------------------------------------------------

/// Count and inspect the HistoryFloorMessage units a monitor sent.
std::vector<HistoryFloorMessage> floors_sent(const CapturingNetwork& net) {
  std::vector<HistoryFloorMessage> out;
  for (const MonitorMessage& m : net.sent) {
    if (auto* f = dynamic_cast<HistoryFloorMessage*>(m.payload.get())) {
      out.push_back(*f);
    }
  }
  return out;
}

TEST(MonitorProcessUnit, FloorFoldMaxesWithinAnEpoch) {
  // Duplicated and reordered gossip within one epoch is absorbed by the
  // max; the fold never regresses without an epoch bump.
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  for (std::uint32_t sn = 1; sn <= 8; ++sn) {
    m.on_local_event(make_event(0, sn, VectorClock{sn, 0}, 0), double(sn));
  }
  EXPECT_EQ(m.trim_bound(), 0u);  // silent peer pins the bound at 0

  m.on_history_floor(1, 3, /*epoch=*/0, 9.0);
  EXPECT_EQ(m.trim_bound(), 3u);
  m.on_history_floor(1, 2, 0, 9.1);  // reordered stale value: absorbed
  EXPECT_EQ(m.trim_bound(), 3u);
  m.on_history_floor(1, 3, 0, 9.2);  // exact duplicate: no-op
  EXPECT_EQ(m.trim_bound(), 3u);
  m.on_history_floor(1, 5, 0, 9.3);
  EXPECT_EQ(m.trim_bound(), 5u);
}

TEST(MonitorProcessUnit, FloorEpochBumpReplacesEvenDownward) {
  // A higher epoch means the peer restarted from a checkpoint: its
  // re-advertised floor REPLACES the stored promise, the one sanctioned
  // regression. Stragglers from the dead epoch are then ignored no matter
  // how they reorder with the resync.
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  for (std::uint32_t sn = 1; sn <= 8; ++sn) {
    m.on_local_event(make_event(0, sn, VectorClock{sn, 0}, 0), double(sn));
  }
  m.on_history_floor(1, 5, /*epoch=*/0, 9.0);
  EXPECT_EQ(m.trim_bound(), 5u);

  m.on_history_floor(1, 1, 1, 9.1);  // crash rewind: clamp below the promise
  EXPECT_EQ(m.trim_bound(), 1u);
  m.on_history_floor(1, 4, 0, 9.2);  // pre-crash straggler, reordered in
  EXPECT_EQ(m.trim_bound(), 1u);
  m.on_history_floor(1, 3, 1, 9.3);  // new epoch resumes the monotone fold
  EXPECT_EQ(m.trim_bound(), 3u);
  m.on_history_floor(1, 0, 2, 9.4);  // second crash, rewound to the origin
  EXPECT_EQ(m.trim_bound(), 0u);
}

TEST(MonitorProcessUnit, FloorFromHostileSenderIsIgnored) {
  // The floor handler sits on the decode path: out-of-range and self
  // senders must be dropped, not trusted or crashed on.
  Fixture f("F(P0.p && P1.p)", 2);
  MonitorProcess m(0, &f.prop, &f.net, {0, 0});
  for (std::uint32_t sn = 1; sn <= 4; ++sn) {
    m.on_local_event(make_event(0, sn, VectorClock{sn, 0}, 0), double(sn));
  }
  m.on_history_floor(1, 2, 0, 5.0);
  m.on_history_floor(-1, 9, 9, 5.1);
  m.on_history_floor(0, 9, 9, 5.2);  // self
  m.on_history_floor(7, 9, 9, 5.3);  // out of range
  EXPECT_EQ(m.trim_bound(), 2u);
}

TEST(MonitorProcessUnit, ResyncBumpsEpochAndReAdvertises) {
  // resync_floors is the recovery half of the handshake: each call stamps a
  // strictly higher epoch on freshly advertised floors, so receivers can
  // tell a post-restore advertisement from a pre-crash straggler.
  AtomRegistry reg = paper::make_registry(2);
  MonitorAutomaton automaton =
      synthesize_monitor(parse_ltl("F(P0.p && P1.p)", reg));
  CompiledProperty prop(&automaton, &reg);
  CapturingNetwork net;
  MonitorOptions options;
  options.streaming = true;
  options.gc_interval = 1000;  // manual sweeps only
  MonitorProcess m(0, &prop, &net, {0, 0}, options);
  m.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0), 1.0);

  m.resync_floors(2.0);
  m.resync_floors(3.0);
  const auto sent = floors_sent(net);
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].process, 0);
  EXPECT_EQ(sent[0].epoch, 1u);
  EXPECT_EQ(sent[1].epoch, 2u);
  EXPECT_EQ(m.stats().resync_floors, 2u);

  // Outside the streaming posture the handshake is a no-op (there is no
  // window to resync, and goldens must stay silent).
  CapturingNetwork net2;
  MonitorProcess plain(0, &prop, &net2, {0, 0});
  plain.on_local_event(make_event(0, 1, VectorClock{1, 0}, 0), 1.0);
  plain.resync_floors(2.0);
  EXPECT_TRUE(floors_sent(net2).empty());
  EXPECT_EQ(plain.stats().resync_floors, 0u);
}

TEST(MonitorProcessUnit, ResyncFloorBelowTrimmedBaseBlocksFutureTrims) {
  // The crash×GC corner: a peer restores below our already-trimmed base and
  // re-advertises the rewound floor. We cannot un-trim -- the below-base
  // guard covers re-walks into the gone prefix -- but the clamp must block
  // all further trimming until the peer's fold catches back up.
  AtomRegistry reg = paper::make_registry(2);
  MonitorAutomaton automaton =
      synthesize_monitor(parse_ltl("F(P0.p && P1.p)", reg));
  CompiledProperty prop(&automaton, &reg);
  CapturingNetwork net;
  MonitorOptions options;
  options.streaming = true;
  options.gc_interval = 1000;
  MonitorProcess m(0, &prop, &net, {0, 0}, options);
  for (std::uint32_t sn = 1; sn <= 8; ++sn) {
    m.on_local_event(make_event(0, sn, VectorClock{sn, 0}, 0), double(sn));
  }
  m.on_history_floor(1, 5, /*epoch=*/0, 9.0);
  m.gc_sweep(9.5);
  ASSERT_EQ(m.history_base(), 5u);

  // The peer crashed and rewound below our base.
  m.on_history_floor(1, 2, 1, 10.0);
  EXPECT_EQ(m.trim_bound(), 2u);
  m.gc_sweep(10.5);  // must not trim (bound < base) and must not throw
  EXPECT_EQ(m.history_base(), 5u);

  // The rewound peer makes progress again; trimming resumes past the base.
  m.on_history_floor(1, 7, 1, 11.0);
  m.gc_sweep(11.5);
  EXPECT_EQ(m.history_base(), 7u);
  EXPECT_EQ(m.history_end(), 9u);  // initial state + 8 events
}

TEST(MonitorProcessUnit, StatsAggregate) {
  MonitorStats a;
  a.tokens_created = 3;
  a.global_views_created = 5;
  a.max_pending = 7;
  MonitorStats b;
  b.tokens_created = 2;
  b.global_views_created = 1;
  b.max_pending = 4;
  b.finish_time = 9.0;
  a += b;
  EXPECT_EQ(a.tokens_created, 5u);
  EXPECT_EQ(a.global_views_created, 6u);
  EXPECT_EQ(a.max_pending, 7u);
  EXPECT_DOUBLE_EQ(a.finish_time, 9.0);
  EXPECT_NE(a.to_string().find("tokens=5"), std::string::npos);
}

}  // namespace
}  // namespace decmon
