// Refactor-equivalence goldens: the decentralized monitor's observable
// behaviour on the paper's properties A-F (n in {3, 5}, three trace seeds)
// is pinned against the numbers recorded from the pre-dispatch-table seed
// implementation. Any hot-path change that alters a verdict set or one of
// the monitor_messages / global_views_created / token_hops counters fails
// here byte-by-byte instead of silently shifting the Chapter 5 figures.
//
// Regenerate (only when behaviour is *supposed* to change):
//   build/tools/golden_gen > tests/monitor/equivalence_goldens.inc
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "decmon/decmon.hpp"

namespace decmon {
namespace {

struct GoldenRow {
  const char* prop;
  int n;
  std::uint64_t seed;
  const char* verdicts;  ///< subset of "?TF" in enum order
  std::uint64_t monitor_messages;
  std::uint64_t global_views_created;
  std::uint64_t token_hops;
};

constexpr GoldenRow kGoldens[] = {
#include "equivalence_goldens.inc"
};

paper::Property property_by_name(const std::string& name) {
  for (paper::Property p : paper::kAllProperties) {
    if (paper::name(p) == name) return p;
  }
  ADD_FAILURE() << "unknown property " << name;
  return paper::Property::kA;
}

std::string verdict_set_string(const std::set<Verdict>& vs) {
  std::string s;
  for (Verdict v : vs) {
    switch (v) {
      case Verdict::kUnknown: s += '?'; break;
      case Verdict::kTrue: s += 'T'; break;
      case Verdict::kFalse: s += 'F'; break;
    }
  }
  return s;
}

// Must stay in lockstep with tools/golden_gen.cpp.
RunResult run_golden_workload(paper::Property prop, int n, std::uint64_t seed,
                              const MonitorOptions& options = {}) {
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params = paper::experiment_params(prop, n, seed);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);
  return session.run(trace, SimConfig{}, options);
}

TEST(EquivalenceGolden, MatchesSeedImplementation) {
  ASSERT_EQ(std::size(kGoldens), 6u * 2u * 3u);
  for (const GoldenRow& row : kGoldens) {
    SCOPED_TRACE(std::string(row.prop) + " n=" + std::to_string(row.n) +
                 " seed=" + std::to_string(row.seed));
    const RunResult run =
        run_golden_workload(property_by_name(row.prop), row.n, row.seed);
    EXPECT_EQ(verdict_set_string(run.verdict.verdicts), row.verdicts);
    EXPECT_EQ(run.monitor_messages, row.monitor_messages);
    EXPECT_EQ(run.verdict.aggregate.global_views_created,
              row.global_views_created);
    EXPECT_EQ(run.verdict.aggregate.token_hops, row.token_hops);
  }
}

// The streaming posture (history GC + floor gossip) must reach the exact
// same verdict sets on every golden cell. Message and view counts are NOT
// compared: floor gossip adds sends, which shifts the simulator's latency
// draws and hence the schedule -- only the verdicts are schedule-invariant.
TEST(EquivalenceGolden, StreamingPostureKeepsVerdictSets) {
  MonitorOptions streaming;
  streaming.streaming = true;
  streaming.gc_interval = 4;  // aggressive: many sweeps even on short cells
  for (const GoldenRow& row : kGoldens) {
    SCOPED_TRACE(std::string(row.prop) + " n=" + std::to_string(row.n) +
                 " seed=" + std::to_string(row.seed));
    const RunResult run = run_golden_workload(property_by_name(row.prop),
                                              row.n, row.seed, streaming);
    EXPECT_EQ(verdict_set_string(run.verdict.verdicts), row.verdicts);
    EXPECT_TRUE(run.verdict.all_finished);
    // The posture must actually engage, not silently no-op.
    EXPECT_GT(run.verdict.aggregate.gc_sweeps, 0u);
  }
}

}  // namespace
}  // namespace decmon
