// The headline correctness tests: the decentralized monitor's verdict set
// must equal the oracle's verdict set (Equations 3.1 / 3.2) on every
// computation, for every asynchronous delivery schedule.
#include <gtest/gtest.h>

#include <random>

#include "../common/paper_example.hpp"
#include "../common/random_computation.hpp"
#include "../common/replay_driver.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/ltl/parser.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"
#include "decmon/monitor/predicate.hpp"

namespace decmon {
namespace {

using testing::PaperExample;
using testing::ReplayDriver;

std::vector<AtomSet> initial_letters(const Computation& comp) {
  std::vector<AtomSet> letters;
  for (int p = 0; p < comp.num_processes(); ++p) {
    letters.push_back(comp.event(p, 0).letter);
  }
  return letters;
}

/// Run the decentralized monitor over `comp` under schedule `seed`.
SystemVerdict run_decentralized(const Computation& comp,
                                const CompiledProperty& prop,
                                std::uint64_t seed,
                                MonitorOptions options = {}) {
  ReplayDriver driver;
  DecentralizedMonitor dm(&prop, &driver, initial_letters(comp), options);
  driver.run(comp, dm, seed);
  return dm.result();
}

std::string show(const std::set<Verdict>& vs) {
  std::string s;
  for (Verdict v : vs) s += to_string(v) + " ";
  return s;
}

// The correctness contract (see DESIGN.md):
//  * completeness: every oracle verdict appears in the monitor's set -- in
//    particular every violation/satisfaction is detected;
//  * soundness of definite verdicts: a declared TRUE/FALSE corresponds to a
//    real lattice path (no false alarms).
// The monitor may additionally report '?' for a genuine partial path even
// when every complete path is definite (surviving stale views); exact
// equality is tracked as a rate.
::testing::AssertionResult contract_holds(const OracleResult& oracle,
                                          const SystemVerdict& monitor) {
  for (Verdict v : oracle.verdicts) {
    if (!monitor.verdicts.count(v)) {
      return ::testing::AssertionFailure()
             << "incompleteness: oracle verdict " << to_string(v)
             << " missing; oracle={" << show(oracle.verdicts) << "} monitor={"
             << show(monitor.verdicts) << "}";
    }
  }
  for (Verdict v : monitor.verdicts) {
    if (v != Verdict::kUnknown && !oracle.verdicts.count(v)) {
      return ::testing::AssertionFailure()
             << "unsound definite verdict " << to_string(v) << "; oracle={"
             << show(oracle.verdicts) << "} monitor={"
             << show(monitor.verdicts) << "}";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(Decentralized, PaperExampleVerdictSet) {
  PaperExample ex;
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  CompiledProperty prop(&m, &ex.registry);
  OracleResult oracle = oracle_evaluate(ex.computation, m);
  ASSERT_EQ(oracle.verdicts,
            (std::set<Verdict>{Verdict::kFalse, Verdict::kUnknown}));
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    SystemVerdict v = run_decentralized(ex.computation, prop, seed);
    EXPECT_TRUE(v.all_finished) << "seed " << seed;
    EXPECT_EQ(v.verdicts, oracle.verdicts) << "seed " << seed;
  }
}

TEST(Decentralized, PaperExamplePsiPrime) {
  PaperExample ex;
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 == 15) U (x1 == 10)))", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  CompiledProperty prop(&m, &ex.registry);
  OracleResult oracle = oracle_evaluate(ex.computation, m);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    SystemVerdict v = run_decentralized(ex.computation, prop, seed);
    EXPECT_TRUE(v.all_finished);
    EXPECT_EQ(v.verdicts, oracle.verdicts) << "seed " << seed;
  }
}

TEST(Decentralized, DeadlockFreedomOnPaperExample) {
  // Theorem 1: monitors of a terminating program terminate; no waiting
  // tokens or views survive.
  PaperExample ex;
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  CompiledProperty prop(&m, &ex.registry);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ReplayDriver driver;
    DecentralizedMonitor dm(&prop, &driver, initial_letters(ex.computation));
    driver.run(ex.computation, dm, seed);
    for (int i = 0; i < 2; ++i) {
      EXPECT_TRUE(dm.monitor(i).finished());
      EXPECT_EQ(dm.monitor(i).num_waiting_tokens(), 0u);
    }
  }
}

// The central randomized test: verdict-set equality with the oracle over
// random computations, random properties, random schedules.
TEST(DecentralizedProperty, VerdictSetEqualsOracleTwoProcs) {
  std::mt19937_64 rng(424242);
  AtomRegistry reg = testing::standard_registry(2);
  const auto props = testing::property_suite_2();
  std::vector<CompiledProperty> compiled;
  std::vector<MonitorAutomaton> automata;
  automata.reserve(props.size());
  for (const auto& text : props) {
    automata.push_back(synthesize_monitor(parse_ltl(text, reg)));
  }
  for (const auto& m : automata) compiled.emplace_back(&m, &reg);

  int exact = 0;
  const int iterations = 150;
  for (int iter = 0; iter < iterations; ++iter) {
    Computation comp =
        testing::random_computation(rng, 2, reg, 3 + static_cast<int>(rng() % 4));
    const std::size_t pi = iter % props.size();
    OracleResult oracle = oracle_evaluate(comp, automata[pi]);
    SystemVerdict v = run_decentralized(comp, compiled[pi], rng());
    EXPECT_TRUE(v.all_finished);
    EXPECT_TRUE(contract_holds(oracle, v)) << "property: " << props[pi];
    if (v.verdicts == oracle.verdicts) ++exact;
  }
  // Exact verdict-set equality should be the common case, not the
  // exception (regression canary for over-approximation). The measured
  // rate is quoted in EXPERIMENTS.md; the print keeps it refreshable.
  std::cout << "[ stat ] exact verdict-set equality " << exact << "/"
            << iterations << "\n";
  EXPECT_GE(exact, iterations * 7 / 10) << "exact " << exact;
}

TEST(DecentralizedProperty, VerdictSetEqualsOracleThreeProcs) {
  std::mt19937_64 rng(777);
  AtomRegistry reg = testing::standard_registry(3);
  const auto props = testing::property_suite_3();
  std::vector<MonitorAutomaton> automata;
  for (const auto& text : props) {
    automata.push_back(synthesize_monitor(parse_ltl(text, reg)));
  }
  std::vector<CompiledProperty> compiled;
  for (const auto& m : automata) compiled.emplace_back(&m, &reg);

  int exact = 0;
  const int iterations = 60;
  for (int iter = 0; iter < iterations; ++iter) {
    Computation comp = testing::random_computation(rng, 3, reg, 3);
    const std::size_t pi = iter % props.size();
    OracleResult oracle = oracle_evaluate(comp, automata[pi]);
    SystemVerdict v = run_decentralized(comp, compiled[pi], rng());
    EXPECT_TRUE(v.all_finished);
    EXPECT_TRUE(contract_holds(oracle, v)) << props[pi];
    if (v.verdicts == oracle.verdicts) ++exact;
  }
  std::cout << "[ stat ] exact verdict-set equality " << exact << "/"
            << iterations << "\n";
  EXPECT_GE(exact, iterations * 6 / 10) << "exact " << exact;
}

// Schedule independence: the same computation and property produce the same
// verdict set under every delivery schedule.
TEST(DecentralizedProperty, ScheduleIndependence) {
  std::mt19937_64 rng(1001);
  AtomRegistry reg = testing::standard_registry(2);
  FormulaPtr f = parse_ltl("G((P0.p) U (P1.p))", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  for (int iter = 0; iter < 10; ++iter) {
    Computation comp = testing::random_computation(rng, 2, reg, 4);
    OracleResult oracle = oracle_evaluate(comp, m);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      SystemVerdict v = run_decentralized(comp, prop, seed);
      EXPECT_TRUE(contract_holds(oracle, v)) << "schedule seed " << seed;
    }
  }
}

// Optimizations off must not change verdicts (they are pure overhead
// reductions).
TEST(DecentralizedProperty, OptimizationsPreserveVerdicts) {
  std::mt19937_64 rng(31);
  AtomRegistry reg = testing::standard_registry(2);
  const auto props = testing::property_suite_2();
  for (int iter = 0; iter < 40; ++iter) {
    Computation comp = testing::random_computation(rng, 2, reg, 4);
    MonitorAutomaton m =
        synthesize_monitor(parse_ltl(props[iter % props.size()], reg));
    CompiledProperty prop(&m, &reg);
    const std::uint64_t seed = rng();
    MonitorOptions plain;
    plain.dedupe_probes = false;
    plain.prune_same_destination = false;
    SystemVerdict with = run_decentralized(comp, prop, seed);
    SystemVerdict without = run_decentralized(comp, prop, seed, plain);
    // Optimizations are overhead reductions: definite verdicts must agree.
    for (Verdict v : {Verdict::kTrue, Verdict::kFalse}) {
      EXPECT_EQ(with.verdicts.count(v), without.verdicts.count(v))
          << to_string(v);
    }
  }
}

}  // namespace
}  // namespace decmon
