#include "decmon/monitor/predicate.hpp"

#include <gtest/gtest.h>

#include "../common/random_computation.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

TEST(CompiledProperty, SplitsGuardsByProcess) {
  AtomRegistry reg = testing::standard_registry(2);
  FormulaPtr f = parse_ltl("F(P0.p && P1.p)", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  EXPECT_EQ(prop.num_processes(), 2);

  // The outgoing transition from the initial state is P0.p && P1.p.
  const auto& out = prop.outgoing(m.initial_state());
  ASSERT_EQ(out.size(), 1u);
  const CompiledTransition& t = prop.transition(out[0]);
  EXPECT_EQ(t.participants, (std::vector<int>{0, 1}));
  EXPECT_FALSE(t.local[0].is_true());
  EXPECT_FALSE(t.local[1].is_true());
  // Local cubes over the right atoms: P0.p is atom 0, P1.p is atom 2.
  EXPECT_EQ(t.local[0].pos, AtomSet{1} << 0);
  EXPECT_EQ(t.local[1].pos, AtomSet{1} << 2);
}

TEST(CompiledProperty, SelfLoopsAndOutgoingPartition) {
  AtomRegistry reg = testing::standard_registry(2);
  FormulaPtr f = parse_ltl("F(P0.p && P1.p)", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  int total = 0;
  for (int q = 0; q < m.num_states(); ++q) {
    total += static_cast<int>(prop.outgoing(q).size());
    total += static_cast<int>(prop.self_loops(q).size());
    for (int tid : prop.self_loops(q)) {
      EXPECT_TRUE(prop.transition(tid).self_loop);
    }
    for (int tid : prop.outgoing(q)) {
      EXPECT_FALSE(prop.transition(tid).self_loop);
    }
  }
  EXPECT_EQ(total, m.num_transitions());
}

TEST(CompiledProperty, LocallySatisfied) {
  AtomRegistry reg = testing::standard_registry(2);
  FormulaPtr f = parse_ltl("F(P0.p && !P0.q && P1.p)", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  const int tid = prop.outgoing(m.initial_state())[0];
  // P0's part: p && !q. Atom bits: P0.p=0, P0.q=1.
  EXPECT_TRUE(prop.locally_satisfied(tid, 0, 0b01));
  EXPECT_FALSE(prop.locally_satisfied(tid, 0, 0b11));
  EXPECT_FALSE(prop.locally_satisfied(tid, 0, 0b00));
  // P1's part: p. Atom bits: P1.p=2.
  EXPECT_TRUE(prop.locally_satisfied(tid, 1, 0b100));
  EXPECT_FALSE(prop.locally_satisfied(tid, 1, 0b000));
}

TEST(CompiledProperty, NonParticipantTriviallySatisfied) {
  AtomRegistry reg = testing::standard_registry(3);
  FormulaPtr f = parse_ltl("F(P0.p && P2.p)", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  const int tid = prop.outgoing(m.initial_state())[0];
  EXPECT_TRUE(prop.transition(tid).local[1].is_true());
  EXPECT_TRUE(prop.locally_satisfied(tid, 1, 0));
  EXPECT_EQ(prop.transition(tid).participants, (std::vector<int>{0, 2}));
}

TEST(CompiledProperty, StepMatchesAutomaton) {
  AtomRegistry reg = testing::standard_registry(2);
  FormulaPtr f = parse_ltl("G(P0.p || P1.p)", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  for (AtomSet letter = 0; letter < 16; ++letter) {
    EXPECT_EQ(prop.step(m.initial_state(), letter),
              *m.step(m.initial_state(), letter));
  }
}

}  // namespace
}  // namespace decmon
