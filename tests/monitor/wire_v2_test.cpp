// Wire v2 (batched frames): seeded property round-trips across varint and
// clock-width boundaries, exact accounting (the counting pass must agree
// with the real encoder byte for byte), v1 backward compatibility, and the
// same exhaustive corruption discipline the checkpoint codec gets --
// truncation at every length, a byte flip at every position.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "decmon/distributed/message.hpp"
#include "decmon/distributed/reliable_channel.hpp"
#include "decmon/monitor/wire.hpp"

namespace decmon {
namespace {

// Values straddling every LEB128 length step (1/2/../10 bytes) plus the
// u32 ceiling the clock components live under.
const std::uint64_t kVarintEdges[] = {
    0,
    1,
    0x7F,
    0x80,
    0x3FFF,
    0x4000,
    0x1FFFFF,
    0x200000,
    0xFFFFFFF,
    0x10000000,
    0xFFFFFFFFull,
    0x7FFFFFFFFFFFFFFFull,
    0xFFFFFFFFFFFFFFFFull,
};

TEST(WireV2, VarintEdgeValuesRoundTrip) {
  for (std::uint64_t x : kVarintEdges) {
    std::vector<std::uint8_t> buf;
    WireWriter w(buf);
    w.var(x);
    EXPECT_EQ(buf.size(), WireWriter::var_size(x)) << x;
    WireReader r(buf);
    EXPECT_EQ(r.var(), x);
    r.done();
  }
}

TEST(WireV2, ZigzagEdgeValuesRoundTrip) {
  std::vector<std::int64_t> values = {0, -1, 1, -64, 63, -65, 64};
  for (std::uint64_t x : kVarintEdges) {
    values.push_back(static_cast<std::int64_t>(x));
    values.push_back(-static_cast<std::int64_t>(x >> 1));
  }
  for (std::int64_t x : values) {
    std::vector<std::uint8_t> buf;
    WireWriter w(buf);
    w.zig(x);
    WireReader r(buf);
    EXPECT_EQ(r.zig(), x) << x;
    r.done();
  }
}

TEST(WireV2, RejectsOverlongVarint) {
  // 10 continuation bytes followed by a terminator with high value bits set
  // would decode to more than 64 bits.
  std::vector<std::uint8_t> buf(10, 0xFF);
  buf.push_back(0x03);
  WireReader r(buf);
  EXPECT_THROW(r.var(), WireError);
}

// ---------------------------------------------------------------------------
// Frame round-trips.
// ---------------------------------------------------------------------------

Token random_token(std::mt19937_64& rng, std::size_t width) {
  auto edge = [&rng]() -> std::uint32_t {
    const std::uint64_t raw =
        kVarintEdges[rng() % (sizeof kVarintEdges / sizeof *kVarintEdges)];
    return static_cast<std::uint32_t>(raw);  // clocks are u32 on the wire
  };
  Token t;
  t.token_id = rng();
  t.parent = static_cast<int>(rng() % width);
  t.parent_sn = edge();
  t.parent_vc = VectorClock(width);
  for (std::size_t j = 0; j < width; ++j) t.parent_vc[j] = edge();
  t.next_target_process = static_cast<int>(rng() % (width + 1)) - 1;
  t.next_target_event = edge();
  t.hops = static_cast<int>(rng() % 1000);
  const std::size_t entries = rng() % 4;
  for (std::size_t i = 0; i < entries; ++i) {
    TransitionEntry e;
    e.transition_id = static_cast<int>(rng() % 64) - 1;
    // Mixed widths exercise both the delta-vs-base and raw-varint clock
    // paths inside one frame.
    e.set_width(rng() % 2 == 0 ? width : width + 1);
    for (std::size_t j = 0; j < e.width(); ++j) {
      e.cut(j) = edge();
      e.depend(j) = edge();
      e.gstate(j) = rng();
      e.conj(j) = static_cast<ConjunctEval>(rng() % 3);
    }
    e.eval = static_cast<EntryEval>(rng() % 3);
    e.next_target_process = static_cast<int>(rng() % (width + 1)) - 1;
    e.next_target_event = edge();
    e.loop_certified = rng() % 2 == 0;
    if (e.loop_certified) {
      for (std::size_t j = 0; j < e.width(); ++j) {
        e.loop_cut(j) = edge();
        e.loop_gstate(j) = rng();
      }
    }
    t.entries.push_back(std::move(e));
  }
  return t;
}

std::unique_ptr<PayloadFrame> random_frame(std::mt19937_64& rng,
                                           std::size_t units,
                                           std::size_t width) {
  auto frame = std::make_unique<PayloadFrame>();
  for (std::size_t i = 0; i < units; ++i) {
    if (rng() % 4 == 0) {
      auto term = std::make_unique<TerminationMessage>();
      term->process = static_cast<int>(rng() % width);
      term->last_sn = static_cast<std::uint32_t>(rng());
      frame->units.push_back(std::move(term));
    } else {
      auto msg = std::make_unique<TokenMessage>();
      msg->token = random_token(rng, width);
      frame->units.push_back(std::move(msg));
    }
  }
  return frame;
}

void expect_equal_token(const Token& a, const Token& b) {
  EXPECT_EQ(a.token_id, b.token_id);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.parent_sn, b.parent_sn);
  EXPECT_EQ(a.parent_vc, b.parent_vc);
  EXPECT_EQ(a.next_target_process, b.next_target_process);
  EXPECT_EQ(a.next_target_event, b.next_target_event);
  EXPECT_EQ(a.hops, b.hops);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const TransitionEntry& x = a.entries[i];
    const TransitionEntry& y = b.entries[i];
    EXPECT_EQ(x.transition_id, y.transition_id);
    ASSERT_EQ(x.width(), y.width());
    for (std::size_t j = 0; j < x.width(); ++j) {
      EXPECT_EQ(x.cut(j), y.cut(j));
      EXPECT_EQ(x.depend(j), y.depend(j));
      EXPECT_EQ(x.gstate(j), y.gstate(j));
      EXPECT_EQ(x.conj(j), y.conj(j));
      if (x.loop_certified) {
        EXPECT_EQ(x.loop_cut(j), y.loop_cut(j));
        EXPECT_EQ(x.loop_gstate(j), y.loop_gstate(j));
      }
    }
    EXPECT_EQ(x.eval, y.eval);
    EXPECT_EQ(x.next_target_process, y.next_target_process);
    EXPECT_EQ(x.next_target_event, y.next_target_event);
    EXPECT_EQ(x.loop_certified, y.loop_certified);
  }
}

void expect_equal_frame(const PayloadFrame& a, const PayloadFrame& b) {
  ASSERT_EQ(a.units.size(), b.units.size());
  for (std::size_t i = 0; i < a.units.size(); ++i) {
    ASSERT_EQ(a.units[i]->tag, b.units[i]->tag) << "unit " << i;
    if (a.units[i]->tag == TokenMessage::kTag) {
      expect_equal_token(static_cast<const TokenMessage&>(*a.units[i]).token,
                         static_cast<const TokenMessage&>(*b.units[i]).token);
    } else {
      const auto& x = static_cast<const TerminationMessage&>(*a.units[i]);
      const auto& y = static_cast<const TerminationMessage&>(*b.units[i]);
      EXPECT_EQ(x.process, y.process);
      EXPECT_EQ(x.last_sn, y.last_sn);
    }
  }
}

// Seeded sweep over batch sizes 1 (the common route_token flush) through 12
// (past SmallVec-style inline capacities and the >8 mark), clock widths 1
// through 9 (crossing the inline-clock boundary), with varint-edge values
// throughout.
TEST(WireV2, SeededFrameRoundTrips) {
  std::mt19937_64 rng(20250805);
  for (std::size_t units : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                            std::size_t{9}, std::size_t{12}}) {
    for (std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                              std::size_t{8}, std::size_t{9}}) {
      for (int round = 0; round < 8; ++round) {
        auto frame = random_frame(rng, units, width);
        const auto bytes = encode_frame(*frame);
        EXPECT_EQ(wire_kind(bytes), WireKind::kFrame);
        auto back = decode_frame(bytes, width + 1);
        expect_equal_frame(*frame, *back);
        EXPECT_EQ(back->wire_size, bytes.size());
      }
    }
  }
}

TEST(WireV2, TerminationOnlyFrameRoundTrips) {
  // No token unit -> empty base clock; the header must still parse.
  auto frame = std::make_unique<PayloadFrame>();
  auto term = std::make_unique<TerminationMessage>();
  term->process = 2;
  term->last_sn = 7;
  frame->units.push_back(std::move(term));
  const auto bytes = encode_frame(*frame);
  auto back = decode_frame(bytes, 8);
  expect_equal_frame(*frame, *back);
}

// The counting pass and the real encoder must never disagree: bytes-on-wire
// accounting is only trustworthy if stamp == encode, unit by unit.
TEST(WireV2, StampMatchesEncodedSize) {
  std::mt19937_64 rng(404);
  for (int round = 0; round < 32; ++round) {
    auto frame = random_frame(rng, 1 + rng() % 10, 1 + rng() % 8);
    const std::size_t stamped = stamp_frame_wire_size(*frame);
    const auto bytes = encode_frame(*frame);
    EXPECT_EQ(stamped, bytes.size());
    EXPECT_EQ(frame->wire_size, bytes.size());
    std::size_t unit_total = 0;
    for (const auto& unit : frame->units) unit_total += unit->wire_size;
    // Units account for everything but the frame header + base clock
    // (version + kind + 2 varint counts + up to 8 base components).
    ASSERT_LT(unit_total, stamped);
    EXPECT_LE(stamped - unit_total, std::size_t{2 + 10 + 10 + 8 * 5});
    // Per-unit stamps also match payload_wire_size's v1 form only for the
    // frame itself; check the frame-level invariant instead: re-stamping
    // is idempotent.
    EXPECT_EQ(stamp_frame_wire_size(*frame), stamped);
  }
}

TEST(WireV2, DecodePayloadDispatchesFrames) {
  std::mt19937_64 rng(7);
  auto frame = random_frame(rng, 3, 4);
  std::vector<std::uint8_t> bytes;
  encode_payload_into(*frame, bytes);
  auto payload = decode_payload(bytes, 5);
  ASSERT_EQ(payload->tag, PayloadFrame::kTag);
  expect_equal_frame(*frame, static_cast<const PayloadFrame&>(*payload));
}

// ---------------------------------------------------------------------------
// v1 backward compatibility: buffers produced by the frozen v1 encoders
// must keep decoding through the payload-level entry point.
// ---------------------------------------------------------------------------

TEST(WireV2, V1TokenStillDecodes) {
  std::mt19937_64 rng(11);
  Token t = random_token(rng, 4);
  const auto bytes = encode_token(t);
  EXPECT_EQ(bytes[0], 1) << "v1 header byte must stay frozen";
  EXPECT_EQ(wire_kind(bytes), WireKind::kToken);
  auto payload = decode_payload(bytes, 5);
  ASSERT_EQ(payload->tag, TokenMessage::kTag);
  expect_equal_token(t, static_cast<const TokenMessage&>(*payload).token);
}

TEST(WireV2, V1TerminationStillDecodes) {
  TerminationMessage msg;
  msg.process = 1;
  msg.last_sn = 99;
  const auto bytes = encode_termination(msg);
  EXPECT_EQ(bytes[0], 1) << "v1 header byte must stay frozen";
  auto payload = decode_payload(bytes, 4);
  ASSERT_EQ(payload->tag, TerminationMessage::kTag);
  EXPECT_EQ(static_cast<const TerminationMessage&>(*payload).process, 1);
  EXPECT_EQ(static_cast<const TerminationMessage&>(*payload).last_sn, 99u);
}

TEST(WireV2, SingleUnitFrameIsNotV1) {
  // The monitor frames every send, even singles; make sure the receiver
  // can tell them apart from legacy buffers by the version byte alone.
  std::mt19937_64 rng(13);
  auto frame = random_frame(rng, 1, 3);
  const auto bytes = encode_frame(*frame);
  EXPECT_EQ(bytes[0], 2);
  EXPECT_EQ(wire_kind(bytes), WireKind::kFrame);
}

// ---------------------------------------------------------------------------
// Corruption: the checkpoint codec's discipline, applied to frames.
// ---------------------------------------------------------------------------

TEST(WireV2, RejectsTruncationAtEveryLength) {
  std::mt19937_64 rng(17);
  auto frame = random_frame(rng, 4, 5);
  const auto bytes = encode_frame(*frame);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_frame(shorter, 6), WireError) << "cut at " << cut;
  }
}

TEST(WireV2, ByteFlipsNeverCrash) {
  // A flipped byte may still decode (varint payload bytes carry no
  // redundancy), but it must either throw WireError or produce a frame --
  // never crash, hang, or allocate unboundedly. Width fields are bounded
  // by max_width, unit counts by the frame ceiling.
  std::mt19937_64 rng(23);
  auto frame = random_frame(rng, 3, 4);
  const auto bytes = encode_frame(*frame);
  int survived = 0;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (std::uint8_t mask : {0x01, 0x80}) {
      std::vector<std::uint8_t> flipped = bytes;
      flipped[pos] ^= mask;
      try {
        auto back = decode_frame(flipped, 5);
        if (back) ++survived;
      } catch (const WireError&) {
        // expected for most corruptions
      }
    }
  }
  EXPECT_GT(survived, 0) << "sanity: some flips decode (no checksum layer)";
}

TEST(WireV2, RejectsTrailingGarbage) {
  std::mt19937_64 rng(29);
  auto frame = random_frame(rng, 2, 3);
  auto bytes = encode_frame(*frame);
  bytes.push_back(0);
  EXPECT_THROW(decode_frame(bytes, 4), WireError);
}

TEST(WireV2, RejectsOversizedUnitCount) {
  // Hand-build a header claiming 2^20 units: the decoder must bail on the
  // ceiling before trusting the count.
  std::vector<std::uint8_t> buf;
  WireWriter w(buf);
  w.u8(2);
  w.u8(3);  // WireKind::kFrame
  w.var(std::uint64_t{1} << 20);
  w.var(0);  // empty base clock
  EXPECT_THROW(decode_frame(buf, 4), WireError);
}

TEST(WireV2, FrameCloneDeepCopies) {
  std::mt19937_64 rng(31);
  auto frame = random_frame(rng, 3, 4);
  auto msg = std::make_unique<TokenMessage>();
  msg->token = random_token(rng, 4);
  frame->units.insert(frame->units.begin(), std::move(msg));
  stamp_frame_wire_size(*frame);
  auto copy = frame->clone();
  ASSERT_NE(copy, nullptr);
  auto* copied = static_cast<PayloadFrame*>(copy.get());
  expect_equal_frame(*frame, *copied);
  EXPECT_EQ(copied->wire_size, frame->wire_size);
  // Mutating the copy must not touch the original.
  static_cast<TokenMessage*>(copied->units[0].get())->token.hops += 1;
  EXPECT_NE(
      static_cast<TokenMessage*>(copied->units[0].get())->token.hops,
      static_cast<TokenMessage*>(frame->units[0].get())->token.hops);
}

// ---------------------------------------------------------------------------
// Channel envelopes (wire kind 4): the reliable channel's protocol messages
// gained a wire form so the channel can be stacked over a socket transport.
// ---------------------------------------------------------------------------

TEST(WireV2, EnvelopeWithInnerPayloadRoundTrips) {
  std::mt19937_64 rng(37);
  auto inner = random_frame(rng, 3, 4);
  const auto inner_bytes = encode_frame(*inner);

  ChannelEnvelope env;
  env.seq = 42;
  env.ack = 17;
  env.inner = std::move(inner);

  std::vector<std::uint8_t> bytes;
  encode_payload_into(env, bytes);
  EXPECT_EQ(wire_kind(bytes), WireKind::kEnvelope);
  EXPECT_EQ(payload_wire_size(env), bytes.size());  // counting mode agrees

  auto back = decode_payload(bytes, 5);
  ASSERT_EQ(back->tag, ChannelEnvelope::kTag);
  auto* decoded = static_cast<ChannelEnvelope*>(back.get());
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->ack, 17u);
  EXPECT_EQ(decoded->inner, nullptr);  // payload stays opaque bytes
  // ... and those bytes are exactly the inner payload's own encoding, so
  // the channel's retransmission decode path accepts them unchanged.
  EXPECT_EQ(decoded->bytes, inner_bytes);
  auto inner_back = decode_payload(decoded->bytes, 5);
  EXPECT_EQ(inner_back->tag, PayloadFrame::kTag);
}

TEST(WireV2, EnvelopeFirstSendAndRetransmitEncodeIdentically) {
  // First transmissions carry the payload object, retransmissions the
  // retained bytes; the receiver must not be able to tell them apart.
  std::mt19937_64 rng(41);
  auto inner = random_frame(rng, 2, 3);

  ChannelEnvelope retransmit;
  retransmit.seq = 7;
  retransmit.ack = 3;
  encode_payload_into(*inner, retransmit.bytes);

  ChannelEnvelope first;
  first.seq = 7;
  first.ack = 3;
  first.inner = std::move(inner);

  std::vector<std::uint8_t> a, b;
  encode_payload_into(first, a);
  encode_payload_into(retransmit, b);
  EXPECT_EQ(a, b);
}

TEST(WireV2, PureAckEnvelopeRoundTrips) {
  ChannelEnvelope env;
  env.seq = 0;
  env.ack = 123456789;

  std::vector<std::uint8_t> bytes;
  encode_payload_into(env, bytes);
  EXPECT_EQ(payload_wire_size(env), bytes.size());

  auto back = decode_payload(bytes, 4);
  ASSERT_EQ(back->tag, ChannelEnvelope::kTag);
  auto* decoded = static_cast<ChannelEnvelope*>(back.get());
  EXPECT_EQ(decoded->seq, 0u);
  EXPECT_EQ(decoded->ack, 123456789u);
  EXPECT_TRUE(decoded->bytes.empty());
  EXPECT_EQ(decoded->inner, nullptr);
}

TEST(WireV2, EnvelopeRejectsHeaderTruncationAndEmptyPayload) {
  std::mt19937_64 rng(43);
  auto inner = random_frame(rng, 1, 2);
  ChannelEnvelope env;
  env.seq = 99;
  env.ack = 1;
  env.inner = std::move(inner);
  std::vector<std::uint8_t> bytes;
  encode_payload_into(env, bytes);

  // Truncating inside the seq/ack/flag header must throw; truncating the
  // embedded payload throws when the channel decodes the bytes, so here we
  // only pin the "has payload but zero payload bytes" case.
  for (std::size_t cut = 1; cut < 6; ++cut) {
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_payload(shorter, 3), WireError) << "cut at " << cut;
  }

  ChannelEnvelope flagged;
  flagged.seq = 1;
  std::vector<std::uint8_t> truncated;
  encode_payload_into(flagged, truncated);
  truncated.back() = 1;  // has_payload flag set, but no bytes follow
  EXPECT_THROW(decode_payload(truncated, 3), WireError);
}

}  // namespace
}  // namespace decmon
