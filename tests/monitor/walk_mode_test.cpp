// Pins the behavioural difference between the exact token walk (our
// default) and the thesis's join-jump walk (WalkMode::kJoinJump): on the
// same deterministic corpus, the exact walk never produces a false definite
// verdict, while the join-jump walk does (the reason it is not the
// default). See DESIGN.md, design note 2.
#include <gtest/gtest.h>

#include <random>

#include "../common/random_computation.hpp"
#include "../common/replay_driver.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/ltl/parser.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"

namespace decmon {
namespace {

std::vector<AtomSet> initial_letters(const Computation& comp) {
  std::vector<AtomSet> letters;
  for (int p = 0; p < comp.num_processes(); ++p) {
    letters.push_back(comp.event(p, 0).letter);
  }
  return letters;
}

/// Count contract violations (false definite verdicts or missed definite
/// verdicts) over a fixed corpus for the given walk mode.
struct Violations {
  int unsound = 0;
  int incomplete_definite = 0;
};

Violations run_corpus(WalkMode mode) {
  std::mt19937_64 rng(424242);  // fixed: the corpus is deterministic
  AtomRegistry reg = testing::standard_registry(2);
  // X-shaped properties have states without self-loops: the join-jump
  // walk's weak spot.
  FormulaPtr f = parse_ltl("X X (P0.p && P1.q)", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  MonitorOptions options;
  options.walk_mode = mode;

  Violations v;
  for (int iter = 0; iter < 400; ++iter) {
    Computation comp = testing::random_computation(
        rng, 2, reg, 3 + static_cast<int>(rng() % 4));
    OracleResult oracle = oracle_evaluate(comp, m);
    const std::uint64_t seed = rng();
    testing::ReplayDriver driver;
    DecentralizedMonitor dm(&prop, &driver, initial_letters(comp), options);
    driver.run(comp, dm, seed);
    SystemVerdict result = dm.result();
    for (Verdict x : result.verdicts) {
      if (x != Verdict::kUnknown && !oracle.verdicts.count(x)) ++v.unsound;
    }
    for (Verdict x : oracle.verdicts) {
      if (x != Verdict::kUnknown && !result.verdicts.count(x)) {
        ++v.incomplete_definite;
      }
    }
  }
  return v;
}

TEST(WalkMode, ExactWalkIsSoundOnXShapedCorpus) {
  Violations v = run_corpus(WalkMode::kExact);
  EXPECT_EQ(v.unsound, 0);
  EXPECT_EQ(v.incomplete_definite, 0);
}

TEST(WalkMode, JoinJumpWalkIsMeasurablyUnsound) {
  // The deviation this test pins: the thesis's join skips lattice depths,
  // so X-shaped predicates fire at the wrong position. If this ever starts
  // passing with zero violations, the join-jump implementation no longer
  // reproduces the thesis behaviour -- investigate before "fixing" it.
  Violations v = run_corpus(WalkMode::kJoinJump);
  EXPECT_GT(v.unsound, 0);
}

TEST(WalkMode, JoinJumpStillDetectsPlainReachableVerdicts) {
  // On safety/co-safety shapes with self-loops everywhere, both modes find
  // the definite verdicts.
  std::mt19937_64 rng(99);
  AtomRegistry reg = testing::standard_registry(2);
  FormulaPtr f = parse_ltl("F(P0.p && P1.p)", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  MonitorOptions jump;
  jump.walk_mode = WalkMode::kJoinJump;
  for (int iter = 0; iter < 40; ++iter) {
    Computation comp = testing::random_computation(rng, 2, reg, 5);
    OracleResult oracle = oracle_evaluate(comp, m);
    testing::ReplayDriver driver;
    DecentralizedMonitor dm(&prop, &driver, initial_letters(comp), jump);
    driver.run(comp, dm, rng());
    if (oracle.verdicts.count(Verdict::kTrue)) {
      EXPECT_TRUE(dm.result().verdicts.count(Verdict::kTrue));
    }
    EXPECT_TRUE(dm.all_finished());
  }
}

}  // namespace
}  // namespace decmon
