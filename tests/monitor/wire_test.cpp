#include "decmon/monitor/wire.hpp"

#include <gtest/gtest.h>

#include <random>

namespace decmon {
namespace {

Token sample_token() {
  Token t;
  t.token_id = (std::uint64_t{2} << 32) | 17;
  t.parent = 2;
  t.parent_sn = 9;
  t.parent_vc = VectorClock{3, 1, 9};
  t.next_target_process = 0;
  t.next_target_event = 4;
  t.hops = 5;

  TransitionEntry e1;
  e1.transition_id = 7;
  e1.cut = {3, 1, 9};
  e1.depend = VectorClock{3, 1, 9};
  e1.gstate = {0b01, 0b10, 0b11};
  e1.conj = {ConjunctEval::kTrue, ConjunctEval::kUnset, ConjunctEval::kFalse};
  e1.eval = EntryEval::kUnset;
  e1.next_target_process = 0;
  e1.next_target_event = 4;
  e1.loop_certified = true;
  e1.loop_cut = {2, 1, 8};
  e1.loop_gstate = {0, 0b10, 0b01};

  TransitionEntry e2;
  e2.transition_id = 12;
  e2.cut = {5, 5, 5};
  e2.depend = VectorClock{5, 5, 5};
  e2.gstate = {0, 0, 0};
  e2.conj = {ConjunctEval::kUnset, ConjunctEval::kUnset,
             ConjunctEval::kUnset};
  e2.eval = EntryEval::kFalse;
  e2.next_target_process = -1;  // unset target must survive the trip
  e2.next_target_event = 0;

  t.entries = {e1, e2};
  return t;
}

void expect_equal(const Token& a, const Token& b) {
  EXPECT_EQ(a.token_id, b.token_id);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.parent_sn, b.parent_sn);
  EXPECT_EQ(a.parent_vc, b.parent_vc);
  EXPECT_EQ(a.next_target_process, b.next_target_process);
  EXPECT_EQ(a.next_target_event, b.next_target_event);
  EXPECT_EQ(a.hops, b.hops);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const TransitionEntry& x = a.entries[i];
    const TransitionEntry& y = b.entries[i];
    EXPECT_EQ(x.transition_id, y.transition_id);
    EXPECT_EQ(x.cut, y.cut);
    EXPECT_EQ(x.depend, y.depend);
    EXPECT_EQ(x.gstate, y.gstate);
    EXPECT_EQ(x.conj, y.conj);
    EXPECT_EQ(x.eval, y.eval);
    EXPECT_EQ(x.next_target_process, y.next_target_process);
    EXPECT_EQ(x.next_target_event, y.next_target_event);
    EXPECT_EQ(x.loop_certified, y.loop_certified);
    EXPECT_EQ(x.loop_cut, y.loop_cut);
    EXPECT_EQ(x.loop_gstate, y.loop_gstate);
  }
}

TEST(Wire, TokenRoundTrip) {
  Token t = sample_token();
  auto bytes = encode_token(t);
  EXPECT_EQ(wire_kind(bytes), WireKind::kToken);
  expect_equal(t, decode_token(bytes));
}

TEST(Wire, EmptyTokenRoundTrip) {
  Token t;
  t.parent_vc = VectorClock(2);
  auto bytes = encode_token(t);
  expect_equal(t, decode_token(bytes));
}

TEST(Wire, TerminationRoundTrip) {
  TerminationMessage msg;
  msg.process = 3;
  msg.last_sn = 42;
  auto bytes = encode_termination(msg);
  EXPECT_EQ(wire_kind(bytes), WireKind::kTermination);
  TerminationMessage back = decode_termination(bytes);
  EXPECT_EQ(back.process, 3);
  EXPECT_EQ(back.last_sn, 42u);
}

TEST(Wire, RejectsTruncation) {
  auto bytes = encode_token(sample_token());
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_token(shorter), WireError) << "cut at " << cut;
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  auto bytes = encode_token(sample_token());
  bytes.push_back(0xAB);
  EXPECT_THROW(decode_token(bytes), WireError);
}

TEST(Wire, RejectsWrongKind) {
  auto token_bytes = encode_token(sample_token());
  EXPECT_THROW(decode_termination(token_bytes), WireError);
  TerminationMessage msg;
  msg.process = 1;
  EXPECT_THROW(decode_token(encode_termination(msg)), WireError);
}

TEST(Wire, RejectsBadVersion) {
  auto bytes = encode_token(sample_token());
  bytes[0] = 99;
  EXPECT_THROW(decode_token(bytes), WireError);
  EXPECT_THROW(wire_kind(bytes), WireError);
}

// Fuzz: random byte flips must raise WireError or decode to *something*,
// never crash or loop.
TEST(WireFuzz, RandomCorruptionIsSafe) {
  std::mt19937_64 rng(0xF00D);
  const auto original = encode_token(sample_token());
  for (int iter = 0; iter < 2000; ++iter) {
    auto bytes = original;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      bytes[rng() % bytes.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    try {
      Token t = decode_token(bytes);
      (void)t;
    } catch (const WireError&) {
      // expected for most corruptions
    }
  }
}

// Fuzz: random buffers never crash the decoder.
TEST(WireFuzz, RandomBuffersAreSafe) {
  std::mt19937_64 rng(0xBEEF);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      decode_token(bytes);
    } catch (const WireError&) {
    }
    try {
      decode_termination(bytes);
    } catch (const WireError&) {
    }
  }
}

}  // namespace
}  // namespace decmon
