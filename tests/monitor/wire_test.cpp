#include "decmon/monitor/wire.hpp"

#include <gtest/gtest.h>

#include <random>

namespace decmon {
namespace {

TransitionEntry make_entry(int tid, std::initializer_list<std::uint32_t> cut,
                           std::initializer_list<AtomSet> gstate,
                           std::initializer_list<ConjunctEval> conj) {
  TransitionEntry e;
  e.transition_id = tid;
  e.set_width(cut.size());
  std::size_t j = 0;
  for (std::uint32_t x : cut) {
    e.cut(j) = x;
    e.depend(j) = x;
    ++j;
  }
  j = 0;
  for (AtomSet s : gstate) e.gstate(j++) = s;
  j = 0;
  for (ConjunctEval c : conj) e.conj(j++) = c;
  return e;
}

Token sample_token() {
  Token t;
  t.token_id = (std::uint64_t{2} << 32) | 17;
  t.parent = 2;
  t.parent_sn = 9;
  t.parent_vc = VectorClock{3, 1, 9};
  t.next_target_process = 0;
  t.next_target_event = 4;
  t.hops = 5;

  TransitionEntry e1 =
      make_entry(7, {3, 1, 9}, {0b01, 0b10, 0b11},
                 {ConjunctEval::kTrue, ConjunctEval::kUnset,
                  ConjunctEval::kFalse});
  e1.eval = EntryEval::kUnset;
  e1.next_target_process = 0;
  e1.next_target_event = 4;
  e1.loop_certified = true;
  {
    const std::uint32_t lc[] = {2, 1, 8};
    const AtomSet lg[] = {0, 0b10, 0b01};
    for (std::size_t j = 0; j < 3; ++j) {
      e1.loop_cut(j) = lc[j];
      e1.loop_gstate(j) = lg[j];
    }
  }

  TransitionEntry e2 =
      make_entry(12, {5, 5, 5}, {0, 0, 0},
                 {ConjunctEval::kUnset, ConjunctEval::kUnset,
                  ConjunctEval::kUnset});
  e2.eval = EntryEval::kFalse;
  e2.next_target_process = -1;  // unset target must survive the trip
  e2.next_target_event = 0;

  t.entries = {e1, e2};
  return t;
}

void expect_equal(const Token& a, const Token& b) {
  EXPECT_EQ(a.token_id, b.token_id);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.parent_sn, b.parent_sn);
  EXPECT_EQ(a.parent_vc, b.parent_vc);
  EXPECT_EQ(a.next_target_process, b.next_target_process);
  EXPECT_EQ(a.next_target_event, b.next_target_event);
  EXPECT_EQ(a.hops, b.hops);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const TransitionEntry& x = a.entries[i];
    const TransitionEntry& y = b.entries[i];
    EXPECT_EQ(x.transition_id, y.transition_id);
    ASSERT_EQ(x.width(), y.width());
    for (std::size_t j = 0; j < x.width(); ++j) {
      EXPECT_EQ(x.cut(j), y.cut(j));
      EXPECT_EQ(x.depend(j), y.depend(j));
      EXPECT_EQ(x.gstate(j), y.gstate(j));
      EXPECT_EQ(x.conj(j), y.conj(j));
      if (x.loop_certified) {
        EXPECT_EQ(x.loop_cut(j), y.loop_cut(j));
        EXPECT_EQ(x.loop_gstate(j), y.loop_gstate(j));
      }
    }
    EXPECT_EQ(x.eval, y.eval);
    EXPECT_EQ(x.next_target_process, y.next_target_process);
    EXPECT_EQ(x.next_target_event, y.next_target_event);
    EXPECT_EQ(x.loop_certified, y.loop_certified);
  }
}

TEST(Wire, TokenRoundTrip) {
  Token t = sample_token();
  auto bytes = encode_token(t);
  EXPECT_EQ(wire_kind(bytes), WireKind::kToken);
  expect_equal(t, decode_token(bytes));
}

TEST(Wire, EmptyTokenRoundTrip) {
  Token t;
  t.parent_vc = VectorClock(2);
  auto bytes = encode_token(t);
  expect_equal(t, decode_token(bytes));
}

TEST(Wire, TerminationRoundTrip) {
  TerminationMessage msg;
  msg.process = 3;
  msg.last_sn = 42;
  auto bytes = encode_termination(msg);
  EXPECT_EQ(wire_kind(bytes), WireKind::kTermination);
  TerminationMessage back = decode_termination(bytes);
  EXPECT_EQ(back.process, 3);
  EXPECT_EQ(back.last_sn, 42u);
}

TEST(Wire, RejectsTruncation) {
  auto bytes = encode_token(sample_token());
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_token(shorter), WireError) << "cut at " << cut;
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  auto bytes = encode_token(sample_token());
  bytes.push_back(0xAB);
  EXPECT_THROW(decode_token(bytes), WireError);
}

TEST(Wire, RejectsWrongKind) {
  auto token_bytes = encode_token(sample_token());
  EXPECT_THROW(decode_termination(token_bytes), WireError);
  TerminationMessage msg;
  msg.process = 1;
  EXPECT_THROW(decode_token(encode_termination(msg)), WireError);
}

TEST(Wire, RejectsBadVersion) {
  auto bytes = encode_token(sample_token());
  bytes[0] = 99;
  EXPECT_THROW(decode_token(bytes), WireError);
  EXPECT_THROW(wire_kind(bytes), WireError);
}

Token random_token(std::mt19937_64& rng) {
  // Widths up to 12 deliberately cross the inline small-buffer boundary (8)
  // so heap-spilled entries round-trip too.
  const std::size_t width = rng() % 13;
  Token t;
  t.token_id = rng();
  t.parent = static_cast<int>(rng() % 16);
  t.parent_sn = static_cast<std::uint32_t>(rng());
  t.parent_vc = VectorClock(width);
  for (std::size_t j = 0; j < width; ++j) {
    t.parent_vc[j] = static_cast<std::uint32_t>(rng() % 1000);
  }
  t.next_target_process = static_cast<int>(rng() % 17) - 1;  // may be -1
  t.next_target_event = static_cast<std::uint32_t>(rng() % 100);
  t.hops = static_cast<int>(rng() % 50);
  const std::size_t num_entries = rng() % 5;
  for (std::size_t i = 0; i < num_entries; ++i) {
    TransitionEntry e;
    e.transition_id = static_cast<int>(rng() % 256);
    e.set_width(width);
    for (std::size_t j = 0; j < width; ++j) {
      e.cut(j) = static_cast<std::uint32_t>(rng() % 1000);
      e.depend(j) = static_cast<std::uint32_t>(rng() % 1000);
      e.gstate(j) = static_cast<AtomSet>(rng());
      e.conj(j) = static_cast<ConjunctEval>(rng() % 3);
    }
    e.eval = static_cast<EntryEval>(rng() % 3);
    e.next_target_process = static_cast<int>(rng() % 17) - 1;
    e.next_target_event = static_cast<std::uint32_t>(rng() % 100);
    e.loop_certified = (rng() % 3) == 0;
    if (e.loop_certified) {
      for (std::size_t j = 0; j < width; ++j) {
        e.loop_cut(j) = static_cast<std::uint32_t>(rng() % 1000);
        e.loop_gstate(j) = static_cast<AtomSet>(rng());
      }
    }
    t.entries.push_back(e);
  }
  return t;
}

// Property: every reachable Token survives encode/decode structurally
// intact, regardless of width (inline or heap-spilled) or loop flags.
TEST(WireProperty, RandomTokensRoundTrip) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 500; ++iter) {
    Token t = random_token(rng);
    expect_equal(t, decode_token(encode_token(t)));
  }
}

TEST(WireProperty, RandomTerminationsRoundTrip) {
  std::mt19937_64 rng(0xDECAF);
  for (int iter = 0; iter < 500; ++iter) {
    TerminationMessage msg;
    msg.process = static_cast<int>(rng() % 4096);
    msg.last_sn = static_cast<std::uint32_t>(rng());
    TerminationMessage back = decode_termination(encode_termination(msg));
    EXPECT_EQ(back.process, msg.process);
    EXPECT_EQ(back.last_sn, msg.last_sn);
  }
}

// The session process count bounds every decoded width: a token encoded
// for a wide system is rejected by a narrower session's decoder instead of
// allocating attacker-controlled amounts.
TEST(WireProperty, MaxWidthBoundsDecodedArrays) {
  std::mt19937_64 rng(0xABCD);
  Token t;
  do {
    t = random_token(rng);
  } while (t.parent_vc.size() < 6);
  const auto bytes = encode_token(t);
  expect_equal(t, decode_token(bytes, t.parent_vc.size()));
  EXPECT_THROW(decode_token(bytes, t.parent_vc.size() - 1), WireError);
}

// Fuzz: random byte flips must raise WireError or decode to *something*,
// never crash or loop.
TEST(WireFuzz, RandomCorruptionIsSafe) {
  std::mt19937_64 rng(0xF00D);
  const auto original = encode_token(sample_token());
  for (int iter = 0; iter < 2000; ++iter) {
    auto bytes = original;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      bytes[rng() % bytes.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    try {
      Token t = decode_token(bytes);
      (void)t;
    } catch (const WireError&) {
      // expected for most corruptions
    }
  }
}

// Fuzz: random buffers never crash the decoder.
TEST(WireFuzz, RandomBuffersAreSafe) {
  std::mt19937_64 rng(0xBEEF);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      decode_token(bytes);
    } catch (const WireError&) {
    }
    try {
      decode_termination(bytes);
    } catch (const WireError&) {
    }
  }
}

// ---------------------------------------------------------------------------
// HistoryFloorMessage (streaming-GC gossip, DESIGN.md §12-§13). The decoder
// is deliberately stateless about window positions: a floor below the
// receiver's restored history base is a legitimate post-crash resync value
// and must decode unharmed -- clamping is the fold's job, not the codec's.
// ---------------------------------------------------------------------------

HistoryFloorMessage decode_floor(const std::vector<std::uint8_t>& bytes) {
  std::unique_ptr<NetPayload> payload = decode_payload(bytes, 16);
  EXPECT_NE(payload, nullptr);
  EXPECT_EQ(payload->tag, HistoryFloorMessage::kTag);
  return *static_cast<HistoryFloorMessage*>(payload.get());
}

TEST(Wire, HistoryFloorRoundTripCarriesEpoch) {
  HistoryFloorMessage msg;
  msg.process = 3;
  msg.floor = 97;
  msg.epoch = 2;
  std::vector<std::uint8_t> bytes;
  encode_payload_into(msg, bytes);
  HistoryFloorMessage back = decode_floor(bytes);
  EXPECT_EQ(back.process, 3);
  EXPECT_EQ(back.floor, 97u);
  EXPECT_EQ(back.epoch, 2u);
}

TEST(Wire, HistoryFloorExtremesRoundTrip) {
  // Corner values: floor 0 under a bumped epoch is exactly the shape a
  // crash-rewound monitor re-advertises when its restored window predates
  // every promise (a floor far below any peer's base); saturated values
  // exercise the varint width edge.
  for (const auto& [floor, epoch] :
       {std::pair<std::uint32_t, std::uint32_t>{0, 1},
        {0, 0xFFFFFFFFu},
        {0xFFFFFFFFu, 0},
        {0xFFFFFFFFu, 0xFFFFFFFFu}}) {
    HistoryFloorMessage msg;
    msg.process = 0;
    msg.floor = floor;
    msg.epoch = epoch;
    std::vector<std::uint8_t> bytes;
    encode_payload_into(msg, bytes);
    HistoryFloorMessage back = decode_floor(bytes);
    EXPECT_EQ(back.floor, floor);
    EXPECT_EQ(back.epoch, epoch);
  }
}

TEST(Wire, HistoryFloorInsideFrameRoundTrips) {
  // Resync floors travel in batched frames like every other staged payload;
  // the frame-unit codec must preserve the epoch too (it has a separate
  // wire path from the bare-payload codec).
  auto frame = std::make_unique<PayloadFrame>();
  auto floor = std::make_unique<HistoryFloorMessage>();
  floor->process = 1;
  floor->floor = 12;
  floor->epoch = 5;
  frame->units.push_back(std::move(floor));
  auto termination = std::make_unique<TerminationMessage>();
  termination->process = 1;
  termination->last_sn = 40;
  frame->units.push_back(std::move(termination));

  std::vector<std::uint8_t> bytes;
  encode_payload_into(*frame, bytes);
  std::unique_ptr<NetPayload> payload = decode_payload(bytes, 4);
  ASSERT_EQ(payload->tag, PayloadFrame::kTag);
  auto& back = static_cast<PayloadFrame&>(*payload);
  ASSERT_EQ(back.units.size(), 2u);
  ASSERT_EQ(back.units[0]->tag, HistoryFloorMessage::kTag);
  const auto& f = static_cast<const HistoryFloorMessage&>(*back.units[0]);
  EXPECT_EQ(f.process, 1);
  EXPECT_EQ(f.floor, 12u);
  EXPECT_EQ(f.epoch, 5u);
}

TEST(Wire, HistoryFloorRejectsTruncationAndTrailingBytes) {
  HistoryFloorMessage msg;
  msg.process = 2;
  msg.floor = 300;  // multi-byte varint
  msg.epoch = 7;
  std::vector<std::uint8_t> bytes;
  encode_payload_into(msg, bytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> shorter(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_payload(shorter, 16), WireError) << "cut " << cut;
  }
  bytes.push_back(0x00);
  EXPECT_THROW(decode_payload(bytes, 16), WireError);
}

}  // namespace
}  // namespace decmon
