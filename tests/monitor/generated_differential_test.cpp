// Generated-code equivalence, layer 2: sessions admitted through the
// ahead-of-time CompiledPropertyRegistry produce BIT-IDENTICAL verdict sets
// and counters to sessions built by runtime synthesis, over the full
// equivalence-golden grid (A-F x n in {3,5} x three seeds) on the
// deterministic simulator. The structural tests (automata/) prove the
// automata identical; this proves the whole admission path -- registry
// lookup, shared artifact, aliasing property handles in every monitor
// replica -- changes nothing observable.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "decmon/decmon.hpp"
#include "decmon/monitor/property_registry.hpp"

namespace decmon {
namespace {

constexpr std::uint64_t kGoldenSeeds[] = {2015, 2016, 2017};

RunResult run_workload(const MonitorSession& session, paper::Property p,
                       int n, std::uint64_t seed) {
  TraceParams params = paper::experiment_params(p, n, seed);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);
  return session.run(trace);
}

std::string fingerprint(const RunResult& r) {
  std::string fp;
  for (Verdict v : r.verdict.verdicts) fp += to_string(v) + ";";
  fp += "m=" + std::to_string(r.monitor_messages);
  fp += ",v=" + std::to_string(r.verdict.aggregate.global_views_created);
  fp += ",h=" + std::to_string(r.verdict.aggregate.token_hops);
  fp += ",fin=" + std::to_string(r.verdict.all_finished);
  return fp;
}

TEST(GeneratedDifferential, AotAdmissionMatchesRuntimeSynthesisBitExact) {
  for (paper::Property p : paper::kAllProperties) {
    for (int n : {3, 5}) {
      // Admit through the registry: with the synthesis memo cold, every
      // golden (property, n) must be served by the generated set, not
      // synthesized.
      paper::synthesis_cache_clear();
      const auto before = CompiledPropertyRegistry::instance().stats();
      SharedProperty artifact =
          paper::shared_property(p, n, paper::make_registry(n));
      const auto after = CompiledPropertyRegistry::instance().stats();
      ASSERT_EQ(after.hits, before.hits + 1)
          << paper::name(p) << " n=" << n
          << ": golden property not served by the AOT registry";
      MonitorSession aot(artifact);

      // Reference: uncached runtime synthesis, no memo, no registry.
      AtomRegistry reg = paper::make_registry(n);
      MonitorSession synthesized(paper::make_registry(n),
                                 paper::build_automaton_uncached(p, n, reg));

      for (std::uint64_t seed : kGoldenSeeds) {
        SCOPED_TRACE(paper::name(p) + " n=" + std::to_string(n) +
                     " seed=" + std::to_string(seed));
        EXPECT_EQ(fingerprint(run_workload(aot, p, n, seed)),
                  fingerprint(run_workload(synthesized, p, n, seed)));
      }
    }
  }
}

TEST(GeneratedDifferential, SharedAdmissionIsZeroCopy) {
  paper::synthesis_cache_clear();
  AtomRegistry reg = paper::make_registry(3);
  SharedProperty first = paper::shared_property(paper::Property::kD, 3, reg);
  SharedProperty second = paper::shared_property(paper::Property::kD, 3, reg);
  // Same artifact object, not a copy -- admission is a refcount bump.
  EXPECT_EQ(first.get(), second.get());

  MonitorSession a(first);
  MonitorSession b(second);
  EXPECT_EQ(&a.property(), &b.property());
  const auto stats = paper::synthesis_cache_stats();
  EXPECT_GE(stats.hits, 1u);
}

TEST(GeneratedDifferential, ClearedCachesNeverInvalidateLiveSessions) {
  // The clear() race the shared posture closes: admit, clear every cache,
  // then run -- the session's artifact outlives both catalogs through its
  // shared_ptr, so the run still completes and agrees with a fresh session.
  paper::synthesis_cache_clear();
  MonitorSession session(
      paper::shared_property(paper::Property::kF, 3, paper::make_registry(3)));
  paper::synthesis_cache_clear();
  CompiledPropertyRegistry::instance().clear();

  const RunResult survivor =
      run_workload(session, paper::Property::kF, 3, kGoldenSeeds[0]);
  MonitorSession fresh(
      paper::shared_property(paper::Property::kF, 3, paper::make_registry(3)));
  const RunResult reference =
      run_workload(fresh, paper::Property::kF, 3, kGoldenSeeds[0]);
  EXPECT_EQ(fingerprint(survivor), fingerprint(reference));
}

TEST(GeneratedDifferential, StaleGeneratedArtifactFallsBackToSynthesis) {
  // Hostile posture: a generated artifact whose atom signature no longer
  // matches the live registry (stale src/generated/ after a registry
  // change) must be rejected -- counted as a registry mismatch -- and
  // admission must fall back to runtime synthesis, not serve stale tables.
  // D at n=4 is outside the golden set, so the formula is otherwise
  // unknown to the registry.
  paper::synthesis_cache_clear();
  const int n = 4;
  AtomRegistry reg = paper::make_registry(n);
  const std::string formula = paper::formula_text(paper::Property::kD, n);
  ASSERT_FALSE(CompiledPropertyRegistry::instance().find(
      formula, paper::atom_signature(reg)));

  // Plant the stale artifact (a tombstone, exactly what register_generated
  // does when the recorded signature has drifted).
  CompiledPropertyRegistry::instance().add(formula, "stale-signature",
                                           nullptr);

  paper::synthesis_cache_clear();
  const auto before = CompiledPropertyRegistry::instance().stats();
  SharedProperty artifact =
      paper::shared_property(paper::Property::kD, n, reg);
  const auto after = CompiledPropertyRegistry::instance().stats();
  EXPECT_EQ(after.mismatches, before.mismatches + 1);
  EXPECT_EQ(after.hits, before.hits);

  // The fallback is a real synthesized artifact, equivalent to uncached.
  ASSERT_TRUE(artifact);
  MonitorAutomaton synthesized =
      paper::build_automaton_uncached(paper::Property::kD, n, reg);
  synthesized.build_dispatch();
  EXPECT_TRUE(artifact->automaton().same_structure(synthesized));

  // Cleanup: drop the planted entry so other tests see a pristine registry.
  CompiledPropertyRegistry::instance().clear();
}

}  // namespace
}  // namespace decmon
