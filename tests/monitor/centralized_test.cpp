#include "decmon/monitor/centralized_monitor.hpp"

#include <gtest/gtest.h>

#include <random>

#include "../common/paper_example.hpp"
#include "../common/random_computation.hpp"
#include "../common/replay_driver.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

using testing::PaperExample;
using testing::ReplayDriver;

std::vector<AtomSet> initial_letters(const Computation& comp) {
  std::vector<AtomSet> letters;
  for (int p = 0; p < comp.num_processes(); ++p) {
    letters.push_back(comp.event(p, 0).letter);
  }
  return letters;
}

TEST(Centralized, MatchesOracleOnPaperExample) {
  PaperExample ex;
  FormulaPtr psi =
      parse_ltl("G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  CompiledProperty prop(&m, &ex.registry);
  OracleResult oracle = oracle_evaluate(ex.computation, m);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ReplayDriver driver;
    CentralizedMonitor central(&prop, &driver,
                               initial_letters(ex.computation));
    driver.run(ex.computation, central, seed);
    EXPECT_TRUE(central.finished()) << "seed " << seed;
    EXPECT_EQ(central.verdicts(), oracle.verdicts) << "seed " << seed;
    EXPECT_EQ(central.final_states(), oracle.final_states) << "seed " << seed;
    EXPECT_EQ(central.explored_cuts(), oracle.lattice_nodes);
  }
}

// The centralized monitor is exactly the oracle's DP run online: state sets
// at the top cut agree on random computations, for every delivery schedule.
TEST(CentralizedProperty, AlwaysMatchesOracle) {
  std::mt19937_64 rng(606);
  AtomRegistry reg = testing::standard_registry(2);
  const auto props = testing::property_suite_2();
  for (int iter = 0; iter < 60; ++iter) {
    Computation comp = testing::random_computation(rng, 2, reg, 4);
    MonitorAutomaton m =
        synthesize_monitor(parse_ltl(props[iter % props.size()], reg));
    CompiledProperty prop(&m, &reg);
    OracleResult oracle = oracle_evaluate(comp, m);
    ReplayDriver driver;
    CentralizedMonitor central(&prop, &driver, initial_letters(comp));
    driver.run(comp, central, rng());
    EXPECT_TRUE(central.finished());
    EXPECT_EQ(central.verdicts(), oracle.verdicts)
        << props[iter % props.size()];
    EXPECT_EQ(central.final_states(), oracle.final_states);
  }
}

TEST(Centralized, CountsForwardedMessages) {
  PaperExample ex;
  FormulaPtr psi = parse_ltl("F(x1 >= 5)", ex.registry);
  MonitorAutomaton m = synthesize_monitor(psi);
  CompiledProperty prop(&m, &ex.registry);
  ReplayDriver driver;
  CentralizedMonitor central(&prop, &driver, initial_letters(ex.computation),
                             /*central_node=*/0);
  driver.run(ex.computation, central, 1);
  // P1 is central: only P2's 4 events cross the network.
  EXPECT_EQ(central.forwarded_messages(), 4u);
}

TEST(Centralized, LatticeCapThrows) {
  // Two independent processes with many events: the cut count explodes
  // beyond a tiny cap.
  AtomRegistry reg = testing::standard_registry(2);
  ComputationBuilder b(2, &reg);
  for (int i = 0; i < 12; ++i) {
    b.internal(0, {1, 0});
    b.internal(1, {1, 0});
  }
  Computation comp = b.build();
  FormulaPtr f = parse_ltl("F(P0.p && P1.q)", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  ReplayDriver driver;
  CentralizedMonitor central(&prop, &driver, initial_letters(comp), 0,
                             /*max_cuts=*/50);
  EXPECT_THROW(driver.run(comp, central, 1), std::length_error);
}

TEST(Centralized, DeclaresVerdictBeforeCompletion) {
  // A violation reachable early is declared even before all events arrive.
  AtomRegistry reg = testing::standard_registry(2);
  ComputationBuilder b(2, &reg);
  b.internal(0, {0, 0});
  b.internal(1, {0, 0});
  Computation comp = b.build();
  FormulaPtr f = parse_ltl("G(P0.p || P1.p)", reg);  // violated at bottom
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  ReplayDriver driver;
  CentralizedMonitor central(&prop, &driver, initial_letters(comp));
  // Verdict known from the initial state alone, before any event arrives.
  EXPECT_TRUE(central.verdicts().count(Verdict::kFalse));
}

}  // namespace
}  // namespace decmon
