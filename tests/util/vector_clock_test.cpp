#include "decmon/util/vector_clock.hpp"

#include <gtest/gtest.h>

#include <random>

namespace decmon {
namespace {

TEST(VectorClock, DefaultAndSizedConstruction) {
  VectorClock empty;
  EXPECT_TRUE(empty.empty());
  VectorClock vc(3);
  EXPECT_EQ(vc.size(), 3u);
  EXPECT_EQ(vc[0], 0u);
  EXPECT_EQ(vc[2], 0u);
}

TEST(VectorClock, TickIncrementsOneComponent) {
  VectorClock vc(3);
  vc.tick(1);
  vc.tick(1);
  vc.tick(2);
  EXPECT_EQ(vc[0], 0u);
  EXPECT_EQ(vc[1], 2u);
  EXPECT_EQ(vc[2], 1u);
  EXPECT_EQ(vc.total(), 3u);
}

TEST(VectorClock, CompareEqual) {
  VectorClock a{1, 2, 3};
  VectorClock b{1, 2, 3};
  EXPECT_EQ(a.compare(b), Causality::kEqual);
  EXPECT_EQ(a, b);
}

TEST(VectorClock, CompareBeforeAfter) {
  VectorClock a{1, 2, 3};
  VectorClock b{1, 3, 3};
  EXPECT_EQ(a.compare(b), Causality::kBefore);
  EXPECT_EQ(b.compare(a), Causality::kAfter);
  EXPECT_TRUE(a.happened_before(b));
  EXPECT_FALSE(b.happened_before(a));
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, CompareConcurrent) {
  VectorClock a{2, 1};
  VectorClock b{1, 2};
  EXPECT_EQ(a.compare(b), Causality::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_TRUE(b.concurrent_with(a));
  EXPECT_FALSE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, LeqIsReflexive) {
  VectorClock a{4, 0, 7};
  EXPECT_TRUE(a.leq(a));
  EXPECT_EQ(a.compare(a), Causality::kEqual);
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a{1, 5, 2};
  VectorClock b{3, 1, 2};
  a.merge(b);
  EXPECT_EQ(a, (VectorClock{3, 5, 2}));
}

TEST(VectorClock, StaticMaxDoesNotMutate) {
  VectorClock a{1, 5};
  VectorClock b{3, 1};
  VectorClock m = VectorClock::max(a, b);
  EXPECT_EQ(m, (VectorClock{3, 5}));
  EXPECT_EQ(a, (VectorClock{1, 5}));
  EXPECT_EQ(b, (VectorClock{3, 1}));
}

TEST(VectorClock, MergeIsUpperBound) {
  VectorClock a{2, 0, 9};
  VectorClock b{1, 4, 3};
  VectorClock m = VectorClock::max(a, b);
  EXPECT_TRUE(a.leq(m));
  EXPECT_TRUE(b.leq(m));
}

TEST(VectorClock, ToStringRendersComponents) {
  VectorClock a{1, 0, 7};
  EXPECT_EQ(a.to_string(), "[1, 0, 7]");
}

TEST(VectorClock, HashEqualClocksCollide) {
  VectorClockHash h;
  VectorClock a{1, 2, 3};
  VectorClock b{1, 2, 3};
  EXPECT_EQ(h(a), h(b));
}

TEST(VectorClock, MessageCausalityScenario) {
  // P0 does two events, sends to P1; P1's receive merges and ticks.
  VectorClock p0(2);
  VectorClock p1(2);
  p0.tick(0);  // e0_1
  p0.tick(0);  // e0_2 (send)
  p1.tick(1);  // e1_1 concurrent with p0's events
  VectorClock before_recv = p1;
  EXPECT_TRUE(before_recv.concurrent_with(p0));
  // Receive: merge sender clock, then tick own component.
  p1.merge(p0);
  p1.tick(1);
  EXPECT_TRUE(p0.happened_before(p1));
  EXPECT_TRUE(before_recv.happened_before(p1));
}

// Property: compare() is antisymmetric and consistent with leq() on random
// clocks.
TEST(VectorClockProperty, CompareConsistentWithLeq) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = 1 + rng() % 4;
    VectorClock a(n);
    VectorClock b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::uint32_t>(rng() % 3);
      b[i] = static_cast<std::uint32_t>(rng() % 3);
    }
    const Causality c = a.compare(b);
    switch (c) {
      case Causality::kEqual:
        EXPECT_TRUE(a.leq(b) && b.leq(a));
        break;
      case Causality::kBefore:
        EXPECT_TRUE(a.leq(b) && !b.leq(a));
        break;
      case Causality::kAfter:
        EXPECT_TRUE(!a.leq(b) && b.leq(a));
        break;
      case Causality::kConcurrent:
        EXPECT_TRUE(!a.leq(b) && !b.leq(a));
        break;
    }
    // Antisymmetry of the relation direction.
    const Causality rc = b.compare(a);
    if (c == Causality::kBefore) EXPECT_EQ(rc, Causality::kAfter);
    if (c == Causality::kConcurrent) EXPECT_EQ(rc, Causality::kConcurrent);
  }
}

// Property: merge is associative, commutative, idempotent (join semilattice).
TEST(VectorClockProperty, MergeIsSemilatticeJoin) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 1000; ++iter) {
    const std::size_t n = 1 + rng() % 4;
    auto rand_vc = [&] {
      VectorClock vc(n);
      for (std::size_t i = 0; i < n; ++i) {
        vc[i] = static_cast<std::uint32_t>(rng() % 5);
      }
      return vc;
    };
    VectorClock a = rand_vc();
    VectorClock b = rand_vc();
    VectorClock c = rand_vc();
    EXPECT_EQ(VectorClock::max(a, b), VectorClock::max(b, a));
    EXPECT_EQ(VectorClock::max(a, VectorClock::max(b, c)),
              VectorClock::max(VectorClock::max(a, b), c));
    EXPECT_EQ(VectorClock::max(a, a), a);
  }
}

}  // namespace
}  // namespace decmon
