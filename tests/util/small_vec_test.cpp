// SmallVec and InplaceTask: the two allocation-control primitives under
// the token path. The interesting regions are the inline/heap boundary
// (N elements inline, N+1 spills) and capacity retention across clear()
// -- the monitor free lists rely on both.
#include "decmon/util/small_vec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "decmon/util/inplace_function.hpp"

namespace decmon {
namespace {

using Vec = SmallVec<std::uint32_t, 8>;

TEST(SmallVec, StartsEmptyWithInlineCapacity) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 8u);
}

TEST(SmallVec, SizedConstructorValueInitializes) {
  Vec v(5);
  ASSERT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 0u);
  Vec w(3, 42u);
  ASSERT_EQ(w.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(w[i], 42u);
}

TEST(SmallVec, PushBackAcrossTheInlineBoundary) {
  Vec v;
  for (std::uint32_t i = 0; i < 20; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 20u);
  EXPECT_GE(v.capacity(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(v[i], i * 3);
}

TEST(SmallVec, ExactlyInlineStaysInline) {
  Vec v(8, 7u);
  EXPECT_EQ(v.capacity(), 8u);  // no spill at exactly N
  v.push_back(9);               // N+1 spills
  EXPECT_GT(v.capacity(), 8u);
  EXPECT_EQ(v[7], 7u);
  EXPECT_EQ(v[8], 9u);
}

TEST(SmallVec, ClearRetainsCapacity) {
  Vec v(20);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  v.resize(20);  // must not need a fresh allocation path
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVec, ResizeShrinkKeepsStorageGrowZeroesTail) {
  Vec v;
  for (std::uint32_t i = 0; i < 12; ++i) v.push_back(100 + i);
  v.resize(4);
  EXPECT_EQ(v.size(), 4u);
  v.resize(12);
  for (std::size_t i = 4; i < 12; ++i) EXPECT_EQ(v[i], 0u) << i;
}

TEST(SmallVec, CopySemantics) {
  for (std::size_t n : {3u, 8u, 17u}) {  // inline, boundary, heap
    Vec a;
    for (std::uint32_t i = 0; i < n; ++i) a.push_back(i + 1);
    Vec b(a);
    EXPECT_EQ(a, b);
    Vec c;
    c = a;
    EXPECT_EQ(a, c);
    c[0] = 999;  // deep copy: no aliasing
    EXPECT_EQ(a[0], 1u);
  }
}

TEST(SmallVec, MoveStealsHeapBlockAndCopiesInline) {
  Vec heap;
  for (std::uint32_t i = 0; i < 17; ++i) heap.push_back(i);
  const std::uint32_t* block = heap.data();
  Vec stolen(std::move(heap));
  EXPECT_EQ(stolen.data(), block);  // heap block moved, not copied
  EXPECT_EQ(stolen.size(), 17u);
  EXPECT_TRUE(heap.empty());  // NOLINT(bugprone-use-after-move)

  Vec small{1, 2, 3};
  Vec moved(std::move(small));
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[2], 3u);
}

TEST(SmallVec, MoveAssignReleasesOldStorage) {
  Vec a(20, 5u);
  Vec b(30, 6u);
  a = std::move(b);
  ASSERT_EQ(a.size(), 30u);
  EXPECT_EQ(a[29], 6u);
  a = Vec{9};  // move-assign from inline temporary
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 9u);
}

TEST(SmallVec, EqualityComparesContentNotCapacity) {
  Vec a{1, 2, 3};
  Vec b(20);
  b.clear();
  for (std::uint32_t x : {1u, 2u, 3u}) b.push_back(x);
  EXPECT_EQ(a, b);  // a inline, b heap-backed
  b.push_back(4);
  EXPECT_NE(a, b);
}

TEST(SmallVec, AtThrowsOutOfRange) {
  Vec v{1, 2};
  EXPECT_EQ(v.at(1), 2u);
  EXPECT_THROW(v.at(2), std::out_of_range);
  const Vec& cv = v;
  EXPECT_THROW(cv.at(5), std::out_of_range);
}

TEST(SmallVec, IteratorsWorkWithAlgorithms) {
  Vec v;
  for (std::uint32_t i = 1; i <= 10; ++i) v.push_back(i);
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0u), 55u);
  std::vector<std::uint32_t> copy(v.begin(), v.end());
  EXPECT_EQ(copy.size(), 10u);
}

using Task = InplaceTask<64>;

TEST(InplaceTask, InvokesCapturedState) {
  int hits = 0;
  Task t([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(t));
  t();
  t();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceTask, DefaultIsEmpty) {
  Task t;
  EXPECT_FALSE(static_cast<bool>(t));
}

TEST(InplaceTask, MoveTransfersClosure) {
  int hits = 0;
  Task a([&hits] { hits += 10; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 10);

  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 20);
}

TEST(InplaceTask, DestroysCapturedObjects) {
  struct Probe {
    explicit Probe(int* c) : count(c) { ++*count; }
    Probe(Probe&& o) noexcept : count(o.count) { ++*count; }
    ~Probe() { --*count; }
    int* count;
  };
  int live = 0;
  {
    Task t([p = Probe(&live)] { (void)p; });
    EXPECT_GT(live, 0);
    Task u(std::move(t));  // relocation must not leak
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(InplaceTask, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(77);
  int seen = 0;
  Task t([&seen, p = std::move(owned)] { seen = *p; });
  Task u(std::move(t));
  u();
  EXPECT_EQ(seen, 77);
}

TEST(InplaceTask, ResetDropsTheClosure) {
  int live = 0;
  struct Probe {
    explicit Probe(int* c) : count(c) { ++*count; }
    Probe(Probe&& o) noexcept : count(o.count) { ++*count; }
    ~Probe() { --*count; }
    int* count;
  };
  Task t([p = Probe(&live)] { (void)p; });
  EXPECT_EQ(live, 1);
  t.reset();
  EXPECT_EQ(live, 0);
  EXPECT_FALSE(static_cast<bool>(t));
}

}  // namespace
}  // namespace decmon
