#include "decmon/ltl/parser.hpp"

#include <gtest/gtest.h>

#include "decmon/ltl/formula.hpp"

namespace decmon {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : reg_(4) {
    x1_ = reg_.declare_variable(0, "x1");
    x2_ = reg_.declare_variable(1, "x2");
  }
  AtomRegistry reg_;
  int x1_ = -1;
  int x2_ = -1;
};

TEST_F(ParserTest, BooleanPropositions) {
  FormulaPtr f = parse_ltl("P0.p && P1.p", reg_);
  EXPECT_EQ(f->op(), LtlOp::kAnd);
  // Both atoms registered, owned by the right processes.
  ASSERT_EQ(reg_.num_atoms(), 2);
  EXPECT_EQ(reg_.atom(0).process, 0);
  EXPECT_EQ(reg_.atom(1).process, 1);
}

TEST_F(ParserTest, SameAtomResolvesOnce) {
  parse_ltl("P0.p || P0.p", reg_);
  EXPECT_EQ(reg_.num_atoms(), 1);
}

TEST_F(ParserTest, ComparisonAtoms) {
  FormulaPtr f = parse_ltl("x1 >= 5 && x2 < 15", reg_);
  ASSERT_EQ(reg_.num_atoms(), 2);
  EXPECT_EQ(reg_.atom(0).op, CmpOp::kGe);
  EXPECT_EQ(reg_.atom(0).rhs, 5);
  EXPECT_EQ(reg_.atom(0).process, 0);
  EXPECT_EQ(reg_.atom(1).op, CmpOp::kLt);
  EXPECT_EQ(reg_.atom(1).process, 1);
  EXPECT_EQ(f->op(), LtlOp::kAnd);
}

TEST_F(ParserTest, PaperRunningExample) {
  // psi = G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))
  FormulaPtr f = parse_ltl("G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))", reg_);
  EXPECT_EQ(f->op(), LtlOp::kRelease);  // G x == false R x
  EXPECT_EQ(reg_.num_atoms(), 3);
}

TEST_F(ParserTest, TemporalOperators) {
  EXPECT_EQ(parse_ltl("X P0.p", reg_)->op(), LtlOp::kNext);
  EXPECT_EQ(parse_ltl("F P0.p", reg_)->op(), LtlOp::kUntil);
  EXPECT_EQ(parse_ltl("G P0.p", reg_)->op(), LtlOp::kRelease);
  EXPECT_EQ(parse_ltl("P0.p U P1.p", reg_)->op(), LtlOp::kUntil);
  EXPECT_EQ(parse_ltl("P0.p R P1.p", reg_)->op(), LtlOp::kRelease);
  EXPECT_EQ(parse_ltl("<> P0.p", reg_)->op(), LtlOp::kUntil);
  EXPECT_EQ(parse_ltl("[] P0.p", reg_)->op(), LtlOp::kRelease);
}

TEST_F(ParserTest, WeakUntilExpansion) {
  // a W b == (a U b) || G a
  FormulaPtr f = parse_ltl("P0.p W P1.p", reg_);
  EXPECT_EQ(f->op(), LtlOp::kOr);
}

TEST_F(ParserTest, PrecedenceAndBindsTighterThanOr) {
  FormulaPtr f = parse_ltl("P0.p || P1.p && P2.p", reg_);
  EXPECT_EQ(f->op(), LtlOp::kOr);
  FormulaPtr same = parse_ltl("P0.p || (P1.p && P2.p)", reg_);
  EXPECT_EQ(f, same);
}

TEST_F(ParserTest, PrecedenceUntilBindsTighterThanAnd) {
  FormulaPtr f = parse_ltl("P0.p U P1.p && P2.p U P3.p", reg_);
  EXPECT_EQ(f->op(), LtlOp::kAnd);
  EXPECT_EQ(f, parse_ltl("(P0.p U P1.p) && (P2.p U P3.p)", reg_));
}

TEST_F(ParserTest, UntilIsRightAssociative) {
  EXPECT_EQ(parse_ltl("P0.p U P1.p U P2.p", reg_),
            parse_ltl("P0.p U (P1.p U P2.p)", reg_));
}

TEST_F(ParserTest, ImplicationIsRightAssociative) {
  EXPECT_EQ(parse_ltl("P0.p -> P1.p -> P2.p", reg_),
            parse_ltl("P0.p -> (P1.p -> P2.p)", reg_));
}

TEST_F(ParserTest, IffDesugars) {
  FormulaPtr f = parse_ltl("P0.p <-> P1.p", reg_);
  EXPECT_EQ(f->op(), LtlOp::kAnd);
}

TEST_F(ParserTest, Constants) {
  EXPECT_TRUE(parse_ltl("true", reg_)->is_true());
  EXPECT_TRUE(parse_ltl("false", reg_)->is_false());
  EXPECT_TRUE(parse_ltl("true && ! false", reg_)->is_true());
}

TEST_F(ParserTest, SingleAmpersandAndPipeAccepted) {
  EXPECT_EQ(parse_ltl("P0.p & P1.p", reg_),
            parse_ltl("P0.p && P1.p", reg_));
  EXPECT_EQ(parse_ltl("P0.p | P1.p", reg_),
            parse_ltl("P0.p || P1.p", reg_));
}

TEST_F(ParserTest, ErrorsOnTrailingInput) {
  EXPECT_THROW(parse_ltl("P0.p P1.p", reg_), ParseError);
}

TEST_F(ParserTest, ErrorsOnUnbalancedParens) {
  EXPECT_THROW(parse_ltl("(P0.p && P1.p", reg_), ParseError);
}

TEST_F(ParserTest, ErrorsOnUnknownVariable) {
  EXPECT_THROW(parse_ltl("zz >= 3", reg_), ParseError);
}

TEST_F(ParserTest, ErrorsOnBadProcessIndex) {
  // Only 4 processes declared; P9 is out of range.
  EXPECT_THROW(parse_ltl("P9.p", reg_), ParseError);
}

TEST_F(ParserTest, ErrorsOnEmptyInput) {
  EXPECT_THROW(parse_ltl("", reg_), ParseError);
  EXPECT_THROW(parse_ltl("   ", reg_), ParseError);
}

TEST_F(ParserTest, ErrorsOnMissingComparisonRhs) {
  EXPECT_THROW(parse_ltl("x1 >=", reg_), ParseError);
  EXPECT_THROW(parse_ltl("x1 >= P0.p", reg_), ParseError);
}

TEST_F(ParserTest, ErrorCarriesPosition) {
  try {
    parse_ltl("P0.p &&", reg_);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.position(), 7u);
  }
}

TEST_F(ParserTest, DottedComparison) {
  FormulaPtr f = parse_ltl("P0.x1 == 10", reg_);
  EXPECT_EQ(f->op(), LtlOp::kAtom);
  EXPECT_EQ(reg_.atom(f->atom()).process, 0);
  EXPECT_EQ(reg_.atom(f->atom()).op, CmpOp::kEq);
}

TEST_F(ParserTest, NegativeConstants) {
  FormulaPtr f = parse_ltl("x1 > -5", reg_);
  EXPECT_EQ(reg_.atom(f->atom()).rhs, -5);
}

}  // namespace
}  // namespace decmon
