#include "decmon/ltl/eval.hpp"

#include <gtest/gtest.h>

#include "../common/random_formula.hpp"
#include "decmon/ltl/formula.hpp"

namespace decmon {
namespace {

constexpr AtomSet kA = 0b01;
constexpr AtomSet kB = 0b10;

TEST(LassoEval, AtomsAndBooleans) {
  FormulaPtr a = f_atom(0);
  EXPECT_TRUE(lasso_satisfies(a, {}, {kA}));
  EXPECT_FALSE(lasso_satisfies(a, {}, {0}));
  EXPECT_TRUE(lasso_satisfies(f_not(a), {0}, {kA}));
  EXPECT_TRUE(lasso_satisfies(f_and(a, f_atom(1)), {}, {kA | kB}));
  EXPECT_FALSE(lasso_satisfies(f_and(a, f_atom(1)), {}, {kA}));
  EXPECT_TRUE(lasso_satisfies(f_or(a, f_atom(1)), {}, {kB}));
}

TEST(LassoEval, NextLooksOnePosition) {
  FormulaPtr xa = f_next(f_atom(0));
  EXPECT_TRUE(lasso_satisfies(xa, {0}, {kA}));
  EXPECT_FALSE(lasso_satisfies(xa, {kA}, {0}));
  // X at the end of the prefix wraps into the loop.
  EXPECT_TRUE(lasso_satisfies(xa, {0}, {kA, 0}));
  // X at the end of the loop wraps to the loop start.
  EXPECT_TRUE(lasso_satisfies(f_next(xa), {}, {kA, 0}));
}

TEST(LassoEval, EventuallyOnLoop) {
  FormulaPtr fa = f_eventually(f_atom(0));
  EXPECT_TRUE(lasso_satisfies(fa, {0, 0}, {0, kA}));
  EXPECT_FALSE(lasso_satisfies(fa, {0, 0}, {0, 0}));
  // a only in the prefix still counts.
  EXPECT_TRUE(lasso_satisfies(fa, {kA}, {0}));
}

TEST(LassoEval, AlwaysOnLoop) {
  FormulaPtr ga = f_always(f_atom(0));
  EXPECT_TRUE(lasso_satisfies(ga, {kA}, {kA, kA}));
  EXPECT_FALSE(lasso_satisfies(ga, {kA}, {kA, 0}));
  // Violation only in prefix.
  EXPECT_FALSE(lasso_satisfies(ga, {0}, {kA}));
}

TEST(LassoEval, UntilStrongRequiresGoal) {
  FormulaPtr u = f_until(f_atom(0), f_atom(1));
  EXPECT_TRUE(lasso_satisfies(u, {kA, kA}, {kB}));
  EXPECT_TRUE(lasso_satisfies(u, {kB}, {0}));  // goal immediately
  // a forever but b never: U fails (strong until).
  EXPECT_FALSE(lasso_satisfies(u, {}, {kA}));
  // a breaks before b arrives.
  EXPECT_FALSE(lasso_satisfies(u, {kA, 0}, {kB}));
}

TEST(LassoEval, ReleaseDualOfUntil) {
  // a R b: b holds until (and including when) a joins; b forever also ok.
  FormulaPtr r = f_release(f_atom(0), f_atom(1));
  EXPECT_TRUE(lasso_satisfies(r, {}, {kB}));            // b forever
  EXPECT_TRUE(lasso_satisfies(r, {kB, kA | kB}, {0}));  // released by a
  EXPECT_FALSE(lasso_satisfies(r, {kB}, {0}));          // b stops, no a
}

TEST(LassoEval, GFInfinitelyOften) {
  FormulaPtr gfa = f_always(f_eventually(f_atom(0)));
  EXPECT_TRUE(lasso_satisfies(gfa, {0}, {0, kA}));
  EXPECT_FALSE(lasso_satisfies(gfa, {kA, kA}, {0}));  // finitely often
}

TEST(LassoEval, FGStabilization) {
  FormulaPtr fga = f_eventually(f_always(f_atom(0)));
  EXPECT_TRUE(lasso_satisfies(fga, {0, 0}, {kA}));
  EXPECT_FALSE(lasso_satisfies(fga, {kA}, {kA, 0}));
}

TEST(LassoEval, NonStarvation) {
  // G(r -> F g) with r = atom0, g = atom1.
  FormulaPtr f = f_always(f_implies(f_atom(0), f_eventually(f_atom(1))));
  EXPECT_TRUE(lasso_satisfies(f, {kA}, {kB}));        // request then grant
  EXPECT_TRUE(lasso_satisfies(f, {}, {0}));           // no requests
  EXPECT_FALSE(lasso_satisfies(f, {kA}, {0}));        // starved
  EXPECT_TRUE(lasso_satisfies(f, {}, {kA, kB}));      // repeated cycle
}

TEST(LassoEval, PositionOfLoopMatters) {
  // F a on the same letters but different prefix/loop split.
  FormulaPtr fa = f_eventually(f_atom(0));
  EXPECT_TRUE(lasso_satisfies(fa, {kA, 0}, {0}));
  EXPECT_FALSE(lasso_satisfies(fa, {0, 0}, {0}));
}

// Property: semantic equivalences hold on random formulas and lassos.
TEST(LassoEvalProperty, Dualities) {
  std::mt19937_64 rng(2024);
  for (int iter = 0; iter < 400; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 3);
    auto prefix = testing::random_word(rng, 2, static_cast<int>(rng() % 3));
    auto loop = testing::random_word(rng, 2, 1 + static_cast<int>(rng() % 3));
    const bool v = lasso_satisfies(f, prefix, loop);
    // not f <=> !v
    EXPECT_EQ(lasso_satisfies(f_not(f), prefix, loop), !v);
    // f && f <=> f ; f || f <=> f
    EXPECT_EQ(lasso_satisfies(f_and(f, f), prefix, loop), v);
    // G f == !F!f
    EXPECT_EQ(lasso_satisfies(f_always(f), prefix, loop),
              !lasso_satisfies(f_eventually(f_not(f)), prefix, loop));
    // f U g == g || (f && X(f U g)) -- expansion law
    FormulaPtr g = testing::random_formula(rng, 2, 2);
    FormulaPtr u = f_until(f, g);
    FormulaPtr expanded = f_or(g, f_and(f, f_next(u)));
    EXPECT_EQ(lasso_satisfies(u, prefix, loop),
              lasso_satisfies(expanded, prefix, loop));
  }
}

// Property: unrolling the loop once does not change satisfaction.
TEST(LassoEvalProperty, LoopUnrollingInvariant) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 300; ++iter) {
    FormulaPtr f = testing::random_formula(rng, 2, 3);
    auto prefix = testing::random_word(rng, 2, static_cast<int>(rng() % 3));
    auto loop = testing::random_word(rng, 2, 1 + static_cast<int>(rng() % 3));
    // (prefix, loop) == (prefix + loop, loop)
    auto prefix2 = prefix;
    prefix2.insert(prefix2.end(), loop.begin(), loop.end());
    EXPECT_EQ(lasso_satisfies(f, prefix, loop),
              lasso_satisfies(f, prefix2, loop));
    // (prefix, loop) == (prefix, loop + loop)
    auto loop2 = loop;
    loop2.insert(loop2.end(), loop.begin(), loop.end());
    EXPECT_EQ(lasso_satisfies(f, prefix, loop),
              lasso_satisfies(f, prefix, loop2));
  }
}

}  // namespace
}  // namespace decmon
