// Parser robustness: arbitrary input must either parse or raise ParseError
// -- never crash, hang, or corrupt the registry.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "decmon/ltl/parser.hpp"

namespace decmon {
namespace {

TEST(ParserFuzz, RandomAsciiNeverCrashes) {
  std::mt19937_64 rng(0xFACADE);
  const std::string alphabet =
      "PQpq01234._ UXFGRW&|!()<>=- \tabz";
  for (int iter = 0; iter < 5000; ++iter) {
    std::string input;
    const int len = static_cast<int>(rng() % 40);
    for (int i = 0; i < len; ++i) {
      input += alphabet[rng() % alphabet.size()];
    }
    AtomRegistry reg(3);
    reg.declare_variable(0, "x");
    try {
      FormulaPtr f = parse_ltl(input, reg);
      EXPECT_NE(f, nullptr);
    } catch (const ParseError&) {
      // fine
    }
  }
}

TEST(ParserFuzz, RandomBytesNeverCrash) {
  std::mt19937_64 rng(0xDECAF);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string input;
    const int len = static_cast<int>(rng() % 24);
    for (int i = 0; i < len; ++i) {
      input += static_cast<char>(rng() % 256);
    }
    AtomRegistry reg(2);
    try {
      parse_ltl(input, reg);
    } catch (const ParseError&) {
    }
  }
}

TEST(ParserFuzz, MutatedValidFormulasNeverCrash) {
  std::mt19937_64 rng(0xC0FFEE);
  const std::string base = "G((P0.p && P1.q) U (x >= 5 || !P2.p))";
  for (int iter = 0; iter < 3000; ++iter) {
    std::string input = base;
    const int mutations = 1 + static_cast<int>(rng() % 4);
    for (int k = 0; k < mutations; ++k) {
      const std::size_t pos = rng() % input.size();
      switch (rng() % 3) {
        case 0: input[pos] = static_cast<char>(rng() % 128); break;
        case 1: input.erase(pos, 1); break;
        default: input.insert(pos, 1, static_cast<char>(rng() % 128)); break;
      }
      if (input.empty()) input = "p";
    }
    AtomRegistry reg(3);
    reg.declare_variable(0, "x");
    try {
      parse_ltl(input, reg);
    } catch (const ParseError&) {
    }
  }
}

TEST(ParserFuzz, DeeplyNestedFormulasParse) {
  // Deep but legal nesting should not overflow anything reasonable.
  AtomRegistry reg(1);
  std::string deep;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) deep += "X(";
  deep += "P0.p";
  for (int i = 0; i < depth; ++i) deep += ")";
  FormulaPtr f = parse_ltl(deep, reg);
  EXPECT_EQ(f->tree_size(), static_cast<std::size_t>(depth + 1));
}

TEST(ParserFuzz, AtomLimitEnforced) {
  // The registry supports at most 64 atoms; the 65th throws.
  AtomRegistry reg(1);
  const int v = reg.declare_variable(0, "x");
  for (int i = 0; i < 64; ++i) {
    reg.comparison_atom(0, v, CmpOp::kEq, i);
  }
  EXPECT_THROW(reg.comparison_atom(0, v, CmpOp::kEq, 64), std::length_error);
}

}  // namespace
}  // namespace decmon
