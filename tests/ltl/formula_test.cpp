#include "decmon/ltl/formula.hpp"

#include <gtest/gtest.h>

namespace decmon {
namespace {

TEST(Formula, HashConsingSharesNodes) {
  FormulaPtr a1 = f_atom(0);
  FormulaPtr a2 = f_atom(0);
  EXPECT_EQ(a1.get(), a2.get());
  FormulaPtr c1 = f_and(f_atom(0), f_atom(1));
  FormulaPtr c2 = f_and(f_atom(0), f_atom(1));
  EXPECT_EQ(c1.get(), c2.get());
}

TEST(Formula, AndIsOrderCanonical) {
  // Commuted conjunctions fold to the same node.
  EXPECT_EQ(f_and(f_atom(0), f_atom(1)).get(),
            f_and(f_atom(1), f_atom(0)).get());
  EXPECT_EQ(f_or(f_atom(0), f_atom(1)).get(),
            f_or(f_atom(1), f_atom(0)).get());
}

TEST(Formula, ConstantFolding) {
  FormulaPtr a = f_atom(0);
  EXPECT_TRUE(f_and(f_true(), a) == a);
  EXPECT_TRUE(f_and(a, f_false())->is_false());
  EXPECT_TRUE(f_or(a, f_true())->is_true());
  EXPECT_TRUE(f_or(f_false(), a) == a);
  EXPECT_TRUE(f_and(a, a) == a);
  EXPECT_TRUE(f_or(a, a) == a);
  EXPECT_TRUE(f_not(f_not(a)) == a);
  EXPECT_TRUE(f_not(f_true())->is_false());
  EXPECT_TRUE(f_until(a, f_true())->is_true());
  EXPECT_TRUE(f_until(f_false(), a) == a);
  EXPECT_TRUE(f_release(f_true(), a) == a);
}

TEST(Formula, AtomMaskCollectsAtoms) {
  FormulaPtr f = f_until(f_atom(0), f_and(f_atom(2), f_not(f_atom(5))));
  EXPECT_EQ(f->atom_mask(), (AtomSet{1} << 0) | (AtomSet{1} << 2) |
                                (AtomSet{1} << 5));
}

TEST(Formula, TreeSizeCountsNodes) {
  // a U (b && !c): U, a, &&, b, !, c = 6 nodes.
  FormulaPtr f = f_until(f_atom(0), f_and(f_atom(1), f_not(f_atom(2))));
  EXPECT_EQ(f->tree_size(), 6u);
}

TEST(Formula, IsLiteral) {
  EXPECT_TRUE(f_atom(0)->is_literal());
  EXPECT_TRUE(f_not(f_atom(0))->is_literal());
  EXPECT_FALSE(f_and(f_atom(0), f_atom(1))->is_literal());
  EXPECT_FALSE(f_true()->is_literal());
}

TEST(Nnf, PushesNegationThroughAnd) {
  FormulaPtr f = f_not(f_and(f_atom(0), f_atom(1)));
  FormulaPtr n = to_nnf(f);
  EXPECT_EQ(n->op(), LtlOp::kOr);
  EXPECT_TRUE(n->lhs()->is_literal());
  EXPECT_TRUE(n->rhs()->is_literal());
}

TEST(Nnf, UntilReleaseDuality) {
  FormulaPtr f = f_not(f_until(f_atom(0), f_atom(1)));
  FormulaPtr n = to_nnf(f);
  EXPECT_EQ(n->op(), LtlOp::kRelease);
  EXPECT_EQ(n->lhs(), f_not(f_atom(0)));
  EXPECT_EQ(n->rhs(), f_not(f_atom(1)));

  FormulaPtr g = f_not(f_release(f_atom(0), f_atom(1)));
  FormulaPtr m = to_nnf(g);
  EXPECT_EQ(m->op(), LtlOp::kUntil);
}

TEST(Nnf, NextCommutesWithNegation) {
  FormulaPtr f = f_not(f_next(f_atom(0)));
  FormulaPtr n = to_nnf(f);
  EXPECT_EQ(n->op(), LtlOp::kNext);
  EXPECT_EQ(n->lhs(), f_not(f_atom(0)));
}

TEST(Nnf, FixpointOnNnfInput) {
  FormulaPtr f =
      f_until(f_not(f_atom(0)), f_and(f_atom(1), f_not(f_atom(2))));
  EXPECT_EQ(to_nnf(f), f);
}

TEST(Formula, DerivedOperators) {
  FormulaPtr a = f_atom(0);
  FormulaPtr b = f_atom(1);
  // a -> b == !a || b
  EXPECT_EQ(f_implies(a, b), f_or(f_not(a), b));
  // F a == true U a ; G a == false R a
  EXPECT_EQ(f_eventually(a)->op(), LtlOp::kUntil);
  EXPECT_TRUE(f_eventually(a)->lhs()->is_true());
  EXPECT_EQ(f_always(a)->op(), LtlOp::kRelease);
  EXPECT_TRUE(f_always(a)->lhs()->is_false());
}

TEST(Formula, AndAllOrAll) {
  EXPECT_TRUE(f_and_all({})->is_true());
  EXPECT_TRUE(f_or_all({})->is_false());
  FormulaPtr f = f_and_all({f_atom(0), f_atom(1), f_atom(2)});
  EXPECT_EQ(f->op(), LtlOp::kAnd);
  EXPECT_EQ(f->atom_mask(), AtomSet{0b111});
}

TEST(Formula, ToStringRoundsReasonably) {
  FormulaPtr f = f_until(f_atom(0), f_and(f_atom(1), f_not(f_atom(2))));
  const std::string s = f->to_string();
  EXPECT_NE(s.find("U"), std::string::npos);
  EXPECT_NE(s.find("a0"), std::string::npos);
  EXPECT_NE(s.find("!a2"), std::string::npos);
}

TEST(Formula, ToStringUsesFAndGAbbreviations) {
  EXPECT_EQ(f_eventually(f_atom(0))->to_string(), "F a0");
  EXPECT_EQ(f_always(f_atom(0))->to_string(), "G a0");
  EXPECT_EQ(f_always(f_eventually(f_atom(0)))->to_string(), "G (F a0)");
}

}  // namespace
}  // namespace decmon
