#include "decmon/ltl/atoms.hpp"

#include <gtest/gtest.h>

namespace decmon {
namespace {

TEST(Atom, ComparisonOperators) {
  Atom a{.id = 0, .name = "x", .process = 0, .var = 0, .op = CmpOp::kLt, .rhs = 5};
  EXPECT_TRUE(a.holds(4));
  EXPECT_FALSE(a.holds(5));
  a.op = CmpOp::kLe;
  EXPECT_TRUE(a.holds(5));
  EXPECT_FALSE(a.holds(6));
  a.op = CmpOp::kEq;
  EXPECT_TRUE(a.holds(5));
  EXPECT_FALSE(a.holds(4));
  a.op = CmpOp::kNe;
  EXPECT_FALSE(a.holds(5));
  EXPECT_TRUE(a.holds(4));
  a.op = CmpOp::kGe;
  EXPECT_TRUE(a.holds(5));
  EXPECT_FALSE(a.holds(4));
  a.op = CmpOp::kGt;
  EXPECT_FALSE(a.holds(5));
  EXPECT_TRUE(a.holds(6));
}

TEST(Atom, HoldsInTreatsMissingVariableAsZero) {
  Atom a{.id = 0, .name = "p", .process = 0, .var = 3, .op = CmpOp::kNe, .rhs = 0};
  LocalState s{1, 2};  // var 3 missing
  EXPECT_FALSE(a.holds_in(s));
  s = {0, 0, 0, 7};
  EXPECT_TRUE(a.holds_in(s));
}

TEST(AtomRegistry, DeclareVariableIsIdempotent) {
  AtomRegistry reg(2);
  const int v1 = reg.declare_variable(0, "x");
  const int v2 = reg.declare_variable(0, "x");
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(reg.num_variables(0), 1);
  const int v3 = reg.declare_variable(1, "x");  // same name, other process
  EXPECT_EQ(v3, 0);
  EXPECT_EQ(reg.num_variables(1), 1);
}

TEST(AtomRegistry, AtomInterningIsIdempotent) {
  AtomRegistry reg(2);
  const int x = reg.declare_variable(0, "x");
  const int a1 = reg.comparison_atom(0, x, CmpOp::kGe, 5);
  const int a2 = reg.comparison_atom(0, x, CmpOp::kGe, 5);
  EXPECT_EQ(a1, a2);
  const int a3 = reg.comparison_atom(0, x, CmpOp::kGe, 6);
  EXPECT_NE(a1, a3);
  EXPECT_EQ(reg.num_atoms(), 2);
}

TEST(AtomRegistry, ResolveBooleanFollowsConvention) {
  AtomRegistry reg(3);
  auto id = reg.resolve_boolean("P2.ready");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(reg.atom(*id).process, 2);
  EXPECT_EQ(reg.atom(*id).op, CmpOp::kNe);
  EXPECT_EQ(reg.atom(*id).rhs, 0);
  EXPECT_FALSE(reg.resolve_boolean("P5.ready").has_value());  // out of range
  EXPECT_FALSE(reg.resolve_boolean("Q1.x").has_value());
  EXPECT_FALSE(reg.resolve_boolean("P.x").has_value());
}

TEST(AtomRegistry, ResolveBareRejectsAmbiguous) {
  AtomRegistry reg(2);
  reg.declare_variable(0, "x");
  auto pv = reg.resolve_bare("x");
  ASSERT_TRUE(pv.has_value());
  EXPECT_EQ(pv->first, 0);
  reg.declare_variable(1, "x");  // now ambiguous
  EXPECT_FALSE(reg.resolve_bare("x").has_value());
  EXPECT_FALSE(reg.resolve_bare("nope").has_value());
}

TEST(AtomRegistry, EvaluateGlobalState) {
  AtomRegistry reg(2);
  const int x = reg.declare_variable(0, "x");
  const int y = reg.declare_variable(1, "y");
  const int a0 = reg.comparison_atom(0, x, CmpOp::kGe, 5);   // bit 0
  const int a1 = reg.comparison_atom(1, y, CmpOp::kEq, 3);   // bit 1
  GlobalState g{{7}, {3}};
  EXPECT_EQ(reg.evaluate(g), AtomSet{0b11});
  g = {{4}, {3}};
  EXPECT_EQ(reg.evaluate(g), AtomSet{0b10});
  g = {{4}, {0}};
  EXPECT_EQ(reg.evaluate(g), AtomSet{0b00});
  (void)a0;
  (void)a1;
}

TEST(AtomRegistry, EvaluateLocalOnlyTouchesOwnedAtoms) {
  AtomRegistry reg(2);
  const int x = reg.declare_variable(0, "x");
  const int y = reg.declare_variable(1, "y");
  reg.comparison_atom(0, x, CmpOp::kGe, 5);  // bit 0
  reg.comparison_atom(1, y, CmpOp::kEq, 3);  // bit 1
  EXPECT_EQ(reg.evaluate_local(0, {9}), AtomSet{0b01});
  EXPECT_EQ(reg.evaluate_local(1, {3}), AtomSet{0b10});
  EXPECT_EQ(reg.evaluate_local(1, {9}), AtomSet{0b00});
}

TEST(AtomRegistry, OwnedMask) {
  AtomRegistry reg(3);
  const int x = reg.declare_variable(0, "x");
  const int y = reg.declare_variable(2, "y");
  reg.comparison_atom(0, x, CmpOp::kGe, 1);
  reg.comparison_atom(2, y, CmpOp::kGe, 1);
  reg.comparison_atom(0, x, CmpOp::kLt, 9);
  EXPECT_EQ(reg.owned_mask(0), AtomSet{0b101});
  EXPECT_EQ(reg.owned_mask(1), AtomSet{0});
  EXPECT_EQ(reg.owned_mask(2), AtomSet{0b010});
}

TEST(AtomRegistry, ShrinkingProcessCountThrows) {
  AtomRegistry reg(3);
  EXPECT_THROW(reg.set_num_processes(2), std::invalid_argument);
  reg.set_num_processes(5);
  EXPECT_EQ(reg.num_processes(), 5);
}

}  // namespace
}  // namespace decmon
