#include "decmon/distributed/trace.hpp"

#include <gtest/gtest.h>

namespace decmon {
namespace {

TraceParams small_params() {
  TraceParams p;
  p.num_processes = 3;
  p.internal_events = 10;
  p.seed = 42;
  return p;
}

TEST(Trace, GenerationIsDeterministic) {
  SystemTrace a = generate_trace(small_params());
  SystemTrace b = generate_trace(small_params());
  EXPECT_EQ(to_text(a), to_text(b));
}

TEST(Trace, DifferentSeedsDiffer) {
  TraceParams p = small_params();
  SystemTrace a = generate_trace(p);
  p.seed = 43;
  SystemTrace b = generate_trace(p);
  EXPECT_NE(to_text(a), to_text(b));
}

TEST(Trace, InternalEventCountMatchesParams) {
  SystemTrace t = generate_trace(small_params());
  ASSERT_EQ(t.num_processes(), 3);
  for (const ProcessTrace& pt : t.procs) {
    EXPECT_EQ(pt.count(TraceAction::Kind::kInternal), 10);
    EXPECT_EQ(pt.initial.size(), 2u);
  }
}

TEST(Trace, WaitsAreNonNegativeAndOrdered) {
  SystemTrace t = generate_trace(small_params());
  for (const ProcessTrace& pt : t.procs) {
    for (const TraceAction& a : pt.actions) {
      EXPECT_GE(a.wait, 0.0);
    }
  }
}

TEST(Trace, CommDisabledProducesNoCommActions) {
  TraceParams p = small_params();
  p.comm_enabled = false;
  SystemTrace t = generate_trace(p);
  for (const ProcessTrace& pt : t.procs) {
    EXPECT_EQ(pt.count(TraceAction::Kind::kComm), 0);
  }
  EXPECT_EQ(t.expected_receives(0), 0);
}

TEST(Trace, HigherCommMuMeansFewerCommEvents) {
  TraceParams p = small_params();
  p.internal_events = 60;
  p.comm_mu = 3.0;
  const SystemTrace frequent = generate_trace(p);
  p.comm_mu = 15.0;
  const SystemTrace rare = generate_trace(p);
  int f = 0;
  int r = 0;
  for (int i = 0; i < 3; ++i) {
    f += frequent.procs[static_cast<std::size_t>(i)].count(
        TraceAction::Kind::kComm);
    r += rare.procs[static_cast<std::size_t>(i)].count(
        TraceAction::Kind::kComm);
  }
  EXPECT_GT(f, r);
}

TEST(Trace, ExpectedReceivesCountsPeersComms) {
  SystemTrace t;
  t.procs.resize(3);
  for (auto& pt : t.procs) pt.initial = {0, 0};
  TraceAction comm;
  comm.kind = TraceAction::Kind::kComm;
  t.procs[0].actions = {comm, comm};  // P0 broadcasts twice
  t.procs[2].actions = {comm};        // P2 once
  EXPECT_EQ(t.expected_receives(0), 1);
  EXPECT_EQ(t.expected_receives(1), 3);
  EXPECT_EQ(t.expected_receives(2), 2);
  // Events: sends 3, receives 2 per comm action (n-1 = 2): 3 + 6 = 9.
  EXPECT_EQ(t.total_events(), 9);
}

TEST(Trace, ForceFinalAllTrueTouchesLastInternal) {
  SystemTrace t = generate_trace(small_params());
  force_final_all_true(t);
  for (const ProcessTrace& pt : t.procs) {
    for (auto it = pt.actions.rbegin(); it != pt.actions.rend(); ++it) {
      if (it->kind == TraceAction::Kind::kInternal) {
        for (auto v : it->state) EXPECT_EQ(v, 1);
        break;
      }
    }
  }
}

TEST(Trace, TextRoundTrip) {
  SystemTrace t = generate_trace(small_params());
  SystemTrace back = trace_from_text(to_text(t));
  EXPECT_EQ(to_text(t), to_text(back));
}

TEST(Trace, TextRejectsGarbage) {
  EXPECT_THROW(trace_from_text("nonsense"), std::runtime_error);
  EXPECT_THROW(trace_from_text("processes 0"), std::runtime_error);
  EXPECT_THROW(trace_from_text("processes 1\nprocess 0 vars 1\ninit 0\nfly\n"),
               std::runtime_error);
}

TEST(Trace, RejectsNoProcesses) {
  TraceParams p;
  p.num_processes = 0;
  EXPECT_THROW(generate_trace(p), std::invalid_argument);
}

}  // namespace
}  // namespace decmon
