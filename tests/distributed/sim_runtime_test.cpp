#include "decmon/distributed/sim_runtime.hpp"

#include <gtest/gtest.h>

#include "decmon/lattice/computation.hpp"

namespace decmon {
namespace {

AtomRegistry make_registry(int n) {
  AtomRegistry reg(n);
  for (int p = 0; p < n; ++p) {
    const int vp = reg.declare_variable(p, "p");
    const int vq = reg.declare_variable(p, "q");
    reg.boolean_atom(p, vp);
    reg.boolean_atom(p, vq);
  }
  return reg;
}

TraceParams small_params(int n) {
  TraceParams p;
  p.num_processes = n;
  p.internal_events = 8;
  p.seed = 7;
  return p;
}

TEST(SimRuntime, RunsToQuiescence) {
  AtomRegistry reg = make_registry(3);
  SimRuntime sim(generate_trace(small_params(3)), &reg);
  sim.run();
  EXPECT_GT(sim.program_end_time(), 0.0);
  EXPECT_GT(sim.program_events(), 0u);
}

TEST(SimRuntime, DeterministicAcrossRuns) {
  AtomRegistry reg = make_registry(3);
  SimRuntime a(generate_trace(small_params(3)), &reg);
  SimRuntime b(generate_trace(small_params(3)), &reg);
  a.run();
  b.run();
  EXPECT_EQ(a.program_events(), b.program_events());
  EXPECT_EQ(a.program_end_time(), b.program_end_time());
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t p = 0; p < a.history().size(); ++p) {
    ASSERT_EQ(a.history()[p].size(), b.history()[p].size());
    for (std::size_t i = 0; i < a.history()[p].size(); ++i) {
      EXPECT_EQ(a.history()[p][i].vc, b.history()[p][i].vc);
      EXPECT_EQ(a.history()[p][i].time, b.history()[p][i].time);
    }
  }
}

TEST(SimRuntime, EventCountMatchesTraceArithmetic) {
  AtomRegistry reg = make_registry(4);
  SystemTrace trace = generate_trace(small_params(4));
  SimRuntime sim(trace, &reg);
  sim.run();
  EXPECT_EQ(sim.program_events(),
            static_cast<std::uint64_t>(trace.total_events()));
}

TEST(SimRuntime, HistoryFormsAValidComputation) {
  AtomRegistry reg = make_registry(3);
  SimRuntime sim(generate_trace(small_params(3)), &reg);
  sim.run();
  Computation comp(sim.history());  // validates indexing internally
  EXPECT_TRUE(comp.consistent(comp.top()));
  EXPECT_TRUE(comp.consistent(comp.bottom()));
}

TEST(SimRuntime, VectorClocksAreMonotonicPerProcess) {
  AtomRegistry reg = make_registry(3);
  SimRuntime sim(generate_trace(small_params(3)), &reg);
  sim.run();
  for (const auto& hist : sim.history()) {
    for (std::size_t i = 1; i < hist.size(); ++i) {
      EXPECT_TRUE(hist[i - 1].vc.happened_before(hist[i].vc));
      EXPECT_EQ(hist[i].sn, i);
    }
  }
}

TEST(SimRuntime, FifoDeliveryPerChannel) {
  // Receive events from the same sender must arrive in send order: each
  // receive's merged knowledge of the sender is non-decreasing and receives
  // never skip a send.
  AtomRegistry reg = make_registry(2);
  TraceParams params = small_params(2);
  params.comm_mu = 0.5;  // frequent communication stresses FIFO
  SimRuntime sim(generate_trace(params), &reg);
  sim.run();
  for (int p = 0; p < 2; ++p) {
    std::uint32_t last_seen = 0;
    for (const Event& e : sim.history()[static_cast<std::size_t>(p)]) {
      if (e.type != EventType::kReceive) continue;
      const std::uint32_t sender_component =
          e.vc[static_cast<std::size_t>(1 - p)];
      EXPECT_GE(sender_component, last_seen);
      last_seen = sender_component;
    }
  }
}

class CountingHooks : public MonitorHooks {
 public:
  void on_local_event(int, const Event&, double) override { ++events; }
  void on_local_termination(int proc, double now) override {
    ++terminations;
    last_termination = now;
    terminated_procs.push_back(proc);
  }
  void on_monitor_message(MonitorMessage msg, double now) override {
    ++messages;
    last_payload = std::move(msg.payload);
    last_delivery = now;
  }
  int events = 0;
  int terminations = 0;
  int messages = 0;
  double last_termination = -1;
  double last_delivery = -1;
  std::vector<int> terminated_procs;
  std::unique_ptr<NetPayload> last_payload;
};

TEST(SimRuntime, HooksSeeEveryEventAndTermination) {
  AtomRegistry reg = make_registry(3);
  SystemTrace trace = generate_trace(small_params(3));
  SimRuntime sim(trace, &reg);
  CountingHooks hooks;
  sim.set_hooks(&hooks);
  sim.run();
  EXPECT_EQ(hooks.events, trace.total_events());
  EXPECT_EQ(hooks.terminations, 3);
  // Termination is announced only after all inbound messages arrived.
  EXPECT_LE(hooks.last_termination, sim.program_end_time());
}

struct TestPayload : NetPayload {
  int value = 0;
};

TEST(SimRuntime, MonitorMessagesDeliveredWithLatency) {
  AtomRegistry reg = make_registry(2);
  SimRuntime sim(generate_trace(small_params(2)), &reg);
  CountingHooks hooks;
  sim.set_hooks(&hooks);
  auto payload = std::make_unique<TestPayload>();
  payload->value = 99;
  sim.send(MonitorMessage{0, 1, std::move(payload)});
  sim.run();
  EXPECT_EQ(hooks.messages, 1);
  EXPECT_GT(hooks.last_delivery, 0.0);
  auto* tp = dynamic_cast<TestPayload*>(hooks.last_payload.get());
  ASSERT_NE(tp, nullptr);
  EXPECT_EQ(tp->value, 99);
  EXPECT_EQ(sim.monitor_messages_sent(), 1u);
}

TEST(SimRuntime, SelfSendsAreNotNetworkTraffic) {
  AtomRegistry reg = make_registry(2);
  SimRuntime sim(generate_trace(small_params(2)), &reg);
  CountingHooks hooks;
  sim.set_hooks(&hooks);
  sim.send(MonitorMessage{1, 1, std::make_unique<TestPayload>()});
  sim.run();
  EXPECT_EQ(hooks.messages, 1);
  EXPECT_EQ(sim.monitor_messages_sent(), 0u);
}

TEST(SimRuntime, RejectsBadDestination) {
  AtomRegistry reg = make_registry(2);
  SimRuntime sim(generate_trace(small_params(2)), &reg);
  EXPECT_THROW(sim.send(MonitorMessage{0, 5, nullptr}), std::out_of_range);
}

TEST(SimRuntime, NoCommMeansNoAppMessages) {
  AtomRegistry reg = make_registry(3);
  TraceParams params = small_params(3);
  params.comm_enabled = false;
  SimRuntime sim(generate_trace(params), &reg);
  sim.run();
  EXPECT_EQ(sim.app_messages_sent(), 0u);
  for (const auto& hist : sim.history()) {
    for (const Event& e : hist) {
      EXPECT_NE(e.type, EventType::kReceive);
      EXPECT_NE(e.type, EventType::kSend);
    }
  }
}

}  // namespace
}  // namespace decmon
