// SocketRuntime tests: the reassembly state machine in isolation (partial
// feeds, mid-record truncation, corrupt length prefixes), loopback
// round-trips of seeded frame convoys across clock widths, forced partial
// I/O under tiny socket buffers (which also exercises congestion
// coalescing), the unbatched per-token control posture, verdict equivalence
// against the deterministic simulator on the thesis properties, and the
// reliable channel stacked over the socket transport (envelope wire form
// end to end).
#include "decmon/distributed/socket_runtime.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <vector>

#include "decmon/core/properties.hpp"
#include "decmon/core/session.hpp"
#include "decmon/distributed/reliable_channel.hpp"
#include "decmon/lattice/computation.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/monitor/crash_injector.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"
#include "decmon/monitor/token.hpp"
#include "decmon/monitor/wire.hpp"

namespace decmon {
namespace {

TraceParams small_params(int n, std::uint64_t seed = 3) {
  TraceParams p;
  p.num_processes = n;
  p.internal_events = 6;
  p.seed = seed;
  return p;
}

SocketConfig fast_config() {
  SocketConfig c;
  c.time_scale = 0.0005;
  return c;
}

/// Channel tuning for stacking over the real transport. Timer deadlines are
/// in now() units -- real seconds on SocketRuntime -- so the simulator
/// default rto (3.0 trace seconds) would hold quiescence hostage for
/// seconds of wall clock per armed timer. 50 ms keeps retransmission prompt
/// across a loopback outage without slowing the suite.
ReliableChannelConfig socket_channel_config() {
  ReliableChannelConfig c;
  c.rto = 0.05;
  return c;
}

/// Minimal trace for runtimes used purely as a transport (no program
/// activity beyond one internal event per process, no app messages).
SystemTrace transport_trace(int n) {
  TraceParams p;
  p.num_processes = n;
  p.internal_events = 1;
  p.comm_enabled = false;
  return generate_trace(p);
}

/// Records every monitor payload delivered, re-encoded to bytes so content
/// can be compared independently of object identity. Deliveries arrive from
/// every node's event-loop thread concurrently, so the capture is locked;
/// readers inspect the vectors only after run() has joined the loops.
class CaptureHooks final : public MonitorHooks {
 public:
  void on_local_event(int, const Event&, double) override {}
  void on_local_termination(int, double) override {}
  void on_monitor_message(MonitorMessage msg, double) override {
    std::vector<std::uint8_t> bytes;
    encode_payload_into(*msg.payload, bytes);
    const std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(bytes));
    tags.push_back(msg.payload->tag);
  }

  std::mutex mu;
  std::vector<std::vector<std::uint8_t>> received;
  std::vector<std::uint8_t> tags;
};

Token seeded_token(std::mt19937_64& rng, int width, int entries) {
  Token t;
  t.token_id = rng();
  t.parent = static_cast<int>(rng()) % width;
  if (t.parent < 0) t.parent = -t.parent;
  t.parent_sn = static_cast<std::uint32_t>(rng());
  t.parent_vc = VectorClock(static_cast<std::size_t>(width));
  for (int j = 0; j < width; ++j) {
    t.parent_vc[static_cast<std::size_t>(j)] =
        static_cast<std::uint32_t>(rng() % 100000);
  }
  t.next_target_process = static_cast<int>(rng() % static_cast<unsigned>(width + 1)) - 1;
  t.next_target_event = static_cast<std::uint32_t>(rng() % 1000);
  t.hops = static_cast<int>(rng() % 50);
  for (int i = 0; i < entries; ++i) {
    TransitionEntry e;
    e.transition_id = static_cast<int>(rng() % 64);
    e.set_width(static_cast<std::size_t>(width));
    for (int j = 0; j < width; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      e.cut(ju) = static_cast<std::uint32_t>(rng() % 100000);
      e.depend(ju) = static_cast<std::uint32_t>(rng() % 100000);
      e.gstate(ju) = rng();
      e.conj(ju) = static_cast<ConjunctEval>(rng() % 3);
    }
    e.eval = static_cast<EntryEval>(rng() % 3);
    e.next_target_process =
        static_cast<int>(rng() % static_cast<unsigned>(width + 1)) - 1;
    e.next_target_event = static_cast<std::uint32_t>(rng() % 1000);
    e.loop_certified = rng() % 2 == 0;
    if (e.loop_certified) {
      for (int j = 0; j < width; ++j) {
        const auto ju = static_cast<std::size_t>(j);
        e.loop_cut(ju) = static_cast<std::uint32_t>(rng() % 100000);
        e.loop_gstate(ju) = rng();
      }
    }
    t.entries.push_back(std::move(e));
  }
  return t;
}

std::unique_ptr<PayloadFrame> seeded_frame(std::mt19937_64& rng, int width,
                                           int units, int entries_per_unit) {
  auto frame = std::make_unique<PayloadFrame>();
  for (int i = 0; i < units; ++i) {
    auto msg = std::make_unique<TokenMessage>();
    msg->token = seeded_token(rng, width, entries_per_unit);
    frame->units.push_back(std::move(msg));
  }
  return frame;
}

// ---------------------------------------------------------------------------
// FrameReassembler: the partial-read state machine in isolation.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> make_record(std::uint8_t type,
                                      const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> rec(4);
  const std::uint32_t len = static_cast<std::uint32_t>(body.size()) + 1;
  for (int i = 0; i < 4; ++i) {
    rec[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  rec.push_back(type);
  rec.insert(rec.end(), body.begin(), body.end());
  return rec;
}

TEST(FrameReassembler, ByteAtATimeFeedYieldsEveryRecord) {
  const auto r1 = make_record(0x02, {1, 2, 3, 4, 5});
  const auto r2 = make_record(0x01, {9});
  std::vector<std::uint8_t> stream = r1;
  stream.insert(stream.end(), r2.begin(), r2.end());

  FrameReassembler ra;
  std::vector<std::vector<std::uint8_t>> out;
  std::vector<std::uint8_t> rec;
  for (std::uint8_t b : stream) {
    ra.feed(&b, 1);
    while (ra.next(&rec)) out.push_back(rec);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], std::vector<std::uint8_t>({0x02, 1, 2, 3, 4, 5}));
  EXPECT_EQ(out[1], std::vector<std::uint8_t>({0x01, 9}));
  EXPECT_FALSE(ra.mid_record());
  EXPECT_EQ(ra.buffered(), 0u);
}

TEST(FrameReassembler, SplitAcrossArbitraryFragmentBoundaries) {
  std::vector<std::uint8_t> body(1000);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i);
  }
  const auto record = make_record(0x02, body);
  std::vector<std::uint8_t> stream;
  for (int copies = 0; copies < 5; ++copies) {
    stream.insert(stream.end(), record.begin(), record.end());
  }
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{255}, std::size_t{1024}}) {
    FrameReassembler ra;
    std::size_t got = 0;
    std::vector<std::uint8_t> rec;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t len = std::min(chunk, stream.size() - off);
      ra.feed(stream.data() + off, len);
      while (ra.next(&rec)) {
        EXPECT_EQ(rec.size(), body.size() + 1);
        ++got;
      }
    }
    EXPECT_EQ(got, 5u) << "chunk " << chunk;
    EXPECT_FALSE(ra.mid_record());
  }
}

TEST(FrameReassembler, PeerCloseMidRecordIsDetectable) {
  // A stream truncated inside a record (the peer-crashed-mid-write case):
  // the reassembler yields nothing and reports the partial record, so the
  // transport can distinguish truncation from a clean close.
  const auto record = make_record(0x02, {1, 2, 3, 4, 5, 6, 7, 8});
  for (std::size_t cut = 1; cut < record.size(); ++cut) {
    FrameReassembler ra;
    ra.feed(record.data(), cut);
    std::vector<std::uint8_t> rec;
    EXPECT_FALSE(ra.next(&rec)) << "cut " << cut;
    EXPECT_TRUE(ra.mid_record()) << "cut " << cut;
    EXPECT_EQ(ra.buffered(), cut);
  }
}

TEST(FrameReassembler, RejectsCorruptLengthPrefixes) {
  {
    FrameReassembler ra;
    const std::uint8_t zero_len[4] = {0, 0, 0, 0};
    ra.feed(zero_len, 4);
    std::vector<std::uint8_t> rec;
    EXPECT_THROW(ra.next(&rec), WireError);
  }
  {
    FrameReassembler ra;
    const std::uint8_t huge_len[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ra.feed(huge_len, 4);
    std::vector<std::uint8_t> rec;
    EXPECT_THROW(ra.next(&rec), WireError);
  }
}

// ---------------------------------------------------------------------------
// Runtime basics (mirrors the ThreadRuntime suite).
// ---------------------------------------------------------------------------

TEST(SocketRuntime, RunsToQuiescenceWithoutMonitors) {
  AtomRegistry reg = paper::make_registry(3);
  SystemTrace trace = generate_trace(small_params(3));
  SocketRuntime rt(trace, &reg, fast_config());
  rt.run();
  EXPECT_EQ(rt.program_events(),
            static_cast<std::uint64_t>(trace.total_events()));
}

TEST(SocketRuntime, HistoryIsAValidComputation) {
  AtomRegistry reg = paper::make_registry(3);
  SystemTrace trace = generate_trace(small_params(3));
  SocketRuntime rt(trace, &reg, fast_config());
  rt.run();
  Computation comp(rt.history());
  EXPECT_TRUE(comp.consistent(comp.top()));
  for (const auto& hist : rt.history()) {
    for (std::size_t i = 1; i < hist.size(); ++i) {
      EXPECT_TRUE(hist[i - 1].vc.happened_before(hist[i].vc));
    }
  }
}

TEST(SocketRuntime, AppMessageCountAndBytesMatchTrace) {
  AtomRegistry reg = paper::make_registry(2);
  SystemTrace trace = generate_trace(small_params(2));
  int comm_actions = 0;
  for (const auto& pt : trace.procs) {
    comm_actions += pt.count(TraceAction::Kind::kComm);
  }
  SocketRuntime rt(trace, &reg, fast_config());
  rt.run();
  EXPECT_EQ(rt.app_messages_sent(),
            static_cast<std::uint64_t>(comm_actions));  // n-1 = 1 receiver
  if (comm_actions > 0) EXPECT_GT(rt.app_bytes(), 0u);
  EXPECT_EQ(rt.wire_frames(), 0u);  // no monitors attached
}

TEST(SocketRuntime, MonitorsFinishAndSatisfyContract) {
  for (int round = 0; round < 3; ++round) {
    AtomRegistry reg = paper::make_registry(3);
    MonitorAutomaton m = paper::build_automaton(paper::Property::kD, 3, reg);
    CompiledProperty prop(&m, &reg);
    SystemTrace trace = generate_trace(
        small_params(3, 100 + static_cast<std::uint64_t>(round)));

    SocketRuntime rt(trace, &reg, fast_config());
    DecentralizedMonitor dm(&prop, &rt,
                            initial_letters_of(reg, rt.initial_states()));
    rt.set_hooks(&dm);
    rt.run();

    EXPECT_TRUE(dm.all_finished()) << "round " << round;
    Computation comp(rt.history());
    OracleResult oracle = oracle_evaluate(comp, m);
    SystemVerdict v = dm.result();
    for (Verdict x : oracle.verdicts) {
      EXPECT_TRUE(v.verdicts.count(x)) << "round " << round;
    }
    for (Verdict x : v.verdicts) {
      if (x != Verdict::kUnknown) {
        EXPECT_TRUE(oracle.verdicts.count(x)) << "round " << round;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Serialization round-trips over real sockets.
// ---------------------------------------------------------------------------

TEST(SocketRuntime, SeededFrameConvoysRoundTripAcrossClockWidths) {
  // Frames injected before run() cross the wire during it; the receiver's
  // re-encoding must be byte-identical to the sender's encoding (encode ->
  // TCP -> reassemble -> decode -> re-encode is the identity).
  for (int width : {2, 3, 5, 8, 9}) {
    std::mt19937_64 rng(900 + static_cast<std::uint64_t>(width));
    AtomRegistry reg = paper::make_registry(width);
    SocketRuntime rt(transport_trace(width), &reg, fast_config());
    CaptureHooks hooks;
    rt.set_hooks(&hooks);

    std::vector<std::vector<std::uint8_t>> sent;
    for (int i = 0; i < 6; ++i) {
      auto frame = seeded_frame(rng, width, 1 + i % 4, i % 3);
      std::vector<std::uint8_t> bytes;
      encode_payload_into(*frame, bytes);
      sent.push_back(std::move(bytes));
      const int from = i % width;
      const int to = (i + 1) % width;
      rt.send(MonitorMessage{from, to, std::move(frame)});
    }
    rt.run();

    // Frames to distinct destinations may interleave, so compare as
    // multisets of encodings (order per channel is covered below).
    std::multiset<std::vector<std::uint8_t>> want(sent.begin(), sent.end());
    std::multiset<std::vector<std::uint8_t>> got(hooks.received.begin(),
                                                 hooks.received.end());
    EXPECT_EQ(want, got) << "width " << width;
  }
}

TEST(SocketRuntime, TinyBuffersForcePartialIOAndCoalescing) {
  // Socket buffers far smaller than the outstanding data force EAGAIN on
  // the send side and fragmented reads on the receive side; while the
  // channel is congested, later frames must merge into the staged frame
  // (the kTransit convoy on real congestion) rather than grow the queue.
  const int n = 2;
  const int kFrames = 12;
  const int kUnitsPerFrame = 4;
  std::mt19937_64 rng(77);
  AtomRegistry reg = paper::make_registry(n);
  SocketConfig config = fast_config();
  config.sndbuf = 2048;
  config.rcvbuf = 2048;
  SocketRuntime rt(transport_trace(n), &reg, config);
  CaptureHooks hooks;
  rt.set_hooks(&hooks);

  std::vector<std::uint64_t> sent_ids;
  for (int i = 0; i < kFrames; ++i) {
    auto frame = seeded_frame(rng, n, kUnitsPerFrame, /*entries=*/6);
    for (const auto& unit : frame->units) {
      sent_ids.push_back(
          static_cast<const TokenMessage&>(*unit).token.token_id);
    }
    rt.send(MonitorMessage{0, 1, std::move(frame)});
  }
  rt.run();

  EXPECT_GT(rt.partial_writes(), 0u);
  EXPECT_GT(rt.coalesced_frames(), 0u);
  EXPECT_LT(rt.wire_frames(), static_cast<std::uint64_t>(kFrames));

  // Every token arrived exactly once, in send order (frames only merge
  // back-to-front on one FIFO channel, so unit order is preserved).
  std::vector<std::uint64_t> got_ids;
  for (const auto& bytes : hooks.received) {
    auto payload = decode_payload(bytes, n);
    ASSERT_EQ(payload->tag, PayloadFrame::kTag);
    for (const auto& unit : static_cast<PayloadFrame&>(*payload).units) {
      got_ids.push_back(
          static_cast<const TokenMessage&>(*unit).token.token_id);
    }
  }
  EXPECT_EQ(got_ids, sent_ids);
}

TEST(SocketRuntime, UnbatchedModeSplitsFramesIntoPerUnitRecords) {
  const int n = 2;
  std::mt19937_64 rng(123);
  AtomRegistry reg = paper::make_registry(n);
  SocketConfig config = fast_config();
  config.batch = false;
  SocketRuntime rt(transport_trace(n), &reg, config);
  CaptureHooks hooks;
  rt.set_hooks(&hooks);

  for (int i = 0; i < 3; ++i) {
    rt.send(MonitorMessage{0, 1, seeded_frame(rng, n, 4, 2)});
  }
  rt.run();

  EXPECT_EQ(rt.wire_frames(), 12u);  // 3 frames x 4 units, one record each
  ASSERT_EQ(hooks.received.size(), 12u);
  for (std::uint8_t tag : hooks.tags) {
    EXPECT_EQ(tag, TokenMessage::kTag);  // bare units, no frame wrapper
  }
}

TEST(SocketRuntime, BatchingReducesBytesOnWireUnderCongestion) {
  // Same injected workload, both postures, tiny buffers: the batched run
  // must move fewer records and fewer bytes (merged frames share the
  // record header, frame header and base clock).
  const int n = 2;
  auto run_posture = [&](bool batch, std::uint64_t* frames,
                         std::uint64_t* bytes) {
    std::mt19937_64 rng(55);
    AtomRegistry reg = paper::make_registry(n);
    SocketConfig config = fast_config();
    config.batch = batch;
    config.sndbuf = 2048;
    config.rcvbuf = 2048;
    SocketRuntime rt(transport_trace(n), &reg, config);
    CaptureHooks hooks;
    rt.set_hooks(&hooks);
    for (int i = 0; i < 10; ++i) {
      rt.send(MonitorMessage{0, 1, seeded_frame(rng, n, 4, 4)});
    }
    rt.run();
    *frames = rt.wire_frames();
    *bytes = rt.wire_bytes();
  };
  std::uint64_t batched_frames = 0, batched_bytes = 0;
  std::uint64_t split_frames = 0, split_bytes = 0;
  run_posture(true, &batched_frames, &batched_bytes);
  run_posture(false, &split_frames, &split_bytes);
  EXPECT_LT(batched_frames, split_frames);
  EXPECT_LT(batched_bytes, split_bytes);
}

// ---------------------------------------------------------------------------
// Differential: socket verdicts match the deterministic simulator.
// ---------------------------------------------------------------------------

TEST(SocketRuntime, VerdictsMatchSimRuntimeOnThesisProperties) {
  // The verdict set is a function of the recorded computation, not of the
  // schedule, for these oracle-deterministic workloads (the equivalence
  // goldens pin exactly this); a SocketRuntime run over the same trace
  // must land on the same verdicts the simulator produces.
  for (paper::Property p : paper::kAllProperties) {
    const int n = 3;
    const std::uint64_t seed = 2015;  // first equivalence-golden seed
    AtomRegistry reg = paper::make_registry(n);
    MonitorAutomaton m = paper::build_automaton(p, n, reg);
    CompiledProperty prop(&m, &reg);
    SystemTrace trace = generate_trace(paper::experiment_params(p, n, seed));
    force_final_all_true(trace);

    MonitorSession session(paper::make_registry(n),
                           paper::build_automaton(p, n, reg));
    RunResult sim = session.run(trace);

    SocketRuntime rt(trace, &reg, fast_config());
    DecentralizedMonitor dm(&prop, &rt,
                            initial_letters_of(reg, rt.initial_states()));
    rt.set_hooks(&dm);
    rt.run();
    SystemVerdict v = dm.result();

    EXPECT_TRUE(v.all_finished) << paper::name(p);
    EXPECT_EQ(v.verdicts, sim.verdict.verdicts) << paper::name(p);
  }
}

TEST(SocketRuntime, AotGeneratedPropertyMatchesSynthesisVerdicts) {
  // Generated-vs-synthesized differential over real sockets: an AOT
  // registry admission (zero synthesis, shared artifact, aliasing property
  // handles in every replica) must produce the same schedule-invariant
  // verdict set as a runtime-synthesized property on the same trace.
  for (paper::Property p : paper::kAllProperties) {
    const int n = 3;
    const std::uint64_t seed = 2015;  // first equivalence-golden seed
    SystemTrace trace = generate_trace(paper::experiment_params(p, n, seed));
    force_final_all_true(trace);

    AtomRegistry reg = paper::make_registry(n);
    MonitorAutomaton m = paper::build_automaton_uncached(p, n, reg);
    CompiledProperty prop(&m, &reg);
    SocketRuntime synth_rt(trace, &reg, fast_config());
    DecentralizedMonitor synth_dm(
        &prop, &synth_rt, initial_letters_of(reg, synth_rt.initial_states()));
    synth_rt.set_hooks(&synth_dm);
    synth_rt.run();

    paper::synthesis_cache_clear();  // force the AOT registry to serve
    SharedProperty artifact =
        paper::shared_property(p, n, paper::make_registry(n));
    SocketRuntime aot_rt(trace, &artifact->registry(), fast_config());
    DecentralizedMonitor aot_dm(
        property_handle(artifact), &aot_rt,
        initial_letters_of(artifact->registry(), aot_rt.initial_states()));
    aot_rt.set_hooks(&aot_dm);
    aot_rt.run();

    EXPECT_TRUE(synth_dm.all_finished()) << paper::name(p);
    EXPECT_TRUE(aot_dm.all_finished()) << paper::name(p);
    EXPECT_EQ(aot_dm.result().verdicts, synth_dm.result().verdicts)
        << paper::name(p);
  }
}

// ---------------------------------------------------------------------------
// Reliable channel over the socket transport (envelope wire form end to
// end: every monitor payload crosses as a serialized ChannelEnvelope).
// ---------------------------------------------------------------------------

TEST(SocketRuntime, ReliableChannelOverSocketsDeliversAndDrains) {
  for (int round = 0; round < 2; ++round) {
    const int n = 3;
    AtomRegistry reg = paper::make_registry(n);
    MonitorAutomaton m = paper::build_automaton(paper::Property::kD, n, reg);
    CompiledProperty prop(&m, &reg);
    SystemTrace trace = generate_trace(
        small_params(n, 300 + static_cast<std::uint64_t>(round)));

    SocketRuntime rt(trace, &reg, fast_config());
    ReliableChannel channel(&rt, n, socket_channel_config());
    DecentralizedMonitor dm(&prop, &channel,
                            initial_letters_of(reg, rt.initial_states()));
    channel.set_hooks(&dm);
    rt.set_hooks(&channel);
    rt.run();

    EXPECT_TRUE(dm.all_finished()) << "round " << round;
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(channel.unacked_count(i), 0u) << "round " << round;
    }
    Computation comp(rt.history());
    OracleResult oracle = oracle_evaluate(comp, m);
    SystemVerdict v = dm.result();
    for (Verdict x : oracle.verdicts) {
      EXPECT_TRUE(v.verdicts.count(x)) << "round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault tolerance (DESIGN.md §13): abortive connection kills mid-run,
// reconnect + HELLO reconciliation, and the node-kill / checkpoint-restore
// / mesh-rejoin drill.
// ---------------------------------------------------------------------------

TEST(SocketFault, KilledConnectionReconnectsAndRetiresLostRecords) {
  // Transport-only: seeded frames cross one channel whose connection is
  // abortively killed (RST) after a few records. The run must still drain
  // to quiescence -- every encoded record is either dispatched or
  // reconciled as lost at the HELLO exchange, never leaked -- and the link
  // must have come back exactly once.
  const int n = 2;
  std::mt19937_64 rng(4242);
  AtomRegistry reg = paper::make_registry(n);
  SocketConfig config = fast_config();
  config.sndbuf = 2048;
  config.rcvbuf = 2048;
  config.fault.enabled = true;
  config.fault.seed = 11;
  config.fault.kill_after_min = 2;
  config.fault.kill_after_max = 4;
  config.fault.max_kills = 1;
  SocketRuntime rt(transport_trace(n), &reg, config);
  CaptureHooks hooks;
  rt.set_hooks(&hooks);

  for (int i = 0; i < 10; ++i) {
    rt.send(MonitorMessage{0, 1, seeded_frame(rng, n, 2, 4)});
  }
  rt.run();  // must not throw and must not hang

  EXPECT_EQ(rt.connections_killed(), 1u);
  EXPECT_EQ(rt.reconnects(), 1u);
  EXPECT_GT(rt.disconnect_drops(), 0u);
  // Conservation: every record was dispatched or counted as lost.
  EXPECT_EQ(rt.monitor_messages_processed() + rt.disconnect_drops(),
            rt.wire_frames());
  EXPECT_EQ(hooks.received.size(), rt.monitor_messages_processed());
}

TEST(SocketFault, GoldenVerdictsSurviveConnectionKillUnderReliableChannel) {
  // The acceptance drill: a live connection dies mid-run (RST, in-flight
  // records lost) under the full monitoring stack. The reliable channel's
  // retransmissions bridge the outage over the reconnected socket, so the
  // verdict set must equal the no-fault simulator's -- same computation,
  // same verdicts, no fatal throw.
  for (paper::Property p : {paper::Property::kA, paper::Property::kD}) {
    const int n = 3;
    const std::uint64_t seed = 2015;  // first equivalence-golden seed
    AtomRegistry reg = paper::make_registry(n);
    MonitorAutomaton m = paper::build_automaton(p, n, reg);
    CompiledProperty prop(&m, &reg);
    SystemTrace trace = generate_trace(paper::experiment_params(p, n, seed));
    force_final_all_true(trace);

    MonitorSession session(paper::make_registry(n),
                           paper::build_automaton(p, n, reg));
    RunResult sim = session.run(trace);

    SocketConfig config = fast_config();
    config.fault.enabled = true;
    config.fault.seed = 23;
    config.fault.kill_after_min = 4;
    config.fault.kill_after_max = 12;
    config.fault.max_kills = 1;
    SocketRuntime rt(trace, &reg, config);
    ReliableChannel channel(&rt, n, socket_channel_config());
    DecentralizedMonitor dm(&prop, &channel,
                            initial_letters_of(reg, rt.initial_states()));
    channel.set_hooks(&dm);
    rt.set_hooks(&channel);
    rt.run();

    EXPECT_EQ(rt.connections_killed(), 1u) << paper::name(p);
    EXPECT_GE(rt.reconnects(), 1u) << paper::name(p);
    SystemVerdict v = dm.result();
    EXPECT_TRUE(v.all_finished) << paper::name(p);
    EXPECT_EQ(v.verdicts, sim.verdict.verdicts) << paper::name(p);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(channel.unacked_count(i), 0u) << paper::name(p);
    }
  }
}

TEST(SocketFault, KillConnectionApiIsSafeFromOutsideTheMesh) {
  // The public kill API drives the same teardown the seeded plan uses;
  // calling it for an already-down pair later is a no-op, and the run
  // still converges on the golden verdicts.
  const int n = 3;
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kD, n, reg);
  CompiledProperty prop(&m, &reg);
  SystemTrace trace = generate_trace(small_params(n, 901));

  SocketRuntime rt(trace, &reg, fast_config());
  ReliableChannel channel(&rt, n, socket_channel_config());
  DecentralizedMonitor dm(&prop, &channel,
                          initial_letters_of(reg, rt.initial_states()));
  channel.set_hooks(&dm);
  rt.set_hooks(&channel);

  EXPECT_THROW(rt.kill_connection(0, 0), std::out_of_range);
  EXPECT_THROW(rt.kill_connection(-1, 1), std::out_of_range);
  rt.kill_connection(0, 1);  // pre-run: dies at the first link service
  rt.run();

  EXPECT_GE(rt.connections_killed(), 1u);
  EXPECT_GE(rt.reconnects(), 1u);
  EXPECT_TRUE(dm.all_finished());
  Computation comp(rt.history());
  OracleResult oracle = oracle_evaluate(comp, m);
  SystemVerdict v = dm.result();
  for (Verdict x : oracle.verdicts) {
    EXPECT_TRUE(v.verdicts.count(x));
  }
}

TEST(SocketFault, NodeKillCheckpointRestoreAndMeshRejoin) {
  // The full crash drill over the real transport: the hooks-layer
  // CrashInjector kills and restores the monitor's state from its
  // checkpoint, while the transport-layer node kill severs every one of
  // the node's links at once (both sides of the crash). The mesh re-forms
  // through the normal reconnect path, retransmissions redeliver what the
  // dead node swallowed, and the verdicts still satisfy the contract.
  const int n = 3;
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kD, n, reg);
  CompiledProperty prop(&m, &reg);
  SystemTrace trace = generate_trace(small_params(n, 505));

  SocketConfig config = fast_config();
  config.fault.enabled = true;
  config.fault.seed = 31;
  config.fault.max_kills = 0;  // only the node kill, no extra link kills
  config.fault.kill_node = 1;
  config.fault.kill_node_after = 1;  // fires at node 1's 2nd monitor record
  SocketRuntime rt(trace, &reg, config);
  ReliableChannel channel(&rt, n, socket_channel_config());
  DecentralizedMonitor dm(&prop, &channel,
                          initial_letters_of(reg, rt.initial_states()));
  channel.set_hooks(&dm);
  CrashPlan plan;
  plan.node = 1;
  plan.crash_after = 4;
  plan.down_deliveries = 2;
  CrashInjector injector(&channel, &dm, &channel, plan);
  rt.set_hooks(&injector);
  rt.run();

  EXPECT_EQ(rt.connections_killed(), static_cast<std::uint64_t>(n - 1));
  EXPECT_GE(rt.reconnects(), 1u);
  EXPECT_GE(injector.stats().crashes, 1u);
  EXPECT_GE(injector.stats().restarts, 1u);
  EXPECT_TRUE(injector.recovered());
  EXPECT_TRUE(dm.all_finished());
  Computation comp(rt.history());
  OracleResult oracle = oracle_evaluate(comp, m);
  SystemVerdict v = dm.result();
  for (Verdict x : oracle.verdicts) {
    EXPECT_TRUE(v.verdicts.count(x));
  }
  for (Verdict x : v.verdicts) {
    if (x != Verdict::kUnknown) EXPECT_TRUE(oracle.verdicts.count(x));
  }
}

TEST(SocketFault, AppRecordsAreReplayedNeverLost) {
  // App records carry the program's expected-receive bookkeeping: losing
  // one would hang the run forever. Kill connections aggressively under a
  // comm-heavy trace (no monitors, so nothing above the transport can
  // repair anything) -- every receive must still happen, proving the
  // replay log covers exactly what each RST destroyed.
  TraceParams p = small_params(3, 808);
  p.internal_events = 10;
  SystemTrace trace = generate_trace(p);
  AtomRegistry reg = paper::make_registry(3);
  SocketConfig config = fast_config();
  config.time_scale = 0.002;  // stretch the run so kills land mid-stream
  config.sndbuf = 2048;
  config.rcvbuf = 2048;
  config.fault.enabled = true;
  config.fault.seed = 99;
  config.fault.kill_after_min = 1;
  config.fault.kill_after_max = 2;
  config.fault.max_kills = 3;
  SocketRuntime rt(trace, &reg, config);
  // One frame per channel arms the monitor-record kill countdowns; the
  // interesting traffic is the app broadcast stream underneath.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) rt.send(MonitorMessage{i, j, seeded_frame(rng, 3, 1, 1)});
    }
  }
  rt.run();  // quiescence is itself the assertion: no receive was lost

  EXPECT_EQ(rt.program_events(),
            static_cast<std::uint64_t>(trace.total_events()));
  EXPECT_EQ(rt.connections_killed(), 3u);
  // Every kill redials, but a kill that lost nothing does not block
  // quiescence, so the run may finish before its redial lands.
  EXPECT_GE(rt.reconnects(), 1u);
  EXPECT_LE(rt.reconnects(), 3u);
  Computation comp(rt.history());
  EXPECT_TRUE(comp.consistent(comp.top()));
}

TEST(SocketRuntime, QuiescenceIsExactNoWorkAfterRunReturns) {
  AtomRegistry reg = paper::make_registry(3);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kA, 3, reg);
  CompiledProperty prop(&m, &reg);
  SystemTrace trace = generate_trace(small_params(3, 77));

  SocketRuntime rt(trace, &reg, fast_config());
  DecentralizedMonitor dm(&prop, &rt,
                          initial_letters_of(reg, rt.initial_states()));
  rt.set_hooks(&dm);
  rt.run();

  EXPECT_TRUE(dm.all_finished());
  EXPECT_GE(rt.monitor_messages_processed(), rt.wire_frames());
  const std::uint64_t events = rt.program_events();
  const std::uint64_t frames = rt.wire_frames();
  const std::uint64_t bytes = rt.wire_bytes();
  EXPECT_EQ(rt.program_events(), events);
  EXPECT_EQ(rt.wire_frames(), frames);
  EXPECT_EQ(rt.wire_bytes(), bytes);
}

}  // namespace
}  // namespace decmon
