#include "decmon/distributed/thread_runtime.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/core/properties.hpp"
#include "decmon/distributed/faulty_network.hpp"
#include "decmon/lattice/computation.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/ltl/parser.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"
#include "decmon/monitor/token.hpp"

namespace decmon {
namespace {

TraceParams small_params(int n, std::uint64_t seed = 3) {
  TraceParams p;
  p.num_processes = n;
  p.internal_events = 6;
  p.seed = seed;
  return p;
}

ThreadConfig fast_config() {
  ThreadConfig c;
  c.time_scale = 0.0005;  // 3 s trace waits -> 1.5 ms wall
  return c;
}

TEST(ThreadRuntime, RunsToQuiescenceWithoutMonitors) {
  AtomRegistry reg = paper::make_registry(3);
  SystemTrace trace = generate_trace(small_params(3));
  ThreadRuntime rt(trace, &reg, fast_config());
  rt.run();
  EXPECT_EQ(rt.program_events(),
            static_cast<std::uint64_t>(trace.total_events()));
}

TEST(ThreadRuntime, HistoryIsAValidComputation) {
  AtomRegistry reg = paper::make_registry(3);
  SystemTrace trace = generate_trace(small_params(3));
  ThreadRuntime rt(trace, &reg, fast_config());
  rt.run();
  Computation comp(rt.history());
  EXPECT_TRUE(comp.consistent(comp.top()));
  for (const auto& hist : rt.history()) {
    for (std::size_t i = 1; i < hist.size(); ++i) {
      EXPECT_TRUE(hist[i - 1].vc.happened_before(hist[i].vc));
    }
  }
}

TEST(ThreadRuntime, MonitorsFinishAndSatisfyContract) {
  // Full end-to-end under real threads: monitors drain, and the verdict set
  // satisfies the contract against the oracle of the *recorded* history
  // (thread schedules vary run to run; the oracle is recomputed per run).
  for (int round = 0; round < 3; ++round) {
    AtomRegistry reg = paper::make_registry(3);
    FormulaPtr f = parse_ltl("G((P0.p) U (P1.p && P2.p))", reg);
    MonitorAutomaton m = synthesize_monitor(f);
    CompiledProperty prop(&m, &reg);
    SystemTrace trace = generate_trace(
        small_params(3, 100 + static_cast<std::uint64_t>(round)));

    ThreadRuntime rt(trace, &reg, fast_config());
    DecentralizedMonitor dm(&prop, &rt,
                            initial_letters_of(reg, rt.initial_states()));
    rt.set_hooks(&dm);
    rt.run();

    EXPECT_TRUE(dm.all_finished()) << "round " << round;
    Computation comp(rt.history());
    OracleResult oracle = oracle_evaluate(comp, m);
    SystemVerdict v = dm.result();
    for (Verdict x : oracle.verdicts) {
      EXPECT_TRUE(v.verdicts.count(x)) << "round " << round;
    }
    for (Verdict x : v.verdicts) {
      if (x != Verdict::kUnknown) {
        EXPECT_TRUE(oracle.verdicts.count(x)) << "round " << round;
      }
    }
  }
}

TEST(ThreadRuntime, AppMessageCountMatchesTrace) {
  AtomRegistry reg = paper::make_registry(2);
  SystemTrace trace = generate_trace(small_params(2));
  int comm_actions = 0;
  for (const auto& pt : trace.procs) {
    comm_actions += pt.count(TraceAction::Kind::kComm);
  }
  ThreadRuntime rt(trace, &reg, fast_config());
  rt.run();
  EXPECT_EQ(rt.app_messages_sent(),
            static_cast<std::uint64_t>(comm_actions));  // n-1 = 1 receiver
}

TEST(ThreadRuntime, NoCommTraceNeedsNoMessages) {
  AtomRegistry reg = paper::make_registry(2);
  TraceParams params = small_params(2);
  params.comm_enabled = false;
  ThreadRuntime rt(generate_trace(params), &reg, fast_config());
  rt.run();
  EXPECT_EQ(rt.app_messages_sent(), 0u);
}

// Adverse configs: the counter-based quiescence proof must not depend on
// timing headroom.

TEST(ThreadRuntime, ZeroTimeScaleStormSatisfiesContract) {
  // time_scale = 0 collapses every wait and latency to "now": all actions
  // fire immediately, all messages are instantly ripe -- maximum scheduler
  // pressure, zero settle time for a heuristic to hide behind.
  ThreadConfig storm;
  storm.time_scale = 0.0;
  for (int round = 0; round < 3; ++round) {
    AtomRegistry reg = paper::make_registry(3);
    FormulaPtr f = parse_ltl("G((P0.p) U (P1.p && P2.p))", reg);
    MonitorAutomaton m = synthesize_monitor(f);
    CompiledProperty prop(&m, &reg);
    SystemTrace trace = generate_trace(
        small_params(3, 500 + static_cast<std::uint64_t>(round)));

    ThreadRuntime rt(trace, &reg, storm);
    DecentralizedMonitor dm(&prop, &rt,
                            initial_letters_of(reg, rt.initial_states()));
    rt.set_hooks(&dm);
    rt.run();

    EXPECT_TRUE(dm.all_finished()) << "round " << round;
    Computation comp(rt.history());
    OracleResult oracle = oracle_evaluate(comp, m);
    SystemVerdict v = dm.result();
    for (Verdict x : oracle.verdicts) {
      EXPECT_TRUE(v.verdicts.count(x)) << "round " << round;
    }
  }
}

TEST(ThreadRuntime, LargeLatencySigmaSatisfiesContract) {
  // Heavily dispersed latencies: deliveries arrive far out of their send
  // order across channels (per-channel FIFO still holds).
  ThreadConfig jittery = fast_config();
  jittery.latency_mu = 0.02;
  jittery.latency_sigma = 2.0;
  AtomRegistry reg = paper::make_registry(3);
  FormulaPtr f = parse_ltl("G((P0.p) U (P1.p && P2.p))", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  SystemTrace trace = generate_trace(small_params(3, 42));

  ThreadRuntime rt(trace, &reg, jittery);
  DecentralizedMonitor dm(&prop, &rt,
                          initial_letters_of(reg, rt.initial_states()));
  rt.set_hooks(&dm);
  rt.run();

  EXPECT_TRUE(dm.all_finished());
  Computation comp(rt.history());
  OracleResult oracle = oracle_evaluate(comp, m);
  SystemVerdict v = dm.result();
  for (Verdict x : oracle.verdicts) EXPECT_TRUE(v.verdicts.count(x));
}

TEST(ThreadRuntime, QuiescenceIsExactNoWorkAfterRunReturns) {
  // Regression for the deleted sleep-settle loop: run() returning is a
  // proof of quiescence (outstanding work counter hit zero and every node
  // thread joined), so no counter may advance afterwards.
  AtomRegistry reg = paper::make_registry(3);
  FormulaPtr f = parse_ltl("G((P0.p) U (P1.p && P2.p))", reg);
  MonitorAutomaton m = synthesize_monitor(f);
  CompiledProperty prop(&m, &reg);
  SystemTrace trace = generate_trace(small_params(3, 77));

  ThreadRuntime rt(trace, &reg, fast_config());
  DecentralizedMonitor dm(&prop, &rt,
                          initial_letters_of(reg, rt.initial_states()));
  rt.set_hooks(&dm);
  rt.run();

  const std::uint64_t events = rt.program_events();
  const std::uint64_t sent = rt.monitor_messages_sent();
  const std::uint64_t processed = rt.monitor_messages_processed();
  EXPECT_TRUE(dm.all_finished());
  EXPECT_GE(processed, sent);  // self-sends are processed but not "sent"
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(rt.program_events(), events);
  EXPECT_EQ(rt.monitor_messages_sent(), sent);
  EXPECT_EQ(rt.monitor_messages_processed(), processed);
}

TEST(ThreadRuntime, FaultyNetworkOverThreadsSatisfiesContract) {
  // The full adversarial stack under real threads: delay spikes, reordering,
  // duplication and bounded drop-with-redelivery on every monitor channel.
  FaultConfig fc;
  fc.delay_prob = 0.2;
  fc.delay_mu = 0.2;
  fc.delay_sigma = 0.1;
  fc.reorder_prob = 0.3;
  fc.dup_prob = 0.15;
  fc.drop_prob = 0.15;
  fc.redelivery_delay = 0.1;
  fc.seed = 11;
  for (int round = 0; round < 3; ++round) {
    AtomRegistry reg = paper::make_registry(3);
    FormulaPtr f = parse_ltl("G((P0.p) U (P1.p && P2.p))", reg);
    MonitorAutomaton m = synthesize_monitor(f);
    CompiledProperty prop(&m, &reg);
    SystemTrace trace = generate_trace(
        small_params(3, 900 + static_cast<std::uint64_t>(round)));

    ThreadRuntime rt(trace, &reg, fast_config());
    FaultyNetwork net(&rt, 3, fc);
    DecentralizedMonitor dm(&prop, &net,
                            initial_letters_of(reg, rt.initial_states()));
    rt.set_hooks(&dm);
    rt.run();

    EXPECT_TRUE(dm.all_finished()) << "round " << round;
    Computation comp(rt.history());
    OracleResult oracle = oracle_evaluate(comp, m);
    SystemVerdict v = dm.result();
    for (Verdict x : oracle.verdicts) {
      EXPECT_TRUE(v.verdicts.count(x)) << "round " << round;
    }
    for (Verdict x : v.verdicts) {
      if (x != Verdict::kUnknown) {
        EXPECT_TRUE(oracle.verdicts.count(x)) << "round " << round;
      }
    }
  }
}

TEST(ThreadRuntime, OffThreadSendsAreSafeAndCounted) {
  // Sends from outside any node thread race against the nodes' own sends on
  // the same channels; the per-node send mutex must make both the latency
  // stream and the FIFO clamp safe, and the quiescence counter must cover
  // the injected messages (run() may not return before processing them).
  AtomRegistry reg = paper::make_registry(2);
  SystemTrace trace = generate_trace(small_params(2));
  ThreadRuntime rt(trace, &reg, fast_config());

  auto inject = [&rt](int count) {
    for (int i = 0; i < count; ++i) {
      auto payload = std::make_unique<TerminationMessage>();
      payload->process = 0;
      payload->last_sn = 0;
      rt.send(MonitorMessage{0, 1, std::move(payload)});
    }
  };
  // Pre-run injection, from a foreign thread: the quiescence counter covers
  // these messages, so run() cannot return before processing all of them.
  std::thread pre(inject, 25);
  pre.join();
  // Concurrent injection races the node threads on the sender's channel
  // state (latency RNG + FIFO clamps); messages landing after quiescence
  // may stay unprocessed, but the send path must stay safe.
  std::thread during(inject, 25);
  rt.run();
  during.join();
  // No hooks attached: messages are drained and dropped on receipt.
  EXPECT_EQ(rt.monitor_messages_sent(), 50u);
  EXPECT_GE(rt.monitor_messages_processed(), 25u);
}

TEST(ThreadRuntime, AotGeneratedPropertyMatchesSynthesisVerdicts) {
  // Generated-vs-synthesized differential under real threads: the verdict
  // set is a function of the recorded computation for these workloads, so
  // a monitor admitted through the AOT CompiledPropertyRegistry must land
  // on exactly the verdicts a runtime-synthesized property produces on the
  // same trace.
  for (paper::Property p : paper::kAllProperties) {
    const int n = 3;
    const std::uint64_t seed = 2015;  // first equivalence-golden seed
    SystemTrace trace = generate_trace(paper::experiment_params(p, n, seed));
    force_final_all_true(trace);

    AtomRegistry reg = paper::make_registry(n);
    MonitorAutomaton m = paper::build_automaton_uncached(p, n, reg);
    CompiledProperty prop(&m, &reg);
    ThreadRuntime synth_rt(trace, &reg, fast_config());
    DecentralizedMonitor synth_dm(
        &prop, &synth_rt, initial_letters_of(reg, synth_rt.initial_states()));
    synth_rt.set_hooks(&synth_dm);
    synth_rt.run();

    paper::synthesis_cache_clear();  // force the AOT registry to serve
    SharedProperty artifact =
        paper::shared_property(p, n, paper::make_registry(n));
    ThreadRuntime aot_rt(trace, &artifact->registry(), fast_config());
    DecentralizedMonitor aot_dm(
        property_handle(artifact), &aot_rt,
        initial_letters_of(artifact->registry(), aot_rt.initial_states()));
    aot_rt.set_hooks(&aot_dm);
    aot_rt.run();

    EXPECT_TRUE(synth_dm.all_finished()) << paper::name(p);
    EXPECT_TRUE(aot_dm.all_finished()) << paper::name(p);
    EXPECT_EQ(aot_dm.result().verdicts, synth_dm.result().verdicts)
        << paper::name(p);
  }
}

}  // namespace
}  // namespace decmon
