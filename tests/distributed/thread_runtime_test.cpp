#include "decmon/distributed/thread_runtime.hpp"

#include <gtest/gtest.h>

#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/core/properties.hpp"
#include "decmon/lattice/computation.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/ltl/parser.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"

namespace decmon {
namespace {

TraceParams small_params(int n, std::uint64_t seed = 3) {
  TraceParams p;
  p.num_processes = n;
  p.internal_events = 6;
  p.seed = seed;
  return p;
}

ThreadConfig fast_config() {
  ThreadConfig c;
  c.time_scale = 0.0005;  // 3 s trace waits -> 1.5 ms wall
  return c;
}

TEST(ThreadRuntime, RunsToQuiescenceWithoutMonitors) {
  AtomRegistry reg = paper::make_registry(3);
  SystemTrace trace = generate_trace(small_params(3));
  ThreadRuntime rt(trace, &reg, fast_config());
  rt.run();
  EXPECT_EQ(rt.program_events(),
            static_cast<std::uint64_t>(trace.total_events()));
}

TEST(ThreadRuntime, HistoryIsAValidComputation) {
  AtomRegistry reg = paper::make_registry(3);
  SystemTrace trace = generate_trace(small_params(3));
  ThreadRuntime rt(trace, &reg, fast_config());
  rt.run();
  Computation comp(rt.history());
  EXPECT_TRUE(comp.consistent(comp.top()));
  for (const auto& hist : rt.history()) {
    for (std::size_t i = 1; i < hist.size(); ++i) {
      EXPECT_TRUE(hist[i - 1].vc.happened_before(hist[i].vc));
    }
  }
}

TEST(ThreadRuntime, MonitorsFinishAndSatisfyContract) {
  // Full end-to-end under real threads: monitors drain, and the verdict set
  // satisfies the contract against the oracle of the *recorded* history
  // (thread schedules vary run to run; the oracle is recomputed per run).
  for (int round = 0; round < 3; ++round) {
    AtomRegistry reg = paper::make_registry(3);
    FormulaPtr f = parse_ltl("G((P0.p) U (P1.p && P2.p))", reg);
    MonitorAutomaton m = synthesize_monitor(f);
    CompiledProperty prop(&m, &reg);
    SystemTrace trace = generate_trace(
        small_params(3, 100 + static_cast<std::uint64_t>(round)));

    ThreadRuntime rt(trace, &reg, fast_config());
    DecentralizedMonitor dm(&prop, &rt,
                            initial_letters_of(reg, rt.initial_states()));
    rt.set_hooks(&dm);
    rt.run();

    EXPECT_TRUE(dm.all_finished()) << "round " << round;
    Computation comp(rt.history());
    OracleResult oracle = oracle_evaluate(comp, m);
    SystemVerdict v = dm.result();
    for (Verdict x : oracle.verdicts) {
      EXPECT_TRUE(v.verdicts.count(x)) << "round " << round;
    }
    for (Verdict x : v.verdicts) {
      if (x != Verdict::kUnknown) {
        EXPECT_TRUE(oracle.verdicts.count(x)) << "round " << round;
      }
    }
  }
}

TEST(ThreadRuntime, AppMessageCountMatchesTrace) {
  AtomRegistry reg = paper::make_registry(2);
  SystemTrace trace = generate_trace(small_params(2));
  int comm_actions = 0;
  for (const auto& pt : trace.procs) {
    comm_actions += pt.count(TraceAction::Kind::kComm);
  }
  ThreadRuntime rt(trace, &reg, fast_config());
  rt.run();
  EXPECT_EQ(rt.app_messages_sent(),
            static_cast<std::uint64_t>(comm_actions));  // n-1 = 1 receiver
}

TEST(ThreadRuntime, NoCommTraceNeedsNoMessages) {
  AtomRegistry reg = paper::make_registry(2);
  TraceParams params = small_params(2);
  params.comm_enabled = false;
  ThreadRuntime rt(generate_trace(params), &reg, fast_config());
  rt.run();
  EXPECT_EQ(rt.app_messages_sent(), 0u);
}

}  // namespace
}  // namespace decmon
