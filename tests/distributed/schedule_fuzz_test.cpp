// Differential schedule fuzzing (see DESIGN.md §7): seeded fault configs
// swept over property/process cells, every run checked against the lattice
// oracle. The smoke sweep is the CI gate (>= 200 fault configs across >= 3
// cells, zero contract violations); the injected-bug self-test proves the
// harness actually catches fault-model violations and that its repros are
// deterministic.
#include "decmon/distributed/schedule_fuzz.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace decmon {
namespace {

TEST(ScheduleFuzz, SmokeSweepFindsNoViolations) {
  fuzz::Options options;  // defaults: 3 cells x 70 cases = 210 fault configs
  options.seed = 20260805;
  std::ostringstream progress;
  fuzz::Report report = fuzz::run_sweep(options, &progress);

  EXPECT_GE(report.cases, 200u) << progress.str();
  // The sweep must actually inject faults, not pass vacuously.
  EXPECT_GT(report.faults.delay_spikes, 0u);
  EXPECT_GT(report.faults.reordered, 0u);
  EXPECT_GT(report.faults.duplicated, 0u);
  EXPECT_GT(report.faults.dropped, 0u);
  EXPECT_EQ(report.faults.lost, 0u);  // bounded loss: always redelivered

  EXPECT_TRUE(report.ok()) << progress.str() << "first violation:\n"
                           << (report.violations.empty()
                                   ? std::string("(none)")
                                   : report.violations.front().kind + ": " +
                                         report.violations.front().detail +
                                         "\n" +
                                         report.violations.front().repro);
}

TEST(ScheduleFuzz, SweepIsDeterministic) {
  fuzz::Options options;
  options.cells = {{paper::Property::kA, 2}};
  options.cases_per_cell = 10;
  options.seed = 42;
  fuzz::Report a = fuzz::run_sweep(options);
  fuzz::Report b = fuzz::run_sweep(options);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.violation_count, b.violation_count);
  EXPECT_EQ(a.faults.messages, b.faults.messages);
  EXPECT_EQ(a.faults.delay_spikes, b.faults.delay_spikes);
  EXPECT_EQ(a.faults.reordered, b.faults.reordered);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
}

TEST(ScheduleFuzz, InjectedBugIsCaughtWithDeterministicRepro) {
  // Violate the bounded-loss fault model: dropped messages are swallowed
  // instead of redelivered. Lost tokens strand their parent views, so the
  // sweep must flag violations -- this is the harness's self-test that a
  // real bug cannot slip through silently.
  fuzz::Options options;
  options.cells = {{paper::Property::kA, 3}, {paper::Property::kB, 2}};
  options.cases_per_cell = 25;
  options.seed = 7;
  options.lose_dropped = true;
  fuzz::Report report = fuzz::run_sweep(options);

  ASSERT_FALSE(report.ok()) << "injected fault-model violation not caught";
  ASSERT_FALSE(report.violations.empty());
  ASSERT_FALSE(report.violations.front().repro.empty());

  // The dumped repro must re-run to the identical outcome, twice: that is
  // what makes a fuzz failure debuggable instead of a one-off.
  const std::string& repro = report.violations.front().repro;
  fuzz::ReproOutcome first = fuzz::run_repro(repro);
  fuzz::ReproOutcome second = fuzz::run_repro(repro);
  EXPECT_TRUE(first.violation);
  EXPECT_EQ(first.kind, report.violations.front().kind);
  EXPECT_EQ(first.kind, second.kind);
  EXPECT_EQ(first.detail, second.detail);
  EXPECT_EQ(first.oracle, second.oracle);
  EXPECT_EQ(first.monitor, second.monitor);
  EXPECT_EQ(first.all_finished, second.all_finished);
}

TEST(ScheduleFuzz, ReproRejectsGarbage) {
  EXPECT_THROW(fuzz::run_repro("not a repro"), std::runtime_error);
  EXPECT_THROW(fuzz::run_repro("decmon-fuzz-repro v1\nproperty A\n"),
               std::runtime_error);  // missing event log
}

}  // namespace
}  // namespace decmon
