// Differential schedule fuzzing (see DESIGN.md §7): seeded fault configs
// swept over property/process cells, every run checked against the lattice
// oracle. The smoke sweep is the CI gate (>= 200 fault configs across >= 3
// cells, zero contract violations); the injected-bug self-test proves the
// harness actually catches fault-model violations and that its repros are
// deterministic.
#include "decmon/distributed/schedule_fuzz.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace decmon {
namespace {

TEST(ScheduleFuzz, SmokeSweepFindsNoViolations) {
  fuzz::Options options;  // defaults: 3 cells x 70 cases = 210 fault configs
  options.seed = 20260805;
  std::ostringstream progress;
  fuzz::Report report = fuzz::run_sweep(options, &progress);

  EXPECT_GE(report.cases, 200u) << progress.str();
  // The sweep must actually inject faults, not pass vacuously.
  EXPECT_GT(report.faults.delay_spikes, 0u);
  EXPECT_GT(report.faults.reordered, 0u);
  EXPECT_GT(report.faults.duplicated, 0u);
  EXPECT_GT(report.faults.dropped, 0u);
  EXPECT_EQ(report.faults.lost, 0u);  // bounded loss: always redelivered

  EXPECT_TRUE(report.ok()) << progress.str() << "first violation:\n"
                           << (report.violations.empty()
                                   ? std::string("(none)")
                                   : report.violations.front().kind + ": " +
                                         report.violations.front().detail +
                                         "\n" +
                                         report.violations.front().repro);
}

TEST(ScheduleFuzz, SweepIsDeterministic) {
  fuzz::Options options;
  options.cells = {{paper::Property::kA, 2}};
  options.cases_per_cell = 10;
  options.seed = 42;
  fuzz::Report a = fuzz::run_sweep(options);
  fuzz::Report b = fuzz::run_sweep(options);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.violation_count, b.violation_count);
  EXPECT_EQ(a.faults.messages, b.faults.messages);
  EXPECT_EQ(a.faults.delay_spikes, b.faults.delay_spikes);
  EXPECT_EQ(a.faults.reordered, b.faults.reordered);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
}

TEST(ScheduleFuzz, InjectedBugIsCaughtWithDeterministicRepro) {
  // Violate the bounded-loss fault model: dropped messages are swallowed
  // instead of redelivered. Lost tokens strand their parent views, so the
  // sweep must flag violations -- this is the harness's self-test that a
  // real bug cannot slip through silently.
  fuzz::Options options;
  options.cells = {{paper::Property::kA, 3}, {paper::Property::kB, 2}};
  options.cases_per_cell = 25;
  options.seed = 7;
  options.lose_dropped = true;
  fuzz::Report report = fuzz::run_sweep(options);

  ASSERT_FALSE(report.ok()) << "injected fault-model violation not caught";
  ASSERT_FALSE(report.violations.empty());
  ASSERT_FALSE(report.violations.front().repro.empty());

  // The dumped repro must re-run to the identical outcome, twice: that is
  // what makes a fuzz failure debuggable instead of a one-off.
  const std::string& repro = report.violations.front().repro;
  fuzz::ReproOutcome first = fuzz::run_repro(repro);
  fuzz::ReproOutcome second = fuzz::run_repro(repro);
  EXPECT_TRUE(first.violation);
  EXPECT_EQ(first.kind, report.violations.front().kind);
  EXPECT_EQ(first.kind, second.kind);
  EXPECT_EQ(first.detail, second.detail);
  EXPECT_EQ(first.oracle, second.oracle);
  EXPECT_EQ(first.monitor, second.monitor);
  EXPECT_EQ(first.all_finished, second.all_finished);
}

TEST(ScheduleFuzz, ReproRejectsGarbage) {
  EXPECT_THROW(fuzz::run_repro("not a repro"), std::runtime_error);
  EXPECT_THROW(fuzz::run_repro("decmon-fuzz-repro v1\nproperty A\n"),
               std::runtime_error);  // missing event log
}

TEST(ScheduleFuzz, CrashSweepFindsNoViolations) {
  // The ISSUE's headline acceptance gate: >= 200 seeded cases, every one
  // with true message loss AND one crash-restart, zero contract violations.
  // Definite verdicts survive the crash unchanged; recovery may only add
  // '?' time -- which the contract already permits.
  fuzz::Options options;  // defaults: 3 cells x 70 cases = 210 cases
  options.seed = 20260806;
  options.lossy = true;
  options.crash = true;
  std::ostringstream progress;
  fuzz::Report report = fuzz::run_sweep(options, &progress);

  EXPECT_GE(report.cases, 200u) << progress.str();
  // Every case must actually crash, restart, lose messages and recover
  // them -- a vacuous sweep would prove nothing.
  EXPECT_EQ(report.crash.crashes, report.cases);
  EXPECT_EQ(report.crash.restarts, report.cases);
  EXPECT_GT(report.faults.lost, 0u);
  EXPECT_GT(report.channel.retransmissions, 0u);
  EXPECT_GT(report.channel.dup_suppressed, 0u);
  EXPECT_GT(report.crash.checkpoint_bytes, 0u);
  EXPECT_GT(report.crash.dropped_while_down, 0u);

  EXPECT_TRUE(report.ok()) << progress.str() << "first violation:\n"
                           << (report.violations.empty()
                                   ? std::string("(none)")
                                   : report.violations.front().kind + ": " +
                                         report.violations.front().detail +
                                         "\n" +
                                         report.violations.front().repro);
}

TEST(ScheduleFuzz, CrashSweepIsDeterministic) {
  fuzz::Options options;
  options.cells = {{paper::Property::kA, 3}};
  options.cases_per_cell = 8;
  options.seed = 13;
  options.lossy = true;
  options.crash = true;
  fuzz::Report a = fuzz::run_sweep(options);
  fuzz::Report b = fuzz::run_sweep(options);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.violation_count, b.violation_count);
  EXPECT_EQ(a.faults.lost, b.faults.lost);
  EXPECT_EQ(a.channel.data_sent, b.channel.data_sent);
  EXPECT_EQ(a.channel.retransmissions, b.channel.retransmissions);
  EXPECT_EQ(a.channel.acks_sent, b.channel.acks_sent);
  EXPECT_EQ(a.crash.checkpoints_taken, b.crash.checkpoints_taken);
  EXPECT_EQ(a.crash.checkpoint_bytes, b.crash.checkpoint_bytes);
}

TEST(ScheduleFuzz, TrueLossWithoutTheChannelIsCaught) {
  // The harness self-test for the new fault mode: lose_prob with no
  // reliable channel underneath violates the algorithm's delivery
  // assumption, so the sweep must catch it (just like lose_dropped).
  fuzz::Options options;
  options.cells = {{paper::Property::kA, 3}, {paper::Property::kB, 2}};
  options.cases_per_cell = 25;
  options.seed = 7;
  options.lossy = true;
  fuzz::Report report = fuzz::run_sweep(options);
  ASSERT_FALSE(report.ok()) << "true loss without the channel not caught";

  // And its repro round-trips deterministically, v2 fields included.
  const std::string& repro = report.violations.front().repro;
  fuzz::ReproOutcome first = fuzz::run_repro(repro);
  fuzz::ReproOutcome second = fuzz::run_repro(repro);
  EXPECT_TRUE(first.violation);
  EXPECT_EQ(first.kind, second.kind);
  EXPECT_EQ(first.oracle, second.oracle);
  EXPECT_EQ(first.monitor, second.monitor);
}

TEST(ScheduleFuzz, PartialReprosRerunFromSeedsAlone) {
  // The watchdog dumps the partial repro published at case start; it must
  // re-run from seeds alone (no event log) for both sim and replay cases.
  fuzz::Options options;
  options.cells = {{paper::Property::kB, 2}};
  options.cases_per_cell = 4;
  options.seed = 31;
  options.lossy = true;
  options.crash = true;
  std::vector<std::string> partials;
  options.on_case_start = [&partials](const std::string& blob) {
    partials.push_back(blob);
  };
  fuzz::Report report = fuzz::run_sweep(options);
  ASSERT_EQ(partials.size(), 4u);
  EXPECT_TRUE(report.ok());
  for (const std::string& blob : partials) {
    EXPECT_NE(blob.find("decmon-fuzz-repro v2"), std::string::npos);
    EXPECT_NE(blob.find("channel "), std::string::npos);
    EXPECT_NE(blob.find("crash "), std::string::npos);
    fuzz::ReproOutcome outcome = fuzz::run_repro(blob);
    EXPECT_FALSE(outcome.violation) << blob;
    EXPECT_TRUE(outcome.all_finished) << blob;
  }
}

}  // namespace
}  // namespace decmon
