// ReliableChannel unit tests: ack/retransmit protocol mechanics driven
// through a scriptable inner network (the test plays postman, deciding which
// envelopes arrive, in what order, and how often). Loss recovery, dedup,
// piggybacked and pure acks, deterministic jitter, and the save/restore
// round-trip used by crash recovery are each pinned down in isolation;
// schedule_fuzz_test covers the protocol under real runtimes.
//
// Send ordering note: the channel arms its retransmit timer (a self-send)
// while assembling a first transmission, so a fresh send emits [timer, data]
// and on_timer emits [re-armed timer, retransmissions...].
#include "decmon/distributed/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "decmon/monitor/token.hpp"
#include "decmon/monitor/wire.hpp"

namespace decmon {
namespace {

/// Captures every send; the test decides what gets "delivered" back into the
/// channel's hook side and controls the clock.
class ScriptNetwork final : public MonitorNetwork {
 public:
  struct Sent {
    MonitorMessage msg;
    DeliveryPerturbation perturbation;
  };

  void send(MonitorMessage msg) override {
    send_perturbed(std::move(msg), DeliveryPerturbation{});
  }
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override {
    sent.push_back(Sent{std::move(msg), perturbation});
  }
  double now() const override { return time; }

  double time = 0.0;
  std::vector<Sent> sent;
};

/// The layer above the channel: records what actually got through.
class RecordingHooks final : public MonitorHooks {
 public:
  void on_local_event(int proc, const Event&, double) override {
    events.push_back(proc);
  }
  void on_local_termination(int proc, double) override {
    terminations.push_back(proc);
  }
  void on_monitor_message(MonitorMessage msg, double) override {
    received.push_back(std::move(msg));
  }

  std::vector<int> events;
  std::vector<int> terminations;
  std::vector<MonitorMessage> received;
};

MonitorMessage make_term(int from, int to, std::uint32_t last_sn = 5) {
  auto payload = std::make_unique<TerminationMessage>();
  payload->process = from;
  payload->last_sn = last_sn;
  return MonitorMessage{from, to, std::move(payload)};
}

const ChannelEnvelope& as_envelope(const ScriptNetwork::Sent& s) {
  EXPECT_EQ(s.msg.payload->tag, ChannelEnvelope::kTag);
  return static_cast<const ChannelEnvelope&>(*s.msg.payload);
}

bool is_timer(const ScriptNetwork::Sent& s) {
  return s.msg.payload && s.msg.payload->tag == ChannelTimer::kTag;
}

/// Take sent[i] out of the script (for handing to on_monitor_message).
MonitorMessage take(ScriptNetwork& net, std::size_t i) {
  MonitorMessage msg = std::move(net.sent.at(i).msg);
  net.sent.erase(net.sent.begin() + static_cast<std::ptrdiff_t>(i));
  return msg;
}

TEST(ReliableChannel, DataIsEnvelopedAndAckedOnDelivery) {
  ScriptNetwork inner;
  RecordingHooks hooks;
  ReliableChannel channel(&inner, 2);
  channel.set_hooks(&hooks);

  channel.send(make_term(0, 1));
  // The retransmit timer (self-send) is armed first, then the envelope.
  ASSERT_EQ(inner.sent.size(), 2u);
  ASSERT_TRUE(is_timer(inner.sent[0]));
  EXPECT_EQ(inner.sent[0].msg.from, 0);
  EXPECT_EQ(inner.sent[0].msg.to, 0);
  EXPECT_GT(inner.sent[0].perturbation.extra_delay, 0.0);
  EXPECT_TRUE(inner.sent[0].perturbation.bypass_fifo);
  const ChannelEnvelope& env = as_envelope(inner.sent[1]);
  EXPECT_EQ(env.seq, 1u);
  EXPECT_NE(env.inner, nullptr);  // first transmission carries the payload
  EXPECT_EQ(channel.unacked_count(0), 1u);

  channel.on_monitor_message(take(inner, 1), inner.now());
  ASSERT_EQ(hooks.received.size(), 1u);
  EXPECT_EQ(hooks.received[0].payload->tag, TerminationMessage::kTag);
  // The receiver immediately pure-acks.
  ASSERT_EQ(inner.sent.size(), 2u);
  const ChannelEnvelope& ack = as_envelope(inner.sent[1]);
  EXPECT_EQ(ack.seq, 0u);
  EXPECT_EQ(ack.ack, 1u);
  EXPECT_EQ(channel.stats(1).acks_sent, 1u);

  channel.on_monitor_message(take(inner, 1), inner.now());
  EXPECT_EQ(channel.unacked_count(0), 0u);
}

TEST(ReliableChannel, LostDataIsRetransmittedUntilAcked) {
  ScriptNetwork inner;
  RecordingHooks hooks;
  ReliableChannelConfig config;
  config.rto = 1.0;
  config.jitter = 0.0;
  ReliableChannel channel(&inner, 2, config);
  channel.set_hooks(&hooks);

  channel.send(make_term(0, 1));
  take(inner, 1);  // the network swallows the data envelope
  MonitorMessage timer = take(inner, 0);
  ASSERT_EQ(timer.payload->tag, ChannelTimer::kTag);

  inner.time = 1.5;
  channel.on_monitor_message(std::move(timer), inner.now());
  // Re-armed timer plus the retransmission: bytes-only, FIFO-exempt.
  ASSERT_EQ(inner.sent.size(), 2u);
  ASSERT_TRUE(is_timer(inner.sent[0]));
  const ChannelEnvelope& retx = as_envelope(inner.sent[1]);
  EXPECT_EQ(retx.seq, 1u);
  EXPECT_EQ(retx.inner, nullptr);
  EXPECT_FALSE(retx.bytes.empty());
  EXPECT_TRUE(inner.sent[1].perturbation.bypass_fifo);
  EXPECT_EQ(channel.stats(0).retransmissions, 1u);
  EXPECT_EQ(channel.stats(0).timer_fires, 1u);

  // The retransmitted copy arrives: decoded from bytes, then acked.
  channel.on_monitor_message(take(inner, 1), inner.now());
  ASSERT_EQ(hooks.received.size(), 1u);
  EXPECT_EQ(hooks.received[0].payload->tag, TerminationMessage::kTag);
  const auto& term =
      static_cast<const TerminationMessage&>(*hooks.received[0].payload);
  EXPECT_EQ(term.process, 0);
  EXPECT_EQ(term.last_sn, 5u);
}

TEST(ReliableChannel, DuplicatesAreSuppressedButReAcked) {
  ScriptNetwork inner;
  RecordingHooks hooks;
  ReliableChannel channel(&inner, 2);
  channel.set_hooks(&hooks);

  channel.send(make_term(0, 1));
  MonitorMessage original = take(inner, 1);
  MonitorMessage duplicate{original.from, original.to,
                           original.payload->clone()};

  channel.on_monitor_message(std::move(original), inner.now());
  channel.on_monitor_message(std::move(duplicate), inner.now());
  EXPECT_EQ(hooks.received.size(), 1u);  // delivered exactly once upward
  EXPECT_EQ(channel.stats(1).dup_suppressed, 1u);
  // Both copies were acked: the second ack covers a possibly lost first.
  EXPECT_EQ(channel.stats(1).acks_sent, 2u);
}

TEST(ReliableChannel, OutOfOrderDataIsForwardedImmediately) {
  ScriptNetwork inner;
  RecordingHooks hooks;
  ReliableChannel channel(&inner, 2);
  channel.set_hooks(&hooks);

  channel.send(make_term(0, 1, 1));
  channel.send(make_term(0, 1, 2));
  // sent: [timer, data seq1, data seq2]; deliver seq2 first.
  ASSERT_EQ(inner.sent.size(), 3u);
  MonitorMessage second = take(inner, 2);
  MonitorMessage first = take(inner, 1);

  channel.on_monitor_message(std::move(second), inner.now());
  ASSERT_EQ(hooks.received.size(), 1u);  // monitors tolerate reordering
  // The ack for the out-of-order arrival is still cumulative: nothing
  // contiguous yet, so it acknowledges 0.
  EXPECT_EQ(as_envelope(inner.sent.back()).ack, 0u);
  channel.on_monitor_message(std::move(first), inner.now());
  ASSERT_EQ(hooks.received.size(), 2u);

  // Now the cumulative ack covers both; delivering it clears the sender's
  // retransmit buffer in one step.
  const ChannelEnvelope& ack = as_envelope(inner.sent.back());
  EXPECT_EQ(ack.seq, 0u);
  EXPECT_EQ(ack.ack, 2u);
  EXPECT_EQ(channel.unacked_count(0), 2u);
  channel.on_monitor_message(take(inner, inner.sent.size() - 1), inner.now());
  EXPECT_EQ(channel.unacked_count(0), 0u);
}

TEST(ReliableChannel, LocalHooksPassThrough) {
  ScriptNetwork inner;
  RecordingHooks hooks;
  ReliableChannel channel(&inner, 3);
  channel.set_hooks(&hooks);
  channel.on_local_event(2, Event{}, 0.0);
  channel.on_local_termination(1, 0.0);
  EXPECT_EQ(hooks.events, std::vector<int>{2});
  EXPECT_EQ(hooks.terminations, std::vector<int>{1});
}

TEST(ReliableChannel, JitterStreamIsDeterministic) {
  auto run = [] {
    ScriptNetwork inner;
    RecordingHooks hooks;
    ReliableChannelConfig config;
    config.seed = 77;
    ReliableChannel channel(&inner, 2, config);
    channel.set_hooks(&hooks);
    std::vector<double> delays;
    auto find_timer = [&inner]() -> std::size_t {
      for (std::size_t i = 0; i < inner.sent.size(); ++i) {
        if (is_timer(inner.sent[i])) return i;
      }
      return inner.sent.size();
    };
    for (int i = 0; i < 8; ++i) {
      channel.send(make_term(0, 1, static_cast<std::uint32_t>(i)));
      const std::size_t t = find_timer();
      if (t == inner.sent.size()) {
        inner.sent.clear();  // timer still armed from the last round
        continue;
      }
      delays.push_back(inner.sent[t].perturbation.extra_delay);
      MonitorMessage timer = take(inner, t);
      inner.sent.clear();  // the network swallows everything else
      inner.time += 100.0;  // far past any backoff deadline
      // Firing the timer draws fresh jitter per retransmitted entry and for
      // the re-armed timer's interval.
      channel.on_monitor_message(std::move(timer), inner.now());
      const std::size_t t2 = find_timer();
      if (t2 != inner.sent.size()) {
        delays.push_back(inner.sent[t2].perturbation.extra_delay);
      }
      inner.sent.clear();
    }
    return delays;
  };
  const std::vector<double> a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

TEST(ReliableChannel, SaveRestoreRoundTripIsByteIdentical) {
  ScriptNetwork inner;
  RecordingHooks hooks;
  ReliableChannel channel(&inner, 3);
  channel.set_hooks(&hooks);

  // Build nontrivial state on node 0: two unacked sends, plus an
  // out-of-order arrival from node 2 (dedup state with a non-empty ooo set).
  channel.send(make_term(0, 1, 1));
  channel.send(make_term(0, 2, 2));
  channel.send(make_term(2, 0, 3));
  channel.send(make_term(2, 0, 4));
  std::size_t i = 0;
  while (i < inner.sent.size()) {  // deliver only the second 2->0 envelope
    const ScriptNetwork::Sent& s = inner.sent[i];
    if (s.msg.payload->tag == ChannelEnvelope::kTag && s.msg.from == 2 &&
        s.msg.to == 0 &&
        static_cast<const ChannelEnvelope&>(*s.msg.payload).seq == 2) {
      channel.on_monitor_message(take(inner, i), inner.now());
    } else {
      ++i;
    }
  }
  ASSERT_EQ(hooks.received.size(), 1u);
  EXPECT_EQ(channel.unacked_count(0), 2u);

  const std::vector<std::uint8_t> blob = channel.save_node(0);
  channel.restore_node(0, blob, /*now=*/7.0);
  EXPECT_EQ(channel.save_node(0), blob);
  EXPECT_EQ(channel.unacked_count(0), 2u);

  // Restoring into a *fresh* channel reproduces the same state too.
  ScriptNetwork inner2;
  ReliableChannel fresh(&inner2, 3);
  fresh.restore_node(0, blob, /*now=*/7.0);
  EXPECT_EQ(fresh.save_node(0), blob);
  EXPECT_EQ(fresh.unacked_count(0), 2u);
  // The restored node re-armed its retransmit timer for the unacked data.
  ASSERT_EQ(inner2.sent.size(), 1u);
  EXPECT_TRUE(is_timer(inner2.sent[0]));
}

TEST(ReliableChannel, RestoreRejectsCorruptBlobs) {
  ScriptNetwork inner;
  RecordingHooks hooks;
  ReliableChannel channel(&inner, 2);
  channel.set_hooks(&hooks);
  channel.send(make_term(0, 1));
  const std::vector<std::uint8_t> blob = channel.save_node(0);
  const std::vector<std::uint8_t> reference = blob;

  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::vector<std::uint8_t> truncated(blob.begin(),
                                        blob.begin() + static_cast<long>(len));
    EXPECT_THROW(channel.restore_node(0, truncated, 0.0), WireError)
        << "truncation to " << len << " bytes accepted";
  }
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    std::vector<std::uint8_t> flipped = blob;
    flipped[pos] ^= 0x40;
    EXPECT_THROW(channel.restore_node(0, flipped, 0.0), WireError)
        << "byte flip at " << pos << " accepted";
  }
  // Every failed restore left the node untouched.
  EXPECT_EQ(channel.save_node(0), reference);
}

}  // namespace
}  // namespace decmon
