// FaultyNetwork unit tests: decorator semantics (what is faulted, what is
// passed through) and determinism of the per-channel decision streams.
#include "decmon/distributed/faulty_network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "decmon/monitor/token.hpp"

namespace decmon {
namespace {

/// Records every perturbed send for inspection.
class RecordingNetwork final : public MonitorNetwork {
 public:
  struct Sent {
    int from;
    int to;
    std::uint8_t tag;
    DeliveryPerturbation perturbation;
  };

  void send(MonitorMessage msg) override {
    send_perturbed(std::move(msg), DeliveryPerturbation{});
  }
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override {
    sent.push_back(Sent{msg.from, msg.to,
                        msg.payload ? msg.payload->tag : std::uint8_t{0},
                        perturbation});
  }
  double now() const override { return 0.0; }

  std::vector<Sent> sent;
};

MonitorMessage make_msg(int from, int to) {
  auto payload = std::make_unique<TerminationMessage>();
  payload->process = from;
  payload->last_sn = 5;
  return MonitorMessage{from, to, std::move(payload)};
}

TEST(FaultyNetwork, NoFaultsIsTransparent) {
  RecordingNetwork inner;
  FaultyNetwork net(&inner, 2, FaultConfig{});
  net.send(make_msg(0, 1));
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(inner.sent[0].perturbation.extra_delay, 0.0);
  EXPECT_FALSE(inner.sent[0].perturbation.bypass_fifo);
  EXPECT_EQ(net.stats().messages, 0u);  // fault machinery never engaged
}

TEST(FaultyNetwork, SelfSendsAreNeverFaulted) {
  RecordingNetwork inner;
  FaultConfig config;
  config.drop_prob = 1.0;
  config.lose_dropped = true;
  FaultyNetwork net(&inner, 2, config);
  net.send(make_msg(1, 1));
  ASSERT_EQ(inner.sent.size(), 1u);  // delivered despite 100% loss
  EXPECT_EQ(net.stats().lost, 0u);
}

TEST(FaultyNetwork, DropAlwaysRedeliversByDefault) {
  RecordingNetwork inner;
  FaultConfig config;
  config.drop_prob = 1.0;
  config.max_drops = 4;
  config.redelivery_delay = 0.5;
  FaultyNetwork net(&inner, 2, config);
  for (int i = 0; i < 50; ++i) net.send(make_msg(0, 1));
  ASSERT_EQ(inner.sent.size(), 50u);  // every message arrives eventually
  EXPECT_GE(net.stats().dropped, 50u);
  EXPECT_EQ(net.stats().lost, 0u);
  for (const auto& s : inner.sent) {
    // Redelivery: k in [1, max_drops] lost transmissions, each paid for in
    // delay, and the final copy bypasses FIFO.
    EXPECT_GE(s.perturbation.extra_delay, 0.5 - 1e-12);
    EXPECT_LE(s.perturbation.extra_delay, 4 * 0.5 + 1e-12);
    EXPECT_TRUE(s.perturbation.bypass_fifo);
  }
}

TEST(FaultyNetwork, LoseDroppedSwallowsMessages) {
  RecordingNetwork inner;
  FaultConfig config;
  config.drop_prob = 1.0;
  config.lose_dropped = true;
  FaultyNetwork net(&inner, 2, config);
  for (int i = 0; i < 10; ++i) net.send(make_msg(0, 1));
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(net.stats().lost, 10u);
}

TEST(FaultyNetwork, DuplicationClonesThePayload) {
  RecordingNetwork inner;
  FaultConfig config;
  config.dup_prob = 1.0;
  FaultyNetwork net(&inner, 2, config);
  net.send(make_msg(0, 1));
  ASSERT_EQ(inner.sent.size(), 2u);
  EXPECT_EQ(net.stats().duplicated, 1u);
  EXPECT_EQ(inner.sent[0].tag, inner.sent[1].tag);
  // The clone is FIFO-exempt (a retransmitted packet); the original is not.
  EXPECT_TRUE(inner.sent[0].perturbation.bypass_fifo);
  EXPECT_FALSE(inner.sent[1].perturbation.bypass_fifo);
}

TEST(FaultyNetwork, StreamsAreDeterministicPerChannel) {
  FaultConfig config;
  config.delay_prob = 0.3;
  config.reorder_prob = 0.3;
  config.dup_prob = 0.2;
  config.drop_prob = 0.2;
  config.seed = 99;

  auto run = [&config] {
    RecordingNetwork inner;
    FaultyNetwork net(&inner, 3, config);
    for (int i = 0; i < 200; ++i) {
      net.send(make_msg(i % 3, (i + 1) % 3));
    }
    return std::make_pair(inner.sent, net.stats());
  };
  auto [sent_a, stats_a] = run();
  auto [sent_b, stats_b] = run();

  EXPECT_EQ(stats_a.delay_spikes, stats_b.delay_spikes);
  EXPECT_EQ(stats_a.reordered, stats_b.reordered);
  EXPECT_EQ(stats_a.duplicated, stats_b.duplicated);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  ASSERT_EQ(sent_a.size(), sent_b.size());
  for (std::size_t i = 0; i < sent_a.size(); ++i) {
    EXPECT_EQ(sent_a[i].perturbation.extra_delay,
              sent_b[i].perturbation.extra_delay);
    EXPECT_EQ(sent_a[i].perturbation.bypass_fifo,
              sent_b[i].perturbation.bypass_fifo);
  }
}

TEST(FaultyNetwork, ChannelsAreIndependent) {
  // Interleaving traffic on another channel must not shift a channel's
  // fault stream (this is what makes ThreadRuntime fault schedules stable
  // run to run despite wall-clock nondeterminism).
  FaultConfig config;
  config.delay_prob = 0.5;
  config.drop_prob = 0.3;
  config.seed = 5;

  RecordingNetwork inner_a;
  FaultyNetwork net_a(&inner_a, 3, config);
  for (int i = 0; i < 40; ++i) net_a.send(make_msg(0, 1));

  RecordingNetwork inner_b;
  FaultyNetwork net_b(&inner_b, 3, config);
  for (int i = 0; i < 40; ++i) {
    net_b.send(make_msg(0, 1));
    net_b.send(make_msg(2, 1));  // interleaved cross-traffic
  }

  std::vector<RecordingNetwork::Sent> b_01;
  for (const auto& s : inner_b.sent) {
    if (s.from == 0) b_01.push_back(s);
  }
  ASSERT_EQ(inner_a.sent.size(), b_01.size());
  for (std::size_t i = 0; i < b_01.size(); ++i) {
    EXPECT_EQ(inner_a.sent[i].perturbation.extra_delay,
              b_01[i].perturbation.extra_delay);
    EXPECT_EQ(inner_a.sent[i].perturbation.bypass_fifo,
              b_01[i].perturbation.bypass_fifo);
  }
}

TEST(FaultyNetwork, LoseProbSwallowsMessagesForever) {
  // True loss (the mode the reliable channel exists to survive): no
  // redelivery is ever scheduled, unlike drop_prob's bounded-loss model.
  RecordingNetwork inner;
  FaultConfig config;
  config.lose_prob = 1.0;
  FaultyNetwork net(&inner, 2, config);
  for (int i = 0; i < 10; ++i) net.send(make_msg(0, 1));
  EXPECT_TRUE(inner.sent.empty());
  EXPECT_EQ(net.stats().lost, 10u);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(FaultyNetwork, LossStreamIsDeterministic) {
  // Which messages die is a pure function of {seed, config, channel
  // ordinal}: re-running a lossy config reproduces the exact same carnage,
  // down to the surviving messages' perturbations.
  FaultConfig config;
  config.delay_prob = 0.4;
  config.lose_prob = 0.3;
  config.seed = 21;

  auto run = [&config] {
    RecordingNetwork inner;
    FaultyNetwork net(&inner, 2, config);
    for (int i = 0; i < 100; ++i) net.send(make_msg(0, 1));
    return std::make_pair(inner.sent, net.stats());
  };
  auto [sent_a, stats_a] = run();
  auto [sent_b, stats_b] = run();

  EXPECT_GT(stats_a.lost, 0u);
  EXPECT_LT(stats_a.lost, 100u);
  EXPECT_EQ(stats_a.lost, stats_b.lost);
  ASSERT_EQ(sent_a.size(), sent_b.size());
  for (std::size_t i = 0; i < sent_a.size(); ++i) {
    EXPECT_EQ(sent_a[i].perturbation.extra_delay,
              sent_b[i].perturbation.extra_delay);
  }
}

TEST(FaultyNetwork, PayloadsWithoutCloneAreNotDuplicated) {
  struct OpaquePayload : NetPayload {
    OpaquePayload() : NetPayload(77) {}
    // No clone() override: duplication must degrade to a plain send.
  };
  RecordingNetwork inner;
  FaultConfig config;
  config.dup_prob = 1.0;
  FaultyNetwork net(&inner, 2, config);
  net.send(MonitorMessage{0, 1, std::make_unique<OpaquePayload>()});
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(net.stats().duplicated, 0u);
}

}  // namespace
}  // namespace decmon
