// Multi-threaded hammer for the paper synthesis cache (build_automaton and
// the zero-copy shared_property admission path it now rides on).
//
// The sharded service warms every shard's catalog from this one process-
// wide memo, so hits must be safe from many threads at once (shared-lock
// lookups; shared_property bumps a refcount, build_automaton copies out)
// while misses insert and clear() swaps the whole table out from under
// them. The shared posture adds a lifetime clause: an artifact handed out
// before a clear() must stay fully usable afterwards -- outstanding
// shared_ptrs keep it alive. Run under TSan this is the test that falsifies
// the locking; in a plain build it still checks the returned automata are
// complete, independently owned copies and the hit/miss counters add up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "decmon/decmon.hpp"

namespace decmon {
namespace {

struct Key {
  paper::Property prop;
  int n;
};

const Key kKeys[] = {
    {paper::Property::kA, 3}, {paper::Property::kB, 3},
    {paper::Property::kC, 4}, {paper::Property::kD, 5},
    {paper::Property::kE, 4}, {paper::Property::kF, 3},
};

/// Exercise the automaton enough to catch a torn or shallow copy: walk the
/// dispatch table from the initial state over every registered letter.
void check_automaton(const MonitorAutomaton& m, int n) {
  ASSERT_GT(m.num_states(), 0);
  const AtomSet all = (AtomSet{1} << (2 * n)) - 1;
  int q = m.initial_state();
  for (AtomSet letter : {AtomSet{0}, all, AtomSet{1}, all >> 1}) {
    const auto next = m.step(q, letter);
    ASSERT_TRUE(next.has_value());
    q = *next;
  }
}

TEST(SynthesisCacheHammer, ConcurrentHitsMissesAndClears) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 300;

  paper::synthesis_cache_clear();
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &go, &failures] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kItersPerThread; ++i) {
        const Key& key = kKeys[(t + i) % std::size(kKeys)];
        AtomRegistry reg = paper::make_registry(key.n);
        MonitorAutomaton m = paper::build_automaton(key.prop, key.n, reg);
        if (m.num_states() == 0 || !m.step(m.initial_state(), 0)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // One antagonist clearing the table mid-hammer: readers must never see a
  // dangling entry, and post-clear calls just become misses.
  threads.emplace_back([&go] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < 20; ++i) {
      paper::synthesis_cache_clear();
      std::this_thread::yield();
    }
  });
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every returned automaton is an independent copy: mutating one obtained
  // now cannot affect what the cache serves next.
  AtomRegistry reg = paper::make_registry(3);
  MonitorAutomaton mine = paper::build_automaton(paper::Property::kA, 3, reg);
  const int states_before = mine.num_states();
  mine.add_state(Verdict::kUnknown);
  MonitorAutomaton again = paper::build_automaton(paper::Property::kA, 3, reg);
  EXPECT_EQ(again.num_states(), states_before);
}

TEST(SynthesisCacheHammer, CountersAccountForEveryCall) {
  paper::synthesis_cache_clear();
  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 100;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &go] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kItersPerThread; ++i) {
        const Key& key = kKeys[(t + i) % std::size(kKeys)];
        AtomRegistry reg = paper::make_registry(key.n);
        MonitorAutomaton m = paper::build_automaton(key.prop, key.n, reg);
        check_automaton(m, key.n);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  // No clear() ran, so every call was either a hit or a miss; misses can
  // exceed the key count (racing builders both count a miss) but stay
  // bounded by the thread count per key.
  const paper::SynthesisCacheStats stats = paper::synthesis_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_GE(stats.misses, std::size(kKeys));
  EXPECT_LE(stats.misses,
            static_cast<std::uint64_t>(kThreads) * std::size(kKeys));
  EXPECT_GT(stats.hits, 0u);
}

TEST(SynthesisCacheHammer, ClearNeverInvalidatesOutstandingArtifacts) {
  // The shared-posture clear() race: threads admit via shared_property and
  // keep USING their artifacts while an antagonist clears the memo and the
  // AOT registry in a loop. A cleared table only drops the caches' own
  // references -- every outstanding shared_ptr must keep its artifact
  // (registry + automaton + compiled property) fully alive.
  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 150;
  paper::synthesis_cache_clear();
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &go, &failures] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::vector<SharedProperty> held;
      for (int i = 0; i < kItersPerThread; ++i) {
        const Key& key = kKeys[(t + i) % std::size(kKeys)];
        AtomRegistry reg = paper::make_registry(key.n);
        SharedProperty art = paper::shared_property(key.prop, key.n, reg);
        held.push_back(art);  // outlive many antagonist clears
        // Touch every layer of the artifact, including entries admitted
        // dozens of clears ago.
        const SharedProperty& old = held[held.size() / 2];
        if (old->property().num_processes() < 2 ||
            !old->automaton().step(old->automaton().initial_state(), 0) ||
            old->registry().num_processes() < 2) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&go, &stop] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!stop.load(std::memory_order_acquire)) {
      paper::synthesis_cache_clear();
      CompiledPropertyRegistry::instance().clear();
      std::this_thread::yield();
    }
  });
  go.store(true, std::memory_order_release);
  for (int t = 0; t < kThreads; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace decmon
