// LatencyHistogram: HDR-style bucketing invariants -- exact small values,
// ~3% relative resolution above the linear band, merge == union, quantile
// monotonicity and clamping to observed extremes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "decmon/service/latency_histogram.hpp"

namespace decmon::service {
namespace {

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, QuantileEdges) {
  // The exact boundary semantics the service report relies on: an empty
  // histogram answers 0 for *every* q (including the out-of-range ones), a
  // populated one clamps q<=0 to the observed min and q>=1 to the observed
  // max -- never to a bucket representative outside [min, max].
  LatencyHistogram empty;
  for (double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(empty.quantile(q), 0u) << "q=" << q;
  }

  LatencyHistogram one;
  one.record(123456);  // far above the exact band: bucket midpoints differ
  for (double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(one.quantile(q), 123456u) << "q=" << q;
  }

  LatencyHistogram h;
  h.record(7);
  h.record(1000);
  h.record(987654321);
  EXPECT_EQ(h.quantile(-0.5), 7u);
  EXPECT_EQ(h.quantile(0.0), 7u);
  EXPECT_EQ(h.quantile(1.0), 987654321u);
  EXPECT_EQ(h.quantile(1.5), 987654321u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Band 0 stores [0, kSubBuckets) one value per bucket: every quantile of
  // a small-valued distribution is an actually-observed value.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LatencyHistogram::kSubBuckets - 1);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), LatencyHistogram::kSubBuckets - 1);
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 14u);
  EXPECT_LE(p50, 17u);
}

TEST(LatencyHistogram, RelativeResolutionHolds) {
  // A single large sample must come back within one sub-bucket width
  // (2^-kSubBits relative error) of the recorded value.
  for (std::uint64_t v :
       {std::uint64_t{31}, std::uint64_t{32}, std::uint64_t{63},
        std::uint64_t{64}, std::uint64_t{1000}, std::uint64_t{123456},
        std::uint64_t{987654321}, std::uint64_t{3} << 40,
        std::uint64_t{1} << 62}) {
    LatencyHistogram h;
    h.record(v);
    const std::uint64_t got = h.quantile(0.5);
    const double rel =
        v ? std::abs(static_cast<double>(got) - static_cast<double>(v)) /
                static_cast<double>(v)
          : 0.0;
    EXPECT_LE(rel, 1.0 / LatencyHistogram::kSubBuckets)
        << "value " << v << " came back as " << got;
  }
}

TEST(LatencyHistogram, QuantilesOfUniformRange) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100000u);
  // 3% bucket resolution plus discretization: allow 5%.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.50)), 50000.0, 2500.0);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.95)), 95000.0, 4750.0);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 4950.0);
  EXPECT_EQ(h.quantile(1.0), 100000u);
  EXPECT_NEAR(h.mean(), 50000.5, 1.0);
}

TEST(LatencyHistogram, QuantileIsMonotone) {
  LatencyHistogram h;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.record(x % 1000000);
  }
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    prev = v;
  }
}

TEST(LatencyHistogram, MergeEqualsUnion) {
  LatencyHistogram a, b, all;
  std::uint64_t x = 2463534242u;
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    const std::uint64_t v = x % 500000;
    (i % 2 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

}  // namespace
}  // namespace decmon::service
