// MonitoringService behaviour: admission, drain, stats aggregation, work
// stealing, affinity, failure isolation, and the keep_outcomes=false
// large-fleet posture.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "decmon/decmon.hpp"

namespace decmon::service {
namespace {

SessionSpec cell_spec(paper::Property prop, int n, std::uint64_t seed) {
  SessionSpec spec;
  spec.property = prop;
  spec.num_processes = n;
  spec.trace_seed = seed;
  return spec;
}

TEST(MonitoringService, SubmitDrainCollect) {
  ServiceConfig config;
  config.num_shards = 2;
  MonitoringService svc(config);
  for (int i = 0; i < 16; ++i) {
    svc.submit(cell_spec(paper::Property::kA, 3, 100 + i));
  }
  svc.drain();

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.admitted, 16u);
  EXPECT_EQ(st.completed, 16u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.program_events, 0u);
  EXPECT_GT(st.monitor_messages, 0u);
  EXPECT_EQ(st.latency_ns.count(), 16u);
  EXPECT_EQ(st.queue_ns.count(), 16u);
  std::uint64_t per_shard_total = 0;
  for (std::uint64_t c : st.per_shard_completed) per_shard_total += c;
  EXPECT_EQ(per_shard_total, 16u);

  const auto outcomes = svc.outcomes();
  ASSERT_EQ(outcomes.size(), 16u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].id, i);
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_TRUE(outcomes[i].result.verdict.all_finished);
    EXPECT_GT(outcomes[i].result.program_events, 0u);
    EXPECT_GE(outcomes[i].latency_ms, outcomes[i].queue_ms);
    EXPECT_GE(outcomes[i].shard, 0);
    EXPECT_LT(outcomes[i].shard, 2);
  }
}

TEST(MonitoringService, DrainOnEmptyServiceReturns) {
  MonitoringService svc;
  svc.drain();
  EXPECT_EQ(svc.stats().completed, 0u);
  EXPECT_TRUE(svc.outcomes().empty());
}

TEST(MonitoringService, WorkStealingDrainsASkewedQueue) {
  // Pin every session's affinity to shard 0 of 4: the other three shards
  // have nothing of their own and must steal to participate. With 32
  // multi-millisecond sessions queued on one shard, at least one steal is
  // effectively certain; every session must complete regardless of where
  // it ran.
  ServiceConfig config;
  config.num_shards = 4;
  MonitoringService svc(config);
  for (int i = 0; i < 32; ++i) {
    SessionSpec spec = cell_spec(paper::Property::kD, 3, 500 + i);
    spec.affinity = 0;
    svc.submit(spec);
  }
  svc.drain();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 32u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.stolen, 0u);
  std::set<int> shards_used;
  for (const SessionOutcome& out : svc.outcomes()) {
    EXPECT_TRUE(out.ok) << out.error;
    shards_used.insert(out.shard);
    if (out.shard != 0) {
      EXPECT_TRUE(out.stolen);
    }
  }
  EXPECT_GT(shards_used.size(), 1u);
}

TEST(MonitoringService, StealDisabledRespectsAffinity) {
  ServiceConfig config;
  config.num_shards = 3;
  config.steal = false;
  MonitoringService svc(config);
  for (int i = 0; i < 9; ++i) {
    SessionSpec spec = cell_spec(paper::Property::kA, 3, 900 + i);
    spec.affinity = 1;
    svc.submit(spec);
  }
  svc.drain();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 9u);
  EXPECT_EQ(st.stolen, 0u);
  ASSERT_EQ(st.per_shard_completed.size(), 3u);
  EXPECT_EQ(st.per_shard_completed[0], 0u);
  EXPECT_EQ(st.per_shard_completed[1], 9u);
  EXPECT_EQ(st.per_shard_completed[2], 0u);
  for (const SessionOutcome& out : svc.outcomes()) {
    EXPECT_EQ(out.shard, 1);
    EXPECT_FALSE(out.stolen);
  }
}

TEST(MonitoringService, FailedSessionIsIsolated) {
  // n=1 has no paper property: the worker's construction throws, the
  // session is reported failed, and its neighbours are untouched.
  MonitoringService svc;
  svc.submit(cell_spec(paper::Property::kA, 3, 1));
  svc.submit(cell_spec(paper::Property::kA, 1, 2));  // invalid: n < 2
  svc.submit(cell_spec(paper::Property::kA, 3, 3));
  svc.drain();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.failed, 1u);
  const auto outcomes = svc.outcomes();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[1].error.empty());
  EXPECT_TRUE(outcomes[2].ok);
}

TEST(MonitoringService, KeepOutcomesFalseKeepsScalars) {
  ServiceConfig config;
  config.num_shards = 2;
  config.keep_outcomes = false;
  MonitoringService svc(config);
  for (int i = 0; i < 8; ++i) {
    svc.submit(cell_spec(paper::Property::kD, 3, 40 + i));
  }
  svc.drain();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_GT(st.program_events, 0u);
  for (const SessionOutcome& out : svc.outcomes()) {
    EXPECT_TRUE(out.ok);
    EXPECT_GT(out.result.program_events, 0u);       // scalars survive
    EXPECT_TRUE(out.result.verdict.per_monitor.empty());  // bulk dropped
  }
}

TEST(MonitoringService, VerdictCountersMatchOutcomes) {
  ServiceConfig config;
  config.num_shards = 2;
  MonitoringService svc(config);
  for (int i = 0; i < 12; ++i) {
    svc.submit(cell_spec(i % 2 ? paper::Property::kB : paper::Property::kD, 3,
                         700 + i));
  }
  svc.drain();
  const ServiceStats st = svc.stats();
  std::uint64_t violations = 0, satisfactions = 0, events = 0, messages = 0;
  for (const SessionOutcome& out : svc.outcomes()) {
    if (out.result.verdict.violated()) ++violations;
    if (out.result.verdict.satisfied()) ++satisfactions;
    events += out.result.program_events;
    messages += out.result.monitor_messages;
  }
  EXPECT_EQ(st.violations, violations);
  EXPECT_EQ(st.satisfactions, satisfactions);
  EXPECT_EQ(st.program_events, events);
  EXPECT_EQ(st.monitor_messages, messages);
}

}  // namespace
}  // namespace decmon::service
