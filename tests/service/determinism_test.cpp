// Cross-shard determinism: a session's outcome is a pure function of its
// SessionSpec. The same seeded workload grid -- the equivalence-golden grid
// (properties A-F, n in {3, 5}, three trace seeds) -- is run three ways:
//
//   1. directly through MonitorSession::run (what the equivalence goldens
//      pin byte-by-byte),
//   2. through a 1-shard service (serial, admission order),
//   3. through a 4-shard service with stealing (concurrent, arbitrary
//      placement and interleaving),
//
// and every per-session verdict set and counter must be identical. Shard
// count, placement, and stealing may change WHEN a session runs, never
// WHAT it computes -- this is the property that lets the fleet scale out
// without re-validating the monitor.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "decmon/decmon.hpp"

namespace decmon::service {
namespace {

std::string verdict_set_string(const std::set<Verdict>& vs) {
  std::string s;
  for (Verdict v : vs) {
    switch (v) {
      case Verdict::kUnknown: s += '?'; break;
      case Verdict::kTrue: s += 'T'; break;
      case Verdict::kFalse: s += 'F'; break;
    }
  }
  return s;
}

struct Fingerprint {
  std::string verdicts;
  std::uint64_t program_events = 0;
  std::uint64_t monitor_messages = 0;
  std::uint64_t global_views_created = 0;
  std::uint64_t token_hops = 0;

  static Fingerprint of(const RunResult& r) {
    Fingerprint fp;
    fp.verdicts = verdict_set_string(r.verdict.verdicts);
    fp.program_events = r.program_events;
    fp.monitor_messages = r.monitor_messages;
    fp.global_views_created = r.verdict.aggregate.global_views_created;
    fp.token_hops = r.verdict.aggregate.token_hops;
    return fp;
  }
};

// The equivalence-golden grid (tests/monitor/equivalence_golden_test.cpp):
// same properties, process counts, seeds, and run configuration.
std::vector<SessionSpec> golden_grid() {
  std::vector<SessionSpec> specs;
  for (paper::Property prop : paper::kAllProperties) {
    for (int n : {3, 5}) {
      for (std::uint64_t seed : {1, 2, 3}) {
        SessionSpec spec;
        spec.property = prop;
        spec.num_processes = n;
        spec.trace_seed = seed;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

std::vector<Fingerprint> run_through_service(
    const std::vector<SessionSpec>& specs, int shards) {
  ServiceConfig config;
  config.num_shards = shards;
  MonitoringService svc(config);
  for (const SessionSpec& spec : specs) svc.submit(spec);
  svc.drain();
  const auto outcomes = svc.outcomes();
  std::vector<Fingerprint> fps;
  fps.reserve(outcomes.size());
  for (const SessionOutcome& out : outcomes) {
    EXPECT_TRUE(out.ok) << out.error;
    fps.push_back(Fingerprint::of(out.result));
  }
  return fps;
}

TEST(CrossShardDeterminism, OneShardSerialMatchesFourShardsConcurrent) {
  const std::vector<SessionSpec> specs = golden_grid();

  // Reference: the facade, exactly as the goldens drive it.
  std::vector<Fingerprint> direct;
  for (const SessionSpec& spec : specs) {
    AtomRegistry reg = paper::make_registry(spec.num_processes);
    MonitorAutomaton automaton =
        paper::build_automaton(spec.property, spec.num_processes, reg);
    MonitorSession session(std::move(reg), std::move(automaton));
    TraceParams params = paper::experiment_params(
        spec.property, spec.num_processes, spec.trace_seed, spec.comm_mu,
        spec.comm_enabled, spec.internal_events);
    SystemTrace trace = generate_trace(params);
    force_final_all_true(trace);
    direct.push_back(Fingerprint::of(session.run(trace)));
  }

  const std::vector<Fingerprint> serial = run_through_service(specs, 1);
  const std::vector<Fingerprint> sharded = run_through_service(specs, 4);

  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(sharded.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(paper::name(specs[i].property) + " n=" +
                 std::to_string(specs[i].num_processes) + " seed=" +
                 std::to_string(specs[i].trace_seed));
    EXPECT_EQ(serial[i].verdicts, direct[i].verdicts);
    EXPECT_EQ(serial[i].program_events, direct[i].program_events);
    EXPECT_EQ(serial[i].monitor_messages, direct[i].monitor_messages);
    EXPECT_EQ(serial[i].global_views_created, direct[i].global_views_created);
    EXPECT_EQ(serial[i].token_hops, direct[i].token_hops);

    EXPECT_EQ(sharded[i].verdicts, serial[i].verdicts);
    EXPECT_EQ(sharded[i].program_events, serial[i].program_events);
    EXPECT_EQ(sharded[i].monitor_messages, serial[i].monitor_messages);
    EXPECT_EQ(sharded[i].global_views_created,
              serial[i].global_views_created);
    EXPECT_EQ(sharded[i].token_hops, serial[i].token_hops);
  }
}

// Streaming posture over the same golden grid: the direct facade run and
// both service shapes must agree on everything (the streaming run is just as
// deterministic as the plain one), and its verdict sets must match the
// non-streaming reference -- GC never changes what is monitored, only how
// much history is retained while doing it.
TEST(CrossShardDeterminism, StreamingPostureIsDeterministicAcrossShards) {
  std::vector<SessionSpec> specs = golden_grid();
  for (SessionSpec& spec : specs) {
    spec.options.streaming = true;
    spec.options.gc_interval = 4;
  }

  std::vector<Fingerprint> direct;
  std::vector<std::string> plain_verdicts;
  for (const SessionSpec& spec : specs) {
    AtomRegistry reg = paper::make_registry(spec.num_processes);
    MonitorAutomaton automaton =
        paper::build_automaton(spec.property, spec.num_processes, reg);
    MonitorSession session(std::move(reg), std::move(automaton));
    TraceParams params = paper::experiment_params(
        spec.property, spec.num_processes, spec.trace_seed, spec.comm_mu,
        spec.comm_enabled, spec.internal_events);
    SystemTrace trace = generate_trace(params);
    force_final_all_true(trace);
    plain_verdicts.push_back(
        verdict_set_string(session.run(trace).verdict.verdicts));
    direct.push_back(Fingerprint::of(session.run(trace, {}, spec.options)));
  }

  const std::vector<Fingerprint> serial = run_through_service(specs, 1);
  const std::vector<Fingerprint> sharded = run_through_service(specs, 4);

  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(sharded.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(paper::name(specs[i].property) + " n=" +
                 std::to_string(specs[i].num_processes) + " seed=" +
                 std::to_string(specs[i].trace_seed));
    // Verdict equivalence across postures (the PR's acceptance criterion).
    EXPECT_EQ(direct[i].verdicts, plain_verdicts[i]);
    // Full determinism within the streaming posture.
    EXPECT_EQ(serial[i].verdicts, direct[i].verdicts);
    EXPECT_EQ(serial[i].program_events, direct[i].program_events);
    EXPECT_EQ(serial[i].monitor_messages, direct[i].monitor_messages);
    EXPECT_EQ(serial[i].global_views_created, direct[i].global_views_created);
    EXPECT_EQ(serial[i].token_hops, direct[i].token_hops);
    EXPECT_EQ(sharded[i].verdicts, serial[i].verdicts);
    EXPECT_EQ(sharded[i].program_events, serial[i].program_events);
    EXPECT_EQ(sharded[i].monitor_messages, serial[i].monitor_messages);
    EXPECT_EQ(sharded[i].global_views_created,
              serial[i].global_views_created);
    EXPECT_EQ(sharded[i].token_hops, serial[i].token_hops);
  }
}

TEST(CrossShardDeterminism, AotAdmittedShardsMatchUncachedSynthesis) {
  // The 4-shard service warms every catalog through shared_property, which
  // with a cold memo serves the golden grid straight from the generated
  // CompiledPropertyRegistry. Reference legs here deliberately bypass every
  // cache (build_automaton_uncached), so agreement proves the AOT artifacts
  // are bit-identical to fresh synthesis through the full sharded path.
  const std::vector<SessionSpec> specs = golden_grid();

  std::vector<Fingerprint> uncached;
  for (const SessionSpec& spec : specs) {
    AtomRegistry reg = paper::make_registry(spec.num_processes);
    MonitorAutomaton automaton = paper::build_automaton_uncached(
        spec.property, spec.num_processes, reg);
    MonitorSession session(std::move(reg), std::move(automaton));
    TraceParams params = paper::experiment_params(
        spec.property, spec.num_processes, spec.trace_seed, spec.comm_mu,
        spec.comm_enabled, spec.internal_events);
    SystemTrace trace = generate_trace(params);
    force_final_all_true(trace);
    uncached.push_back(Fingerprint::of(session.run(trace)));
  }

  paper::synthesis_cache_clear();  // force shard admission through the registry
  const auto before = CompiledPropertyRegistry::instance().stats();
  const std::vector<Fingerprint> sharded = run_through_service(specs, 4);
  const auto after = CompiledPropertyRegistry::instance().stats();
  // Every golden formula was served ahead-of-time at least once. The grid
  // has 11 distinct formulas, not 12: A and C coincide at n=3 (both reduce
  // to G((P0.p) U (P1.p && P2.p))), so they share one admission key.
  EXPECT_GE(after.hits, before.hits + 11);
  EXPECT_EQ(after.mismatches, before.mismatches);

  ASSERT_EQ(sharded.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(paper::name(specs[i].property) + " n=" +
                 std::to_string(specs[i].num_processes) + " seed=" +
                 std::to_string(specs[i].trace_seed));
    EXPECT_EQ(sharded[i].verdicts, uncached[i].verdicts);
    EXPECT_EQ(sharded[i].program_events, uncached[i].program_events);
    EXPECT_EQ(sharded[i].monitor_messages, uncached[i].monitor_messages);
    EXPECT_EQ(sharded[i].global_views_created, uncached[i].global_views_created);
    EXPECT_EQ(sharded[i].token_hops, uncached[i].token_hops);
  }
}

TEST(CrossShardDeterminism, RepeatedShardedRunsAgree) {
  // Two concurrent 3-shard runs of a comm-heavy cell family: placement and
  // interleaving differ run to run, fingerprints must not.
  std::vector<SessionSpec> specs;
  for (std::uint64_t seed = 10; seed < 22; ++seed) {
    SessionSpec spec;
    spec.property = paper::Property::kD;
    spec.num_processes = 5;
    spec.trace_seed = seed;
    spec.sim.coalesce = CoalesceMode::kTransit;
    spec.options.wire_accounting = WireAccounting::kSampled;
    specs.push_back(spec);
  }
  const std::vector<Fingerprint> a = run_through_service(specs, 3);
  const std::vector<Fingerprint> b = run_through_service(specs, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("seed=" + std::to_string(specs[i].trace_seed));
    EXPECT_EQ(a[i].verdicts, b[i].verdicts);
    EXPECT_EQ(a[i].program_events, b[i].program_events);
    EXPECT_EQ(a[i].monitor_messages, b[i].monitor_messages);
    EXPECT_EQ(a[i].global_views_created, b[i].global_views_created);
    EXPECT_EQ(a[i].token_hops, b[i].token_hops);
  }
}

}  // namespace
}  // namespace decmon::service
