// The paper's case study as a command-line tool (§5.1-5.2): a network of
// devices runs trace-driven programs (propositions p and q per device,
// normal-distribution wait times, broadcast communication events) monitored
// for one of the six benchmark properties A-F.
//
//   device_network [property A-F] [processes 2-5] [commMu seconds|off]
//                  [seed]
//
// e.g.  device_network C 4 9 1   -- property C, 4 devices, CommMu = 9 s.
// Prints the run's verdicts and the paper's overhead metrics.
#include <cstdlib>
#include <iostream>
#include <string>

#include "decmon/decmon.hpp"

int main(int argc, char** argv) {
  using namespace decmon;

  paper::Property prop = paper::Property::kC;
  int n = 4;
  double comm_mu = 3.0;
  bool comm_enabled = true;
  std::uint64_t seed = 1;

  if (argc > 1) {
    const std::string p = argv[1];
    if (p.size() != 1 || p[0] < 'A' || p[0] > 'F') {
      std::cerr << "usage: " << argv[0]
                << " [A-F] [2-5] [commMu|off] [seed]\n";
      return 2;
    }
    prop = static_cast<paper::Property>(p[0] - 'A');
  }
  if (argc > 2) n = std::atoi(argv[2]);
  if (argc > 3) {
    const std::string c = argv[3];
    if (c == "off" || c == "no") {
      comm_enabled = false;
    } else {
      comm_mu = std::atof(c.c_str());
    }
  }
  if (argc > 4) seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  if (n < 2 || n > 16) {
    std::cerr << "process count out of range\n";
    return 2;
  }

  // The paper's workload: Evt ~ N(3, 1), Comm ~ N(commMu, 1), and traces
  // designed so that a satisfying path to a final state exists.
  TraceParams params =
      paper::experiment_params(prop, n, seed, comm_mu, comm_enabled);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);

  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
  std::cout << "property " << paper::name(prop) << "(" << n
            << "): " << paper::formula_text(prop, n) << "\n";
  std::cout << "automaton: " << automaton.num_states() << " states, "
            << automaton.count_outgoing() << " outgoing + "
            << automaton.count_self_loops() << " self-loop transitions\n";

  MonitorSession session(std::move(reg), std::move(automaton));
  RunResult r = session.run(trace);

  std::cout << "\n--- run (seed " << seed << ", CommMu = "
            << (comm_enabled ? std::to_string(comm_mu) : std::string("off"))
            << ") ---\n";
  std::cout << "program events:           " << r.program_events << "\n";
  std::cout << "application messages:     " << r.app_messages << "\n";
  std::cout << "monitoring messages:      " << r.monitor_messages << "\n";
  std::cout << "total global views:       " << r.total_global_views << "\n";
  std::cout << "avg delayed events:       " << r.average_delayed_events
            << "\n";
  std::cout << "program time:             " << r.program_end << " s\n";
  std::cout << "monitor drain time:       " << r.monitor_end << " s\n";
  std::cout << "delay % per global view:   "
            << r.delay_time_percent_per_view() << "\n";
  std::cout << "verdicts: ";
  for (Verdict v : r.verdict.verdicts) std::cout << to_string(v) << ' ';
  std::cout << "\n";
  if (r.verdict.first_violation_time >= 0) {
    std::cout << "first violation declared at t="
              << r.verdict.first_violation_time << " s\n";
  }
  if (r.verdict.first_satisfaction_time >= 0) {
    std::cout << "first satisfaction declared at t="
              << r.verdict.first_satisfaction_time << " s\n";
  }

  // Centralized baseline for comparison (Table 6.1's trade-off, made
  // concrete).
  RunResult c = session.run_centralized(trace);
  std::cout << "\n--- centralized baseline ---\n";
  std::cout << "monitoring messages:      " << c.monitor_messages << "\n";
  std::cout << "explored cuts at center:  " << c.total_global_views << "\n";
  return r.verdict.all_finished ? 0 : 1;
}
