// Quickstart: the paper's running example (Fig. 2.1 / 2.3 / 3.1).
//
// Two processes:
//   P1: send(P2); x1 = 5; x1 = 10; recv(m2);
//   P2: recv(m1); x2 = 15; x2 = 20; send(P1);
// monitored for
//   psi = G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10))).
//
// Because e1_2 (x1 = 10) and e2_1 (x2 = 15) are concurrent, different
// linearizations give different verdicts: paths through <e1_1, x2 < 15>
// violate psi, while the path that raises x2 first stays inconclusive. The
// decentralized monitors report exactly this verdict *set*.
#include <iostream>

#include "decmon/decmon.hpp"

int main() {
  using namespace decmon;

  // 1. Declare the processes' variables and parse the property.
  AtomRegistry registry(2);
  registry.declare_variable(0, "x1");
  registry.declare_variable(1, "x2");
  const std::string psi = "G((x1 >= 5) -> ((x2 >= 15) U (x1 == 10)))";
  MonitorSession session = MonitorSession::from_text(psi, std::move(registry));

  std::cout << "property: " << psi << "\n";
  std::cout << "monitor automaton: " << session.automaton().num_states()
            << " states, " << session.automaton().num_transitions()
            << " transitions\n\n";
  std::cout << session.automaton().to_dot(&session.registry()) << "\n";

  // 2. Script the program of Fig. 2.1 as a trace (x1 and x2 are variable 0
  //    of their respective processes).
  SystemTrace trace;
  trace.procs.resize(2);
  trace.procs[0].initial = {0};
  trace.procs[1].initial = {0};
  auto internal = [](double wait, std::int64_t value) {
    TraceAction a;
    a.kind = TraceAction::Kind::kInternal;
    a.wait = wait;
    a.state = {value};
    return a;
  };
  auto comm = [](double wait) {
    TraceAction a;
    a.kind = TraceAction::Kind::kComm;
    a.wait = wait;
    return a;
  };
  trace.procs[0].actions = {comm(1.0), internal(1.0, 5), internal(1.0, 10)};
  trace.procs[1].actions = {internal(2.0, 15), internal(1.0, 20), comm(1.0)};

  // 3. Run under the deterministic simulator with decentralized monitors.
  RunResult result = session.run(trace);

  std::cout << "program events:     " << result.program_events << "\n";
  std::cout << "monitor messages:   " << result.monitor_messages << "\n";
  std::cout << "global views:       " << result.total_global_views << "\n";
  std::cout << "verdict set:        ";
  for (Verdict v : result.verdict.verdicts) std::cout << to_string(v) << ' ';
  std::cout << "\n";

  // 4. Compare with the omniscient oracle over the full computation lattice.
  OracleResult oracle = session.oracle(trace);
  std::cout << "oracle verdict set: ";
  for (Verdict v : oracle.verdicts) std::cout << to_string(v) << ' ';
  std::cout << "  (" << oracle.lattice_nodes << " consistent cuts)\n";

  return result.verdict.all_finished ? 0 : 1;
}
