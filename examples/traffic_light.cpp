// Distributed traffic-light safety monitoring.
//
// Two controllers manage the lights of one junction, exchanging heartbeats.
// A glitch makes both directions show green at overlapping (logical) times.
// Because the controllers are asynchronous, no single node can see the
// overlap directly -- but the decentralized monitors detect that a
// consistent global state with green0 && green1 exists and raise the
// violation of
//     safety:   G(!(P0.green && P1.green))
// while a second session checks the liveness
//     progress: F(P0.green) -- the east-west direction eventually serves.
#include <iostream>

#include "decmon/decmon.hpp"

namespace {

decmon::TraceAction set_light(double wait, bool green) {
  decmon::TraceAction a;
  a.kind = decmon::TraceAction::Kind::kInternal;
  a.wait = wait;
  a.state = {green ? 1 : 0};
  return a;
}

decmon::TraceAction heartbeat(double wait) {
  decmon::TraceAction a;
  a.kind = decmon::TraceAction::Kind::kComm;
  a.wait = wait;
  return a;
}

}  // namespace

int main() {
  using namespace decmon;

  // The scripted incident: controller 0 goes green at t=2 and -- due to a
  // stuck relay -- only drops it at t=8; controller 1, which heartbeats on
  // its own schedule, goes green at t=5. The green phases overlap in real
  // time, and no heartbeat separates them causally.
  SystemTrace trace;
  trace.procs.resize(2);
  trace.procs[0].initial = {0};
  trace.procs[1].initial = {0};
  trace.procs[0].actions = {
      heartbeat(1.0),      // t=1: heartbeat to peer
      set_light(1.0, true),   // t=2: green 0 on
      set_light(6.0, false),  // t=8: green 0 off (stuck!)
      heartbeat(0.5),      // t=8.5
  };
  trace.procs[1].actions = {
      set_light(5.0, true),   // t=5: green 1 on -- overlaps with green 0
      set_light(2.0, false),  // t=7
      heartbeat(1.0),      // t=8
  };

  AtomRegistry safety_reg(2);
  safety_reg.declare_variable(0, "green");
  safety_reg.declare_variable(1, "green");
  MonitorSession safety = MonitorSession::from_text(
      "G(!(P0.green && P1.green))", std::move(safety_reg));

  RunResult r = safety.run(trace);
  std::cout << "safety  G(!(green0 && green1)):  ";
  for (Verdict v : r.verdict.verdicts) std::cout << to_string(v) << ' ';
  std::cout << "\n";
  if (r.verdict.violated()) {
    std::cout << "  -> VIOLATION: a consistent global state with both\n"
              << "     directions green exists (detected at t="
              << r.verdict.first_violation_time << "s, "
              << r.monitor_messages << " monitor messages)\n";
  }

  AtomRegistry live_reg(2);
  live_reg.declare_variable(0, "green");
  live_reg.declare_variable(1, "green");
  MonitorSession progress =
      MonitorSession::from_text("F(P0.green)", std::move(live_reg));
  RunResult p = progress.run(trace);
  std::cout << "liveness F(green0):              ";
  for (Verdict v : p.verdict.verdicts) std::cout << to_string(v) << ' ';
  std::cout << "\n";
  if (p.verdict.satisfied()) {
    std::cout << "  -> satisfied at t=" << p.verdict.first_satisfaction_time
              << "s\n";
  }

  // Sanity: the oracle agrees the overlap is reachable.
  OracleResult oracle = safety.oracle(trace);
  std::cout << "oracle confirms violation: "
            << (oracle.verdicts.count(Verdict::kFalse) ? "yes" : "no")
            << " (" << oracle.lattice_nodes << " consistent cuts)\n";

  return r.verdict.violated() && p.verdict.satisfied() ? 0 : 1;
}
