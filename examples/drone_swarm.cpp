// Live monitoring of a drone swarm under the real-thread runtime.
//
// A leader (P0) and three wing drones coordinate a mission over real
// threads with message latency -- the setting of the paper's future-work
// discussion (ad-hoc swarms without NTP). Each drone has two propositions:
//   armed    -- motors armed
//   airborne -- off the ground
// Mission rule (the paper's property-D shape):
//   G( (all armed) U (all airborne) )
// "every drone stays armed until the whole formation is airborne". A wing
// drone that disarms early (low battery) violates the rule; the
// decentralized monitors catch it while the mission is still flying.
#include <atomic>
#include <iostream>

#include "decmon/decmon.hpp"

namespace {

decmon::TraceAction set_state(double wait, bool armed, bool airborne) {
  decmon::TraceAction a;
  a.kind = decmon::TraceAction::Kind::kInternal;
  a.wait = wait;
  a.state = {armed ? 1 : 0, airborne ? 1 : 0};
  return a;
}

decmon::TraceAction telemetry(double wait) {
  decmon::TraceAction a;
  a.kind = decmon::TraceAction::Kind::kComm;
  a.wait = wait;
  return a;
}

}  // namespace

int main() {
  using namespace decmon;
  constexpr int kDrones = 4;

  // Mission script: everyone arms around t=1, lifts off around t=4..6;
  // drone 3 disarms at t=3 (battery fault) before the formation is up.
  SystemTrace trace;
  trace.procs.resize(kDrones);
  for (int d = 0; d < kDrones; ++d) {
    // Drones sit armed on the pad (the rule's "until" starts satisfied).
    trace.procs[static_cast<std::size_t>(d)].initial = {1, 0};
    auto& acts = trace.procs[static_cast<std::size_t>(d)].actions;
    acts.push_back(set_state(1.0 + 0.1 * d, true, false));  // pre-flight
    acts.push_back(telemetry(0.5));
    if (d == 3) {
      acts.push_back(set_state(1.5, false, false));  // battery fault!
      acts.push_back(telemetry(0.5));
    } else {
      acts.push_back(set_state(3.0 + 0.2 * d, true, true));  // lift off
      acts.push_back(telemetry(0.5));
    }
  }

  // Variables: 0 = armed, 1 = airborne. Property D shape over "armed" and
  // "airborne" instead of p and q.
  AtomRegistry reg(kDrones);
  for (int d = 0; d < kDrones; ++d) {
    reg.declare_variable(d, "armed");
    reg.declare_variable(d, "airborne");
  }
  std::string all_armed;
  std::string all_airborne;
  for (int d = 0; d < kDrones; ++d) {
    if (d) {
      all_armed += " && ";
      all_airborne += " && ";
    }
    all_armed += "P" + std::to_string(d) + ".armed";
    all_airborne += "P" + std::to_string(d) + ".airborne";
  }
  const std::string rule = "G((" + all_armed + ") U (" + all_airborne + "))";
  std::cout << "mission rule: " << rule << "\n";

  FormulaPtr f = parse_ltl(rule, reg);
  MonitorAutomaton automaton = synthesize_monitor(f);
  CompiledProperty property(&automaton, &reg);

  // Real threads: one per drone, telemetry with latency.
  ThreadConfig config;
  config.time_scale = 0.002;  // 1 trace second = 2 ms wall
  ThreadRuntime runtime(trace, &reg, config);
  DecentralizedMonitor monitors(
      &property, &runtime, initial_letters_of(reg, runtime.initial_states()));
  std::atomic<int> alarms{0};
  for (int d = 0; d < kDrones; ++d) {
    monitors.monitor(d).set_verdict_callback(
        [&alarms, d](Verdict v, double now) {
          if (v == Verdict::kFalse) {
            ++alarms;
            std::cout << "  [drone " << d << "] VIOLATION detected at t="
                      << now << "s (wall)\n";
          }
        });
  }
  runtime.set_hooks(&monitors);
  runtime.run();

  SystemVerdict verdict = monitors.result();
  std::cout << "verdict set: ";
  for (Verdict v : verdict.verdicts) std::cout << to_string(v) << ' ';
  std::cout << "\nall monitors drained: "
            << (verdict.all_finished ? "yes" : "no") << "\n"
            << "monitor messages on the wire: "
            << runtime.monitor_messages_sent() << "\n";

  // The disarm-before-liftoff must be caught on every schedule.
  return verdict.violated() && verdict.all_finished ? 0 : 1;
}
