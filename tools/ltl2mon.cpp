// ltl2mon: synthesize an LTL3 monitor automaton from a formula and print
// its statistics, monitorability class, and (optionally) its DOT graph --
// the command-line face of the synthesis pipeline (the role the external
// monitor generator of [1] plays in the paper's toolchain).
//
//   ltl2mon <processes> <formula> [--dot] [--no-minimize] [--nba]
//
// Variables follow the P<k>.<name> convention; comparison atoms may use any
// variable declared through a formula occurrence, e.g.:
//   ltl2mon 2 "G((P0.p) U (P1.p && P1.q))" --dot
#include <cstring>
#include <iostream>
#include <string>

#include "decmon/decmon.hpp"

int main(int argc, char** argv) {
  using namespace decmon;
  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " <processes> <formula> [--dot] [--no-minimize] [--nba]\n";
    return 2;
  }
  const int n = std::atoi(argv[1]);
  if (n < 1 || n > 32) {
    std::cerr << "process count out of range\n";
    return 2;
  }
  const std::string text = argv[2];
  bool dot = false;
  bool nba = false;
  SynthesisOptions options;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) dot = true;
    else if (std::strcmp(argv[i], "--no-minimize") == 0) options.minimize = false;
    else if (std::strcmp(argv[i], "--nba") == 0) nba = true;
    else {
      std::cerr << "unknown flag " << argv[i] << "\n";
      return 2;
    }
  }

  AtomRegistry reg(n);
  FormulaPtr formula;
  try {
    formula = parse_ltl(text, reg);
  } catch (const ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "formula:        " << formula->to_string(&reg) << "\n";
  std::cout << "atoms:          " << reg.num_atoms();
  for (const Atom& a : reg.atoms()) std::cout << "  [" << a.name << "]";
  std::cout << "\n";

  if (nba) {
    Nba buchi = ltl_to_nba(formula);
    std::cout << "NBA states:     " << buchi.num_states << "\n";
    if (dot) std::cout << buchi.to_dot(&reg);
  }

  MonitorAutomaton m = synthesize_monitor(formula, options);
  std::cout << "monitor states: " << m.num_states() << "\n";
  std::cout << "transitions:    " << m.count_total() << " ("
            << m.count_outgoing() << " outgoing, " << m.count_self_loops()
            << " self-loops)\n";
  std::cout << "class:          " << to_string(classify(m)) << "\n";
  AutomatonAnalysis analysis = analyze_automaton(m);
  std::cout << "init distance:  ";
  const int d = analysis.distance_to_verdict[static_cast<std::size_t>(
      m.initial_state())];
  if (d == AutomatonAnalysis::kUnreachable) {
    std::cout << "no verdict reachable\n";
  } else {
    std::cout << d << " transition(s) to the nearest verdict\n";
  }
  if (dot) std::cout << m.to_dot(&reg);
  return 0;
}
