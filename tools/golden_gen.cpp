// Regenerates tests/monitor/equivalence_goldens.inc: the recorded behaviour
// of the decentralized monitor on the paper's properties A-F at n in {3, 5}
// over three trace seeds. The golden table pins verdict sets and the
// monitor_messages / global_views_created / token_hops counters so hot-path
// refactors can prove byte-identical behaviour against the seed
// implementation.
//
// Usage: golden_gen > tests/monitor/equivalence_goldens.inc
//
// The workload must stay in lockstep with RunGolden() in
// tests/monitor/equivalence_golden_test.cpp.
#include <cstdio>
#include <string>

#include "decmon/decmon.hpp"

using namespace decmon;

namespace {

std::string verdict_set_string(const std::set<Verdict>& vs) {
  std::string s;
  for (Verdict v : vs) {
    switch (v) {
      case Verdict::kUnknown: s += '?'; break;
      case Verdict::kTrue: s += 'T'; break;
      case Verdict::kFalse: s += 'F'; break;
    }
  }
  return s;
}

}  // namespace

int main() {
  std::printf(
      "// Recorded goldens for the monitor hot path. Regenerate with:\n"
      "//   build/tools/golden_gen > tests/monitor/equivalence_goldens.inc\n"
      "// Columns: property, n, seed, verdict set, monitor_messages,\n"
      "// global_views_created, token_hops.\n");
  for (paper::Property prop : paper::kAllProperties) {
    for (int n : {3, 5}) {
      for (std::uint64_t seed : {2015ull, 2016ull, 2017ull}) {
        AtomRegistry reg = paper::make_registry(n);
        MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
        MonitorSession session(std::move(reg), std::move(automaton));
        TraceParams params = paper::experiment_params(prop, n, seed);
        SystemTrace trace = generate_trace(params);
        force_final_all_true(trace);
        RunResult run = session.run(trace);
        std::printf("{\"%s\", %d, %llu, \"%s\", %llu, %llu, %llu},\n",
                    paper::name(prop).c_str(), n,
                    static_cast<unsigned long long>(seed),
                    verdict_set_string(run.verdict.verdicts).c_str(),
                    static_cast<unsigned long long>(run.monitor_messages),
                    static_cast<unsigned long long>(
                        run.verdict.aggregate.global_views_created),
                    static_cast<unsigned long long>(
                        run.verdict.aggregate.token_hops));
      }
    }
  }
  return 0;
}
