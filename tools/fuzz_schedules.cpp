// Differential schedule fuzzing driver (see DESIGN.md §7 and
// EXPERIMENTS.md): sweep seeded fault configurations over property/process
// cells, check every decentralized run against the lattice oracle, and dump
// self-contained repros for any contract violation.
//
// Usage:
//   fuzz_schedules [--seed N] [--cases N] [--cells A:3,B:2,E:3]
//                  [--internal-events N] [--lose-dropped]
//                  [--repro-dir DIR] [--repro FILE]
//
// --repro FILE re-runs a dumped repro and prints its outcome (exit 1 if the
// violation reproduces). Everything else runs a sweep (exit 1 on any
// violation).
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "decmon/distributed/schedule_fuzz.hpp"

namespace {

using decmon::fuzz::Cell;
using decmon::fuzz::Options;

int usage() {
  std::cerr
      << "usage: fuzz_schedules [--seed N] [--cases N] [--cells A:3,B:2]\n"
         "                      [--internal-events N] [--lose-dropped]\n"
         "                      [--repro-dir DIR] [--repro FILE]\n";
  return 2;
}

std::vector<Cell> parse_cells(const std::string& text) {
  std::vector<Cell> cells;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::runtime_error("bad cell " + item + " (want PROP:N)");
    }
    Cell cell;
    bool found = false;
    const std::string name = item.substr(0, colon);
    for (decmon::paper::Property p : decmon::paper::kAllProperties) {
      if (decmon::paper::name(p) == name) {
        cell.property = p;
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("unknown property " + name);
    cell.num_processes = std::stoi(item.substr(colon + 1));
    if (cell.num_processes < 2) {
      throw std::runtime_error("cell needs >= 2 processes: " + item);
    }
    cells.push_back(cell);
  }
  if (cells.empty()) throw std::runtime_error("empty cell list");
  return cells;
}

int run_one_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fuzz_schedules: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const decmon::fuzz::ReproOutcome outcome =
      decmon::fuzz::run_repro(buf.str());
  std::cout << "repro: " << path << "\n"
            << "violation: " << (outcome.violation ? "yes" : "no") << "\n";
  if (outcome.violation) {
    std::cout << "kind: " << outcome.kind << "\ndetail: " << outcome.detail
              << "\n";
  }
  std::cout << "all_finished: " << (outcome.all_finished ? 1 : 0) << "\n";
  return outcome.violation ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string repro_dir;
  std::string repro_file;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--seed") {
        options.seed = std::stoull(value());
      } else if (arg == "--cases") {
        options.cases_per_cell = std::stoi(value());
      } else if (arg == "--cells") {
        options.cells = parse_cells(value());
      } else if (arg == "--internal-events") {
        options.internal_events = std::stoi(value());
      } else if (arg == "--lose-dropped") {
        options.lose_dropped = true;
      } else if (arg == "--repro-dir") {
        repro_dir = value();
      } else if (arg == "--repro") {
        repro_file = value();
      } else {
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "fuzz_schedules: " << e.what() << "\n";
    return usage();
  }

  if (!repro_file.empty()) return run_one_repro(repro_file);

  const decmon::fuzz::Report report =
      decmon::fuzz::run_sweep(options, &std::cout);
  std::cout << "cases " << report.cases << " skipped " << report.skipped
            << " violations " << report.violation_count << "\n"
            << "faults: messages " << report.faults.messages
            << " delay_spikes " << report.faults.delay_spikes << " reordered "
            << report.faults.reordered << " duplicated "
            << report.faults.duplicated << " dropped " << report.faults.dropped
            << " lost " << report.faults.lost << "\n";

  int written = 0;
  for (const auto& v : report.violations) {
    std::cout << "violation [" << decmon::paper::name(v.property) << "/n="
              << v.num_processes << " " << decmon::fuzz::to_string(v.mode)
              << "] " << v.kind << ": " << v.detail << "\n";
    if (v.repro.empty()) continue;
    if (!repro_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(repro_dir, ec);
      const std::string path =
          repro_dir + "/repro-" + std::to_string(written) + ".txt";
      std::ofstream out(path);
      out << v.repro;
      if (out) {
        std::cout << "  repro written to " << path << "\n";
      } else {
        std::cerr << "fuzz_schedules: failed to write " << path << "\n";
      }
    } else if (written == 0) {
      std::cout << "---- first repro ----\n" << v.repro << "---------------\n";
    }
    ++written;
  }
  return report.ok() ? 0 : 1;
}
