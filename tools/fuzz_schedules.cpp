// Differential schedule fuzzing driver (see DESIGN.md §7 and
// EXPERIMENTS.md): sweep seeded fault configurations over property/process
// cells, check every decentralized run against the lattice oracle, and dump
// self-contained repros for any contract violation.
//
// Usage:
//   fuzz_schedules [--seed N] [--cases N] [--cells A:3,B:2,E:3]
//                  [--internal-events N] [--lose-dropped]
//                  [--reliable-channel] [--lossy] [--crash] [--gc]
//                  [--cell-timeout-sec N]
//                  [--repro-dir DIR] [--repro FILE]
//
// --repro FILE re-runs a dumped repro and prints its outcome (exit 1 if the
// violation reproduces). Everything else runs a sweep (exit 1 on any
// violation). --crash kills one seeded monitor node per case and restarts it
// from its checkpoint; --lossy makes the faulty network truly swallow
// messages (survivable only with --reliable-channel / --crash).
// --gc runs every case in the bounded-memory streaming posture (history GC
// at an aggressive cadence) so trimming is raced against every fault class.
// --cell-timeout-sec arms a wall-clock watchdog: if any single case runs
// longer than the budget, the partial repro of the stuck case is dumped
// (to --repro-dir if set, else stderr) and the process exits 3 instead of
// hanging CI.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "decmon/distributed/schedule_fuzz.hpp"

namespace {

using decmon::fuzz::Cell;
using decmon::fuzz::Options;

int usage() {
  std::cerr
      << "usage: fuzz_schedules [--seed N] [--cases N] [--cells A:3,B:2]\n"
         "                      [--internal-events N] [--lose-dropped]\n"
         "                      [--reliable-channel] [--lossy] [--crash]\n"
         "                      [--gc]\n"
         "                      [--cell-timeout-sec N]\n"
         "                      [--repro-dir DIR] [--repro FILE]\n";
  return 2;
}

/// Wall-clock watchdog over the sweep. run_sweep reports each case's partial
/// repro through on_case_start; a polling thread checks how long the current
/// case has been running and, past the budget, dumps that blob and exits
/// with status 3 -- a hung case must surface as a reproducible artifact, not
/// as a CI timeout with no evidence.
class Watchdog {
 public:
  Watchdog(int timeout_sec, std::string repro_dir)
      : timeout_(timeout_sec), repro_dir_(std::move(repro_dir)) {
    thread_ = std::thread([this] { run(); });
  }

  ~Watchdog() {
    {
      std::scoped_lock lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void case_started(const std::string& partial_repro) {
    std::scoped_lock lock(mutex_);
    current_ = partial_repro;
    started_ = std::chrono::steady_clock::now();
  }

 private:
  void run() {
    std::unique_lock lock(mutex_);
    while (!done_) {
      cv_.wait_for(lock, std::chrono::milliseconds(200));
      if (done_ || current_.empty()) continue;
      const auto elapsed = std::chrono::steady_clock::now() - started_;
      if (elapsed < std::chrono::seconds(timeout_)) continue;
      std::cerr << "fuzz_schedules: case exceeded " << timeout_
                << "s wall-clock budget\n";
      if (!repro_dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(repro_dir_, ec);
        const std::string path = repro_dir_ + "/timeout-partial-repro.txt";
        std::ofstream out(path);
        out << current_;
        out.flush();
        std::cerr << "fuzz_schedules: partial repro written to " << path
                  << "\n";
      } else {
        std::cerr << "---- partial repro of stuck case ----\n"
                  << current_ << "-------------------------------------\n";
      }
      // The stuck case may hold locks or be livelocked; a clean shutdown is
      // not available. _Exit skips atexit/destructors on purpose.
      std::_Exit(3);
    }
  }

  const int timeout_;
  const std::string repro_dir_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::string current_;
  std::chrono::steady_clock::time_point started_;
  bool done_ = false;
  std::thread thread_;
};

std::vector<Cell> parse_cells(const std::string& text) {
  std::vector<Cell> cells;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::runtime_error("bad cell " + item + " (want PROP:N)");
    }
    Cell cell;
    bool found = false;
    const std::string name = item.substr(0, colon);
    for (decmon::paper::Property p : decmon::paper::kAllProperties) {
      if (decmon::paper::name(p) == name) {
        cell.property = p;
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("unknown property " + name);
    cell.num_processes = std::stoi(item.substr(colon + 1));
    if (cell.num_processes < 2) {
      throw std::runtime_error("cell needs >= 2 processes: " + item);
    }
    cells.push_back(cell);
  }
  if (cells.empty()) throw std::runtime_error("empty cell list");
  return cells;
}

int run_one_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fuzz_schedules: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const decmon::fuzz::ReproOutcome outcome =
      decmon::fuzz::run_repro(buf.str());
  std::cout << "repro: " << path << "\n"
            << "violation: " << (outcome.violation ? "yes" : "no") << "\n";
  if (outcome.violation) {
    std::cout << "kind: " << outcome.kind << "\ndetail: " << outcome.detail
              << "\n";
  }
  std::cout << "all_finished: " << (outcome.all_finished ? 1 : 0) << "\n";
  return outcome.violation ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string repro_dir;
  std::string repro_file;
  int cell_timeout_sec = 0;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--seed") {
        options.seed = std::stoull(value());
      } else if (arg == "--cases") {
        options.cases_per_cell = std::stoi(value());
      } else if (arg == "--cells") {
        options.cells = parse_cells(value());
      } else if (arg == "--internal-events") {
        options.internal_events = std::stoi(value());
      } else if (arg == "--lose-dropped") {
        options.lose_dropped = true;
      } else if (arg == "--reliable-channel") {
        options.reliable_channel = true;
      } else if (arg == "--lossy") {
        options.lossy = true;
      } else if (arg == "--crash") {
        options.crash = true;
      } else if (arg == "--gc") {
        options.gc = true;
      } else if (arg == "--cell-timeout-sec") {
        cell_timeout_sec = std::stoi(value());
        if (cell_timeout_sec < 1) {
          throw std::runtime_error("--cell-timeout-sec wants a positive value");
        }
      } else if (arg == "--repro-dir") {
        repro_dir = value();
      } else if (arg == "--repro") {
        repro_file = value();
      } else {
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "fuzz_schedules: " << e.what() << "\n";
    return usage();
  }

  if (!repro_file.empty()) return run_one_repro(repro_file);

  std::unique_ptr<Watchdog> watchdog;
  if (cell_timeout_sec > 0) {
    watchdog = std::make_unique<Watchdog>(cell_timeout_sec, repro_dir);
    options.on_case_start = [&watchdog](const std::string& partial) {
      watchdog->case_started(partial);
    };
  }

  const decmon::fuzz::Report report =
      decmon::fuzz::run_sweep(options, &std::cout);
  watchdog.reset();  // disarm before the (fast) reporting tail
  std::cout << "cases " << report.cases << " skipped " << report.skipped
            << " violations " << report.violation_count << "\n"
            << "faults: messages " << report.faults.messages
            << " delay_spikes " << report.faults.delay_spikes << " reordered "
            << report.faults.reordered << " duplicated "
            << report.faults.duplicated << " dropped " << report.faults.dropped
            << " lost " << report.faults.lost << "\n";
  if (options.reliable_channel || options.crash || options.lossy) {
    std::cout << "channel: data_sent " << report.channel.data_sent
              << " retransmissions " << report.channel.retransmissions
              << " acks_sent " << report.channel.acks_sent
              << " dup_suppressed " << report.channel.dup_suppressed
              << " timer_fires " << report.channel.timer_fires << "\n";
  }
  if (options.crash) {
    std::cout << "crash: crashes " << report.crash.crashes << " restarts "
              << report.crash.restarts << " checkpoints "
              << report.crash.checkpoints_taken << " checkpoint_bytes "
              << report.crash.checkpoint_bytes << " dropped_while_down "
              << report.crash.dropped_while_down << " journal_replayed "
              << report.crash.journal_replayed << "\n";
  }

  int written = 0;
  for (const auto& v : report.violations) {
    std::cout << "violation [" << decmon::paper::name(v.property) << "/n="
              << v.num_processes << " " << decmon::fuzz::to_string(v.mode)
              << "] " << v.kind << ": " << v.detail << "\n";
    if (v.repro.empty()) continue;
    if (!repro_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(repro_dir, ec);
      const std::string path =
          repro_dir + "/repro-" + std::to_string(written) + ".txt";
      std::ofstream out(path);
      out << v.repro;
      if (out) {
        std::cout << "  repro written to " << path << "\n";
      } else {
        std::cerr << "fuzz_schedules: failed to write " << path << "\n";
      }
    } else if (written == 0) {
      std::cout << "---- first repro ----\n" << v.repro << "---------------\n";
    }
    ++written;
  }
  return report.ok() ? 0 : 1;
}
