// load_gen: open-loop load generator for the sharded monitoring service
// (DESIGN.md §11).
//
// Drives independent monitored sessions (paper cells A-F over the seeded
// trace generator) into a MonitoringService at a configured arrival rate
// and reports steady-state throughput plus verdict-latency percentiles.
// Open loop: arrival times are drawn up front (exponential inter-arrivals,
// i.e. a Poisson process, seeded and replayable) and submissions happen on
// that schedule regardless of completions -- when the fleet cannot keep
// up, the backlog shows up as queue latency instead of silently throttling
// the offered load (the coordinated-omission trap a closed loop falls
// into).
//
//   load_gen [--sessions N] [--shards K] [--rate R] [--props A,D,F]
//            [--n PROCS] [--comm-mu MU] [--no-comm] [--internal-events E]
//            [--seed S] [--no-steal] [--streaming] [--gc-interval G]
//            [--max-views V] [--max-rss-mb B] [--quick] [--json FILE]
//
//   --rate R        offered load in sessions/second; 0 = saturation (submit
//                   everything immediately; measures capacity, default)
//   --props         comma-separated subset of A-F, assigned round-robin
//   --streaming     run sessions in the bounded-memory posture (history GC,
//                   DESIGN.md §12); --gc-interval tunes the sweep cadence
//   --max-views V   per-monitor view cap; sessions that hit it count as
//                   "overflowed", not failed
//   --max-rss-mb B  assert the process's peak RSS (VmHWM) stays under B
//   --retry-failed N  resubmit failed sessions (never cap overflows) up to N
//                   rounds with capped exponential backoff between rounds;
//                   the JSON report then carries "retried" (resubmissions)
//                   and "recovered" (failed sessions whose retry succeeded)
//   --quick         CI smoke defaults: 64 sessions, 2 shards, A+D at n=3,
//                   rate 400/s
//   --json          also emit a flat "name": number JSON report
//
// Exit status: 0 all sessions completed and drained (cap overflows are
// intentional and stay 0; with --retry-failed, transient failures that
// recover on a retry round count as completed), 1 any session failed
// unrecovered or the RSS budget was exceeded, 2 usage errors.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "decmon/decmon.hpp"

namespace {

using namespace decmon;
using Clock = std::chrono::steady_clock;

struct Options {
  int sessions = 512;
  int shards = 4;
  double rate = 0.0;  ///< sessions per second; 0 = saturation
  std::vector<paper::Property> props = {paper::Property::kD};
  int n = 5;
  double comm_mu = 3.0;
  bool comm_enabled = true;
  int internal_events = 25;
  std::uint64_t seed = 2015;
  bool steal = true;
  bool streaming = false;
  std::uint32_t gc_interval = 0;  ///< 0 = monitor default
  std::size_t max_views = 0;      ///< 0 = unbounded
  double max_rss_mb = 0.0;        ///< 0 = no budget check
  int retry_failed = 0;           ///< retry rounds for failed sessions
  std::string json_path;
};

bool parse_props(const std::string& arg, std::vector<paper::Property>* out) {
  out->clear();
  for (std::size_t i = 0; i < arg.size(); ++i) {
    if (arg[i] == ',') continue;
    bool found = false;
    for (paper::Property p : paper::kAllProperties) {
      if (paper::name(p) == std::string(1, arg[i])) {
        out->push_back(p);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return !out->empty();
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Peak resident set (VmHWM) of this process in MB; 0 when /proc is absent.
double peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atof(line.c_str() + 6) / 1024.0;  // value is in kB
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "load_gen: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--sessions") == 0) {
      opt.sessions = std::atoi(next(a));
    } else if (std::strcmp(a, "--shards") == 0) {
      opt.shards = std::atoi(next(a));
    } else if (std::strcmp(a, "--rate") == 0) {
      opt.rate = std::atof(next(a));
    } else if (std::strcmp(a, "--props") == 0) {
      if (!parse_props(next(a), &opt.props)) {
        std::fprintf(stderr, "load_gen: --props wants e.g. A,D,F\n");
        return 2;
      }
    } else if (std::strcmp(a, "--n") == 0) {
      opt.n = std::atoi(next(a));
    } else if (std::strcmp(a, "--comm-mu") == 0) {
      opt.comm_mu = std::atof(next(a));
    } else if (std::strcmp(a, "--no-comm") == 0) {
      opt.comm_enabled = false;
    } else if (std::strcmp(a, "--internal-events") == 0) {
      opt.internal_events = std::atoi(next(a));
    } else if (std::strcmp(a, "--seed") == 0) {
      opt.seed = std::strtoull(next(a), nullptr, 10);
    } else if (std::strcmp(a, "--no-steal") == 0) {
      opt.steal = false;
    } else if (std::strcmp(a, "--streaming") == 0) {
      opt.streaming = true;
    } else if (std::strcmp(a, "--gc-interval") == 0) {
      opt.gc_interval = static_cast<std::uint32_t>(std::atoi(next(a)));
    } else if (std::strcmp(a, "--max-views") == 0) {
      opt.max_views = static_cast<std::size_t>(std::atoll(next(a)));
    } else if (std::strcmp(a, "--max-rss-mb") == 0) {
      opt.max_rss_mb = std::atof(next(a));
    } else if (std::strcmp(a, "--retry-failed") == 0) {
      opt.retry_failed = std::atoi(next(a));
    } else if (std::strcmp(a, "--json") == 0) {
      opt.json_path = next(a);
    } else if (std::strcmp(a, "--quick") == 0) {
      opt.sessions = 64;
      opt.shards = 2;
      opt.props = {paper::Property::kA, paper::Property::kD};
      opt.n = 3;
      opt.rate = 400.0;
    } else {
      std::fprintf(
          stderr,
          "usage: load_gen [--sessions N] [--shards K] [--rate R] "
          "[--props A,D,F] [--n PROCS] [--comm-mu MU] [--no-comm] "
          "[--internal-events E] [--seed S] [--no-steal] [--streaming] "
          "[--gc-interval G] [--max-views V] [--max-rss-mb B] "
          "[--retry-failed N] [--quick] [--json FILE]\n");
      return 2;
    }
  }
  if (opt.sessions < 1 || opt.shards < 1 || opt.n < 2 || opt.rate < 0.0 ||
      opt.retry_failed < 0) {
    std::fprintf(stderr, "load_gen: invalid parameters\n");
    return 2;
  }

  // The open-loop schedule, drawn before the clock starts.
  std::vector<double> arrival_s(static_cast<std::size_t>(opt.sessions), 0.0);
  if (opt.rate > 0.0) {
    SplitMix64 rng(derive_seed(opt.seed, 0xA881));
    double t = 0.0;
    for (auto& at : arrival_s) {
      // Inverse-CDF exponential; u in (0, 1].
      const double u =
          (static_cast<double>(rng.next() >> 11) + 1.0) / 9007199254740993.0;
      t += -std::log(u) / opt.rate;
      at = t;
    }
  }

  service::ServiceConfig config;
  config.num_shards = opt.shards;
  config.steal = opt.steal;
  // Open-loop runs can be very large, so outcomes are normally dropped; the
  // retry posture needs per-session ok/failed verdicts to pick resubmits.
  config.keep_outcomes = opt.retry_failed > 0;
  service::MonitoringService svc(config);

  auto make_spec = [&](int i) {
    service::SessionSpec spec;
    spec.property = opt.props[static_cast<std::size_t>(i) % opt.props.size()];
    spec.num_processes = opt.n;
    spec.trace_seed = opt.seed + static_cast<std::uint64_t>(i);
    spec.comm_mu = opt.comm_mu;
    spec.comm_enabled = opt.comm_enabled;
    spec.internal_events = opt.internal_events;
    spec.sim.coalesce = CoalesceMode::kTransit;
    spec.options.wire_accounting = WireAccounting::kSampled;
    spec.options.streaming = opt.streaming;
    if (opt.gc_interval > 0) spec.options.gc_interval = opt.gc_interval;
    spec.options.max_views = opt.max_views;
    return spec;
  };
  // Which load-schedule index a session id executes (ids are unique across
  // retries; retried sessions map back to their original index).
  std::unordered_map<service::SessionId, int> index_of;

  std::printf("load_gen: %d sessions over %d shard(s), %s, props ",
              opt.sessions, opt.shards,
              opt.rate > 0 ? "open-loop" : "saturation");
  for (paper::Property p : opt.props) std::printf("%s", paper::name(p).c_str());
  std::printf(", n=%d, seed=%llu\n", opt.n,
              static_cast<unsigned long long>(opt.seed));
  if (opt.rate > 0) std::printf("load_gen: offered rate %.1f sessions/s\n",
                                opt.rate);

  const auto t0 = Clock::now();
  for (int i = 0; i < opt.sessions; ++i) {
    if (opt.rate > 0.0) {
      const auto due =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(
                       arrival_s[static_cast<std::size_t>(i)]));
      std::this_thread::sleep_until(due);  // never waits on completions
    }
    index_of[svc.submit(make_spec(i))] = i;
  }
  const double submit_ms = ms_since(t0);
  svc.drain();

  // Retry rounds: resubmit every session whose LATEST attempt failed (cap
  // overflows are intentional outcomes and are never retried), waiting out
  // a capped exponential backoff between rounds so a transient resource
  // squeeze has time to clear. Outcomes are ordered by id and retry ids are
  // newer than everything they retry, so a per-index scan in order always
  // ends on the latest attempt.
  std::uint64_t retried = 0;
  std::uint64_t recovered = 0;
  std::size_t unrecovered = 0;
  if (opt.retry_failed > 0) {
    auto failed_indexes = [&]() {
      std::vector<char> failed_now(static_cast<std::size_t>(opt.sessions), 0);
      for (const service::SessionOutcome& oc : svc.outcomes()) {
        const auto it = index_of.find(oc.id);
        if (it == index_of.end()) continue;
        failed_now[static_cast<std::size_t>(it->second)] =
            !oc.ok && !oc.overflowed;
      }
      std::vector<int> out;
      for (int i = 0; i < opt.sessions; ++i) {
        if (failed_now[static_cast<std::size_t>(i)]) out.push_back(i);
      }
      return out;
    };
    std::vector<int> pending = failed_indexes();
    const std::size_t initially_failed = pending.size();
    for (int round = 1; round <= opt.retry_failed && !pending.empty();
         ++round) {
      const double backoff_ms =
          std::min(100.0 * double(1u << (round - 1)), 2000.0);
      std::printf(
          "load_gen: retry round %d/%d, %zu failed session(s), backoff "
          "%.0f ms\n",
          round, opt.retry_failed, pending.size(), backoff_ms);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      for (int i : pending) {
        index_of[svc.submit(make_spec(i))] = i;
        ++retried;
      }
      svc.drain();
      pending = failed_indexes();
    }
    unrecovered = pending.size();
    recovered = initially_failed - unrecovered;
  }
  const double wall_ms = ms_since(t0);

  const service::ServiceStats st = svc.stats();
  const double wall_s = wall_ms / 1e3;
  const double sessions_per_s =
      wall_s > 0 ? static_cast<double>(st.completed) / wall_s : 0.0;
  const double events_per_s =
      wall_s > 0 ? static_cast<double>(st.program_events) / wall_s : 0.0;

  std::printf("load_gen: submitted in %.1f ms, drained in %.1f ms\n",
              submit_ms, wall_ms);
  std::printf(
      "  completed %llu (failed %llu, overflowed %llu, stolen %llu), "
      "verdicts T=%llu F=%llu\n",
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(st.overflowed),
      static_cast<unsigned long long>(st.stolen),
      static_cast<unsigned long long>(st.satisfactions),
      static_cast<unsigned long long>(st.violations));
  std::printf("  throughput %.1f sessions/s, %.0f events/s\n", sessions_per_s,
              events_per_s);
  auto q_ms = [&](const service::LatencyHistogram& h, double q) {
    return static_cast<double>(h.quantile(q)) / 1e6;
  };
  std::printf("  verdict latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
              q_ms(st.latency_ns, 0.50), q_ms(st.latency_ns, 0.95),
              q_ms(st.latency_ns, 0.99),
              static_cast<double>(st.latency_ns.max()) / 1e6);
  std::printf("  queue latency ms:   p50 %.2f  p95 %.2f  p99 %.2f\n",
              q_ms(st.queue_ns, 0.50), q_ms(st.queue_ns, 0.95),
              q_ms(st.queue_ns, 0.99));
  for (std::size_t s = 0; s < st.per_shard_completed.size(); ++s) {
    std::printf("  shard %zu: %llu sessions, busy %.1f ms (%.0f%% of wall)\n",
                s,
                static_cast<unsigned long long>(st.per_shard_completed[s]),
                st.per_shard_busy_ms[s],
                wall_ms > 0 ? 100.0 * st.per_shard_busy_ms[s] / wall_ms : 0.0);
  }
  const double rss_mb = peak_rss_mb();
  std::printf("  peak rss %.1f MB%s\n", rss_mb,
              opt.streaming ? " (streaming posture)" : "");
  // Admission economics: how the fleet's property admissions were served.
  // cache hits are zero-copy refcount bumps on the process-wide memo,
  // registry hits were served ahead-of-time by generated code, and a
  // nonzero mismatch count means src/generated/ is stale for this build.
  const paper::SynthesisCacheStats cache_stats = paper::synthesis_cache_stats();
  const CompiledPropertyRegistry::Stats registry_stats =
      CompiledPropertyRegistry::instance().stats();
  std::printf(
      "  admission: cache hits %llu / misses %llu, aot registry hits %llu, "
      "mismatches %llu\n",
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      static_cast<unsigned long long>(registry_stats.hits),
      static_cast<unsigned long long>(registry_stats.mismatches));
  if (opt.retry_failed > 0) {
    std::printf("  retried %llu, recovered %llu, unrecovered %zu\n",
                static_cast<unsigned long long>(retried),
                static_cast<unsigned long long>(recovered), unrecovered);
  }

  if (!opt.json_path.empty()) {
    std::ofstream os(opt.json_path);
    if (!os) {
      std::fprintf(stderr, "load_gen: cannot write %s\n",
                   opt.json_path.c_str());
      return 2;
    }
    os << "{\n"
       << "  \"schema\": \"decmon-load-gen-v1\",\n"
       << "  \"metrics\": {\n"
       << "    \"sessions\": " << st.completed << ",\n"
       << "    \"failed\": " << st.failed << ",\n"
       << "    \"overflowed\": " << st.overflowed << ",\n"
       << "    \"retried\": " << retried << ",\n"
       << "    \"recovered\": " << recovered << ",\n"
       << "    \"peak_rss_mb\": " << rss_mb << ",\n"
       << "    \"stolen\": " << st.stolen << ",\n"
       << "    \"events\": " << st.program_events << ",\n"
       << "    \"monitor_messages\": " << st.monitor_messages << ",\n"
       << "    \"wall_ms\": " << wall_ms << ",\n"
       << "    \"sessions_per_s\": " << sessions_per_s << ",\n"
       << "    \"events_per_s\": " << events_per_s << ",\n"
       << "    \"lat_p50_ms\": " << q_ms(st.latency_ns, 0.50) << ",\n"
       << "    \"lat_p95_ms\": " << q_ms(st.latency_ns, 0.95) << ",\n"
       << "    \"lat_p99_ms\": " << q_ms(st.latency_ns, 0.99) << ",\n"
       << "    \"queue_p99_ms\": " << q_ms(st.queue_ns, 0.99) << ",\n"
       << "    \"cache_hits\": " << cache_stats.hits << ",\n"
       << "    \"cache_misses\": " << cache_stats.misses << ",\n"
       << "    \"registry_hits\": " << registry_stats.hits << ",\n"
       << "    \"registry_mismatches\": " << registry_stats.mismatches << "\n"
       << "  }\n"
       << "}\n";
  }

  // Every submission (initial + retries) must have drained; failures only
  // fail the run when they stayed failed after the retry budget.
  const std::uint64_t expected_runs =
      static_cast<std::uint64_t>(opt.sessions) + retried;
  if (st.completed != expected_runs) {
    std::fprintf(stderr, "load_gen: sessions lost in the service\n");
    return 1;
  }
  if (opt.retry_failed > 0 ? unrecovered > 0 : st.failed > 0) {
    std::fprintf(stderr, "load_gen: FAILED sessions present\n");
    return 1;
  }
  if (opt.max_rss_mb > 0.0 && rss_mb > opt.max_rss_mb) {
    std::fprintf(stderr, "load_gen: peak RSS %.1f MB exceeds budget %.1f MB\n",
                 rss_mb, opt.max_rss_mb);
    return 1;
  }
  return 0;
}
