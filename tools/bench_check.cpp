// bench_check: compare a freshly produced bench_harness JSON against the
// committed BENCH_core.json and fail on regressions. Used by the CI
// bench-regression smoke job:
//
//   bench_harness --quick --out bench_quick.json
//   bench_check BENCH_core.json bench_quick.json --wall-tol 4.0
//
// Only `cell.*`, `socket.*`, `service.*`, `stream.*`,
// `recovery.socket.*`, and `micro.BM_PropertyAdmission.*` metrics are
// compared, and only
// those present in BOTH files (quick mode runs a sub-grid; the simulator
// recovery.{clean,channel,crash}.* rows use different repetition counts per
// mode and the rest of micro.* is pure wall time, so neither is
// comparable). The admission .ns rows band by --wall-tol like any time
// metric; the aot row additionally carries two absolute, machine-
// independent floors -- >=100x faster than cold synthesis and strictly
// cheaper than the legacy copy-on-hit -- checked on the candidate alone.
// Count-valued cell metrics (monitor_messages,
// global_views, peak_views, token_hops, wire_bytes) are deterministic for a
// given replication count and must match the baseline EXACTLY -- any drift means
// the monitor's communication behaviour changed and the baseline must be
// regenerated deliberately. Time-valued metrics (.wall_ms) are machine- and
// load-dependent and only need to stay within a tolerance factor of
// baseline.
//
// socket.* metrics come from real-time runs (kernel scheduling decides the
// token interleaving), so their traffic counters are NOT schedule-
// deterministic: wire_bytes / wire_frames / coalesced_frames are banded by
// --socket-tol instead of compared exactly. The trace-determined counts
// (.program_events, .app_messages) have no schedule dependence and stay
// exact -- they are the proof that quick and full modes drive the same
// workload.
//
// service.* cells run real shard worker threads: their .sessions/.events/
// .monitor_messages counts are schedule-independent (the cross-shard
// determinism invariant) and stay exact, while throughput, latency
// percentiles, and scaling factors are banded by --service-tol.
//
// recovery.socket.* rows (the §13.3 fault drill over real sockets) use a
// fixed replication count in both modes. The .kills counts are seeded-plan
// outcomes -- 0 clean, 1 fault -- and stay EXACT; where the RST lands
// relative to in-flight records is kernel scheduling, so the repair traffic
// (reconnects, retransmissions, disconnect_drops) is banded by --socket-tol
// and wall time by --wall-tol.
//
// stream.* cells are single-process simulator runs: every count
// (peak_history, peak_views, history_trimmed, gc_sweeps) is deterministic
// and exact; only .wall_ms is banded by --wall-tol. The exact peak_history
// rows are the committed bounded-memory evidence -- a drift here means the
// GC window changed shape.
//
//   bench_check <baseline.json> <candidate.json>
//               [--wall-tol FACTOR] [--socket-tol FACTOR]
//               [--service-tol FACTOR]
//
// Exit status: 0 all compared metrics pass, 1 any mismatch, 2 usage/IO.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace {

/// Parse the "metrics" object of a bench_harness file. Accepts exactly the
/// format bench_harness writes: one `"name": value[,]` pair per line.
bool parse_metrics(const char* path,
                   std::vector<std::pair<std::string, double>>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", path);
    return false;
  }
  std::string line;
  bool in_metrics = false;
  while (std::getline(in, line)) {
    if (line.find("\"metrics\"") != std::string::npos) {
      in_metrics = true;
      continue;
    }
    if (!in_metrics) continue;
    if (line.find('}') != std::string::npos) break;
    const auto q0 = line.find('"');
    const auto q1 = q0 == std::string::npos ? q0 : line.find('"', q0 + 1);
    const auto colon = q1 == std::string::npos ? q1 : line.find(':', q1 + 1);
    if (colon == std::string::npos) continue;
    out->emplace_back(line.substr(q0 + 1, q1 - q0 - 1),
                      std::strtod(line.c_str() + colon + 1, nullptr));
  }
  if (!in_metrics) {
    std::fprintf(stderr, "bench_check: no \"metrics\" object in %s\n", path);
    return false;
  }
  return true;
}

bool is_time_metric(const std::string& name) {
  const auto dot = name.rfind('.');
  const std::string suffix = dot == std::string::npos ? "" : name.substr(dot);
  return suffix == ".ns" || suffix == ".ms" || suffix == ".wall_ms";
}

bool has_suffix(const std::string& name, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return name.size() >= len &&
         name.compare(name.size() - len, len, suffix) == 0;
}

/// Socket traffic counters vary with the kernel's scheduling of the real
/// runs; everything socket.* that is neither wall time nor trace-determined
/// is banded rather than exact.
bool is_banded_socket_count(const std::string& name) {
  if (name.rfind("socket.", 0) == 0 && !is_time_metric(name)) {
    return !has_suffix(name, ".program_events") &&
           !has_suffix(name, ".app_messages");
  }
  // recovery.socket.* repair traffic is scheduling-dependent too; only the
  // seeded kill count is deterministic (0 clean / 1 fault) and stays exact.
  if (name.rfind("recovery.socket.", 0) == 0 && !is_time_metric(name)) {
    return !has_suffix(name, ".kills");
  }
  return false;
}

/// Service cells run real worker threads, so only the trace-determined
/// counts (.sessions, .events, .monitor_messages -- the cross-shard
/// determinism invariant) are exact; throughput, percentiles, and scaling
/// factors depend on the machine and are banded by --service-tol.
bool is_exact_service_count(const std::string& name) {
  return has_suffix(name, ".sessions") || has_suffix(name, ".events") ||
         has_suffix(name, ".monitor_messages");
}

const double* lookup(const std::vector<std::pair<std::string, double>>& m,
                     const std::string& name) {
  for (const auto& [n, v] : m) {
    if (n == name) return &v;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  double wall_tol = 2.0;
  double socket_tol = 2.0;
  double service_tol = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wall-tol") == 0 && i + 1 < argc) {
      wall_tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--socket-tol") == 0 && i + 1 < argc) {
      socket_tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--service-tol") == 0 && i + 1 < argc) {
      service_tol = std::atof(argv[++i]);
    } else if (!baseline_path) {
      baseline_path = argv[i];
    } else if (!candidate_path) {
      candidate_path = argv[i];
    } else {
      baseline_path = nullptr;
      break;
    }
  }
  if (!baseline_path || !candidate_path || wall_tol < 1.0 ||
      socket_tol < 1.0 || service_tol < 1.0) {
    std::fprintf(stderr,
                 "usage: bench_check <baseline.json> <candidate.json> "
                 "[--wall-tol FACTOR>=1] [--socket-tol FACTOR>=1] "
                 "[--service-tol FACTOR>=1]\n");
    return 2;
  }

  std::vector<std::pair<std::string, double>> baseline, candidate;
  if (!parse_metrics(baseline_path, &baseline) ||
      !parse_metrics(candidate_path, &candidate)) {
    return 2;
  }

  int compared = 0;
  int failures = 0;
  for (const auto& [name, cand] : candidate) {
    const bool is_service = name.rfind("service.", 0) == 0;
    const bool is_admission =
        name.rfind("micro.BM_PropertyAdmission.", 0) == 0;
    if (name.rfind("cell.", 0) != 0 && name.rfind("socket.", 0) != 0 &&
        name.rfind("stream.", 0) != 0 &&
        name.rfind("recovery.socket.", 0) != 0 && !is_service &&
        !is_admission) {
      continue;
    }
    // The admission .ns rows are pure wall time (banded below like any
    // time metric); the derived .speedup ratio is the quotient of two
    // banded rows, so comparing it to baseline would double-count jitter.
    // Its real contract is the absolute floor checked after this loop.
    if (is_admission && !is_time_metric(name)) continue;
    const double* base = lookup(baseline, name);
    if (!base) continue;  // sub-grid runs simply cover fewer cells
    ++compared;
    if (is_service && !is_exact_service_count(name)) {
      // Threaded-run throughput/latency: band like wall time, with the same
      // absolute floor so sub-millisecond percentiles ride out timer noise.
      const double lo = *base / service_tol - 0.5;
      const double hi = *base * service_tol + 0.5;
      if (cand < lo || cand > hi) {
        ++failures;
        std::printf("FAIL %-44s baseline %.6g candidate %.6g (tol %.2fx)\n",
                    name.c_str(), *base, cand, service_tol);
      }
    } else if (is_time_metric(name)) {
      // Wall clock may go either way with machine load; only flag changes
      // beyond the tolerance factor. Sub-millisecond cells are dominated by
      // timer noise, so give them an absolute floor as well.
      const double lo = *base / wall_tol - 0.5;
      const double hi = *base * wall_tol + 0.5;
      if (cand < lo || cand > hi) {
        ++failures;
        std::printf("FAIL %-44s baseline %.4f candidate %.4f (tol %.2fx)\n",
                    name.c_str(), *base, cand, wall_tol);
      }
    } else if (is_banded_socket_count(name)) {
      // Real-run traffic counters: band like wall time, with an absolute
      // slack so near-zero counters (e.g. coalesced_frames on an idle
      // machine) cannot fail on jitter alone. Outage-repair traffic scales
      // with how long the redial takes on the machine at hand, so the
      // recovery rows get a wider absolute allowance.
      const double slack =
          name.rfind("recovery.socket.", 0) == 0 ? 256.0 : 32.0;
      const double lo = *base / socket_tol - slack;
      const double hi = *base * socket_tol + slack;
      if (cand < lo || cand > hi) {
        ++failures;
        std::printf("FAIL %-44s baseline %.6g candidate %.6g (tol %.2fx)\n",
                    name.c_str(), *base, cand, socket_tol);
      }
    } else if (*base != cand) {
      ++failures;
      std::printf("FAIL %-44s baseline %.6g candidate %.6g (exact)\n",
                  name.c_str(), *base, cand);
    }
  }

  // Zero-copy admission floors (candidate-only, machine-independent by
  // orders of magnitude): the ahead-of-time registry hit must stay >=100x
  // faster than cold synthesis and strictly cheaper than the legacy
  // copy-on-hit posture. These are the committed perf claims of the
  // AOT-codegen change; a violation means the admission fast path rotted.
  {
    const double* speedup =
        lookup(candidate, "micro.BM_PropertyAdmission.aot_vs_cold.speedup");
    const double* aot = lookup(candidate, "micro.BM_PropertyAdmission.aot.ns");
    const double* copy =
        lookup(candidate, "micro.BM_PropertyAdmission.cache_hit_copy.ns");
    if (speedup) {
      ++compared;
      if (*speedup < 100.0) {
        ++failures;
        std::printf(
            "FAIL %-44s candidate %.6g (floor 100x over cold synthesis)\n",
            "micro.BM_PropertyAdmission.aot_vs_cold.speedup", *speedup);
      }
    }
    if (aot && copy) {
      ++compared;
      if (*aot >= *copy) {
        ++failures;
        std::printf(
            "FAIL %-44s aot %.6g >= cache_hit_copy %.6g "
            "(zero-copy admission must beat copy-on-hit)\n",
            "micro.BM_PropertyAdmission.aot.ns", *aot, *copy);
      }
    }
  }

  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_check: no overlapping "
                 "cell.*/socket.*/service.*/stream.*/recovery.socket.* "
                 "metrics between %s and %s\n",
                 baseline_path, candidate_path);
    return 1;
  }
  std::printf("bench_check: %d metrics compared, %d failed\n", compared,
              failures);
  return failures == 0 ? 0 : 1;
}
