// monitor_log: offline analysis of a recorded computation (§6.2.1's
// offline-monitoring configuration). Takes an event log produced by
// tools/record_trace (or your own instrumentation) and a property, and
// evaluates it two ways:
//   * the omniscient lattice oracle (ground truth, exponential),
//   * a replayed decentralized run (what the online monitors would say).
//
//   monitor_log <log-file> <formula> [--oracle-only] [seed]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "decmon/decmon.hpp"

int main(int argc, char** argv) {
  using namespace decmon;
  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " <log-file> <formula> [--oracle-only] [seed]\n";
    return 2;
  }
  const bool oracle_only =
      argc > 3 && std::strcmp(argv[3], "--oracle-only") == 0;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  Computation raw = load_event_log(argv[1]);
  // Variables are positional in the log; expose them under the case-study
  // names p (variable 0) and q (variable 1).
  AtomRegistry reg(raw.num_processes());
  for (int p = 0; p < raw.num_processes(); ++p) {
    reg.declare_variable(p, "p");
    reg.declare_variable(p, "q");
  }
  FormulaPtr formula;
  try {
    formula = parse_ltl(argv[2], reg);
  } catch (const ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 1;
  }
  MonitorAutomaton m = synthesize_monitor(formula);
  MonitorSession session(std::move(reg), std::move(m));
  Computation comp = relabel(raw, session.registry());
  std::cout << "processes: " << comp.num_processes()
            << ", events: " << comp.total_events() << "\n";

  OracleResult oracle = oracle_evaluate(comp, session.automaton());
  std::cout << "oracle verdicts: ";
  for (Verdict v : oracle.verdicts) std::cout << to_string(v) << ' ';
  std::cout << "(" << oracle.lattice_nodes << " consistent cuts, "
            << oracle.pivot_states << " pivot states)\n";
  if (oracle_only) return 0;

  RunResult r = session.replay(comp, seed);
  std::cout << "replayed decentralized verdicts: ";
  for (Verdict v : r.verdict.verdicts) std::cout << to_string(v) << ' ';
  std::cout << "\nmonitors drained: "
            << (r.verdict.all_finished ? "yes" : "no")
            << ", monitoring messages: " << r.monitor_messages << "\n";
  const MonitorStats& agg = r.verdict.aggregate;
  std::cout << "wire: " << agg.frames_sent << " frames, " << agg.bytes_sent
            << " bytes sent, " << agg.bytes_received << " bytes received\n";
  return r.verdict.all_finished ? 0 : 1;
}
