// record_trace: generate a case-study workload, execute it (unmonitored)
// under the deterministic simulator, and save the resulting computation as
// an event log for offline analysis with tools/monitor_log.
//
//   record_trace <out-file> [processes] [internal-events] [commMu] [seed]
#include <cstdlib>
#include <iostream>

#include "decmon/decmon.hpp"

int main(int argc, char** argv) {
  using namespace decmon;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0]
              << " <out-file> [processes] [internal-events] [commMu] [seed]\n";
    return 2;
  }
  TraceParams params;
  params.num_processes = argc > 2 ? std::atoi(argv[2]) : 3;
  params.internal_events = argc > 3 ? std::atoi(argv[3]) : 20;
  params.comm_mu = argc > 4 ? std::atof(argv[4]) : 3.0;
  params.seed = argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 1;

  AtomRegistry reg = paper::make_registry(params.num_processes);
  SimRuntime sim(generate_trace(params), &reg);
  sim.run();
  Computation comp(sim.history());
  save_event_log(comp, argv[1]);
  std::cout << "recorded " << comp.total_events() << " events over "
            << comp.num_processes() << " processes to " << argv[1] << "\n";
  return 0;
}
