// Fig. 5.7: average number of events queued (delayed) at the monitors
// behind outstanding tokens, for all six properties over 2-5 processes.
// Headline claims to reproduce: the delay grows with the process count for
// the multi-transition properties A, C, D, F, while B and E stay flat.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace decmon;
  using namespace decmon::bench;

  std::printf("Fig 5.7a: average delayed events (properties A-C)\n");
  std::printf("%-10s %10s %10s %10s\n", "processes", "A", "B", "C");
  for (int n = 2; n <= 5; ++n) {
    std::printf("%-10d %10.3f %10.3f %10.3f\n", n,
                run_cell(paper::Property::kA, n, 3.0, true).delayed_events,
                run_cell(paper::Property::kB, n, 3.0, true).delayed_events,
                run_cell(paper::Property::kC, n, 3.0, true).delayed_events);
  }
  std::printf("\nFig 5.7b: average delayed events (properties D-F)\n");
  std::printf("%-10s %10s %10s %10s\n", "processes", "D", "E", "F");
  for (int n = 2; n <= 5; ++n) {
    std::printf("%-10d %10.3f %10.3f %10.3f\n", n,
                run_cell(paper::Property::kD, n, 3.0, true).delayed_events,
                run_cell(paper::Property::kE, n, 3.0, true).delayed_events,
                run_cell(paper::Property::kF, n, 3.0, true).delayed_events);
  }
  return 0;
}
