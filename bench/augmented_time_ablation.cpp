// Future-work 7.2.1 made quantitative: how much does a bounded clock skew
// buy? For the paper's workload (property C, 3 processes), the oracle runs
// over the happened-before order refined by a skew bound epsilon; the
// lattice (and with it the exploration any monitor must cover) collapses
// as epsilon approaches the inter-event time (EvtMu = 3 s).
#include <cstdio>

#include "decmon/decmon.hpp"

int main() {
  using namespace decmon;

  AtomRegistry reg = paper::make_registry(3);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kC, 3, reg);
  TraceParams params =
      paper::experiment_params(paper::Property::kC, 3, 2015, 3.0, true, 12);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);
  SimRuntime sim(trace, &reg);
  sim.run();
  Computation comp(sim.history());

  std::printf("Property C, 3 processes, %llu events, EvtMu = 3s\n",
              (unsigned long long)comp.total_events());
  std::printf("%-14s %14s %14s %10s\n", "epsilon (s)", "consistent cuts",
              "pivot states", "verdicts");
  const double epsilons[] = {1e9, 10.0, 3.0, 1.0, 0.3, 0.05, 0.001};
  for (double eps : epsilons) {
    OracleResult r = oracle_evaluate_timed(TimedComputation(&comp, eps), m);
    std::string verdicts;
    for (Verdict v : r.verdicts) verdicts += to_string(v) + " ";
    std::printf("%-14g %14llu %14llu %10s\n", eps,
                (unsigned long long)r.lattice_nodes,
                (unsigned long long)r.pivot_states, verdicts.c_str());
  }
  std::printf(
      "\n(epsilon >= the inter-event time changes nothing; epsilon below "
      "the\n message latency serializes the run -- the 'NTP-connected "
      "smartphones'\n regime the paper's 7.2.1 discussion describes)\n");
  return 0;
}
