// Machine-readable benchmark harness: runs the Chapter-5 `run_cell` grid
// (properties A-F x process counts x communication settings) plus a micro
// suite of core-component timings, and emits a single flat JSON file
// (BENCH_core.json) so every PR records a comparable performance trajectory.
//
// Usage: bench_harness [--quick] [--out FILE] [--baseline FILE]
//   --quick     shrink the grid and repetition counts (CI smoke run)
//   --out       output path (default: BENCH_core.json)
//   --baseline  a previously emitted BENCH_core.json; its metrics are
//               embedded under "baseline" and per-metric speedups for the
//               time-valued entries are computed under "speedup"
//
// Schema (decmon-bench-core-v1): every metric is "name": number.
//   micro.*.ns        nanoseconds per operation
//   micro.*.ms        milliseconds per operation
//   micro.BM_PropertyAdmission.<posture>.ns      one property admission
//     (D, n=5): cold_synthesis / cache_hit_copy / shared_registry / aot
//   micro.BM_PropertyAdmission.aot_vs_cold.speedup  cold / aot ratio (the
//     >=100x ahead-of-time admission floor, gated in bench_check)
//   cell.<P>.n<k>.<comm|nocomm>.wall_ms          end-to-end monitored run
//   cell.<P>.n<k>.<comm|nocomm>.monitor_messages (Fig. 5.4/5.5 metric)
//   cell.<P>.n<k>.<comm|nocomm>.global_views     (Fig. 5.8 metric)
//   cell.<P>.n<k>.<comm|nocomm>.peak_views       aggregate peak live views
//   cell.<P>.n<k>.<comm|nocomm>.token_hops       total token hops
//   cell.<P>.n<k>.<comm|nocomm>.wire_bytes       encoded bytes sent (§9,
//                                                sampled-stride estimate)
//   socket.<P>.n<k>.<batched|unbatched>.wall_ms  SocketRuntime run (§10)
//   socket.<P>.n<k>.<batched|unbatched>.{wire_bytes,wire_frames}
//                                                transport-truth counters
//   socket.<P>.n<k>.batched.coalesced_frames     congestion merges
//   socket.<P>.n<k>.{program_events,app_messages} trace-determined counts
//   recovery.clean.wall_ms                       bare distributed run
//   recovery.channel.wall_ms                     + ReliableChannel (no faults)
//   recovery.channel.{data_sent,acks_sent}       clean-path channel traffic
//   recovery.crash.wall_ms                       + lossy net, crash + restart
//   recovery.crash.{retransmissions,acks_sent,dup_suppressed,
//                   checkpoints,checkpoint_bytes,restarts,
//                   dropped_while_down,journal_replayed}   (DESIGN.md §8)
//   recovery.socket.<clean|fault>.wall_ms        §13.3 drill over sockets
//   recovery.socket.<clean|fault>.kills          exact: 0 clean / 1 fault
//   recovery.socket.fault.{reconnects,retransmissions,disconnect_drops}
//                                                outage-repair traffic
//   service.<P>.n<k>.s<K>.{sessions,events,monitor_messages}  exact counts
//   service.<P>.n<k>.s<K>.{wall_ms,sessions_per_s,events_per_s} throughput
//   service.<P>.n<k>.s<K>.{lat_p50_ms,lat_p95_ms,lat_p99_ms,queue_p99_ms}
//                                                HDR-histogram percentiles
//   service.<P>.n<k>.s<K>_vs_s1.speedup          K-shard scaling factor
//   stream.F.n5.len<L>.<streaming|control>.peak_history  max retained
//                                                history window (events)
//   stream.F.n5.len<L>.<streaming|control>.{peak_views,wall_ms}
//   stream.F.n5.len<L>.streaming.{history_trimmed,gc_sweeps}
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "decmon/decmon.hpp"

namespace {

using namespace decmon;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Ordered metric list: insertion order is emission order.
struct Metrics {
  std::vector<std::pair<std::string, double>> entries;
  void put(const std::string& name, double value) {
    entries.emplace_back(name, value);
  }
};

// ---------------------------------------------------------------------------
// Micro suite (the hand-rolled equivalents of bench/micro_core.cpp, timed
// with best-of-three chrono loops so the output is plain numbers).
// ---------------------------------------------------------------------------

template <typename Fn>
double best_of(int runs, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < runs; ++r) {
    const double ms = fn();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// Each micro lives in its own noinline function: when they shared one
// frame, unrelated header churn (inline-storage objects growing a sibling
// block's locals) shifted stack layout and loop alignment enough to move
// the 3-5ns workloads by 30%+. Isolated frames keep the numbers about the
// workload, not the binary layout.
constexpr int kMicroRuns = 3;

[[gnu::noinline]] void micro_automaton_step(Metrics& out, bool quick) {
  // Automaton stepping (the BM_AutomatonStep workload: property F, n=4).
  AtomRegistry reg = paper::make_registry(4);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kF, 4, reg);
  std::mt19937_64 rng(7);
  std::vector<AtomSet> letters;
  for (int i = 0; i < 256; ++i) letters.push_back(rng() & 0xFF);
  const std::int64_t iters = quick ? (1 << 18) : (1 << 21);
  volatile int sink = 0;
  const double ms = best_of(kMicroRuns, [&] {
    int q = m.initial_state();
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
      q = *m.step(q, letters[static_cast<std::size_t>(i & 255)]);
    }
    sink = q;
    return elapsed_ms(t0);
  });
  (void)sink;
  out.put("micro.BM_AutomatonStep.ns", ms * 1e6 / static_cast<double>(iters));
}

[[gnu::noinline]] void micro_locally_satisfied(Metrics& out, bool quick) {
  // Per-process conjunct checks (the token walk's inner loop: D, n=5).
  AtomRegistry reg = paper::make_registry(5);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kD, 5, reg);
  CompiledProperty prop(&m, &reg);
  std::mt19937_64 rng(11);
  std::vector<AtomSet> letters;
  for (int i = 0; i < 256; ++i) letters.push_back(rng() & 0x3FF);
  const int tids = m.num_transitions();
  const std::int64_t iters = quick ? (1 << 16) : (1 << 19);
  volatile int sink = 0;
  const double ms = best_of(kMicroRuns, [&] {
    int acc = 0;
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
      const int tid = static_cast<int>(i % tids);
      const int proc = static_cast<int>(i % 5);
      acc += prop.locally_satisfied(
          tid, proc, letters[static_cast<std::size_t>(i & 255)]);
    }
    sink = acc;
    return elapsed_ms(t0);
  });
  (void)sink;
  out.put("micro.BM_LocallySatisfied.ns",
          ms * 1e6 / static_cast<double>(iters));
}

[[gnu::noinline]] void micro_vector_clock_compare(Metrics& out, bool quick) {
  // Vector clock comparison, n=16.
  VectorClock a(16), b(16);
  std::mt19937_64 rng(1);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<std::uint32_t>(rng() % 100);
    b[i] = static_cast<std::uint32_t>(rng() % 100);
  }
  const std::int64_t iters = quick ? (1 << 18) : (1 << 21);
  volatile int sink = 0;
  const double ms = best_of(kMicroRuns, [&] {
    int acc = 0;
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
      acc += static_cast<int>(a.compare(b));
    }
    sink = acc;
    return elapsed_ms(t0);
  });
  (void)sink;
  out.put("micro.BM_VectorClockCompare.ns",
          ms * 1e6 / static_cast<double>(iters));
}

[[gnu::noinline]] void micro_monitor_synthesis(Metrics& out, bool quick) {
  // Monitor synthesis, property D.
  const int n = quick ? 2 : 3;
  const int iters = quick ? 3 : 10;
  const double ms = best_of(kMicroRuns, [&] {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      AtomRegistry reg = paper::make_registry(n);
      FormulaPtr f = paper::formula(paper::Property::kD, n, reg);
      MonitorAutomaton m = synthesize_monitor(f);
      if (m.num_states() == 0) std::abort();
    }
    return elapsed_ms(t0);
  });
  out.put("micro.BM_MonitorSynthesis.ms", ms / iters);
}

[[gnu::noinline]] void micro_monitor_synthesis_cached(Metrics& out,
                                                      bool quick) {
  // The fleet-warm path: after one miss populates the process-wide memo,
  // every further build_automaton call is a shared-lock lookup plus an
  // automaton copy. This is the per-shard catalog-warm cost in the service.
  const int n = 3;
  paper::synthesis_cache_clear();
  AtomRegistry reg = paper::make_registry(n);
  {
    MonitorAutomaton warm =
        paper::build_automaton(paper::Property::kD, n, reg);
    if (warm.num_states() == 0) std::abort();
  }
  const int iters = quick ? 500 : 5000;
  volatile int sink = 0;
  const double ms = best_of(kMicroRuns, [&] {
    int acc = 0;
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      MonitorAutomaton m =
          paper::build_automaton(paper::Property::kD, n, reg);
      acc += m.num_states();
    }
    sink = acc;
    return elapsed_ms(t0);
  });
  (void)sink;
  out.put("micro.BM_MonitorSynthesisCached.ns",
          ms * 1e6 / static_cast<double>(iters));
}

[[gnu::noinline]] void micro_property_admission(Metrics& out, bool quick) {
  // The four admission postures for one golden property (D, n=5), worst
  // to best. cold_synthesis is the full LTL3 pipeline with every cache
  // bypassed; cache_hit_copy is the legacy memo hit that still copies the
  // automaton out (the cost build_automaton keeps paying for compat);
  // shared_registry is the zero-copy path on a warm memo (a refcount
  // bump); aot clears the memo every iteration so admission is served by
  // the generated CompiledPropertyRegistry -- the cold-process cost when
  // src/generated/ covers the property. The committed rows are the
  // evidence for the ISSUE's floors: aot >= 100x faster than cold
  // synthesis and strictly cheaper than the copy-on-hit posture.
  constexpr paper::Property kProp = paper::Property::kD;
  constexpr int n = 5;
  AtomRegistry reg = paper::make_registry(n);

  double cold_ns = 0;
  {
    const int iters = quick ? 2 : 5;
    const double ms = best_of(kMicroRuns, [&] {
      const auto t0 = Clock::now();
      for (int i = 0; i < iters; ++i) {
        MonitorAutomaton m = paper::build_automaton_uncached(kProp, n, reg);
        if (m.num_states() == 0) std::abort();
      }
      return elapsed_ms(t0);
    });
    cold_ns = ms * 1e6 / iters;
    out.put("micro.BM_PropertyAdmission.cold_synthesis.ns", cold_ns);
  }

  paper::synthesis_cache_clear();
  if (!paper::shared_property(kProp, n, reg)) std::abort();  // warm the memo
  {
    const int iters = quick ? 500 : 5000;
    volatile int sink = 0;
    const double ms = best_of(kMicroRuns, [&] {
      int acc = 0;
      const auto t0 = Clock::now();
      for (int i = 0; i < iters; ++i) {
        MonitorAutomaton m = paper::build_automaton(kProp, n, reg);
        acc += m.num_states();
      }
      sink = acc;
      return elapsed_ms(t0);
    });
    (void)sink;
    out.put("micro.BM_PropertyAdmission.cache_hit_copy.ns",
            ms * 1e6 / iters);
  }

  {
    const int iters = quick ? (1 << 14) : (1 << 17);
    volatile int sink = 0;
    const double ms = best_of(kMicroRuns, [&] {
      int acc = 0;
      const auto t0 = Clock::now();
      for (int i = 0; i < iters; ++i) {
        SharedProperty art = paper::shared_property(kProp, n, reg);
        acc += art->automaton().num_states();
      }
      sink = acc;
      return elapsed_ms(t0);
    });
    (void)sink;
    out.put("micro.BM_PropertyAdmission.shared_registry.ns",
            ms * 1e6 / iters);
  }

  double aot_ns = 0;
  {
    const int iters = quick ? 500 : 5000;
    volatile int sink = 0;
    const double ms = best_of(kMicroRuns, [&] {
      int acc = 0;
      const auto t0 = Clock::now();
      for (int i = 0; i < iters; ++i) {
        paper::synthesis_cache_clear();  // every admission is memo-cold
        SharedProperty art = paper::shared_property(kProp, n, reg);
        acc += art->automaton().num_states();
      }
      sink = acc;
      return elapsed_ms(t0);
    });
    (void)sink;
    aot_ns = ms * 1e6 / iters;
    out.put("micro.BM_PropertyAdmission.aot.ns", aot_ns);
    // The loop above must actually have been served ahead-of-time, not by
    // a fallback synthesis (which would silently inflate nothing -- cold
    // synthesis is 5 orders slower, so it would show -- but gate anyway).
    if (CompiledPropertyRegistry::instance().stats().hits <
        static_cast<std::uint64_t>(iters)) {
      std::abort();
    }
  }
  out.put("micro.BM_PropertyAdmission.aot_vs_cold.speedup", cold_ns / aot_ns);
}

[[gnu::noinline]] void micro_monitored_run(Metrics& out, bool quick) {
  // Whole monitored run, property C, n=4 (BM_MonitoredRun workload).
  AtomRegistry reg = paper::make_registry(4);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kC, 4, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params = paper::experiment_params(paper::Property::kC, 4, 9);
  SystemTrace trace = generate_trace(params);
  const int iters = quick ? 2 : 10;
  const double ms = best_of(kMicroRuns, [&] {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      RunResult r = session.run(trace);
      if (r.program_events == 0) std::abort();
    }
    return elapsed_ms(t0);
  });
  out.put("micro.BM_MonitoredRun_C_n4.ms", ms / iters);
}

void micro_suite(Metrics& out, bool quick) {
  micro_automaton_step(out, quick);
  micro_locally_satisfied(out, quick);
  micro_vector_clock_compare(out, quick);
  micro_monitor_synthesis(out, quick);
  micro_monitor_synthesis_cached(out, quick);
  micro_property_admission(out, quick);
  micro_monitored_run(out, quick);
}

// ---------------------------------------------------------------------------
// The run_cell grid (bench_common.hpp's cell, instrumented with wall clock
// and the aggregate stats the figure benches do not report).
// ---------------------------------------------------------------------------

void run_cell_metrics(Metrics& out, paper::Property prop, int n,
                      double comm_mu, bool comm_enabled, int replications,
                      std::uint64_t base_seed = 2015) {
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));

  // Same posture as bench_common.hpp: cells measure the deployment
  // configuration, which batches frames while they are in flight.
  SimConfig sim;
  sim.coalesce = CoalesceMode::kTransit;

  // Deployment accounting posture: stamp 1-in-16 frames and extrapolate.
  // The simulator is deterministic, so the estimate is still an exact
  // replayable count for bench_check purposes.
  MonitorOptions options;
  options.wire_accounting = WireAccounting::kSampled;

  double wall_ms = 0;
  double monitor_messages = 0;
  double global_views = 0;
  double peak_views = 0;
  double token_hops = 0;
  double wire_bytes = 0;
  for (int r = 0; r < replications; ++r) {
    TraceParams params = paper::experiment_params(
        prop, n, base_seed + static_cast<std::uint64_t>(r), comm_mu,
        comm_enabled);
    SystemTrace trace = generate_trace(params);
    force_final_all_true(trace);
    const auto t0 = Clock::now();
    RunResult run = session.run(trace, sim, options);
    wall_ms += elapsed_ms(t0);
    monitor_messages += static_cast<double>(run.monitor_messages);
    global_views += static_cast<double>(run.total_global_views);
    peak_views +=
        static_cast<double>(run.verdict.aggregate.peak_global_views);
    token_hops += static_cast<double>(run.verdict.aggregate.token_hops);
    wire_bytes +=
        static_cast<double>(run.verdict.aggregate.estimated_bytes_sent());
  }
  const double k = static_cast<double>(replications);
  const std::string base = "cell." + paper::name(prop) + ".n" +
                           std::to_string(n) + "." +
                           (comm_enabled ? "comm" : "nocomm");
  out.put(base + ".wall_ms", wall_ms / k);
  out.put(base + ".monitor_messages", monitor_messages / k);
  out.put(base + ".global_views", global_views / k);
  out.put(base + ".peak_views", peak_views / k);
  out.put(base + ".token_hops", token_hops / k);
  out.put(base + ".wire_bytes", wire_bytes / k);
}

void cell_grid(Metrics& out, bool quick) {
  // Quick mode shrinks the grid but keeps the full replication count: the
  // count-valued cell metrics are deterministic per (cell, reps), so a
  // quick run's cells must match the committed full-mode BENCH_core.json
  // exactly for tools/bench_check to compare them in CI.
  const int reps = 3;
  std::vector<paper::Property> props;
  std::vector<int> ns;
  if (quick) {
    props = {paper::Property::kA, paper::Property::kD};
    ns = {3};
  } else {
    props.assign(std::begin(paper::kAllProperties),
                 std::end(paper::kAllProperties));
    ns = {3, 5};
  }
  for (paper::Property p : props) {
    for (int n : ns) {
      run_cell_metrics(out, p, n, 3.0, /*comm_enabled=*/true, reps);
      if (!quick) {
        run_cell_metrics(out, p, n, 3.0, /*comm_enabled=*/false, reps);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Socket suite: the same Chapter-5 cells run over SocketRuntime -- real TCP
// loopback sockets, epoll, wire-v2 serialization -- in both transport
// postures. wall/bytes/frames are measured at the socket (transport truth),
// so this is where frame batching's syscall and header savings become a
// number instead of an inference. time_scale=0 collapses the trace waits:
// the grid measures processing + I/O, not scripted sleeping, and the
// resulting backlog is exactly the congestion that makes the batched
// posture's coalescing matter.
// ---------------------------------------------------------------------------

void run_socket_cell(Metrics& out, paper::Property prop, int n,
                     int replications, std::uint64_t base_seed = 2015) {
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
  automaton.build_dispatch();
  CompiledProperty compiled(&automaton, &reg);

  MonitorOptions options;
  options.wire_accounting = WireAccounting::kSampled;

  const std::string base =
      "socket." + paper::name(prop) + ".n" + std::to_string(n);
  double program_events = 0, app_messages = 0;
  for (const bool batch : {true, false}) {
    double wall_ms = 0, wire_bytes = 0, wire_frames = 0, coalesced = 0;
    program_events = 0;
    app_messages = 0;
    for (int r = 0; r < replications; ++r) {
      // Comm-heavy posture: broadcasts at twice the default rate so the
      // transport carries real traffic in both planes.
      TraceParams params = paper::experiment_params(
          prop, n, base_seed + static_cast<std::uint64_t>(r),
          /*comm_mu=*/1.5);
      SystemTrace trace = generate_trace(params);
      force_final_all_true(trace);

      SocketConfig config;
      config.time_scale = 0.0;
      config.batch = batch;
      // Bounded kernel buffers: loopback's multi-megabyte defaults never
      // push back, which would leave the congestion/coalescing path idle.
      // 32 KiB models a real NIC-bounded link and makes the batched
      // posture's convoy behaviour part of what the grid measures.
      config.sndbuf = 32 * 1024;
      config.rcvbuf = 32 * 1024;
      const auto t0 = Clock::now();
      SocketRuntime runtime(std::move(trace), &reg, config);
      DecentralizedMonitor monitors(
          &compiled, &runtime,
          initial_letters_of(reg, runtime.initial_states()), options);
      runtime.set_hooks(&monitors);
      runtime.run();
      wall_ms += elapsed_ms(t0);
      if (!monitors.all_finished()) std::abort();
      wire_bytes += static_cast<double>(runtime.wire_bytes());
      wire_frames += static_cast<double>(runtime.wire_frames());
      coalesced += static_cast<double>(runtime.coalesced_frames());
      program_events += static_cast<double>(runtime.program_events());
      app_messages += static_cast<double>(runtime.app_messages_sent());
    }
    const double k = static_cast<double>(replications);
    const std::string posture = base + (batch ? ".batched" : ".unbatched");
    out.put(posture + ".wall_ms", wall_ms / k);
    out.put(posture + ".wire_bytes", wire_bytes / k);
    out.put(posture + ".wire_frames", wire_frames / k);
    if (batch) out.put(posture + ".coalesced_frames", coalesced / k);
  }
  // Trace-determined counts, identical in both postures: the exact CI gate
  // that proves quick and full runs drive the same workload.
  const double k = static_cast<double>(replications);
  out.put(base + ".program_events", program_events / k);
  out.put(base + ".app_messages", app_messages / k);
}

void socket_grid(Metrics& out, bool quick) {
  // Like cell_grid: quick mode shrinks the grid, never the replication
  // count, so the metrics emitted by both modes are comparable.
  const int reps = 3;
  std::vector<paper::Property> props;
  std::vector<int> ns;
  if (quick) {
    props = {paper::Property::kA, paper::Property::kD};
    ns = {3};
  } else {
    props.assign(std::begin(paper::kAllProperties),
                 std::end(paper::kAllProperties));
    ns = {3, 5};
  }
  for (paper::Property p : props) {
    for (int n : ns) run_socket_cell(out, p, n, reps);
  }
}

// ---------------------------------------------------------------------------
// Recovery suite: the same distributed workload run bare, under the
// ReliableChannel on a fault-free network (its clean-path overhead), and
// under true message loss with one crash + checkpoint restart (the full
// DESIGN.md §8 recovery cost). The crash-tolerance MonitorStats fields are
// filled from the channel/injector counters here, since the monitors
// themselves never see them.
// ---------------------------------------------------------------------------

enum class RecoveryVariant { kClean, kChannel, kCrash };

MonitorStats run_recovery_once(RecoveryVariant variant, std::uint64_t seed,
                               double* wall_ms) {
  constexpr int n = 4;
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kD, n, reg);
  automaton.build_dispatch();
  CompiledProperty prop(&automaton, &reg);
  TraceParams params =
      paper::experiment_params(paper::Property::kD, n, seed, 3.0,
                               /*comm_enabled=*/true);
  SimConfig sim;
  sim.seed = seed + 1;

  FaultConfig faults;
  if (variant == RecoveryVariant::kCrash) {
    faults.delay_prob = 0.15;
    faults.lose_prob = 0.15;  // true loss: survivable only via the channel
    faults.seed = seed + 2;
  }
  CrashPlan plan;
  if (variant == RecoveryVariant::kCrash) {
    plan.node = 1;
    plan.crash_after = 4;
    plan.down_deliveries = 2;
  }

  const auto t0 = Clock::now();
  SimRuntime runtime(generate_trace(params), &reg, sim);
  FaultyNetwork faulty(&runtime, n, faults);
  std::optional<ReliableChannel> channel;
  if (variant != RecoveryVariant::kClean) channel.emplace(&faulty, n);
  MonitorNetwork* net =
      channel ? static_cast<MonitorNetwork*>(&*channel) : &faulty;
  DecentralizedMonitor monitors(
      &prop, net, initial_letters_of(reg, runtime.initial_states()));
  MonitorHooks* hooks = &monitors;
  if (channel) {
    channel->set_hooks(&monitors);
    hooks = &*channel;
  }
  std::optional<CrashInjector> injector;
  if (plan.node >= 0) {
    injector.emplace(hooks, &monitors, &*channel, plan);
    hooks = &*injector;
  }
  runtime.set_hooks(hooks);
  runtime.run();
  *wall_ms += elapsed_ms(t0);

  const SystemVerdict v = monitors.result();
  if (!v.all_finished) std::abort();  // the workload must always drain
  MonitorStats agg = v.aggregate;
  if (channel) {
    const ChannelStats cs = channel->total_stats();
    agg.retransmissions = cs.retransmissions;
    agg.acks_sent = cs.acks_sent;
    agg.dup_suppressed = cs.dup_suppressed;
  }
  if (injector) {
    const CrashStats& crash = injector->stats();
    if (crash.restarts != 1) std::abort();  // the planned crash must recover
    agg.checkpoints_taken = crash.checkpoints_taken;
    agg.checkpoint_bytes = crash.checkpoint_bytes;
    agg.crash_restarts = crash.restarts;
  }
  return agg;
}

// Socket-posture recovery row: the §13.3 golden-verdict drill as a
// benchmark. The quick socket cell's workload (kD, n=3, comm-heavy) runs
// over SocketRuntime + ReliableChannel twice -- bare, and with one seeded
// mid-run connection kill (abortive RST, reconnect + HELLO reconciliation,
// channel retransmissions bridging the outage). The kill budget always
// exhausts under this traffic, so .kills is an exact CI gate; where the RST
// lands relative to in-flight records is kernel scheduling, so the
// reconnect/retransmission/drop counters are banded like the socket grid's.
struct SocketRecoveryRow {
  double wall_ms = 0;
  std::uint64_t kills = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t disconnect_drops = 0;
};

void run_recovery_socket_once(bool fault, std::uint64_t seed,
                              SocketRecoveryRow* row) {
  constexpr int n = 3;
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kD, n, reg);
  automaton.build_dispatch();
  CompiledProperty prop(&automaton, &reg);
  SystemTrace trace = generate_trace(paper::experiment_params(
      paper::Property::kD, n, seed, /*comm_mu=*/1.5));
  force_final_all_true(trace);

  SocketConfig config;
  config.time_scale = 0.0;
  config.sndbuf = 32 * 1024;  // same NIC-bounded posture as the socket grid
  config.rcvbuf = 32 * 1024;
  if (fault) {
    config.fault.enabled = true;
    config.fault.seed = seed + 7;
    config.fault.kill_after_min = 4;
    config.fault.kill_after_max = 12;
    config.fault.max_kills = 1;
  }
  const auto t0 = Clock::now();
  SocketRuntime runtime(std::move(trace), &reg, config);
  // Channel deadlines are in now() units -- real seconds on this runtime --
  // so the simulator default rto (3.0 trace seconds) would park every
  // retransmission (and the quiescence tail behind the last armed timer)
  // for seconds of wall clock. 50 ms keeps outage repair prompt.
  ReliableChannelConfig channel_config;
  channel_config.rto = 0.05;
  ReliableChannel channel(&runtime, n, channel_config);
  DecentralizedMonitor monitors(
      &prop, &channel, initial_letters_of(reg, runtime.initial_states()));
  channel.set_hooks(&monitors);
  runtime.set_hooks(&channel);
  runtime.run();
  row->wall_ms += elapsed_ms(t0);
  if (!monitors.all_finished()) std::abort();
  // The seeded plan must fire and the bare run must stay fault-free:
  // .kills is the exact gate proving both postures measured what they claim.
  if (runtime.connections_killed() != (fault ? 1u : 0u)) std::abort();
  row->kills += runtime.connections_killed();
  row->reconnects += runtime.reconnects();
  row->retransmissions += channel.total_stats().retransmissions;
  row->disconnect_drops += runtime.disconnect_drops();
}

void recovery_suite(Metrics& out, bool quick) {
  const int reps = quick ? 2 : 5;
  const std::uint64_t base_seed = 4040;
  double clean_ms = 0, channel_ms = 0, crash_ms = 0;
  MonitorStats channel_agg, crash_agg;
  std::uint64_t channel_data = 0;
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(r);
    run_recovery_once(RecoveryVariant::kClean, seed, &clean_ms);
    const MonitorStats ch =
        run_recovery_once(RecoveryVariant::kChannel, seed, &channel_ms);
    channel_agg += ch;
    channel_data += ch.token_messages_sent + ch.termination_messages;
    crash_agg += run_recovery_once(RecoveryVariant::kCrash, seed, &crash_ms);
  }
  const double k = static_cast<double>(reps);
  out.put("recovery.clean.wall_ms", clean_ms / k);
  out.put("recovery.channel.wall_ms", channel_ms / k);
  out.put("recovery.channel.data_sent", static_cast<double>(channel_data) / k);
  out.put("recovery.channel.acks_sent",
          static_cast<double>(channel_agg.acks_sent) / k);
  out.put("recovery.channel.retransmissions",
          static_cast<double>(channel_agg.retransmissions) / k);
  out.put("recovery.crash.wall_ms", crash_ms / k);
  out.put("recovery.crash.retransmissions",
          static_cast<double>(crash_agg.retransmissions) / k);
  out.put("recovery.crash.acks_sent",
          static_cast<double>(crash_agg.acks_sent) / k);
  out.put("recovery.crash.dup_suppressed",
          static_cast<double>(crash_agg.dup_suppressed) / k);
  out.put("recovery.crash.checkpoints",
          static_cast<double>(crash_agg.checkpoints_taken) / k);
  out.put("recovery.crash.checkpoint_bytes",
          static_cast<double>(crash_agg.checkpoint_bytes) / k);
  out.put("recovery.crash.restarts",
          static_cast<double>(crash_agg.crash_restarts) / k);

  // Socket-posture rows use a fixed replication count (like socket_grid:
  // quick mode never shrinks reps), so quick and full runs emit comparable
  // values and bench_check can gate them against the committed baseline.
  const int socket_reps = 2;
  SocketRecoveryRow clean_row, fault_row;
  for (int r = 0; r < socket_reps; ++r) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(r);
    run_recovery_socket_once(/*fault=*/false, seed, &clean_row);
    run_recovery_socket_once(/*fault=*/true, seed, &fault_row);
  }
  const double sk = static_cast<double>(socket_reps);
  out.put("recovery.socket.clean.wall_ms", clean_row.wall_ms / sk);
  out.put("recovery.socket.clean.kills",
          static_cast<double>(clean_row.kills) / sk);
  out.put("recovery.socket.clean.retransmissions",
          static_cast<double>(clean_row.retransmissions) / sk);
  out.put("recovery.socket.fault.wall_ms", fault_row.wall_ms / sk);
  out.put("recovery.socket.fault.kills",
          static_cast<double>(fault_row.kills) / sk);
  out.put("recovery.socket.fault.reconnects",
          static_cast<double>(fault_row.reconnects) / sk);
  out.put("recovery.socket.fault.retransmissions",
          static_cast<double>(fault_row.retransmissions) / sk);
  out.put("recovery.socket.fault.disconnect_drops",
          static_cast<double>(fault_row.disconnect_drops) / sk);
}

// ---------------------------------------------------------------------------
// Service suite: the sharded MonitoringService driven to saturation -- every
// session admitted up front, workers drain the backlog -- so wall clock
// measures fleet throughput and the latency histogram captures the queue
// drain. Session counts and trace seeds are identical across shard counts
// (and across quick/full modes for the shared cells), so the .sessions,
// .events, and .monitor_messages metrics are exact CI gates while the rates
// and percentiles are banded. The sK_vs_s1 speedup metric is where multi-
// core scaling shows up; on a 1-core runner it sits near 1.0 by design.
// ---------------------------------------------------------------------------

void run_service_cell(Metrics& out, paper::Property prop, int n, int shards,
                      int sessions, double* s1_wall_ms) {
  service::ServiceConfig config;
  config.num_shards = shards;
  config.keep_outcomes = false;  // fleet posture: scalars only
  service::MonitoringService svc(config);

  const auto t0 = Clock::now();
  for (int i = 0; i < sessions; ++i) {
    service::SessionSpec spec;
    spec.property = prop;
    spec.num_processes = n;
    spec.trace_seed = 2015 + static_cast<std::uint64_t>(i);
    spec.sim.coalesce = CoalesceMode::kTransit;
    spec.options.wire_accounting = WireAccounting::kSampled;
    svc.submit(spec);
  }
  svc.drain();
  const double wall_ms = elapsed_ms(t0);
  const service::ServiceStats st = svc.stats();
  if (st.completed != static_cast<std::uint64_t>(sessions) || st.failed != 0) {
    std::abort();  // a bench cell must drain every session cleanly
  }

  const std::string base = "service." + paper::name(prop) + ".n" +
                           std::to_string(n) + ".s" + std::to_string(shards);
  out.put(base + ".sessions", static_cast<double>(st.completed));
  out.put(base + ".events", static_cast<double>(st.program_events));
  out.put(base + ".monitor_messages",
          static_cast<double>(st.monitor_messages));
  out.put(base + ".wall_ms", wall_ms);
  out.put(base + ".sessions_per_s",
          static_cast<double>(st.completed) * 1e3 / wall_ms);
  out.put(base + ".events_per_s",
          static_cast<double>(st.program_events) * 1e3 / wall_ms);
  out.put(base + ".lat_p50_ms",
          static_cast<double>(st.latency_ns.quantile(0.50)) / 1e6);
  out.put(base + ".lat_p95_ms",
          static_cast<double>(st.latency_ns.quantile(0.95)) / 1e6);
  out.put(base + ".lat_p99_ms",
          static_cast<double>(st.latency_ns.quantile(0.99)) / 1e6);
  out.put(base + ".queue_p99_ms",
          static_cast<double>(st.queue_ns.quantile(0.99)) / 1e6);
  if (shards == 1) {
    *s1_wall_ms = wall_ms;
  } else if (*s1_wall_ms > 0) {
    out.put(base + "_vs_s1.speedup", *s1_wall_ms / wall_ms);
  }
}

void service_grid(Metrics& out, bool quick) {
  // Quick mode is a strict subset of the full grid with identical session
  // counts and seeds, so its exact count metrics match the committed
  // full-mode BENCH_core.json (same contract as cell_grid/socket_grid).
  constexpr int kSessions = 48;
  struct Cell {
    paper::Property prop;
    int n;
  };
  std::vector<Cell> cells = {{paper::Property::kA, 3},
                             {paper::Property::kD, 3}};
  std::vector<int> shard_counts = {1, 2};
  if (!quick) {
    cells.push_back({paper::Property::kD, 5});  // comm-heavy scaling cells
    cells.push_back({paper::Property::kF, 5});
    shard_counts.push_back(4);
  }
  for (const Cell& cell : cells) {
    double s1_wall_ms = 0;
    for (int shards : shard_counts) {
      run_service_cell(out, cell.prop, cell.n, shards, kSessions,
                       &s1_wall_ms);
    }
  }
}

// ---------------------------------------------------------------------------
// Stream suite: the bounded-memory claim as a number (DESIGN.md §12). One
// comm-heavy cell (property F, n=5) at 10x and 20x the default cell trace
// length, run in both postures against the same trace. The control's
// peak_history grows linearly with the trace; the streaming run's must stay
// flat between the two lengths -- that pair of rows is the committed
// evidence that GC actually bounds the window, not just that it runs.
// (Deliberately no RSS metric here: the harness process's high-water mark
// is polluted by every suite that ran before this one; the soak CI job
// measures RSS in a dedicated load_gen process instead.)
// ---------------------------------------------------------------------------

void run_stream_cell(Metrics& out, int internal_events, bool streaming) {
  constexpr int n = 5;
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kF, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params = paper::experiment_params(
      paper::Property::kF, n, 2015, 3.0, /*comm_enabled=*/true,
      internal_events);
  SystemTrace trace = generate_trace(params);
  force_final_all_true(trace);

  MonitorOptions options;
  if (streaming) {
    options.streaming = true;
    options.gc_interval = 16;
  }
  const auto t0 = Clock::now();
  RunResult run = session.run(trace, SimConfig{}, options);
  const double wall_ms = elapsed_ms(t0);
  if (!run.verdict.all_finished) std::abort();

  const MonitorStats& agg = run.verdict.aggregate;
  const std::string base = "stream.F.n5.len" + std::to_string(internal_events) +
                           (streaming ? ".streaming" : ".control");
  out.put(base + ".wall_ms", wall_ms);
  out.put(base + ".peak_history", static_cast<double>(agg.peak_history));
  out.put(base + ".peak_views", static_cast<double>(agg.peak_global_views));
  if (streaming) {
    out.put(base + ".history_trimmed",
            static_cast<double>(agg.history_trimmed));
    out.put(base + ".gc_sweeps", static_cast<double>(agg.gc_sweeps));
  }
}

void stream_suite(Metrics& out, bool quick) {
  // Quick mode emits the 10x length only (a strict subset with identical
  // parameters, same contract as the other grids); full mode adds the 20x
  // row that makes the flat-vs-linear comparison visible.
  std::vector<int> lengths = {250};
  if (!quick) lengths.push_back(500);
  for (int len : lengths) {
    run_stream_cell(out, len, /*streaming=*/false);
    run_stream_cell(out, len, /*streaming=*/true);
  }
}

// ---------------------------------------------------------------------------
// JSON in/out (flat "name": number pairs; no external JSON dependency).
// ---------------------------------------------------------------------------

/// Parse the "metrics" object of a previously emitted file. Accepts exactly
/// the format write_json produces: one `"name": value[,]` pair per line.
std::vector<std::pair<std::string, double>> parse_baseline(
    const std::string& path) {
  std::vector<std::pair<std::string, double>> result;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_harness: cannot read baseline %s\n",
                 path.c_str());
    return result;
  }
  std::string line;
  bool in_metrics = false;
  while (std::getline(in, line)) {
    if (line.find("\"metrics\"") != std::string::npos) {
      in_metrics = true;
      continue;
    }
    if (!in_metrics) continue;
    if (line.find('}') != std::string::npos) break;
    const auto q0 = line.find('"');
    const auto q1 = line.find('"', q0 + 1);
    const auto colon = line.find(':', q1 + 1);
    if (q0 == std::string::npos || q1 == std::string::npos ||
        colon == std::string::npos) {
      continue;
    }
    const std::string name = line.substr(q0 + 1, q1 - q0 - 1);
    result.emplace_back(name, std::stod(line.substr(colon + 1)));
  }
  return result;
}

void write_object(std::ostream& os, const char* key,
                  const std::vector<std::pair<std::string, double>>& entries,
                  bool trailing_comma) {
  os << "  \"" << key << "\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", entries[i].second);
    os << "    \"" << entries[i].first << "\": " << buf
       << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "  }" << (trailing_comma ? "," : "") << "\n";
}

bool is_time_metric(const std::string& name) {
  const auto dot = name.rfind('.');
  const std::string suffix = dot == std::string::npos ? "" : name.substr(dot);
  return suffix == ".ns" || suffix == ".ms" || suffix == ".wall_ms";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_core.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_harness [--quick] [--out FILE] "
                   "[--baseline FILE]\n");
      return 2;
    }
  }

  Metrics metrics;
  std::printf("bench_harness: micro suite (%s)...\n",
              quick ? "quick" : "full");
  micro_suite(metrics, quick);
  std::printf("bench_harness: run_cell grid...\n");
  cell_grid(metrics, quick);
  std::printf("bench_harness: socket grid...\n");
  socket_grid(metrics, quick);
  std::printf("bench_harness: recovery suite...\n");
  recovery_suite(metrics, quick);
  std::printf("bench_harness: service grid...\n");
  service_grid(metrics, quick);
  std::printf("bench_harness: stream suite...\n");
  stream_suite(metrics, quick);

  std::vector<std::pair<std::string, double>> baseline;
  std::vector<std::pair<std::string, double>> speedup;
  if (!baseline_path.empty()) {
    baseline = parse_baseline(baseline_path);
    for (const auto& [name, value] : metrics.entries) {
      if (!is_time_metric(name) || value <= 0) continue;
      for (const auto& [bname, bvalue] : baseline) {
        if (bname == name) {
          speedup.emplace_back(name, bvalue / value);
          break;
        }
      }
    }
  }

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "bench_harness: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  os << "{\n"
     << "  \"schema\": \"decmon-bench-core-v1\",\n"
     << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  const bool have_baseline = !baseline.empty();
  write_object(os, "metrics", metrics.entries, have_baseline);
  if (have_baseline) {
    write_object(os, "baseline", baseline, true);
    write_object(os, "speedup", speedup, false);
  }
  os << "}\n";
  os.close();

  for (const auto& [name, value] : metrics.entries) {
    std::printf("  %-44s %12.4f\n", name.c_str(), value);
  }
  for (const auto& [name, value] : speedup) {
    std::printf("  speedup %-36s %11.2fx\n", name.c_str(), value);
  }
  std::printf("bench_harness: wrote %s (%zu metrics)\n", out_path.c_str(),
              metrics.entries.size());
  return 0;
}
