// Table 5.1 + Fig. 5.1: number of transitions per monitor automaton, for
// properties A-F over 2-5 processes, split into outgoing and self-loop
// transitions. Also prints, for comparison, the sizes of our synthesized
// and fully minimized monitors (the thesis deliberately uses the unreduced
// automata; see DESIGN.md / EXPERIMENTS.md).
//
//   table_5_1_transitions [--dump]   -- with --dump, also emits the DOT
//                                       graphs of the 2-process automata
//                                       (Figs. 2.3 / 5.2 / 5.3).
#include <cstdio>
#include <cstring>

#include "decmon/decmon.hpp"

int main(int argc, char** argv) {
  using namespace decmon;
  const bool dump = argc > 1 && std::strcmp(argv[1], "--dump") == 0;

  std::printf("Table 5.1: transitions per automaton (paper-shaped build)\n");
  std::printf("%-9s", "Property");
  for (int n = 2; n <= 5; ++n) {
    std::printf(" | n=%d total out self", n);
  }
  std::printf("\n");
  for (paper::Property p : paper::kAllProperties) {
    std::printf("%-9s", paper::name(p).c_str());
    for (int n = 2; n <= 5; ++n) {
      AtomRegistry reg = paper::make_registry(n);
      MonitorAutomaton m = paper::build_automaton(p, n, reg);
      std::printf(" | %8d %3d %4d", m.count_total(), m.count_outgoing(),
                  m.count_self_loops());
    }
    std::printf("\n");
  }

  std::printf(
      "\nSynthesized + minimized monitors (states / transitions after "
      "cube-minimal splitting):\n");
  std::printf("%-9s", "Property");
  for (int n = 2; n <= 5; ++n) std::printf(" | n=%d st tot", n);
  std::printf("\n");
  for (paper::Property p : paper::kAllProperties) {
    std::printf("%-9s", paper::name(p).c_str());
    for (int n = 2; n <= 5; ++n) {
      AtomRegistry reg = paper::make_registry(n);
      MonitorAutomaton m =
          synthesize_monitor(paper::formula(p, n, reg));
      std::printf(" | %5d %5d", m.num_states(), m.count_total());
    }
    std::printf("\n");
  }

  std::printf("\nFig. 5.1a (all transitions) series:\n");
  for (paper::Property p : paper::kAllProperties) {
    std::printf("Property %s:", paper::name(p).c_str());
    for (int n = 2; n <= 5; ++n) {
      AtomRegistry reg = paper::make_registry(n);
      std::printf(" %d", paper::build_automaton(p, n, reg).count_total());
    }
    std::printf("\n");
  }
  std::printf("Fig. 5.1b (outgoing transitions) series:\n");
  for (paper::Property p : paper::kAllProperties) {
    std::printf("Property %s:", paper::name(p).c_str());
    for (int n = 2; n <= 5; ++n) {
      AtomRegistry reg = paper::make_registry(n);
      std::printf(" %d", paper::build_automaton(p, n, reg).count_outgoing());
    }
    std::printf("\n");
  }

  if (dump) {
    for (paper::Property p : paper::kAllProperties) {
      AtomRegistry reg = paper::make_registry(2);
      MonitorAutomaton m = paper::build_automaton(p, 2, reg);
      std::printf("\n// Property %s with 2 processes\n%s",
                  paper::name(p).c_str(), m.to_dot(&reg).c_str());
    }
  }
  return 0;
}
