// Fig. 5.9: the effect of the communication frequency on monitoring
// overhead -- 4 processes running property C with CommMu in
// {3, 6, 9, 15, no-comm} seconds (EvtMu fixed at 3 s).
// Headline claims to reproduce:
//   (a) fewer communication events => fewer program events and fewer
//       monitoring messages (receives count as events; fewer inconsistent
//       views need repair);
//   (b) the delay drops as communication thins out, EXCEPT for the
//       no-communication extreme, where every pair of events is concurrent
//       and the delay rises again;
//   (c) total global views grow as communication decreases (wider lattice,
//       more concurrency to cover).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace decmon;
  using namespace decmon::bench;

  struct Setting {
    const char* label;
    double comm_mu;
    bool enabled;
  };
  const Setting settings[] = {
      {"commMu=3", 3.0, true},   {"commMu=6", 6.0, true},
      {"commMu=9", 9.0, true},   {"commMu=15", 15.0, true},
      {"no comm", 0.0, false},
  };

  std::printf("Property C, 4 processes, EvtMu = 3s\n");
  std::printf("%-10s %10s %10s %12s %12s %12s %12s\n", "setting", "events",
              "mon.msgs", "log10(evts)", "log10(msgs)", "avg delayed",
              "glob.views");
  for (const Setting& s : settings) {
    Cell c = run_cell(paper::Property::kC, 4, s.comm_mu, s.enabled);
    std::printf("%-10s %10.1f %10.1f %12.3f %12.3f %12.3f %12.1f\n", s.label,
                c.events, c.monitor_messages, log_scale(c.events),
                log_scale(c.monitor_messages), c.delayed_events,
                c.global_views);
  }
  std::printf("\ndelay time %% per global view:\n");
  for (const Setting& s : settings) {
    Cell c = run_cell(paper::Property::kC, 4, s.comm_mu, s.enabled);
    std::printf("%-10s %12.5f\n", s.label, c.delay_pct_per_view);
  }
  return 0;
}
