// Fig. 5.4: monitoring-message overhead for properties A, B and C with
// CommMu = 3 s, CommSigma = 1 s, EvtMu = 3 s, EvtSigma = 1 s, for 2-5
// processes. The figure plots total program events and total monitoring
// messages on a log10 scale; we print both raw counts and log values.
// Headline claims to reproduce: A and C grow linearly with the events,
// B grows sub-linearly (its only outgoing transition makes monitors consult
// peers only when their local proposition is true).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace decmon;
  using namespace decmon::bench;

  const paper::Property props[] = {paper::Property::kA, paper::Property::kB,
                                   paper::Property::kC};
  for (paper::Property p : props) {
    std::printf("Property %s  (CommMu=3s CommSigma=1s EvtMu=3s EvtSigma=1s)\n",
                paper::name(p).c_str());
    std::printf("  %-10s %10s %10s %12s %12s %8s\n", "processes", "events",
                "mon.msgs", "log10(evts)", "log10(msgs)", "msg/evt");
    for (int n = 2; n <= 5; ++n) {
      Cell c = run_cell(p, n, 3.0, true);
      std::printf("  %-10d %10.1f %10.1f %12.3f %12.3f %8.3f\n", n, c.events,
                  c.monitor_messages, log_scale(c.events),
                  log_scale(c.monitor_messages),
                  c.events > 0 ? c.monitor_messages / c.events : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}
