// Google-benchmark micro benchmarks of the core components: monitor
// synthesis, automaton stepping, vector-clock operations, predicate
// detection (slicing), the oracle's lattice DP and whole monitored runs.
#include <benchmark/benchmark.h>

#include <random>

#include "decmon/decmon.hpp"

namespace {

using namespace decmon;

void BM_VectorClockCompare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  VectorClock a(n);
  VectorClock b(n);
  std::mt19937_64 rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint32_t>(rng() % 100);
    b[i] = static_cast<std::uint32_t>(rng() % 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_VectorClockCompare)->Arg(4)->Arg(16)->Arg(64);

void BM_MonitorSynthesis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    AtomRegistry reg = paper::make_registry(n);
    FormulaPtr f = paper::formula(paper::Property::kD, n, reg);
    benchmark::DoNotOptimize(synthesize_monitor(f));
  }
}
BENCHMARK(BM_MonitorSynthesis)->Arg(2)->Arg(3)->Arg(4);

void BM_AutomatonStep(benchmark::State& state) {
  AtomRegistry reg = paper::make_registry(4);
  MonitorAutomaton m =
      paper::build_automaton(paper::Property::kF, 4, reg);
  std::mt19937_64 rng(7);
  std::vector<AtomSet> letters;
  for (int i = 0; i < 256; ++i) letters.push_back(rng() & 0xFF);
  int q = m.initial_state();
  std::size_t i = 0;
  for (auto _ : state) {
    q = *m.step(q, letters[i++ & 255]);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_AutomatonStep);

void BM_SlicerLeastCut(benchmark::State& state) {
  const int n = 3;
  AtomRegistry reg = paper::make_registry(n);
  ComputationBuilder b(n, &reg);
  std::mt19937_64 rng(5);
  for (int e = 0; e < 120; ++e) {
    const int p = static_cast<int>(rng() % n);
    b.internal(p, {static_cast<std::int64_t>(rng() % 2),
                   static_cast<std::int64_t>(rng() % 2)});
  }
  Computation comp = b.build();
  Cube pred{0b010101, 0};  // all three p's true
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        least_satisfying_cut(comp, pred, reg, comp.bottom()));
  }
}
BENCHMARK(BM_SlicerLeastCut);

void BM_OracleLatticeDP(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  AtomRegistry reg = paper::make_registry(2);
  MonitorAutomaton m = paper::build_automaton(paper::Property::kC, 2, reg);
  ComputationBuilder b(2, &reg);
  std::mt19937_64 rng(3);
  for (int e = 0; e < events; ++e) {
    b.internal(static_cast<int>(rng() % 2),
               {static_cast<std::int64_t>(rng() % 2),
                static_cast<std::int64_t>(rng() % 2)});
  }
  Computation comp = b.build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle_evaluate(comp, m, std::size_t{1} << 22));
  }
}
BENCHMARK(BM_OracleLatticeDP)->Arg(16)->Arg(32)->Arg(64);

void BM_MonitoredRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kC, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params = paper::experiment_params(paper::Property::kC, n, 9);
  SystemTrace trace = generate_trace(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(trace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.total_events()));
}
BENCHMARK(BM_MonitoredRun)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_CentralizedRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton =
      paper::build_automaton(paper::Property::kC, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  TraceParams params = paper::experiment_params(paper::Property::kC, n, 9);
  SystemTrace trace = generate_trace(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_centralized(trace));
  }
}
BENCHMARK(BM_CentralizedRun)->Arg(2)->Arg(3);

void BM_LtlParse(benchmark::State& state) {
  for (auto _ : state) {
    AtomRegistry reg = paper::make_registry(5);
    benchmark::DoNotOptimize(
        parse_ltl(paper::formula_text(paper::Property::kF, 5), reg));
  }
}
BENCHMARK(BM_LtlParse);

}  // namespace

BENCHMARK_MAIN();
