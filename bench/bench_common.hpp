// Shared harness for the figure/table benches: run one experimental cell
// (property, process count, communication settings) the way Chapter 5 does
// -- three replications with different randomly generated traces, averaged.
#pragma once

#include <cmath>
#include <cstdio>

#include "decmon/decmon.hpp"

namespace decmon::bench {

struct Cell {
  double events = 0;            ///< program events (internal+send+receive)
  double app_messages = 0;
  double monitor_messages = 0;  ///< Fig. 5.4/5.5/5.9a metric
  double global_views = 0;      ///< Fig. 5.8/5.9c metric
  double delayed_events = 0;    ///< Fig. 5.7/5.9b metric
  double delay_pct_per_view = 0;///< Fig. 5.6/5.9b metric
  double program_time = 0;
  double monitor_extra_time = 0;
};

// Note on the grid: properties A and C produce byte-identical numbers at
// n = 3. That is not a bug in the harness -- it is the formulas. A is
// G(conj(0..n/2, p) U conj(n/2..n, p)) and C is G(P0.p U conj(1..n, p)),
// so whenever n/2 == 1 (i.e. n = 2 or 3) the two are the same formula and
// paper::experiment_params drives them with the same seeds. They diverge
// from n = 4 on (A's left conjunct widens), which the n = 5 cells show.
inline Cell run_cell(paper::Property prop, int n, double comm_mu,
                     bool comm_enabled, int internal_events = 25,
                     int replications = 3, std::uint64_t base_seed = 2015) {
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));

  // The figure benches measure the communication cost of monitoring, so run
  // with in-transit frame coalescing (the deployment posture); equivalence
  // tests use the default kExact mode, which preserves golden schedules.
  SimConfig sim;
  sim.coalesce = CoalesceMode::kTransit;

  Cell cell;
  for (int r = 0; r < replications; ++r) {
    TraceParams params = paper::experiment_params(
        prop, n, base_seed + static_cast<std::uint64_t>(r), comm_mu,
        comm_enabled, internal_events);
    SystemTrace trace = generate_trace(params);
    force_final_all_true(trace);
    RunResult run = session.run(trace, sim);
    cell.events += static_cast<double>(run.program_events);
    cell.app_messages += static_cast<double>(run.app_messages);
    cell.monitor_messages += static_cast<double>(run.monitor_messages);
    cell.global_views += static_cast<double>(run.total_global_views);
    cell.delayed_events += run.average_delayed_events;
    cell.delay_pct_per_view += run.delay_time_percent_per_view();
    cell.program_time += run.program_end;
    cell.monitor_extra_time +=
        run.monitor_end > run.program_end ? run.monitor_end - run.program_end
                                          : 0.0;
  }
  const double k = static_cast<double>(replications);
  cell.events /= k;
  cell.app_messages /= k;
  cell.monitor_messages /= k;
  cell.global_views /= k;
  cell.delayed_events /= k;
  cell.delay_pct_per_view /= k;
  cell.program_time /= k;
  cell.monitor_extra_time /= k;
  return cell;
}

/// log10 with the figures' convention (they plot counts on a log scale).
inline double log_scale(double x) { return x > 0 ? std::log10(x) : 0.0; }

}  // namespace decmon::bench
