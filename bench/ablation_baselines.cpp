// Ablations and baselines beyond the paper's figures:
//   1. Decentralized vs centralized monitoring (Table 6.1's trade-offs made
//      quantitative): network messages and memory for the same workloads.
//   2. The algorithm's own optimizations (4.3.2 probe dedup, 4.3.3
//      same-destination pruning) switched off one at a time.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace decmon;

struct Numbers {
  double messages = 0;
  double memory = 0;  // global views (dec) / explored cuts (cen)
  double tokens = 0;
};

Numbers run_once(paper::Property prop, int n, bool centralized,
                 MonitorOptions options = {}) {
  AtomRegistry reg = paper::make_registry(n);
  MonitorAutomaton automaton = paper::build_automaton(prop, n, reg);
  MonitorSession session(std::move(reg), std::move(automaton));
  Numbers out;
  const int reps = 3;
  for (int r = 0; r < reps; ++r) {
    TraceParams params = paper::experiment_params(
        prop, n, 77 + static_cast<std::uint64_t>(r), 3.0, true, 25);
    SystemTrace trace = generate_trace(params);
    force_final_all_true(trace);
    RunResult run = centralized ? session.run_centralized(trace)
                                : session.run(trace, SimConfig{}, options);
    out.messages += static_cast<double>(run.monitor_messages);
    out.memory += static_cast<double>(run.total_global_views);
    out.tokens +=
        static_cast<double>(run.verdict.aggregate.tokens_created);
  }
  out.messages /= reps;
  out.memory /= reps;
  out.tokens /= reps;
  return out;
}

}  // namespace

int main() {
  using namespace decmon;

  std::printf("Decentralized vs centralized (CommMu=3s, 25 internal events "
              "per process, avg of 3 runs)\n");
  std::printf("%-9s %-4s | %12s %12s | %12s %12s\n", "property", "n",
              "dec msgs", "dec views", "cen msgs", "cen cuts");
  for (paper::Property p :
       {paper::Property::kB, paper::Property::kC, paper::Property::kD}) {
    for (int n = 2; n <= 5; ++n) {
      Numbers dec = run_once(p, n, /*centralized=*/false);
      Numbers cen = run_once(p, n, /*centralized=*/true);
      std::printf("%-9s %-4d | %12.1f %12.1f | %12.1f %12.1f\n",
                  paper::name(p).c_str(), n, dec.messages, dec.memory,
                  cen.messages, cen.memory);
    }
  }

  std::printf("\nOptimization ablation (property D, 4 processes)\n");
  std::printf("%-34s %12s %12s %12s\n", "configuration", "messages",
              "views", "tokens");
  MonitorOptions all_on;
  MonitorOptions no_dedupe;
  no_dedupe.dedupe_probes = false;
  MonitorOptions no_prune;
  no_prune.prune_same_destination = false;
  MonitorOptions none;
  none.dedupe_probes = false;
  none.prune_same_destination = false;
  MonitorOptions jump;
  jump.walk_mode = WalkMode::kJoinJump;
  MonitorOptions no_subsume;
  no_subsume.subsume_views = false;
  no_subsume.merge_by_state = false;
  const struct {
    const char* label;
    MonitorOptions options;
  } configs[] = {
      {"all optimizations (default)", all_on},
      {"without probe dedup (4.3.2)", no_dedupe},
      {"without same-dest pruning (4.3.3)", no_prune},
      {"without view subsumption/merge", no_subsume},
      {"no optimizations", none},
      {"thesis join-jump walk (unsound)", jump},
  };
  for (const auto& cfg : configs) {
    Numbers x = run_once(paper::Property::kD, 4, false, cfg.options);
    std::printf("%-34s %12.1f %12.1f %12.1f\n", cfg.label, x.messages,
                x.memory, x.tokens);
  }
  return 0;
}
