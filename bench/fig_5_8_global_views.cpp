// Fig. 5.8: memory overhead measured as the total number of global views
// created across all monitor processes, for all six properties over 2-5
// processes.
// Headline claims to reproduce: growth is linear in the number of
// processes; B and E create the fewest views (one outgoing transition),
// the complex automaton F the most.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace decmon;
  using namespace decmon::bench;

  std::printf("Fig 5.8a: total global views created (properties A-C)\n");
  std::printf("%-10s %10s %10s %10s\n", "processes", "A", "B", "C");
  for (int n = 2; n <= 5; ++n) {
    std::printf("%-10d %10.1f %10.1f %10.1f\n", n,
                run_cell(paper::Property::kA, n, 3.0, true).global_views,
                run_cell(paper::Property::kB, n, 3.0, true).global_views,
                run_cell(paper::Property::kC, n, 3.0, true).global_views);
  }
  std::printf("\nFig 5.8b: total global views created (properties D-F)\n");
  std::printf("%-10s %10s %10s %10s\n", "processes", "D", "E", "F");
  for (int n = 2; n <= 5; ++n) {
    std::printf("%-10d %10.1f %10.1f %10.1f\n", n,
                run_cell(paper::Property::kD, n, 3.0, true).global_views,
                run_cell(paper::Property::kE, n, 3.0, true).global_views,
                run_cell(paper::Property::kF, n, 3.0, true).global_views);
  }
  return 0;
}
