// Fig. 5.6: detection latency measured as the paper's normalized delay-time
// percentage, ((MonitorExtraTime / ProgramTime) * 100) / TotalGlobalViews,
// for all six properties over 2-5 processes.
// Headline claims to reproduce: delay grows with the number of processes
// for the complex properties (A, C, D, F), while B and E stay low thanks to
// their single outgoing transition.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace decmon;
  using namespace decmon::bench;

  // Compute each experimental cell exactly once.
  Cell cells[6][6];
  for (paper::Property p : paper::kAllProperties) {
    for (int n = 2; n <= 5; ++n) {
      cells[static_cast<int>(p)][n] = run_cell(p, n, 3.0, true);
    }
  }
  auto cell = [&](paper::Property p, int n) -> const Cell& {
    return cells[static_cast<int>(p)][n];
  };

  std::printf("Fig 5.6a: delay time %% per global view (properties A-C)\n");
  std::printf("%-10s %10s %10s %10s\n", "processes", "A", "B", "C");
  for (int n = 2; n <= 5; ++n) {
    std::printf("%-10d %10.4f %10.4f %10.4f\n", n,
                cell(paper::Property::kA, n).delay_pct_per_view,
                cell(paper::Property::kB, n).delay_pct_per_view,
                cell(paper::Property::kC, n).delay_pct_per_view);
  }
  std::printf("\nFig 5.6b: delay time %% per global view (properties D-F)\n");
  std::printf("%-10s %10s %10s %10s\n", "processes", "D", "E", "F");
  for (int n = 2; n <= 5; ++n) {
    std::printf("%-10d %10.4f %10.4f %10.4f\n", n,
                cell(paper::Property::kD, n).delay_pct_per_view,
                cell(paper::Property::kE, n).delay_pct_per_view,
                cell(paper::Property::kF, n).delay_pct_per_view);
  }
  std::printf(
      "\n(raw averages: monitor extra time over program time, seconds)\n");
  std::printf("%-10s", "processes");
  for (paper::Property p : paper::kAllProperties) {
    std::printf(" %9s", paper::name(p).c_str());
  }
  std::printf("\n");
  for (int n = 2; n <= 5; ++n) {
    std::printf("%-10d", n);
    for (paper::Property p : paper::kAllProperties) {
      std::printf(" %9.4f", cell(p, n).monitor_extra_time);
    }
    std::printf("\n");
  }
  return 0;
}
