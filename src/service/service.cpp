#include "decmon/service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "decmon/monitor/monitor_process.hpp"

namespace decmon::service {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

MonitoringService::MonitoringService(ServiceConfig config)
    : config_(config) {
  if (config_.num_shards < 1) config_.num_shards = 1;
  shards_.reserve(static_cast<std::size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(shards_.size());
  for (int i = 0; i < config_.num_shards; ++i) {
    threads_.emplace_back([this, i] { worker(i); });
  }
}

MonitoringService::~MonitoringService() {
  drain();
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

SessionId MonitoringService::submit(const SessionSpec& spec) {
  SessionId id;
  {
    std::scoped_lock lock(mutex_);
    id = slots_.size();
    slots_.push_back(Slot{});
    Slot& slot = slots_.back();
    slot.spec = spec;
    slot.outcome.id = id;
    slot.admitted_at = Clock::now();
    const int affinity =
        spec.affinity >= 0 && spec.affinity < num_shards()
            ? spec.affinity
            : static_cast<int>(id % shards_.size());
    shards_[static_cast<std::size_t>(affinity)]->queue.push_back(&slot);
  }
  // All workers may be parked on empty own-queues waiting to steal; wake
  // them all and let pop_locked decide who takes it.
  work_cv_.notify_all();
  return id;
}

void MonitoringService::drain() {
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [&] { return completed_ == slots_.size(); });
}

bool MonitoringService::has_work_locked(int self) const {
  if (!shards_[static_cast<std::size_t>(self)]->queue.empty()) return true;
  if (!config_.steal) return false;
  for (const auto& shard : shards_) {
    if (!shard->queue.empty()) return true;
  }
  return false;
}

MonitoringService::Slot* MonitoringService::pop_locked(int self,
                                                       bool* stolen) {
  Shard& own = *shards_[static_cast<std::size_t>(self)];
  if (!own.queue.empty()) {
    Slot* slot = own.queue.front();
    own.queue.pop_front();
    *stolen = false;
    return slot;
  }
  if (!config_.steal) return nullptr;
  // Steal from the back of the most backlogged peer: the oldest sessions
  // keep their affinity shard's FIFO order, the newest absorb the idle
  // capacity.
  Shard* victim = nullptr;
  for (const auto& shard : shards_) {
    if (shard->queue.empty()) continue;
    if (!victim || shard->queue.size() > victim->queue.size()) {
      victim = shard.get();
    }
  }
  if (!victim) return nullptr;
  Slot* slot = victim->queue.back();
  victim->queue.pop_back();
  *stolen = true;
  return slot;
}

MonitorSession& MonitoringService::session_for(Shard& shard,
                                               const SessionSpec& spec) {
  const int key = static_cast<int>(spec.property) * 64 + spec.num_processes;
  auto it = shard.catalog.find(key);
  if (it == shard.catalog.end()) {
    // Zero-copy warm-up: every shard's catalog holds the same immutable
    // artifact (AOT generated monitor or one fleet-wide synthesis, see
    // paper::shared_property) -- admission is a lookup plus a refcount
    // bump, nothing property-sized is copied per shard.
    it = shard.catalog
             .emplace(key, std::make_unique<MonitorSession>(
                               paper::shared_property(
                                   spec.property, spec.num_processes,
                                   paper::make_registry(spec.num_processes))))
             .first;
  }
  return *it->second;
}

void MonitoringService::worker(int shard_index) {
  Shard& self = *shards_[static_cast<std::size_t>(shard_index)];
  for (;;) {
    Slot* slot = nullptr;
    bool stolen = false;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stopping_ || has_work_locked(shard_index); });
      slot = pop_locked(shard_index, &stolen);
      if (!slot) {
        if (stopping_) return;
        continue;  // raced with another worker; go back to waiting
      }
      slot->outcome.shard = shard_index;
      slot->outcome.stolen = stolen;
    }

    const auto started_at = Clock::now();
    SessionOutcome& out = slot->outcome;
    try {
      const SessionSpec& spec = slot->spec;
      TraceParams params = paper::experiment_params(
          spec.property, spec.num_processes, spec.trace_seed, spec.comm_mu,
          spec.comm_enabled, spec.internal_events);
      SystemTrace trace = generate_trace(params);
      force_final_all_true(trace);
      MonitorSession& session = session_for(self, spec);
      out.result = session.run(trace, spec.sim, spec.options);
      out.ok = out.result.verdict.all_finished;
      if (!out.ok) out.error = "monitors did not drain";
    } catch (const MonitorOverflow& e) {
      // The spec asked for a bound and the session hit it: a surfaced,
      // intentional outcome, not a fleet failure.
      out.ok = false;
      out.overflowed = true;
      out.error = e.what();
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
    }
    const auto done_at = Clock::now();
    out.queue_ms = ms_between(slot->admitted_at, started_at);
    out.latency_ms = ms_between(slot->admitted_at, done_at);

    {
      std::scoped_lock lock(mutex_);
      self.completed += 1;
      if (out.overflowed) {
        self.overflowed += 1;
      } else if (!out.ok) {
        self.failed += 1;
      }
      if (stolen) self.stolen += 1;
      self.program_events += out.result.program_events;
      self.monitor_messages += out.result.monitor_messages;
      if (out.result.verdict.violated()) self.violations += 1;
      if (out.result.verdict.satisfied()) self.satisfactions += 1;
      self.latency_ns.record(ns_between(slot->admitted_at, done_at));
      self.queue_ns.record(ns_between(slot->admitted_at, started_at));
      self.busy_ms += ms_between(started_at, done_at);
      if (!config_.keep_outcomes) {
        // Keep the scalars (already aggregated above) but drop the bulky
        // per-monitor stats and verdict sets.
        out.result.verdict.per_monitor.clear();
        out.result.verdict.per_monitor.shrink_to_fit();
      }
      slot->done = true;
      ++completed_;
      if (completed_ == slots_.size()) drain_cv_.notify_all();
    }
  }
}

ServiceStats MonitoringService::stats() const {
  ServiceStats agg;
  std::scoped_lock lock(mutex_);
  agg.admitted = slots_.size();
  agg.completed = completed_;
  agg.per_shard_completed.reserve(shards_.size());
  agg.per_shard_busy_ms.reserve(shards_.size());
  for (const auto& shard : shards_) {
    agg.failed += shard->failed;
    agg.overflowed += shard->overflowed;
    agg.stolen += shard->stolen;
    agg.program_events += shard->program_events;
    agg.monitor_messages += shard->monitor_messages;
    agg.violations += shard->violations;
    agg.satisfactions += shard->satisfactions;
    agg.latency_ns.merge(shard->latency_ns);
    agg.queue_ns.merge(shard->queue_ns);
    agg.per_shard_completed.push_back(shard->completed);
    agg.per_shard_busy_ms.push_back(shard->busy_ms);
  }
  return agg;
}

std::vector<SessionOutcome> MonitoringService::outcomes() const {
  std::vector<SessionOutcome> out;
  std::scoped_lock lock(mutex_);
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    if (slot.done) out.push_back(slot.outcome);
  }
  std::sort(out.begin(), out.end(),
            [](const SessionOutcome& a, const SessionOutcome& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace decmon::service
