#include "decmon/ltl/atoms.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace decmon {

std::string to_string(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kGe: return ">=";
    case CmpOp::kGt: return ">";
  }
  return "?";
}

bool Atom::holds(std::int64_t value) const {
  switch (op) {
    case CmpOp::kLt: return value < rhs;
    case CmpOp::kLe: return value <= rhs;
    case CmpOp::kEq: return value == rhs;
    case CmpOp::kNe: return value != rhs;
    case CmpOp::kGe: return value >= rhs;
    case CmpOp::kGt: return value > rhs;
  }
  return false;
}

bool Atom::holds_in(const LocalState& s) const {
  const std::int64_t value =
      (var >= 0 && static_cast<std::size_t>(var) < s.size()) ? s[var] : 0;
  return holds(value);
}

AtomRegistry::AtomRegistry(int num_processes) { set_num_processes(num_processes); }

void AtomRegistry::set_num_processes(int n) {
  if (n < num_processes_) {
    throw std::invalid_argument("AtomRegistry: cannot shrink process count");
  }
  num_processes_ = n;
  var_names_.resize(static_cast<std::size_t>(n));
  var_ids_.resize(static_cast<std::size_t>(n));
}

int AtomRegistry::declare_variable(int proc, const std::string& name) {
  if (proc < 0 || proc >= num_processes_) {
    throw std::out_of_range("AtomRegistry::declare_variable: bad process");
  }
  auto& ids = var_ids_[static_cast<std::size_t>(proc)];
  auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  auto& names = var_names_[static_cast<std::size_t>(proc)];
  const int id = static_cast<int>(names.size());
  names.push_back(name);
  ids.emplace(name, id);
  return id;
}

std::optional<int> AtomRegistry::find_variable(int proc,
                                               const std::string& name) const {
  if (proc < 0 || proc >= num_processes_) return std::nullopt;
  const auto& ids = var_ids_[static_cast<std::size_t>(proc)];
  auto it = ids.find(name);
  if (it == ids.end()) return std::nullopt;
  return it->second;
}

int AtomRegistry::num_variables(int proc) const {
  return static_cast<int>(var_names_.at(static_cast<std::size_t>(proc)).size());
}

const std::string& AtomRegistry::variable_name(int proc, int var) const {
  return var_names_.at(static_cast<std::size_t>(proc))
      .at(static_cast<std::size_t>(var));
}

int AtomRegistry::intern_atom(Atom a) {
  std::ostringstream key;
  key << a.process << '.' << a.var << to_string(a.op) << a.rhs;
  auto it = atom_ids_.find(key.str());
  if (it != atom_ids_.end()) return it->second;
  a.id = static_cast<int>(atoms_.size());
  if (a.id >= 64) {
    throw std::length_error("AtomRegistry: more than 64 atoms unsupported");
  }
  atom_ids_.emplace(key.str(), a.id);
  atoms_.push_back(std::move(a));
  return atoms_.back().id;
}

int AtomRegistry::comparison_atom(int proc, int var, CmpOp op,
                                  std::int64_t rhs) {
  Atom a;
  a.process = proc;
  a.var = var;
  a.op = op;
  a.rhs = rhs;
  std::ostringstream name;
  name << variable_name(proc, var) << ' ' << to_string(op) << ' ' << rhs;
  a.name = name.str();
  return intern_atom(std::move(a));
}

int AtomRegistry::boolean_atom(int proc, int var) {
  Atom a;
  a.process = proc;
  a.var = var;
  a.op = CmpOp::kNe;
  a.rhs = 0;
  a.name = "P" + std::to_string(proc) + "." + variable_name(proc, var);
  return intern_atom(std::move(a));
}

std::optional<int> AtomRegistry::resolve_boolean(const std::string& dotted) {
  // Convention: "P<k>.<var>" (also accepts lowercase 'p').
  if (dotted.size() < 4 || (dotted[0] != 'P' && dotted[0] != 'p')) {
    return std::nullopt;
  }
  const std::size_t dot = dotted.find('.');
  if (dot == std::string::npos || dot < 2) return std::nullopt;
  int proc = 0;
  for (std::size_t i = 1; i < dot; ++i) {
    if (dotted[i] < '0' || dotted[i] > '9') return std::nullopt;
    proc = proc * 10 + (dotted[i] - '0');
  }
  if (proc >= num_processes_) return std::nullopt;
  const std::string var = dotted.substr(dot + 1);
  if (var.empty()) return std::nullopt;
  return boolean_atom(proc, declare_variable(proc, var));
}

std::optional<std::pair<int, int>> AtomRegistry::resolve_bare(
    const std::string& name) const {
  std::optional<std::pair<int, int>> found;
  for (int p = 0; p < num_processes_; ++p) {
    if (auto v = find_variable(p, name)) {
      if (found) return std::nullopt;  // ambiguous across processes
      found = {p, *v};
    }
  }
  return found;
}

AtomSet AtomRegistry::evaluate(const GlobalState& g) const {
  AtomSet set = 0;
  for (const Atom& a : atoms_) {
    if (a.process >= 0 && static_cast<std::size_t>(a.process) < g.size() &&
        a.holds_in(g[static_cast<std::size_t>(a.process)])) {
      set |= AtomSet{1} << a.id;
    }
  }
  return set;
}

AtomSet AtomRegistry::evaluate_local(int proc, const LocalState& s) const {
  AtomSet set = 0;
  for (const Atom& a : atoms_) {
    if (a.process == proc && a.holds_in(s)) set |= AtomSet{1} << a.id;
  }
  return set;
}

AtomSet AtomRegistry::owned_mask(int proc) const {
  AtomSet set = 0;
  for (const Atom& a : atoms_) {
    if (a.process == proc) set |= AtomSet{1} << a.id;
  }
  return set;
}

}  // namespace decmon
