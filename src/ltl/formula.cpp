#include "decmon/ltl/formula.hpp"

#include <mutex>
#include <sstream>
#include <unordered_map>

namespace decmon {
namespace {

struct Key {
  LtlOp op;
  int atom;
  const Formula* lhs;
  const Formula* rhs;
  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    std::size_t h = static_cast<std::size_t>(k.op) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::size_t>(k.atom + 1) * 0xBF58476D1CE4E5B9ull;
    h ^= reinterpret_cast<std::uintptr_t>(k.lhs) * 0x94D049BB133111EBull;
    h ^= reinterpret_cast<std::uintptr_t>(k.rhs) * 0x2545F4914F6CDD1Dull;
    return h;
  }
};

}  // namespace

/// Global hash-consing table. Guarded by a mutex: formula construction is a
/// setup-time activity, never on the monitoring hot path (CP.3: the only
/// shared mutable state is this interner).
class FormulaFactory {
 public:
  static FormulaFactory& instance() {
    static FormulaFactory f;
    return f;
  }

  FormulaPtr make(LtlOp op, int atom, FormulaPtr lhs, FormulaPtr rhs) {
    std::scoped_lock lock(mu_);
    Key key{op, atom, lhs.get(), rhs.get()};
    auto it = table_.find(key);
    if (it != table_.end()) {
      if (auto sp = it->second.lock()) return sp;
    }
    auto node = std::shared_ptr<Formula>(new Formula());
    node->op_ = op;
    node->atom_ = atom;
    node->lhs_ = lhs;
    node->rhs_ = rhs;
    node->atom_mask_ = (atom >= 0 ? (AtomSet{1} << atom) : 0) |
                       (lhs ? lhs->atom_mask() : 0) |
                       (rhs ? rhs->atom_mask() : 0);
    table_[key] = node;
    return node;
  }

 private:
  std::mutex mu_;
  std::unordered_map<Key, std::weak_ptr<const Formula>, KeyHash> table_;
};

namespace {
FormulaPtr make(LtlOp op, int atom, FormulaPtr lhs, FormulaPtr rhs) {
  return FormulaFactory::instance().make(op, atom, std::move(lhs),
                                         std::move(rhs));
}
}  // namespace

FormulaPtr f_true() { return make(LtlOp::kTrue, -1, nullptr, nullptr); }
FormulaPtr f_false() { return make(LtlOp::kFalse, -1, nullptr, nullptr); }

FormulaPtr f_atom(int atom_id) {
  return make(LtlOp::kAtom, atom_id, nullptr, nullptr);
}

FormulaPtr f_not(FormulaPtr f) {
  if (f->is_true()) return f_false();
  if (f->is_false()) return f_true();
  if (f->op() == LtlOp::kNot) return f->lhs();  // double negation
  return make(LtlOp::kNot, -1, std::move(f), nullptr);
}

FormulaPtr f_and(FormulaPtr a, FormulaPtr b) {
  if (a->is_false() || b->is_false()) return f_false();
  if (a->is_true()) return b;
  if (b->is_true()) return a;
  if (a == b) return a;
  // Canonical operand order so hash-consing folds commuted conjunctions.
  if (a.get() > b.get()) std::swap(a, b);
  return make(LtlOp::kAnd, -1, std::move(a), std::move(b));
}

FormulaPtr f_or(FormulaPtr a, FormulaPtr b) {
  if (a->is_true() || b->is_true()) return f_true();
  if (a->is_false()) return b;
  if (b->is_false()) return a;
  if (a == b) return a;
  if (a.get() > b.get()) std::swap(a, b);
  return make(LtlOp::kOr, -1, std::move(a), std::move(b));
}

FormulaPtr f_next(FormulaPtr f) {
  // X true == true and X false == false over infinite words.
  if (f->is_true() || f->is_false()) return f;
  return make(LtlOp::kNext, -1, std::move(f), nullptr);
}

FormulaPtr f_until(FormulaPtr a, FormulaPtr b) {
  if (b->is_true() || b->is_false()) return b;  // x U true / x U false
  if (a->is_false()) return b;                  // false U b == b
  if (a == b) return b;
  return make(LtlOp::kUntil, -1, std::move(a), std::move(b));
}

FormulaPtr f_release(FormulaPtr a, FormulaPtr b) {
  if (b->is_true() || b->is_false()) return b;
  if (a->is_true()) return b;  // true R b == b
  if (a == b) return b;
  return make(LtlOp::kRelease, -1, std::move(a), std::move(b));
}

FormulaPtr f_implies(FormulaPtr a, FormulaPtr b) {
  return f_or(f_not(std::move(a)), std::move(b));
}

FormulaPtr f_iff(FormulaPtr a, FormulaPtr b) {
  return f_and(f_implies(a, b), f_implies(b, a));
}

FormulaPtr f_eventually(FormulaPtr f) { return f_until(f_true(), std::move(f)); }

FormulaPtr f_always(FormulaPtr f) { return f_release(f_false(), std::move(f)); }

FormulaPtr f_and_all(const std::vector<FormulaPtr>& fs) {
  FormulaPtr out = f_true();
  for (const auto& f : fs) out = f_and(out, f);
  return out;
}

FormulaPtr f_or_all(const std::vector<FormulaPtr>& fs) {
  FormulaPtr out = f_false();
  for (const auto& f : fs) out = f_or(out, f);
  return out;
}

FormulaPtr to_nnf(const FormulaPtr& f) {
  switch (f->op()) {
    case LtlOp::kTrue:
    case LtlOp::kFalse:
    case LtlOp::kAtom:
      return f;
    case LtlOp::kAnd:
      return f_and(to_nnf(f->lhs()), to_nnf(f->rhs()));
    case LtlOp::kOr:
      return f_or(to_nnf(f->lhs()), to_nnf(f->rhs()));
    case LtlOp::kNext:
      return f_next(to_nnf(f->lhs()));
    case LtlOp::kUntil:
      return f_until(to_nnf(f->lhs()), to_nnf(f->rhs()));
    case LtlOp::kRelease:
      return f_release(to_nnf(f->lhs()), to_nnf(f->rhs()));
    case LtlOp::kNot: {
      const FormulaPtr& g = f->lhs();
      switch (g->op()) {
        case LtlOp::kTrue: return f_false();
        case LtlOp::kFalse: return f_true();
        case LtlOp::kAtom: return f;  // literal, already NNF
        case LtlOp::kNot: return to_nnf(g->lhs());
        case LtlOp::kAnd:
          return f_or(to_nnf(f_not(g->lhs())), to_nnf(f_not(g->rhs())));
        case LtlOp::kOr:
          return f_and(to_nnf(f_not(g->lhs())), to_nnf(f_not(g->rhs())));
        case LtlOp::kNext:
          return f_next(to_nnf(f_not(g->lhs())));
        case LtlOp::kUntil:
          return f_release(to_nnf(f_not(g->lhs())), to_nnf(f_not(g->rhs())));
        case LtlOp::kRelease:
          return f_until(to_nnf(f_not(g->lhs())), to_nnf(f_not(g->rhs())));
      }
      return f;
    }
  }
  return f;
}

std::size_t Formula::tree_size() const {
  std::size_t n = 1;
  if (lhs_) n += lhs_->tree_size();
  if (rhs_) n += rhs_->tree_size();
  return n;
}

namespace {

int precedence(LtlOp op) {
  switch (op) {
    case LtlOp::kOr: return 1;
    case LtlOp::kAnd: return 2;
    case LtlOp::kUntil:
    case LtlOp::kRelease: return 3;
    default: return 4;  // unary and nullary
  }
}

void print(const Formula& f, const AtomRegistry* reg, int parent_prec,
           std::ostringstream& os) {
  const int prec = precedence(f.op());
  const bool parens = prec < parent_prec;
  if (parens) os << '(';
  switch (f.op()) {
    case LtlOp::kTrue: os << "true"; break;
    case LtlOp::kFalse: os << "false"; break;
    case LtlOp::kAtom:
      if (reg) {
        os << reg->atom(f.atom()).name;
      } else {
        os << 'a' << f.atom();
      }
      break;
    case LtlOp::kNot:
      os << '!';
      print(*f.lhs(), reg, 4, os);
      break;
    case LtlOp::kNext:
      os << "X ";
      print(*f.lhs(), reg, 4, os);
      break;
    case LtlOp::kAnd:
      print(*f.lhs(), reg, prec, os);
      os << " && ";
      print(*f.rhs(), reg, prec, os);
      break;
    case LtlOp::kOr:
      print(*f.lhs(), reg, prec, os);
      os << " || ";
      print(*f.rhs(), reg, prec, os);
      break;
    case LtlOp::kUntil:
      if (f.lhs()->is_true()) {  // true U x == F x
        os << "F ";
        print(*f.rhs(), reg, 4, os);
        break;
      }
      print(*f.lhs(), reg, prec + 1, os);
      os << " U ";
      print(*f.rhs(), reg, prec + 1, os);
      break;
    case LtlOp::kRelease:
      if (f.lhs()->is_false()) {  // false R x == G x
        os << "G ";
        print(*f.rhs(), reg, 4, os);
        break;
      }
      print(*f.lhs(), reg, prec + 1, os);
      os << " R ";
      print(*f.rhs(), reg, prec + 1, os);
      break;
  }
  if (parens) os << ')';
}

}  // namespace

std::string Formula::to_string(const AtomRegistry* reg) const {
  std::ostringstream os;
  print(*this, reg, 0, os);
  return os.str();
}

}  // namespace decmon
