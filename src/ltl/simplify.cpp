// Lasso-word LTL evaluation (see eval.hpp). Lives in this TU together with
// the NNF helper declared in formula.hpp; both are "semantic" utilities
// layered on the plain AST.
#include <cassert>
#include <unordered_map>
#include <vector>

#include "decmon/ltl/eval.hpp"
#include "decmon/ltl/formula.hpp"

namespace decmon {
namespace {

// Truth of one subformula at every position of the lasso.
using Row = std::vector<char>;

class LassoEvaluator {
 public:
  LassoEvaluator(const std::vector<AtomSet>& prefix,
                 const std::vector<AtomSet>& loop)
      : len_(prefix.size() + loop.size()), loop_start_(prefix.size()) {
    assert(!loop.empty());
    word_.reserve(len_);
    word_.insert(word_.end(), prefix.begin(), prefix.end());
    word_.insert(word_.end(), loop.begin(), loop.end());
  }

  bool eval(const FormulaPtr& f) { return row(f)[0] != 0; }

 private:
  std::size_t next(std::size_t i) const {
    return i + 1 < len_ ? i + 1 : loop_start_;
  }

  const Row& row(const FormulaPtr& f) {
    auto it = memo_.find(f.get());
    if (it != memo_.end()) return it->second;
    Row r(len_, 0);
    switch (f->op()) {
      case LtlOp::kTrue:
        r.assign(len_, 1);
        break;
      case LtlOp::kFalse:
        break;
      case LtlOp::kAtom:
        for (std::size_t i = 0; i < len_; ++i) {
          r[i] = (word_[i] >> f->atom()) & 1;
        }
        break;
      case LtlOp::kNot: {
        const Row& a = row(f->lhs());
        for (std::size_t i = 0; i < len_; ++i) r[i] = !a[i];
        break;
      }
      case LtlOp::kAnd: {
        const Row& a = row(f->lhs());
        const Row& b = row(f->rhs());
        for (std::size_t i = 0; i < len_; ++i) r[i] = a[i] && b[i];
        break;
      }
      case LtlOp::kOr: {
        const Row& a = row(f->lhs());
        const Row& b = row(f->rhs());
        for (std::size_t i = 0; i < len_; ++i) r[i] = a[i] || b[i];
        break;
      }
      case LtlOp::kNext: {
        const Row& a = row(f->lhs());
        for (std::size_t i = 0; i < len_; ++i) r[i] = a[next(i)];
        break;
      }
      case LtlOp::kUntil: {
        // Least fixpoint of r[i] = b[i] || (a[i] && r[next(i)]).
        const Row& a = row(f->lhs());
        const Row& b = row(f->rhs());
        bool changed = true;
        while (changed) {
          changed = false;
          for (std::size_t k = len_; k-- > 0;) {
            const char v = b[k] || (a[k] && r[next(k)]);
            if (v != r[k]) {
              r[k] = v;
              changed = true;
            }
          }
        }
        break;
      }
      case LtlOp::kRelease: {
        // Greatest fixpoint of r[i] = b[i] && (a[i] || r[next(i)]).
        const Row& a = row(f->lhs());
        const Row& b = row(f->rhs());
        r.assign(len_, 1);
        bool changed = true;
        while (changed) {
          changed = false;
          for (std::size_t k = len_; k-- > 0;) {
            const char v = b[k] && (a[k] || r[next(k)]);
            if (v != r[k]) {
              r[k] = v;
              changed = true;
            }
          }
        }
        break;
      }
    }
    return memo_.emplace(f.get(), std::move(r)).first->second;
  }

  std::size_t len_;
  std::size_t loop_start_;
  std::vector<AtomSet> word_;
  std::unordered_map<const Formula*, Row> memo_;
};

}  // namespace

bool lasso_satisfies(const FormulaPtr& f, const std::vector<AtomSet>& prefix,
                     const std::vector<AtomSet>& loop) {
  return LassoEvaluator(prefix, loop).eval(f);
}

}  // namespace decmon
