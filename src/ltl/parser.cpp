#include "decmon/ltl/parser.hpp"

#include <cctype>
#include <optional>

namespace decmon {
namespace {

enum class Tok {
  kEnd,
  kTrue,
  kFalse,
  kIdent,
  kInt,
  kLParen,
  kRParen,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kNext,     // X
  kFinally,  // F or <>
  kGlobally, // G or []
  kUntil,    // U
  kRelease,  // R
  kWeak,     // W
  kCmp,      // < <= == != >= >
};

struct Lexer {
  const std::string& text;
  std::size_t pos = 0;
  Tok tok = Tok::kEnd;
  std::string ident;
  std::int64_t number = 0;
  CmpOp cmp = CmpOp::kEq;
  std::size_t tok_pos = 0;

  explicit Lexer(const std::string& t) : text(t) { advance(); }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, tok_pos);
  }

  void advance() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    tok_pos = pos;
    if (pos >= text.size()) {
      tok = Tok::kEnd;
      return;
    }
    const char c = text[pos];
    auto two = [&](char a, char b) {
      return c == a && pos + 1 < text.size() && text[pos + 1] == b;
    };
    if (two('-', '>')) { tok = Tok::kImplies; pos += 2; return; }
    if (c == '<' && pos + 2 < text.size() && text[pos + 1] == '-' &&
        text[pos + 2] == '>') { tok = Tok::kIff; pos += 3; return; }
    if (two('<', '>')) { tok = Tok::kFinally; pos += 2; return; }
    if (two('[', ']')) { tok = Tok::kGlobally; pos += 2; return; }
    if (two('&', '&')) { tok = Tok::kAnd; pos += 2; return; }
    if (two('|', '|')) { tok = Tok::kOr; pos += 2; return; }
    if (two('=', '=')) { tok = Tok::kCmp; cmp = CmpOp::kEq; pos += 2; return; }
    if (two('!', '=')) { tok = Tok::kCmp; cmp = CmpOp::kNe; pos += 2; return; }
    if (two('<', '=')) { tok = Tok::kCmp; cmp = CmpOp::kLe; pos += 2; return; }
    if (two('>', '=')) { tok = Tok::kCmp; cmp = CmpOp::kGe; pos += 2; return; }
    switch (c) {
      case '(': tok = Tok::kLParen; ++pos; return;
      case ')': tok = Tok::kRParen; ++pos; return;
      case '!': tok = Tok::kNot; ++pos; return;
      case '&': tok = Tok::kAnd; ++pos; return;
      case '|': tok = Tok::kOr; ++pos; return;
      case '<': tok = Tok::kCmp; cmp = CmpOp::kLt; ++pos; return;
      case '>': tok = Tok::kCmp; cmp = CmpOp::kGt; ++pos; return;
      case '=': tok = Tok::kCmp; cmp = CmpOp::kEq; ++pos; return;
      default: break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      std::size_t start = pos;
      if (c == '-') ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      number = std::stoll(text.substr(start, pos - start));
      tok = Tok::kInt;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_' || text[pos] == '.')) {
        ++pos;
      }
      ident = text.substr(start, pos - start);
      // Single capital letters are temporal operators, not identifiers.
      if (ident == "U") { tok = Tok::kUntil; return; }
      if (ident == "R" || ident == "V") { tok = Tok::kRelease; return; }
      if (ident == "W") { tok = Tok::kWeak; return; }
      if (ident == "X") { tok = Tok::kNext; return; }
      if (ident == "F") { tok = Tok::kFinally; return; }
      if (ident == "G") { tok = Tok::kGlobally; return; }
      if (ident == "true") { tok = Tok::kTrue; return; }
      if (ident == "false") { tok = Tok::kFalse; return; }
      tok = Tok::kIdent;
      return;
    }
    throw ParseError(std::string("unexpected character '") + c + "'", pos);
  }
};

class Parser {
 public:
  Parser(const std::string& text, AtomRegistry& reg)
      : lex_(text), reg_(reg) {}

  FormulaPtr parse() {
    FormulaPtr f = iff();
    if (lex_.tok != Tok::kEnd) lex_.fail("trailing input after formula");
    return f;
  }

 private:
  FormulaPtr iff() {
    FormulaPtr f = impl();
    while (lex_.tok == Tok::kIff) {
      lex_.advance();
      f = f_iff(f, impl());
    }
    return f;
  }

  FormulaPtr impl() {
    FormulaPtr f = disj();
    if (lex_.tok == Tok::kImplies) {
      lex_.advance();
      f = f_implies(f, impl());
    }
    return f;
  }

  FormulaPtr disj() {
    FormulaPtr f = conj();
    while (lex_.tok == Tok::kOr) {
      lex_.advance();
      f = f_or(f, conj());
    }
    return f;
  }

  FormulaPtr conj() {
    FormulaPtr f = until();
    while (lex_.tok == Tok::kAnd) {
      lex_.advance();
      f = f_and(f, until());
    }
    return f;
  }

  FormulaPtr until() {
    FormulaPtr f = unary();
    if (lex_.tok == Tok::kUntil) {
      lex_.advance();
      return f_until(f, until());
    }
    if (lex_.tok == Tok::kRelease) {
      lex_.advance();
      return f_release(f, until());
    }
    if (lex_.tok == Tok::kWeak) {
      lex_.advance();
      FormulaPtr g = until();
      return f_or(f_until(f, g), f_always(f));
    }
    return f;
  }

  FormulaPtr unary() {
    switch (lex_.tok) {
      case Tok::kNot:
        lex_.advance();
        return f_not(unary());
      case Tok::kNext:
        lex_.advance();
        return f_next(unary());
      case Tok::kFinally:
        lex_.advance();
        return f_eventually(unary());
      case Tok::kGlobally:
        lex_.advance();
        return f_always(unary());
      default:
        return primary();
    }
  }

  FormulaPtr primary() {
    switch (lex_.tok) {
      case Tok::kTrue:
        lex_.advance();
        return f_true();
      case Tok::kFalse:
        lex_.advance();
        return f_false();
      case Tok::kLParen: {
        lex_.advance();
        FormulaPtr f = iff();
        if (lex_.tok != Tok::kRParen) lex_.fail("expected ')'");
        lex_.advance();
        return f;
      }
      case Tok::kIdent:
        return atom();
      default:
        lex_.fail("expected formula");
    }
  }

  FormulaPtr atom() {
    const std::string name = lex_.ident;
    const std::size_t at = lex_.tok_pos;
    lex_.advance();
    if (lex_.tok == Tok::kCmp) {
      const CmpOp op = lex_.cmp;
      lex_.advance();
      if (lex_.tok != Tok::kInt) lex_.fail("expected integer after comparison");
      const std::int64_t rhs = lex_.number;
      lex_.advance();
      auto pv = resolve_variable(name);
      if (!pv) {
        throw ParseError("unknown or ambiguous variable '" + name + "'", at);
      }
      return f_atom(reg_.comparison_atom(pv->first, pv->second, op, rhs));
    }
    // Boolean proposition.
    if (auto id = reg_.resolve_boolean(name)) return f_atom(*id);
    if (auto pv = reg_.resolve_bare(name)) {
      return f_atom(reg_.boolean_atom(pv->first, pv->second));
    }
    throw ParseError("cannot resolve proposition '" + name + "'", at);
  }

  // "P<k>.<var>" with explicit process, or a bare unique variable name.
  std::optional<std::pair<int, int>> resolve_variable(const std::string& name) {
    const std::size_t dot = name.find('.');
    if (dot != std::string::npos && dot >= 2 &&
        (name[0] == 'P' || name[0] == 'p')) {
      int proc = 0;
      bool numeric = true;
      for (std::size_t i = 1; i < dot; ++i) {
        if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
          numeric = false;
          break;
        }
        proc = proc * 10 + (name[i] - '0');
      }
      if (numeric && proc < reg_.num_processes()) {
        return std::make_pair(
            proc, reg_.declare_variable(proc, name.substr(dot + 1)));
      }
    }
    return reg_.resolve_bare(name);
  }

  Lexer lex_;
  AtomRegistry& reg_;
};

}  // namespace

FormulaPtr parse_ltl(const std::string& text, AtomRegistry& registry) {
  return Parser(text, registry).parse();
}

}  // namespace decmon
