#include "decmon/automata/ltl3_monitor.hpp"

#include <bit>
#include <cassert>
#include <map>
#include <stdexcept>

#include "decmon/automata/buchi.hpp"
#include "decmon/automata/qm_minimize.hpp"

namespace decmon {
namespace {

/// Keep only states flagged in `keep`.
std::vector<int> filtered(const std::vector<int>& states,
                          const std::vector<char>& keep) {
  std::vector<int> out;
  for (int q : states) {
    if (keep[static_cast<std::size_t>(q)]) out.push_back(q);
  }
  return out;
}

}  // namespace

MooreTable build_moore_table(const FormulaPtr& formula) {
  const Nba pos = ltl_to_nba(formula);
  const Nba neg = ltl_to_nba(f_not(formula));
  const std::vector<char> ne_pos = pos.nonempty_states();
  const std::vector<char> ne_neg = neg.nonempty_states();

  // Dense letter encoding over the atoms either automaton mentions.
  const AtomSet mask = pos.atom_mask | neg.atom_mask;
  MooreTable table;
  for (int i = 0; i < 64; ++i) {
    if (mask & (AtomSet{1} << i)) table.atom_pos.push_back(i);
  }
  const int k = static_cast<int>(table.atom_pos.size());
  if (k > 20) {
    throw std::invalid_argument("synthesize_monitor: too many atoms (> 20)");
  }
  table.num_letters = 1 << k;
  auto to_atomset = [&](int letter) {
    AtomSet a = 0;
    for (int b = 0; b < k; ++b) {
      if (letter & (1 << b)) {
        a |= AtomSet{1} << table.atom_pos[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  // Joint subset construction. Empty NBA states never lead to nonempty
  // ones (an accepting run from a successor yields one from the state), so
  // filtering subsets to nonempty states preserves the verdicts and keeps
  // subsets small. A product state is final once either side dies.
  using Key = std::pair<std::vector<int>, std::vector<int>>;
  std::map<Key, int> index;
  std::vector<Key> keys;
  auto intern = [&](Key key) {
    auto it = index.find(key);
    if (it != index.end()) return it->second;
    const int id = static_cast<int>(keys.size());
    index.emplace(key, id);
    keys.push_back(std::move(key));
    Verdict v = Verdict::kUnknown;
    if (keys.back().first.empty()) v = Verdict::kFalse;
    if (keys.back().second.empty()) v = Verdict::kTrue;
    assert(!(keys.back().first.empty() && keys.back().second.empty()));
    table.label.push_back(v);
    table.next.emplace_back();
    return id;
  };

  Key init{filtered(pos.initial, ne_pos), filtered(neg.initial, ne_neg)};
  table.initial = intern(std::move(init));
  for (int s = 0; s < static_cast<int>(keys.size()); ++s) {
    // Build the row locally: intern() may grow `table.next` and `keys`,
    // invalidating references into them.
    std::vector<int> row(static_cast<std::size_t>(table.num_letters), s);
    if (table.label[static_cast<std::size_t>(s)] == Verdict::kUnknown) {
      const Key key = keys[static_cast<std::size_t>(s)];  // copy: keys grows
      for (int letter = 0; letter < table.num_letters; ++letter) {
        const AtomSet a = to_atomset(letter);
        Key succ{filtered(pos.step(key.first, a), ne_pos),
                 filtered(neg.step(key.second, a), ne_neg)};
        row[static_cast<std::size_t>(letter)] = intern(std::move(succ));
      }
    }  // else: final verdicts are irrevocable, keep the absorbing sink row
    table.next[static_cast<std::size_t>(s)] = std::move(row);
  }
  table.num_states = static_cast<int>(keys.size());
  return table;
}

MonitorAutomaton monitor_from_table(const MooreTable& table) {
  MonitorAutomaton m;
  for (int s = 0; s < table.num_states; ++s) {
    m.add_state(table.label[static_cast<std::size_t>(s)]);
  }
  m.set_initial(table.initial);
  const int k = static_cast<int>(table.atom_pos.size());
  for (int s = 0; s < table.num_states; ++s) {
    if (table.label[static_cast<std::size_t>(s)] != Verdict::kUnknown) {
      // Final state: single `true` self-loop, as in the paper's figures.
      m.add_transition(s, s, Cube{});
      continue;
    }
    // Group letters by target, then minimize each group to cubes.
    std::map<int, std::vector<char>> onsets;
    for (int letter = 0; letter < table.num_letters; ++letter) {
      const int t = table.next[static_cast<std::size_t>(s)][static_cast<std::size_t>(letter)];
      auto& onset = onsets[t];
      if (onset.empty()) {
        onset.assign(static_cast<std::size_t>(table.num_letters), 0);
      }
      onset[static_cast<std::size_t>(letter)] = 1;
    }
    for (const auto& [target, onset] : onsets) {
      for (const Cube& cube : minimize_cover(onset, k, table.atom_pos)) {
        m.add_transition(s, target, cube);
      }
    }
  }
  return m;
}

MonitorAutomaton synthesize_monitor(const FormulaPtr& formula,
                                    const SynthesisOptions& options) {
  MooreTable table = build_moore_table(formula);
  if (options.minimize) table = minimize_moore(table);
  MonitorAutomaton m = monitor_from_table(table);
  if (options.validate) {
    if (auto err = m.validate()) {
      throw std::logic_error("synthesize_monitor: invalid automaton: " + *err);
    }
  }
  m.build_dispatch();
  return m;
}

Verdict evaluate_ltl3(const FormulaPtr& formula,
                      const std::vector<AtomSet>& trace) {
  const MonitorAutomaton m = synthesize_monitor(formula);
  return m.verdict(m.run(trace));
}

}  // namespace decmon
