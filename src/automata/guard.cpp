#include "decmon/automata/guard.hpp"

#include <bit>
#include <sstream>

namespace decmon {

int Cube::size() const {
  return std::popcount(pos) + std::popcount(neg);
}

std::string Cube::to_string(const AtomRegistry* reg) const {
  if (is_true()) return "true";
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i < 64; ++i) {
    const AtomSet bit = AtomSet{1} << i;
    if (!(pos & bit) && !(neg & bit)) continue;
    if (!first) os << " && ";
    first = false;
    if (neg & bit) os << '!';
    if (reg && i < reg->num_atoms()) {
      os << reg->atom(i).name;
    } else {
      os << 'a' << i;
    }
  }
  return os.str();
}

Cube restrict_to_process(const Cube& cube, const AtomRegistry& reg, int proc) {
  const AtomSet mask = reg.owned_mask(proc);
  return Cube{cube.pos & mask, cube.neg & mask};
}

bool locally_satisfied(const Cube& cube, AtomSet letter, AtomSet owned_mask) {
  const Cube local{cube.pos & owned_mask, cube.neg & owned_mask};
  return local.matches(letter & owned_mask);
}

}  // namespace decmon
