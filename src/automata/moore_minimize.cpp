// Moore-machine minimization by partition refinement: states are merged when
// they carry the same verdict label and, letter by letter, their successors
// fall in the same classes. Used as step 5 of the LTL3 synthesis pipeline
// (optional; the paper's evaluation deliberately keeps an unreduced
// automaton for some properties, see SynthesisOptions::minimize).
#include <map>
#include <vector>

#include "decmon/automata/ltl3_monitor.hpp"

namespace decmon {

MooreTable minimize_moore(const MooreTable& table) {
  const int n = table.num_states;
  // Initial partition by verdict label; refine until stable.
  std::vector<int> cls(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    cls[static_cast<std::size_t>(s)] =
        static_cast<int>(table.label[static_cast<std::size_t>(s)]);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (current class, successor classes per letter).
    std::map<std::vector<int>, int> sig_index;
    std::vector<int> next_cls(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      std::vector<int> sig;
      sig.reserve(static_cast<std::size_t>(table.num_letters) + 1);
      sig.push_back(cls[static_cast<std::size_t>(s)]);
      for (int letter = 0; letter < table.num_letters; ++letter) {
        sig.push_back(cls[static_cast<std::size_t>(
            table.next[static_cast<std::size_t>(s)]
                      [static_cast<std::size_t>(letter)])]);
      }
      auto it = sig_index.emplace(std::move(sig),
                                  static_cast<int>(sig_index.size()))
                    .first;
      next_cls[static_cast<std::size_t>(s)] = it->second;
    }
    for (int s = 0; s < n; ++s) {
      if (next_cls[static_cast<std::size_t>(s)] !=
          cls[static_cast<std::size_t>(s)]) {
        changed = true;
      }
    }
    cls = std::move(next_cls);
  }

  // Renumber classes densely, initial state's class first, so the output is
  // deterministic.
  std::map<int, int> renumber;
  auto id_of = [&](int c) {
    auto it = renumber.find(c);
    if (it != renumber.end()) return it->second;
    const int id = static_cast<int>(renumber.size());
    renumber.emplace(c, id);
    return id;
  };
  MooreTable out;
  out.atom_pos = table.atom_pos;
  out.num_letters = table.num_letters;
  id_of(cls[static_cast<std::size_t>(table.initial)]);
  for (int s = 0; s < n; ++s) id_of(cls[static_cast<std::size_t>(s)]);
  out.num_states = static_cast<int>(renumber.size());
  out.initial = 0;
  out.label.assign(static_cast<std::size_t>(out.num_states),
                   Verdict::kUnknown);
  out.next.assign(
      static_cast<std::size_t>(out.num_states),
      std::vector<int>(static_cast<std::size_t>(out.num_letters), 0));
  for (int s = 0; s < n; ++s) {
    const int c = id_of(cls[static_cast<std::size_t>(s)]);
    out.label[static_cast<std::size_t>(c)] =
        table.label[static_cast<std::size_t>(s)];
    for (int letter = 0; letter < table.num_letters; ++letter) {
      out.next[static_cast<std::size_t>(c)][static_cast<std::size_t>(letter)] =
          id_of(cls[static_cast<std::size_t>(
              table.next[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(letter)])]);
    }
  }
  return out;
}

}  // namespace decmon
