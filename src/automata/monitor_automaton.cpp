#include "decmon/automata/monitor_automaton.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace decmon {

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::kUnknown: return "?";
    case Verdict::kTrue: return "TRUE";
    case Verdict::kFalse: return "FALSE";
  }
  return "?";
}

int MonitorAutomaton::add_state(Verdict v) {
  verdicts_.push_back(v);
  out_.emplace_back();
  dispatch_built_ = false;
  return static_cast<int>(verdicts_.size()) - 1;
}

int MonitorAutomaton::add_transition(int from, int to, Cube guard) {
  if (from < 0 || from >= num_states() || to < 0 || to >= num_states()) {
    throw std::out_of_range("MonitorAutomaton::add_transition: bad state");
  }
  MonitorTransition t;
  t.id = static_cast<int>(transitions_.size());
  t.from = from;
  t.to = to;
  t.guard = guard;
  transitions_.push_back(t);
  out_[static_cast<std::size_t>(from)].push_back(t.id);
  relevant_mask_ |= guard.support();
  dispatch_built_ = false;
  return t.id;
}

const MonitorTransition* MonitorAutomaton::matching_transition_linear(
    int q, AtomSet letter) const {
  for (int id : out_.at(static_cast<std::size_t>(q))) {
    const MonitorTransition& t = transitions_[static_cast<std::size_t>(id)];
    if (t.guard.matches(letter)) return &t;
  }
  return nullptr;
}

void MonitorAutomaton::build_compress_lanes(int k) {
  // One compression lane per byte the relevant mask covers: lane tables map
  // a raw letter byte to its packed contribution, so compress_letter is one
  // lookup per covered byte instead of one shift per relevant atom.
  compress_lanes_.clear();
  for (int byte = 0; byte < 8; ++byte) {
    if (((relevant_mask_ >> (8 * byte)) & 0xFF) == 0) continue;
    CompressLane lane;
    lane.shift = static_cast<std::uint8_t>(8 * byte);
    for (int v = 0; v < 256; ++v) {
      std::uint16_t packed = 0;
      for (int b = 0; b < k; ++b) {
        const int pos = dispatch_atom_pos_[static_cast<std::size_t>(b)];
        if (pos >= 8 * byte && pos < 8 * (byte + 1) &&
            (v & (1 << (pos - 8 * byte)))) {
          packed |= static_cast<std::uint16_t>(1u << b);
        }
      }
      lane.table[static_cast<std::size_t>(v)] = packed;
    }
    compress_lanes_.push_back(lane);
  }
}

void MonitorAutomaton::build_dispatch() {
  if (dispatch_built_) return;
  const int k = std::popcount(relevant_mask_);
  if (k > kMaxDispatchAtoms) return;  // linear fallback stays in use
  dispatch_bits_ = k;
  dispatch_atom_pos_.clear();
  for (int i = 0; i < 64; ++i) {
    if (relevant_mask_ & (AtomSet{1} << i)) {
      dispatch_atom_pos_.push_back(static_cast<std::uint8_t>(i));
    }
  }
  build_compress_lanes(k);
  const std::size_t letters = std::size_t{1} << k;
  dispatch_.assign(static_cast<std::size_t>(num_states()) * letters, -1);
  dispatch_to_.assign(static_cast<std::size_t>(num_states()) * letters, -1);
  for (int q = 0; q < num_states(); ++q) {
    for (std::size_t m = 0; m < letters; ++m) {
      AtomSet letter = 0;
      for (int b = 0; b < k; ++b) {
        if (m & (std::size_t{1} << b)) {
          letter |= AtomSet{1} << dispatch_atom_pos_[static_cast<std::size_t>(b)];
        }
      }
      // First match in insertion order: exactly matching_transition_linear.
      const MonitorTransition* t = matching_transition_linear(q, letter);
      dispatch_[(static_cast<std::size_t>(q) << k) | m] =
          t ? static_cast<std::int32_t>(t->id) : -1;
      dispatch_to_[(static_cast<std::size_t>(q) << k) | m] =
          t ? static_cast<std::int32_t>(t->to) : -1;
    }
  }
  dispatch_built_ = true;
}

void MonitorAutomaton::install_dispatch(const PrebuiltDispatch& pre) {
  const int k = std::popcount(relevant_mask_);
  if (pre.bits != k || !pre.atom_pos || !pre.dispatch || !pre.dispatch_to) {
    throw std::invalid_argument(
        "MonitorAutomaton::install_dispatch: bit count does not match the "
        "relevant-atom mask");
  }
  dispatch_atom_pos_.assign(pre.atom_pos, pre.atom_pos + k);
  // The atom positions must be exactly the relevant mask, ascending --
  // compress_letter's lane packing depends on this bit order.
  AtomSet mask = 0;
  for (int b = 0; b < k; ++b) {
    if (b > 0 && dispatch_atom_pos_[static_cast<std::size_t>(b - 1)] >=
                     dispatch_atom_pos_[static_cast<std::size_t>(b)]) {
      throw std::invalid_argument(
          "MonitorAutomaton::install_dispatch: atom positions not ascending");
    }
    mask |= AtomSet{1} << dispatch_atom_pos_[static_cast<std::size_t>(b)];
  }
  if (mask != relevant_mask_) {
    throw std::invalid_argument(
        "MonitorAutomaton::install_dispatch: atom positions do not cover the "
        "relevant-atom mask");
  }
  dispatch_bits_ = k;
  build_compress_lanes(k);
  const std::size_t entries = static_cast<std::size_t>(num_states()) << k;
  dispatch_.assign(pre.dispatch, pre.dispatch + entries);
  dispatch_to_.assign(pre.dispatch_to, pre.dispatch_to + entries);
  dispatch_built_ = true;
}

bool MonitorAutomaton::same_structure(const MonitorAutomaton& other) const {
  if (initial_ != other.initial_ || verdicts_ != other.verdicts_ ||
      relevant_mask_ != other.relevant_mask_ ||
      transitions_.size() != other.transitions_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    const MonitorTransition& a = transitions_[i];
    const MonitorTransition& b = other.transitions_[i];
    if (a.id != b.id || a.from != b.from || a.to != b.to ||
        a.guard.pos != b.guard.pos || a.guard.neg != b.guard.neg) {
      return false;
    }
  }
  if (out_ != other.out_) return false;
  if (dispatch_built_ && other.dispatch_built_) {
    if (dispatch_bits_ != other.dispatch_bits_ ||
        dispatch_atom_pos_ != other.dispatch_atom_pos_ ||
        dispatch_ != other.dispatch_ || dispatch_to_ != other.dispatch_to_) {
      return false;
    }
  }
  return true;
}

int MonitorAutomaton::run(const std::vector<AtomSet>& trace) const {
  int q = initial_;
  for (AtomSet letter : trace) {
    auto next = step(q, letter);
    if (!next) {
      throw std::logic_error("MonitorAutomaton::run: no matching transition");
    }
    q = *next;
  }
  return q;
}

int MonitorAutomaton::count_self_loops() const {
  int n = 0;
  for (const MonitorTransition& t : transitions_) {
    if (t.self_loop()) ++n;
  }
  return n;
}

std::optional<std::string> MonitorAutomaton::validate() const {
  const AtomSet mask = relevant_atoms();
  const int k = std::popcount(mask);
  if (k > 20) return "too many relevant atoms to validate exhaustively";
  // Dense bit -> atom position.
  std::vector<int> atom_pos;
  for (int i = 0; i < 64; ++i) {
    if (mask & (AtomSet{1} << i)) atom_pos.push_back(i);
  }
  const std::uint64_t letters = std::uint64_t{1} << k;
  for (int q = 0; q < num_states(); ++q) {
    for (std::uint64_t m = 0; m < letters; ++m) {
      AtomSet letter = 0;
      for (int b = 0; b < k; ++b) {
        if (m & (std::uint64_t{1} << b)) {
          letter |= AtomSet{1} << atom_pos[static_cast<std::size_t>(b)];
        }
      }
      // Transitions split from one disjunctive predicate may overlap
      // (e.g. the cubes !p0 and !p1 both match !p0 && !p1), so determinism
      // means: at least one match, and all matches agree on the target.
      int matches = 0;
      int target = -1;
      bool conflict = false;
      for (int id : out_[static_cast<std::size_t>(q)]) {
        const MonitorTransition& t = transitions_[static_cast<std::size_t>(id)];
        if (t.guard.matches(letter)) {
          if (matches && t.to != target) conflict = true;
          target = t.to;
          ++matches;
        }
      }
      if (matches == 0 || conflict) {
        std::ostringstream os;
        os << "state " << q << (matches == 0 ? " has no" : " has conflicting")
           << " matching transitions for letter " << letter;
        return os.str();
      }
    }
  }
  if (initial_ < 0 || initial_ >= num_states()) return "bad initial state";
  return std::nullopt;
}

std::string MonitorAutomaton::to_dot(const AtomRegistry* reg) const {
  std::ostringstream os;
  os << "digraph monitor {\n  rankdir=LR;\n";
  for (int q = 0; q < num_states(); ++q) {
    const char* color = "black";
    if (verdict(q) == Verdict::kTrue) color = "green";
    if (verdict(q) == Verdict::kFalse) color = "red";
    os << "  q" << q << " [label=\"q" << q << "\\n"
       << to_string(verdict(q)) << "\", color=" << color
       << (q == initial_ ? ", penwidth=2" : "") << "];\n";
  }
  for (const MonitorTransition& t : transitions_) {
    os << "  q" << t.from << " -> q" << t.to << " [label=\""
       << t.guard.to_string(reg) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace decmon
