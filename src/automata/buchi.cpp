#include "decmon/automata/buchi.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>
#include <stack>

namespace decmon {
namespace {

using FormulaSet = std::set<FormulaPtr>;

/// GPVW tableau node.
struct Node {
  int id = -1;
  std::set<int> incoming;  ///< predecessor node ids; kInit marks initial
  FormulaSet news;
  FormulaSet old;
  FormulaSet next;
};

constexpr int kInit = -1;

/// GPVW expansion engine (Gerth, Peled, Vardi, Wolper 1995).
class Gpvw {
 public:
  explicit Gpvw(const FormulaPtr& nnf) : root_(nnf) {
    Node start;
    start.id = fresh_id();
    start.incoming.insert(kInit);
    start.news.insert(nnf);
    expand(std::move(start));
  }

  std::vector<Node> take_nodes() {
    std::vector<Node> out;
    out.reserve(nodes_.size());
    for (auto& [id, node] : nodes_) out.push_back(std::move(node));
    return out;
  }

 private:
  int fresh_id() { return next_id_++; }

  static bool is_negation_of(const FormulaPtr& a, const FormulaPtr& b) {
    return (a->op() == LtlOp::kNot && a->lhs() == b) ||
           (b->op() == LtlOp::kNot && b->lhs() == a);
  }

  void expand(Node node) {
    if (node.news.empty()) {
      // Merge with an existing node having the same Old and Next sets.
      for (auto& [id, other] : nodes_) {
        if (other.old == node.old && other.next == node.next) {
          other.incoming.insert(node.incoming.begin(), node.incoming.end());
          return;
        }
      }
      const int id = node.id;
      nodes_.emplace(id, node);
      Node succ;
      succ.id = fresh_id();
      succ.incoming.insert(id);
      succ.news = node.next;
      expand(std::move(succ));
      return;
    }
    FormulaPtr f = *node.news.begin();
    node.news.erase(node.news.begin());
    if (node.old.count(f)) {
      expand(std::move(node));
      return;
    }
    switch (f->op()) {
      case LtlOp::kFalse:
        return;  // contradictory node, discard
      case LtlOp::kTrue:
        expand(std::move(node));
        return;
      case LtlOp::kAtom:
      case LtlOp::kNot: {
        // NNF guarantees kNot only wraps atoms here.
        for (const FormulaPtr& g : node.old) {
          if (is_negation_of(f, g)) return;  // contradiction, discard
        }
        node.old.insert(f);
        expand(std::move(node));
        return;
      }
      case LtlOp::kAnd: {
        if (!node.old.count(f->lhs())) node.news.insert(f->lhs());
        if (!node.old.count(f->rhs())) node.news.insert(f->rhs());
        node.old.insert(f);
        expand(std::move(node));
        return;
      }
      case LtlOp::kOr: {
        Node n1 = node;
        n1.id = fresh_id();
        if (!n1.old.count(f->lhs())) n1.news.insert(f->lhs());
        n1.old.insert(f);
        Node n2 = std::move(node);
        if (!n2.old.count(f->rhs())) n2.news.insert(f->rhs());
        n2.old.insert(f);
        expand(std::move(n1));
        expand(std::move(n2));
        return;
      }
      case LtlOp::kNext: {
        node.old.insert(f);
        node.next.insert(f->lhs());
        expand(std::move(node));
        return;
      }
      case LtlOp::kUntil: {
        // a U b  ==  b || (a && X(a U b))
        Node n1 = node;
        n1.id = fresh_id();
        if (!n1.old.count(f->lhs())) n1.news.insert(f->lhs());
        n1.next.insert(f);
        n1.old.insert(f);
        Node n2 = std::move(node);
        if (!n2.old.count(f->rhs())) n2.news.insert(f->rhs());
        n2.old.insert(f);
        expand(std::move(n1));
        expand(std::move(n2));
        return;
      }
      case LtlOp::kRelease: {
        // a R b  ==  (b && a) || (b && X(a R b))
        Node n1 = node;
        n1.id = fresh_id();
        if (!n1.old.count(f->rhs())) n1.news.insert(f->rhs());
        n1.next.insert(f);
        n1.old.insert(f);
        Node n2 = std::move(node);
        if (!n2.old.count(f->lhs())) n2.news.insert(f->lhs());
        if (!n2.old.count(f->rhs())) n2.news.insert(f->rhs());
        n2.old.insert(f);
        expand(std::move(n1));
        expand(std::move(n2));
        return;
      }
    }
  }

  FormulaPtr root_;
  int next_id_ = 0;
  std::map<int, Node> nodes_;
};

/// Collect the Until subformulas of `f` (acceptance obligations).
void collect_untils(const FormulaPtr& f, std::set<FormulaPtr>& out) {
  if (!f) return;
  if (f->op() == LtlOp::kUntil) out.insert(f);
  collect_untils(f->lhs(), out);
  collect_untils(f->rhs(), out);
}

Cube guard_of(const Node& node) {
  Cube c;
  for (const FormulaPtr& f : node.old) {
    if (f->op() == LtlOp::kAtom) {
      c.pos |= AtomSet{1} << f->atom();
    } else if (f->op() == LtlOp::kNot && f->lhs()->op() == LtlOp::kAtom) {
      c.neg |= AtomSet{1} << f->lhs()->atom();
    }
  }
  return c;
}

}  // namespace

Nba ltl_to_nba(const FormulaPtr& formula) {
  const FormulaPtr nnf = to_nnf(formula);

  std::set<FormulaPtr> untils;
  collect_untils(nnf, untils);
  const int k = std::max<int>(1, static_cast<int>(untils.size()));
  const bool degeneralize = untils.size() > 1;

  Gpvw gpvw(nnf);
  std::vector<Node> nodes = gpvw.take_nodes();

  // Map node id -> dense index.
  std::map<int, int> index;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    index[nodes[i].id] = static_cast<int>(i);
  }

  // GBA acceptance: for each until u = aUb, F_u = { node : u not in Old, or
  // b in Old }.
  std::vector<FormulaPtr> until_list(untils.begin(), untils.end());
  auto in_fset = [&](const Node& node, int set_idx) {
    if (until_list.empty()) return true;
    const FormulaPtr& u = until_list[static_cast<std::size_t>(set_idx)];
    return !node.old.count(u) || node.old.count(u->rhs()) != 0;
  };

  Nba nba;
  nba.atom_mask = nnf->atom_mask();
  const int levels = degeneralize ? k : 1;
  const int n = static_cast<int>(nodes.size());
  // State layout: 0 = dedicated initial state; then (node, level) pairs.
  auto state_of = [&](int node_idx, int level) {
    return 1 + node_idx * levels + level;
  };
  nba.num_states = 1 + n * levels;
  nba.initial = {0};
  nba.accepting.assign(static_cast<std::size_t>(nba.num_states), 0);
  nba.out.assign(static_cast<std::size_t>(nba.num_states), {});

  for (int ni = 0; ni < n; ++ni) {
    const Node& node = nodes[static_cast<std::size_t>(ni)];
    const Cube guard = guard_of(node);
    for (int level = 0; level < levels; ++level) {
      // Accepting: level 0 states whose node is in F_0 (single-set GBA:
      // plain Buchi acceptance).
      if (level == 0 && in_fset(node, 0)) {
        nba.accepting[static_cast<std::size_t>(state_of(ni, 0))] = 1;
      }
    }
    // Edges: every predecessor of `node` gets an edge into it, guarded by
    // the literals `node` asserts about the letter being read.
    for (int pred : node.incoming) {
      if (pred == kInit) {
        // From the dedicated initial state, enter at level 0.
        nba.out[0].push_back({state_of(ni, 0), guard});
        continue;
      }
      const int pi = index.at(pred);
      const Node& pnode = nodes[static_cast<std::size_t>(pi)];
      for (int level = 0; level < levels; ++level) {
        int next_level = level;
        if (degeneralize) {
          // Counter bumps when the *source* node satisfies F_level.
          next_level = in_fset(pnode, level) ? (level + 1) % k : level;
        }
        nba.out[static_cast<std::size_t>(state_of(pi, level))].push_back(
            {state_of(ni, next_level), guard});
      }
    }
  }
  return nba;
}

std::vector<char> Nba::nonempty_states() const {
  // Tarjan SCC, then mark states that can reach a "good" SCC: one containing
  // an accepting state and at least one internal edge.
  const int n = num_states;
  std::vector<int> idx(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<int> stack;
  int counter = 0;
  int num_comp = 0;

  // Iterative Tarjan to avoid deep recursion.
  struct Frame {
    int v;
    std::size_t edge;
  };
  for (int root = 0; root < n; ++root) {
    if (idx[static_cast<std::size_t>(root)] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    idx[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = counter++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = 1;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const auto& edges = out[static_cast<std::size_t>(fr.v)];
      if (fr.edge < edges.size()) {
        const int w = edges[fr.edge++].target;
        if (idx[static_cast<std::size_t>(w)] == -1) {
          idx[static_cast<std::size_t>(w)] = low[static_cast<std::size_t>(w)] = counter++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(fr.v)] =
              std::min(low[static_cast<std::size_t>(fr.v)], idx[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = fr.v;
        frames.pop_back();
        if (!frames.empty()) {
          const int p = frames.back().v;
          low[static_cast<std::size_t>(p)] =
              std::min(low[static_cast<std::size_t>(p)], low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] == idx[static_cast<std::size_t>(v)]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = 0;
            comp[static_cast<std::size_t>(w)] = num_comp;
            if (w == v) break;
          }
          ++num_comp;
        }
      }
    }
  }

  // Good SCCs.
  std::vector<char> has_accepting(static_cast<std::size_t>(num_comp), 0);
  std::vector<char> has_internal_edge(static_cast<std::size_t>(num_comp), 0);
  for (int v = 0; v < n; ++v) {
    const int c = comp[static_cast<std::size_t>(v)];
    if (accepting[static_cast<std::size_t>(v)]) has_accepting[static_cast<std::size_t>(c)] = 1;
    for (const auto& e : out[static_cast<std::size_t>(v)]) {
      if (comp[static_cast<std::size_t>(e.target)] == c) {
        has_internal_edge[static_cast<std::size_t>(c)] = 1;
      }
    }
  }
  std::vector<char> good(static_cast<std::size_t>(num_comp), 0);
  for (int c = 0; c < num_comp; ++c) {
    good[static_cast<std::size_t>(c)] =
        has_accepting[static_cast<std::size_t>(c)] && has_internal_edge[static_cast<std::size_t>(c)];
  }
  // Propagate "can reach good" backwards. Tarjan numbers components in
  // reverse topological order (children first), so iterate ascending.
  std::vector<char> reach(static_cast<std::size_t>(num_comp), 0);
  for (int c = 0; c < num_comp; ++c) {
    reach[static_cast<std::size_t>(c)] = good[static_cast<std::size_t>(c)];
  }
  for (int v = 0; v < n; ++v) {
    (void)v;
  }
  // Simple fixpoint over edges (component graph is small).
  bool changed = true;
  while (changed) {
    changed = false;
    for (int v = 0; v < n; ++v) {
      const int cv = comp[static_cast<std::size_t>(v)];
      if (reach[static_cast<std::size_t>(cv)]) continue;
      for (const auto& e : out[static_cast<std::size_t>(v)]) {
        if (reach[static_cast<std::size_t>(comp[static_cast<std::size_t>(e.target)])]) {
          reach[static_cast<std::size_t>(cv)] = 1;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<char> result(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    result[static_cast<std::size_t>(v)] = reach[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])];
  }
  return result;
}

std::vector<int> Nba::step(const std::vector<int>& from, AtomSet letter) const {
  std::vector<char> seen(static_cast<std::size_t>(num_states), 0);
  std::vector<int> to;
  for (int q : from) {
    for (const auto& e : out[static_cast<std::size_t>(q)]) {
      if (e.guard.matches(letter) && !seen[static_cast<std::size_t>(e.target)]) {
        seen[static_cast<std::size_t>(e.target)] = 1;
        to.push_back(e.target);
      }
    }
  }
  std::sort(to.begin(), to.end());
  return to;
}

bool Nba::accepts_lasso(const std::vector<AtomSet>& prefix,
                        const std::vector<AtomSet>& loop) const {
  assert(!loop.empty());
  const std::size_t plen = prefix.size();
  const std::size_t llen = loop.size();
  const std::size_t positions = plen + llen;
  auto letter_at = [&](std::size_t pos) {
    return pos < plen ? prefix[pos] : loop[pos - plen];
  };
  auto next_pos = [&](std::size_t pos) {
    return pos + 1 < positions ? pos + 1 : plen;
  };
  // Product graph nodes: (state, position); edge for each enabled
  // transition. Accepting lasso run exists iff from an initial product node
  // a cycle through an accepting product node in the loop part is reachable.
  const std::size_t pn = static_cast<std::size_t>(num_states) * positions;
  auto pid = [&](int q, std::size_t pos) {
    return static_cast<std::size_t>(q) * positions + pos;
  };
  // Forward reachability from initial nodes.
  std::vector<char> reach(pn, 0);
  std::vector<std::size_t> work;
  for (int q0 : initial) {
    if (!reach[pid(q0, 0)]) {
      reach[pid(q0, 0)] = 1;
      work.push_back(pid(q0, 0));
    }
  }
  while (!work.empty()) {
    const std::size_t node = work.back();
    work.pop_back();
    const int q = static_cast<int>(node / positions);
    const std::size_t pos = node % positions;
    const AtomSet letter = letter_at(pos);
    for (const auto& e : out[static_cast<std::size_t>(q)]) {
      if (!e.guard.matches(letter)) continue;
      const std::size_t t = pid(e.target, next_pos(pos));
      if (!reach[t]) {
        reach[t] = 1;
        work.push_back(t);
      }
    }
  }
  // For each reachable accepting product node in the loop region, check if
  // it lies on a cycle (can reach itself).
  for (int q = 0; q < num_states; ++q) {
    if (!accepting[static_cast<std::size_t>(q)]) continue;
    for (std::size_t pos = plen; pos < positions; ++pos) {
      const std::size_t start = pid(q, pos);
      if (!reach[start]) continue;
      // BFS from start.
      std::vector<char> r2(pn, 0);
      std::vector<std::size_t> w2{start};
      r2[start] = 1;
      bool cycle = false;
      while (!w2.empty() && !cycle) {
        const std::size_t node = w2.back();
        w2.pop_back();
        const int cq = static_cast<int>(node / positions);
        const std::size_t cpos = node % positions;
        const AtomSet letter = letter_at(cpos);
        for (const auto& e : out[static_cast<std::size_t>(cq)]) {
          if (!e.guard.matches(letter)) continue;
          const std::size_t t = pid(e.target, next_pos(cpos));
          if (t == start) {
            cycle = true;
            break;
          }
          if (!r2[t]) {
            r2[t] = 1;
            w2.push_back(t);
          }
        }
      }
      if (cycle) return true;
    }
  }
  return false;
}

std::string Nba::to_dot(const AtomRegistry* reg) const {
  std::ostringstream os;
  os << "digraph nba {\n  rankdir=LR;\n";
  for (int q = 0; q < num_states; ++q) {
    os << "  s" << q << " [shape="
       << (accepting[static_cast<std::size_t>(q)] ? "doublecircle" : "circle") << "];\n";
  }
  for (int q0 : initial) {
    os << "  init" << q0 << " [shape=point]; init" << q0 << " -> s" << q0
       << ";\n";
  }
  for (int q = 0; q < num_states; ++q) {
    for (const auto& e : out[static_cast<std::size_t>(q)]) {
      os << "  s" << q << " -> s" << e.target << " [label=\""
         << e.guard.to_string(reg) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace decmon
