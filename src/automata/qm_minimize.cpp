#include "decmon/automata/qm_minimize.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>

namespace decmon {
namespace {

// A dense cube over k variables: `value` gives the fixed bits, `dontcare`
// the free bits; bits of value under dontcare are zero.
struct DenseCube {
  std::uint32_t value = 0;
  std::uint32_t dontcare = 0;
  bool operator==(const DenseCube&) const = default;
};

struct DenseCubeHash {
  std::size_t operator()(const DenseCube& c) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(c.value) << 32) | c.dontcare);
  }
};

// All minterms covered by a dense cube.
template <typename Fn>
void for_each_minterm(const DenseCube& c, int k, Fn&& fn) {
  // Iterate over subsets of the dontcare mask.
  const std::uint32_t mask = c.dontcare & ((k == 32) ? ~0u : ((1u << k) - 1));
  std::uint32_t sub = 0;
  while (true) {
    fn(c.value | sub);
    if (sub == mask) break;
    sub = (sub - mask) & mask;  // next subset trick
  }
}

}  // namespace

std::vector<Cube> minimize_cover(const std::vector<char>& onset, int k,
                                 const std::vector<int>& atom_ids) {
  if (k < 0 || k > 20) {
    throw std::invalid_argument("minimize_cover: k out of range");
  }
  const std::size_t n = std::size_t{1} << k;
  assert(onset.size() == n);
  assert(atom_ids.size() == static_cast<std::size_t>(k));

  // Trivial cases.
  bool any = false;
  bool all = true;
  for (std::size_t m = 0; m < n; ++m) {
    if (onset[m]) any = true; else all = false;
  }
  if (!any) return {};
  if (all) return {Cube{}};  // the `true` cube

  // --- Quine-McCluskey prime implicant generation -------------------------
  // Level 0: all on-set minterms as cubes with empty dontcare.
  std::unordered_set<DenseCube, DenseCubeHash> current;
  for (std::uint32_t m = 0; m < n; ++m) {
    if (onset[m]) current.insert(DenseCube{m, 0});
  }
  std::vector<DenseCube> primes;
  while (!current.empty()) {
    std::unordered_set<DenseCube, DenseCubeHash> next;
    std::unordered_set<DenseCube, DenseCubeHash> combined;
    std::vector<DenseCube> cur(current.begin(), current.end());
    // Try to merge each cube with a neighbour differing in exactly one
    // cared bit: if (value ^ bit) with same dontcare is present, merge.
    for (const DenseCube& c : cur) {
      for (int b = 0; b < k; ++b) {
        const std::uint32_t bit = 1u << b;
        if (c.dontcare & bit) continue;
        DenseCube partner{c.value ^ bit, c.dontcare};
        if (current.count(partner)) {
          DenseCube merged{c.value & ~bit, c.dontcare | bit};
          next.insert(merged);
          combined.insert(c);
          combined.insert(partner);
        }
      }
    }
    for (const DenseCube& c : cur) {
      if (!combined.count(c)) primes.push_back(c);
    }
    current = std::move(next);
  }

  // --- Cover selection (essential primes, then greedy) --------------------
  std::vector<std::uint32_t> minterms;
  std::vector<int> minterm_index(n, -1);
  for (std::uint32_t m = 0; m < n; ++m) {
    if (onset[m]) {
      minterm_index[m] = static_cast<int>(minterms.size());
      minterms.push_back(m);
    }
  }
  const std::size_t nm = minterms.size();
  // coverage[p] = indices of minterms covered by prime p.
  std::vector<std::vector<int>> coverage(primes.size());
  std::vector<int> cover_count(nm, 0);
  for (std::size_t p = 0; p < primes.size(); ++p) {
    for_each_minterm(primes[p], k, [&](std::uint32_t m) {
      const int idx = minterm_index[m];
      assert(idx >= 0);  // primes only cover the on-set
      coverage[p].push_back(idx);
      ++cover_count[idx];
    });
  }

  std::vector<char> covered(nm, 0);
  std::vector<char> selected(primes.size(), 0);
  std::size_t num_covered = 0;
  auto select = [&](std::size_t p) {
    if (selected[p]) return;
    selected[p] = 1;
    for (int idx : coverage[p]) {
      if (!covered[idx]) {
        covered[idx] = 1;
        ++num_covered;
      }
    }
  };
  // Essential primes: sole cover of some minterm.
  for (std::size_t p = 0; p < primes.size(); ++p) {
    for (int idx : coverage[p]) {
      if (cover_count[idx] == 1) {
        select(p);
        break;
      }
    }
  }
  // Greedy: repeatedly take the prime covering the most uncovered minterms.
  while (num_covered < nm) {
    std::size_t best = primes.size();
    std::size_t best_gain = 0;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (selected[p]) continue;
      std::size_t gain = 0;
      for (int idx : coverage[p]) {
        if (!covered[idx]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = p;
      }
    }
    assert(best < primes.size());
    select(best);
  }

  // --- Translate dense cubes to atom-id cubes ------------------------------
  std::vector<Cube> out;
  for (std::size_t p = 0; p < primes.size(); ++p) {
    if (!selected[p]) continue;
    Cube c;
    for (int b = 0; b < k; ++b) {
      const std::uint32_t bit = 1u << b;
      if (primes[p].dontcare & bit) continue;
      const AtomSet abit = AtomSet{1} << atom_ids[static_cast<std::size_t>(b)];
      if (primes[p].value & bit) {
        c.pos |= abit;
      } else {
        c.neg |= abit;
      }
    }
    out.push_back(c);
  }
  // Deterministic order: fewer literals first, then lexicographic.
  std::sort(out.begin(), out.end(), [](const Cube& a, const Cube& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.neg < b.neg;
  });
  return out;
}

}  // namespace decmon
