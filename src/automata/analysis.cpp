#include "decmon/automata/analysis.hpp"

#include <deque>
#include <string>

namespace decmon {
namespace {

/// Mark every state that can reach a state in `seeds` (backward BFS).
std::vector<char> backward_reach(const MonitorAutomaton& m,
                                 const std::vector<int>& seeds) {
  const int n = m.num_states();
  // Reverse adjacency.
  std::vector<std::vector<int>> pred(static_cast<std::size_t>(n));
  for (const MonitorTransition& t : m.transitions()) {
    if (t.from != t.to) {
      pred[static_cast<std::size_t>(t.to)].push_back(t.from);
    }
  }
  std::vector<char> reach(static_cast<std::size_t>(n), 0);
  std::deque<int> work;
  for (int q : seeds) {
    if (!reach[static_cast<std::size_t>(q)]) {
      reach[static_cast<std::size_t>(q)] = 1;
      work.push_back(q);
    }
  }
  while (!work.empty()) {
    const int q = work.front();
    work.pop_front();
    for (int p : pred[static_cast<std::size_t>(q)]) {
      if (!reach[static_cast<std::size_t>(p)]) {
        reach[static_cast<std::size_t>(p)] = 1;
        work.push_back(p);
      }
    }
  }
  return reach;
}

}  // namespace

AutomatonAnalysis analyze_automaton(const MonitorAutomaton& m) {
  const int n = m.num_states();
  AutomatonAnalysis out;

  std::vector<int> false_states;
  std::vector<int> true_states;
  std::vector<int> final_states;
  for (int q = 0; q < n; ++q) {
    if (m.verdict(q) == Verdict::kFalse) false_states.push_back(q);
    if (m.verdict(q) == Verdict::kTrue) true_states.push_back(q);
    if (m.is_final(q)) final_states.push_back(q);
  }
  out.can_reach_false = backward_reach(m, false_states);
  out.can_reach_true = backward_reach(m, true_states);

  // Multi-source backward BFS for distances.
  out.distance_to_verdict.assign(static_cast<std::size_t>(n),
                                 AutomatonAnalysis::kUnreachable);
  std::vector<std::vector<int>> pred(static_cast<std::size_t>(n));
  for (const MonitorTransition& t : m.transitions()) {
    if (t.from != t.to) {
      pred[static_cast<std::size_t>(t.to)].push_back(t.from);
    }
  }
  std::deque<int> work;
  for (int q : final_states) {
    out.distance_to_verdict[static_cast<std::size_t>(q)] = 0;
    work.push_back(q);
  }
  while (!work.empty()) {
    const int q = work.front();
    work.pop_front();
    const int d = out.distance_to_verdict[static_cast<std::size_t>(q)];
    for (int p : pred[static_cast<std::size_t>(q)]) {
      if (out.distance_to_verdict[static_cast<std::size_t>(p)] ==
          AutomatonAnalysis::kUnreachable) {
        out.distance_to_verdict[static_cast<std::size_t>(p)] = d + 1;
        work.push_back(p);
      }
    }
  }
  return out;
}

std::string to_string(Monitorability m) {
  switch (m) {
    case Monitorability::kSafety: return "safety";
    case Monitorability::kCoSafety: return "co-safety";
    case Monitorability::kMonitorable: return "monitorable";
    case Monitorability::kWeaklyMonitorable: return "weakly-monitorable";
    case Monitorability::kNonMonitorable: return "non-monitorable";
  }
  return "?";
}

Monitorability classify(const MonitorAutomaton& m) {
  const AutomatonAnalysis a = analyze_automaton(m);
  // Forward reachability from the initial state.
  const int n = m.num_states();
  std::vector<char> reachable(static_cast<std::size_t>(n), 0);
  std::deque<int> work{m.initial_state()};
  reachable[static_cast<std::size_t>(m.initial_state())] = 1;
  while (!work.empty()) {
    const int q = work.front();
    work.pop_front();
    for (int id : m.transitions_from(q)) {
      const int to = m.transition(id).to;
      if (!reachable[static_cast<std::size_t>(to)]) {
        reachable[static_cast<std::size_t>(to)] = 1;
        work.push_back(to);
      }
    }
  }

  bool false_possible = false;
  bool true_possible = false;
  bool ugly_reachable = false;
  for (int q = 0; q < n; ++q) {
    if (!reachable[static_cast<std::size_t>(q)]) continue;
    if (m.verdict(q) == Verdict::kFalse) false_possible = true;
    if (m.verdict(q) == Verdict::kTrue) true_possible = true;
    if (a.verdict_settled(q)) ugly_reachable = true;
  }
  if (!false_possible && !true_possible) return Monitorability::kNonMonitorable;
  if (ugly_reachable) return Monitorability::kWeaklyMonitorable;
  if (!true_possible) return Monitorability::kSafety;
  if (!false_possible) return Monitorability::kCoSafety;
  return Monitorability::kMonitorable;
}

}  // namespace decmon
