#include "decmon/util/rng.hpp"

// Header-only today; the translation unit pins the header's ODR-visible
// entities into the library and keeps the build list stable.
