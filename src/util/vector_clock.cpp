#include "decmon/util/vector_clock.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <ostream>
#include <sstream>

namespace decmon {

void VectorClock::merge(const VectorClock& other) {
  assert(v_.size() == other.v_.size());
  std::uint32_t* a = v_.data();
  const std::uint32_t* b = other.v_.data();
  for (std::size_t i = 0; i < v_.size(); ++i) {
    a[i] = std::max(a[i], b[i]);
  }
}

VectorClock VectorClock::max(const VectorClock& a, const VectorClock& b) {
  VectorClock out = a;
  out.merge(b);
  return out;
}

Causality VectorClock::compare(const VectorClock& other) const {
  assert(v_.size() == other.v_.size());
  bool less = false;   // some component strictly smaller
  bool greater = false;
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] < other.v_[i]) less = true;
    if (v_[i] > other.v_[i]) greater = true;
  }
  if (less && greater) return Causality::kConcurrent;
  if (less) return Causality::kBefore;
  if (greater) return Causality::kAfter;
  return Causality::kEqual;
}

bool VectorClock::leq(const VectorClock& other) const {
  assert(v_.size() == other.v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > other.v_[i]) return false;
  }
  return true;
}

std::uint64_t VectorClock::total() const {
  return std::accumulate(v_.begin(), v_.end(), std::uint64_t{0});
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) os << ", ";
    os << v_[i];
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const VectorClock& vc) {
  return os << vc.to_string();
}

std::size_t VectorClockHash::operator()(const VectorClock& vc) const noexcept {
  // FNV-1a over the components; good enough for hash-map keys.
  std::size_t h = 1469598103934665603ull;
  for (std::uint32_t c : vc.components()) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace decmon
