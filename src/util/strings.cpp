#include "decmon/util/strings.hpp"

#include <cctype>

namespace decmon {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace decmon
