#include "decmon/monitor/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <set>
#include <unordered_set>

#include "decmon/monitor/monitor_process.hpp"

namespace decmon {
namespace {

constexpr std::uint8_t kMagic[4] = {'D', 'M', 'C', 'K'};
// Defensive ceilings for length fields: a blob that passes the CRC can
// still be deliberately crafted, and no legitimate monitor approaches these.
constexpr std::uint32_t kMaxItems = 1u << 22;

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double x = 0.0;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

void write_event(WireWriter& w, const Event& e) {
  w.u8(static_cast<std::uint8_t>(e.type));
  w.u32(static_cast<std::uint32_t>(e.process));
  w.u32(e.sn);
  w.vc(e.vc);
  w.u32(static_cast<std::uint32_t>(e.state.size()));
  for (std::int64_t v : e.state) w.u64(static_cast<std::uint64_t>(v));
  w.u64(e.letter);
  w.u64(double_bits(e.time));
}

Event read_event(WireReader& r, int owner, std::size_t n) {
  Event e;
  const std::uint8_t type = r.u8();
  if (type > 3) throw CheckpointError("bad event type");
  e.type = static_cast<EventType>(type);
  const std::uint32_t process = r.u32();
  if (process != static_cast<std::uint32_t>(owner)) {
    throw CheckpointError("history event owned by another process");
  }
  e.process = owner;
  e.sn = r.u32();
  e.vc = r.vc(n);
  if (e.vc.size() != n) throw CheckpointError("bad event clock width");
  const std::uint32_t vars = r.u32();
  if (vars > kMaxItems) throw CheckpointError("event state too large");
  e.state.reserve(vars);
  for (std::uint32_t i = 0; i < vars; ++i) {
    e.state.push_back(static_cast<std::int64_t>(r.u64()));
  }
  e.letter = r.u64();
  e.time = bits_double(r.u64());
  return e;
}

void write_view(WireWriter& w, const GlobalView& gv) {
  w.u64(gv.id);
  w.u32(static_cast<std::uint32_t>(gv.cut.size()));
  for (std::uint32_t c : gv.cut) w.u32(c);
  for (AtomSet a : gv.gstate) w.u64(a);
  w.u32(static_cast<std::uint32_t>(gv.q));
  w.u8(gv.waiting ? 1 : 0);
  w.u64(gv.token_id);
  w.u8(gv.forked_copy ? 1 : 0);
  w.u32(gv.next_sn);
  w.u64(gv.probe_sig);
  w.u8(gv.dead ? 1 : 0);
  w.u8(gv.quarantined ? 1 : 0);
}

GlobalView read_view(WireReader& r, std::size_t n) {
  GlobalView gv;
  gv.id = r.u64();
  const std::uint32_t width = r.u32();
  if (width != n) throw CheckpointError("bad view width");
  gv.cut.resize(width);
  for (std::uint32_t j = 0; j < width; ++j) gv.cut[j] = r.u32();
  gv.gstate.resize(width);
  for (std::uint32_t j = 0; j < width; ++j) gv.gstate[j] = r.u64();
  gv.q = static_cast<int>(r.u32());
  gv.waiting = r.u8() != 0;
  gv.token_id = r.u64();
  gv.forked_copy = r.u8() != 0;
  gv.next_sn = r.u32();
  gv.probe_sig = r.u64();
  gv.dead = r.u8() != 0;
  gv.quarantined = r.u8() != 0;
  return gv;
}

void write_sorted_set(WireWriter& w, const std::unordered_set<std::uint64_t>& s) {
  std::vector<std::uint64_t> sorted(s.begin(), s.end());
  std::sort(sorted.begin(), sorted.end());
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  for (std::uint64_t x : sorted) w.u64(x);
}

std::unordered_set<std::uint64_t> read_set(WireReader& r) {
  const std::uint32_t count = r.u32();
  if (count > kMaxItems) throw CheckpointError("set too large");
  std::unordered_set<std::uint64_t> s;
  s.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) s.insert(r.u64());
  return s;
}

}  // namespace

// Friend of MonitorProcess: the only code outside the monitor that touches
// its private state, and it treats that state as opaque data to copy.
class CheckpointCodec {
 public:
  static std::vector<std::uint8_t> save(const MonitorProcess& m) {
    if (m.dispatch_depth_ != 0) {
      throw CheckpointError("checkpoint requested during dispatch");
    }
    // Every entry point flushes its staged sends before returning, so a
    // quiescent monitor holds none; a non-empty buffer here would mean the
    // checkpoint silently drops in-flight payloads.
    if (!m.staged_.empty()) {
      throw CheckpointError("checkpoint requested with staged sends");
    }
    std::vector<std::uint8_t> blob;
    WireWriter w(blob);
    for (std::uint8_t b : kMagic) w.u8(b);
    w.u8(kCheckpointVersion);
    w.u32(static_cast<std::uint32_t>(m.index_));
    w.u32(static_cast<std::uint32_t>(m.n_));
    w.u32(0);  // body_size backpatched below
    const std::size_t body_start = blob.size();

    // v2: streaming-GC window state. The history section below holds only
    // the retained window, whose first event carries sn == history_base_.
    w.u32(m.history_base_);
    for (std::uint32_t f : m.peer_floor_) w.u32(f);
    w.u32(m.events_since_gc_);

    // v3: floor-resync epochs (DESIGN.md §13). Durable so a restored node's
    // resync bump is strictly above everything its dead incarnation sent,
    // and so stale pre-crash advertisements stay recognizable after restore.
    w.u32(m.floor_epoch_);
    for (std::uint32_t e : m.peer_floor_epoch_) w.u32(e);

    w.u32(static_cast<std::uint32_t>(m.history_.size()));
    for (const Event& e : m.history_) write_event(w, e);
    w.u32(static_cast<std::uint32_t>(m.views_.size()));
    for (const GlobalView& gv : m.views_) write_view(w, gv);
    w.u32(static_cast<std::uint32_t>(m.w_tokens_.size()));
    for (const Token& t : m.w_tokens_) write_token_body(w, t);
    for (std::uint32_t sn : m.peer_last_sn_) w.u32(sn);
    w.u8(m.local_terminated_ ? 1 : 0);
    w.u8(m.finished_ ? 1 : 0);
    write_sorted_set(w, m.outstanding_sigs_);
    write_sorted_set(w, m.spawned_memo_);
    w.u64(m.next_token_serial_);
    w.u64(m.next_view_id_);
    w.u8(static_cast<std::uint8_t>(m.declared_.size()));
    for (Verdict v : m.declared_) w.u8(static_cast<std::uint8_t>(v));

    const std::uint32_t body_size =
        static_cast<std::uint32_t>(blob.size() - body_start);
    for (int i = 0; i < 4; ++i) {
      blob[body_start - 4 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(body_size >> (8 * i));
    }
    w.u32(wire_crc32(blob.data(), blob.size()));
    return blob;
  }

  static void restore(MonitorProcess& m, const std::vector<std::uint8_t>& blob) {
    // Decode everything into locals first; commit only after the last check
    // passes (strong exception safety).
    if (blob.size() < 4) throw CheckpointError("checkpoint truncated");
    const std::uint32_t crc = wire_crc32(blob.data(), blob.size() - 4);
    WireReader r(blob);
    for (std::uint8_t b : kMagic) {
      if (r.u8() != b) throw CheckpointError("bad checkpoint magic");
    }
    const std::uint8_t version = r.u8();
    if (version < 1 || version > kCheckpointVersion) {
      throw CheckpointError("unsupported checkpoint version");
    }
    if (r.u32() != static_cast<std::uint32_t>(m.index_)) {
      throw CheckpointError("checkpoint is for another monitor");
    }
    if (r.u32() != static_cast<std::uint32_t>(m.n_)) {
      throw CheckpointError("checkpoint process count mismatch");
    }
    const std::uint32_t body_size = r.u32();
    if (blob.size() < r.position() + 4 ||
        body_size != blob.size() - r.position() - 4) {
      throw CheckpointError("checkpoint body size mismatch");
    }
    const std::size_t n = static_cast<std::size_t>(m.n_);

    // v1 blobs predate the streaming GC: the window starts at 0 and no
    // floors were ever advertised. v2 blobs predate the floor-resync
    // epochs: everything sits in epoch 0.
    std::uint32_t history_base = 0;
    std::vector<std::uint32_t> peer_floor(n, 0);
    std::uint32_t events_since_gc = 0;
    std::uint32_t floor_epoch = 0;
    std::vector<std::uint32_t> peer_floor_epoch(n, 0);
    if (version >= 2) {
      history_base = r.u32();
      for (std::size_t i = 0; i < n; ++i) peer_floor[i] = r.u32();
      events_since_gc = r.u32();
    }
    if (version >= 3) {
      floor_epoch = r.u32();
      for (std::size_t i = 0; i < n; ++i) peer_floor_epoch[i] = r.u32();
    }

    const std::uint32_t history_n = r.u32();
    if (history_n > kMaxItems) throw CheckpointError("history too large");
    if (history_base > std::numeric_limits<std::uint32_t>::max() - history_n) {
      throw CheckpointError("history window overflow");
    }
    std::vector<Event> history;
    history.reserve(history_n);
    for (std::uint32_t i = 0; i < history_n; ++i) {
      Event e = read_event(r, m.index_, n);
      if (e.sn != history_base + i) {
        throw CheckpointError("history not sequential");
      }
      history.push_back(std::move(e));
    }
    const std::uint32_t views_n = r.u32();
    if (views_n > kMaxItems) throw CheckpointError("too many views");
    std::deque<GlobalView> views;
    for (std::uint32_t i = 0; i < views_n; ++i) {
      GlobalView gv = read_view(r, n);
      if (gv.next_sn > history_base + history.size()) {
        throw CheckpointError("view cursor past history");
      }
      views.push_back(std::move(gv));
    }
    const std::uint32_t tokens_n = r.u32();
    if (tokens_n > kMaxItems) throw CheckpointError("too many tokens");
    std::vector<Token> w_tokens;
    w_tokens.reserve(tokens_n);
    for (std::uint32_t i = 0; i < tokens_n; ++i) {
      w_tokens.push_back(read_token_body(r, n));
    }
    std::vector<std::uint32_t> peer_last_sn(n);
    for (std::size_t i = 0; i < n; ++i) peer_last_sn[i] = r.u32();
    const bool local_terminated = r.u8() != 0;
    const bool finished = r.u8() != 0;
    std::unordered_set<std::uint64_t> outstanding_sigs = read_set(r);
    std::unordered_set<std::uint64_t> spawned_memo = read_set(r);
    const std::uint64_t next_token_serial = r.u64();
    const std::uint64_t next_view_id = r.u64();
    const std::uint8_t declared_n = r.u8();
    if (declared_n > 3) throw CheckpointError("too many declared verdicts");
    std::set<Verdict> declared;
    for (std::uint8_t i = 0; i < declared_n; ++i) {
      const std::uint8_t v = r.u8();
      if (v > 2) throw CheckpointError("bad verdict");
      declared.insert(static_cast<Verdict>(v));
    }
    if (r.u32() != crc) throw CheckpointError("checkpoint CRC mismatch");
    r.done();

    m.history_ = std::move(history);
    m.history_base_ = history_base;
    m.peer_floor_ = std::move(peer_floor);
    m.peer_floor_epoch_ = std::move(peer_floor_epoch);
    m.floor_epoch_ = floor_epoch;
    m.events_since_gc_ = events_since_gc;
    m.views_ = std::move(views);
    m.w_tokens_ = std::move(w_tokens);
    m.peer_last_sn_ = std::move(peer_last_sn);
    m.local_terminated_ = local_terminated;
    m.finished_ = finished;
    m.dispatch_depth_ = 0;
    m.outstanding_sigs_ = std::move(outstanding_sigs);
    m.spawned_memo_ = std::move(spawned_memo);
    m.next_token_serial_ = next_token_serial;
    m.next_view_id_ = next_view_id;
    m.declared_ = std::move(declared);
  }
};

std::vector<std::uint8_t> checkpoint_monitor(const MonitorProcess& monitor) {
  return CheckpointCodec::save(monitor);
}

void restore_monitor(MonitorProcess& monitor,
                     const std::vector<std::uint8_t>& blob) {
  try {
    CheckpointCodec::restore(monitor, blob);
  } catch (const CheckpointError&) {
    throw;
  } catch (const WireError& e) {
    // Reader-level failures (truncation, trailing bytes) surface under the
    // checkpoint contract's single error type.
    throw CheckpointError(e.what());
  }
}

}  // namespace decmon
