#include "decmon/generated/gen_tables.hpp"

#include <memory>
#include <string>
#include <utility>

#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/core/properties.hpp"
#include "decmon/monitor/property_registry.hpp"

namespace decmon::gen {

MonitorAutomaton materialize(const GenAutomaton& g) {
  MonitorAutomaton m;
  for (std::int32_t q = 0; q < g.num_states; ++q) {
    m.add_state(static_cast<Verdict>(g.verdicts[q]));
  }
  m.set_initial(g.initial);
  for (std::int32_t i = 0; i < g.num_transitions; ++i) {
    const GenTransition& t = g.transitions[i];
    m.add_transition(t.from, t.to, Cube{t.pos, t.neg});
  }
  MonitorAutomaton::PrebuiltDispatch pre;
  pre.bits = g.dispatch_bits;
  pre.atom_pos = g.atom_pos;
  pre.dispatch = g.dispatch;
  pre.dispatch_to = g.dispatch_to;
  m.install_dispatch(pre);
  return m;
}

void register_generated(CompiledPropertyRegistry& registry,
                        const GenAutomaton& g) {
  AtomRegistry atoms = paper::make_registry(g.num_processes);
  if (paper::atom_signature(atoms) != g.atom_signature) {
    // The generated tables predate a registry change: compiling them
    // against today's atoms could index out of today's universe, so only a
    // tombstone goes in -- lookups count the mismatch and synthesize.
    registry.add(g.formula, g.atom_signature, nullptr);
    return;
  }
  registry.add(g.formula, g.atom_signature,
               std::make_shared<PropertyArtifact>(std::move(atoms),
                                                  materialize(g)));
}

}  // namespace decmon::gen
