#include "decmon/monitor/wire.hpp"

namespace decmon {
namespace {

constexpr std::uint8_t kVersion = 1;

/// Little-endian, bounds-checked primitive codec.
class Writer {
 public:
  void u8(std::uint8_t x) { buf_.push_back(x); }
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
  }
  void vc(const VectorClock& clock) {
    u32(static_cast<std::uint32_t>(clock.size()));
    for (std::size_t i = 0; i < clock.size(); ++i) u32(clock[i]);
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    return x;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    return x;
  }
  VectorClock vc() {
    const std::uint32_t n = u32();
    if (n > 4096) throw WireError("vector clock too wide");
    VectorClock clock(n);
    for (std::uint32_t i = 0; i < n; ++i) clock[i] = u32();
    return clock;
  }
  void done() const {
    if (pos_ != buf_.size()) throw WireError("trailing bytes");
  }

 private:
  void need(std::size_t k) const {
    if (pos_ + k > buf_.size()) throw WireError("truncated buffer");
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

void write_header(Writer& w, WireKind kind) {
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
}

void read_header(Reader& r, WireKind expected) {
  const std::uint8_t version = r.u8();
  if (version != kVersion) throw WireError("unsupported wire version");
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(expected)) {
    throw WireError("unexpected message kind");
  }
}

void write_entry(Writer& w, const TransitionEntry& e) {
  w.u32(static_cast<std::uint32_t>(e.transition_id));
  w.u32(static_cast<std::uint32_t>(e.cut.size()));
  for (std::uint32_t x : e.cut) w.u32(x);
  w.vc(e.depend);
  for (AtomSet s : e.gstate) w.u64(s);
  for (ConjunctEval c : e.conj) w.u8(static_cast<std::uint8_t>(c));
  w.u8(static_cast<std::uint8_t>(e.eval));
  w.u32(static_cast<std::uint32_t>(e.next_target_process + 1));
  w.u32(e.next_target_event);
  w.u8(e.loop_certified ? 1 : 0);
  if (e.loop_certified) {
    for (std::uint32_t x : e.loop_cut) w.u32(x);
    for (AtomSet s : e.loop_gstate) w.u64(s);
  }
}

TransitionEntry read_entry(Reader& r) {
  TransitionEntry e;
  e.transition_id = static_cast<int>(r.u32());
  const std::uint32_t n = r.u32();
  if (n > 4096) throw WireError("entry too wide");
  e.cut.resize(n);
  for (auto& x : e.cut) x = r.u32();
  e.depend = r.vc();
  if (e.depend.size() != n) throw WireError("depend width mismatch");
  e.gstate.resize(n);
  for (auto& s : e.gstate) s = r.u64();
  e.conj.resize(n);
  for (auto& c : e.conj) {
    const std::uint8_t x = r.u8();
    if (x > 2) throw WireError("bad conjunct eval");
    c = static_cast<ConjunctEval>(x);
  }
  const std::uint8_t eval = r.u8();
  if (eval > 2) throw WireError("bad entry eval");
  e.eval = static_cast<EntryEval>(eval);
  e.next_target_process = static_cast<int>(r.u32()) - 1;
  e.next_target_event = r.u32();
  e.loop_certified = r.u8() != 0;
  if (e.loop_certified) {
    e.loop_cut.resize(n);
    for (auto& x : e.loop_cut) x = r.u32();
    e.loop_gstate.resize(n);
    for (auto& s : e.loop_gstate) s = r.u64();
  }
  return e;
}

}  // namespace

std::vector<std::uint8_t> encode_token(const Token& token) {
  Writer w;
  write_header(w, WireKind::kToken);
  w.u64(token.token_id);
  w.u32(static_cast<std::uint32_t>(token.parent));
  w.u32(token.parent_sn);
  w.vc(token.parent_vc);
  w.u32(static_cast<std::uint32_t>(token.next_target_process + 1));
  w.u32(token.next_target_event);
  w.u32(static_cast<std::uint32_t>(token.hops));
  w.u32(static_cast<std::uint32_t>(token.entries.size()));
  for (const TransitionEntry& e : token.entries) write_entry(w, e);
  return w.take();
}

Token decode_token(const std::vector<std::uint8_t>& buffer) {
  Reader r(buffer);
  read_header(r, WireKind::kToken);
  Token t;
  t.token_id = r.u64();
  t.parent = static_cast<int>(r.u32());
  t.parent_sn = r.u32();
  t.parent_vc = r.vc();
  t.next_target_process = static_cast<int>(r.u32()) - 1;
  t.next_target_event = r.u32();
  t.hops = static_cast<int>(r.u32());
  const std::uint32_t n = r.u32();
  if (n > 65536) throw WireError("too many entries");
  t.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) t.entries.push_back(read_entry(r));
  r.done();
  return t;
}

std::vector<std::uint8_t> encode_termination(const TerminationMessage& msg) {
  Writer w;
  write_header(w, WireKind::kTermination);
  w.u32(static_cast<std::uint32_t>(msg.process));
  w.u32(msg.last_sn);
  return w.take();
}

TerminationMessage decode_termination(
    const std::vector<std::uint8_t>& buffer) {
  Reader r(buffer);
  read_header(r, WireKind::kTermination);
  TerminationMessage msg;
  msg.process = static_cast<int>(r.u32());
  msg.last_sn = r.u32();
  r.done();
  return msg;
}

WireKind wire_kind(const std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < 2) throw WireError("buffer too small");
  if (buffer[0] != kVersion) throw WireError("unsupported wire version");
  const std::uint8_t kind = buffer[1];
  if (kind != 1 && kind != 2) throw WireError("unknown message kind");
  return static_cast<WireKind>(kind);
}

}  // namespace decmon
