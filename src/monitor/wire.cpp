#include "decmon/monitor/wire.hpp"

#include <array>

namespace decmon {
namespace {

constexpr std::uint8_t kVersion = 1;

void write_header(WireWriter& w, WireKind kind) {
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
}

void read_header(WireReader& r, WireKind expected) {
  const std::uint8_t version = r.u8();
  if (version != kVersion) throw WireError("unsupported wire version");
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(expected)) {
    throw WireError("unexpected message kind");
  }
}

// Target processes travel as index+1 (0 = unset). A corrupt value near
// UINT32_MAX would make the decoding subtraction overflow, so bound it by
// the widest width any decoder accepts before converting.
int read_target_process(WireReader& r) {
  const std::uint32_t raw = r.u32();
  if (raw > kMaxWireProcesses) throw WireError("bad target process");
  return static_cast<int>(raw) - 1;
}

// The entry layout predates the flat ProcSlot storage and is kept
// byte-for-byte: cut[], depend (as a width-prefixed clock), gstate[],
// conj[], then the scalars and optional loop arrays.
void write_entry(WireWriter& w, const TransitionEntry& e) {
  const std::size_t n = e.width();
  w.u32(static_cast<std::uint32_t>(e.transition_id));
  w.u32(static_cast<std::uint32_t>(n));
  for (std::size_t j = 0; j < n; ++j) w.u32(e.cut(j));
  w.u32(static_cast<std::uint32_t>(n));  // depend clock width
  for (std::size_t j = 0; j < n; ++j) w.u32(e.depend(j));
  for (std::size_t j = 0; j < n; ++j) w.u64(e.gstate(j));
  for (std::size_t j = 0; j < n; ++j) {
    w.u8(static_cast<std::uint8_t>(e.conj(j)));
  }
  w.u8(static_cast<std::uint8_t>(e.eval));
  w.u32(static_cast<std::uint32_t>(e.next_target_process + 1));
  w.u32(e.next_target_event);
  w.u8(e.loop_certified ? 1 : 0);
  if (e.loop_certified) {
    for (std::size_t j = 0; j < n; ++j) w.u32(e.loop_cut(j));
    for (std::size_t j = 0; j < n; ++j) w.u64(e.loop_gstate(j));
  }
}

TransitionEntry read_entry(WireReader& r, std::size_t max_width) {
  TransitionEntry e;
  e.transition_id = static_cast<int>(r.u32());
  const std::uint32_t n = r.u32();
  if (n > max_width) throw WireError("entry too wide");
  e.set_width(n);
  for (std::uint32_t j = 0; j < n; ++j) e.cut(j) = r.u32();
  const std::uint32_t depend_n = r.u32();
  if (depend_n != n) throw WireError("depend width mismatch");
  for (std::uint32_t j = 0; j < n; ++j) e.depend(j) = r.u32();
  for (std::uint32_t j = 0; j < n; ++j) e.gstate(j) = r.u64();
  for (std::uint32_t j = 0; j < n; ++j) {
    const std::uint8_t x = r.u8();
    if (x > 2) throw WireError("bad conjunct eval");
    e.conj(j) = static_cast<ConjunctEval>(x);
  }
  const std::uint8_t eval = r.u8();
  if (eval > 2) throw WireError("bad entry eval");
  e.eval = static_cast<EntryEval>(eval);
  e.next_target_process = read_target_process(r);
  e.next_target_event = r.u32();
  e.loop_certified = r.u8() != 0;
  if (e.loop_certified) {
    for (std::uint32_t j = 0; j < n; ++j) e.loop_cut(j) = r.u32();
    for (std::uint32_t j = 0; j < n; ++j) e.loop_gstate(j) = r.u64();
  }
  return e;
}

}  // namespace

void write_token_body(WireWriter& w, const Token& token) {
  w.u64(token.token_id);
  w.u32(static_cast<std::uint32_t>(token.parent));
  w.u32(token.parent_sn);
  w.vc(token.parent_vc);
  w.u32(static_cast<std::uint32_t>(token.next_target_process + 1));
  w.u32(token.next_target_event);
  w.u32(static_cast<std::uint32_t>(token.hops));
  w.u32(static_cast<std::uint32_t>(token.entries.size()));
  for (const TransitionEntry& e : token.entries) write_entry(w, e);
}

Token read_token_body(WireReader& r, std::size_t max_width) {
  Token t;
  t.token_id = r.u64();
  t.parent = static_cast<int>(r.u32());
  t.parent_sn = r.u32();
  t.parent_vc = r.vc(max_width);
  t.next_target_process = read_target_process(r);
  t.next_target_event = r.u32();
  t.hops = static_cast<int>(r.u32());
  const std::uint32_t n = r.u32();
  if (n > 65536) throw WireError("too many entries");
  t.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    t.entries.push_back(read_entry(r, max_width));
  }
  return t;
}

std::vector<std::uint8_t> encode_token(const Token& token) {
  std::vector<std::uint8_t> buf;
  WireWriter w(buf);
  write_header(w, WireKind::kToken);
  write_token_body(w, token);
  return buf;
}

Token decode_token(const std::vector<std::uint8_t>& buffer,
                   std::size_t max_width) {
  WireReader r(buffer);
  read_header(r, WireKind::kToken);
  Token t = read_token_body(r, max_width);
  r.done();
  return t;
}

std::vector<std::uint8_t> encode_termination(const TerminationMessage& msg) {
  std::vector<std::uint8_t> buf;
  WireWriter w(buf);
  write_header(w, WireKind::kTermination);
  w.u32(static_cast<std::uint32_t>(msg.process));
  w.u32(msg.last_sn);
  return buf;
}

TerminationMessage decode_termination(
    const std::vector<std::uint8_t>& buffer) {
  WireReader r(buffer);
  read_header(r, WireKind::kTermination);
  TerminationMessage msg;
  msg.process = static_cast<int>(r.u32());
  msg.last_sn = r.u32();
  r.done();
  return msg;
}

WireKind wire_kind(const std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < 2) throw WireError("buffer too small");
  if (buffer[0] != kVersion) throw WireError("unsupported wire version");
  const std::uint8_t kind = buffer[1];
  if (kind != 1 && kind != 2) throw WireError("unknown message kind");
  return static_cast<WireKind>(kind);
}

void encode_payload_into(const NetPayload& payload,
                         std::vector<std::uint8_t>& out) {
  WireWriter w(out);
  if (payload.tag == TokenMessage::kTag) {
    const auto& msg = static_cast<const TokenMessage&>(payload);
    write_header(w, WireKind::kToken);
    write_token_body(w, msg.token);
  } else if (payload.tag == TerminationMessage::kTag) {
    const auto& msg = static_cast<const TerminationMessage&>(payload);
    write_header(w, WireKind::kTermination);
    w.u32(static_cast<std::uint32_t>(msg.process));
    w.u32(msg.last_sn);
  } else {
    throw WireError("payload tag has no wire form");
  }
}

std::unique_ptr<NetPayload> decode_payload(
    const std::vector<std::uint8_t>& buffer, std::size_t max_width) {
  switch (wire_kind(buffer)) {
    case WireKind::kToken: {
      auto msg = std::make_unique<TokenMessage>();
      msg->token = decode_token(buffer, max_width);
      return msg;
    }
    case WireKind::kTermination: {
      const TerminationMessage decoded = decode_termination(buffer);
      auto msg = std::make_unique<TerminationMessage>();
      msg->process = decoded.process;
      msg->last_sn = decoded.last_sn;
      return msg;
    }
  }
  throw WireError("unknown message kind");
}

std::uint32_t wire_crc32(const std::uint8_t* data, std::size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace decmon
