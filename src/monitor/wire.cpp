#include "decmon/monitor/wire.hpp"

#include <array>

#include <limits>

#include "decmon/distributed/reliable_channel.hpp"

namespace decmon {
namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kVersion2 = 2;
constexpr std::uint32_t kMaxFrameUnits = 65536;

void write_header(WireWriter& w, WireKind kind) {
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(kind));
}

void read_header(WireReader& r, WireKind expected) {
  const std::uint8_t version = r.u8();
  if (version != kVersion) throw WireError("unsupported wire version");
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(expected)) {
    throw WireError("unexpected message kind");
  }
}

// Target processes travel as index+1 (0 = unset). A corrupt value near
// UINT32_MAX would make the decoding subtraction overflow, so bound it by
// the widest width any decoder accepts before converting.
int read_target_process(WireReader& r) {
  const std::uint32_t raw = r.u32();
  if (raw > kMaxWireProcesses) throw WireError("bad target process");
  return static_cast<int>(raw) - 1;
}

// The entry layout predates the flat ProcSlot storage and is kept
// byte-for-byte: cut[], depend (as a width-prefixed clock), gstate[],
// conj[], then the scalars and optional loop arrays.
void write_entry(WireWriter& w, const TransitionEntry& e) {
  const std::size_t n = e.width();
  w.u32(static_cast<std::uint32_t>(e.transition_id));
  w.u32(static_cast<std::uint32_t>(n));
  for (std::size_t j = 0; j < n; ++j) w.u32(e.cut(j));
  w.u32(static_cast<std::uint32_t>(n));  // depend clock width
  for (std::size_t j = 0; j < n; ++j) w.u32(e.depend(j));
  for (std::size_t j = 0; j < n; ++j) w.u64(e.gstate(j));
  for (std::size_t j = 0; j < n; ++j) {
    w.u8(static_cast<std::uint8_t>(e.conj(j)));
  }
  w.u8(static_cast<std::uint8_t>(e.eval));
  w.u32(static_cast<std::uint32_t>(e.next_target_process + 1));
  w.u32(e.next_target_event);
  w.u8(e.loop_certified ? 1 : 0);
  if (e.loop_certified) {
    for (std::size_t j = 0; j < n; ++j) w.u32(e.loop_cut(j));
    for (std::size_t j = 0; j < n; ++j) w.u64(e.loop_gstate(j));
  }
}

TransitionEntry read_entry(WireReader& r, std::size_t max_width) {
  TransitionEntry e;
  e.transition_id = static_cast<int>(r.u32());
  const std::uint32_t n = r.u32();
  if (n > max_width) throw WireError("entry too wide");
  e.set_width(n);
  for (std::uint32_t j = 0; j < n; ++j) e.cut(j) = r.u32();
  const std::uint32_t depend_n = r.u32();
  if (depend_n != n) throw WireError("depend width mismatch");
  for (std::uint32_t j = 0; j < n; ++j) e.depend(j) = r.u32();
  for (std::uint32_t j = 0; j < n; ++j) e.gstate(j) = r.u64();
  for (std::uint32_t j = 0; j < n; ++j) {
    const std::uint8_t x = r.u8();
    if (x > 2) throw WireError("bad conjunct eval");
    e.conj(j) = static_cast<ConjunctEval>(x);
  }
  const std::uint8_t eval = r.u8();
  if (eval > 2) throw WireError("bad entry eval");
  e.eval = static_cast<EntryEval>(eval);
  e.next_target_process = read_target_process(r);
  e.next_target_event = r.u32();
  e.loop_certified = r.u8() != 0;
  if (e.loop_certified) {
    for (std::uint32_t j = 0; j < n; ++j) e.loop_cut(j) = r.u32();
    for (std::uint32_t j = 0; j < n; ++j) e.loop_gstate(j) = r.u64();
  }
  return e;
}

// ---------------------------------------------------------------------------
// Wire v2: batched frames. Integers travel as LEB128 varints, clocks and
// cuts as zigzag deltas against a frame-level base clock (the first token
// unit's parent_vc -- tokens in one batch walk the same neighborhood, so
// deltas are small). Per-entry arrays delta against the entry's own cut.
// The v1 single-message layouts above are frozen; everything below is new.
// ---------------------------------------------------------------------------

// Clamp helpers: every delta-decoded component must land back in u32.
std::uint32_t checked_u32(std::int64_t v, const char* what) {
  if (v < 0 || v > std::numeric_limits<std::uint32_t>::max()) {
    throw WireError(what);
  }
  return static_cast<std::uint32_t>(v);
}

std::uint32_t checked_u32(std::uint64_t v, const char* what) {
  if (v > std::numeric_limits<std::uint32_t>::max()) throw WireError(what);
  return static_cast<std::uint32_t>(v);
}

// Target / parent process indexes travel zigzagged (-1 = unset) and are
// bounded like the v1 +1 scheme.
void write_process_v2(WireWriter& w, int process) { w.zig(process); }

int read_process_v2(WireReader& r) {
  const std::int64_t v = r.zig();
  if (v < -1 || v > static_cast<std::int64_t>(kMaxWireProcesses)) {
    throw WireError("bad target process");
  }
  return static_cast<int>(v);
}

void write_clock_v2(WireWriter& w, const VectorClock& clock,
                    const VectorClock& base) {
  w.var(clock.size());
  if (clock.size() == base.size()) {
    for (std::size_t i = 0; i < clock.size(); ++i) {
      w.zig(static_cast<std::int64_t>(clock[i]) -
            static_cast<std::int64_t>(base[i]));
    }
  } else {
    for (std::size_t i = 0; i < clock.size(); ++i) w.var(clock[i]);
  }
}

VectorClock read_clock_v2(WireReader& r, std::size_t max_width,
                          const VectorClock& base) {
  const std::uint64_t n = r.var();
  if (n > max_width) throw WireError("vector clock too wide");
  VectorClock clock(static_cast<std::size_t>(n));
  if (n == base.size()) {
    for (std::size_t i = 0; i < n; ++i) {
      clock[i] = checked_u32(static_cast<std::int64_t>(base[i]) + r.zig(),
                             "clock delta out of range");
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      clock[i] = checked_u32(r.var(), "clock component out of range");
    }
  }
  return clock;
}

void write_entry_v2(WireWriter& w, const TransitionEntry& e,
                    const VectorClock& base) {
  const std::size_t n = e.width();
  w.zig(e.transition_id);
  w.var(n);
  if (n == base.size()) {
    for (std::size_t j = 0; j < n; ++j) {
      w.zig(static_cast<std::int64_t>(e.cut(j)) -
            static_cast<std::int64_t>(base[j]));
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) w.var(e.cut(j));
  }
  // depend tracks the cut closely (it is the cut rolled back through one
  // frontier event), so delta it against the entry's own cut.
  for (std::size_t j = 0; j < n; ++j) {
    w.zig(static_cast<std::int64_t>(e.depend(j)) -
          static_cast<std::int64_t>(e.cut(j)));
  }
  for (std::size_t j = 0; j < n; ++j) w.var(e.gstate(j));
  for (std::size_t j = 0; j < n; ++j) {
    w.u8(static_cast<std::uint8_t>(e.conj(j)));
  }
  w.u8(static_cast<std::uint8_t>(e.eval));
  write_process_v2(w, e.next_target_process);
  w.var(e.next_target_event);
  w.u8(e.loop_certified ? 1 : 0);
  if (e.loop_certified) {
    for (std::size_t j = 0; j < n; ++j) {
      w.zig(static_cast<std::int64_t>(e.loop_cut(j)) -
            static_cast<std::int64_t>(e.cut(j)));
    }
    for (std::size_t j = 0; j < n; ++j) w.var(e.loop_gstate(j));
  }
}

TransitionEntry read_entry_v2(WireReader& r, std::size_t max_width,
                              const VectorClock& base) {
  TransitionEntry e;
  const std::int64_t tid = r.zig();
  if (tid < std::numeric_limits<int>::min() ||
      tid > std::numeric_limits<int>::max()) {
    throw WireError("bad transition id");
  }
  e.transition_id = static_cast<int>(tid);
  const std::uint64_t n = r.var();
  if (n > max_width) throw WireError("entry too wide");
  e.set_width(static_cast<std::size_t>(n));
  if (n == base.size()) {
    for (std::size_t j = 0; j < n; ++j) {
      e.cut(j) = checked_u32(static_cast<std::int64_t>(base[j]) + r.zig(),
                             "cut delta out of range");
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      e.cut(j) = checked_u32(r.var(), "cut component out of range");
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    e.depend(j) = checked_u32(static_cast<std::int64_t>(e.cut(j)) + r.zig(),
                              "depend delta out of range");
  }
  for (std::size_t j = 0; j < n; ++j) e.gstate(j) = r.var();
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint8_t x = r.u8();
    if (x > 2) throw WireError("bad conjunct eval");
    e.conj(j) = static_cast<ConjunctEval>(x);
  }
  const std::uint8_t eval = r.u8();
  if (eval > 2) throw WireError("bad entry eval");
  e.eval = static_cast<EntryEval>(eval);
  e.next_target_process = read_process_v2(r);
  e.next_target_event = checked_u32(r.var(), "bad target event");
  e.loop_certified = r.u8() != 0;
  if (e.loop_certified) {
    for (std::size_t j = 0; j < n; ++j) {
      e.loop_cut(j) = checked_u32(
          static_cast<std::int64_t>(e.cut(j)) + r.zig(),
          "loop cut delta out of range");
    }
    for (std::size_t j = 0; j < n; ++j) e.loop_gstate(j) = r.var();
  }
  return e;
}

void write_token_v2(WireWriter& w, const Token& t, const VectorClock& base) {
  w.var(t.token_id);
  write_process_v2(w, t.parent);
  w.var(t.parent_sn);
  write_clock_v2(w, t.parent_vc, base);
  write_process_v2(w, t.next_target_process);
  w.var(t.next_target_event);
  w.var(static_cast<std::uint64_t>(t.hops));
  w.var(t.entries.size());
  for (const TransitionEntry& e : t.entries) write_entry_v2(w, e, base);
}

Token read_token_v2(WireReader& r, std::size_t max_width,
                    const VectorClock& base) {
  Token t;
  t.token_id = r.var();
  t.parent = read_process_v2(r);
  t.parent_sn = checked_u32(r.var(), "bad parent sn");
  t.parent_vc = read_clock_v2(r, max_width, base);
  t.next_target_process = read_process_v2(r);
  t.next_target_event = checked_u32(r.var(), "bad target event");
  const std::uint64_t hops = r.var();
  if (hops > std::numeric_limits<int>::max()) throw WireError("bad hop count");
  t.hops = static_cast<int>(hops);
  const std::uint64_t n = r.var();
  if (n > kMaxFrameUnits) throw WireError("too many entries");
  t.entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    t.entries.push_back(read_entry_v2(r, max_width, base));
  }
  return t;
}

// The frame base clock: the first token unit's parent_vc (empty when the
// frame holds only terminations). Encoders and decoders derive it the same
// way, so it is written once in the frame header.
VectorClock frame_base(const PayloadFrame& frame) {
  for (const auto& unit : frame.units) {
    if (unit && unit->tag == TokenMessage::kTag) {
      return static_cast<const TokenMessage&>(*unit).token.parent_vc;
    }
  }
  return VectorClock{};
}

void write_frame_unit(WireWriter& w, const NetPayload& unit,
                      const VectorClock& base) {
  if (unit.tag == TokenMessage::kTag) {
    w.u8(static_cast<std::uint8_t>(WireKind::kToken));
    write_token_v2(w, static_cast<const TokenMessage&>(unit).token, base);
  } else if (unit.tag == TerminationMessage::kTag) {
    const auto& msg = static_cast<const TerminationMessage&>(unit);
    w.u8(static_cast<std::uint8_t>(WireKind::kTermination));
    w.var(static_cast<std::uint64_t>(msg.process));
    w.var(msg.last_sn);
  } else if (unit.tag == HistoryFloorMessage::kTag) {
    const auto& msg = static_cast<const HistoryFloorMessage&>(unit);
    w.u8(static_cast<std::uint8_t>(WireKind::kFloor));
    w.var(static_cast<std::uint64_t>(msg.process));
    w.var(msg.floor);
    w.var(msg.epoch);
  } else {
    // Nested frames and transport-internal payloads never appear inside a
    // monitor-built frame.
    throw WireError("frame unit tag has no wire form");
  }
}

std::unique_ptr<NetPayload> read_frame_unit(WireReader& r,
                                            std::size_t max_width,
                                            const VectorClock& base) {
  const std::uint8_t tag = r.u8();
  if (tag == static_cast<std::uint8_t>(WireKind::kToken)) {
    auto msg = std::make_unique<TokenMessage>();
    msg->token = read_token_v2(r, max_width, base);
    return msg;
  }
  if (tag == static_cast<std::uint8_t>(WireKind::kTermination)) {
    auto msg = std::make_unique<TerminationMessage>();
    const std::uint64_t process = r.var();
    if (process > kMaxWireProcesses) throw WireError("bad target process");
    msg->process = static_cast<int>(process);
    msg->last_sn = checked_u32(r.var(), "bad last sn");
    return msg;
  }
  if (tag == static_cast<std::uint8_t>(WireKind::kFloor)) {
    auto msg = std::make_unique<HistoryFloorMessage>();
    const std::uint64_t process = r.var();
    if (process > kMaxWireProcesses) throw WireError("bad target process");
    msg->process = static_cast<int>(process);
    msg->floor = checked_u32(r.var(), "bad floor");
    msg->epoch = checked_u32(r.var(), "bad floor epoch");
    return msg;
  }
  throw WireError("unknown frame unit kind");
}

void write_frame_header(WireWriter& w, const PayloadFrame& frame,
                        const VectorClock& base) {
  w.u8(kVersion2);
  w.u8(static_cast<std::uint8_t>(WireKind::kFrame));
  w.var(frame.units.size());
  w.var(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) w.var(base[i]);
}

// ---------------------------------------------------------------------------
// Size-only walk of the v2 layout. stamp_frame_wire_size runs on every
// flush (the accounting hot path), and a WireWriter-based counting pass
// spends most of its time re-traversing each entry's slot array once per
// field. These mirror the writers above field-for-field but visit each
// ProcSlot exactly once; WireTest.StampMatchesEncodedSize pins them to the
// real encoder, so they cannot drift silently.
// ---------------------------------------------------------------------------

std::size_t zig_size(std::int64_t x) {
  const auto ux = static_cast<std::uint64_t>(x);
  return WireWriter::var_size((ux << 1) ^
                              (x < 0 ? ~std::uint64_t{0} : std::uint64_t{0}));
}

std::size_t entry_wire_size_v2(const TransitionEntry& e,
                               const VectorClock& base) {
  const std::size_t n = e.width();
  const bool delta = n == base.size();
  const TransitionEntry::ProcSlot* s = e.slots();
  std::size_t size = zig_size(e.transition_id) + WireWriter::var_size(n);
  for (std::size_t j = 0; j < n; ++j) {
    size += delta ? zig_size(static_cast<std::int64_t>(s[j].cut) -
                             static_cast<std::int64_t>(base[j]))
                  : WireWriter::var_size(s[j].cut);
    size += zig_size(static_cast<std::int64_t>(s[j].depend) -
                     static_cast<std::int64_t>(s[j].cut));
    size += WireWriter::var_size(s[j].gstate);
    size += 1;  // conj
  }
  size += 1;  // eval
  size += zig_size(e.next_target_process);
  size += WireWriter::var_size(e.next_target_event);
  size += 1;  // loop_certified
  if (e.loop_certified) {
    for (std::size_t j = 0; j < n; ++j) {
      size += zig_size(static_cast<std::int64_t>(s[j].loop_cut) -
                       static_cast<std::int64_t>(s[j].cut));
      size += WireWriter::var_size(s[j].loop_gstate);
    }
  }
  return size;
}

std::size_t clock_wire_size_v2(const VectorClock& clock,
                               const VectorClock& base) {
  std::size_t size = WireWriter::var_size(clock.size());
  if (clock.size() == base.size()) {
    for (std::size_t i = 0; i < clock.size(); ++i) {
      size += zig_size(static_cast<std::int64_t>(clock[i]) -
                       static_cast<std::int64_t>(base[i]));
    }
  } else {
    for (std::size_t i = 0; i < clock.size(); ++i) {
      size += WireWriter::var_size(clock[i]);
    }
  }
  return size;
}

std::size_t frame_unit_wire_size(const NetPayload& unit,
                                 const VectorClock& base) {
  if (unit.tag == TokenMessage::kTag) {
    const Token& t = static_cast<const TokenMessage&>(unit).token;
    std::size_t size = 1;  // kind tag
    size += WireWriter::var_size(t.token_id);
    size += zig_size(t.parent);
    size += WireWriter::var_size(t.parent_sn);
    size += clock_wire_size_v2(t.parent_vc, base);
    size += zig_size(t.next_target_process);
    size += WireWriter::var_size(t.next_target_event);
    size += WireWriter::var_size(static_cast<std::uint64_t>(t.hops));
    size += WireWriter::var_size(t.entries.size());
    for (const TransitionEntry& e : t.entries) {
      size += entry_wire_size_v2(e, base);
    }
    return size;
  }
  if (unit.tag == TerminationMessage::kTag) {
    const auto& msg = static_cast<const TerminationMessage&>(unit);
    return 1 + WireWriter::var_size(static_cast<std::uint64_t>(msg.process)) +
           WireWriter::var_size(msg.last_sn);
  }
  if (unit.tag == HistoryFloorMessage::kTag) {
    const auto& msg = static_cast<const HistoryFloorMessage&>(unit);
    return 1 + WireWriter::var_size(static_cast<std::uint64_t>(msg.process)) +
           WireWriter::var_size(msg.floor) + WireWriter::var_size(msg.epoch);
  }
  throw WireError("frame unit tag has no wire form");
}

}  // namespace

void write_token_body(WireWriter& w, const Token& token) {
  w.u64(token.token_id);
  w.u32(static_cast<std::uint32_t>(token.parent));
  w.u32(token.parent_sn);
  w.vc(token.parent_vc);
  w.u32(static_cast<std::uint32_t>(token.next_target_process + 1));
  w.u32(token.next_target_event);
  w.u32(static_cast<std::uint32_t>(token.hops));
  w.u32(static_cast<std::uint32_t>(token.entries.size()));
  for (const TransitionEntry& e : token.entries) write_entry(w, e);
}

Token read_token_body(WireReader& r, std::size_t max_width) {
  Token t;
  t.token_id = r.u64();
  t.parent = static_cast<int>(r.u32());
  t.parent_sn = r.u32();
  t.parent_vc = r.vc(max_width);
  t.next_target_process = read_target_process(r);
  t.next_target_event = r.u32();
  t.hops = static_cast<int>(r.u32());
  const std::uint32_t n = r.u32();
  if (n > 65536) throw WireError("too many entries");
  t.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    t.entries.push_back(read_entry(r, max_width));
  }
  return t;
}

std::vector<std::uint8_t> encode_token(const Token& token) {
  std::vector<std::uint8_t> buf;
  WireWriter w(buf);
  write_header(w, WireKind::kToken);
  write_token_body(w, token);
  return buf;
}

Token decode_token(const std::vector<std::uint8_t>& buffer,
                   std::size_t max_width) {
  WireReader r(buffer);
  read_header(r, WireKind::kToken);
  Token t = read_token_body(r, max_width);
  r.done();
  return t;
}

std::vector<std::uint8_t> encode_termination(const TerminationMessage& msg) {
  std::vector<std::uint8_t> buf;
  WireWriter w(buf);
  write_header(w, WireKind::kTermination);
  w.u32(static_cast<std::uint32_t>(msg.process));
  w.u32(msg.last_sn);
  return buf;
}

TerminationMessage decode_termination(
    const std::vector<std::uint8_t>& buffer) {
  WireReader r(buffer);
  read_header(r, WireKind::kTermination);
  TerminationMessage msg;
  msg.process = static_cast<int>(r.u32());
  msg.last_sn = r.u32();
  r.done();
  return msg;
}

WireKind wire_kind(const std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < 2) throw WireError("buffer too small");
  const std::uint8_t kind = buffer[1];
  if (buffer[0] == kVersion) {
    if (kind != 1 && kind != 2) throw WireError("unknown message kind");
    return static_cast<WireKind>(kind);
  }
  if (buffer[0] == kVersion2) {
    if (kind != static_cast<std::uint8_t>(WireKind::kFrame) &&
        kind != static_cast<std::uint8_t>(WireKind::kEnvelope) &&
        kind != static_cast<std::uint8_t>(WireKind::kFloor)) {
      throw WireError("unknown message kind");
    }
    return static_cast<WireKind>(kind);
  }
  throw WireError("unsupported wire version");
}

namespace {

// Shared by the buffered encoder and the counting size probe: single
// payloads keep their frozen v1 layout, frames use v2.
void encode_payload_impl(WireWriter& w, const NetPayload& payload) {
  if (payload.tag == TokenMessage::kTag) {
    const auto& msg = static_cast<const TokenMessage&>(payload);
    write_header(w, WireKind::kToken);
    write_token_body(w, msg.token);
  } else if (payload.tag == TerminationMessage::kTag) {
    const auto& msg = static_cast<const TerminationMessage&>(payload);
    write_header(w, WireKind::kTermination);
    w.u32(static_cast<std::uint32_t>(msg.process));
    w.u32(msg.last_sn);
  } else if (payload.tag == HistoryFloorMessage::kTag) {
    const auto& msg = static_cast<const HistoryFloorMessage&>(payload);
    w.u8(kVersion2);
    w.u8(static_cast<std::uint8_t>(WireKind::kFloor));
    w.var(static_cast<std::uint64_t>(msg.process));
    w.var(msg.floor);
    w.var(msg.epoch);
  } else if (payload.tag == PayloadFrame::kTag) {
    const auto& frame = static_cast<const PayloadFrame&>(payload);
    const VectorClock base = frame_base(frame);
    write_frame_header(w, frame, base);
    for (const auto& unit : frame.units) {
      if (!unit) throw WireError("null frame unit");
      write_frame_unit(w, *unit, base);
    }
  } else if (payload.tag == ChannelEnvelope::kTag) {
    // Reliable-channel envelope: seq/ack header, then the embedded payload
    // encoding as the remainder of the buffer (records are externally
    // framed, so no inner length prefix is needed). First transmissions
    // carry the payload object; retransmissions carry the retained bytes.
    const auto& env = static_cast<const ChannelEnvelope&>(payload);
    w.u8(kVersion2);
    w.u8(static_cast<std::uint8_t>(WireKind::kEnvelope));
    w.var(env.seq);
    w.var(env.ack);
    if (env.inner) {
      w.u8(1);
      encode_payload_impl(w, *env.inner);
    } else if (!env.bytes.empty()) {
      w.u8(1);
      w.raw(env.bytes.data(), env.bytes.size());
    } else {
      w.u8(0);  // pure ack
    }
  } else {
    throw WireError("payload tag has no wire form");
  }
}

}  // namespace

void encode_payload_into(const NetPayload& payload,
                         std::vector<std::uint8_t>& out) {
  WireWriter w(out);
  encode_payload_impl(w, payload);
}

std::size_t payload_wire_size(const NetPayload& payload) {
  WireWriter w;  // counting mode
  encode_payload_impl(w, payload);
  return w.written();
}

std::size_t stamp_frame_wire_size(PayloadFrame& frame) {
  const VectorClock base = frame_base(frame);
  WireWriter header;  // counting mode
  write_frame_header(header, frame, base);
  std::size_t total = header.written();
  for (auto& unit : frame.units) {
    if (!unit) throw WireError("null frame unit");
    const std::size_t unit_size = frame_unit_wire_size(*unit, base);
    unit->wire_size = static_cast<std::uint32_t>(unit_size);
    total += unit_size;
  }
  frame.wire_size = static_cast<std::uint32_t>(total);
  return total;
}

std::vector<std::uint8_t> encode_frame(const PayloadFrame& frame) {
  std::vector<std::uint8_t> buf;
  encode_payload_into(frame, buf);
  return buf;
}

std::unique_ptr<PayloadFrame> decode_frame(
    const std::vector<std::uint8_t>& buffer, std::size_t max_width) {
  WireReader r(buffer);
  const std::uint8_t version = r.u8();
  if (version != kVersion2) throw WireError("unsupported wire version");
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(WireKind::kFrame)) {
    throw WireError("unexpected message kind");
  }
  const std::uint64_t n_units = r.var();
  if (n_units > kMaxFrameUnits) throw WireError("too many frame units");
  const std::uint64_t base_n = r.var();
  if (base_n > max_width) throw WireError("vector clock too wide");
  VectorClock base(static_cast<std::size_t>(base_n));
  for (std::size_t i = 0; i < base_n; ++i) {
    base[i] = checked_u32(r.var(), "clock component out of range");
  }
  auto frame = std::make_unique<PayloadFrame>();
  // A decoded frame knows its exact on-wire size; keep the accounting stamp
  // alive across an encode/decode round-trip (reliable-channel retransmits
  // rebuild payloads from bytes).
  frame->wire_size = static_cast<std::uint32_t>(buffer.size());
  frame->units.reserve(static_cast<std::size_t>(n_units));
  for (std::uint64_t i = 0; i < n_units; ++i) {
    frame->units.push_back(read_frame_unit(r, max_width, base));
  }
  r.done();
  return frame;
}

std::unique_ptr<NetPayload> decode_payload(
    const std::vector<std::uint8_t>& buffer, std::size_t max_width) {
  switch (wire_kind(buffer)) {
    case WireKind::kToken: {
      auto msg = std::make_unique<TokenMessage>();
      msg->token = decode_token(buffer, max_width);
      return msg;
    }
    case WireKind::kTermination: {
      const TerminationMessage decoded = decode_termination(buffer);
      auto msg = std::make_unique<TerminationMessage>();
      msg->process = decoded.process;
      msg->last_sn = decoded.last_sn;
      return msg;
    }
    case WireKind::kFrame:
      return decode_frame(buffer, max_width);
    case WireKind::kFloor: {
      WireReader r(buffer);
      r.u8();  // version, validated by wire_kind
      r.u8();  // kind
      auto msg = std::make_unique<HistoryFloorMessage>();
      const std::uint64_t process = r.var();
      if (process > kMaxWireProcesses) throw WireError("bad target process");
      msg->process = static_cast<int>(process);
      msg->floor = checked_u32(r.var(), "bad floor");
      msg->epoch = checked_u32(r.var(), "bad floor epoch");
      r.done();
      return msg;
    }
    case WireKind::kEnvelope: {
      WireReader r(buffer);
      r.u8();  // version, validated by wire_kind
      r.u8();  // kind
      auto env = std::make_unique<ChannelEnvelope>();
      env->seq = r.var();
      env->ack = r.var();
      const bool has_payload = r.u8() != 0;
      if (has_payload) {
        if (r.remaining() == 0) throw WireError("empty envelope payload");
        // The embedded encoding stays opaque bytes: the channel's receive
        // path decodes them (and validates widths) exactly as it does for
        // retransmissions.
        env->bytes.assign(buffer.begin() + static_cast<std::ptrdiff_t>(
                                               r.position()),
                          buffer.end());
      } else {
        r.done();
      }
      return env;
    }
  }
  throw WireError("unknown message kind");
}

std::uint32_t wire_crc32(const std::uint8_t* data, std::size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace decmon
