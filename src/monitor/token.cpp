#include "decmon/monitor/token.hpp"

#include <sstream>

namespace decmon {

bool Token::has_live_entries() const {
  for (const TransitionEntry& e : entries) {
    if (e.eval == EntryEval::kUnset) return true;
  }
  return false;
}

std::string TransitionEntry::to_string() const {
  std::ostringstream os;
  os << "entry{t" << transition_id << " cut=[";
  for (std::size_t i = 0; i < width(); ++i) {
    if (i) os << ',';
    os << cut(i);
  }
  os << "] eval="
     << (eval == EntryEval::kUnset ? "?"
                                   : eval == EntryEval::kTrue ? "T" : "F")
     << " ->P" << next_target_process << "@" << next_target_event << "}";
  return os.str();
}

std::string Token::to_string() const {
  std::ostringstream os;
  os << "token{" << token_id << " parent=P" << parent << "@" << parent_sn
     << " ->P" << next_target_process << "@" << next_target_event << " [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) os << ' ';
    os << entries[i].to_string();
  }
  os << "]}";
  return os.str();
}

}  // namespace decmon
