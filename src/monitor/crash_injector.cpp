#include "decmon/monitor/crash_injector.hpp"

#include <sstream>
#include <stdexcept>

#include "decmon/monitor/checkpoint.hpp"

namespace decmon {

std::string CrashPlan::to_string() const {
  std::ostringstream os;
  os << "node " << node << " crash_after " << crash_after
     << " down_deliveries " << down_deliveries;
  return os.str();
}

CrashInjector::CrashInjector(MonitorHooks* inner,
                             DecentralizedMonitor* monitors,
                             ReliableChannel* channel, CrashPlan plan)
    : inner_(inner), monitors_(monitors), channel_(channel), plan_(plan) {
  if (!inner_) throw std::invalid_argument("CrashInjector: null inner hooks");
  if (plan_.node >= 0) {
    if (!monitors_ || !channel_) {
      throw std::invalid_argument(
          "CrashInjector: crash plan needs monitors and channel");
    }
    if (plan_.node >= monitors_->num_processes()) {
      throw std::invalid_argument("CrashInjector: bad crash node");
    }
    // The pre-crash state must always be restorable, including a crash that
    // trips before the node's first delivery.
    take_checkpoint();
  }
}

void CrashInjector::take_checkpoint() {
  monitor_blob_ = checkpoint_monitor(monitors_->monitor(plan_.node));
  channel_blob_ = channel_->save_node(plan_.node);
  ++stats_.checkpoints_taken;
  stats_.checkpoint_bytes += monitor_blob_.size() + channel_blob_.size();
}

void CrashInjector::crash() {
  phase_ = Phase::kDown;
  down_left_ = plan_.down_deliveries;
  ++stats_.crashes;
}

void CrashInjector::restart(double now) {
  restore_monitor(monitors_->monitor(plan_.node), monitor_blob_);
  channel_->restore_node(plan_.node, channel_blob_, now);
  // Round-trip check: re-snapshotting the state just restored must give
  // back the exact bytes. A mismatch means the codec dropped or invented
  // state -- a soundness bug, so it is fatal rather than logged.
  if (checkpoint_monitor(monitors_->monitor(plan_.node)) != monitor_blob_ ||
      channel_->save_node(plan_.node) != channel_blob_) {
    throw std::logic_error(
        "CrashInjector: checkpoint round-trip is not byte-identical");
  }
  phase_ = Phase::kRecovered;
  ++stats_.restarts;
  // Floor-resync handshake (DESIGN.md §13): the restored window state --
  // base offset and the floors we last advertised through gc_sweep -- may
  // sit BELOW what the dead incarnation promised peers after this
  // checkpoint was taken. Re-advertise under a bumped epoch so peers clamp
  // their monotone folds down to the rewound promise before anything the
  // replayed journal provokes reaches them. Runs after the byte-identity
  // check above (the epoch bump is new state, not part of the round trip)
  // and is a no-op outside the streaming posture.
  monitors_->monitor(plan_.node).resync_floors(now);
  // Replay the durable local log the node accumulated while down.
  for (const JournalEntry& entry : journal_) {
    if (entry.termination) {
      inner_->on_local_termination(plan_.node, now);
    } else {
      inner_->on_local_event(plan_.node, entry.event, now);
    }
    ++stats_.journal_replayed;
  }
  journal_.clear();
}

void CrashInjector::on_local_event(int proc, const Event& event, double now) {
  if (proc != plan_.node || phase_ == Phase::kRecovered) {
    inner_->on_local_event(proc, event, now);
    return;
  }
  if (phase_ == Phase::kDown) {
    if (down_left_ == 0) {
      restart(now);
      inner_->on_local_event(proc, event, now);
      return;
    }
    journal_.push_back(JournalEntry{false, event});
    --down_left_;
    return;
  }
  if (delivered_data_ >= plan_.crash_after) {
    // The crash can trip at a local-event boundary too (this is what makes
    // every seeded plan actually fire: a node always has local events, but
    // may see few data envelopes). The tripping event goes straight into the
    // journal -- it is the node's own durable log entry, not network soft
    // state -- so recovery replays it.
    crash();
    journal_.push_back(JournalEntry{false, event});
    if (down_left_ > 0) --down_left_;
    return;
  }
  ++delivered_data_;
  inner_->on_local_event(proc, event, now);
  take_checkpoint();
}

void CrashInjector::on_local_termination(int proc, double now) {
  if (proc != plan_.node || phase_ == Phase::kRecovered) {
    inner_->on_local_termination(proc, now);
    return;
  }
  if (phase_ == Phase::kDown) {
    if (down_left_ == 0) {
      restart(now);
      inner_->on_local_termination(proc, now);
      return;
    }
    // Termination is durable (journaled) but does not count toward the
    // restart trigger: it is not a delivery.
    journal_.push_back(JournalEntry{true, Event{}});
    return;
  }
  inner_->on_local_termination(proc, now);
  take_checkpoint();
}

void CrashInjector::on_monitor_message(MonitorMessage msg, double now) {
  if (msg.to != plan_.node || phase_ == Phase::kRecovered) {
    inner_->on_monitor_message(std::move(msg), now);
    return;
  }
  const bool is_envelope =
      msg.payload && msg.payload->tag == ChannelEnvelope::kTag;
  const bool is_data =
      is_envelope && static_cast<ChannelEnvelope*>(msg.payload.get())->seq != 0;
  if (phase_ == Phase::kDown) {
    if (down_left_ == 0) {
      restart(now);
      inner_->on_monitor_message(std::move(msg), now);
      return;
    }
    // Data envelopes are unacked at their senders and will be retransmitted
    // after the restart; acks and timers are soft state and vanish with the
    // node. Only countable (recoverable) arrivals tick the restart clock.
    if (is_data) {
      ++stats_.dropped_while_down;
      --down_left_;
    }
    return;
  }
  if (is_data && delivered_data_ >= plan_.crash_after) {
    // The crash trips at this delivery boundary: the message is lost with
    // the node (its sender retransmits it into the restarted node later),
    // and the node's state is exactly the last checkpoint.
    crash();
    if (plan_.down_deliveries > 0) {
      ++stats_.dropped_while_down;
      --down_left_;
    }
    return;
  }
  if (is_data) ++delivered_data_;
  inner_->on_monitor_message(std::move(msg), now);
  take_checkpoint();
}

}  // namespace decmon
