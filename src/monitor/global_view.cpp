#include "decmon/monitor/global_view.hpp"

#include <sstream>

namespace decmon {

std::string GlobalView::to_string() const {
  std::ostringstream os;
  os << "gv{" << id << " q=" << q << " cut=[";
  for (std::size_t i = 0; i < cut.size(); ++i) {
    if (i) os << ',';
    os << cut[i];
  }
  os << "]" << (waiting ? " waiting" : "") << (forked_copy ? " launchpad" : "")
     << " next_sn=" << next_sn << "}";
  return os.str();
}

}  // namespace decmon
