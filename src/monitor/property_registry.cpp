#include "decmon/monitor/property_registry.hpp"

#include <mutex>
#include <utility>

#include "decmon/generated/gen_tables.hpp"

namespace decmon {
namespace {

MonitorAutomaton with_dispatch(MonitorAutomaton m) {
  m.build_dispatch();
  return m;
}

}  // namespace

PropertyArtifact::PropertyArtifact(AtomRegistry registry,
                                   MonitorAutomaton automaton)
    : registry_(std::move(registry)),
      automaton_(with_dispatch(std::move(automaton))),
      property_(&automaton_, &registry_) {}

CompiledPropertyRegistry& CompiledPropertyRegistry::instance() {
  static CompiledPropertyRegistry registry;
  static std::once_flag once;
  // The generated set registers through the reference, never through
  // instance() -- re-entering here would deadlock the call_once.
  std::call_once(once, [] { gen::register_builtin(registry); });
  return registry;
}

void CompiledPropertyRegistry::add(const std::string& formula,
                                   const std::string& signature,
                                   SharedProperty artifact) {
  std::unique_lock lock(mutex_);
  std::vector<Entry>& rows = entries_[formula];
  for (Entry& row : rows) {
    if (row.signature == signature) {
      row.artifact = std::move(artifact);
      return;  // shadowed, not re-counted
    }
  }
  rows.push_back(Entry{signature, std::move(artifact)});
  registered_.fetch_add(1, std::memory_order_relaxed);
}

SharedProperty CompiledPropertyRegistry::find(const std::string& formula,
                                              const std::string& signature) {
  std::shared_lock lock(mutex_);
  auto it = entries_.find(formula);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  for (const Entry& row : it->second) {
    if (row.signature == signature && row.artifact) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return row.artifact;
    }
  }
  // Formula generated, but against a different registry (or only as a
  // tombstone): stale artifact -- the caller must synthesize.
  mismatches_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

CompiledPropertyRegistry::Stats CompiledPropertyRegistry::stats() const {
  Stats s;
  s.registered = registered_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.mismatches = mismatches_.load(std::memory_order_relaxed);
  return s;
}

void CompiledPropertyRegistry::clear() {
  {
    std::unique_lock lock(mutex_);
    entries_.clear();
    registered_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    mismatches_.store(0, std::memory_order_relaxed);
  }
  // Outstanding SharedProperty handles keep the dropped artifacts alive;
  // only the registry's own references are gone. Restore the generated set
  // outside the lock (register_builtin re-enters through add()).
  gen::register_builtin(*this);
}

}  // namespace decmon
