#include "decmon/monitor/centralized_monitor.hpp"

#include <stdexcept>

namespace decmon {
namespace {
constexpr std::uint32_t kRunning = 0xFFFFFFFFu;
}

CentralizedMonitor::CentralizedMonitor(const CompiledProperty* property,
                                       MonitorNetwork* network,
                                       std::vector<AtomSet> initial_letters,
                                       int central_node, std::size_t max_cuts)
    : prop_(property),
      net_(network),
      central_(central_node),
      max_cuts_(max_cuts) {
  const int n = property->num_processes();
  if (static_cast<int>(initial_letters.size()) != n) {
    throw std::invalid_argument("CentralizedMonitor: bad initial letters");
  }
  events_.resize(static_cast<std::size_t>(n));
  last_sn_.assign(static_cast<std::size_t>(n), kRunning);
  for (int p = 0; p < n; ++p) {
    Event init;
    init.type = EventType::kInitial;
    init.process = p;
    init.sn = 0;
    init.vc = VectorClock(static_cast<std::size_t>(n));
    init.letter = initial_letters[static_cast<std::size_t>(p)];
    events_[static_cast<std::size_t>(p)].push_back(init);
  }
  // Seed the DP with the bottom cut.
  const Cut bottom(static_cast<std::size_t>(n), 0);
  const int q0 = prop_->step(prop_->initial_state(), letter_at(bottom));
  cuts_.emplace(bottom, std::uint64_t{1} << q0);
  const Verdict v = prop_->verdict(q0);
  if (v != Verdict::kUnknown) declared_.insert(v);
  work_.push_back(bottom);
  pump(0.0);
}

AtomSet CentralizedMonitor::letter_at(const Cut& cut) const {
  AtomSet a = 0;
  for (std::size_t p = 0; p < events_.size(); ++p) {
    a |= events_[p][cut[p]].letter;
  }
  return a;
}

void CentralizedMonitor::on_local_event(int proc, const Event& event,
                                        double now) {
  if (proc == central_) {
    central_ingest(event, now);
    return;
  }
  ++forwarded_;
  auto payload = std::make_unique<EventForwardMessage>();
  payload->event = event;
  net_->send(MonitorMessage{proc, central_, std::move(payload)});
}

void CentralizedMonitor::on_local_termination(int proc, double now) {
  // FIFO channels order the termination signal after every event of the
  // process, so on arrival the process's history is complete and the
  // signal itself needs no sequence number.
  if (proc == central_) {
    central_termination(proc, 0, now);
    return;
  }
  auto payload = std::make_unique<CentralTerminationMessage>();
  payload->process = proc;
  net_->send(MonitorMessage{proc, central_, std::move(payload)});
}

void CentralizedMonitor::on_monitor_message(MonitorMessage msg, double now) {
  if (msg.to != central_) {
    throw std::logic_error("CentralizedMonitor: message to non-central node");
  }
  NetPayload* payload = msg.payload.get();
  if (payload != nullptr && payload->tag == EventForwardMessage::kTag) {
    central_ingest(static_cast<EventForwardMessage*>(payload)->event, now);
  } else if (payload != nullptr &&
             payload->tag == CentralTerminationMessage::kTag) {
    auto* term = static_cast<CentralTerminationMessage*>(payload);
    central_termination(term->process, term->last_sn, now);
  } else {
    throw std::invalid_argument("CentralizedMonitor: unknown payload");
  }
}

void CentralizedMonitor::central_ingest(const Event& event, double now) {
  auto& hist = events_[static_cast<std::size_t>(event.process)];
  if (event.sn != hist.size()) {
    // FIFO channels deliver in order per process; anything else is a bug.
    throw std::logic_error("CentralizedMonitor: out-of-order event");
  }
  hist.push_back(event);
  // Wake cuts blocked on this event.
  auto it = blocked_.find({event.process, event.sn});
  if (it != blocked_.end()) {
    for (Cut& cut : it->second) work_.push_back(std::move(cut));
    blocked_.erase(it);
  }
  pump(now);
  check_finished(now);
}

void CentralizedMonitor::central_termination(int proc, std::uint32_t,
                                             double now) {
  // All of proc's events precede its termination signal on the FIFO
  // channel, so its history is complete: the last sn is what we have.
  last_sn_[static_cast<std::size_t>(proc)] = static_cast<std::uint32_t>(
      events_[static_cast<std::size_t>(proc)].size() - 1);
  check_finished(now);
}

void CentralizedMonitor::expand(const Cut& cut, double now) {
  const int n = static_cast<int>(events_.size());
  const std::uint64_t mask = cuts_.at(cut);
  for (int p = 0; p < n; ++p) {
    const std::uint32_t next = cut[static_cast<std::size_t>(p)] + 1;
    if (next >= events_[static_cast<std::size_t>(p)].size()) {
      // Event not received yet; park unless the process is done.
      if (last_sn_[static_cast<std::size_t>(p)] == kRunning ||
          next <= last_sn_[static_cast<std::size_t>(p)]) {
        blocked_[{p, next}].push_back(cut);
      }
      continue;
    }
    const Event& e = events_[static_cast<std::size_t>(p)][next];
    // Consistency: e's dependencies must be inside the cut. If a dependency
    // event is missing entirely, the wake happens when it arrives (e itself
    // re-blocks on the lagging component).
    bool ok = true;
    for (int j = 0; j < n && ok; ++j) {
      if (j == p) continue;
      if (e.vc[static_cast<std::size_t>(j)] > cut[static_cast<std::size_t>(j)]) {
        ok = false;
        // Advancing j may eventually unblock us; that path goes through the
        // cut's j-successor, which this DP explores anyway. No parking.
      }
    }
    if (!ok) continue;
    Cut succ = cut;
    ++succ[static_cast<std::size_t>(p)];
    const AtomSet letter = letter_at(succ);
    std::uint64_t succ_mask = 0;
    for (int q = 0; q < prop_->automaton().num_states(); ++q) {
      if (!(mask & (std::uint64_t{1} << q))) continue;
      succ_mask |= std::uint64_t{1} << prop_->step(q, letter);
    }
    auto [it, inserted] = cuts_.emplace(succ, succ_mask);
    if (!inserted) {
      const std::uint64_t before = it->second;
      it->second |= succ_mask;
      if (it->second == before) continue;  // nothing new to propagate
    } else if (cuts_.size() > max_cuts_) {
      throw std::length_error("CentralizedMonitor: lattice too large");
    }
    for (int q = 0; q < prop_->automaton().num_states(); ++q) {
      if (succ_mask & (std::uint64_t{1} << q)) {
        const Verdict v = prop_->verdict(q);
        if (v != Verdict::kUnknown) declared_.insert(v);
      }
    }
    work_.push_back(std::move(succ));
    (void)now;
  }
}

void CentralizedMonitor::pump(double now) {
  while (!work_.empty()) {
    Cut cut = std::move(work_.back());
    work_.pop_back();
    expand(cut, now);
  }
}

void CentralizedMonitor::check_finished(double now) {
  if (finished_) return;
  for (std::size_t p = 0; p < events_.size(); ++p) {
    if (last_sn_[p] == kRunning) return;
    if (events_[p].size() != static_cast<std::size_t>(last_sn_[p]) + 1) {
      return;
    }
  }
  finished_ = true;
  finish_time_ = now;
}

std::set<Verdict> CentralizedMonitor::verdicts() const {
  std::set<Verdict> out = declared_;
  for (int q : final_states()) out.insert(prop_->verdict(q));
  return out;
}

std::set<int> CentralizedMonitor::final_states() const {
  Cut top(events_.size());
  for (std::size_t p = 0; p < events_.size(); ++p) {
    top[p] = static_cast<std::uint32_t>(events_[p].size() - 1);
  }
  std::set<int> out;
  auto it = cuts_.find(top);
  if (it == cuts_.end()) return out;
  for (int q = 0; q < prop_->automaton().num_states(); ++q) {
    if (it->second & (std::uint64_t{1} << q)) out.insert(q);
  }
  return out;
}

}  // namespace decmon
