#include "decmon/monitor/stats.hpp"

#include <algorithm>
#include <sstream>

namespace decmon {

MonitorStats& MonitorStats::operator+=(const MonitorStats& other) {
  tokens_created += other.tokens_created;
  token_messages_sent += other.token_messages_sent;
  token_hops += other.token_hops;
  termination_messages += other.termination_messages;
  frames_sent += other.frames_sent;
  frames_sampled += other.frames_sampled;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  global_views_created += other.global_views_created;
  global_views_merged += other.global_views_merged;
  peak_global_views += other.peak_global_views;
  peak_waiting_tokens = std::max(peak_waiting_tokens,
                                 other.peak_waiting_tokens);
  views_overflowed += other.views_overflowed;
  gc_sweeps += other.gc_sweeps;
  history_trimmed += other.history_trimmed;
  peak_history = std::max(peak_history, other.peak_history);
  floor_messages += other.floor_messages;
  resync_floors += other.resync_floors;
  retransmissions += other.retransmissions;
  acks_sent += other.acks_sent;
  dup_suppressed += other.dup_suppressed;
  checkpoints_taken += other.checkpoints_taken;
  checkpoint_bytes += other.checkpoint_bytes;
  crash_restarts += other.crash_restarts;
  events_processed += other.events_processed;
  events_delayed += other.events_delayed;
  pending_sum += other.pending_sum;
  pending_samples += other.pending_samples;
  max_pending = std::max(max_pending, other.max_pending);
  finish_time = std::max(finish_time, other.finish_time);
  return *this;
}

std::string MonitorStats::to_string() const {
  std::ostringstream os;
  os << "stats{msgs=" << token_messages_sent << " tokens=" << tokens_created
     << " hops=" << token_hops << " frames=" << frames_sent
     << " wire_bytes=" << bytes_sent << " views=" << global_views_created
     << " delayed=" << events_delayed << " avg_queue="
     << average_delayed_events();
  if (gc_sweeps || history_trimmed) {
    os << " gc=" << gc_sweeps << " trimmed=" << history_trimmed
       << " peak_hist=" << peak_history;
  }
  if (views_overflowed) os << " overflowed=" << views_overflowed;
  os << "}";
  return os.str();
}

}  // namespace decmon
