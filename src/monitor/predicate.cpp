#include "decmon/monitor/predicate.hpp"

#include <stdexcept>

namespace decmon {

CompiledProperty::CompiledProperty(const MonitorAutomaton* automaton,
                                   const AtomRegistry* registry)
    : automaton_(automaton),
      registry_(registry),
      analysis_(analyze_automaton(*automaton)),
      num_processes_(registry->num_processes()),
      relevant_atoms_(automaton->relevant_atoms()) {
  const int n = num_processes_;
  const int states = automaton->num_states();
  outgoing_.resize(static_cast<std::size_t>(states));
  self_loops_.resize(static_cast<std::size_t>(states));
  has_self_loop_.assign(static_cast<std::size_t>(states), 0);
  transitions_.reserve(static_cast<std::size_t>(automaton->num_transitions()));
  local_flat_.reserve(static_cast<std::size_t>(automaton->num_transitions()) *
                      static_cast<std::size_t>(n));
  for (const MonitorTransition& t : automaton->transitions()) {
    CompiledTransition ct;
    ct.id = t.id;
    ct.from = t.from;
    ct.to = t.to;
    ct.self_loop = t.self_loop();
    ct.guard = t.guard;
    ct.local.reserve(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      Cube local = restrict_to_process(t.guard, *registry, p);
      if (!local.is_true()) ct.participants.push_back(p);
      ct.local.push_back(local);
      local_flat_.push_back(local);
    }
    if ((ct.local.size() == static_cast<std::size_t>(n)) == false) {
      throw std::logic_error("CompiledProperty: bad split");
    }
    if (ct.self_loop) {
      self_loops_[static_cast<std::size_t>(t.from)].push_back(t.id);
      has_self_loop_[static_cast<std::size_t>(t.from)] = 1;
    } else {
      outgoing_[static_cast<std::size_t>(t.from)].push_back(t.id);
    }
    transitions_.push_back(std::move(ct));
  }
  for (CompiledTransition& ct : transitions_) {
    ct.from_has_self_loop = has_self_loop_[static_cast<std::size_t>(ct.from)] != 0;
  }
}

int CompiledProperty::step(int q, AtomSet letter) const {
  const MonitorTransition* t = match(q, letter);
  if (!t) {
    throw std::logic_error("CompiledProperty::step: incomplete automaton");
  }
  return t->to;
}

}  // namespace decmon
