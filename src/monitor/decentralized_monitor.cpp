#include "decmon/monitor/decentralized_monitor.hpp"

#include <stdexcept>

#include "decmon/monitor/token.hpp"

namespace decmon {

DecentralizedMonitor::DecentralizedMonitor(
    std::shared_ptr<const CompiledProperty> property, MonitorNetwork* network,
    std::vector<AtomSet> initial_letters, MonitorOptions options)
    : property_(std::move(property)) {
  const int n = property_->num_processes();
  monitors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Replicas share the one property (and, through the aliasing
    // shared_ptr, its owning artifact); nothing per-replica is copied.
    monitors_.push_back(std::make_unique<MonitorProcess>(
        i, property_, network, initial_letters, options));
    monitors_.back()->set_verdict_callback([this](Verdict v, double now) {
      if (v == Verdict::kFalse &&
          (first_violation_ < 0 || now < first_violation_)) {
        first_violation_ = now;
      }
      if (v == Verdict::kTrue &&
          (first_satisfaction_ < 0 || now < first_satisfaction_)) {
        first_satisfaction_ = now;
      }
    });
  }
}

void DecentralizedMonitor::on_local_event(int proc, const Event& event,
                                          double now) {
  monitor(proc).on_local_event(event, now);
}

void DecentralizedMonitor::on_local_termination(int proc, double now) {
  monitor(proc).on_local_termination(now);
}

void DecentralizedMonitor::on_monitor_message(MonitorMessage msg, double now) {
  MonitorProcess& target = monitor(msg.to);
  NetPayload* payload = msg.payload.get();
  if (payload != nullptr && payload->tag == TokenMessage::kTag) {
    // Take ownership: move the token out, then hand the empty shell (and
    // whatever heap capacity its token accumulated) to the receiving
    // monitor's free list for reuse on its next send.
    msg.payload.release();
    std::unique_ptr<TokenMessage> shell(static_cast<TokenMessage*>(payload));
    Token token = std::move(shell->token);
    target.recycle_token_payload(std::move(shell));
    target.on_token(std::move(token), now);
  } else if (payload != nullptr && payload->tag == TerminationMessage::kTag) {
    auto* term = static_cast<TerminationMessage*>(payload);
    target.on_peer_termination(term->process, term->last_sn, now);
  } else if (payload != nullptr && payload->tag == PayloadFrame::kTag) {
    msg.payload.release();
    target.on_frame(
        std::unique_ptr<PayloadFrame>(static_cast<PayloadFrame*>(payload)),
        now);
  } else if (payload != nullptr && payload->tag == HistoryFloorMessage::kTag) {
    auto* floor = static_cast<HistoryFloorMessage*>(payload);
    target.on_history_floor(floor->process, floor->floor, floor->epoch, now);
  } else {
    throw std::invalid_argument(
        "DecentralizedMonitor: unknown monitor message payload");
  }
}

bool DecentralizedMonitor::all_finished() const {
  for (const auto& m : monitors_) {
    if (!m->finished()) return false;
  }
  return true;
}

SystemVerdict DecentralizedMonitor::result() const {
  SystemVerdict out;
  out.all_finished = all_finished();
  out.first_violation_time = first_violation_;
  out.first_satisfaction_time = first_satisfaction_;
  for (const auto& m : monitors_) {
    for (Verdict v : m->verdicts()) out.verdicts.insert(v);
    for (int q : m->current_states()) out.states.insert(q);
    out.per_monitor.push_back(m->stats());
    out.aggregate += m->stats();
  }
  return out;
}

std::vector<AtomSet> initial_letters_of(
    const AtomRegistry& registry, const std::vector<LocalState>& states) {
  std::vector<AtomSet> letters;
  letters.reserve(states.size());
  for (std::size_t p = 0; p < states.size(); ++p) {
    letters.push_back(
        registry.evaluate_local(static_cast<int>(p), states[p]));
  }
  return letters;
}

}  // namespace decmon
