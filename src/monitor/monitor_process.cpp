#include "decmon/monitor/monitor_process.hpp"

#include <algorithm>
#include <climits>
#include <cassert>
#include <stdexcept>

#include "decmon/monitor/wire.hpp"

namespace decmon {
namespace {

/// RAII guard for re-entrancy depth tracking.
class DepthGuard {
 public:
  explicit DepthGuard(int& depth) : depth_(depth) { ++depth_; }
  ~DepthGuard() { --depth_; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;

 private:
  int& depth_;
};

constexpr std::uint32_t kRunning = 0xFFFFFFFFu;

/// Free-list bounds: generous for real runs, tight enough that a
/// pathological run cannot hoard memory through the pools.
constexpr std::size_t kMaxPooledTokens = 128;
constexpr std::size_t kMaxPooledPayloads = 128;
constexpr std::size_t kMaxPooledFrames = 32;
constexpr std::size_t kMaxPooledViews = 128;

}  // namespace

MonitorProcess::MonitorProcess(int index,
                               std::shared_ptr<const CompiledProperty> property,
                               MonitorNetwork* network,
                               std::vector<AtomSet> initial_letters,
                               MonitorOptions options)
    : index_(index),
      n_(property->num_processes()),
      prop_(std::move(property)),
      net_(network),
      options_(options),
      peer_floor_(static_cast<std::size_t>(n_), 0),
      peer_floor_epoch_(static_cast<std::size_t>(n_), 0),
      peer_last_sn_(static_cast<std::size_t>(n_), kRunning) {
  if (static_cast<int>(initial_letters.size()) != n_) {
    throw std::invalid_argument("MonitorProcess: bad initial_letters size");
  }
  // Stride 0 would divide by zero in flush_staged; treat it as "sample
  // every frame".
  if (options_.wire_sample_stride == 0) options_.wire_sample_stride = 1;
  if (options_.gc_interval == 0) options_.gc_interval = 64;
  // INIT (Alg. 1): the initial global view points at the bottom cut; the
  // initial global state is the first letter the automaton consumes.
  Event init;
  init.type = EventType::kInitial;
  init.process = index_;
  init.sn = 0;
  init.vc = VectorClock(static_cast<std::size_t>(n_));
  init.letter = initial_letters[static_cast<std::size_t>(index_)];
  history_.push_back(init);
  stats_.peak_history = 1;

  GlobalView gv0;
  gv0.id = next_view_id_++;
  gv0.cut.assign(static_cast<std::size_t>(n_), 0);
  gv0.gstate.resize(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    gv0.gstate[static_cast<std::size_t>(j)] =
        initial_letters[static_cast<std::size_t>(j)];
  }
  gv0.next_sn = static_cast<std::uint32_t>(history_.size());  // consumed sn 0
  gv0.q = prop_->step(prop_->initial_state(), gv0.combined_letter());
  ++stats_.global_views_created;
  views_.push_back(std::move(gv0));
  declare(views_.back().q, 0.0);
  if (!prop_->is_final(views_.back().q)) {
    DepthGuard guard(dispatch_depth_);
    probe_outgoing(views_.back(), history_[0], /*consistent=*/true, 0.0);
  }
  sweep_dead_views();
  flush_staged();
}

std::size_t MonitorProcess::num_views() const {
  std::size_t count = 0;
  for (const GlobalView& gv : views_) {
    if (!gv.dead) ++count;
  }
  return count;
}

std::set<int> MonitorProcess::current_states() const {
  std::set<int> states;
  for (const GlobalView& gv : views_) {
    if (!gv.dead) states.insert(gv.q);
  }
  return states;
}

std::set<Verdict> MonitorProcess::verdicts() const {
  std::set<Verdict> out = declared_;
  for (int q : current_states()) out.insert(prop_->verdict(q));
  return out;
}

void MonitorProcess::declare(int q, double now) {
  const Verdict v = prop_->verdict(q);
  if (v == Verdict::kUnknown) return;
  const bool fresh = declared_.insert(v).second;
  if (fresh && on_verdict_) on_verdict_(v, now);
}

// ---------------------------------------------------------------------------
// Free lists
// ---------------------------------------------------------------------------

Token MonitorProcess::acquire_token() {
  if (token_pool_.empty()) return Token{};
  Token t = std::move(token_pool_.back());
  token_pool_.pop_back();
  t.token_id = 0;
  t.parent = -1;
  t.parent_sn = 0;
  t.entries.clear();  // keeps the entry vector's capacity
  t.next_target_process = -1;
  t.next_target_event = 0;
  t.hops = 0;
  return t;
}

void MonitorProcess::recycle_token(Token&& token) {
  if (token_pool_.size() < kMaxPooledTokens) {
    token_pool_.push_back(std::move(token));
  }
}

std::unique_ptr<TokenMessage> MonitorProcess::acquire_token_payload() {
  if (payload_pool_.empty()) return std::make_unique<TokenMessage>();
  std::unique_ptr<TokenMessage> shell = std::move(payload_pool_.back());
  payload_pool_.pop_back();
  // A recycled shell keeps its last stamp; under sampled accounting the
  // next flush may skip restamping, and a stale size would masquerade as a
  // fresh measurement downstream (SimRuntime's convoy merges transfer it).
  shell->wire_size = 0;
  return shell;
}

void MonitorProcess::recycle_token_payload(
    std::unique_ptr<TokenMessage> shell) {
  if (shell && payload_pool_.size() < kMaxPooledPayloads) {
    payload_pool_.push_back(std::move(shell));
  }
}

std::unique_ptr<PayloadFrame> MonitorProcess::acquire_frame() {
  if (frame_pool_.empty()) return std::make_unique<PayloadFrame>();
  std::unique_ptr<PayloadFrame> frame = std::move(frame_pool_.back());
  frame_pool_.pop_back();
  frame->wire_size = 0;
  return frame;
}

void MonitorProcess::recycle_frame(std::unique_ptr<PayloadFrame> frame) {
  if (frame && frame_pool_.size() < kMaxPooledFrames) {
    frame->units.clear();  // keeps the unit vector's capacity
    frame_pool_.push_back(std::move(frame));
  }
}

GlobalView MonitorProcess::acquire_view() {
  GlobalView v;
  if (!view_pool_.empty()) {
    v = std::move(view_pool_.back());
    view_pool_.pop_back();
    v.id = 0;
    v.q = 0;
    v.waiting = false;
    v.token_id = 0;
    v.forked_copy = false;
    v.next_sn = 0;
    v.probe_sig = 0;
    v.dead = false;
    v.quarantined = false;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Send coalescing (DESIGN.md §9)
// ---------------------------------------------------------------------------

void MonitorProcess::stage_send(int dest, std::unique_ptr<NetPayload> unit) {
  staged_.push_back(StagedSend{dest, std::move(unit)});
}

void MonitorProcess::flush_staged() {
  // Flushing mid-dispatch would both break batching (each response would
  // leave alone) and reorder sends relative to the staging sequence; the
  // top-level entry point flushes once when its dispatch fully unwinds.
  if (dispatch_depth_ > 0 || staged_.empty()) return;
  std::size_t i = 0;
  while (i < staged_.size()) {
    const int dest = staged_[i].dest;
    std::unique_ptr<PayloadFrame> frame = acquire_frame();
    // One frame per consecutive same-destination run: this preserves the
    // inter-destination send order exactly (a full per-destination sort
    // would reorder sends and with them the simulator's latency-draw
    // sequence, perturbing the schedule goldens).
    do {
      frame->units.push_back(std::move(staged_[i].unit));
      ++i;
    } while (i < staged_.size() && staged_[i].dest == dest);
    // Single counting-encode pass: stamps each unit's in-frame size and the
    // frame total, without materializing bytes (DESIGN.md §9). Under
    // sampled accounting only every stride-th frame pays for the walk;
    // estimated_bytes_sent() extrapolates from the measured subset.
    if (options_.wire_accounting == WireAccounting::kExact ||
        stats_.frames_sent % options_.wire_sample_stride == 0) {
      stats_.bytes_sent += stamp_frame_wire_size(*frame);
      ++stats_.frames_sampled;
    }
    ++stats_.frames_sent;
    net_->send(MonitorMessage{index_, dest, std::move(frame)});
  }
  staged_.clear();
}

// ---------------------------------------------------------------------------
// Event path (Alg. 2)
// ---------------------------------------------------------------------------

void MonitorProcess::on_local_event(const Event& event, double now) {
  try {
  {
  DepthGuard guard(dispatch_depth_);
  if (event.sn != history_end()) {
    throw std::logic_error("MonitorProcess: out-of-order local event");
  }
  history_.push_back(event);
  stats_.peak_history =
      std::max<std::uint64_t>(stats_.peak_history, history_.size());
  ++stats_.events_processed;

  // Tokens parked for this event (Alg. 2 lines 4-8). Extract first: token
  // processing can re-park or spawn views. Tokens parked during this loop
  // always target future events, so they never match the condition.
  for (std::size_t i = 0; i < w_tokens_.size();) {
    if (w_tokens_[i].next_target_process == index_ &&
        w_tokens_[i].next_target_event <= event.sn) {
      Token t = std::move(w_tokens_[i]);
      w_tokens_.erase(w_tokens_.begin() + static_cast<std::ptrdiff_t>(i));
      process_token(std::move(t), now);
      // The erase shifted the next candidate into slot i.
    } else {
      ++i;
    }
  }

  // Advance every existing view's cursor over the shared history; no event
  // is copied anywhere. Views appended during the loop were created with
  // cuts/cursors already covering this event and drained at spawn.
  const std::size_t count = views_.size();
  for (std::size_t idx = 0; idx < count; ++idx) {
    GlobalView& gv = views_[idx];
    if (gv.dead) continue;
    if (gv.waiting) ++stats_.events_delayed;
    drain(gv, now);
  }
  sample_pending();
  merge_similar_views();
  sweep_dead_views();
  if (options_.streaming && ++events_since_gc_ >= options_.gc_interval) {
    events_since_gc_ = 0;
    gc_sweep(now);
  }
  if (options_.max_history && history_.size() > options_.max_history) {
    // The retained window outgrew its budget even after GC: surface the
    // bound. Nothing is half-applied -- the event fully dispatched -- so
    // the monitor stays valid and checkpointable.
    throw MonitorOverflow("MonitorProcess: history cap exceeded");
  }
  }  // dispatch scope: the flush below must see depth 0
  } catch (const MonitorOverflow&) {
    // An intentional bound tripped mid-dispatch. The DepthGuard has already
    // unwound, so the staged sends can leave before the throw surfaces --
    // checkpointing refuses monitors with staged traffic.
    flush_staged();
    throw;
  }
  flush_staged();
}

void MonitorProcess::drain(GlobalView& gv, double now) {
  // history_ only grows at the top of on_local_event -- never during a
  // dispatch -- so the reference into it stays valid across process_event
  // (which can spawn views, walk tokens and recurse back into drain).
  while (!gv.dead && !gv.waiting && gv.next_sn < history_end()) {
    const Event& e = event_at(gv.next_sn++);
    process_event(gv, e, now);
  }
}

void MonitorProcess::process_event(GlobalView& gv, const Event& e,
                                   double now) {
  gv.cut[static_cast<std::size_t>(index_)] = e.sn;
  gv.gstate[static_cast<std::size_t>(index_)] = e.letter;
  if (prop_->is_final(gv.q)) return;  // absorbing verdict

  // Consistency: the event must not know more about any peer than the view
  // does (Alg. 2 line 20).
  bool consistent = true;
  for (int j = 0; j < n_; ++j) {
    if (j == index_) continue;
    if (gv.cut[static_cast<std::size_t>(j)] <
        e.vc[static_cast<std::size_t>(j)]) {
      consistent = false;
      break;
    }
  }

  const int q_old = gv.q;
  if (consistent) {
    // Deterministic step on the believed global state (one letter per
    // event; Alg. 2 lines 21-25).
    const MonitorTransition* t = prop_->match(gv.q, gv.combined_letter());
    if (!t) {
      throw std::logic_error("MonitorProcess: incomplete automaton");
    }
    if (!t->self_loop()) {
      gv.q = t->to;
      declare(gv.q, now);
    }
  }
  // Probe from the post-advance state AND, when the step left q_old, from
  // q_old as well: concurrent remote events can enable a *different* branch
  // out of q_old at a cut containing this event (e.g. the paper's running
  // example, where the path through <e1_1, e2_2> reaches q1 although the
  // local path went to the violation state). Design note: the thesis only
  // probes from the new state, which loses such paths. Quarantined views
  // never probe: their position cannot anchor a sound token walk.
  if (!gv.quarantined) {
    probe_outgoing(gv, e, consistent, now, q_old != gv.q ? q_old : -1);
  }
}

std::uint64_t MonitorProcess::probe_signature(
    const GlobalView& gv, const SmallVec<int, 32>& tids) const {
  // Only atoms the automaton reads matter: beliefs differing in irrelevant
  // variables describe the same probe.
  const AtomSet relevant = prop_->relevant_atoms();
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(gv.q));
  for (int t : tids) mix(static_cast<std::uint64_t>(t) + 1);
  for (AtomSet s : gv.gstate) mix((s & relevant) ^ 0x5bd1e995u);
  return h;
}

void MonitorProcess::probe_outgoing(GlobalView& gv, const Event& e,
                                    bool consistent, double now,
                                    int extra_from_state) {
  // Soundness of a probe entry rests on where its source state is
  // *certified*:
  //   - "at-cut" entries (the view's state after a consistent step that
  //     consumed e): start at the cut including e;
  //   - "pre-cut" entries (the pre-advance state q_old whose other branches
  //     remain reachable through concurrent remote events, and the view's
  //     state on an inconsistent event, which never consumed e's cut): start
  //     at the cut *before* e -- the walk re-applies e itself, with the
  //     self-loop feasibility check, like any other event.
  // Design note: the thesis starts every entry at the join max(gcut, e.VC),
  // skipping intermediate cuts entirely; that admits firings on paths that
  // do not exist (unsound, e.g. for X-shaped states without self-loops).
  struct Candidate {
    int tid;
    bool pre_cut;
  };
  auto prunable = [&](int q) {
    // Final states have no outgoing transitions; settled states (no
    // definite verdict reachable, 7.2.2) are not worth probing.
    return prop_->is_final(q) ||
           (options_.prune_settled_states && prop_->verdict_settled(q));
  };
  SmallVec<Candidate, 32> candidates;
  if (!prunable(gv.q)) {
    for (int tid : prop_->outgoing(gv.q)) {
      candidates.push_back({tid, !consistent});
    }
  }
  if (extra_from_state >= 0 && !prunable(extra_from_state)) {
    for (int tid : prop_->outgoing(extra_from_state)) {
      candidates.push_back({tid, true});
    }
  }
  if (candidates.empty()) return;

  const AtomSet pre_letter =
      event_at(e.sn - (e.sn > 0 ? 1 : 0)).letter;

  // Entries are built directly into a pooled token; if the probe turns out
  // empty or a duplicate, the token (and its capacity) goes back unsent.
  Token token = acquire_token();
  SmallVec<int, 32> tids;

  if (options_.walk_mode == WalkMode::kJoinJump) {
    // The thesis's CheckOutgoingTransitions: entries start at the join
    // max(gcut, e.VC) with the current (possibly stale) beliefs, and a
    // fully-believed-satisfied transition at an advanced join fires
    // immediately. Kept for comparison; see WalkMode::kJoinJump.
    for (const Candidate& cand : candidates) {
      const int tid = cand.tid;
      if (!prop_->locally_satisfied(tid, index_, e.letter)) continue;
      TransitionEntry entry;
      entry.transition_id = tid;
      entry.set_width(static_cast<std::size_t>(n_));
      bool advanced = false;
      for (int j = 0; j < n_; ++j) {
        const std::uint32_t joined =
            std::max(gv.cut[static_cast<std::size_t>(j)],
                     e.vc[static_cast<std::size_t>(j)]);
        if (joined != gv.cut[static_cast<std::size_t>(j)]) advanced = true;
        entry.cut(static_cast<std::size_t>(j)) = joined;
        entry.gstate(static_cast<std::size_t>(j)) =
            gv.gstate[static_cast<std::size_t>(j)];
        entry.depend(static_cast<std::size_t>(j)) = joined;
        entry.conj(static_cast<std::size_t>(j)) = ConjunctEval::kTrue;
      }
      const CompiledTransition& ct = prop_->transition(tid);
      bool needs_walk = false;
      for (int j = 0; j < n_; ++j) {
        if (j == index_) continue;
        if (!ct.local[static_cast<std::size_t>(j)].is_true() &&
            !prop_->locally_satisfied(
                tid, j, entry.gstate(static_cast<std::size_t>(j)))) {
          entry.conj(static_cast<std::size_t>(j)) = ConjunctEval::kUnset;
          needs_walk = true;
        }
      }
      if (!needs_walk) {
        if (!advanced) continue;  // the deterministic step's own transition
        // Believed-enabled at the advanced join: resolved already, but
        // routed through the token machinery so probe deduplication keeps
        // repeated beliefs from spawning unboundedly.
        entry.eval = EntryEval::kTrue;
      } else {
        for (int j = 0; j < n_; ++j) {
          if (entry.conj(static_cast<std::size_t>(j)) ==
              ConjunctEval::kUnset) {
            entry.next_target_process = j;
            entry.next_target_event =
                entry.cut(static_cast<std::size_t>(j)) + 1;
            break;
          }
        }
      }
      tids.push_back(tid);
      token.entries.push_back(std::move(entry));
    }
    if (token.entries.empty()) {
      recycle_token(std::move(token));
      return;
    }
  } else {
  for (const Candidate& cand : candidates) {
    const int tid = cand.tid;
    const bool pre = cand.pre_cut && e.sn > 0;
    // Skip when this process forbids the transition at every admissible
    // local position (Alg. 3 line 7).
    const bool sat_now = prop_->locally_satisfied(tid, index_, e.letter);
    const bool sat_pre = prop_->locally_satisfied(tid, index_, pre_letter);
    if (pre ? (!sat_now && !sat_pre) : !sat_now) continue;

    TransitionEntry entry;
    entry.transition_id = tid;
    entry.set_width(static_cast<std::size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      entry.cut(static_cast<std::size_t>(j)) =
          gv.cut[static_cast<std::size_t>(j)];
      entry.gstate(static_cast<std::size_t>(j)) =
          gv.gstate[static_cast<std::size_t>(j)];
    }
    if (pre) {
      entry.cut(static_cast<std::size_t>(index_)) = e.sn - 1;
      entry.gstate(static_cast<std::size_t>(index_)) = pre_letter;
      // The rolled-back frontier event still carries dependencies: without
      // its clock in `depend`, a cut through it can pass the consistency
      // check while missing remote events it happened-after -- the walk
      // then certifies stay-points and enables transitions at cuts that lie
      // on no lattice path (fuzz-found unsound verdicts).
      entry.merge_depend(event_at(e.sn - 1).vc);
    } else {
      entry.merge_depend(e.vc);
    }
    entry.raise_depend_to_cut();
    const CompiledTransition& ct = prop_->transition(tid);
    bool needs_walk = false;
    for (int j = 0; j < n_; ++j) {
      entry.conj(static_cast<std::size_t>(j)) = ConjunctEval::kTrue;
      if (entry.cut(static_cast<std::size_t>(j)) <
          entry.depend(static_cast<std::size_t>(j))) {
        needs_walk = true;  // lagging component: must be walked forward
      }
      const bool participates =
          !ct.local[static_cast<std::size_t>(j)].is_true();
      if (participates &&
          !prop_->locally_satisfied(
              tid, j, entry.gstate(static_cast<std::size_t>(j)))) {
        entry.conj(static_cast<std::size_t>(j)) = ConjunctEval::kUnset;
        needs_walk = true;
      }
    }
    if (!needs_walk) {
      // The guard holds at the entry's own cut -- but the transition fires
      // at a *successor* cut (the source state holds after this one). The
      // local successor is covered by the view's own deterministic step;
      // remote successors need one verification step, or the pivot is lost
      // whenever the next local event is inconsistent (design note: the
      // thesis's "enabled transition" handling misses this case). Walk one
      // event on a remote participant (any remote process if the guard is
      // local-only) and let the usual completion rules decide there.
      int j = -1;
      for (int k : ct.participants) {
        if (k != index_) {
          j = k;
          break;
        }
      }
      if (j < 0) j = index_ == 0 ? (n_ > 1 ? 1 : -1) : 0;
      if (j < 0) continue;  // single process: local steps cover everything
      entry.conj(static_cast<std::size_t>(j)) = ConjunctEval::kUnset;
      entry.next_target_process = j;
      entry.next_target_event = entry.cut(static_cast<std::size_t>(j)) + 1;
    } else {
      // Initial target: first lagging component, else first open conjunct
      // (Alg. 3 lines 12-13).
      for (int j = 0; j < n_; ++j) {
        const bool lagging = entry.cut(static_cast<std::size_t>(j)) <
                             entry.depend(static_cast<std::size_t>(j));
        if (lagging || entry.conj(static_cast<std::size_t>(j)) ==
                           ConjunctEval::kUnset) {
          entry.next_target_process = j;
          entry.next_target_event =
              entry.cut(static_cast<std::size_t>(j)) + 1;
          break;
        }
      }
    }
    tids.push_back(tid);
    token.entries.push_back(std::move(entry));
  }

  if (token.entries.empty()) {
    recycle_token(std::move(token));
    return;
  }
  }  // walk-mode dispatch

  // Optimization 4.3.2: skip duplicate probes -- the same (state,
  // transitions, beliefs) signature was already probed, either by an
  // outstanding token or by this view's previous probe ("the new event is
  // considered to be an element in the slice being constructed"). Pivot
  // cuts involving *new remote* events are caught by the remote monitors'
  // own probes (Theorem 4's progress-path argument).
  const std::uint64_t sig = probe_signature(gv, tids);
  if (options_.dedupe_probes) {
    if (gv.probe_sig == sig || outstanding_sigs_.count(sig)) {
      recycle_token(std::move(token));
      return;
    }
  }

  // A consistent probe forks a copy below; surface a cap breach before any
  // state mutates: the pooled token goes back, the view never starts
  // waiting, no signature is registered, and nothing is counted as created.
  if (consistent && options_.max_views &&
      views_.size() >= options_.max_views) {
    ++stats_.views_overflowed;
    recycle_token(std::move(token));
    throw MonitorOverflow("MonitorProcess: view cap exceeded (fork)");
  }

  token.token_id =
      (static_cast<std::uint64_t>(index_) << 32) | next_token_serial_++;
  token.parent = index_;
  token.parent_sn = e.sn;
  token.parent_vc = e.vc;
  ++stats_.tokens_created;

  if (options_.trace) {
    options_.trace("M" + std::to_string(index_) + " probe " +
                   token.to_string() + " from " + gv.to_string());
  }
  gv.waiting = true;
  gv.token_id = token.token_id;
  gv.probe_sig = sig;
  outstanding_sigs_.insert(sig);
  gv.forked_copy = consistent;
  if (consistent) {
    // Fork a copy that keeps tracing the path while the original waits for
    // the token (Alg. 2 lines 33-36).
    GlobalView copy = acquire_view();
    copy.cut = gv.cut;
    copy.gstate = gv.gstate;
    copy.q = gv.q;
    copy.next_sn = gv.next_sn;
    copy.id = next_view_id_++;
    views_.push_back(std::move(copy));
    ++stats_.global_views_created;
    drain(views_.back(), now);  // deque: pushing does not invalidate `gv`
  }
  // Dispatch: walks local targets over history (pre-cut entries re-consume
  // the triggering event here), routes remote targets, parks only on truly
  // future local events.
  process_token(std::move(token), now);
}

// ---------------------------------------------------------------------------
// Token path (Alg. 3-5)
// ---------------------------------------------------------------------------

void MonitorProcess::on_token(Token token, double now) {
  try {
    DepthGuard guard(dispatch_depth_);
    if (token.parent == index_) {
      handle_returned_token(std::move(token), now);
    } else {
      process_token(std::move(token), now);
    }
    merge_similar_views();
    sweep_dead_views();
    check_finished(now);
  } catch (const MonitorOverflow&) {
    flush_staged();  // no-op inside a frame; the frame's wrapper flushes
    throw;
  }
  // No-op while delivered as part of a frame (on_frame holds the depth):
  // the whole frame's responses flush together.
  flush_staged();
}

void MonitorProcess::on_frame(std::unique_ptr<PayloadFrame> frame,
                              double now) {
  stats_.bytes_received += frame->wire_size;
  try {
    // Hold the dispatch depth across all units so every per-unit flush
    // no-ops: responses provoked by any unit batch into the frames this
    // flush_staged() below emits.
    DepthGuard guard(dispatch_depth_);
    for (std::unique_ptr<NetPayload>& unit : frame->units) {
      if (!unit) continue;
      if (unit->tag == TokenMessage::kTag) {
        std::unique_ptr<TokenMessage> shell(
            static_cast<TokenMessage*>(unit.release()));
        Token token = std::move(shell->token);
        recycle_token_payload(std::move(shell));
        on_token(std::move(token), now);
      } else if (unit->tag == TerminationMessage::kTag) {
        const auto& t = static_cast<const TerminationMessage&>(*unit);
        on_peer_termination(t.process, t.last_sn, now);
      } else if (unit->tag == HistoryFloorMessage::kTag) {
        const auto& f = static_cast<const HistoryFloorMessage&>(*unit);
        on_history_floor(f.process, f.floor, f.epoch, now);
      }
      // Other tags never appear inside a monitor-built frame; tolerate and
      // skip them (a hostile decoded frame cannot make this path throw).
    }
    frame->units.clear();
  } catch (const MonitorOverflow&) {
    flush_staged();  // the guard unwound with the unit loop
    throw;
  }
  flush_staged();
  recycle_frame(std::move(frame));
}

void MonitorProcess::process_token(Token token, double now) {
  while (true) {
    if (token.next_target_process != index_) {
      // Targeted elsewhere: route it. A false return means the router chose
      // to keep it here after all (some entry targets this process); the
      // loop continues with the updated local target.
      if (route_token(token, now)) return;
      continue;
    }
    const std::uint32_t sn = token.next_target_event;
    if (sn < history_base_) {
      // Trimmed prefix. The floor gossip keeps live walks above the GC
      // base, so only a duplicate-delivered token can still target it: its
      // first copy already walked these events and spawned their pivots.
      // Fail the re-walk's entries instead of replaying history that is
      // gone.
      for (TransitionEntry& entry : token.entries) {
        if (entry.eval == EntryEval::kUnset &&
            entry.next_target_process == index_ &&
            entry.next_target_event < history_base_) {
          entry.eval = EntryEval::kFalse;
        }
      }
      if (route_token(token, now)) return;
      continue;  // stays here, now targeting a retained event
    }
    if (sn >= history_end()) {
      if (!local_terminated_) {
        w_tokens_.push_back(std::move(token));
        stats_.peak_waiting_tokens = std::max<std::uint64_t>(
            stats_.peak_waiting_tokens, w_tokens_.size());
        return;
      }
      // The requested event will never occur: the awaited conjunct can
      // never become true on this walk (Theorem 1).
      for (TransitionEntry& entry : token.entries) {
        if (entry.eval == EntryEval::kUnset &&
            entry.next_target_process == index_ &&
            entry.next_target_event >= history_end()) {
          entry.eval = EntryEval::kFalse;
        }
      }
      if (!route_token(token, now)) {
        throw std::logic_error(
            "MonitorProcess: token stuck after local termination");
      }
      return;
    }
    apply_event_to_token(token, event_at(sn));
    if (route_token(token, now)) return;
    // Token stays here, now targeting a later local event; keep walking.
  }
}

void MonitorProcess::apply_event_to_token(Token& token, const Event& e) {
  SmallVec<std::uint32_t, 32> updated;
  for (std::size_t idx = 0; idx < token.entries.size(); ++idx) {
    TransitionEntry& entry = token.entries[idx];
    if (entry.eval != EntryEval::kUnset) continue;
    if (entry.next_target_process != index_ ||
        entry.next_target_event != e.sn) {
      continue;
    }
    entry.cut(static_cast<std::size_t>(index_)) = e.sn;
    entry.gstate(static_cast<std::size_t>(index_)) = e.letter;
    entry.merge_depend(e.vc);
    entry.raise_depend_to_cut();
    const CompiledTransition& ct = prop_->transition(entry.transition_id);
    if (!ct.local[static_cast<std::size_t>(index_)].is_true()) {
      entry.conj(static_cast<std::size_t>(index_)) =
          prop_->locally_satisfied(entry.transition_id, index_, e.letter)
              ? ConjunctEval::kTrue
              : ConjunctEval::kUnset;
    } else {
      // Non-participant visit (successor verification or consistency
      // repair): nothing to evaluate here.
      entry.conj(static_cast<std::size_t>(index_)) = ConjunctEval::kTrue;
    }
    updated.push_back(static_cast<std::uint32_t>(idx));
  }

  // Resolve or retarget each updated entry (Alg. 4 lines 13-25, with the
  // generalized order check replacing Alg. 5's sibling-only flag rule).
  for (std::uint32_t idx : updated) {
    TransitionEntry& entry = token.entries[idx];
    if (entry.eval != EntryEval::kUnset) continue;

    // Find what still keeps the entry open: a lagging cut component (the
    // frontier depends on events not yet included) or an open conjunct.
    int next = -1;
    for (int k = 0; k < n_; ++k) {
      if (entry.cut(static_cast<std::size_t>(k)) <
              entry.depend(static_cast<std::size_t>(k)) ||
          entry.conj(static_cast<std::size_t>(k)) == ConjunctEval::kUnset) {
        next = k;
        break;
      }
    }
    if (next < 0) {
      // All conjuncts verified at a consistent cut: enabled (the pivot
      // global state is found).
      entry.eval = EntryEval::kTrue;
      continue;
    }

    // The walk must advance past the current cut. A source state without
    // any self-loop (X-shaped) leaves on *every* letter: the transition can
    // only fire exactly one event past the creation cut, so an entry that
    // did not complete on this event is infeasible.
    if (!prop_->transition(entry.transition_id).from_has_self_loop) {
      entry.eval = EntryEval::kFalse;
      continue;
    }
    // Otherwise, advancing is only a real path if the letter here keeps the
    // source state on a self-loop; the check applies at consistent cuts
    // (design note: this generalizes Alg. 5's flag rule, which only catches
    // competing sibling entries). An inconsistent cut is not a global state
    // of any path, so it is repaired, not judged.
    if (entry.cut_covers_depend()) {
      const AtomSet letter = entry.combined_gstate();
      const MonitorTransition* t =
          prop_->match(prop_->transition(entry.transition_id).from, letter);
      if (t && !t->self_loop()) {
        entry.eval = EntryEval::kFalse;
        continue;
      }
      // Certified stay-point: a consistent cut where the path provably can
      // remain at the source state (used to resurrect launchpad views).
      entry.certify_loop();
    }
    // A conjunct re-opens when its process's slice will move.
    const CompiledTransition& ct = prop_->transition(entry.transition_id);
    if (!ct.local[static_cast<std::size_t>(next)].is_true()) {
      entry.conj(static_cast<std::size_t>(next)) = ConjunctEval::kUnset;
    }
    entry.next_target_process = next;
    entry.next_target_event = entry.cut(static_cast<std::size_t>(next)) + 1;
  }
}

bool MonitorProcess::route_token(Token& token, double now) {
  // SendToNextProcess (4.2.0.6): (1) any enabled entry -> parent; (2) a
  // live entry targets this process -> stay; (3) a live entry targets a
  // third process -> go there; (4) otherwise -> parent.
  bool any_true = false;
  bool any_live = false;
  for (const TransitionEntry& e : token.entries) {
    if (e.eval == EntryEval::kTrue) any_true = true;
    if (e.eval == EntryEval::kUnset) any_live = true;
  }

  int dest = token.parent;
  if (!any_true && any_live) {
    // Prefer staying, then a third process, then the parent. Among third
    // processes, prefer the entry whose target automaton state is closest
    // to a definite verdict (static-analysis routing, 7.2.2) -- detection
    // latency matters most for transitions about to decide the run.
    int third = -1;
    int third_rank = INT_MAX;
    int parent_target = -1;
    bool stay = false;
    for (const TransitionEntry& e : token.entries) {
      if (e.eval != EntryEval::kUnset) continue;
      if (e.next_target_process == index_) {
        stay = true;
      } else if (e.next_target_process == token.parent) {
        parent_target = token.parent;
      } else {
        int rank = 0;
        if (options_.prioritize_near_verdict) {
          const int d = prop_->distance_to_verdict(
              prop_->transition(e.transition_id).to);
          rank = d == AutomatonAnalysis::kUnreachable ? INT_MAX - 1 : d;
        }
        if (third < 0 || rank < third_rank) {
          third = e.next_target_process;
          third_rank = rank;
        }
      }
    }
    if (stay) {
      dest = index_;
    } else if (third >= 0) {
      dest = third;
    } else if (parent_target >= 0) {
      dest = parent_target;
    }
  }

  // Target event at the destination: the earliest live request there.
  std::uint32_t target_event = 0;
  bool have_target = false;
  for (const TransitionEntry& e : token.entries) {
    if (e.eval != EntryEval::kUnset) continue;
    if (e.next_target_process != dest) continue;
    if (!have_target || e.next_target_event < target_event) {
      target_event = e.next_target_event;
      have_target = true;
    }
  }
  token.next_target_process = dest;
  token.next_target_event = have_target ? target_event : 0;

  if (dest == index_ && !(any_true || !any_live)) {
    return false;  // stays at this monitor (rule 2)
  }
  ++token.hops;
  ++stats_.token_hops;
  if (dest == index_) {
    // Returning home without a hop (parent == current process).
    handle_returned_token(std::move(token), now);
    return true;
  }
  ++stats_.token_messages_sent;
  // Swap the token into a recycled message shell: the shell's previous
  // token husk lands in `token` and goes back to the pool, so its spilled
  // capacity (entry vector, wide clocks) keeps circulating. The shell is
  // staged, not sent: it leaves inside a batched frame when the current
  // dispatch unwinds.
  std::unique_ptr<TokenMessage> payload = acquire_token_payload();
  std::swap(payload->token, token);
  stage_send(dest, std::move(payload));
  recycle_token(std::move(token));
  return true;
}

void MonitorProcess::handle_returned_token(Token token, double now) {
  GlobalView* gv = find_view_by_token(token.token_id);
  if (!gv || gv->dead) {
    // Orphan return: the view vanished, or an earlier copy of this token
    // (duplicate delivery under fault injection) already resolved it. The
    // enabled entries are still verified pivots of real lattice paths, so
    // spawn them anyway -- spawned_memo_ dedupes against the other copy --
    // and re-delivery stays idempotent instead of silently dropping paths.
    bool spawned = false;
    for (const TransitionEntry& entry : token.entries) {
      if (entry.eval != EntryEval::kTrue) continue;
      spawn_view(entry, now);
      spawned = true;
    }
    recycle_token(std::move(token));
    if (spawned) check_finished(now);
    return;
  }

  bool spawned_to = false;
  // Local, not member scratch: spawn_view can re-enter this function
  // through drain -> probe_outgoing -> process_token -> route_token.
  SmallVec<char, 64> spawned_states(
      static_cast<std::size_t>(prop_->automaton().num_states()), 0);
  for (TransitionEntry& entry : token.entries) {
    if (entry.eval != EntryEval::kTrue) continue;
    spawn_view(entry, now);
    spawned_to = true;
    spawned_states[static_cast<std::size_t>(
        prop_->transition(entry.transition_id).to)] = 1;
  }
  if (spawned_to && options_.prune_same_destination) {
    // Optimization 4.3.3: transitions split from one disjunctive predicate
    // lead to the same state; satisfying one is enough.
    for (TransitionEntry& entry : token.entries) {
      if (entry.eval == EntryEval::kUnset &&
          spawned_states[static_cast<std::size_t>(
              prop_->transition(entry.transition_id).to)]) {
        entry.eval = EntryEval::kFalse;
      }
    }
  }
  // Remember the most advanced certified stay-point across all entries
  // (resolved ones included) before dropping them: resurrecting far along
  // the walk avoids re-probing the ground the token already covered.
  const TransitionEntry* cert = nullptr;
  for (const TransitionEntry& entry : token.entries) {
    if (!entry.loop_certified) continue;
    if (!cert || entry.loop_cut_total() > cert->loop_cut_total()) {
      cert = &entry;
    }
  }
  SmallVec<std::uint32_t, 8> cert_cut;
  SmallVec<AtomSet, 8> cert_gstate;
  if (cert) {
    cert_cut.resize(cert->width());
    cert_gstate.resize(cert->width());
    for (std::size_t j = 0; j < cert->width(); ++j) {
      cert_cut[j] = cert->loop_cut(j);
      cert_gstate[j] = cert->loop_gstate(j);
    }
  }

  // Drop resolved entries.
  std::erase_if(token.entries, [](const TransitionEntry& e) {
    return e.eval != EntryEval::kUnset;
  });

  if (token.entries.empty()) {
    recycle_token(std::move(token));
    gv->waiting = false;
    outstanding_sigs_.erase(gv->probe_sig);
    if (gv->forked_copy) {
      // A copy has been tracing the path from the launch position since the
      // probe went out: the launchpad is redundant.
      gv->dead = true;
    } else if (cert &&
               cert_cut[static_cast<std::size_t>(index_)] >= history_base_) {
      // Resurrection (design note): the launchpad had no copy continuing
      // the path (its triggering event was inconsistent), but the token
      // certified a consistent cut where the path can stay at the source
      // state. Resume the view there instead of killing it -- this is what
      // preserves the '?' path of the paper's running example (path beta).
      // The waiting view's GC keep-bound retains the certified cut's local
      // predecessor, so a first-delivery resurrection never rewinds below
      // the base; only a duplicate token can fail the check above, and it
      // falls through to the quarantine branch instead.
      gv->cut = std::move(cert_cut);
      gv->gstate = std::move(cert_gstate);
      gv->probe_sig = 0;
      // Rewind the cursor to the certified cut: its local component can lie
      // before events the launchpad already consumed, and the shared history
      // replays them without any copying.
      gv->next_sn = gv->cut[static_cast<std::size_t>(index_)] + 1;
      drain(*gv, now);
    } else {
      // No fork continued this path and the token certified no stay-point
      // (its entries resolved before crossing any consistent open cut).
      // Killing the view here loses real '?' paths (fuzz-found on the
      // thesis automata, whose per-conjunct self-loops are never probed) --
      // but its position is not certified to lie on any path either, so
      // letting it keep probing spawns definite-state views at unreachable
      // cuts (unsound on X-shaped automata). Quarantine it: it survives as
      // a passive '?' marker, draining but never probing again.
      gv->quarantined = true;
      drain(*gv, now);
    }
    check_finished(now);
    return;
  }
  // Live entries remain (inconsistency repairs that involve the parent, or
  // further remote visits): re-dispatch.
  process_token(std::move(token), now);
}

void MonitorProcess::spawn_view(const TransitionEntry& entry, double now) {
  // A duplicate-delivered token can carry a pivot whose local component
  // precedes the GC base (the first copy spawned it before the trim); its
  // replay would read below the retained window, so skip it -- the first
  // copy's view already traces this path.
  if (entry.cut(static_cast<std::size_t>(index_)) < history_base_) return;
  // Dedupe pivots: distinct tokens can detect the same (state, cut) pivot;
  // one view per pivot suffices (its continuation covers the rest).
  {
    std::uint64_t h = 1469598103934665603ull;
    h ^= static_cast<std::uint64_t>(prop_->transition(entry.transition_id).to);
    h *= 1099511628211ull;
    for (std::size_t j = 0; j < entry.width(); ++j) {
      h ^= entry.cut(j);
      h *= 1099511628211ull;
    }
    if (spawned_memo_.count(h)) return;
    // Cap check before the memo insert and the pool acquire: a breach must
    // not leave a pivot marked spawned without its view, abandon a pooled
    // shell, or count a view that was never pushed.
    if (options_.max_views && views_.size() >= options_.max_views) {
      ++stats_.views_overflowed;
      throw MonitorOverflow("MonitorProcess: view cap exceeded (spawn)");
    }
    spawned_memo_.insert(h);
  }
  if (options_.trace) {
    options_.trace("M" + std::to_string(index_) + " spawn via " +
                   entry.to_string());
  }
  GlobalView v = acquire_view();
  v.id = next_view_id_++;
  v.cut.resize(entry.width());
  v.gstate.resize(entry.width());
  for (std::size_t j = 0; j < entry.width(); ++j) {
    v.cut[j] = entry.cut(j);
    v.gstate[j] = entry.gstate(j);
  }
  v.q = prop_->transition(entry.transition_id).to;
  // The new path continues from the detected pivot cut: every local event
  // past the cut must still be consumed, including ones the parent already
  // processed -- the cursor starts at the pivot's local component, not at
  // the parent's position, and drain() replays the shared history from
  // there.
  v.next_sn = entry.cut(static_cast<std::size_t>(index_)) + 1;
  declare(v.q, now);
  views_.push_back(std::move(v));
  ++stats_.global_views_created;
  drain(views_.back(), now);
}

GlobalView* MonitorProcess::find_view_by_token(std::uint64_t token_id) {
  for (GlobalView& gv : views_) {
    if (gv.waiting && gv.token_id == token_id) return &gv;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Termination (4.2.0.10)
// ---------------------------------------------------------------------------

void MonitorProcess::on_local_termination(double now) {
  try {
    DepthGuard guard(dispatch_depth_);
    local_terminated_ = true;
    peer_last_sn_[static_cast<std::size_t>(index_)] = history_end() - 1;
    // Announce to all peers. Staged like every send: a token flushed below
    // toward the same peer shares that peer's frame.
    for (int j = 0; j < n_; ++j) {
      if (j == index_) continue;
      auto payload = std::make_unique<TerminationMessage>();
      payload->process = index_;
      payload->last_sn = history_end() - 1;
      ++stats_.termination_messages;
      stage_send(j, std::move(payload));
    }
    flush_waiting_tokens(now);
    merge_similar_views();
    sweep_dead_views();
    check_finished(now);
  } catch (const MonitorOverflow&) {
    flush_staged();
    throw;
  }
  flush_staged();
}

void MonitorProcess::on_peer_termination(int peer, std::uint32_t last_sn,
                                         double now) {
  {
    DepthGuard guard(dispatch_depth_);
    peer_last_sn_[static_cast<std::size_t>(peer)] = last_sn;
    check_finished(now);
  }
  flush_staged();
}

// ---------------------------------------------------------------------------
// Streaming history GC (DESIGN.md §12)
// ---------------------------------------------------------------------------

void MonitorProcess::on_history_floor(int peer, std::uint32_t floor,
                                      std::uint32_t epoch, double now) {
  (void)now;
  if (peer < 0 || peer >= n_ || peer == index_) return;  // hostile decode
  std::uint32_t& slot = peer_floor_[static_cast<std::size_t>(peer)];
  std::uint32_t& slot_epoch = peer_floor_epoch_[static_cast<std::size_t>(peer)];
  if (epoch > slot_epoch) {
    // Floor-resync (DESIGN.md §13): the peer restarted from a checkpoint and
    // re-advertises its rewound promise. Replace, never max: the clamp is
    // the entire point, and any higher value we stored belongs to the dead
    // pre-crash epoch. Lowering the fold only blocks future trims -- history
    // already trimmed above the clamp is covered by the below-base guard,
    // which fails duplicate re-walks into the gone prefix.
    slot_epoch = epoch;
    slot = floor;
    return;
  }
  if (epoch < slot_epoch) return;  // stale pre-crash advertisement, reordered
  // Same epoch: floors only rise. A duplicated or reordered gossip message
  // can carry a stale (lower) value, and taking the max absorbs it.
  slot = std::max(slot, floor);
}

std::uint32_t MonitorProcess::trim_bound() const {
  std::uint32_t bound = history_end();
  auto lower = [&bound](std::uint32_t x) { bound = std::min(bound, x); };
  for (const GlobalView& gv : views_) {
    if (gv.dead) continue;
    // A non-waiting view re-reads from next_sn on and probes with the
    // predecessor letter at next_sn - 1. A waiting view can additionally be
    // resurrected at its token's certified loop cut, whose local component
    // of a pre-cut entry lies one event behind the frozen cursor's
    // predecessor -- one more event of slack.
    const std::uint32_t slack = gv.waiting ? 2 : 1;
    lower(gv.next_sn > slack ? gv.next_sn - slack : 0);
  }
  for (const Token& t : w_tokens_) {
    // A parked token's entries can later retarget to, or spawn a view
    // anchored at, their current local cut component (predecessor letter
    // included); every entry counts, resolved ones too -- an enabled entry
    // still spawns on return.
    for (const TransitionEntry& e : t.entries) {
      lower(e.cut(static_cast<std::size_t>(index_)));
    }
  }
  for (int j = 0; j < n_; ++j) {
    // Remote walks are bounded by the gossiped floors. A peer that has not
    // gossiped yet sits at floor 0 and blocks all trimming -- safe by
    // construction.
    if (j == index_) continue;
    lower(peer_floor_[static_cast<std::size_t>(j)]);
  }
  return bound;
}

void MonitorProcess::advertise_floors() {
  // Gossip our floors: for each peer j, the smallest j-component across our
  // live views -- no walk or spawn we can still launch ever references j's
  // events below it (entry cuts start at a live view's cut and only grow,
  // and a token in flight keeps its launchpad frozen in views_). A monitor
  // with no live views constrains nothing new and keeps its last
  // advertisement by staying silent.
  SmallVec<std::uint32_t, 8> floors;
  floors.assign(static_cast<std::size_t>(n_), 0xFFFFFFFFu);
  bool any_live = false;
  for (const GlobalView& gv : views_) {
    if (gv.dead) continue;
    any_live = true;
    for (int j = 0; j < n_; ++j) {
      floors[static_cast<std::size_t>(j)] =
          std::min(floors[static_cast<std::size_t>(j)],
                   gv.cut[static_cast<std::size_t>(j)]);
    }
  }
  if (!any_live) return;
  for (int j = 0; j < n_; ++j) {
    if (j == index_) continue;
    auto payload = std::make_unique<HistoryFloorMessage>();
    payload->process = index_;
    payload->floor = floors[static_cast<std::size_t>(j)];
    payload->epoch = floor_epoch_;
    ++stats_.floor_messages;
    stage_send(j, std::move(payload));
  }
}

void MonitorProcess::resync_floors(double now) {
  if (!options_.streaming) return;
  ++stats_.resync_floors;
  {
    DepthGuard guard(dispatch_depth_);
    // The restored floor_epoch_ equals the pre-crash value (stride-1
    // checkpoints cover it), so the bump makes this restart's advertisements
    // strictly newer than anything the dead incarnation sent. Peers replace
    // their stored fold on the first message of the new epoch -- even when
    // the re-advertised floor is LOWER than the pre-crash promise -- and
    // discard reordered stragglers from the old one.
    ++floor_epoch_;
    advertise_floors();
  }
  flush_staged();
  (void)now;
}

void MonitorProcess::gc_sweep(double now) {
  (void)now;
  ++stats_.gc_sweeps;
  advertise_floors();
  const std::uint32_t bound = trim_bound();
  if (bound > history_base_) {
    const std::size_t k = static_cast<std::size_t>(bound - history_base_);
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(k));
    history_base_ = bound;
    stats_.history_trimmed += k;
  }
}

void MonitorProcess::flush_waiting_tokens(double now) {
  std::vector<Token> parked = std::move(w_tokens_);
  w_tokens_.clear();
  for (Token& t : parked) {
    // Every entry waiting for a local event beyond the last one is disabled.
    for (TransitionEntry& entry : t.entries) {
      if (entry.eval == EntryEval::kUnset &&
          entry.next_target_process == index_ &&
          entry.next_target_event >= history_end()) {
        entry.eval = EntryEval::kFalse;
      }
    }
    if (!route_token(t, now)) {
      throw std::logic_error("MonitorProcess: unflushable token " +
                             t.to_string() + " history=" +
                             std::to_string(history_end()));
    }
  }
}

void MonitorProcess::check_finished(double now) {
  if (finished_) return;
  if (!local_terminated_) return;
  for (int j = 0; j < n_; ++j) {
    if (peer_last_sn_[static_cast<std::size_t>(j)] == kRunning) return;
  }
  if (!w_tokens_.empty()) return;
  for (const GlobalView& gv : views_) {
    if (!gv.dead && gv.waiting) return;
  }
  finished_ = true;
  stats_.finish_time = now;
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

void MonitorProcess::merge_similar_views() {
  // Collect the settled (non-waiting, fully drained) live views once;
  // everything below works on this small set. Scratch containers are
  // members so their capacity persists across calls (merge is never
  // re-entered: it runs only at the tail of top-level dispatches).
  std::vector<GlobalView*>& settled = merge_settled_;
  settled.clear();
  for (GlobalView& gv : views_) {
    if (!gv.dead && !gv.waiting && gv.next_sn >= history_end()) {
      settled.push_back(&gv);
    }
  }
  // Merge views with equal (automaton state, cut): they trace the same
  // sub-lattice from here on (4.3.2). Only settled views merge; waiting
  // views own live tokens. Keys are a precomputed FNV-1a hash of (q, cut)
  // -- no per-view key vector is materialized. A 64-bit hash collision
  // between distinct keys would only *skip* a merge (verified below), never
  // merge distinct views.
  std::unordered_map<std::uint64_t, GlobalView*>& seen = merge_seen_;
  seen.clear();
  for (GlobalView* gv : settled) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t x) {
      h ^= x;
      h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(gv->q));
    for (std::uint32_t x : gv->cut) mix(x + 1);
    auto [it, inserted] = seen.emplace(h, gv);
    if (!inserted && it->second->q == gv->q && it->second->cut == gv->cut) {
      // Keep the healthy copy: a quarantined survivor would silence the
      // pair's future probes.
      if (it->second->quarantined && !gv->quarantined) {
        it->second->dead = true;
        it->second = gv;
      } else {
        gv->dead = true;
      }
      ++stats_.global_views_merged;
    }
  }
  // Subsumption (the slice-merge of 4.3.2): a view is dropped when another
  // view at the same automaton state has a componentwise-larger cut and
  // agrees on every shared frontier letter -- the survivor continues the
  // same slice further along.
  if (options_.subsume_views) {
    for (GlobalView* pa : settled) {
      GlobalView& a = *pa;
      if (a.dead) continue;
      for (GlobalView* pb : settled) {
        GlobalView& b = *pb;
        if (&a == &b || b.dead) continue;
        if (a.q != b.q) continue;
        // A quarantined view never subsumes a healthy one (it cannot stand
        // in for the healthy view's future probes).
        if (b.quarantined && !a.quarantined) continue;
        bool dominated = true;   // a.cut <= b.cut, strictly somewhere
        bool strict = false;
        bool frontier_agrees = true;
        for (int j = 0; j < n_ && dominated; ++j) {
          const auto ja = a.cut[static_cast<std::size_t>(j)];
          const auto jb = b.cut[static_cast<std::size_t>(j)];
          if (ja > jb) dominated = false;
          if (ja < jb) strict = true;
          if (ja == jb &&
              a.gstate[static_cast<std::size_t>(j)] !=
                  b.gstate[static_cast<std::size_t>(j)]) {
            frontier_agrees = false;
          }
        }
        if (dominated && strict && frontier_agrees) {
          a.dead = true;
          ++stats_.global_views_merged;
          break;
        }
      }
    }
  }
  // Aggressive state-level merge (4.4.1's bound): one settled view per
  // automaton state, keeping the most advanced cut. Indexed by state id --
  // the automaton is small, so a flat array beats any map.
  if (options_.merge_by_state) {
    std::vector<GlobalView*>& best = merge_best_;
    best.assign(static_cast<std::size_t>(prop_->automaton().num_states()),
                nullptr);
    for (GlobalView* pgv : settled) {
      GlobalView& gv = *pgv;
      if (gv.dead) continue;
      GlobalView*& keep = best[static_cast<std::size_t>(gv.q)];
      if (!keep) {
        keep = &gv;
        continue;
      }
      // Healthy beats quarantined regardless of cut (the survivor carries
      // the state's future probes); within a class the larger cut wins.
      bool replace;
      if (keep->quarantined != gv.quarantined) {
        replace = keep->quarantined;
      } else {
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        for (std::uint32_t x : gv.cut) a += x;
        for (std::uint32_t x : keep->cut) b += x;
        replace = a > b;
      }
      if (replace) {
        keep->dead = true;
        keep = &gv;
      } else {
        gv.dead = true;
      }
      ++stats_.global_views_merged;
    }
  }

  std::uint64_t live = 0;
  for (const GlobalView& gv : views_) {
    if (!gv.dead) ++live;
  }
  stats_.peak_global_views = std::max(stats_.peak_global_views, live);
}

void MonitorProcess::sweep_dead_views() {
  if (dispatch_depth_ > 0) return;  // references may still be on the stack
  // Harvest dead views into the free list first (their dead flag survives
  // the move -- scalars are copied, not reset), then erase the husks.
  for (GlobalView& gv : views_) {
    if (gv.dead && view_pool_.size() < kMaxPooledViews) {
      view_pool_.push_back(std::move(gv));
    }
  }
  std::erase_if(views_, [](const GlobalView& gv) { return gv.dead; });
}

void MonitorProcess::sample_pending() {
  // A view's backlog is the tail of the shared history past its cursor.
  std::uint64_t total = 0;
  const std::uint32_t end = history_end();
  for (const GlobalView& gv : views_) {
    if (gv.dead) continue;
    total += end - gv.next_sn;
  }
  stats_.pending_sum += total;
  ++stats_.pending_samples;
  stats_.max_pending = std::max(stats_.max_pending, total);
}

}  // namespace decmon
