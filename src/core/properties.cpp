#include "decmon/core/properties.hpp"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "decmon/ltl/parser.hpp"

namespace decmon::paper {
namespace {

/// Atom id of Pi.p / Pi.q under make_registry's fixed ordering.
int p_atom(int i) { return 2 * i; }
int q_atom(int i) { return 2 * i + 1; }

AtomSet bit(int atom) { return AtomSet{1} << atom; }

AtomSet mask_of(const std::vector<int>& atoms) {
  AtomSet m = 0;
  for (int a : atoms) m |= bit(a);
  return m;
}

std::string conj_text(const std::vector<int>& procs, const char* var) {
  std::ostringstream os;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (i) os << " && ";
    os << 'P' << procs[i] << '.' << var;
  }
  return os.str();
}

std::vector<int> range(int from, int to) {
  std::vector<int> out;
  for (int i = from; i < to; ++i) out.push_back(i);
  return out;
}

/// Monitor automaton for G(P U Q), P and Q conjunctions over disjoint atom
/// sets, in the thesis's 3-state shape (Fig. 5.2a/c): q0 = obligation met,
/// q1 = pending, qF = violated.
MonitorAutomaton build_g_until(const std::vector<int>& pa,
                               const std::vector<int>& qa) {
  MonitorAutomaton m;
  const int q0 = m.add_state(Verdict::kUnknown);
  const int q1 = m.add_state(Verdict::kUnknown);
  const int qf = m.add_state(Verdict::kFalse);
  m.set_initial(q0);
  const Cube q_cube{mask_of(qa), 0};
  // Self-loops and the q1 <-> q0 swing on Q.
  m.add_transition(q0, q0, q_cube);
  m.add_transition(q1, q0, q_cube);
  // P && !Q, split per negated Q-conjunct.
  for (int j : qa) {
    m.add_transition(q0, q1, Cube{mask_of(pa), bit(j)});
    m.add_transition(q1, q1, Cube{mask_of(pa), bit(j)});
  }
  // !P && !Q, split per (negated P-conjunct, negated Q-conjunct) pair.
  for (int i : pa) {
    for (int j : qa) {
      m.add_transition(q0, qf, Cube{0, bit(i) | bit(j)});
      m.add_transition(q1, qf, Cube{0, bit(i) | bit(j)});
    }
  }
  m.add_transition(qf, qf, Cube{});
  return m;
}

/// Monitor automaton for F(conj): q0 = waiting, qT = satisfied (Fig. 5.2b).
MonitorAutomaton build_eventually(const std::vector<int>& atoms) {
  MonitorAutomaton m;
  const int q0 = m.add_state(Verdict::kUnknown);
  const int qt = m.add_state(Verdict::kTrue);
  m.set_initial(q0);
  for (int a : atoms) {
    m.add_transition(q0, q0, Cube{0, bit(a)});
  }
  m.add_transition(q0, qt, Cube{mask_of(atoms), 0});
  m.add_transition(qt, qt, Cube{});
  return m;
}

/// Monitor automaton for G((P0.p U /\ Pi.p) && (P0.q U /\ Pi.q)): the
/// product of two pending trackers, 4 live states + violation (Fig. 5.3b).
MonitorAutomaton build_f_product(int n) {
  MonitorAutomaton m;
  // State (u, v): u = p-part pending, v = q-part pending.
  int idx[2][2];
  for (int u = 0; u < 2; ++u) {
    for (int v = 0; v < 2; ++v) {
      idx[u][v] = m.add_state(Verdict::kUnknown);
    }
  }
  const int qf = m.add_state(Verdict::kFalse);
  m.set_initial(idx[0][0]);

  struct Part {
    int head;               ///< P0.x atom
    std::vector<int> tail;  ///< P1.x .. Pn-1.x atoms
  };
  auto make_part = [&](bool q_part) {
    Part part;
    part.head = q_part ? q_atom(0) : p_atom(0);
    for (int i = 1; i < n; ++i) {
      part.tail.push_back(q_part ? q_atom(i) : p_atom(i));
    }
    return part;
  };
  const Part parts[2] = {make_part(false), make_part(true)};

  // Letter classes of one part: goal (tail conjunction holds), pending
  // (head holds, some tail atom fails), dead (head and some tail fail).
  auto goal_cubes = [&](const Part& part) {
    return std::vector<Cube>{Cube{mask_of(part.tail), 0}};
  };
  auto pending_cubes = [&](const Part& part) {
    std::vector<Cube> out;
    for (int j : part.tail) out.push_back(Cube{bit(part.head), bit(j)});
    return out;
  };
  auto dead_cubes = [&](const Part& part) {
    std::vector<Cube> out;
    for (int j : part.tail) out.push_back(Cube{0, bit(part.head) | bit(j)});
    return out;
  };

  for (int u = 0; u < 2; ++u) {
    for (int v = 0; v < 2; ++v) {
      const int from = idx[u][v];
      // Alive transitions: product of the two parts' live classes.
      for (int u2 = 0; u2 < 2; ++u2) {
        for (int v2 = 0; v2 < 2; ++v2) {
          const auto c1 = u2 ? pending_cubes(parts[0]) : goal_cubes(parts[0]);
          const auto c2 = v2 ? pending_cubes(parts[1]) : goal_cubes(parts[1]);
          for (const Cube& x : c1) {
            for (const Cube& y : c2) {
              m.add_transition(from, idx[u2][v2], Cube::conjoin(x, y));
            }
          }
        }
      }
      // Either part dead: violation.
      for (const Part& part : parts) {
        for (const Cube& c : dead_cubes(part)) {
          m.add_transition(from, qf, c);
        }
      }
    }
  }
  m.add_transition(qf, qf, Cube{});
  return m;
}

}  // namespace

std::string name(Property p) {
  switch (p) {
    case Property::kA: return "A";
    case Property::kB: return "B";
    case Property::kC: return "C";
    case Property::kD: return "D";
    case Property::kE: return "E";
    case Property::kF: return "F";
  }
  return "?";
}

AtomRegistry make_registry(int num_processes) {
  AtomRegistry reg(num_processes);
  for (int i = 0; i < num_processes; ++i) {
    const int vp = reg.declare_variable(i, "p");
    const int vq = reg.declare_variable(i, "q");
    reg.boolean_atom(i, vp);
    reg.boolean_atom(i, vq);
  }
  return reg;
}

std::string formula_text(Property p, int n) {
  if (n < 2) throw std::invalid_argument("paper properties need n >= 2");
  std::ostringstream os;
  switch (p) {
    case Property::kA:
      os << "G((" << conj_text(range(0, n / 2), "p") << ") U ("
         << conj_text(range(n / 2, n), "p") << "))";
      break;
    case Property::kB:
      os << "F(" << conj_text(range(0, n), "p") << ")";
      break;
    case Property::kC:
      os << "G((P0.p) U (" << conj_text(range(1, n), "p") << "))";
      break;
    case Property::kD:
      os << "G((" << conj_text(range(0, n), "p") << ") U ("
         << conj_text(range(0, n), "q") << "))";
      break;
    case Property::kE:
      os << "F(" << conj_text(range(0, n), "p") << " && "
         << conj_text(range(0, n), "q") << ")";
      break;
    case Property::kF:
      os << "G((P0.p U (" << conj_text(range(1, n), "p") << ")) && (P0.q U ("
         << conj_text(range(1, n), "q") << ")))";
      break;
  }
  return os.str();
}

FormulaPtr formula(Property p, int n, AtomRegistry& registry) {
  return parse_ltl(formula_text(p, n), registry);
}

namespace {

/// Process-wide memo for shared_property / build_automaton. Entries are
/// SharedProperty artifacts: a hit under the shared lock is a refcount
/// bump, never a copy, and an artifact stays alive for as long as any
/// session holds it -- clear() only drops the memo's own reference (the
/// clear()-vs-live-session race is benign by construction; the hammer test
/// holds artifacts across an antagonist clear loop). Only a miss's insert
/// and clear() take the exclusive side. The hit/miss counters are atomics
/// so shared-side readers never write the struct itself.
struct SynthesisCache {
  std::shared_mutex mutex;
  std::unordered_map<std::string, SharedProperty> memo;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

SynthesisCache& synthesis_cache() {
  static SynthesisCache cache;
  return cache;
}

}  // namespace

std::string atom_signature(const AtomRegistry& registry) {
  // Admission-path hot: built on every cache lookup, so plain string
  // appends instead of an ostringstream.
  std::string sig;
  sig.reserve(16 + registry.atoms().size() * 24);
  sig += std::to_string(registry.num_processes());
  for (const Atom& a : registry.atoms()) {
    sig += ';';
    sig += a.name;
    sig += ',';
    sig += std::to_string(a.process);
    sig += ',';
    sig += std::to_string(a.var);
    sig += ',';
    sig += std::to_string(static_cast<int>(a.op));
    sig += ',';
    sig += std::to_string(a.rhs);
  }
  return sig;
}

SynthesisCacheStats synthesis_cache_stats() {
  SynthesisCache& cache = synthesis_cache();
  SynthesisCacheStats stats;
  stats.hits = cache.hits.load(std::memory_order_relaxed);
  stats.misses = cache.misses.load(std::memory_order_relaxed);
  return stats;
}

void synthesis_cache_clear() {
  SynthesisCache& cache = synthesis_cache();
  std::unique_lock lock(cache.mutex);
  cache.memo.clear();
  cache.hits.store(0, std::memory_order_relaxed);
  cache.misses.store(0, std::memory_order_relaxed);
}

MonitorAutomaton build_automaton_uncached(Property p, int n,
                                          const AtomRegistry& registry) {
  if (registry.num_processes() != n) {
    throw std::invalid_argument("build_automaton: registry/process mismatch");
  }
  auto p_atoms = [&](int from, int to) {
    std::vector<int> out;
    for (int i = from; i < to; ++i) out.push_back(p_atom(i));
    return out;
  };
  auto q_atoms = [&](int from, int to) {
    std::vector<int> out;
    for (int i = from; i < to; ++i) out.push_back(q_atom(i));
    return out;
  };
  MonitorAutomaton m;
  switch (p) {
    case Property::kA:
      m = build_g_until(p_atoms(0, n / 2), p_atoms(n / 2, n));
      break;
    case Property::kB:
      m = build_eventually(p_atoms(0, n));
      break;
    case Property::kC:
      m = build_g_until(p_atoms(0, 1), p_atoms(1, n));
      break;
    case Property::kD:
      m = build_g_until(p_atoms(0, n), q_atoms(0, n));
      break;
    case Property::kE: {
      std::vector<int> atoms = p_atoms(0, n);
      for (int a : q_atoms(0, n)) atoms.push_back(a);
      m = build_eventually(atoms);
      break;
    }
    case Property::kF:
      m = build_f_product(n);
      break;
  }
  if (auto err = m.validate()) {
    throw std::logic_error("paper::build_automaton: " + *err);
  }
  m.build_dispatch();
  return m;
}

SharedProperty shared_property(Property p, int n,
                               const AtomRegistry& registry) {
  if (registry.num_processes() != n) {
    throw std::invalid_argument("shared_property: registry/process mismatch");
  }
  std::string key = formula_text(p, n);
  const std::size_t formula_len = key.size();
  key += '|';
  key += atom_signature(registry);
  SynthesisCache& cache = synthesis_cache();
  {
    std::shared_lock lock(cache.mutex);
    auto it = cache.memo.find(key);
    if (it != cache.memo.end()) {
      cache.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;  // refcount bump; the artifact is never copied
    }
    cache.misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Ahead-of-time registry before any synthesis: a generated monitor whose
  // signature matches admits with zero construction work.
  SharedProperty artifact = CompiledPropertyRegistry::instance().find(
      key.substr(0, formula_len), key.substr(formula_len + 1));
  if (!artifact) {
    artifact = std::make_shared<PropertyArtifact>(
        AtomRegistry(registry), build_automaton_uncached(p, n, registry));
  }
  std::unique_lock lock(cache.mutex);
  // A racing builder may have inserted meanwhile; both built the same
  // immutable value, so either artifact serves (emplace keeps the first).
  return cache.memo.emplace(key, std::move(artifact)).first->second;
}

MonitorAutomaton build_automaton(Property p, int n,
                                 const AtomRegistry& registry) {
  // Compatibility path: callers that want to own a mutable automaton pay
  // the copy; the admission hot path holds the shared artifact instead.
  return shared_property(p, n, registry)->automaton();
}

TraceParams experiment_params(Property p, int num_processes,
                              std::uint64_t seed, double comm_mu,
                              bool comm_enabled, int internal_events) {
  TraceParams params;
  params.num_processes = num_processes;
  params.internal_events = internal_events;
  params.evt_mu = 3.0;
  params.evt_sigma = 1.0;
  params.comm_mu = comm_mu;
  params.comm_sigma = 1.0;
  params.comm_enabled = comm_enabled;
  params.seed = seed;
  const bool g_shaped = p == Property::kA || p == Property::kC ||
                        p == Property::kD || p == Property::kF;
  if (g_shaped) {
    params.initial_true = true;
    params.true_bias = 0.85;
  } else {
    params.initial_true = false;
    params.true_bias = 0.5;
  }
  return params;
}

}  // namespace decmon::paper
