#include "decmon/core/session.hpp"

#include <stdexcept>

#include "decmon/distributed/replay_runtime.hpp"
#include "decmon/lattice/computation.hpp"
#include "decmon/ltl/parser.hpp"
#include "decmon/monitor/centralized_monitor.hpp"

namespace decmon {

double RunResult::delay_time_percent_per_view() const {
  if (program_end <= 0.0 || total_global_views == 0) return 0.0;
  const double extra = monitor_end > program_end ? monitor_end - program_end
                                                 : 0.0;
  return (extra / program_end) * 100.0 /
         static_cast<double>(total_global_views);
}

MonitorSession::MonitorSession(AtomRegistry registry,
                               MonitorAutomaton automaton)
    // PropertyArtifact builds the dispatch table (hot-path prerequisite:
    // every match/step goes through the dense table) and compiles the
    // property; this session is the artifact's only owner.
    : artifact_(std::make_shared<PropertyArtifact>(std::move(registry),
                                                   std::move(automaton))) {}

MonitorSession::MonitorSession(SharedProperty artifact)
    : artifact_(std::move(artifact)) {
  if (!artifact_) {
    throw std::invalid_argument("MonitorSession: null property artifact");
  }
}

MonitorSession MonitorSession::from_text(const std::string& property,
                                         AtomRegistry registry,
                                         const SynthesisOptions& options) {
  FormulaPtr f = parse_ltl(property, registry);
  MonitorAutomaton m = synthesize_monitor(f, options);
  return MonitorSession(std::move(registry), std::move(m));
}

RunResult MonitorSession::run(const SystemTrace& trace, const SimConfig& sim,
                              const MonitorOptions& options) const {
  SimRuntime runtime(trace, &artifact_->registry(), sim);
  DecentralizedMonitor monitors(
      property_handle(artifact_), &runtime,
      initial_letters_of(registry(), runtime.initial_states()), options);
  runtime.set_hooks(&monitors);
  runtime.run();

  RunResult result;
  result.verdict = monitors.result();
  result.program_events = runtime.program_events();
  result.app_messages = runtime.app_messages_sent();
  result.monitor_messages = runtime.monitor_messages_sent();
  result.program_end = runtime.program_end_time();
  result.monitor_end = runtime.monitor_end_time();
  result.total_global_views = result.verdict.aggregate.global_views_created;
  result.average_delayed_events =
      result.verdict.aggregate.average_delayed_events();
  return result;
}

RunResult MonitorSession::run_centralized(const SystemTrace& trace,
                                          const SimConfig& sim,
                                          int central_node) const {
  SimRuntime runtime(trace, &artifact_->registry(), sim);
  CentralizedMonitor central(
      &artifact_->property(), &runtime,
      initial_letters_of(registry(), runtime.initial_states()), central_node);
  runtime.set_hooks(&central);
  runtime.run();

  RunResult result;
  result.verdict.all_finished = central.finished();
  result.verdict.verdicts = central.verdicts();
  for (int q : central.final_states()) result.verdict.states.insert(q);
  result.program_events = runtime.program_events();
  result.app_messages = runtime.app_messages_sent();
  result.monitor_messages = runtime.monitor_messages_sent();
  result.program_end = runtime.program_end_time();
  result.monitor_end = runtime.monitor_end_time();
  // The centralized design holds cuts, not views; report explored cuts as
  // the comparable memory figure.
  result.total_global_views = central.explored_cuts();
  return result;
}

RunResult MonitorSession::replay(const Computation& computation,
                                 std::uint64_t seed,
                                 const MonitorOptions& options) const {
  ReplayRuntime runtime;
  std::vector<AtomSet> init;
  for (int p = 0; p < computation.num_processes(); ++p) {
    init.push_back(computation.event(p, 0).letter);
  }
  DecentralizedMonitor monitors(property_handle(artifact_), &runtime, init,
                                options);
  runtime.run(computation, monitors, seed);

  RunResult result;
  result.verdict = monitors.result();
  result.program_events = computation.total_events();
  result.monitor_messages = runtime.deliveries();
  result.total_global_views = result.verdict.aggregate.global_views_created;
  result.average_delayed_events =
      result.verdict.aggregate.average_delayed_events();
  return result;
}

OracleResult MonitorSession::oracle(const SystemTrace& trace,
                                    const SimConfig& sim,
                                    std::size_t max_nodes) const {
  SimRuntime runtime(trace, &artifact_->registry(), sim);
  runtime.run();
  Computation comp(runtime.history());
  return oracle_evaluate(comp, artifact_->automaton(), max_nodes);
}

}  // namespace decmon
