// Trace-driven workloads, reproducing the paper's case study (§5.1): each
// process loads a trace of wait times and actions; actions either change the
// local propositions (internal events) or broadcast a message to every other
// process (communication events). Wait times are drawn from normal
// distributions N(EvtMu, EvtSigma) and N(CommMu, CommSigma).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "decmon/ltl/atoms.hpp"

namespace decmon {

/// One scripted action of a process.
struct TraceAction {
  enum class Kind : std::uint8_t {
    kInternal,  ///< set the local variables to `state`
    kComm,      ///< broadcast one message to every other process
  };
  Kind kind = Kind::kInternal;
  double wait = 0.0;  ///< seconds to wait after the previous action
  LocalState state;   ///< new variable valuation (kInternal only)
};

/// The script of one process.
struct ProcessTrace {
  LocalState initial;               ///< variable valuation at start
  std::vector<TraceAction> actions;

  int count(TraceAction::Kind kind) const;
};

/// The script of the whole system.
struct SystemTrace {
  std::vector<ProcessTrace> procs;

  int num_processes() const { return static_cast<int>(procs.size()); }
  /// Messages process `to` will receive = sum of peers' kComm actions.
  int expected_receives(int to) const;
  /// Total internal + send + receive events the program will generate
  /// (each kComm action is one send event and n-1 receive events).
  int total_events() const;
};

/// Parameters of the generator (the paper's experimental knobs, §5.2).
struct TraceParams {
  int num_processes = 2;
  int num_variables = 2;           ///< boolean propositions per process
                                   ///< (the case study uses p and q)
  int internal_events = 20;        ///< internal events per process
  double evt_mu = 3.0;             ///< N(mu, sigma) wait between internal
  double evt_sigma = 1.0;          ///< events, in seconds
  double comm_mu = 3.0;            ///< wait between broadcast events
  double comm_sigma = 1.0;
  bool comm_enabled = true;        ///< false = the "No comm" experiment
  bool initial_true = false;       ///< variables start at 1 instead of 0
  double true_bias = 0.5;          ///< probability an internal event sets
                                   ///< each variable to 1 (the case study
                                   ///< tunes this per property so a path to
                                   ///< a final automaton state exists, §5.1)
  std::uint64_t seed = 1;
};

/// Generate a random system trace. Deterministic in `params.seed`.
/// Communication events are generated until the internal-event stream of the
/// process ends, mirroring the case study where both streams run for the
/// duration of the experiment.
SystemTrace generate_trace(const TraceParams& params);

/// Ensure a satisfying path exists: force the last internal event of every
/// process to set all variables to 1 ("the variable valuation change events
/// were designed such that there would be a path in the execution lattice
/// that would lead to a final state", §5.1).
void force_final_all_true(SystemTrace& trace);

// -- text round-trip (the devices in the case study load trace files) --
std::string to_text(const SystemTrace& trace);
SystemTrace trace_from_text(const std::string& text);
std::ostream& operator<<(std::ostream& os, const SystemTrace& trace);

}  // namespace decmon
