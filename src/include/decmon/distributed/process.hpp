// The program side of one node: executes its trace script, maintains the
// local variable valuation and vector clock, and produces the event stream
// its attached monitor observes. Runtime-agnostic: the simulation and thread
// runtimes both drive this object.
#pragma once

#include <cstdint>

#include "decmon/distributed/event.hpp"
#include "decmon/distributed/message.hpp"
#include "decmon/distributed/trace.hpp"
#include "decmon/ltl/atoms.hpp"
#include "decmon/util/vector_clock.hpp"

namespace decmon {

class ProgramProcess {
 public:
  /// `registry` may be null (no atoms cached on events).
  ProgramProcess(int index, int num_processes, ProcessTrace trace,
                 const AtomRegistry* registry);

  int index() const { return index_; }

  /// The pseudo-event representing the initial local state (sn 0).
  Event initial_event() const;

  bool has_next_action() const {
    return next_action_ < trace_.actions.size();
  }
  /// Wait time before the next action (seconds).
  double next_action_wait() const;

  struct ActionResult {
    Event event;          ///< the internal or send event generated
    bool is_comm = false; ///< true: runtime must broadcast `message`
    AppMessage message;   ///< template (to is filled per receiver)
  };

  /// Execute the next scripted action at time `now`.
  ActionResult execute_next_action(double now);

  /// Deliver an application message; returns the receive event.
  Event receive(const AppMessage& msg, double now);

  const VectorClock& clock() const { return vc_; }
  const LocalState& state() const { return state_; }
  std::uint32_t last_sn() const { return sn_; }

 private:
  Event make_event(EventType type, double now) const;

  int index_;
  ProcessTrace trace_;
  const AtomRegistry* registry_;
  std::size_t next_action_ = 0;
  VectorClock vc_;
  LocalState state_;
  std::uint32_t sn_ = 0;
};

}  // namespace decmon
