// Replay runtime: drive a monitoring layer over an already-recorded
// computation, with a seeded (but per-channel FIFO) interleaving of event
// deliveries and monitor-message deliveries. Monitors only rely on vector
// clocks, so any schedule respecting per-process event order and channel
// FIFO is a legal asynchronous execution; sweeping seeds stress-tests
// schedule independence. This powers offline analysis (tools/monitor_log),
// the randomized soundness/completeness tests, and fuzz-repro replays
// (tools/fuzz_schedules): a FaultyNetwork stacked on top injects delay,
// reordering and duplication deterministically -- perturbed messages ripen
// at a later virtual time and FIFO-exempt ones can be delivered in any
// order relative to their channel.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <random>

#include "decmon/distributed/runtime.hpp"
#include "decmon/lattice/computation.hpp"

namespace decmon {

class ReplayRuntime final : public MonitorNetwork {
 public:
  /// Deliver everything: events under the interleaving selected by `seed`,
  /// termination signals when a process's events run out, and monitor
  /// messages interleaved throughout; returns once fully quiescent.
  /// Construct the monitoring layer against `*this` first (it is the
  /// MonitorNetwork the monitors send through).
  void run(const Computation& computation, MonitorHooks& hooks,
           std::uint64_t seed);

  // MonitorNetwork:
  void send(MonitorMessage msg) override {
    send_perturbed(std::move(msg), DeliveryPerturbation{});
  }
  /// extra_delay is modelled in replay steps (each loop iteration advances
  /// virtual time by 1): the message only becomes deliverable once time
  /// catches up. bypass_fifo messages go to a per-channel "loose" pool
  /// deliverable in any order.
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override;
  double now() const override { return t_; }

  /// Monitor messages delivered across all run() calls.
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  struct InFlight {
    MonitorMessage msg;
    double ready_at = 0.0;  ///< earliest virtual time of delivery
  };
  struct Channel {
    std::deque<InFlight> fifo;   ///< in-order messages (front blocks rest)
    std::deque<InFlight> loose;  ///< FIFO-exempt (reordered/retransmitted)
  };

  bool channels_empty() const;
  /// Deliver one ready message chosen by `rng`; false when none has
  /// ripened yet (the caller advances time and retries).
  bool deliver_one(MonitorHooks& hooks, std::mt19937_64& rng);

  std::map<std::pair<int, int>, Channel> channels_;
  double t_ = 0.0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace decmon
