// Replay runtime: drive a monitoring layer over an already-recorded
// computation, with a seeded (but per-channel FIFO) interleaving of event
// deliveries and monitor-message deliveries. Monitors only rely on vector
// clocks, so any schedule respecting per-process event order and channel
// FIFO is a legal asynchronous execution; sweeping seeds stress-tests
// schedule independence. This powers offline analysis (tools/monitor_log)
// and the randomized soundness/completeness tests.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <random>

#include "decmon/distributed/runtime.hpp"
#include "decmon/lattice/computation.hpp"

namespace decmon {

class ReplayRuntime final : public MonitorNetwork {
 public:
  /// Deliver everything: events under the interleaving selected by `seed`,
  /// termination signals when a process's events run out, and monitor
  /// messages interleaved throughout; returns once fully quiescent.
  /// Construct the monitoring layer against `*this` first (it is the
  /// MonitorNetwork the monitors send through).
  void run(const Computation& computation, MonitorHooks& hooks,
           std::uint64_t seed);

  // MonitorNetwork:
  void send(MonitorMessage msg) override {
    channels_[{msg.from, msg.to}].push_back(std::move(msg));
  }
  double now() const override { return t_; }

  /// Monitor messages delivered across all run() calls.
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  bool channels_empty() const;
  void deliver_one(MonitorHooks& hooks, std::mt19937_64& rng);

  std::map<std::pair<int, int>, std::deque<MonitorMessage>> channels_;
  double t_ = 0.0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace decmon
