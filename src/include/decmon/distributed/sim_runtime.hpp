// Deterministic discrete-event simulation runtime.
//
// Substitutes for the paper's physical testbed (five iOS devices on WiFi):
// trace actions fire at virtual times, messages experience a random
// (seeded) latency, and simultaneous occurrences are ordered by a stable
// (time, sequence) key, so every experiment row is exactly replayable.
//
// Scheduling is allocation-free: queue items hold the closure inline in a
// fixed-capacity InplaceTask (std::function would heap-allocate every
// capture bigger than two pointers), and messages move through the queue
// rather than being copied into it.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "decmon/distributed/process.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/distributed/trace.hpp"
#include "decmon/util/inplace_function.hpp"
#include "decmon/util/rng.hpp"

namespace decmon {

struct SimConfig {
  double app_latency_mu = 0.05;   ///< application message latency N(mu,
  double app_latency_sigma = 0.02;///< sigma), truncated at min_latency
  double mon_latency_mu = 0.05;   ///< monitor message latency
  double mon_latency_sigma = 0.02;
  double min_latency = 0.001;
  std::uint64_t seed = 1;
};

class SimRuntime final : public MonitorNetwork {
 public:
  SimRuntime(SystemTrace trace, const AtomRegistry* registry,
             SimConfig config = {});

  /// Attach the monitoring layer (may be null for program-only runs).
  void set_hooks(MonitorHooks* hooks) { hooks_ = hooks; }

  /// Run to quiescence: all trace actions executed, all messages delivered.
  void run();

  // MonitorNetwork:
  void send(MonitorMessage msg) override;
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override;
  double now() const override { return now_; }

  int num_processes() const { return static_cast<int>(procs_.size()); }

  /// Recorded event history per process; index 0 is the initial pseudo-event.
  const std::vector<std::vector<Event>>& history() const { return history_; }

  /// Initial local states (for monitor initialization).
  std::vector<LocalState> initial_states() const;

  double program_end_time() const { return program_end_; }
  double monitor_end_time() const { return monitor_end_; }
  std::uint64_t app_messages_sent() const { return app_messages_; }
  std::uint64_t monitor_messages_sent() const { return monitor_messages_; }
  /// Internal + send + receive events actually generated.
  std::uint64_t program_events() const { return program_events_; }

 private:
  /// Largest scheduled closure: `this` + a moved-in AppMessage (whose inline
  /// vector clock dominates). A bigger capture is a compile error.
  static constexpr std::size_t kTaskCapacity = 88;
  using Task = InplaceTask<kTaskCapacity>;

  struct Item {
    double time;
    std::uint64_t seq;  ///< tie-break for determinism
    Task fn;
    bool operator>(const Item& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void schedule(double time, Task fn);
  void execute_action(int proc);
  void schedule_next_action(int proc);
  void deliver_app(const AppMessage& msg);
  void record_and_notify(const Event& e);
  void maybe_terminate(int proc);
  /// FIFO channels: delivery never earlier than the previous one.
  double fifo_delivery_time(std::vector<double>& last, int channel,
                            double candidate);

  const AtomRegistry* registry_;
  SimConfig config_;
  MonitorHooks* hooks_ = nullptr;

  std::vector<ProgramProcess> procs_;
  std::vector<std::vector<Event>> history_;
  std::vector<int> remaining_receives_;
  std::vector<char> terminated_;

  NormalWait app_latency_;
  NormalWait mon_latency_;
  std::vector<double> app_last_delivery_;  ///< [from * n + to]
  std::vector<double> mon_last_delivery_;

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  double program_end_ = 0.0;
  double monitor_end_ = 0.0;
  std::uint64_t app_messages_ = 0;
  std::uint64_t monitor_messages_ = 0;
  std::uint64_t program_events_ = 0;
};

}  // namespace decmon
