// Deterministic discrete-event simulation runtime.
//
// Substitutes for the paper's physical testbed (five iOS devices on WiFi):
// trace actions fire at virtual times, messages experience a random
// (seeded) latency, and simultaneous occurrences are ordered by a stable
// (time, sequence) key, so every experiment row is exactly replayable.
//
// Scheduling is allocation-free: queue items hold the closure inline in a
// fixed-capacity InplaceTask (std::function would heap-allocate every
// capture bigger than two pointers), and messages move through the queue
// rather than being copied into it.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "decmon/distributed/message.hpp"
#include "decmon/distributed/process.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/distributed/trace.hpp"
#include "decmon/util/inplace_function.hpp"
#include "decmon/util/rng.hpp"

namespace decmon {

/// How batched monitor frames (PayloadFrame) ride the simulated channels.
/// Either way every unit draws its own latency sample, so the global RNG
/// stream advances exactly as the unbatched path would.
enum class CoalesceMode : std::uint8_t {
  /// Schedule-preserving: a unit joins the channel's in-flight tail frame
  /// only when the FIFO clamp would have delivered it epsilon-spaced behind
  /// the previous delivery anyway. Delivery times match the unbatched
  /// simulation (up to epsilon), so the equivalence goldens hold
  /// bit-identically. Default.
  kExact,
  /// Join-while-in-flight: a unit joins whenever the channel's tail frame
  /// has not been delivered yet. Fewer, larger frames -- the realistic
  /// batching model, used by the bench cells; view-creation counters drift
  /// from the kExact schedule (verdicts do not).
  kTransit,
};

struct SimConfig {
  double app_latency_mu = 0.05;   ///< application message latency N(mu,
  double app_latency_sigma = 0.02;///< sigma), truncated at min_latency
  double mon_latency_mu = 0.05;   ///< monitor message latency
  double mon_latency_sigma = 0.02;
  double min_latency = 0.001;
  std::uint64_t seed = 1;
  CoalesceMode coalesce = CoalesceMode::kExact;
};

class SimRuntime final : public MonitorNetwork {
 public:
  SimRuntime(SystemTrace trace, const AtomRegistry* registry,
             SimConfig config = {});

  /// Attach the monitoring layer (may be null for program-only runs).
  void set_hooks(MonitorHooks* hooks) { hooks_ = hooks; }

  /// Run to quiescence: all trace actions executed, all messages delivered.
  void run();

  // MonitorNetwork:
  void send(MonitorMessage msg) override;
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override;
  double now() const override { return now_; }

  int num_processes() const { return static_cast<int>(procs_.size()); }

  /// Recorded event history per process; index 0 is the initial pseudo-event.
  const std::vector<std::vector<Event>>& history() const { return history_; }

  /// Initial local states (for monitor initialization).
  std::vector<LocalState> initial_states() const;

  double program_end_time() const { return program_end_; }
  double monitor_end_time() const { return monitor_end_; }
  std::uint64_t app_messages_sent() const { return app_messages_; }
  std::uint64_t monitor_messages_sent() const { return monitor_messages_; }
  /// Internal + send + receive events actually generated.
  std::uint64_t program_events() const { return program_events_; }

 private:
  /// Largest scheduled closure: `this` + a moved-in AppMessage (whose inline
  /// vector clock dominates). A bigger capture is a compile error.
  static constexpr std::size_t kTaskCapacity = 88;
  using Task = InplaceTask<kTaskCapacity>;

  struct Item {
    double time;
    std::uint64_t seq;  ///< tie-break for determinism
    Task fn;
    bool operator>(const Item& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void schedule(double time, Task fn);
  void execute_action(int proc);
  void schedule_next_action(int proc);
  void deliver_app(const AppMessage& msg);
  void record_and_notify(const Event& e);
  void maybe_terminate(int proc);
  /// FIFO channels: delivery never earlier than the previous one.
  double fifo_delivery_time(std::vector<double>& last, int channel,
                            double candidate);
  /// Convoy engine for batched frames (see CoalesceMode): per-unit latency
  /// draws, units re-batched onto the channel's in-flight tail frame.
  void send_frame(MonitorMessage msg);
  /// Deliver the oldest pending frame on channel `ch`.
  void deliver_frame(int ch);

  const AtomRegistry* registry_;
  SimConfig config_;
  MonitorHooks* hooks_ = nullptr;

  std::vector<ProgramProcess> procs_;
  std::vector<std::vector<Event>> history_;
  std::vector<int> remaining_receives_;
  std::vector<char> terminated_;

  NormalWait app_latency_;
  NormalWait mon_latency_;
  std::vector<double> app_last_delivery_;  ///< [from * n + to]
  std::vector<double> mon_last_delivery_;

  /// In-flight frames per monitor channel [from * n + to]: scheduled but
  /// not yet delivered, in delivery order. A frame sent while the tail is
  /// still pending may merge into it (CoalesceMode).
  struct PendingFrame {
    MonitorMessage msg;
    double at;
  };
  std::vector<std::deque<PendingFrame>> mon_pending_;
  /// Frame shells recycled by the convoy engine: an incoming frame whose
  /// units all merged into in-flight frames leaves an empty shell behind,
  /// which the next split reuses.
  std::vector<std::unique_ptr<PayloadFrame>> frame_shells_;

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  double program_end_ = 0.0;
  double monitor_end_ = 0.0;
  std::uint64_t app_messages_ = 0;
  std::uint64_t monitor_messages_ = 0;
  std::uint64_t program_events_ = 0;
};

}  // namespace decmon
