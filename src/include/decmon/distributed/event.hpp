// Events of a distributed program (§2.1): internal state changes, message
// sends and message receives, each stamped with the process's vector clock
// and a per-process sequence number.
#pragma once

#include <cstdint>
#include <string>

#include "decmon/ltl/atoms.hpp"
#include "decmon/util/vector_clock.hpp"

namespace decmon {

enum class EventType : std::uint8_t {
  kInitial,   ///< pseudo-event: the initial local state (sn 0)
  kInternal,  ///< local variable change
  kSend,      ///< message send (state unchanged)
  kReceive,   ///< message receive (state unchanged, clock merged)
};

std::string to_string(EventType t);

/// One event, the paper's tuple e = (T, D, VC, sn). `letter` caches the
/// valuation of the owner's atomic propositions at `state` so monitors never
/// re-evaluate atoms.
struct Event {
  EventType type = EventType::kInternal;
  int process = -1;       ///< owning process
  std::uint32_t sn = 0;   ///< sequence number within the process (0=initial)
  VectorClock vc;         ///< owner's clock at/after the event
  LocalState state;       ///< owner's variable valuation after the event
  AtomSet letter = 0;     ///< owner-owned atoms holding in `state`
  double time = 0.0;      ///< occurrence time (metrics only, not consulted
                          ///< by the algorithm -- there is no global clock)
};

}  // namespace decmon
