// Socket-backed runtime: real I/O sibling of SimRuntime / ThreadRuntime.
//
// One thread per node (program process + its monitor replica), but unlike
// ThreadRuntime the nodes exchange *bytes*, not pointers: every pair of
// nodes is connected by a nonblocking TCP loopback socket, each node runs
// an epoll event loop, monitor payloads are serialized with the wire-v2
// codec on send and reassembled from length-prefixed records on receive.
// This is where frame batching finally pays for its encode cost -- fewer,
// larger records mean fewer syscalls and fewer bytes (shared frame header
// and base clock), measured at the socket, not inferred from stamps.
//
// Record framing (per TCP stream, both directions):
//
//   [u32 LE body length][u8 record type][body]
//
//   type 0x01 = application message  (u32 from, u32 send_sn, vc)
//   type 0x02 = monitor payload      (encode_payload_into bytes)
//   type 0x03 = transport control    (u8 kind; kind 1 = HELLO:
//               u32 sender, u64 app records received, u64 monitor records
//               received on this directed stream)
//
// Reassembly is incremental (FrameReassembler below): partial reads leave
// a prefix buffered; a peer that closes mid-record is detected as a
// truncated stream, never silent data loss.
//
// Send path and backpressure: each (from, to) channel owns a bounded queue
// of encoded records. send() never blocks -- it encodes, enqueues, and
// attempts an immediate nonblocking flush; on EAGAIN the residue stays
// queued and EPOLLOUT is armed. While earlier bytes are still queued (the
// socket pushed back), newly sent PayloadFrames are not encoded at all:
// they park in a per-channel *staging* frame and later frames to the same
// destination merge into it (unit order preserved). This mirrors
// SimRuntime's kTransit convoy -- congestion converts many small frames
// into one large record -- and bounds queue growth by construction.
//
// Fault tolerance (DESIGN.md §13): a peer disconnect (EOF, ECONNRESET,
// EPIPE) is a peer-down state, not a fatal error. Each node keeps a
// persistent listener; the pair's lower index reconnects with capped
// exponential backoff + seeded jitter driven from the node's epoll loop.
// Every (re)connection starts with a HELLO exchange carrying per-direction
// received-record counts, from which each sender re-arms its deque:
// application records are transport-reliable (retained in a replay log and
// replayed from the receiver's count -- losing one would strand the
// receiver's receives_left forever), while monitor records lost with the
// connection are dropped (counted as disconnect_drops, their quiescence
// credits retired) and repaired by the ReliableChannel layered above, when
// present. A seeded fault injector (SocketFaultPlan) kills connections
// abortively mid-run -- RST, not FIN, so in-flight bytes really die -- and
// can take down every link of one node at once (the transport half of a
// crash + checkpoint-restore + mesh-rejoin drill).
//
// Accounting is transport-truth: wire_bytes()/wire_frames() count encoded
// record bytes as they are queued (TCP delivers every queued byte), so no
// size-walking ever runs on this path. Control records (HELLO) are
// transport overhead and deliberately excluded, so the committed no-fault
// socket.* bench counts are untouched by the fault-tolerance machinery.
//
// Quiescence reuses ThreadRuntime's credit-counting proof: outstanding_
// counts running programs + every sent-but-unprocessed message; a merge
// into staging retires the merged frame's credit immediately (its bytes
// are now owed by the staging frame's credit). A monitor record lost with
// a killed connection retires its credit at HELLO reconciliation. run()
// blocks until the counter proves no work exists or can be created, then
// joins. A node thread that fails (reconnect budget exhausted, wire
// corruption) stores its exception and run() rethrows it after joining --
// transport errors surface to the caller, never std::terminate.
//
// Thread-safety contract: all callbacks for node i run on node i's thread.
// Channel send state is per-channel mutex-guarded (off-thread sends are
// legal, as in ThreadRuntime); epoll interest updates for a channel happen
// under that same mutex. The channel fd's lifecycle (close, replace) is
// owner-thread only: foreign senders that hit a dead socket set a flag and
// wake the owner instead of touching the fd.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "decmon/distributed/process.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/distributed/trace.hpp"

namespace decmon {

/// Seeded socket-level fault injection: connection kills are abortive
/// (SO_LINGER 0 -> RST), so queued and in-flight bytes genuinely die and
/// the reconnect/replay/reconcile machinery has to earn the verdicts.
struct SocketFaultPlan {
  bool enabled = false;
  std::uint64_t seed = 7;
  /// Per-channel kill threshold, drawn seeded in [kill_after_min,
  /// kill_after_max]: the connection dies right after that many monitor
  /// records were fully written on the channel.
  std::uint32_t kill_after_min = 8;
  std::uint32_t kill_after_max = 64;
  /// Global budget of connection kills across the whole run.
  int max_kills = 1;
  /// Optional node kill: once `kill_node` has dispatched
  /// `kill_node_after` monitor records, every one of its links dies at
  /// once (does not consume max_kills budget). -1 disables.
  int kill_node = -1;
  std::uint32_t kill_node_after = 0;
};

struct SocketConfig {
  /// Wall-clock seconds per trace second (same convention as ThreadConfig).
  /// 0 collapses every wait to "now". There is no modeled message latency:
  /// delivery takes whatever the kernel takes.
  double time_scale = 0.002;
  /// Coalesce same-destination PayloadFrames while the channel has queued
  /// bytes (the batched posture). false = the unbatched control: every
  /// frame is split and each unit crosses the wire as its own record.
  bool batch = true;
  /// Socket buffer sizes in bytes; 0 keeps the kernel default. Tests use
  /// tiny values to force partial reads/writes.
  int sndbuf = 0;
  int rcvbuf = 0;
  /// Soft bound on encoded-but-unsent bytes per channel before frames stop
  /// being encoded eagerly and coalesce in staging instead.
  std::size_t max_queue_bytes = 1 << 20;
  std::uint64_t seed = 1;
  /// Reconnect backoff after a link failure: attempt k waits
  /// min(cap, base * 2^k) milliseconds, scaled by seeded jitter in
  /// [0.5, 1.5). Exhausting the attempt budget is a run error.
  double reconnect_base_ms = 1.0;
  double reconnect_cap_ms = 100.0;
  int max_reconnect_attempts = 60;
  SocketFaultPlan fault;
};

/// Incremental reassembly of `[u32 len][type][body]` records from a TCP
/// byte stream. feed() accepts arbitrary fragments; next() yields complete
/// records ([type][body], length prefix stripped). Public for direct unit
/// testing of the partial-read state machine.
class FrameReassembler {
 public:
  /// Hard ceiling on a record body; a corrupt length field fails fast
  /// instead of asking the allocator for gigabytes.
  static constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

  void feed(const std::uint8_t* data, std::size_t len);
  /// Move the next complete record into `out` (type byte first). Returns
  /// false when no complete record is buffered. Throws WireError on an
  /// oversized or zero length prefix.
  bool next(std::vector<std::uint8_t>* out);
  /// True when a partial record is buffered -- a stream that ends here was
  /// truncated mid-record.
  bool mid_record() const { return buf_.size() - pos_ > 0; }
  std::size_t buffered() const { return buf_.size() - pos_; }
  /// Discard all buffered bytes (a reconnected stream starts clean).
  void reset() {
    buf_.clear();
    pos_ = 0;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

class SocketRuntime final : public MonitorNetwork {
 public:
  SocketRuntime(SystemTrace trace, const AtomRegistry* registry,
                SocketConfig config = {});
  ~SocketRuntime() override;

  SocketRuntime(const SocketRuntime&) = delete;
  SocketRuntime& operator=(const SocketRuntime&) = delete;

  void set_hooks(MonitorHooks* hooks) { hooks_ = hooks; }

  /// Run to quiescence (blocking): all trace actions executed, all bytes
  /// delivered, all messages processed. On return every node thread has
  /// been joined -- no callback can fire afterwards. Rethrows the first
  /// node-thread failure (e.g. a link whose reconnect budget ran out).
  void run();

  // MonitorNetwork (safe from any thread; sender identity is msg.from):
  void send(MonitorMessage msg) override;
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override;
  double now() const override;

  int num_processes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<std::vector<Event>>& history() const { return history_; }
  std::vector<LocalState> initial_states() const;

  /// Abortively kill the live connection of the (a, b) pair (RST both
  /// ways; in-flight bytes die). Safe from any thread, including mid-run
  /// test drivers; a no-op if the link is already down.
  void kill_connection(int a, int b);
  /// Kill every link of `node` at once (the transport face of a node
  /// crash). The mesh re-forms through the normal reconnect path.
  void kill_node(int node);

  // Transport-truth counters (stable after run() returns).
  std::uint64_t program_events() const { return program_events_; }
  std::uint64_t app_messages_sent() const { return app_messages_; }
  /// Monitor payloads handed to send() (before any split/merge).
  std::uint64_t monitor_messages_sent() const { return monitor_sends_; }
  std::uint64_t monitor_messages_processed() const {
    return monitor_deliveries_;
  }
  /// Monitor records written to sockets (after split/merge) and their
  /// encoded bytes including the 5-byte record header.
  std::uint64_t wire_frames() const { return wire_frames_; }
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  /// Application records and bytes (VC piggyback traffic).
  std::uint64_t app_bytes() const { return app_bytes_; }
  /// Frames that merged into a congested channel's staging frame instead
  /// of being encoded as their own record.
  std::uint64_t coalesced_frames() const { return coalesced_frames_; }
  /// Nonblocking writes that could not take the whole residue (EAGAIN or
  /// short write) -- proof the partial-write path actually ran.
  std::uint64_t partial_writes() const { return partial_writes_; }
  // Fault-tolerance counters (DESIGN.md §13).
  /// Successful link re-establishments (counted once per outage, on the
  /// reconnecting side).
  std::uint64_t reconnects() const { return reconnects_; }
  /// Monitor records lost with a killed connection (credits retired at
  /// HELLO reconciliation; the reliable channel above re-sends content).
  std::uint64_t disconnect_drops() const { return disconnect_drops_; }
  /// Connections the seeded fault plan (or kill_connection/kill_node)
  /// actually killed.
  std::uint64_t connections_killed() const { return connections_killed_; }

 private:
  using Clock = std::chrono::steady_clock;

  enum class LinkState : std::uint8_t {
    kUp,         ///< connected, HELLO exchanged, data flows
    kDown,       ///< no socket; connector side is backing off to retry
    kConnecting, ///< nonblocking connect() in flight (connector side)
    kHelloWait,  ///< connected, our HELLO sent, waiting for the peer's
  };

  /// One encoded record awaiting the socket, tagged with its plane so the
  /// reconnect path can tell replayable app records from droppable monitor
  /// records and uncounted control records.
  struct OutRecord {
    std::vector<std::uint8_t> bytes;
    std::uint8_t kind = 0;
  };

  /// Sender side of one directed (from, to) socket channel. All fields are
  /// guarded by `mutex`; epoll interest for the fd is changed only while
  /// holding it (the owner loop and foreign senders both flush). The fd
  /// itself is closed/replaced only on the owner's thread.
  struct Channel {
    std::mutex mutex;
    int fd = -1;
    int owner_epoll = -1;  ///< sender-side epoll watching this fd for OUT
    int self = -1;         ///< owning node
    int peer = -1;         ///< destination node (epoll event data)
    LinkState state = LinkState::kUp;
    /// Foreign flush hit a fatal socket error; the owner must tear the
    /// link down (fd lifecycle is owner-thread only).
    bool io_error = false;
    /// Fault injector tripped; the owner performs the abortive close.
    bool kill_pending = false;
    /// Encoded records awaiting the socket; front record may be partially
    /// written (`front_off` bytes already gone).
    std::deque<OutRecord> queue;
    std::size_t front_off = 0;
    std::size_t queued_bytes = 0;
    /// Congestion parking spot: frames coalesce here while queue is
    /// nonempty (see file comment). Owns one outstanding_ credit when set.
    std::unique_ptr<PayloadFrame> staging;
    bool want_write = false;  ///< EPOLLOUT currently armed
    // -- fault-tolerance bookkeeping --
    /// Monitor records fully written over all connection incarnations.
    std::uint64_t mon_written = 0;
    /// Monitor records already reconciled as lost (subset of mon_written).
    std::uint64_t mon_lost = 0;
    /// Replay log of app records: entry k holds logical app record
    /// app_log_base + k. Replayed from the peer's HELLO count.
    std::deque<std::vector<std::uint8_t>> app_log;
    std::uint64_t app_log_base = 0;
    // -- reconnect backoff (owner thread) --
    int attempts = 0;
    Clock::time_point next_attempt_at{};
    std::uint64_t rng_state = 0;  ///< seeded jitter stream
    /// Monitor records until the seeded kill fires; 0 = disarmed.
    std::uint32_t kill_countdown = 0;
  };

  /// Delayed self-delivery (reliable-channel retransmit timers).
  struct Timer {
    Clock::time_point at;
    std::uint64_t seq = 0;
    MonitorMessage msg;
    bool operator>(const Timer& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  /// An accepted connection whose identifying HELLO has not fully arrived.
  struct PendingAccept {
    int fd = -1;
    std::vector<std::uint8_t> buf;
  };

  struct Node {
    std::unique_ptr<ProgramProcess> process;
    int expected_receives = 0;
    int receives_left = 0;  ///< own thread only
    int epoll_fd = -1;
    int event_fd = -1;   ///< cross-thread wakeup (timers, stop)
    int listen_fd = -1;  ///< persistent listener (accepts reconnects)
    std::uint16_t listen_port = 0;
    /// Record-body scratch for decoding; own thread only.
    std::vector<std::uint8_t> scratch;
    /// Self-delivery queue: immediate self-sends and due timers, guarded
    /// by `timer_mutex` (pushed by own thread and by channel layers above).
    std::mutex timer_mutex;
    std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers;
    /// Receive-side reassembly, one per peer; touched only by this node's
    /// thread.
    std::vector<FrameReassembler> reassembly;
    std::vector<bool> peer_open;
    /// Complete records dispatched per peer on the inbound stream --
    /// advertised in our HELLOs so a reconnecting sender knows what to
    /// replay (app) and what died (monitor). Own thread only.
    std::vector<std::uint64_t> app_recv;
    std::vector<std::uint64_t> mon_recv;
    std::uint64_t mon_recv_total = 0;  ///< node-kill trigger counter
    /// Accepted-but-unidentified connections; own thread only.
    std::vector<PendingAccept> pending;
    /// Some owned link needs service (failure teardown, reconnect timer,
    /// pending kill). Set by foreign threads before waking the owner.
    std::atomic<bool> links_dirty{false};
  };

  void node_main(int index);
  void node_body(int index);
  void record_event(int index, const Event& event);
  void broadcast_app(int index, const AppMessage& message);
  void read_peer(int index, int peer);
  void dispatch_record(int index, int peer,
                       const std::vector<std::uint8_t>& rec);
  void enqueue_monitor(int from, int to, std::unique_ptr<NetPayload> payload);
  /// Encode `payload` as a monitor record appended to `ch.queue`.
  /// Caller must hold ch.mutex.
  void encode_record_locked(Channel& ch, const NetPayload& payload);
  /// Drain ch.queue (and then staging) into the socket until empty or
  /// EAGAIN; arms/clears EPOLLOUT to match. No-op unless the link is up.
  /// Caller must hold ch.mutex.
  void flush_locked(Channel& ch);
  void materialize_staging_locked(Channel& ch);

  // -- link lifecycle (owner thread unless noted) --
  /// Tear the link down after a failure (or abortively for a kill) and
  /// start the reconnect clock on the connector side.
  void link_down(int index, int peer, bool abortive);
  /// Core of link_down; caller must hold ch.mutex.
  void link_down_locked(Channel& ch, bool abortive);
  /// Arm the next reconnect attempt with capped exponential backoff and
  /// seeded jitter. Caller must hold ch.mutex.
  void schedule_retry_locked(Channel& ch);
  /// Per-iteration link service: teardowns flagged by foreign threads,
  /// pending kills, and due reconnect attempts. Returns the earliest
  /// deadline the epoll wait must honor (time_point::max() if none).
  Clock::time_point service_links(int index);
  /// Begin (or finish, when it completes immediately) a nonblocking
  /// connect to `peer`'s listener. Caller must hold ch.mutex.
  void begin_connect_locked(Channel& ch);
  /// Connection established: socket options, HELLO, epoll registration.
  /// Caller must hold ch.mutex.
  void finish_connect_locked(Channel& ch, int fd);
  /// Handle EPOLLOUT/EPOLLERR on an in-flight connect.
  void on_connect_ready(int index, int peer);
  /// Accept every pending connection on the node's listener.
  void accept_pending(int index);
  /// Try to identify a pending accepted connection by its HELLO; installs
  /// the fd as the peer's channel socket once complete.
  void identify_pending(int index, int pending_fd);
  /// Process a peer HELLO for the (index -> peer) send direction: drop
  /// delivered app-log prefix, requeue the rest, retire lost monitor
  /// records, raise the link to kUp and flush.
  void process_hello(int index, int peer, std::uint64_t app_received,
                     std::uint64_t mon_received);
  /// Write a control record directly to the (fresh) socket, bypassing the
  /// data queue; false on a socket failure. Caller must hold ch.mutex.
  bool send_hello_locked(Channel& ch);
  /// Flag the channel for an abortive close by its owner (any thread).
  void request_kill(int from, int to);

  Channel& channel(int from, int to) {
    return *channels_[static_cast<std::size_t>(from) * nodes_.size() +
                      static_cast<std::size_t>(to)];
  }
  void wake(int index);
  /// Release one unit of outstanding work; wakes run() at zero.
  void finish_one();

  const AtomRegistry* registry_;
  SocketConfig config_;
  MonitorHooks* hooks_ = nullptr;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< n*n, diagonal unused
  std::vector<std::vector<Event>> history_;
  std::vector<std::jthread> threads_;

  std::atomic<Clock::time_point> start_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> outstanding_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  /// First node-thread failure; rethrown by run() after joining.
  std::mutex error_mutex_;
  std::exception_ptr run_error_;
  std::atomic<bool> failed_{false};
  std::atomic<int> kills_left_{0};
  std::atomic<bool> node_kill_armed_{false};

  std::atomic<std::uint64_t> app_messages_{0};
  std::atomic<std::uint64_t> monitor_sends_{0};
  std::atomic<std::uint64_t> monitor_deliveries_{0};
  std::atomic<std::uint64_t> program_events_{0};
  std::atomic<std::uint64_t> wire_frames_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::atomic<std::uint64_t> app_bytes_{0};
  std::atomic<std::uint64_t> coalesced_frames_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
  std::atomic<std::uint64_t> timer_seq_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> disconnect_drops_{0};
  std::atomic<std::uint64_t> connections_killed_{0};
};

}  // namespace decmon
