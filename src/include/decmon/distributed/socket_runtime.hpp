// Socket-backed runtime: real I/O sibling of SimRuntime / ThreadRuntime.
//
// One thread per node (program process + its monitor replica), but unlike
// ThreadRuntime the nodes exchange *bytes*, not pointers: every pair of
// nodes is connected by a nonblocking TCP loopback socket, each node runs
// an epoll event loop, monitor payloads are serialized with the wire-v2
// codec on send and reassembled from length-prefixed records on receive.
// This is where frame batching finally pays for its encode cost -- fewer,
// larger records mean fewer syscalls and fewer bytes (shared frame header
// and base clock), measured at the socket, not inferred from stamps.
//
// Record framing (per TCP stream, both directions):
//
//   [u32 LE body length][u8 record type][body]
//
//   type 0x01 = application message  (u32 from, u32 send_sn, vc)
//   type 0x02 = monitor payload      (encode_payload_into bytes)
//
// Reassembly is incremental (FrameReassembler below): partial reads leave
// a prefix buffered; a peer that closes mid-record is detected as a
// truncated stream, never silent data loss.
//
// Send path and backpressure: each (from, to) channel owns a bounded queue
// of encoded records. send() never blocks -- it encodes, enqueues, and
// attempts an immediate nonblocking flush; on EAGAIN the residue stays
// queued and EPOLLOUT is armed. While earlier bytes are still queued (the
// socket pushed back), newly sent PayloadFrames are not encoded at all:
// they park in a per-channel *staging* frame and later frames to the same
// destination merge into it (unit order preserved). This mirrors
// SimRuntime's kTransit convoy -- congestion converts many small frames
// into one large record -- and bounds queue growth by construction.
//
// Accounting is transport-truth: wire_bytes()/wire_frames() count encoded
// record bytes as they are queued (TCP delivers every queued byte), so no
// size-walking ever runs on this path.
//
// Quiescence reuses ThreadRuntime's credit-counting proof: outstanding_
// counts running programs + every sent-but-unprocessed message; a merge
// into staging retires the merged frame's credit immediately (its bytes
// are now owed by the staging frame's credit). run() blocks until the
// counter proves no work exists or can be created, then joins.
//
// Thread-safety contract: all callbacks for node i run on node i's thread.
// Channel send state is per-channel mutex-guarded (off-thread sends are
// legal, as in ThreadRuntime); epoll interest updates for a channel happen
// under that same mutex.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "decmon/distributed/process.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/distributed/trace.hpp"

namespace decmon {

struct SocketConfig {
  /// Wall-clock seconds per trace second (same convention as ThreadConfig).
  /// 0 collapses every wait to "now". There is no modeled message latency:
  /// delivery takes whatever the kernel takes.
  double time_scale = 0.002;
  /// Coalesce same-destination PayloadFrames while the channel has queued
  /// bytes (the batched posture). false = the unbatched control: every
  /// frame is split and each unit crosses the wire as its own record.
  bool batch = true;
  /// Socket buffer sizes in bytes; 0 keeps the kernel default. Tests use
  /// tiny values to force partial reads/writes.
  int sndbuf = 0;
  int rcvbuf = 0;
  /// Soft bound on encoded-but-unsent bytes per channel before frames stop
  /// being encoded eagerly and coalesce in staging instead.
  std::size_t max_queue_bytes = 1 << 20;
  std::uint64_t seed = 1;
};

/// Incremental reassembly of `[u32 len][type][body]` records from a TCP
/// byte stream. feed() accepts arbitrary fragments; next() yields complete
/// records ([type][body], length prefix stripped). Public for direct unit
/// testing of the partial-read state machine.
class FrameReassembler {
 public:
  /// Hard ceiling on a record body; a corrupt length field fails fast
  /// instead of asking the allocator for gigabytes.
  static constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

  void feed(const std::uint8_t* data, std::size_t len);
  /// Move the next complete record into `out` (type byte first). Returns
  /// false when no complete record is buffered. Throws WireError on an
  /// oversized or zero length prefix.
  bool next(std::vector<std::uint8_t>* out);
  /// True when a partial record is buffered -- a stream that ends here was
  /// truncated mid-record.
  bool mid_record() const { return buf_.size() - pos_ > 0; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

class SocketRuntime final : public MonitorNetwork {
 public:
  SocketRuntime(SystemTrace trace, const AtomRegistry* registry,
                SocketConfig config = {});
  ~SocketRuntime() override;

  SocketRuntime(const SocketRuntime&) = delete;
  SocketRuntime& operator=(const SocketRuntime&) = delete;

  void set_hooks(MonitorHooks* hooks) { hooks_ = hooks; }

  /// Run to quiescence (blocking): all trace actions executed, all bytes
  /// delivered, all messages processed. On return every node thread has
  /// been joined -- no callback can fire afterwards.
  void run();

  // MonitorNetwork (safe from any thread; sender identity is msg.from):
  void send(MonitorMessage msg) override;
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override;
  double now() const override;

  int num_processes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<std::vector<Event>>& history() const { return history_; }
  std::vector<LocalState> initial_states() const;

  // Transport-truth counters (stable after run() returns).
  std::uint64_t program_events() const { return program_events_; }
  std::uint64_t app_messages_sent() const { return app_messages_; }
  /// Monitor payloads handed to send() (before any split/merge).
  std::uint64_t monitor_messages_sent() const { return monitor_sends_; }
  std::uint64_t monitor_messages_processed() const {
    return monitor_deliveries_;
  }
  /// Monitor records written to sockets (after split/merge) and their
  /// encoded bytes including the 5-byte record header.
  std::uint64_t wire_frames() const { return wire_frames_; }
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  /// Application records and bytes (VC piggyback traffic).
  std::uint64_t app_bytes() const { return app_bytes_; }
  /// Frames that merged into a congested channel's staging frame instead
  /// of being encoded as their own record.
  std::uint64_t coalesced_frames() const { return coalesced_frames_; }
  /// Nonblocking writes that could not take the whole residue (EAGAIN or
  /// short write) -- proof the partial-write path actually ran.
  std::uint64_t partial_writes() const { return partial_writes_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Sender side of one directed (from, to) socket channel. All fields are
  /// guarded by `mutex`; epoll interest for the fd is changed only while
  /// holding it (the owner loop and foreign senders both flush).
  struct Channel {
    std::mutex mutex;
    int fd = -1;
    int owner_epoll = -1;  ///< sender-side epoll watching this fd for OUT
    int peer = -1;         ///< destination node (epoll event data)
    /// Encoded records awaiting the socket; front record may be partially
    /// written (`front_off` bytes already gone).
    std::deque<std::vector<std::uint8_t>> queue;
    std::size_t front_off = 0;
    std::size_t queued_bytes = 0;
    /// Congestion parking spot: frames coalesce here while queue is
    /// nonempty (see file comment). Owns one outstanding_ credit when set.
    std::unique_ptr<PayloadFrame> staging;
    bool want_write = false;  ///< EPOLLOUT currently armed
  };

  /// Delayed self-delivery (reliable-channel retransmit timers).
  struct Timer {
    Clock::time_point at;
    std::uint64_t seq = 0;
    MonitorMessage msg;
    bool operator>(const Timer& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  struct Node {
    std::unique_ptr<ProgramProcess> process;
    int expected_receives = 0;
    int receives_left = 0;  ///< own thread only
    int epoll_fd = -1;
    int event_fd = -1;  ///< cross-thread wakeup (timers, stop)
    /// Record-body scratch for decoding; own thread only.
    std::vector<std::uint8_t> scratch;
    /// Self-delivery queue: immediate self-sends and due timers, guarded
    /// by `timer_mutex` (pushed by own thread and by channel layers above).
    std::mutex timer_mutex;
    std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers;
    /// Receive-side reassembly, one per peer; touched only by this node's
    /// thread.
    std::vector<FrameReassembler> reassembly;
    std::vector<bool> peer_open;
  };

  void node_main(int index);
  void record_event(int index, const Event& event);
  void broadcast_app(int index, const AppMessage& message);
  void read_peer(int index, int peer);
  void dispatch_record(int index, int peer,
                       const std::vector<std::uint8_t>& rec);
  void enqueue_monitor(int from, int to, std::unique_ptr<NetPayload> payload);
  /// Encode `payload` as a monitor record appended to `ch.queue`.
  /// Caller must hold ch.mutex.
  void encode_record_locked(Channel& ch, const NetPayload& payload);
  /// Drain ch.queue (and then staging) into the socket until empty or
  /// EAGAIN; arms/clears EPOLLOUT to match. Caller must hold ch.mutex.
  void flush_locked(Channel& ch);
  void materialize_staging_locked(Channel& ch);
  Channel& channel(int from, int to) {
    return *channels_[static_cast<std::size_t>(from) * nodes_.size() +
                      static_cast<std::size_t>(to)];
  }
  void wake(int index);
  /// Release one unit of outstanding work; wakes run() at zero.
  void finish_one();

  const AtomRegistry* registry_;
  SocketConfig config_;
  MonitorHooks* hooks_ = nullptr;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< n*n, diagonal unused
  std::vector<std::vector<Event>> history_;
  std::vector<std::jthread> threads_;

  std::atomic<Clock::time_point> start_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> outstanding_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;

  std::atomic<std::uint64_t> app_messages_{0};
  std::atomic<std::uint64_t> monitor_sends_{0};
  std::atomic<std::uint64_t> monitor_deliveries_{0};
  std::atomic<std::uint64_t> program_events_{0};
  std::atomic<std::uint64_t> wire_frames_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::atomic<std::uint64_t> app_bytes_{0};
  std::atomic<std::uint64_t> coalesced_frames_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
  std::atomic<std::uint64_t> timer_seq_{0};
};

}  // namespace decmon
