// Fault-injecting decorator over a MonitorNetwork (the adverse-delivery
// layer the soundness/completeness claims must survive).
//
// The underlying runtimes guarantee reliable per-channel FIFO delivery with
// finite delay -- the friendliest schedule family the algorithm's
// assumptions admit. FaultyNetwork widens that family: seeded, per-channel
// streams of delay spikes, reordering, duplicate delivery and bounded
// drop-with-redelivery turn every run into an adversarial but still *legal*
// asynchronous execution (the paper's fault model assumes messages are
// never permanently lost -- a dropped token would strand its parent view
// forever, see DESIGN.md §7 -- so drops are always redelivered after a
// bounded number of retransmissions).
//
// Every decision is drawn from a per-channel SplitMix64-seeded stream, so a
// fault schedule is a pure function of {seed, config} and independent of
// cross-channel interleavings: under SimRuntime a failing run replays
// exactly, and under ThreadRuntime each channel sees the same fault
// sequence in every run even though wall-clock interleavings differ.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "decmon/distributed/runtime.hpp"

namespace decmon {

/// Fault mix for one run. Probabilities are per monitor message; self-sends
/// (same-node handoffs) are never faulted -- they do not cross the network.
struct FaultConfig {
  /// Delay spike: the channel stalls and this message (plus, through the
  /// FIFO clamp, everything behind it) arrives late.
  double delay_prob = 0.0;
  double delay_mu = 0.5;     ///< spike magnitude, trace seconds, N(mu, sigma)
  double delay_sigma = 0.2;  ///< truncated at 0

  /// Reordering: the message bypasses the per-channel FIFO clamp, so it can
  /// overtake earlier sends and be overtaken by later ones.
  double reorder_prob = 0.0;

  /// Duplicate delivery: a cloned copy is delivered in addition to the
  /// original, itself delayed and exempt from FIFO (a retransmitted packet
  /// whose original also arrived).
  double dup_prob = 0.0;

  /// Drop-with-redelivery: the message is "lost" between 1 and max_drops
  /// times and retransmitted after redelivery_delay each time; the final
  /// delivery bypasses FIFO (retransmissions do not hold the channel).
  double drop_prob = 0.0;
  int max_drops = 3;
  double redelivery_delay = 0.25;  ///< trace seconds per lost attempt

  /// True message loss: the message is permanently swallowed, no
  /// redelivery ever. This violates the bare algorithm's fault model -- a
  /// lost token strands its parent view forever -- and is survivable only
  /// with a ReliableChannel stacked above (the channel's ack/retransmit
  /// loop turns permanent loss back into bounded delay).
  double lose_prob = 0.0;

  /// Fault-model violation switch for harness self-tests ONLY: dropped
  /// messages are swallowed instead of redelivered. This breaks the
  /// bounded-loss assumption completeness rests on, so the fuzz harness
  /// must flag such runs -- which is exactly what the injected-bug
  /// self-test asserts.
  bool lose_dropped = false;

  std::uint64_t seed = 1;

  bool any_faults() const {
    return delay_prob > 0 || reorder_prob > 0 || dup_prob > 0 ||
           drop_prob > 0 || lose_prob > 0;
  }

  std::string to_string() const;
};

/// Counters of injected faults (for logs and repro files).
struct FaultStats {
  std::uint64_t messages = 0;      ///< cross-node messages seen
  std::uint64_t delay_spikes = 0;
  std::uint64_t reordered = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dropped = 0;       ///< individual lost transmissions
  std::uint64_t lost = 0;          ///< permanently swallowed (lose_dropped)
};

class FaultyNetwork final : public MonitorNetwork {
 public:
  /// `inner` must outlive the decorator. `num_processes` sizes the
  /// per-channel decision streams.
  FaultyNetwork(MonitorNetwork* inner, int num_processes, FaultConfig config);

  // MonitorNetwork:
  void send(MonitorMessage msg) override;
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override;
  double now() const override { return inner_->now(); }

  FaultStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  const FaultConfig& config() const { return config_; }

 private:
  struct Channel {
    std::uint64_t rng_state = 0;  ///< SplitMix64 state, advanced per draw
  };

  Channel& channel(int from, int to);
  /// Next uniform draw in [0, 1) from the channel's stream.
  double uniform(Channel& ch);
  /// Truncated-normal delay spike from the channel's stream.
  double spike(Channel& ch);

  MonitorNetwork* inner_;
  int n_;
  FaultConfig config_;
  /// Guards channels_ and stats_: under ThreadRuntime, node threads (and
  /// off-thread injectors) send concurrently. Decision draws happen under
  /// the lock; inner sends happen outside it, so the per-channel stream
  /// stays a pure function of the channel's own send order.
  mutable std::mutex mu_;
  std::vector<Channel> channels_;  ///< [from * n + to]
  FaultStats stats_;
};

}  // namespace decmon
