// Real-thread runtime: one std::jthread per node (program process + its
// monitor replica), mailbox message passing with randomized latency and
// per-channel FIFO, wall-clock time. Exercises the same MonitorHooks /
// MonitorNetwork code path as the deterministic simulator, but with genuine
// asynchrony -- the closest in-process equivalent of the paper's network of
// iOS devices.
//
// Thread-safety contract: all callbacks for node i (its local events, its
// termination, messages addressed to it) are invoked from node i's thread
// only, so per-monitor state needs no locking (CP.2/CP.3: the only shared
// mutable state is the mailboxes, each guarded by its own mutex).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <variant>
#include <vector>

#include "decmon/distributed/process.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/distributed/trace.hpp"
#include "decmon/util/rng.hpp"

namespace decmon {

struct ThreadConfig {
  /// Wall-clock seconds per trace second (0.002 => a 3 s trace wait lasts
  /// 6 ms; keeps the experiments fast while preserving interleavings).
  double time_scale = 0.002;
  /// Message latency in *trace* seconds (scaled like waits).
  double latency_mu = 0.05;
  double latency_sigma = 0.02;
  std::uint64_t seed = 1;
};

class ThreadRuntime final : public MonitorNetwork {
 public:
  ThreadRuntime(SystemTrace trace, const AtomRegistry* registry,
                ThreadConfig config = {});
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  void set_hooks(MonitorHooks* hooks) { hooks_ = hooks; }

  /// Run to quiescence (blocking): all trace actions executed, all messages
  /// (application and monitor) delivered and processed.
  void run();

  // MonitorNetwork:
  void send(MonitorMessage msg) override;
  double now() const override;

  int num_processes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<std::vector<Event>>& history() const { return history_; }
  std::vector<LocalState> initial_states() const;
  std::uint64_t app_messages_sent() const { return app_messages_; }
  std::uint64_t monitor_messages_sent() const { return monitor_messages_; }
  std::uint64_t program_events() const { return program_events_; }

 private:
  using Clock = std::chrono::steady_clock;
  using Payload = std::variant<AppMessage, MonitorMessage>;

  struct Timed {
    Clock::time_point at;
    std::uint64_t seq;
    Payload payload;
    bool operator>(const Timed& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  struct Node {
    std::unique_ptr<ProgramProcess> process;
    int expected_receives = 0;

    std::mutex mutex;
    std::condition_variable cv;
    std::priority_queue<Timed, std::vector<Timed>, std::greater<>> inbox;

    // Sender-side per-destination FIFO clamp (accessed only by this node's
    // thread, which serializes its own sends).
    std::vector<Clock::time_point> last_delivery;
    std::unique_ptr<NormalWait> latency;
  };

  void node_main(int index);
  void deliver(int to, Clock::time_point at, Payload payload);
  Clock::time_point fifo_time(int from, int to, Clock::time_point candidate);

  const AtomRegistry* registry_;
  ThreadConfig config_;
  MonitorHooks* hooks_ = nullptr;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::vector<Event>> history_;
  std::vector<std::jthread> threads_;

  Clock::time_point start_;
  std::atomic<bool> stop_{false};
  std::atomic<int> in_flight_{0};
  std::atomic<int> active_programs_{0};
  std::atomic<std::uint64_t> app_messages_{0};
  std::atomic<std::uint64_t> monitor_messages_{0};
  std::atomic<std::uint64_t> program_events_{0};
  std::atomic<std::uint64_t> seq_{0};
  /// Index of the node whose thread is currently sending (thread-local
  /// lookup for FIFO clamps).
  static thread_local int current_node_;
};

}  // namespace decmon
