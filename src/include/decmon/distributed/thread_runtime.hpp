// Real-thread runtime: one std::jthread per node (program process + its
// monitor replica), mailbox message passing with randomized latency and
// per-channel FIFO, wall-clock time. Exercises the same MonitorHooks /
// MonitorNetwork code path as the deterministic simulator, but with genuine
// asynchrony -- the closest in-process equivalent of the paper's network of
// iOS devices.
//
// Thread-safety contract: all callbacks for node i (its local events, its
// termination, messages addressed to it) are invoked from node i's thread
// only, so per-monitor state needs no locking. Shared mutable state is the
// mailboxes (each guarded by its own mutex) and each node's sender-side
// channel state (latency RNG + FIFO clamps, guarded by a per-node send
// mutex so off-node-thread sends are safe).
//
// Quiescence is counter-based, not heuristic: `outstanding_` counts every
// unit of pending work (running programs + undelivered/in-process
// messages). A message is counted before it is enqueued and released only
// after its receiver finished processing it -- including any sends that
// processing caused, which were counted first -- so outstanding_ == 0
// proves no work exists or can ever be created (credit-counting
// termination detection). run() blocks on that proof, then joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <variant>
#include <vector>

#include "decmon/distributed/process.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/distributed/trace.hpp"
#include "decmon/util/rng.hpp"

namespace decmon {

struct ThreadConfig {
  /// Wall-clock seconds per trace second (0.002 => a 3 s trace wait lasts
  /// 6 ms; keeps the experiments fast while preserving interleavings).
  /// 0 is legal: every wait and latency collapses to "now" (a zero-wait
  /// storm -- maximum scheduler pressure).
  double time_scale = 0.002;
  /// Message latency in *trace* seconds (scaled like waits).
  double latency_mu = 0.05;
  double latency_sigma = 0.02;
  std::uint64_t seed = 1;
};

class ThreadRuntime final : public MonitorNetwork {
 public:
  ThreadRuntime(SystemTrace trace, const AtomRegistry* registry,
                ThreadConfig config = {});
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  void set_hooks(MonitorHooks* hooks) { hooks_ = hooks; }

  /// Run to quiescence (blocking): all trace actions executed, all messages
  /// (application and monitor) delivered and processed. On return every
  /// node thread has been joined -- no callback can fire afterwards.
  void run();

  // MonitorNetwork (safe from any thread; sender identity is msg.from):
  void send(MonitorMessage msg) override;
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override;
  double now() const override;

  int num_processes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<std::vector<Event>>& history() const { return history_; }
  std::vector<LocalState> initial_states() const;
  std::uint64_t app_messages_sent() const { return app_messages_; }
  std::uint64_t monitor_messages_sent() const { return monitor_messages_; }
  std::uint64_t program_events() const { return program_events_; }
  std::uint64_t monitor_messages_processed() const {
    return monitor_deliveries_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  using Payload = std::variant<AppMessage, MonitorMessage>;

  struct Timed {
    Clock::time_point at;
    std::uint64_t seq;
    Payload payload;
    bool operator>(const Timed& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  struct Node {
    std::unique_ptr<ProgramProcess> process;
    int expected_receives = 0;

    std::mutex mutex;
    std::condition_variable cv;
    std::priority_queue<Timed, std::vector<Timed>, std::greater<>> inbox;

    // Sender-side per-destination channel state: the FIFO clamps and the
    // latency RNG of this node *as a sender*. Guarded by send_mutex --
    // sends normally come from this node's own thread, but external
    // threads (tests, tools) may inject messages too.
    std::mutex send_mutex;
    std::vector<Clock::time_point> last_delivery;
    std::unique_ptr<NormalWait> latency;
  };

  void node_main(int index);
  void deliver(int to, Clock::time_point at, Payload payload);
  /// Caller must hold nodes_[from]->send_mutex.
  Clock::time_point fifo_time(int from, int to, Clock::time_point candidate);
  /// Release one unit of outstanding work; wakes run() at zero.
  void finish_one();

  const AtomRegistry* registry_;
  ThreadConfig config_;
  MonitorHooks* hooks_ = nullptr;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::vector<Event>> history_;
  std::vector<std::jthread> threads_;

  std::atomic<Clock::time_point> start_;
  std::atomic<bool> stop_{false};
  /// Pending work units: running programs + counted-but-unprocessed
  /// messages. Zero proves quiescence (see file comment).
  std::atomic<std::int64_t> outstanding_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;

  std::atomic<std::uint64_t> app_messages_{0};
  std::atomic<std::uint64_t> monitor_messages_{0};
  std::atomic<std::uint64_t> monitor_deliveries_{0};
  std::atomic<std::uint64_t> program_events_{0};
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace decmon
