// Message types moved over the (simulated or threaded) network.
//
// Application messages carry the sender's vector clock (piggybacked, §4.2).
// Monitor-to-monitor messages are opaque to the transport: the monitoring
// layer defines concrete payloads (tokens, termination signals) derived from
// NetPayload, so the runtimes need no dependency on the monitor module.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "decmon/util/vector_clock.hpp"

namespace decmon {

/// Application-level message between program processes.
struct AppMessage {
  int from = -1;
  int to = -1;
  VectorClock vc;            ///< sender's clock at the send event
  std::uint32_t send_sn = 0; ///< sender's sequence number of the send event
};

/// Base class for monitor-layer payloads routed through a runtime.
///
/// `tag` identifies the concrete payload type (each subclass defines a
/// distinct `kTag` constant) so hot-path dispatch is a byte compare instead
/// of a dynamic_cast.
struct NetPayload {
  explicit NetPayload(std::uint8_t t = 0) : tag(t) {}
  virtual ~NetPayload() = default;

  /// Deep-copy the payload, or null when the concrete type does not support
  /// duplication. Only fault-injection layers call this (to model duplicate
  /// delivery); the regular send path always moves payloads.
  virtual std::unique_ptr<NetPayload> clone() const { return nullptr; }

  const std::uint8_t tag;

  /// Encoded wire-v2 size of this payload, stamped once when the monitor
  /// flushes it (see MonitorProcess::flush_staged). Zero means "not
  /// stamped"; transports treat it as advisory accounting, never as a
  /// framing length.
  std::uint32_t wire_size = 0;
};

/// A batch of monitor payloads delivered (and acked, when a reliable
/// channel is stacked underneath) as one unit. Lives here rather than in
/// the monitor module so the runtimes can split/merge frames without a
/// dependency on monitor types: the units stay opaque NetPayloads.
struct PayloadFrame final : NetPayload {
  static constexpr std::uint8_t kTag = 5;
  PayloadFrame() : NetPayload(kTag) {}

  std::vector<std::unique_ptr<NetPayload>> units;

  std::unique_ptr<NetPayload> clone() const override {
    auto copy = std::make_unique<PayloadFrame>();
    copy->wire_size = wire_size;
    copy->units.reserve(units.size());
    for (const auto& u : units) {
      auto uc = u ? u->clone() : nullptr;
      if (!uc) return nullptr;  // a frame clones only if every unit does
      copy->units.push_back(std::move(uc));
    }
    return copy;
  }
};

/// A monitor-to-monitor message in flight. Owns its payload exclusively:
/// messages move through the runtime to the receiver, they are never
/// duplicated, so sending costs zero allocations when the payload shell is
/// recycled.
struct MonitorMessage {
  int from = -1;
  int to = -1;
  std::unique_ptr<NetPayload> payload;
};

}  // namespace decmon
