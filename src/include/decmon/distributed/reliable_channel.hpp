// Reliable channel layer: per-channel ack/retransmit protocol between the
// monitoring layer and a (possibly lossy) MonitorNetwork.
//
// The paper's fault model -- and FaultyNetwork's default `drop` mode --
// assumes every message is eventually delivered. ReliableChannel removes
// that assumption from the transport: it wraps every cross-node monitor
// payload in a sequenced envelope, keeps the encoded bytes until the
// receiver's cumulative ack covers them, retransmits on a timer with
// exponential backoff and seeded jitter, and deduplicates at the receiver.
// Stacked over a FaultyNetwork with `lose_prob > 0` (true loss, no
// redelivery), the monitor stack above sees exactly the delivery guarantees
// the algorithm requires: every payload arrives at least once, duplicates
// are filtered, and nothing is ever silently lost.
//
// Design points:
//   * One object implements both MonitorNetwork (outgoing: monitors send
//     through it) and MonitorHooks (incoming: the runtime's deliveries pass
//     through it and unwrapped payloads continue to the inner hooks).
//     Stacking: monitors -> ReliableChannel -> FaultyNetwork -> runtime,
//     and runtime -> [CrashInjector ->] ReliableChannel -> monitors.
//   * Retransmit timers are self-addressed ChannelTimer messages sent with
//     `extra_delay` = the backoff interval: self-sends are never faulted
//     and every runtime delivers them, so the protocol needs no runtime
//     timer API and stays deterministic under SimRuntime/ReplayRuntime.
//   * Zero-allocation clean path: envelope shells, timer shells and byte
//     buffers are pooled per node; first transmissions carry the original
//     payload object through the envelope (no decode at the receiver), and
//     the wire-encoded bytes are retained sender-side for retransmission
//     (decoded only on that rare path).
//   * Determinism: the only randomness is the per-node jitter stream,
//     seeded from ReliableChannelConfig::seed -- a pure function of the
//     node's own timer/send order, so sim and replay runs replay exactly.
//
// Thread-safety: per-node state is guarded by a per-node mutex. Under
// ThreadRuntime, node i's sends and deliveries both happen on node i's
// thread, but acks mutate the *sender's* link state from the receiver's
// thread, so the locks are load-bearing there.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "decmon/distributed/runtime.hpp"

namespace decmon {

/// Sequenced envelope around a monitor payload (wire tag 3). `seq == 0`
/// marks a pure ack (no payload). First transmissions carry the original
/// payload object in `inner`; retransmissions carry only `bytes` (the
/// sender-retained encoding) and are decoded at the receiver.
struct ChannelEnvelope final : NetPayload {
  static constexpr std::uint8_t kTag = 3;
  ChannelEnvelope() : NetPayload(kTag) {}

  std::uint64_t seq = 0;  ///< per-(from,to) stream position; 0 = pure ack
  std::uint64_t ack = 0;  ///< cumulative: sender has all to->from seq <= ack
  std::unique_ptr<NetPayload> inner;  ///< first transmission only
  std::vector<std::uint8_t> bytes;    ///< retransmissions only

  std::unique_ptr<NetPayload> clone() const override;
};

/// Self-addressed retransmit-timer tick (wire tag 4). Never crosses the
/// network and never duplicated.
struct ChannelTimer final : NetPayload {
  static constexpr std::uint8_t kTag = 4;
  ChannelTimer() : NetPayload(kTag) {}
};

struct ReliableChannelConfig {
  /// Base retransmission timeout, trace seconds. Doubles per attempt.
  double rto = 3.0;
  double backoff = 2.0;
  /// Backoff exponent cap: the interval never exceeds rto * backoff^cap.
  int backoff_cap = 6;
  /// Uniform jitter fraction on every timer interval (desynchronizes
  /// retransmit bursts; drawn from the seeded per-node stream).
  double jitter = 0.25;
  std::uint64_t seed = 1;

  std::string to_string() const;
};

/// Per-node protocol counters (read after the run, or from the node's own
/// dispatch context).
struct ChannelStats {
  std::uint64_t data_sent = 0;        ///< first transmissions of payloads
  std::uint64_t retransmissions = 0;  ///< timer-driven re-sends
  std::uint64_t acks_sent = 0;        ///< pure-ack envelopes
  std::uint64_t dup_suppressed = 0;   ///< deliveries filtered by dedup
  std::uint64_t timer_fires = 0;

  ChannelStats& operator+=(const ChannelStats& other) {
    data_sent += other.data_sent;
    retransmissions += other.retransmissions;
    acks_sent += other.acks_sent;
    dup_suppressed += other.dup_suppressed;
    timer_fires += other.timer_fires;
    return *this;
  }
};

class ReliableChannel final : public MonitorNetwork, public MonitorHooks {
 public:
  /// `inner` is the transport below (typically a FaultyNetwork); it must
  /// outlive the channel. Hooks (the layer above, typically a
  /// DecentralizedMonitor) are attached afterwards with set_hooks -- the
  /// monitor layer is constructed against this object, so it cannot exist
  /// yet.
  ReliableChannel(MonitorNetwork* inner, int num_processes,
                  ReliableChannelConfig config = {});

  void set_hooks(MonitorHooks* hooks) { hooks_ = hooks; }

  // MonitorNetwork (outgoing path, called by monitors):
  void send(MonitorMessage msg) override;
  void send_perturbed(MonitorMessage msg,
                      const DeliveryPerturbation& perturbation) override;
  double now() const override { return inner_->now(); }

  // MonitorHooks (incoming path, called by the runtime / crash injector):
  void on_local_event(int proc, const Event& event, double now) override;
  void on_local_termination(int proc, double now) override;
  void on_monitor_message(MonitorMessage msg, double now) override;

  int num_processes() const { return n_; }
  ChannelStats stats(int node) const;
  ChannelStats total_stats() const;
  /// Unacked payloads currently held for retransmission by `node`.
  std::size_t unacked_count(int node) const;

  /// Serialize node `node`'s full protocol state (sequence numbers, unacked
  /// buffers, dedup state, jitter stream) into a versioned, CRC-protected
  /// blob -- the channel half of a crash checkpoint. Stats are not state.
  std::vector<std::uint8_t> save_node(int node) const;
  /// Restore a blob produced by save_node. Throws WireError on any
  /// corruption; on throw the node's state is unchanged. Retransmit
  /// deadlines are re-based to `now` and the timer is re-armed when unacked
  /// payloads remain.
  void restore_node(int node, const std::vector<std::uint8_t>& blob,
                    double now);

 private:
  /// One in-flight payload awaiting a cumulative ack.
  struct Unacked {
    std::uint64_t seq = 0;
    int to = -1;
    int attempts = 0;        ///< transmissions so far (>= 1)
    double deadline = 0.0;   ///< next retransmission time
    std::vector<std::uint8_t> bytes;
  };

  /// Node i's per-peer link state.
  struct Link {
    std::uint64_t next_seq = 1;  ///< next outgoing i->peer sequence
    std::uint64_t recv_cum = 0;  ///< highest contiguous peer->i seq seen
    /// Out-of-order peer->i seqs above recv_cum, ascending. Deliveries are
    /// forwarded immediately (monitors tolerate reordering); this set only
    /// drives dedup and cumulative-ack advancement.
    std::vector<std::uint64_t> recv_ooo;
  };

  struct NodeState {
    mutable std::mutex mu;
    std::vector<Link> links;        ///< indexed by peer
    std::vector<Unacked> unacked;   ///< all destinations, unordered
    bool timer_armed = false;
    std::uint64_t jitter_rng = 0;   ///< SplitMix64 state
    ChannelStats stats;
    // Pools (shells and buffers recirculate; bounded).
    std::vector<std::unique_ptr<ChannelEnvelope>> envelope_pool;
    std::vector<std::unique_ptr<ChannelTimer>> timer_pool;
    std::vector<std::vector<std::uint8_t>> buffer_pool;
  };

  NodeState& node(int i) const;
  /// Pool accessors; caller must hold the node's mutex.
  std::unique_ptr<ChannelEnvelope> acquire_envelope(NodeState& ns);
  void recycle_envelope(NodeState& ns, std::unique_ptr<ChannelEnvelope> env);
  std::vector<std::uint8_t> acquire_buffer(NodeState& ns);
  void recycle_buffer(NodeState& ns, std::vector<std::uint8_t>&& buf);
  /// Next uniform in [0,1) from the node's jitter stream.
  double jitter_uniform(NodeState& ns);
  double backoff_interval(NodeState& ns, int attempts);
  /// Arm the retransmit timer to fire at `deadline` (no-op when armed).
  /// Caller holds ns.mu; `self` is the node index.
  void arm_timer(NodeState& ns, int self, double deadline);
  /// Drop unacked entries covered by a cumulative ack from `peer`.
  void apply_ack(NodeState& ns, int peer, std::uint64_t ack);
  /// Handle an arrived data/ack envelope addressed to `to`.
  void on_envelope(int from, int to, std::unique_ptr<ChannelEnvelope> env,
                   double now);
  /// Timer fired at `self`: retransmit everything due, re-arm if needed.
  void on_timer(int self, std::unique_ptr<ChannelTimer> timer, double now);
  void send_pure_ack(NodeState& ns, int from_node, int to_node);

  MonitorNetwork* inner_;
  MonitorHooks* hooks_ = nullptr;
  int n_;
  ReliableChannelConfig config_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
};

}  // namespace decmon
