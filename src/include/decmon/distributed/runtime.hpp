// Runtime interfaces decoupling the monitoring layer from the execution
// substrate. A runtime drives ProgramProcess objects, delivers application
// and monitor messages over reliable FIFO channels, and notifies the
// monitoring layer through MonitorHooks; the monitoring layer sends through
// MonitorNetwork. The same monitor code runs under the deterministic
// discrete-event simulator and the real-thread runtime.
#pragma once

#include "decmon/distributed/event.hpp"
#include "decmon/distributed/message.hpp"

namespace decmon {

/// Implemented by the monitoring layer; invoked by runtimes.
class MonitorHooks {
 public:
  virtual ~MonitorHooks() = default;

  /// A local event occurred at `proc` (the monitor reads the local state in
  /// one atomic step -- same-node, no network hop).
  virtual void on_local_event(int proc, const Event& event, double now) = 0;

  /// `proc`'s program terminated: no further local events will occur.
  virtual void on_local_termination(int proc, double now) = 0;

  /// A monitor-to-monitor message arrived at `msg.to`. Ownership of the
  /// payload transfers to the hook (the receiver may recycle its storage).
  virtual void on_monitor_message(MonitorMessage msg, double now) = 0;
};

/// A per-message deviation from the default delivery behaviour, produced by
/// fault-injection layers (see faulty_network.hpp). The default-constructed
/// value means "deliver normally".
struct DeliveryPerturbation {
  /// Additional latency in trace seconds on top of the channel's sampled
  /// latency (a delay spike, or the retransmission time of a dropped
  /// message).
  double extra_delay = 0.0;
  /// Exempt this message from the per-channel FIFO clamp: it neither waits
  /// for earlier sends on the channel nor holds back later ones, so it can
  /// overtake and be overtaken (reordering / retransmission semantics).
  bool bypass_fifo = false;
};

/// Implemented by runtimes; used by the monitoring layer to communicate.
class MonitorNetwork {
 public:
  virtual ~MonitorNetwork() = default;

  /// Queue a monitor message for delivery (reliable, FIFO per channel,
  /// unbounded-but-finite delay). Self-sends are delivered too.
  virtual void send(MonitorMessage msg) = 0;

  /// Queue a monitor message with a delivery perturbation. Runtimes that
  /// model latency override this; the default ignores the perturbation
  /// (delivery stays reliable FIFO), which keeps perturbations semantically
  /// optional: they only ever relax ordering/timing, never correctness.
  virtual void send_perturbed(MonitorMessage msg,
                              const DeliveryPerturbation& perturbation) {
    (void)perturbation;
    send(std::move(msg));
  }

  /// Current time in seconds (virtual under simulation, wall-clock under
  /// threads). Used only for metrics, never for ordering decisions.
  virtual double now() const = 0;
};

}  // namespace decmon
