// Differential schedule fuzzing: sweep seeded fault configurations over
// property/process-count cells and check every decentralized run against the
// lattice oracle on the recorded history. Each cell alternates between the
// deterministic simulator (online monitoring under a faulted SimRuntime) and
// the replay runtime (offline monitoring of a recorded computation under a
// faulted schedule); both are pure functions of their seeds, so every
// contract violation yields a self-contained text repro that re-runs to the
// identical verdict sets (see run_repro). Used by the schedule_fuzz tests
// and the tools/fuzz_schedules driver.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/core/properties.hpp"
#include "decmon/distributed/faulty_network.hpp"
#include "decmon/monitor/crash_injector.hpp"

namespace decmon::fuzz {

/// Which execution substrate a fuzz case (or a repro) runs on.
enum class Mode { kSim, kReplay };

std::string to_string(Mode mode);

/// One property/process-count cell of the sweep grid.
struct Cell {
  paper::Property property = paper::Property::kA;
  int num_processes = 2;
};

/// The ISSUE's CI-smoke grid: three cells spanning a G-shaped and an
/// F-shaped property at two system sizes.
std::vector<Cell> default_cells();

struct Options {
  std::vector<Cell> cells = default_cells();
  /// Seeded fault configs per cell (each is one full monitored run checked
  /// against the oracle).
  int cases_per_cell = 70;
  std::uint64_t seed = 1;
  /// Workload size; kept small so the oracle lattice stays tractable.
  int internal_events = 5;
  double comm_mu = 4.0;
  std::size_t oracle_max_nodes = std::size_t{1} << 22;
  /// Injected-bug self-test: violate the bounded-loss fault model (dropped
  /// messages are swallowed, not redelivered). The sweep must then report
  /// violations -- this is how the harness proves it can catch bugs.
  bool lose_dropped = false;
  /// Stack a ReliableChannel between the monitors and the faulty network in
  /// every case (implied by `crash`; required for `lossy` runs to pass).
  bool reliable_channel = false;
  /// Give every sampled fault config a true-loss rate (FaultConfig::
  /// lose_prob): messages are permanently swallowed, no redelivery. Without
  /// reliable_channel this is another injected-bug self-test -- the sweep
  /// must then report violations.
  bool lossy = false;
  /// Crash-schedule mode: every case additionally kills one seeded monitor
  /// node at a seeded delivery boundary and later restarts it from its last
  /// checkpoint (implies the reliable channel). The soundness contract is
  /// checked unchanged: recovery must be invisible except as added time.
  bool crash = false;
  /// Run every case in the streaming posture (MonitorOptions::streaming)
  /// with an aggressive GC cadence, so trimming races every fault class.
  /// Ignored when `crash` is set: checkpoint rewind against already-trimmed
  /// peer histories is only covered by the crash contract, not this sweep's.
  bool gc = false;
  /// Stop materializing repro blobs after this many violations (the counts
  /// keep accumulating).
  int max_repros = 8;
  /// Invoked with a partial repro blob (seeds and config, no outcome or
  /// event log) as each case starts. The fuzz tool's wall-clock watchdog
  /// publishes the last blob when a case hangs.
  std::function<void(const std::string&)> on_case_start;
};

/// One contract violation, with a self-contained deterministic repro.
struct Violation {
  paper::Property property = paper::Property::kA;
  int num_processes = 0;
  Mode mode = Mode::kSim;
  /// "incompleteness" | "unsound-verdict" | "unfinished".
  std::string kind;
  std::string detail;
  /// Text blob for run_repro; empty past Options::max_repros.
  std::string repro;
};

struct Report {
  std::uint64_t cases = 0;
  std::uint64_t skipped = 0;  ///< oracle exceeded max_nodes (counted, not run)
  std::uint64_t violation_count = 0;
  FaultStats faults;       ///< aggregated over all cases
  ChannelStats channel;    ///< aggregated reliable-channel traffic
  CrashStats crash;        ///< aggregated crash/checkpoint activity
  std::vector<Violation> violations;  ///< at most max_repros entries
  bool ok() const { return violation_count == 0; }
};

/// Run the sweep. `progress` (optional) receives one line per cell.
Report run_sweep(const Options& options, std::ostream* progress = nullptr);

/// Outcome of re-running a repro blob.
struct ReproOutcome {
  bool violation = false;
  std::string kind;
  std::string detail;
  std::set<Verdict> oracle;
  std::set<Verdict> monitor;
  bool all_finished = false;
};

/// Re-run a repro produced by run_sweep. Deterministic: the same blob always
/// yields the same ReproOutcome (sim repros regenerate the run from seeds;
/// replay repros re-drive the embedded event log through ReplayRuntime).
/// Throws std::runtime_error on a malformed blob.
ReproOutcome run_repro(const std::string& repro_text);

}  // namespace decmon::fuzz
