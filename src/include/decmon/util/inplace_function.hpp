// Fixed-capacity move-only callable for allocation-free scheduling.
//
// std::function heap-allocates any closure larger than its tiny internal
// buffer (two pointers on libstdc++), which made every scheduled simulator
// event -- trace actions, application deliveries, monitor deliveries -- a
// heap round trip. InplaceTask stores the closure inside the object, so a
// scheduler queue of InplaceTasks allocates nothing per event; oversized
// closures are a compile error, not a silent fallback.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace decmon {

template <std::size_t Capacity>
class InplaceTask {
 public:
  InplaceTask() = default;

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, InplaceTask>>>
  InplaceTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity, "closure too large for InplaceTask");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "closure over-aligned for InplaceTask");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InplaceTask closures must be nothrow-movable");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    relocate_ = [](void* dst, void* src) {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
    destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
  }

  InplaceTask(const InplaceTask&) = delete;
  InplaceTask& operator=(const InplaceTask&) = delete;

  InplaceTask(InplaceTask&& other) noexcept { move_from(other); }
  InplaceTask& operator=(InplaceTask&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  ~InplaceTask() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  void reset() {
    if (invoke_ != nullptr) {
      destroy_(buf_);
      invoke_ = nullptr;
    }
  }

 private:
  void move_from(InplaceTask& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (other.invoke_ != nullptr) {
      relocate_(buf_, other.buf_);
      other.invoke_ = nullptr;
    }
  }

  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace decmon
