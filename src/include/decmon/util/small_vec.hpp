// Small-buffer vector for the token hot path.
//
// The monitoring layer's per-process arrays (vector clocks, cuts, believed
// letters, conjunct flags) are sized by the process count n, which is tiny
// in every deployment the paper evaluates (n <= 8 covers the whole bench
// grid). SmallVec stores up to N elements inline, so copying, forking and
// parking these arrays never touches the heap; wider systems spill to a
// heap block transparently and keep that capacity across reuse (free-list
// recycling relies on this: shrinking never releases storage).
//
// Restricted to trivially copyable, trivially destructible element types:
// that restriction is what makes growth a memcpy and destruction free.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <stdexcept>
#include <type_traits>

namespace decmon {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "SmallVec needs at least one inline slot");
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec elements must be trivially copyable");
  static_assert(std::is_trivially_destructible_v<T>,
                "SmallVec elements must be trivially destructible");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;
  explicit SmallVec(std::size_t n) { resize(n); }
  SmallVec(std::size_t n, const T& value) { assign(n, value); }
  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    T* d = data();
    for (const T& v : init) d[size_++] = v;
  }

  SmallVec(const SmallVec& other) { copy_from(other); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      size_ = 0;
      copy_from(other);
    }
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { steal(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      cap_ = static_cast<std::uint32_t>(N);
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  T* data() {
    return cap_ == N ? reinterpret_cast<T*>(inline_) : heap_;
  }
  const T* data() const {
    return cap_ == N ? reinterpret_cast<const T*>(inline_) : heap_;
  }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("SmallVec::at");
    return data()[i];
  }
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("SmallVec::at");
    return data()[i];
  }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  /// Grow capacity; never shrinks, never invalidates on no-op.
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::size_t newcap = static_cast<std::size_t>(cap_) * 2;
    if (newcap < n) newcap = n;
    T* p = new T[newcap];
    if (size_ != 0) std::memcpy(p, data(), size_ * sizeof(T));
    release();
    heap_ = p;
    cap_ = static_cast<std::uint32_t>(newcap);
  }

  /// Resize; new elements are value-initialized. Capacity is retained when
  /// shrinking (free-list recycling depends on this).
  void resize(std::size_t n) {
    reserve(n);
    T* d = data();
    for (std::size_t i = size_; i < n; ++i) d[i] = T{};
    size_ = static_cast<std::uint32_t>(n);
  }

  void assign(std::size_t n, const T& value) {
    reserve(n);
    T* d = data();
    for (std::size_t i = 0; i < n; ++i) d[i] = value;
    size_ = static_cast<std::uint32_t>(n);
  }

  void push_back(const T& value) {
    reserve(size_ + 1);
    data()[size_++] = value;
  }

  void clear() { size_ = 0; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    const T* pa = a.data();
    const T* pb = b.data();
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(pa[i] == pb[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }

 private:
  void copy_from(const SmallVec& other) {
    reserve(other.size_);
    if (other.size_ != 0) {
      std::memcpy(data(), other.data(), other.size_ * sizeof(T));
    }
    size_ = other.size_;
  }

  /// Move payload out of `other`; assumes *this owns no heap block.
  void steal(SmallVec& other) noexcept {
    if (other.cap_ != N) {  // steal the heap block
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.cap_ = static_cast<std::uint32_t>(N);
      other.size_ = 0;
    } else {
      if (other.size_ != 0) {
        std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      }
      cap_ = static_cast<std::uint32_t>(N);
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  void release() {
    if (cap_ != N) delete[] heap_;
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = static_cast<std::uint32_t>(N);
  union {
    alignas(T) unsigned char inline_[N * sizeof(T)];
    T* heap_;
  };
};

}  // namespace decmon
