// Vector clocks for causal ordering of events in asynchronous distributed
// programs (Lamport / Mattern-Fidge clocks; Definitions 1-2 of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>

#include "decmon/util/small_vec.hpp"

namespace decmon {

/// Causal relation between two vector clocks.
enum class Causality {
  kEqual,       ///< identical clocks
  kBefore,      ///< lhs happened-before rhs
  kAfter,       ///< rhs happened-before lhs
  kConcurrent,  ///< neither happened-before the other
};

/// A fixed-width vector clock over `n` processes.
///
/// Component `i` counts the events of process `i` known to the clock's owner.
/// Comparisons implement the happened-before partial order: `a < b` iff
/// `a[i] <= b[i]` for all `i` and `a != b`.
///
/// Storage is inline for up to kInlineComponents processes (the entire bench
/// grid), so clocks piggybacked on messages and copied into events, tokens
/// and views never allocate; wider systems spill to the heap transparently.
class VectorClock {
 public:
  static constexpr std::size_t kInlineComponents = 8;

  VectorClock() = default;
  explicit VectorClock(std::size_t n) : v_(n) {}
  VectorClock(std::initializer_list<std::uint32_t> init) : v_(init) {}

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  std::uint32_t operator[](std::size_t i) const { return v_[i]; }
  std::uint32_t& operator[](std::size_t i) { return v_[i]; }
  std::uint32_t at(std::size_t i) const { return v_.at(i); }

  /// Increment component `i` (a new local event at process `i`).
  void tick(std::size_t i) { ++v_.at(i); }

  /// Component-wise maximum, in place (message receive).
  void merge(const VectorClock& other);

  /// Component-wise maximum, returning a new clock.
  static VectorClock max(const VectorClock& a, const VectorClock& b);

  /// Causal relation between `*this` and `other`. Requires equal sizes.
  Causality compare(const VectorClock& other) const;

  /// True iff `*this` happened-before `other` (strictly).
  bool happened_before(const VectorClock& other) const {
    return compare(other) == Causality::kBefore;
  }

  /// True iff the clocks are incomparable.
  bool concurrent_with(const VectorClock& other) const {
    return compare(other) == Causality::kConcurrent;
  }

  /// True iff `a[i] <= b[i]` for all components (reflexive causal order).
  bool leq(const VectorClock& other) const;

  /// Sum of all components (number of events covered by the clock).
  std::uint64_t total() const;

  bool operator==(const VectorClock& other) const { return v_ == other.v_; }
  bool operator!=(const VectorClock& other) const { return v_ != other.v_; }

  const SmallVec<std::uint32_t, kInlineComponents>& components() const {
    return v_;
  }

  /// Render as "[a, b, c]".
  std::string to_string() const;

 private:
  SmallVec<std::uint32_t, kInlineComponents> v_;
};

std::ostream& operator<<(std::ostream& os, const VectorClock& vc);

struct VectorClockHash {
  std::size_t operator()(const VectorClock& vc) const noexcept;
};

}  // namespace decmon
