// Small string helpers shared across modules (formatting for diagnostics,
// DOT dumps, and bench table output).
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace decmon {

/// Join the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Render any streamable value via operator<<.
template <typename T>
std::string to_display(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Split on a single character, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep);

}  // namespace decmon
