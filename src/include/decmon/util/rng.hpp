// Deterministic random sources. All randomness in the library flows from
// explicit 64-bit seeds so that every experiment row is replayable.
#pragma once

#include <cstdint>
#include <random>

namespace decmon {

/// SplitMix64: tiny, high-quality seed expander. Used to derive independent
/// streams (per process, per replication) from one experiment seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive the `index`-th child seed of `seed` (independent streams).
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) {
  SplitMix64 sm(seed ^ (0xA5A5A5A5A5A5A5A5ull + index * 0x9E3779B97F4A7C15ull));
  sm.next();
  return sm.next();
}

/// Normal-distribution sampler truncated at a minimum value, matching the
/// paper's N(mu, sigma) wait times between events (which cannot be negative).
class NormalWait {
 public:
  NormalWait(double mean, double sigma, std::uint64_t seed, double min = 0.0)
      : engine_(seed), dist_(mean, sigma), min_(min) {}

  double sample() {
    double x = dist_(engine_);
    return x < min_ ? min_ : x;
  }

  double mean() const { return dist_.mean(); }
  double sigma() const { return dist_.stddev(); }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> dist_;
  double min_;
};

}  // namespace decmon
