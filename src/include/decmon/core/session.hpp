// MonitorSession: the library's front door. Bundles an atom registry, a
// property (LTL text, formula, or pre-built monitor automaton) and runs
// monitored executions over the simulation runtime, collecting the metrics
// the paper's evaluation reports.
//
// Typical use:
//   auto session = decmon::MonitorSession::from_text(
//       "G((P0.p) U (P1.p && P2.p))", decmon::paper::make_registry(3));
//   decmon::RunResult r = session.run(trace);
//   if (r.verdict.violated()) ...
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/distributed/sim_runtime.hpp"
#include "decmon/distributed/trace.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"
#include "decmon/monitor/predicate.hpp"
#include "decmon/monitor/property_registry.hpp"

namespace decmon {

/// Outcome + metrics of one monitored run (the paper's measurements, §5.2).
struct RunResult {
  SystemVerdict verdict;

  std::uint64_t program_events = 0;    ///< internal + send + receive
  std::uint64_t app_messages = 0;      ///< program messages on the wire
  std::uint64_t monitor_messages = 0;  ///< monitoring messages on the wire
  double program_end = 0.0;            ///< last program activity (s)
  double monitor_end = 0.0;            ///< last monitor activity (s)

  /// Total global views created across all monitors (Fig. 5.8's metric).
  std::uint64_t total_global_views = 0;

  /// Average events queued behind outstanding tokens (Fig. 5.7's metric).
  double average_delayed_events = 0.0;

  /// The paper's normalized delay formula (§5.3):
  /// ((MonitorExtraTime / ProgramTime) * 100) / TotalGlobalViews.
  double delay_time_percent_per_view() const;
};

class MonitorSession {
 public:
  /// Own the registry and the monitor automaton (wrapped into a private
  /// PropertyArtifact; the artifact is not shared with anyone else).
  MonitorSession(AtomRegistry registry, MonitorAutomaton automaton);

  /// Share an existing immutable artifact -- zero-copy admission: no
  /// registry/automaton/property is built or copied, the session only bumps
  /// the artifact's refcount (see paper::shared_property and the
  /// CompiledPropertyRegistry). The artifact outlives the session even if
  /// every cache is cleared meanwhile.
  explicit MonitorSession(SharedProperty artifact);

  /// Parse + synthesize from LTL text.
  static MonitorSession from_text(const std::string& property,
                                  AtomRegistry registry,
                                  const SynthesisOptions& options = {});

  const AtomRegistry& registry() const { return artifact_->registry(); }
  const MonitorAutomaton& automaton() const { return artifact_->automaton(); }
  const CompiledProperty& property() const { return artifact_->property(); }

  /// Run the trace under the deterministic simulator with decentralized
  /// monitors attached.
  RunResult run(const SystemTrace& trace, const SimConfig& sim = {},
                const MonitorOptions& options = {}) const;

  /// Same workload, centralized baseline monitor (§6.2.3.1).
  RunResult run_centralized(const SystemTrace& trace,
                            const SimConfig& sim = {},
                            int central_node = 0) const;

  /// Offline monitoring (§6.2.1): replay the decentralized monitors over a
  /// recorded computation (see decmon/lattice/event_log.hpp) under the
  /// asynchronous delivery schedule selected by `seed`. Event letters must
  /// match this session's registry (relabel() after loading a log).
  RunResult replay(const Computation& computation, std::uint64_t seed = 1,
                   const MonitorOptions& options = {}) const;

  /// Ground truth: run the program unmonitored, then evaluate the full
  /// lattice oracle over the recorded computation. Exponential; intended
  /// for tests and small studies.
  OracleResult oracle(const SystemTrace& trace, const SimConfig& sim = {},
                      std::size_t max_nodes = std::size_t{1} << 22) const;

 private:
  // Heap-pinned so the CompiledProperty's internal pointers survive moves;
  // shared so admission of a known property copies nothing.
  SharedProperty artifact_;
};

}  // namespace decmon
