// The paper's benchmark properties A-F (§5.1), scaled over n processes, and
// their monitor automata built exactly in the shape of the thesis figures
// (Fig. 5.2/5.3): unreduced Moore machines with one conjunctive-predicate
// transition per disjunct. The thesis deliberately uses these "complicated"
// versions rather than the fully minimized automata ("it provides more
// information as q1 is a ? state"), so Table 5.1's transition counts are a
// property of this construction; our synthesized-and-minimized automata are
// available for comparison through decmon::synthesize_monitor.
#pragma once

#include <string>
#include <vector>

#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/distributed/trace.hpp"
#include "decmon/ltl/atoms.hpp"
#include "decmon/ltl/formula.hpp"
#include "decmon/monitor/property_registry.hpp"

namespace decmon::paper {

enum class Property { kA, kB, kC, kD, kE, kF };

constexpr Property kAllProperties[] = {Property::kA, Property::kB,
                                       Property::kC, Property::kD,
                                       Property::kE, Property::kF};

std::string name(Property p);

/// Registry for the case study: every process has boolean variables p and q,
/// with atoms registered in the fixed order P0.p, P0.q, P1.p, P1.q, ...
AtomRegistry make_registry(int num_processes);

/// The scaled LTL text of a property, e.g. A(4) =
/// "G((P0.p && P1.p) U (P2.p && P3.p))".
std::string formula_text(Property p, int num_processes);

/// Parse the scaled formula against `registry` (made by make_registry).
FormulaPtr formula(Property p, int num_processes, AtomRegistry& registry);

/// Build the thesis-shaped monitor automaton for the property. `registry`
/// must come from make_registry(num_processes). The result is validated
/// (deterministic + complete).
///
/// Results are memoized process-wide, keyed by (formula text, registry atom
/// signature): the bench grid, the fuzz drivers, repeated sessions and the
/// sharded service request identical automata thousands of times, and
/// construction + validation + dispatch-table build is pure. Cache hits
/// return a copy -- callers that only need read access should prefer
/// shared_property(), which returns the memoized artifact itself with no
/// copy. Thread-safe: hits run concurrently under a shared lock (the
/// service's shards all warm their catalogs from this one memo); misses
/// serialize only the insert.
MonitorAutomaton build_automaton(Property p, int num_processes,
                                 const AtomRegistry& registry);

/// build_automaton without the memo or the AOT registry: always constructs,
/// validates, and builds the dispatch table. The reference path for
/// decmon_gen and the generated-vs-synthesized equivalence tests.
MonitorAutomaton build_automaton_uncached(Property p, int num_processes,
                                          const AtomRegistry& registry);

/// Zero-copy admission: the shared immutable artifact (registry + automaton
/// + compiled property) for the scaled paper property. Lookup order:
///   1. the process-wide memo (hit = refcount bump, no copy);
///   2. the CompiledPropertyRegistry of ahead-of-time generated monitors
///      (src/generated/), keyed formula text + atom signature -- a known
///      property admits with zero synthesis;
///   3. runtime synthesis (build_automaton_uncached), memoized for next
///      time.
/// `registry` must match make_registry(num_processes) in signature for the
/// AOT step to hit; any registry of num_processes processes is accepted
/// (the artifact then owns a copy of it). Thread-safe; clearing either
/// cache never invalidates artifacts already handed out (shared_ptr keeps
/// them alive).
SharedProperty shared_property(Property p, int num_processes,
                               const AtomRegistry& registry);

/// Registry fingerprint pinning every input automaton construction reads:
/// process count plus each atom's (name, process, var, op, rhs). Two
/// registries with the same signature yield byte-identical automata; the
/// synthesis cache and the AOT CompiledPropertyRegistry key on it.
std::string atom_signature(const AtomRegistry& registry);

/// Hit/miss counters for the build_automaton memo (process-wide,
/// monotonic; thread-safe snapshot).
struct SynthesisCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
SynthesisCacheStats synthesis_cache_stats();

/// Drop every memoized automaton and zero the counters (tests).
void synthesis_cache_clear();

/// Workload parameters for the experiments of Chapter 5: Evt ~ N(3, 1),
/// Comm ~ N(comm_mu, 1), with the proposition distribution tuned per
/// property so monitoring stays live for most of the run ("the variable
/// valuation change events were designed such that there would be a path in
/// the execution lattice that would lead to a final state", §5.1): the
/// G-shaped properties A/C/D/F start true with a high truth bias; the
/// F-shaped properties B/E start false with an even bias.
TraceParams experiment_params(Property p, int num_processes,
                              std::uint64_t seed, double comm_mu = 3.0,
                              bool comm_enabled = true,
                              int internal_events = 25);

}  // namespace decmon::paper
