// Shared immutable property artifacts and the process-wide registry of
// ahead-of-time compiled monitors.
//
// A PropertyArtifact bundles the three objects whose lifetimes are coupled
// by CompiledProperty's internal pointers -- the atom registry, the monitor
// automaton (dispatch table built), and the compiled property -- into one
// immutable, heap-pinned unit. Sessions, monitor replicas, and service
// shard catalogs share it by `shared_ptr<const ...>`: admission of a known
// property is a lookup plus a refcount bump, and no copy of the automaton
// or its dispatch tables is ever made on the hot path.
//
// The CompiledPropertyRegistry holds artifacts compiled ahead of time by
// tools/decmon_gen (the checked-in sources under src/generated/), keyed by
// `formula text` + `atom signature`. paper::shared_property consults it
// before any runtime synthesis; a formula that is present but whose
// recorded signature does not match the live registry (a stale generated
// artifact) is REJECTED -- counted in Stats::mismatches -- and the caller
// falls back to runtime synthesis.
//
// Lifetime rule: clearing the registry or the synthesis cache never
// invalidates live monitors -- outstanding shared_ptrs keep their artifact
// alive until the last session drops it (see the clear() contract).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "decmon/ltl/atoms.hpp"
#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/monitor/predicate.hpp"

namespace decmon {

/// Registry + automaton + compiled property as one immutable unit. Neither
/// copyable nor movable: CompiledProperty holds raw pointers into the
/// sibling members, so the artifact lives at a fixed address (always behind
/// a shared_ptr -- see SharedProperty).
class PropertyArtifact {
 public:
  /// Takes ownership of both inputs; builds the automaton's dispatch table
  /// if not already built, then compiles the property against the registry.
  PropertyArtifact(AtomRegistry registry, MonitorAutomaton automaton);

  PropertyArtifact(const PropertyArtifact&) = delete;
  PropertyArtifact& operator=(const PropertyArtifact&) = delete;

  const AtomRegistry& registry() const { return registry_; }
  const MonitorAutomaton& automaton() const { return automaton_; }
  const CompiledProperty& property() const { return property_; }

 private:
  AtomRegistry registry_;
  MonitorAutomaton automaton_;
  CompiledProperty property_;  ///< points into the two members above
};

/// The unit of sharing: one artifact, any number of sessions.
using SharedProperty = std::shared_ptr<const PropertyArtifact>;

/// A handle to the artifact's CompiledProperty that keeps the whole
/// artifact alive (shared_ptr aliasing): what MonitorProcess and
/// DecentralizedMonitor hold.
inline std::shared_ptr<const CompiledProperty> property_handle(
    const SharedProperty& artifact) {
  return std::shared_ptr<const CompiledProperty>(artifact,
                                                 &artifact->property());
}

/// Process-wide catalog of ahead-of-time compiled properties.
///
/// Entries are keyed by formula text; each formula may carry several
/// (atom signature, artifact) rows. find() returns the artifact whose
/// signature matches the live registry exactly, or nullptr -- and when the
/// formula is known but every signature differs (the generated code
/// predates a registry/synthesizer change) the miss is counted separately
/// as a mismatch, so fleets can see stale artifacts in their stats.
///
/// Thread-safe. The built-in generated set (src/generated/) is registered
/// on first instance() access.
class CompiledPropertyRegistry {
 public:
  struct Stats {
    std::uint64_t registered = 0;  ///< artifacts added (tombstones included)
    std::uint64_t hits = 0;        ///< find(): formula + signature matched
    std::uint64_t misses = 0;      ///< find(): formula unknown
    std::uint64_t mismatches = 0;  ///< find(): formula known, signature stale
  };

  static CompiledPropertyRegistry& instance();

  /// Register `artifact` under (formula, signature). A null artifact is a
  /// tombstone: it marks the formula as generated-but-stale, so lookups
  /// count a mismatch instead of a plain miss (and still fall back to
  /// synthesis). Later registrations for the same (formula, signature)
  /// shadow earlier ones.
  void add(const std::string& formula, const std::string& signature,
           SharedProperty artifact);

  /// The artifact for (formula, signature), or nullptr. Never synthesizes.
  SharedProperty find(const std::string& formula,
                      const std::string& signature);

  Stats stats() const;

  /// Drop every entry and zero the counters, then re-register the built-in
  /// generated set (tests). Artifacts handed out earlier stay alive through
  /// their outstanding shared_ptrs -- clearing the registry never
  /// invalidates a live monitor.
  void clear();

 private:
  struct Entry {
    std::string signature;
    SharedProperty artifact;  ///< null = tombstone (stale generated code)
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::vector<Entry>> entries_;
  std::atomic<std::uint64_t> registered_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> mismatches_{0};
};

}  // namespace decmon
