// Global views: one per lattice path a monitor traces (§4.2). A view holds
// the frontier cut it believes in, the believed local letters, the current
// automaton state and a cursor into the monitor's shared local-event
// history marking the next event this view has yet to consume.
#pragma once

#include <cstdint>
#include <string>

#include "decmon/ltl/atoms.hpp"
#include "decmon/util/small_vec.hpp"

namespace decmon {

struct GlobalView {
  std::uint64_t id = 0;

  /// Frontier cut: per-process sequence number of the last included event.
  /// Inline up to 8 processes so forking a view is allocation-free.
  SmallVec<std::uint32_t, 8> cut;

  /// Believed local letters at the cut frontier.
  SmallVec<AtomSet, 8> gstate;

  /// Current monitor automaton state.
  int q = 0;

  /// True while a token created by this view is outstanding; the cursor
  /// stalls meanwhile (the paper's waiting status).
  bool waiting = false;
  std::uint64_t token_id = 0;

  /// True when a copy was forked to continue the path, making this view a
  /// pure launchpad that dies once its token resolves (keepAfterFork).
  bool forked_copy = false;

  /// Cursor into MonitorProcess::history_: the sn of the next local event
  /// this view has not consumed yet. Views never copy events -- the event
  /// backlog of a view is exactly history_[next_sn, history_.size()), and
  /// the invariant next_sn <= history_.size() always holds.
  std::uint32_t next_sn = 0;

  /// Probe-deduplication signature (optimization §4.3.2).
  std::uint64_t probe_sig = 0;

  /// Marked for removal; swept after the current dispatch round.
  bool dead = false;

  /// The view's position is no longer certified to lie on any lattice path
  /// (it consumed an event inconsistently and its probe resolved without a
  /// fork or a certified stay-point). A quarantined view keeps draining and
  /// keeps contributing its '?' verdict -- killing it loses real '?' paths
  /// -- but it launches no further probes (its position cannot anchor a
  /// sound token walk) and never displaces a healthy view in the merge
  /// passes. It can never consistently step again: its remote cut
  /// components are frozen while local vector clocks only grow.
  bool quarantined = false;

  AtomSet combined_letter() const {
    AtomSet a = 0;
    for (AtomSet s : gstate) a |= s;
    return a;
  }

  std::string to_string() const;
};

}  // namespace decmon
