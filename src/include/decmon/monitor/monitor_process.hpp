// MonitorProcess: one decentralized monitor replica M_i (Algorithms 1-5).
//
// The monitor is a pure state machine: it receives local events, tokens and
// termination signals through methods, and sends tokens through an injected
// MonitorNetwork. It performs no I/O and keeps no threads of its own, so
// the same object runs under the deterministic simulator, the real-thread
// runtime, and direct unit tests.
//
// Responsibilities (paper section in parentheses):
//   * maintain the set of global views tracing lattice paths (4.2)
//   * evaluate the deterministic automaton on consistent local advances
//   * create and route tokens to detect conjunctive predicates at
//     consistent cuts, distributed-slicing style (4.1 problem 1, 4.2)
//   * fork views at pivot global states, merge equivalent views (4.1
//     problems 2-3, 4.3.2)
//   * flush waiting tokens on termination so every token returns
//     (4.2.0.10, Lemma 1)
//
// Memory discipline (see DESIGN.md §6): the steady-state token path is
// allocation-free. Tokens, token-message shells and global views are
// recycled through per-monitor free lists (each monitor's pools are touched
// only from its own dispatch context, so they need no locks), and all
// per-process arrays have inline small-buffer storage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/distributed/event.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/monitor/global_view.hpp"
#include "decmon/monitor/predicate.hpp"
#include "decmon/monitor/stats.hpp"
#include "decmon/monitor/token.hpp"
#include "decmon/util/small_vec.hpp"

namespace decmon {

/// How token entries search for satisfying cuts.
enum class WalkMode : std::uint8_t {
  /// Entries start at the view's cut and examine every intermediate event,
  /// verifying self-loop feasibility at each consistent frontier: sound
  /// definite verdicts, at the cost of longer token walks (default).
  kExact,
  /// The thesis's behaviour: entries start at the join max(gcut, e.VC),
  /// skipping the intermediate cuts. Cheaper -- message overhead stays
  /// linear in the events, as Fig. 5.4/5.5 report -- but admits verdicts on
  /// paths that do not exist (see EXPERIMENTS.md for a pinned example).
  kJoinJump,
};

/// An intentional resource bound tripped (max_views or max_history): the
/// monitored run exceeded its configured budget. Derives from
/// std::length_error so existing cap handling keeps working, but is a
/// distinct type so harnesses can tell "hit the configured bound" from a
/// genuine error. The throwing monitor is left in a valid, checkpointable
/// state (no half-applied mutation, all staged sends flushed).
class MonitorOverflow : public std::length_error {
 public:
  using std::length_error::length_error;
};

/// How flush_staged accounts bytes-on-wire. kExact stamps every flushed
/// frame with a counting-encode pass (the mode the codec tests pin);
/// kSampled stamps only every `wire_sample_stride`-th frame and
/// MonitorStats::estimated_bytes_sent() extrapolates -- the size walk was
/// measurably taxing the in-process fast path (DESIGN.md §9), and sampling
/// recovers it while keeping the estimate within the stride's noise.
enum class WireAccounting : std::uint8_t { kExact, kSampled };

struct MonitorOptions {
  WalkMode walk_mode = WalkMode::kExact;

  /// Suppress duplicate probes for the same (state, transition set, belief)
  /// signature (optimization §4.3.2).
  bool dedupe_probes = true;

  /// When an enabled transition spawns a view, delete sibling entries that
  /// target the same automaton state (optimization §4.3.3).
  bool prune_same_destination = true;

  /// Stop probing from states where no definite verdict is reachable any
  /// more (automaton static analysis, future-work 7.2.2): the verdict is
  /// settled at '?' forever, so tokens there are pure overhead.
  bool prune_settled_states = true;

  /// Drop views subsumed by another view at the same automaton state with a
  /// larger cut agreeing on the shared frontier (the slice-merge side of
  /// 4.3.2); keeps the live view count near the automaton size.
  bool subsume_views = true;

  /// Keep at most one settled view per automaton state (the most advanced
  /// cut). This is the aggressive reading of the paper's merge ("the final
  /// number of global views is bounded by the number of automaton states",
  /// 4.4.1) and what keeps its overhead linear; the dropped views' unprobed
  /// branches are covered by the surviving view and the peers' probes.
  bool merge_by_state = true;

  /// Route tokens preferring transitions whose target state is closer to a
  /// definite verdict (automaton static analysis, future-work 7.2.2 /
  /// SendToNextProcess tuning note in 4.2.0.8).
  bool prioritize_near_verdict = true;

  /// Bytes-on-wire accounting mode (see WireAccounting above).
  WireAccounting wire_accounting = WireAccounting::kExact;
  /// Sampling stride under kSampled: frame k is measured iff
  /// k % wire_sample_stride == 0 (the first frame always is, so a run that
  /// sends anything always measures something).
  std::uint32_t wire_sample_stride = 16;

  /// Hard cap on simultaneously live views (debugging guard; 0 = none).
  std::size_t max_views = 0;

  /// Streaming posture (DESIGN.md §12): periodically trim the prefix of the
  /// shared history that no live lattice path -- local or remote -- can
  /// revisit, behind a base-offset indirection so cursors stay stable.
  /// Monitors gossip per-process GC floors so remote walks are never cut
  /// off. Off by default: finite-trace runs keep the full history and send
  /// no floor messages, so their goldens are untouched.
  bool streaming = false;
  /// Local events between GC sweeps (floor gossip + prefix trim) when
  /// streaming; 0 falls back to the default cadence.
  std::uint32_t gc_interval = 64;
  /// Hard cap on the retained history window (events kept after GC; 0 =
  /// none). Exceeding it throws MonitorOverflow -- the memory analogue of
  /// max_views.
  std::size_t max_history = 0;

  /// Optional trace sink: receives one line per significant monitor action
  /// (probe creation, entry resolution, view spawn/resurrect). For
  /// debugging and the examples' verbose modes; null = silent.
  std::function<void(const std::string&)> trace;
};

class CheckpointCodec;

class MonitorProcess {
 public:
  /// `initial_letters[p]` is process p's local letter at its initial state
  /// (the monitor receives the initial global state as input, Alg. 1).
  /// The shared overload pins the property's owning artifact for the
  /// replica's lifetime; the raw-pointer overload wraps a non-owning handle
  /// (caller guarantees the property outlives the replica).
  MonitorProcess(int index, std::shared_ptr<const CompiledProperty> property,
                 MonitorNetwork* network,
                 std::vector<AtomSet> initial_letters,
                 MonitorOptions options = {});
  MonitorProcess(int index, const CompiledProperty* property,
                 MonitorNetwork* network,
                 std::vector<AtomSet> initial_letters,
                 MonitorOptions options = {})
      : MonitorProcess(index,
                       std::shared_ptr<const CompiledProperty>(
                           std::shared_ptr<const void>(), property),
                       network, std::move(initial_letters), options) {}

  // -- runtime-facing interface --
  void on_local_event(const Event& event, double now);
  void on_local_termination(double now);
  void on_token(Token token, double now);
  void on_peer_termination(int peer, std::uint32_t last_sn, double now);
  /// Deliver a batched frame: each unit dispatches like a bare token /
  /// termination message, and the responses the units provoke are
  /// themselves flushed as batched frames when the whole frame is done.
  /// Takes ownership of the frame shell (it lands in this monitor's pool).
  void on_frame(std::unique_ptr<PayloadFrame> frame, double now);
  /// GC floor gossip from `peer` (streaming posture): the peer's live views
  /// will never again reference our events below `floor`. Monotone within
  /// one `epoch` -- duplicated or reordered floors are absorbed by the max.
  /// A higher epoch (the peer restarted from a checkpoint) REPLACES the
  /// stored floor, clamping it down to the rewound promise; floors from a
  /// lower (pre-crash) epoch are stale and ignored (DESIGN.md §13).
  void on_history_floor(int peer, std::uint32_t floor, std::uint32_t epoch,
                        double now);
  /// Floor-resync handshake (DESIGN.md §13): called by the recovery layer
  /// after this monitor is restored from a checkpoint. Bumps the
  /// advertisement epoch and re-advertises the restored (possibly rewound)
  /// per-peer floors so peers clamp their folds instead of trusting the
  /// pre-crash promises. No-op outside the streaming posture.
  void resync_floors(double now);

  /// Return a drained TokenMessage shell (its token moved out) to this
  /// monitor's free list: the next token this monitor sends reuses it.
  /// Called by the dispatch layer from this monitor's own node context.
  void recycle_token_payload(std::unique_ptr<TokenMessage> shell);

  // -- results --
  int index() const { return index_; }

  /// Monitor fully drained: program over everywhere, no waiting or
  /// outstanding tokens.
  bool finished() const { return finished_; }

  /// Automaton states currently held by live views.
  std::set<int> current_states() const;

  /// Verdicts of the current views, plus any definite verdict declared
  /// earlier (final states are absorbing so they persist in views too).
  std::set<Verdict> verdicts() const;

  /// Definite verdicts declared so far (satisfaction/violation events).
  const std::set<Verdict>& declared() const { return declared_; }

  const MonitorStats& stats() const { return stats_; }
  std::size_t num_views() const;
  std::size_t num_waiting_tokens() const { return w_tokens_.size(); }
  /// First retained history sequence number (0 unless streaming GC trimmed).
  std::uint32_t history_base() const { return history_base_; }
  /// Retained history window size (events currently held).
  std::size_t history_size() const { return history_.size(); }
  /// One past the last appended sequence number (the pre-GC history size).
  std::uint32_t history_end() const {
    return history_base_ + static_cast<std::uint32_t>(history_.size());
  }
  /// The highest sequence number safe to trim below: the min over live-view
  /// cursors, parked-token cuts, and the gossiped peer floors (so the fold
  /// driven by on_history_floor is observable without touching internals).
  std::uint32_t trim_bound() const;
  /// Streaming GC sweep: gossip our per-peer floors, then trim the history
  /// prefix no live path -- local cursor, parked token, or remote walk
  /// (bounded by the gossiped peer floors) -- can revisit. Driven on the
  /// gc_interval cadence internally; public so recovery tooling and tests
  /// can force a sweep at an exact boundary.
  void gc_sweep(double now);

  /// Callback invoked on each declared satisfaction/violation (optional).
  using VerdictCallback = std::function<void(Verdict, double now)>;
  void set_verdict_callback(VerdictCallback cb) { on_verdict_ = std::move(cb); }

 private:
  // -- shared history window (DESIGN.md §12) --
  /// Event by absolute sequence number; `sn` must lie in the retained
  /// window [history_base_, history_end()).
  const Event& event_at(std::uint32_t sn) const {
    return history_[static_cast<std::size_t>(sn - history_base_)];
  }
  /// Stage one HistoryFloorMessage per peer carrying the current per-peer
  /// floors (min live-view cut component) under floor_epoch_. Silent when no
  /// view is live: the last advertisement then stands and is vacuously
  /// satisfiable, since every future walk descends from an existing view.
  void advertise_floors();

  // -- event path (Alg. 2) --
  void drain(GlobalView& gv, double now);
  void process_event(GlobalView& gv, const Event& e, double now);
  /// Probe the outgoing transitions of gv.q (plus those of
  /// `extra_from_state` when >= 0 -- the pre-advance state, whose other
  /// branches remain reachable through concurrent remote events).
  void probe_outgoing(GlobalView& gv, const Event& e, bool consistent,
                      double now, int extra_from_state = -1);

  // -- token path (Alg. 3-5) --
  /// Walk the token over local history from its target event; parks it in
  /// w_tokens_ when the event has not happened yet.
  void process_token(Token token, double now);
  /// Apply local event `e` to the entries targeting it (Alg. 4-5).
  void apply_event_to_token(Token& token, const Event& e);
  /// Retarget entries after evaluation; returns false when the token wants
  /// to stay at this monitor (waiting for a later local event). On true the
  /// token has been consumed (sent, recycled, or handled as returned).
  bool route_token(Token& token, double now);
  /// Handle a token created here that has come home.
  void handle_returned_token(Token token, double now);
  /// Create the view for an enabled entry's pivot cut; its cursor starts
  /// just past the cut's local component, replaying the shared history.
  void spawn_view(const TransitionEntry& entry, double now);

  // -- send coalescing (DESIGN.md §9) --
  /// Queue an outgoing payload for `dest`. Nothing touches the network
  /// until flush_staged() at the end of the current top-level dispatch, so
  /// a burst of token hops to one peer leaves as one frame.
  void stage_send(int dest, std::unique_ptr<NetPayload> unit);
  /// Group the staged sends into per-destination frames (consecutive
  /// same-destination runs, preserving send order) and hand them to the
  /// network. No-op while a dispatch is still on the stack.
  void flush_staged();

  // -- free lists (all used from this monitor's dispatch context only) --
  Token acquire_token();
  void recycle_token(Token&& token);
  std::unique_ptr<TokenMessage> acquire_token_payload();
  std::unique_ptr<PayloadFrame> acquire_frame();
  void recycle_frame(std::unique_ptr<PayloadFrame> frame);
  GlobalView acquire_view();

  // -- bookkeeping --
  GlobalView* find_view_by_token(std::uint64_t token_id);
  void declare(int q, double now);
  void merge_similar_views();
  void sweep_dead_views();
  void flush_waiting_tokens(double now);
  void check_finished(double now);
  void sample_pending();
  std::uint64_t probe_signature(const GlobalView& gv,
                                const SmallVec<int, 32>& tids) const;

  int index_;
  int n_;
  /// Shared read-only with every other replica and session on the same
  /// property; the shared_ptr (usually aliasing a PropertyArtifact) keeps
  /// the automaton + registry it points into alive.
  std::shared_ptr<const CompiledProperty> prop_;
  MonitorNetwork* net_;
  MonitorOptions options_;

  /// Local events by sn (0 = initial). Shared, append-only: views index
  /// into it with their next_sn cursors instead of holding event copies.
  /// Under the streaming posture gc_sweep trims a prefix; history_[k] then
  /// holds the event with absolute sn == history_base_ + k (use event_at).
  std::vector<Event> history_;
  /// Absolute sn of history_[0]; 0 until streaming GC first trims.
  std::uint32_t history_base_ = 0;
  /// Per-peer GC floors received via gossip: peer j's live views never
  /// reference our events below peer_floor_[j]. Monotone nondecreasing
  /// within peer_floor_epoch_[j]; a peer's epoch bump (crash + restore)
  /// replaces the slot, the one sanctioned regression (DESIGN.md §13).
  std::vector<std::uint32_t> peer_floor_;
  /// Advertisement epoch of the stored peer_floor_[j] value.
  std::vector<std::uint32_t> peer_floor_epoch_;
  /// Our own advertisement epoch: bumped by resync_floors after a
  /// checkpoint restore, stamped on every outgoing floor message.
  std::uint32_t floor_epoch_ = 0;
  /// Local events since the last gc_sweep (streaming cadence counter).
  std::uint32_t events_since_gc_ = 0;
  /// Deque: views are pushed while references to existing views are live on
  /// the dispatch stack; deque growth never invalidates references.
  std::deque<GlobalView> views_;
  std::vector<Token> w_tokens_;  ///< tokens waiting for future local events
  std::vector<std::uint32_t> peer_last_sn_;  ///< UINT32_MAX = running
  bool local_terminated_ = false;
  bool finished_ = false;
  int dispatch_depth_ = 0;  ///< guards view-vector sweeps during re-entrancy

  /// Outgoing payloads staged during the current dispatch; drained by
  /// flush_staged() when the top-level entry point unwinds. The vector (and
  /// each pooled frame's unit vector) keeps its capacity across flushes, so
  /// steady-state staging allocates nothing.
  struct StagedSend {
    int dest;
    std::unique_ptr<NetPayload> unit;
  };
  std::vector<StagedSend> staged_;

  /// Free lists. Tokens and views recycle their spilled capacity; payload
  /// shells recycle the TokenMessage object itself (the receiver returns
  /// the husk after moving the token out); frame shells circulate the same
  /// way through on_frame. Bounded so pathological runs cannot hoard
  /// memory.
  std::vector<Token> token_pool_;
  std::vector<std::unique_ptr<TokenMessage>> payload_pool_;
  std::vector<std::unique_ptr<PayloadFrame>> frame_pool_;
  std::vector<GlobalView> view_pool_;

  /// Scratch for merge_similar_views (never re-entered; capacity persists).
  std::vector<GlobalView*> merge_settled_;
  std::unordered_map<std::uint64_t, GlobalView*> merge_seen_;
  std::vector<GlobalView*> merge_best_;

  /// Outstanding probe signatures (dedupe in O(1); mirrors the waiting
  /// views' probe_sig fields).
  std::unordered_set<std::uint64_t> outstanding_sigs_;

  /// (state, cut) pairs ever spawned: a pivot detected twice (by different
  /// tokens) must not fork twice -- the first view already traces that
  /// path. Bounds the spawn cascade on wide lattices.
  std::unordered_set<std::uint64_t> spawned_memo_;

  std::uint64_t next_token_serial_ = 1;
  std::uint64_t next_view_id_ = 1;
  std::set<Verdict> declared_;
  VerdictCallback on_verdict_;
  MonitorStats stats_;

  /// Serializes/restores the algorithmic state above for crash recovery
  /// (checkpoint.hpp). Pools, merge scratch, callbacks and stats are
  /// explicitly not state.
  friend class CheckpointCodec;
};

}  // namespace decmon
