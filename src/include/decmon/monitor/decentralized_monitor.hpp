// DecentralizedMonitor: the full monitoring layer -- one MonitorProcess
// replica per program process, wired to a runtime through MonitorHooks /
// MonitorNetwork. This is what a user attaches to a SimRuntime or
// ThreadRuntime to monitor a property.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "decmon/distributed/runtime.hpp"
#include "decmon/monitor/monitor_process.hpp"
#include "decmon/monitor/predicate.hpp"
#include "decmon/monitor/stats.hpp"

namespace decmon {

/// Aggregated outcome of a monitored run.
struct SystemVerdict {
  /// Union of verdict sets over all monitors (the set Lambda of Ch. 3).
  std::set<Verdict> verdicts;
  /// Union of automaton states held by final global views.
  std::set<int> states;
  bool all_finished = false;
  double first_violation_time = -1.0;
  double first_satisfaction_time = -1.0;
  MonitorStats aggregate;
  std::vector<MonitorStats> per_monitor;

  bool violated() const { return verdicts.count(Verdict::kFalse) > 0; }
  bool satisfied() const { return verdicts.count(Verdict::kTrue) > 0; }
};

class DecentralizedMonitor final : public MonitorHooks {
 public:
  /// `initial_letters[p]`: process p's initial local letter (every monitor
  /// replica receives the full initial global state, Alg. 1). The shared
  /// overload keeps the property's owning artifact alive for the monitor's
  /// lifetime (zero-copy admission); the raw-pointer overload wraps a
  /// non-owning handle -- the caller guarantees the property outlives the
  /// monitor, as before.
  DecentralizedMonitor(std::shared_ptr<const CompiledProperty> property,
                       MonitorNetwork* network,
                       std::vector<AtomSet> initial_letters,
                       MonitorOptions options = {});
  DecentralizedMonitor(const CompiledProperty* property,
                       MonitorNetwork* network,
                       std::vector<AtomSet> initial_letters,
                       MonitorOptions options = {})
      : DecentralizedMonitor(
            std::shared_ptr<const CompiledProperty>(
                std::shared_ptr<const void>(), property),
            network, std::move(initial_letters), options) {}

  // MonitorHooks:
  void on_local_event(int proc, const Event& event, double now) override;
  void on_local_termination(int proc, double now) override;
  void on_monitor_message(MonitorMessage msg, double now) override;

  int num_processes() const { return static_cast<int>(monitors_.size()); }
  MonitorProcess& monitor(int i) {
    return *monitors_.at(static_cast<std::size_t>(i));
  }
  const MonitorProcess& monitor(int i) const {
    return *monitors_.at(static_cast<std::size_t>(i));
  }

  bool all_finished() const;
  SystemVerdict result() const;

 private:
  std::shared_ptr<const CompiledProperty> property_;
  std::vector<std::unique_ptr<MonitorProcess>> monitors_;
  double first_violation_ = -1.0;
  double first_satisfaction_ = -1.0;
};

/// Convenience: build initial letters from initial local states.
std::vector<AtomSet> initial_letters_of(const AtomRegistry& registry,
                                        const std::vector<LocalState>& states);

}  // namespace decmon
