// Property compilation for decentralized evaluation: every monitor
// transition's conjunctive predicate is split by owning process, so a
// monitor can check "is my process forbidding this transition?" against a
// local letter alone (§4.1, problem 1).
#pragma once

#include <vector>

#include "decmon/automata/analysis.hpp"
#include "decmon/automata/guard.hpp"
#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/ltl/atoms.hpp"

namespace decmon {

/// One transition with its guard pre-split per process.
struct CompiledTransition {
  int id = -1;
  int from = -1;
  int to = -1;
  bool self_loop = false;
  /// Does the source state have any self-loop? Cached so the token walk's
  /// feasibility check (X-shaped source states) is a field read.
  bool from_has_self_loop = false;
  Cube guard;
  std::vector<Cube> local;        ///< [proc]: the literals proc owns
  std::vector<int> participants;  ///< processes with non-empty local cubes
};

/// A monitor automaton compiled against an atom registry for `n` processes.
/// Immutable after construction; shared read-only by all monitor replicas
/// (CP.mess: no mutable sharing).
class CompiledProperty {
 public:
  CompiledProperty(const MonitorAutomaton* automaton,
                   const AtomRegistry* registry);

  const MonitorAutomaton& automaton() const { return *automaton_; }
  const AtomRegistry& registry() const { return *registry_; }
  int num_processes() const { return registry_->num_processes(); }

  const CompiledTransition& transition(int id) const {
    return transitions_.at(static_cast<std::size_t>(id));
  }

  /// Outgoing (non-self-loop) transition ids from state `q`.
  const std::vector<int>& outgoing(int q) const {
    return outgoing_.at(static_cast<std::size_t>(q));
  }

  /// Self-loop transition ids at state `q`.
  const std::vector<int>& self_loops(int q) const {
    return self_loops_.at(static_cast<std::size_t>(q));
  }

  /// Deterministic step on a full letter; never fails for complete automata.
  int step(int q, AtomSet letter) const;

  /// The transition taken by `step` (nullptr when none matches). O(1) when
  /// the automaton's dispatch table is built.
  const MonitorTransition* match(int q, AtomSet letter) const {
    return automaton_->matching_transition(q, letter);
  }

  /// Do `proc`'s literals of transition `tid` hold for this local letter?
  /// (If proc does not participate, trivially true.) The per-(transition,
  /// process) cubes are memoized in one flat array at construction, so this
  /// is two masked compares with no pointer chasing -- it is the innermost
  /// conjunct check of every probe and token walk.
  bool locally_satisfied(int tid, int proc, AtomSet local_letter) const {
    return local_flat_[static_cast<std::size_t>(tid) *
                           static_cast<std::size_t>(num_processes_) +
                       static_cast<std::size_t>(proc)]
        .matches(local_letter);
  }

  /// All atoms any guard reads (cached; the probe-signature mask).
  AtomSet relevant_atoms() const { return relevant_atoms_; }

  /// Does state `q` have at least one self-loop?
  bool has_self_loop(int q) const {
    return has_self_loop_[static_cast<std::size_t>(q)] != 0;
  }

  /// Does the whole guard hold for the combined letter?
  bool fully_satisfied(int tid, AtomSet letter) const {
    return transition(tid).guard.matches(letter);
  }

  Verdict verdict(int q) const { return automaton_->verdict(q); }
  bool is_final(int q) const { return automaton_->is_final(q); }
  int initial_state() const { return automaton_->initial_state(); }

  // -- static-analysis facts (future-work 7.2.2) --
  const AutomatonAnalysis& analysis() const { return analysis_; }

  /// No definite verdict reachable from `q`: probing there cannot change
  /// the outcome.
  bool verdict_settled(int q) const { return analysis_.verdict_settled(q); }

  /// Edge distance from `q` to the nearest definite-verdict state.
  int distance_to_verdict(int q) const {
    return analysis_.distance_to_verdict[static_cast<std::size_t>(q)];
  }

 private:
  const MonitorAutomaton* automaton_;
  const AtomRegistry* registry_;
  AutomatonAnalysis analysis_;
  int num_processes_ = 0;
  AtomSet relevant_atoms_ = 0;
  std::vector<CompiledTransition> transitions_;
  std::vector<Cube> local_flat_;  ///< [tid * n + proc] split guards
  std::vector<std::vector<int>> outgoing_;
  std::vector<std::vector<int>> self_loops_;
  std::vector<char> has_self_loop_;  ///< [q]
};

}  // namespace decmon
