// Monitoring-overhead metrics, matching the measurements of Chapter 5:
// message counts (Fig. 5.4/5.5), delayed events (Fig. 5.7), delay time
// (Fig. 5.6) and global views (Fig. 5.8).
#pragma once

#include <cstdint>
#include <string>

namespace decmon {

struct MonitorStats {
  // -- communication --
  std::uint64_t tokens_created = 0;
  std::uint64_t token_messages_sent = 0;  ///< network sends (excl. self)
  std::uint64_t token_hops = 0;           ///< total hops over all tokens
  std::uint64_t termination_messages = 0;

  // -- wire (batched frames; see DESIGN.md §9) --
  std::uint64_t frames_sent = 0;     ///< batched frames flushed to the net
  std::uint64_t frames_sampled = 0;  ///< frames whose size was measured
  std::uint64_t bytes_sent = 0;      ///< wire-v2 encoded bytes, send side
  std::uint64_t bytes_received = 0;  ///< wire-v2 encoded bytes, receive side

  // -- memory --
  std::uint64_t global_views_created = 0;
  std::uint64_t global_views_merged = 0;
  std::uint64_t peak_global_views = 0;
  std::uint64_t peak_waiting_tokens = 0;
  std::uint64_t views_overflowed = 0;  ///< cap breaches (MonitorOverflow)

  // -- streaming GC (DESIGN.md §12; zero when streaming is off) --
  std::uint64_t gc_sweeps = 0;        ///< trim passes run
  std::uint64_t history_trimmed = 0;  ///< events removed from the window
  std::uint64_t peak_history = 0;     ///< max retained history window
  std::uint64_t floor_messages = 0;   ///< GC floor gossip messages sent
  std::uint64_t resync_floors = 0;    ///< floor-resync handshakes after restore

  // -- crash tolerance (filled in from ReliableChannel / CrashInjector
  //    counters by the harnesses; zero on fault-free runs) --
  std::uint64_t retransmissions = 0;    ///< timer-driven channel re-sends
  std::uint64_t acks_sent = 0;          ///< pure-ack channel envelopes
  std::uint64_t dup_suppressed = 0;     ///< deliveries filtered by dedup
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;   ///< total bytes over all checkpoints
  std::uint64_t crash_restarts = 0;

  // -- latency --
  std::uint64_t events_processed = 0;
  std::uint64_t events_delayed = 0;   ///< events enqueued behind a token
  std::uint64_t pending_sum = 0;      ///< sum of queue sizes at each event
  std::uint64_t pending_samples = 0;
  std::uint64_t max_pending = 0;
  double finish_time = 0.0;           ///< when the monitor fully drained

  /// Send-side bytes extrapolated to all frames. Under exact accounting
  /// every frame is sampled and this equals bytes_sent; under sampled
  /// accounting (WireAccounting::kSampled) it scales the measured bytes by
  /// the sampling ratio. Integer arithmetic keeps aggregates deterministic.
  std::uint64_t estimated_bytes_sent() const {
    if (frames_sampled == 0 || frames_sampled == frames_sent) {
      return bytes_sent;
    }
    return bytes_sent * frames_sent / frames_sampled;
  }

  double average_delayed_events() const {
    return pending_samples ? static_cast<double>(pending_sum) /
                                 static_cast<double>(pending_samples)
                           : 0.0;
  }

  /// Aggregate (for whole-system reporting).
  MonitorStats& operator+=(const MonitorStats& other);

  std::string to_string() const;
};

}  // namespace decmon
