// Monitor checkpoints: serialize the complete algorithmic state of a
// MonitorProcess into a versioned, CRC-sealed blob and restore it into a
// freshly constructed monitor (crash recovery, DESIGN.md §8).
//
// What is durable is exactly the state the lattice exploration depends on:
// the local event history, every live/quarantined global view with its
// cursor, parked tokens, peer termination knowledge, probe/spawn dedup sets,
// id counters and declared verdicts. What is *not* durable -- free lists,
// merge scratch, callbacks, statistics -- is reconstructible or irrelevant
// to soundness, so a restored monitor resumes on the same lattice paths it
// was tracing when the snapshot was taken.
//
// Format ("DMCK" blob):
//   magic "DMCK" | version u8 | index u32 | n u32 | body_size u32 |
//   body | crc32 u32
// Version 2 prepends the streaming-GC window state to the body -- the
// history base offset, per-peer trim floors and the GC cadence counter --
// and the history section holds only the retained window (events
// base..base+count). Version 3 appends the floor-resync epoch state
// (DESIGN.md §13): our advertisement epoch plus the stored epoch of each
// peer's floor. Version-1 blobs still restore (base 0, floors 0), as do
// version-2 blobs (all epochs 0 -- the pre-resync world).
// The CRC (wire_crc32, reflected 0xEDB88320) covers every byte before it.
// Unordered sets are written sorted, so snapshot -> restore -> snapshot is
// byte-identical. Decoding is all-or-nothing: any truncation, flipped byte,
// version skew or semantic violation throws CheckpointError and leaves the
// target monitor untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "decmon/monitor/wire.hpp"

namespace decmon {

class MonitorProcess;

/// Decode/validation failure. Derives from WireError so call sites can
/// treat transport and checkpoint corruption uniformly.
class CheckpointError : public WireError {
 public:
  explicit CheckpointError(const std::string& what) : WireError(what) {}
};

inline constexpr std::uint8_t kCheckpointVersion = 3;

/// Snapshot the monitor's full algorithmic state. The monitor must be
/// quiescent (not inside a dispatch) -- checkpoints are taken between hook
/// invocations; throws CheckpointError otherwise.
std::vector<std::uint8_t> checkpoint_monitor(const MonitorProcess& monitor);

/// Replace `monitor`'s algorithmic state with the snapshot's. The monitor
/// must have been constructed with the same index, process count and
/// property as the snapshotted one (index/width are validated; the property
/// is the caller's contract). Strong exception safety: on throw, `monitor`
/// is unchanged.
void restore_monitor(MonitorProcess& monitor,
                     const std::vector<std::uint8_t>& blob);

}  // namespace decmon
