// Centralized baseline (§1.2.2, §6.2.3.1): every process forwards each of
// its events to one central monitor node, which incrementally explores the
// computation lattice and tracks the set of reachable automaton states.
//
// Sound and complete by construction (it performs the oracle's DP online),
// but: every event crosses the network, the central node carries the whole
// exponential lattice, and it is a single point of failure -- exactly the
// trade-offs Table 6.1 lists. Used as the comparison baseline in benches
// and as an independent checker in tests.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "decmon/distributed/event.hpp"
#include "decmon/distributed/message.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/monitor/predicate.hpp"

namespace decmon {

/// Payload forwarding one program event to the central node.
struct EventForwardMessage final : NetPayload {
  static constexpr std::uint8_t kTag = 3;
  EventForwardMessage() : NetPayload(kTag) {}
  Event event;
};

/// Payload announcing a process's termination to the central node.
struct CentralTerminationMessage final : NetPayload {
  static constexpr std::uint8_t kTag = 4;
  CentralTerminationMessage() : NetPayload(kTag) {}
  int process = -1;
  std::uint32_t last_sn = 0;
};

class CentralizedMonitor final : public MonitorHooks {
 public:
  CentralizedMonitor(const CompiledProperty* property,
                     MonitorNetwork* network,
                     std::vector<AtomSet> initial_letters,
                     int central_node = 0,
                     std::size_t max_cuts = std::size_t{1} << 20);

  // MonitorHooks:
  void on_local_event(int proc, const Event& event, double now) override;
  void on_local_termination(int proc, double now) override;
  void on_monitor_message(MonitorMessage msg, double now) override;

  /// Verdict labels of automaton states reachable at the most advanced cut
  /// explored (the top cut once finished), plus verdicts declared earlier.
  std::set<Verdict> verdicts() const;

  /// Automaton states reachable at the top cut (valid once finished()).
  std::set<int> final_states() const;

  bool finished() const { return finished_; }
  std::uint64_t forwarded_messages() const { return forwarded_; }
  std::uint64_t explored_cuts() const { return cuts_.size(); }
  double finish_time() const { return finish_time_; }

 private:
  using Cut = std::vector<std::uint32_t>;
  struct CutHash {
    std::size_t operator()(const Cut& c) const noexcept {
      std::size_t h = 1469598103934665603ull;
      for (std::uint32_t x : c) {
        h ^= x;
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  void central_ingest(const Event& event, double now);
  void central_termination(int proc, std::uint32_t last_sn, double now);
  /// Try to advance `cut` along every process; newly created or updated
  /// cuts are pushed onto the work queue.
  void expand(const Cut& cut, double now);
  void pump(double now);
  void check_finished(double now);
  AtomSet letter_at(const Cut& cut) const;

  const CompiledProperty* prop_;
  MonitorNetwork* net_;
  int central_;
  std::size_t max_cuts_;

  /// Per-process events received so far (index 0 = initial pseudo-event).
  std::vector<std::vector<Event>> events_;
  std::vector<std::uint32_t> last_sn_;  ///< announced last event or kRunning
  /// Reachable automaton-state mask per consistent cut.
  std::unordered_map<Cut, std::uint64_t, CutHash> cuts_;
  /// Cuts whose expansion stalled waiting for event (proc, sn).
  std::map<std::pair<int, std::uint32_t>, std::vector<Cut>> blocked_;
  std::vector<Cut> work_;

  std::set<Verdict> declared_;
  std::uint64_t forwarded_ = 0;
  bool finished_ = false;
  double finish_time_ = 0.0;
};

}  // namespace decmon
