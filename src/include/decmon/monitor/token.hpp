// Token messages: the monitoring layer's only network traffic (§4.2).
//
// A token is created by a global view to decide whether any of a set of
// possibly-enabled outgoing transitions can fire at a consistent cut
// reachable from the view's cut. Each TransitionEntry carries its own
// partially-constructed cut, the dependency clock used to detect cut
// inconsistencies, and per-process conjunct evaluations; the token routes
// between monitors until every entry is enabled or disabled, then returns
// to its parent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decmon/distributed/message.hpp"
#include "decmon/ltl/atoms.hpp"
#include "decmon/util/vector_clock.hpp"

namespace decmon {

enum class ConjunctEval : std::uint8_t {
  kUnset,  ///< not (re-)evaluated against the entry's current cut
  kTrue,
  kFalse,  ///< transient within one event evaluation (see Alg. 5)
};

enum class EntryEval : std::uint8_t { kUnset, kTrue, kFalse };

/// One possibly-enabled outgoing transition under evaluation
/// (`OutgoingTransition` in the paper).
///
/// Invariant: `gstate[j]` is the *verified* letter of process j at position
/// `cut[j]` -- entries start from the creating view's cut and the walk
/// advances one event at a time, so no frontier position is ever guessed.
struct TransitionEntry {
  int transition_id = -1;

  /// Constructed cut: per-process sequence number of the last included
  /// event. Also the frontier vector clock.
  std::vector<std::uint32_t> cut;

  /// Max vector clock over the events included; cut[k] < depend[k] means
  /// the cut is inconsistent at process k.
  VectorClock depend;

  /// Local letters at the cut's frontier (per process).
  std::vector<AtomSet> gstate;

  /// Per-process conjunct evaluations.
  std::vector<ConjunctEval> conj;

  EntryEval eval = EntryEval::kUnset;
  int next_target_process = -1;
  std::uint32_t next_target_event = 0;

  /// Last consistent cut the walk passed where the believed letter kept the
  /// source state on a self-loop: a certified "the path can stay here"
  /// point, used to resurrect launchpad views (see MonitorProcess).
  bool loop_certified = false;
  std::vector<std::uint32_t> loop_cut;
  std::vector<AtomSet> loop_gstate;

  std::string to_string() const;
};

/// A monitoring message (`token` in the paper).
struct Token {
  std::uint64_t token_id = 0;  ///< globally unique: (parent << 32) | counter
  int parent = -1;             ///< creating monitor
  std::uint32_t parent_sn = 0; ///< local event that created the token
  VectorClock parent_vc;
  std::vector<TransitionEntry> entries;
  int next_target_process = -1;
  std::uint32_t next_target_event = 0;
  int hops = 0;  ///< network hops so far (metrics)

  bool has_live_entries() const;
  std::string to_string() const;
};

/// Network payloads of the monitoring layer.
struct TokenMessage final : NetPayload {
  Token token;
};

struct TerminationMessage final : NetPayload {
  int process = -1;
  std::uint32_t last_sn = 0;  ///< last event the process produced
};

}  // namespace decmon
