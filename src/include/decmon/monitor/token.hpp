// Token messages: the monitoring layer's only network traffic (§4.2).
//
// A token is created by a global view to decide whether any of a set of
// possibly-enabled outgoing transitions can fire at a consistent cut
// reachable from the view's cut. Each TransitionEntry carries its own
// partially-constructed cut, the dependency clock used to detect cut
// inconsistencies, and per-process conjunct evaluations; the token routes
// between monitors until every entry is enabled or disabled, then returns
// to its parent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decmon/distributed/message.hpp"
#include "decmon/ltl/atoms.hpp"
#include "decmon/util/small_vec.hpp"
#include "decmon/util/vector_clock.hpp"

namespace decmon {

enum class ConjunctEval : std::uint8_t {
  kUnset,  ///< not (re-)evaluated against the entry's current cut
  kTrue,
  kFalse,  ///< transient within one event evaluation (see Alg. 5)
};

enum class EntryEval : std::uint8_t { kUnset, kTrue, kFalse };

/// One possibly-enabled outgoing transition under evaluation
/// (`OutgoingTransition` in the paper).
///
/// Invariant: `gstate(j)` is the *verified* letter of process j at position
/// `cut(j)` -- entries start from the creating view's cut and the walk
/// advances one event at a time, so no frontier position is ever guessed.
///
/// The five per-process arrays the seed kept in parallel heap vectors
/// (cut, depend, gstate, conj, loop_cut/loop_gstate) are flattened into one
/// contiguous block of per-process slots with inline capacity for
/// kInlineProcs processes: constructing, copying and re-targeting an entry
/// is pure memcpy traffic, and all of a process's fields share a cache line.
class TransitionEntry {
 public:
  static constexpr std::size_t kInlineProcs = 8;

  /// All per-process state of the entry for one process.
  struct ProcSlot {
    /// Constructed cut: sequence number of the last included event. Also
    /// the frontier vector clock component.
    std::uint32_t cut = 0;
    /// Max vector clock over the events included; cut < depend means the
    /// cut is inconsistent at this process.
    std::uint32_t depend = 0;
    /// Component of the last certified "the path can stay here" cut.
    std::uint32_t loop_cut = 0;
    /// Conjunct evaluation of this process.
    ConjunctEval conj = ConjunctEval::kUnset;
    /// Local letter at the cut's frontier.
    AtomSet gstate = 0;
    /// Believed letter at the certified stay-point.
    AtomSet loop_gstate = 0;
  };

  int transition_id = -1;
  EntryEval eval = EntryEval::kUnset;
  /// Last consistent cut the walk passed where the believed letter kept the
  /// source state on a self-loop: a certified "the path can stay here"
  /// point, used to resurrect launchpad views (see MonitorProcess).
  bool loop_certified = false;
  int next_target_process = -1;
  std::uint32_t next_target_event = 0;

  /// (Re-)initialize the per-process block to `n` zeroed slots.
  void set_width(std::size_t n) { slots_.assign(n, ProcSlot{}); }
  std::size_t width() const { return slots_.size(); }

  std::uint32_t& cut(std::size_t j) { return slots_[j].cut; }
  std::uint32_t cut(std::size_t j) const { return slots_[j].cut; }
  std::uint32_t& depend(std::size_t j) { return slots_[j].depend; }
  std::uint32_t depend(std::size_t j) const { return slots_[j].depend; }
  std::uint32_t& loop_cut(std::size_t j) { return slots_[j].loop_cut; }
  std::uint32_t loop_cut(std::size_t j) const { return slots_[j].loop_cut; }
  ConjunctEval& conj(std::size_t j) { return slots_[j].conj; }
  ConjunctEval conj(std::size_t j) const { return slots_[j].conj; }
  AtomSet& gstate(std::size_t j) { return slots_[j].gstate; }
  AtomSet gstate(std::size_t j) const { return slots_[j].gstate; }
  AtomSet& loop_gstate(std::size_t j) { return slots_[j].loop_gstate; }
  AtomSet loop_gstate(std::size_t j) const { return slots_[j].loop_gstate; }

  ProcSlot* slots() { return slots_.data(); }
  const ProcSlot* slots() const { return slots_.data(); }

  /// depend := max(depend, vc), component-wise.
  void merge_depend(const VectorClock& vc) {
    ProcSlot* s = slots_.data();
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (vc[j] > s[j].depend) s[j].depend = vc[j];
    }
  }

  /// depend := max(depend, cut), component-wise (the frontier itself is
  /// always covered by the dependency clock).
  void raise_depend_to_cut() {
    ProcSlot* s = slots_.data();
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (s[j].cut > s[j].depend) s[j].depend = s[j].cut;
    }
  }

  /// True iff cut(j) >= depend(j) everywhere (the cut is consistent).
  bool cut_covers_depend() const {
    const ProcSlot* s = slots_.data();
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (s[j].cut < s[j].depend) return false;
    }
    return true;
  }

  /// Union of the per-process frontier letters.
  AtomSet combined_gstate() const {
    AtomSet a = 0;
    const ProcSlot* s = slots_.data();
    for (std::size_t j = 0; j < slots_.size(); ++j) a |= s[j].gstate;
    return a;
  }

  /// Record the current cut/gstate as a certified stay-point.
  void certify_loop() {
    loop_certified = true;
    ProcSlot* s = slots_.data();
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      s[j].loop_cut = s[j].cut;
      s[j].loop_gstate = s[j].gstate;
    }
  }

  /// Sum of the certified stay-point's cut components (advancement order).
  std::uint64_t loop_cut_total() const {
    std::uint64_t t = 0;
    const ProcSlot* s = slots_.data();
    for (std::size_t j = 0; j < slots_.size(); ++j) t += s[j].loop_cut;
    return t;
  }

  std::string to_string() const;

 private:
  SmallVec<ProcSlot, kInlineProcs> slots_;
};

/// A monitoring message (`token` in the paper).
struct Token {
  std::uint64_t token_id = 0;  ///< globally unique: (parent << 32) | counter
  int parent = -1;             ///< creating monitor
  std::uint32_t parent_sn = 0; ///< local event that created the token
  VectorClock parent_vc;
  std::vector<TransitionEntry> entries;
  int next_target_process = -1;
  std::uint32_t next_target_event = 0;
  int hops = 0;  ///< network hops so far (metrics)

  bool has_live_entries() const;
  std::string to_string() const;
};

/// Network payloads of the monitoring layer.
struct TokenMessage final : NetPayload {
  static constexpr std::uint8_t kTag = 1;
  TokenMessage() : NetPayload(kTag) {}
  Token token;

  std::unique_ptr<NetPayload> clone() const override {
    auto copy = std::make_unique<TokenMessage>();
    copy->token = token;
    return copy;
  }
};

struct TerminationMessage final : NetPayload {
  static constexpr std::uint8_t kTag = 2;
  TerminationMessage() : NetPayload(kTag) {}
  int process = -1;
  std::uint32_t last_sn = 0;  ///< last event the process produced

  std::unique_ptr<NetPayload> clone() const override {
    auto copy = std::make_unique<TerminationMessage>();
    copy->process = process;
    copy->last_sn = last_sn;
    return copy;
  }
};

/// Streaming-GC gossip (DESIGN.md §12): the sender promises that no token
/// walk or view spawn it can still launch references the receiver's events
/// below `floor`. Within one epoch floors are monotone at the receiver
/// (max-merge), so duplicated or reordered copies are harmless. `epoch`
/// rises when the sender restarts from a checkpoint (DESIGN.md §13): a
/// higher epoch REPLACES the stored floor -- the one case where a floor may
/// legitimately regress -- and reordered stale advertisements from the
/// pre-crash epoch are ignored rather than re-raising the clamped value.
struct HistoryFloorMessage final : NetPayload {
  static constexpr std::uint8_t kTag = 6;
  HistoryFloorMessage() : NetPayload(kTag) {}
  int process = -1;          ///< sender index
  std::uint32_t floor = 0;   ///< receiver-local sequence number bound
  std::uint32_t epoch = 0;   ///< sender's advertisement epoch (crash count)

  std::unique_ptr<NetPayload> clone() const override {
    auto copy = std::make_unique<HistoryFloorMessage>();
    copy->process = process;
    copy->floor = floor;
    copy->epoch = epoch;
    return copy;
  }
};

}  // namespace decmon
