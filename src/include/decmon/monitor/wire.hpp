// Wire format for monitor-layer messages.
//
// The in-process runtimes pass payload objects directly; a deployment
// across real machines needs tokens and termination signals on the wire.
// This module defines a compact, versioned, endian-stable binary encoding
// with full round-trip fidelity, plus defensive decoding (truncated or
// corrupt buffers yield errors, never UB).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "decmon/monitor/token.hpp"

namespace decmon {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Hard ceiling on per-process array widths a decoder will accept when the
/// caller does not pass the session's actual process count.
inline constexpr std::size_t kMaxWireProcesses = 4096;

/// Serialize a token (message kind + version header included).
std::vector<std::uint8_t> encode_token(const Token& token);

/// Serialize a termination signal.
std::vector<std::uint8_t> encode_termination(const TerminationMessage& msg);

/// What kind of monitor message a buffer holds.
enum class WireKind : std::uint8_t { kToken = 1, kTermination = 2 };

/// Peek at the kind; throws WireError on garbage.
WireKind wire_kind(const std::vector<std::uint8_t>& buffer);

/// Decode; throws WireError on truncation, bad version or wrong kind.
/// `max_width` bounds every decoded clock/entry width -- pass the session's
/// process count so a corrupt or hostile length field cannot force a large
/// allocation before validation fails.
Token decode_token(const std::vector<std::uint8_t>& buffer,
                   std::size_t max_width = kMaxWireProcesses);
TerminationMessage decode_termination(const std::vector<std::uint8_t>& buffer);

}  // namespace decmon
