// Wire format for monitor-layer messages.
//
// The in-process runtimes pass payload objects directly; a deployment
// across real machines needs tokens and termination signals on the wire.
// This module defines a compact, versioned, endian-stable binary encoding
// with full round-trip fidelity, plus defensive decoding (truncated or
// corrupt buffers yield errors, never UB).
//
// The primitive codec (WireWriter / WireReader) is public: the reliable
// channel and the checkpoint module reuse it so every durable byte in the
// system shares one bounds-checked little-endian encoding.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "decmon/monitor/token.hpp"

namespace decmon {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Hard ceiling on per-process array widths a decoder will accept when the
/// caller does not pass the session's actual process count.
inline constexpr std::size_t kMaxWireProcesses = 4096;

/// Little-endian primitive encoder appending into a caller-owned buffer, so
/// pooled buffers can be refilled without reallocating (the reliable
/// channel's clean path depends on this).
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& buf) : buf_(buf) {}

  void u8(std::uint8_t x) { buf_.push_back(x); }
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    }
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    }
  }
  void vc(const VectorClock& clock) {
    u32(static_cast<std::uint32_t>(clock.size()));
    for (std::size_t i = 0; i < clock.size(); ++i) u32(clock[i]);
  }

  std::vector<std::uint8_t>& buffer() { return buf_; }

 private:
  std::vector<std::uint8_t>& buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. Every
/// truncation throws WireError; no read is ever out of bounds.
class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    }
    return x;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    }
    return x;
  }
  VectorClock vc(std::size_t max_width) {
    const std::uint32_t n = u32();
    if (n > max_width) throw WireError("vector clock too wide");
    VectorClock clock(n);
    for (std::uint32_t i = 0; i < n; ++i) clock[i] = u32();
    return clock;
  }
  void done() const {
    if (pos_ != buf_.size()) throw WireError("trailing bytes");
  }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t k) const {
    // pos_ <= buf_.size() always holds, so the subtraction cannot wrap;
    // comparing this way keeps a huge k from overflowing pos_ + k.
    if (k > buf_.size() - pos_) throw WireError("truncated buffer");
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// Serialize a token (message kind + version header included).
std::vector<std::uint8_t> encode_token(const Token& token);

/// Serialize a termination signal.
std::vector<std::uint8_t> encode_termination(const TerminationMessage& msg);

/// What kind of monitor message a buffer holds.
enum class WireKind : std::uint8_t { kToken = 1, kTermination = 2 };

/// Peek at the kind; throws WireError on garbage.
WireKind wire_kind(const std::vector<std::uint8_t>& buffer);

/// Decode; throws WireError on truncation, bad version or wrong kind.
/// `max_width` bounds every decoded clock/entry width -- pass the session's
/// process count so a corrupt or hostile length field cannot force a large
/// allocation before validation fails.
Token decode_token(const std::vector<std::uint8_t>& buffer,
                   std::size_t max_width = kMaxWireProcesses);
TerminationMessage decode_termination(const std::vector<std::uint8_t>& buffer);

/// Headerless token body, for embedding a token inside a larger framed blob
/// (monitor checkpoints). Byte-compatible with the encode_token payload.
void write_token_body(WireWriter& w, const Token& token);
Token read_token_body(WireReader& r, std::size_t max_width);

/// Serialize any monitor-layer payload (token or termination) into `out`,
/// appending. The bytes are exactly what encode_token / encode_termination
/// produce, so either decoder family accepts them. Throws WireError for
/// payload tags that have no wire form (transport-internal payloads never
/// cross a process boundary).
void encode_payload_into(const NetPayload& payload,
                         std::vector<std::uint8_t>& out);

/// Decode a buffer produced by encode_payload_into back into a payload
/// object, dispatching on the embedded kind byte.
std::unique_ptr<NetPayload> decode_payload(
    const std::vector<std::uint8_t>& buffer,
    std::size_t max_width = kMaxWireProcesses);

/// CRC-32 (reflected, polynomial 0xEDB88320 -- the zlib/PNG variant) used to
/// seal checkpoint and channel-state blobs against corruption.
std::uint32_t wire_crc32(const std::uint8_t* data, std::size_t len);

}  // namespace decmon
