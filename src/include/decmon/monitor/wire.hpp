// Wire format for monitor-layer messages.
//
// The in-process runtimes pass payload objects directly; a deployment
// across real machines needs tokens and termination signals on the wire.
// This module defines a compact, versioned, endian-stable binary encoding
// with full round-trip fidelity, plus defensive decoding (truncated or
// corrupt buffers yield errors, never UB).
//
// The primitive codec (WireWriter / WireReader) is public: the reliable
// channel and the checkpoint module reuse it so every durable byte in the
// system shares one bounds-checked little-endian encoding.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "decmon/monitor/token.hpp"

namespace decmon {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Hard ceiling on per-process array widths a decoder will accept when the
/// caller does not pass the session's actual process count.
inline constexpr std::size_t kMaxWireProcesses = 4096;

/// Little-endian primitive encoder appending into a caller-owned buffer, so
/// pooled buffers can be refilled without reallocating (the reliable
/// channel's clean path depends on this). Default-constructed writers run
/// in *counting* mode: no buffer, every write only advances `written()`, so
/// encoded sizes can be measured without touching memory (bytes-on-wire
/// accounting stamps frame sizes this way on the flush path).
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& buf) : buf_(&buf) {}
  WireWriter() = default;  ///< counting mode

  void u8(std::uint8_t x) {
    ++written_;
    if (buf_) buf_->push_back(x);
  }
  void u32(std::uint32_t x) {
    if (!buf_) {  // counting mode: fixed-width, no per-byte work
      written_ += 4;
      return;
    }
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(x >> (8 * i)));
  }
  void u64(std::uint64_t x) {
    if (!buf_) {
      written_ += 8;
      return;
    }
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(x >> (8 * i)));
  }
  /// Encoded LEB128 length of `x` without emitting anything: ceil of the
  /// significant bit count over the 7 value bits per byte (x = 0 is one
  /// byte, covered by the `| 1`).
  static std::size_t var_size(std::uint64_t x) {
    return static_cast<std::size_t>((std::bit_width(x | 1) + 6) / 7);
  }
  /// LEB128 unsigned varint: 7 value bits per byte, high bit = continue.
  void var(std::uint64_t x) {
    if (!buf_) {  // counting mode: arithmetic size, skip the emit loop
      written_ += var_size(x);
      return;
    }
    do {
      std::uint8_t b = static_cast<std::uint8_t>(x & 0x7F);
      x >>= 7;
      if (x != 0) b |= 0x80;
      u8(b);
    } while (x != 0);
  }
  /// Zigzag-mapped signed varint (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...), so
  /// small deltas of either sign stay one byte.
  void zig(std::int64_t x) {
    const auto ux = static_cast<std::uint64_t>(x);
    var((ux << 1) ^ (x < 0 ? ~std::uint64_t{0} : std::uint64_t{0}));
  }
  void vc(const VectorClock& clock) {
    u32(static_cast<std::uint32_t>(clock.size()));
    for (std::size_t i = 0; i < clock.size(); ++i) u32(clock[i]);
  }
  /// Append `len` pre-encoded bytes verbatim (envelope payload embedding).
  void raw(const std::uint8_t* data, std::size_t len) {
    written_ += len;
    if (buf_) buf_->insert(buf_->end(), data, data + len);
  }

  /// Bytes emitted so far (both modes).
  std::size_t written() const { return written_; }

  /// Buffered mode only.
  std::vector<std::uint8_t>& buffer() { return *buf_; }

 private:
  std::vector<std::uint8_t>* buf_ = nullptr;
  std::size_t written_ = 0;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. Every
/// truncation throws WireError; no read is ever out of bounds.
class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    }
    return x;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    }
    return x;
  }
  /// LEB128 unsigned varint. Rejects encodings that overflow 64 bits;
  /// at most 10 bytes are consumed.
  std::uint64_t var() {
    std::uint64_t x = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t b = u8();
      if (shift == 63 && (b & 0xFE) != 0) throw WireError("varint overflow");
      x |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return x;
      shift += 7;
      if (shift > 63) throw WireError("varint overflow");
    }
  }
  std::int64_t zig() {
    const std::uint64_t x = var();
    return static_cast<std::int64_t>((x >> 1) ^ (std::uint64_t{0} - (x & 1)));
  }
  VectorClock vc(std::size_t max_width) {
    const std::uint32_t n = u32();
    if (n > max_width) throw WireError("vector clock too wide");
    VectorClock clock(n);
    for (std::uint32_t i = 0; i < n; ++i) clock[i] = u32();
    return clock;
  }
  void done() const {
    if (pos_ != buf_.size()) throw WireError("trailing bytes");
  }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t k) const {
    // pos_ <= buf_.size() always holds, so the subtraction cannot wrap;
    // comparing this way keeps a huge k from overflowing pos_ + k.
    if (k > buf_.size() - pos_) throw WireError("truncated buffer");
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// Serialize a token (message kind + version header included).
std::vector<std::uint8_t> encode_token(const Token& token);

/// Serialize a termination signal.
std::vector<std::uint8_t> encode_termination(const TerminationMessage& msg);

/// What kind of monitor message a buffer holds. kToken / kTermination are
/// version-1 frames (byte layout frozen -- checkpoints embed them); kFrame
/// is the version-2 batched frame (varints + delta-compressed clocks);
/// kEnvelope is the version-2 reliable-channel envelope (seq/ack header
/// around an embedded payload encoding), added so a channel stacked over a
/// socket transport can serialize its protocol messages.
enum class WireKind : std::uint8_t {
  kToken = 1,
  kTermination = 2,
  kFrame = 3,
  kEnvelope = 4,
  kFloor = 5,  ///< streaming-GC history floor gossip (v2 only)
};

/// Peek at the kind; throws WireError on garbage. Accepts both wire
/// versions: v1 buffers hold kToken/kTermination, v2 buffers hold
/// kFrame/kEnvelope.
WireKind wire_kind(const std::vector<std::uint8_t>& buffer);

/// Decode; throws WireError on truncation, bad version or wrong kind.
/// `max_width` bounds every decoded clock/entry width -- pass the session's
/// process count so a corrupt or hostile length field cannot force a large
/// allocation before validation fails.
Token decode_token(const std::vector<std::uint8_t>& buffer,
                   std::size_t max_width = kMaxWireProcesses);
TerminationMessage decode_termination(const std::vector<std::uint8_t>& buffer);

/// Headerless token body, for embedding a token inside a larger framed blob
/// (monitor checkpoints). Byte-compatible with the encode_token payload.
void write_token_body(WireWriter& w, const Token& token);
Token read_token_body(WireReader& r, std::size_t max_width);

/// Serialize any monitor-layer payload (token or termination) into `out`,
/// appending. The bytes are exactly what encode_token / encode_termination
/// produce, so either decoder family accepts them. Throws WireError for
/// payload tags that have no wire form (transport-internal payloads never
/// cross a process boundary).
void encode_payload_into(const NetPayload& payload,
                         std::vector<std::uint8_t>& out);

/// Decode a buffer produced by encode_payload_into back into a payload
/// object, dispatching on the embedded kind byte. Accepts v1 buffers
/// (single token / termination), v2 batched frames, and v2 channel
/// envelopes. A decoded envelope carries its payload as raw `bytes` only
/// (never a reconstructed `inner` object) -- the channel's receive path
/// decodes those bytes itself, exactly as it does for retransmissions.
std::unique_ptr<NetPayload> decode_payload(
    const std::vector<std::uint8_t>& buffer,
    std::size_t max_width = kMaxWireProcesses);

/// Serialize a batched frame (wire v2: varint integers, frame-level base
/// clock with per-token zigzag deltas). Unit order is preserved exactly.
std::vector<std::uint8_t> encode_frame(const PayloadFrame& frame);

/// Decode a v2 frame buffer; throws WireError on truncation, corruption,
/// or any width exceeding `max_width`.
std::unique_ptr<PayloadFrame> decode_frame(
    const std::vector<std::uint8_t>& buffer,
    std::size_t max_width = kMaxWireProcesses);

/// Encoded size of `payload` under encode_payload_into, computed with a
/// counting writer -- no bytes are materialized.
std::size_t payload_wire_size(const NetPayload& payload);

/// One counting-encode pass over a frame that stamps every unit's
/// `wire_size` (its in-frame encoded bytes) and the frame's own `wire_size`
/// (the full encoded frame, header + base clock included). Returns the
/// frame total. This is the bytes-on-wire accounting hook: the monitor
/// calls it once per flushed frame, and transports that re-batch frames
/// just transfer the per-unit stamps.
std::size_t stamp_frame_wire_size(PayloadFrame& frame);

/// CRC-32 (reflected, polynomial 0xEDB88320 -- the zlib/PNG variant) used to
/// seal checkpoint and channel-state blobs against corruption.
std::uint32_t wire_crc32(const std::uint8_t* data, std::size_t len);

}  // namespace decmon
