// Crash injection: kill one monitor node at a seeded point, swallow its
// traffic while it is down, then restart it from its last checkpoint
// (DESIGN.md §8).
//
// The injector is a MonitorHooks decorator stacked between the runtime and
// the reliable channel:
//
//   runtime -> CrashInjector -> ReliableChannel -> DecentralizedMonitor
//
// For the planned node it checkpoints the monitor + channel state after
// every forwarded hook invocation (stride 1), so the node's state at the
// moment of the crash -- which trips at a data-delivery or local-event
// boundary, before the tripping arrival is processed -- is exactly the last
// checkpoint. That
// makes recovery lossless: nothing the monitor ever acknowledged (via the
// channel's cumulative acks, which the stride-1 checkpoint always covers)
// can be forgotten, which is why definite verdicts survive crashes
// unchanged and recovery only ever adds '?' time.
//
// While down, the node's arrivals are handled by kind:
//   * data envelopes are dropped and counted toward the restart trigger --
//     they are unacked at their senders, whose unlimited-attempt retransmit
//     loops redeliver them after the restart (this is also why the restart
//     trigger always fires: the tripping message itself keeps coming back);
//   * local events and the local termination are journaled and replayed at
//     restart, modelling the durable local event log every real monitor
//     deployment reads its own process's events from;
//   * acks and channel timers are swallowed silently -- pure soft state.
//
// Restart restores both snapshot halves, then re-snapshots and verifies the
// bytes are identical to what was restored (a hard fault, not a soft check:
// every fuzz case exercises the round-trip), then replays the journal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decmon/distributed/reliable_channel.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"

namespace decmon {

struct CrashPlan {
  /// Node to crash; -1 disables the injector (pure passthrough).
  int node = -1;
  /// Countable arrivals (data-envelope deliveries and local events) the
  /// node survives before the crash trips -- at the next countable boundary.
  /// UINT64_MAX never trips (checkpoint-overhead measurement mode).
  std::uint64_t crash_after = 0;
  /// Countable arrivals (dropped data envelopes + journaled local events)
  /// swallowed while down before the node restarts.
  std::uint64_t down_deliveries = 0;

  std::string to_string() const;
};

struct CrashStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;  ///< total bytes over all checkpoints
  std::uint64_t dropped_while_down = 0;
  std::uint64_t journal_replayed = 0;
};

class CrashInjector final : public MonitorHooks {
 public:
  /// `inner` receives forwarded hooks (the reliable channel); `monitors`
  /// and `channel` are the two state holders snapshotted and restored. All
  /// must outlive the injector.
  CrashInjector(MonitorHooks* inner, DecentralizedMonitor* monitors,
                ReliableChannel* channel, CrashPlan plan);

  void on_local_event(int proc, const Event& event, double now) override;
  void on_local_termination(int proc, double now) override;
  void on_monitor_message(MonitorMessage msg, double now) override;

  const CrashStats& stats() const { return stats_; }
  bool crashed() const { return phase_ != Phase::kRunning; }
  bool recovered() const { return phase_ == Phase::kRecovered; }

 private:
  enum class Phase : std::uint8_t { kRunning, kDown, kRecovered };

  struct JournalEntry {
    bool termination = false;
    Event event;  ///< valid when !termination
  };

  /// Snapshot both halves of the node's durable state.
  void take_checkpoint();
  /// Restore from the last checkpoint, verify the round trip, replay the
  /// journal.
  void restart(double now);
  void crash();

  MonitorHooks* inner_;
  DecentralizedMonitor* monitors_;
  ReliableChannel* channel_;
  CrashPlan plan_;

  // All mutable state below concerns plan_.node only and is touched only
  // from that node's hook context (one thread under every runtime).
  Phase phase_ = Phase::kRunning;
  std::uint64_t delivered_data_ = 0;
  std::uint64_t down_left_ = 0;
  std::vector<JournalEntry> journal_;
  std::vector<std::uint8_t> monitor_blob_;
  std::vector<std::uint8_t> channel_blob_;
  CrashStats stats_;
};

}  // namespace decmon
