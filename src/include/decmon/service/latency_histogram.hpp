// HDR-style latency histogram for the monitoring service (DESIGN.md §11).
//
// Fixed-size, allocation-free, mergeable. Values (nanoseconds) are bucketed
// into power-of-two magnitude bands, each split into 2^kSubBits linear
// sub-buckets, so relative resolution is a constant ~1/2^kSubBits (~3%)
// across the whole 64-bit range -- the shape HdrHistogram popularized and
// the standard way to report p50/p95/p99 without keeping every sample.
//
// Thread model: record() is single-writer (each shard owns one histogram);
// aggregation merges the per-shard histograms under the service lock.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace decmon::service {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBits;
  /// Band 0 holds the exact values [0, kSubBuckets); bands 1..59 each cover
  /// one power-of-two magnitude range up to 2^64 - 1.
  static constexpr int kBands = 64 - kSubBits + 1;

  void record(std::uint64_t value) {
    if (count_ == 0 || value < min_) min_ = value;
    if (value > max_) max_ = value;
    ++count_;
    sum_ += value;
    ++counts_[index_of(value)];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile q in [0, 1]: the representative (bucket midpoint,
  /// clamped to the observed min/max) of the bucket holding the ceil(q *
  /// count)-th smallest sample. 0 when empty.
  std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min();
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
    if (target < 1) target = 1;
    if (target >= count_) return max_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) {
        std::uint64_t rep = representative(i);
        if (rep < min_) rep = min_;
        if (rep > max_) rep = max_;
        return rep;
      }
    }
    return max_;
  }

  void merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }

  void reset() { *this = LatencyHistogram{}; }

 private:
  /// Band b >= 1 covers [kSubBuckets << (b-1), kSubBuckets << b); sub-bucket
  /// width there is 2^(b-1).
  static std::size_t index_of(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int band = std::bit_width(v) - kSubBits;
    const std::uint64_t sub = (v >> (band - 1)) - kSubBuckets;
    return static_cast<std::size_t>(band) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

  static std::uint64_t representative(std::size_t index) {
    const std::uint64_t band = index >> kSubBits;
    const std::uint64_t sub = index & (kSubBuckets - 1);
    if (band == 0) return sub;
    const std::uint64_t lo = (kSubBuckets + sub) << (band - 1);
    return lo + (std::uint64_t{1} << (band - 1)) / 2;
  }

  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(kBands) * kSubBuckets>
      counts_{};
};

}  // namespace decmon::service
