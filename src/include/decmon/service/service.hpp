// decmon::service -- sharded multi-session monitoring service (DESIGN.md
// §11).
//
// Everything below the MonitorSession facade monitors ONE session; a fleet
// serving real traffic keeps thousands in flight. MonitoringService
// multiplexes independent monitored sessions across a fixed pool of shard
// worker threads:
//
//   * Admission is a work-stealing queue: a session lands on its affinity
//     shard (id % num_shards, so a seeded workload always hashes the same
//     way), and an idle shard steals from the back of the most backlogged
//     peer, keeping every core busy under skewed cells.
//   * A shard owns everything mutable about the sessions it executes: the
//     SimRuntime, the monitors with their free lists and pooled frame
//     shells, and a shard-local catalog of MonitorSession handles warmed
//     from the shared immutable PropertyArtifact (registry + automaton +
//     compiled property) once per (property, n) per shard. Sessions NEVER
//     share mutable monitor state -- the only cross-shard sharing is the
//     immutable artifact behind the process-wide synthesis cache
//     (paper::build_automaton), which is immutable-value, copy-on-hit, and
//     guarded for concurrent readers, so a property is synthesized once per
//     fleet rather than once per session.
//   * Outcomes are a pure function of the SessionSpec: placement, stealing
//     and shard count never change a verdict or a counter (the cross-shard
//     determinism test pins this against the 1-shard serial run).
//
// Stats aggregation: each shard keeps local counters plus HDR-style
// latency histograms (admission->verdict and admission->start); stats()
// merges them into one snapshot. Throughput is reported by the callers
// (tools/load_gen, the service.* bench suite) as completed sessions and
// events over their own wall clock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "decmon/core/properties.hpp"
#include "decmon/core/session.hpp"
#include "decmon/service/latency_histogram.hpp"

namespace decmon::service {

/// One monitored session: a paper cell workload (generated trace) run under
/// the deterministic simulator with decentralized monitors attached. The
/// outcome is a pure function of this spec.
struct SessionSpec {
  paper::Property property = paper::Property::kD;
  int num_processes = 3;
  std::uint64_t trace_seed = 1;
  double comm_mu = 3.0;
  bool comm_enabled = true;
  int internal_events = 25;
  SimConfig sim;
  MonitorOptions options;
  /// Preferred shard (-1 = id % num_shards). Affinity only places the
  /// session's queue entry; stealing may still run it elsewhere, and the
  /// outcome is identical either way.
  int affinity = -1;
};

using SessionId = std::uint64_t;

struct SessionOutcome {
  SessionId id = 0;
  int shard = -1;      ///< shard that executed the session
  bool stolen = false; ///< executed off its affinity shard
  bool ok = false;     ///< run completed (verdict.all_finished, no throw)
  /// The session tripped a configured memory bound (MonitorOverflow:
  /// view cap or history cap) -- an intentional outcome, not a failure.
  bool overflowed = false;
  std::string error;   ///< exception text when !ok
  RunResult result;
  double queue_ms = 0.0;   ///< admission -> execution start
  double latency_ms = 0.0; ///< admission -> verdict (histogram value)
};

struct ServiceConfig {
  int num_shards = 1;
  /// Idle shards steal queued sessions from backlogged peers.
  bool steal = true;
  /// Retain full per-session outcomes for outcomes(). Off, the service
  /// keeps only the scalar fields (id/shard/latency/verdict counters are
  /// still aggregated) and drops the per-monitor stats vectors -- the
  /// posture for open-loop runs with very large session counts.
  bool keep_outcomes = true;
};

/// Aggregated snapshot over all shards.
struct ServiceStats {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  ///< !ok sessions (also counted in completed),
                             ///< excluding intentional cap overflows
  std::uint64_t overflowed = 0;  ///< sessions that hit a configured cap
  std::uint64_t stolen = 0;
  std::uint64_t program_events = 0;
  std::uint64_t monitor_messages = 0;
  std::uint64_t violations = 0;    ///< sessions whose verdict set has F
  std::uint64_t satisfactions = 0; ///< sessions whose verdict set has T
  LatencyHistogram latency_ns; ///< admission -> verdict
  LatencyHistogram queue_ns;   ///< admission -> execution start
  std::vector<std::uint64_t> per_shard_completed;
  std::vector<double> per_shard_busy_ms; ///< time spent executing sessions
};

class MonitoringService {
 public:
  explicit MonitoringService(ServiceConfig config = {});
  /// Drains the admitted work, then stops and joins the shard workers.
  ~MonitoringService();

  MonitoringService(const MonitoringService&) = delete;
  MonitoringService& operator=(const MonitoringService&) = delete;

  /// Admit one session. Thread-safe, non-blocking (the trace is generated
  /// and the session executed on the shard worker); returns immediately
  /// with the session's id. Ids are dense and assigned in admission order.
  SessionId submit(const SessionSpec& spec);

  /// Block until every session admitted so far has completed.
  void drain();

  /// Merged snapshot of all shard counters (thread-safe; a mid-run snapshot
  /// is a consistent point-in-time view).
  ServiceStats stats() const;

  /// Outcomes of all completed sessions, ordered by id. Call after drain();
  /// requires ServiceConfig::keep_outcomes.
  std::vector<SessionOutcome> outcomes() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    SessionSpec spec;
    SessionOutcome outcome;
    Clock::time_point admitted_at;
    bool done = false;
  };

  /// Per-shard state. Queue and counters are guarded by the service mutex
  /// (held for queue pops and one stats update per completed session --
  /// nanoseconds against multi-millisecond session runs); `catalog` is
  /// touched only by the owning worker thread and needs no lock.
  struct Shard {
    std::deque<Slot*> queue;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t overflowed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t program_events = 0;
    std::uint64_t monitor_messages = 0;
    std::uint64_t violations = 0;
    std::uint64_t satisfactions = 0;
    LatencyHistogram latency_ns;
    LatencyHistogram queue_ns;
    double busy_ms = 0.0;
    /// (property, n) -> session handle, warmed once per shard from the
    /// shared immutable artifact (paper::shared_property): a refcount bump,
    /// no per-shard copy of compiled automata. Worker-private map; the
    /// artifact it points at is read-only everywhere.
    std::unordered_map<int, std::unique_ptr<MonitorSession>> catalog;
  };

  void worker(int shard_index);
  /// Pop work for shard `self` (own front first, then steal from the most
  /// backlogged peer's back). Caller holds mutex_.
  Slot* pop_locked(int self, bool* stolen);
  bool has_work_locked(int self) const;
  MonitorSession& session_for(Shard& shard, const SessionSpec& spec);

  ServiceConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait here for queue pushes
  std::condition_variable drain_cv_; ///< drain() waits here for completions
  std::deque<Slot> slots_; ///< session registry; deque: stable addresses
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
};

}  // namespace decmon::service
