// Augmented time (the paper's future-work item 7.2.1): when every node's
// clock is within a known skew bound epsilon of true time, timestamps
// induce extra order on top of happened-before -- event `a` certainly
// precedes event `b` whenever a.time + epsilon < b.time, even without any
// message between them. The computation's effective order becomes the
// intersection of the lattice order with this interval order, which prunes
// concurrency: fewer consistent cuts, fewer lattice paths, narrower verdict
// sets.
//
// This is an offline / oracle-side refinement (a live monitor would obtain
// the same guarantee from synchronized clocks in its consistency checks);
// it quantifies how much a deployment gains from bounded skew, as the
// paper's discussion of [9] anticipates ("only useful for applications that
// produce events with frequency less than [the skew]").
#pragma once

#include "decmon/lattice/computation.hpp"
#include "decmon/lattice/oracle.hpp"

namespace decmon {

/// A computation refined by a clock-skew bound. Wraps `Computation` and
/// strengthens `can_advance`: a cut may take process p's next event only if
/// no other process has an excluded event that certainly happened earlier
/// (its timestamp is more than `epsilon` older).
class TimedComputation {
 public:
  /// `epsilon` in the same unit as Event::time (seconds); infinite epsilon
  /// degenerates to the plain happened-before semantics.
  TimedComputation(const Computation* comp, double epsilon)
      : comp_(comp), epsilon_(epsilon) {}

  const Computation& base() const { return *comp_; }
  double epsilon() const { return epsilon_; }

  bool can_advance(const Computation::Cut& cut, int p) const;

  /// Number of consistent cuts under the refined order (throws
  /// std::length_error past `max_nodes`).
  std::uint64_t count_cuts(std::size_t max_nodes = std::size_t{1} << 22) const;

 private:
  const Computation* comp_;
  double epsilon_;
};

/// The oracle's DP over the refined order: same outputs as
/// `oracle_evaluate`, fewer cuts and (possibly) fewer verdicts.
OracleResult oracle_evaluate_timed(const TimedComputation& timed,
                                   const MonitorAutomaton& monitor,
                                   std::size_t max_nodes = std::size_t{1}
                                                           << 22);

}  // namespace decmon
