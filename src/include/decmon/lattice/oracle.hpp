// The oracle of Chapter 3: with global knowledge of the computation, label
// every lattice path with its LTL3 verdict. Because the monitor automaton is
// deterministic and final verdicts are absorbing, the set of verdicts over
// all paths equals the verdict labels of the automaton-state set reachable
// at the top cut -- computed by dynamic programming over consistent cuts,
// without enumerating paths.
//
// This is the ground truth for the soundness (Eq. 3.2) and completeness
// (Eq. 3.1) tests of the decentralized algorithm.
#pragma once

#include <cstdint>
#include <set>

#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/lattice/computation.hpp"

namespace decmon {

struct OracleResult {
  /// Automaton states reachable at the top cut (one per path class).
  std::set<int> final_states;
  /// Their verdict labels: the oracle's verdict set over all paths.
  std::set<Verdict> verdicts;
  /// Number of consistent cuts explored (lattice size).
  std::uint64_t lattice_nodes = 0;
  /// Number of distinct pivot global states (cuts where some incoming path
  /// changes the automaton state), per Def. 17.
  std::uint64_t pivot_states = 0;
};

/// Evaluate the oracle. Exponential in the worst case; throws
/// std::length_error past `max_nodes` cuts.
OracleResult oracle_evaluate(const Computation& comp,
                             const MonitorAutomaton& monitor,
                             std::size_t max_nodes = 1u << 20);

}  // namespace decmon
