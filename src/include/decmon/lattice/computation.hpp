// A recorded distributed computation: per-process event sequences with
// vector clocks. Consistent cuts (Def. 4-5), frontier letters and the
// happened-before structure are all derived from here. The oracle, the
// slicer and the lattice builder operate on this representation.
#pragma once

#include <cstdint>
#include <vector>

#include "decmon/distributed/event.hpp"
#include "decmon/ltl/atoms.hpp"

namespace decmon {

class Computation {
 public:
  /// A cut, as frontier sequence numbers: cut[i] = number of Pi's events
  /// included (0 = only the initial pseudo-event).
  using Cut = std::vector<std::uint32_t>;

  Computation() = default;

  /// `events[p][sn]` must hold process p's events indexed by sequence
  /// number, with the initial pseudo-event at index 0.
  explicit Computation(std::vector<std::vector<Event>> events);

  int num_processes() const { return static_cast<int>(events_.size()); }

  /// Number of real events of process `p` (excluding the initial one).
  std::uint32_t num_events(int p) const {
    return static_cast<std::uint32_t>(
               events_[static_cast<std::size_t>(p)].size()) -
           1;
  }

  /// Total real events across processes.
  std::uint64_t total_events() const;

  const Event& event(int p, std::uint32_t sn) const {
    return events_[static_cast<std::size_t>(p)][static_cast<std::size_t>(sn)];
  }

  Cut bottom() const { return Cut(static_cast<std::size_t>(num_processes()), 0); }
  Cut top() const;

  /// Is the cut consistent (Def. 4): closed under happened-before?
  bool consistent(const Cut& cut) const;

  /// Can the cut advance by one event of process `p` and stay consistent?
  bool can_advance(const Cut& cut, int p) const;

  /// Valuation of all atoms at the cut's frontier global state.
  AtomSet letter(const Cut& cut) const;

  /// The frontier global state (per-process variable valuations).
  GlobalState global_state(const Cut& cut) const;

 private:
  std::vector<std::vector<Event>> events_;
};

/// Convenience builder for hand-written computations in tests and examples.
/// Maintains vector clocks like a real execution; messages are matched by
/// explicit handles.
class ComputationBuilder {
 public:
  /// `registry` may be null (letters stay 0).
  ComputationBuilder(int num_processes, const AtomRegistry* registry);

  void set_initial(int p, LocalState state);

  /// Internal event changing p's variables; returns its sequence number.
  std::uint32_t internal(int p, LocalState state);

  /// Send event at `from`; returns a message handle.
  int send(int from);

  /// Receive event at `to` consuming the handle from send().
  std::uint32_t receive(int to, int message);

  Computation build() const;

 private:
  Event make_event(int p, EventType type);

  const AtomRegistry* registry_;
  std::vector<std::vector<Event>> events_;
  std::vector<VectorClock> clocks_;
  std::vector<LocalState> states_;
  std::vector<VectorClock> messages_;
};

}  // namespace decmon
