// Computation slicing for conjunctive predicates (Mittal-Garg; Def. 13-15).
//
// The decentralized algorithm's token protocol is a distributed
// implementation of exactly this: advance every forbidding process past its
// forbidden states until the least consistent cut satisfying the predicate
// is reached (a join-irreducible element of the satisfying sub-lattice), or
// a process runs out of events. This centralized version is the reference
// the token protocol is validated against in tests.
#pragma once

#include <optional>

#include "decmon/automata/guard.hpp"
#include "decmon/lattice/computation.hpp"

namespace decmon {

/// The least consistent cut C >= `from` whose frontier satisfies the
/// conjunctive predicate `pred`, or nullopt when no such cut exists in the
/// (finite) computation. Literal ownership is resolved through `registry`.
std::optional<Computation::Cut> least_satisfying_cut(
    const Computation& comp, const Cube& pred, const AtomRegistry& registry,
    const Computation::Cut& from);

/// The least consistent cut C >= `from`, advancing only (make `from`
/// causally closed). Always exists in a finite computation.
Computation::Cut consistent_closure(const Computation& comp,
                                    Computation::Cut from);

}  // namespace decmon
