// Offline monitoring support (§6.2.1): computations recorded as portable
// text event logs. A run is captured once (online, cheaply) and analyzed
// offline -- through the oracle, the centralized monitor, or a replayed
// decentralized run -- as many times as needed, the way test logs are
// post-processed in the paper's taxonomy of monitoring configurations.
#pragma once

#include <iosfwd>
#include <string>

#include "decmon/lattice/computation.hpp"

namespace decmon {

/// Serialize a computation as a line-oriented text log. Stable format:
///   eventlog v1
///   processes <n>
///   event <proc> <sn> <type> <vc...> <time> vars <k> <v...>
///   end
std::string to_event_log(const Computation& comp);

/// Parse a text event log; validates indexing and clock widths.
/// Throws std::runtime_error on malformed input.
Computation computation_from_event_log(const std::string& text);

/// Convenience: write/read a log file.
void save_event_log(const Computation& comp, const std::string& path);
Computation load_event_log(const std::string& path,
                           const AtomRegistry* registry = nullptr);

/// Re-evaluate the letters of every event against `registry` (use after
/// loading a log recorded before some atoms existed, or with none).
Computation relabel(const Computation& comp, const AtomRegistry& registry);

}  // namespace decmon
