// Explicit computation lattice (Def. 6, Fig. 2.2b): the DAG of all
// consistent cuts ordered by single-event advances. Exponential in general;
// only materialized for tests, small examples and the centralized baseline.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "decmon/lattice/computation.hpp"

namespace decmon {

class Lattice {
 public:
  struct Node {
    Computation::Cut cut;
    /// Successor node per advancing process (-1 when not advanceable).
    std::vector<int> succ;
  };

  /// Build the full lattice. Throws std::length_error past `max_nodes`.
  static Lattice build(const Computation& comp, std::size_t max_nodes = 1u << 20);

  const std::vector<Node>& nodes() const { return nodes_; }
  int bottom() const { return bottom_; }
  int top() const { return top_; }
  std::size_t size() const { return nodes_.size(); }

  /// Number of maximal paths bottom -> top, as a double (can be astronomically
  /// large; exact for small lattices).
  double num_paths() const;

  /// Index of the node with this cut, or -1.
  int find(const Computation::Cut& cut) const;

 private:
  struct CutHash {
    std::size_t operator()(const Computation::Cut& c) const noexcept {
      std::size_t h = 1469598103934665603ull;
      for (std::uint32_t x : c) {
        h ^= x;
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  std::vector<Node> nodes_;
  std::unordered_map<Computation::Cut, int, CutHash> index_;
  int bottom_ = -1;
  int top_ = -1;
};

}  // namespace decmon
