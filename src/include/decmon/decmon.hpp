// decmon -- decentralized runtime verification of LTL specifications in
// distributed systems.
//
// Umbrella header: pulls in the full public API.
//
//   * LTL front end:      decmon/ltl/{atoms,formula,parser,eval}.hpp
//   * LTL3 synthesis:     decmon/automata/{buchi,ltl3_monitor,...}.hpp
//   * Distributed layer:  decmon/distributed/{trace,sim_runtime,...}.hpp
//   * Lattice & oracle:   decmon/lattice/{computation,oracle,slicer}.hpp
//   * Monitoring:         decmon/monitor/{monitor_process,...}.hpp
//   * Facade:             decmon/core/{session,properties}.hpp
//   * Service layer:      decmon/service/{service,latency_histogram}.hpp
#pragma once

#include "decmon/automata/buchi.hpp"
#include "decmon/automata/analysis.hpp"
#include "decmon/automata/guard.hpp"
#include "decmon/automata/ltl3_monitor.hpp"
#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/automata/qm_minimize.hpp"
#include "decmon/core/properties.hpp"
#include "decmon/core/session.hpp"
#include "decmon/distributed/event.hpp"
#include "decmon/distributed/faulty_network.hpp"
#include "decmon/distributed/message.hpp"
#include "decmon/distributed/process.hpp"
#include "decmon/distributed/reliable_channel.hpp"
#include "decmon/distributed/replay_runtime.hpp"
#include "decmon/distributed/runtime.hpp"
#include "decmon/distributed/sim_runtime.hpp"
#include "decmon/distributed/socket_runtime.hpp"
#include "decmon/distributed/thread_runtime.hpp"
#include "decmon/distributed/trace.hpp"
#include "decmon/lattice/augmented_time.hpp"
#include "decmon/lattice/computation.hpp"
#include "decmon/lattice/event_log.hpp"
#include "decmon/lattice/lattice.hpp"
#include "decmon/lattice/oracle.hpp"
#include "decmon/lattice/slicer.hpp"
#include "decmon/ltl/atoms.hpp"
#include "decmon/ltl/eval.hpp"
#include "decmon/ltl/formula.hpp"
#include "decmon/ltl/parser.hpp"
#include "decmon/monitor/centralized_monitor.hpp"
#include "decmon/monitor/checkpoint.hpp"
#include "decmon/monitor/crash_injector.hpp"
#include "decmon/monitor/decentralized_monitor.hpp"
#include "decmon/monitor/monitor_process.hpp"
#include "decmon/monitor/predicate.hpp"
#include "decmon/monitor/property_registry.hpp"
#include "decmon/monitor/stats.hpp"
#include "decmon/monitor/token.hpp"
#include "decmon/monitor/wire.hpp"
#include "decmon/service/latency_histogram.hpp"
#include "decmon/service/service.hpp"
#include "decmon/util/rng.hpp"
#include "decmon/util/strings.hpp"
#include "decmon/util/vector_clock.hpp"
