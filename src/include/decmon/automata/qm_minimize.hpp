// Two-level logic minimization (Quine-McCluskey prime generation followed by
// a greedy cover) used to turn the letter-level transition function of a
// determinized monitor into a small set of conjunctive-predicate transitions
// -- the representation Table 5.1 of the paper counts.
#pragma once

#include <vector>

#include "decmon/automata/guard.hpp"

namespace decmon {

/// Minimize a boolean function given as an on-set over `k` dense variables.
///
/// `onset[m]` is true iff minterm `m` (a k-bit assignment) is in the
/// function; `onset.size()` must be `1 << k`. `atom_ids[j]` maps dense
/// variable `j` to a global atom id; the returned cubes are expressed over
/// global atom ids. The cover is exact (covers the on-set and nothing else).
/// Requires k <= 20.
std::vector<Cube> minimize_cover(const std::vector<char>& onset, int k,
                                 const std::vector<int>& atom_ids);

}  // namespace decmon
