// LTL3 monitor synthesis (Bauer-Leucker-Schallhart): from an LTL formula to
// the deterministic Moore machine of Def. 12.
//
// Pipeline:
//   1. Build Buchi automata for phi and !phi (GPVW tableau).
//   2. Per-state nonemptiness (the F function): which states still admit an
//      accepting continuation.
//   3. Joint subset construction over the formula's atoms, keeping only
//      nonempty states; a product state is FALSE when the phi-side subset
//      dies, TRUE when the !phi-side dies, UNKNOWN otherwise.
//   4. Final states become absorbing sinks (verdicts are irrevocable,
//      Def. 11), matching the single `true` self-loop of the paper's
//      figures.
//   5. Optional Moore minimization (partition refinement).
//   6. Letter-level transition function -> conjunctive-predicate transitions
//      via two-level minimization; disjunctive guards are split into one
//      transition per cube (the representation the algorithm consumes).
#pragma once

#include "decmon/automata/monitor_automaton.hpp"
#include "decmon/ltl/formula.hpp"

namespace decmon {

struct SynthesisOptions {
  /// Merge Moore-equivalent states. The paper's experiments deliberately
  /// keep a non-collapsed automaton for properties A/C/D ("it provides more
  /// information as q1 is a ? state", 5.1); disable to approximate that.
  bool minimize = true;

  /// Exhaustively check determinism + completeness after construction.
  bool validate = true;
};

/// A determinized Moore machine in dense letter-table form; the intermediate
/// representation between subset construction and predicate extraction.
/// Exposed for tests and for the minimization ablation bench.
struct MooreTable {
  int num_states = 0;
  int initial = 0;
  int num_letters = 1;                  ///< 1 << atom_pos.size()
  std::vector<Verdict> label;           ///< per state
  std::vector<std::vector<int>> next;   ///< [state][letter] -> state
  std::vector<int> atom_pos;            ///< dense letter bit -> atom id
};

/// Subset-construct the Moore table for `formula` (steps 1-4 above).
MooreTable build_moore_table(const FormulaPtr& formula);

/// Moore-machine minimization by partition refinement (step 5).
MooreTable minimize_moore(const MooreTable& table);

/// Extract conjunctive-predicate transitions from a Moore table (step 6).
MonitorAutomaton monitor_from_table(const MooreTable& table);

/// The whole pipeline.
MonitorAutomaton synthesize_monitor(const FormulaPtr& formula,
                                    const SynthesisOptions& options = {});

/// Convenience: the LTL3 verdict of a finite trace, via a synthesized
/// monitor (Def. 11). Intended for tests and small tools.
Verdict evaluate_ltl3(const FormulaPtr& formula,
                      const std::vector<AtomSet>& trace);

}  // namespace decmon
