// The deterministic LTL3 monitor automaton (Def. 12): a complete Moore
// machine whose states carry verdicts in {TRUE, FALSE, UNKNOWN} and whose
// transitions are guarded by conjunctive global-state predicates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "decmon/automata/guard.hpp"
#include "decmon/ltl/atoms.hpp"

namespace decmon {

/// 3-valued LTL verdict (Def. 11).
enum class Verdict : std::uint8_t {
  kUnknown = 0,  ///< '?': current finite trace decides nothing
  kTrue = 1,     ///< every infinite extension satisfies the property
  kFalse = 2,    ///< every infinite extension violates the property
};

std::string to_string(Verdict v);

/// One monitor transition; `id` is dense across the whole automaton.
struct MonitorTransition {
  int id = -1;
  int from = -1;
  int to = -1;
  Cube guard;

  bool self_loop() const { return from == to; }
};

/// Deterministic, complete Moore machine over global states.
///
/// Determinism and completeness are with respect to the *relevant* atoms
/// (the union of all guard supports): for every state and every assignment
/// of those atoms, exactly one transition matches. `validate()` checks this
/// exhaustively.
class MonitorAutomaton {
 public:
  MonitorAutomaton() = default;

  /// Add a state with the given verdict; returns its index.
  int add_state(Verdict v);

  /// Add a transition; returns its dense id.
  int add_transition(int from, int to, Cube guard);

  int num_states() const { return static_cast<int>(verdicts_.size()); }
  int initial_state() const { return initial_; }
  void set_initial(int q) { initial_ = q; }

  Verdict verdict(int q) const {
    return verdicts_.at(static_cast<std::size_t>(q));
  }
  bool is_final(int q) const { return verdict(q) != Verdict::kUnknown; }

  /// Ids of the transitions leaving state `q` (self-loops included).
  const std::vector<int>& transitions_from(int q) const {
    return out_.at(static_cast<std::size_t>(q));
  }
  const MonitorTransition& transition(int id) const {
    return transitions_.at(static_cast<std::size_t>(id));
  }
  int num_transitions() const { return static_cast<int>(transitions_.size()); }
  const std::vector<MonitorTransition>& transitions() const {
    return transitions_;
  }

  /// Deterministic step: the target of the unique matching transition, or
  /// nullopt when no transition matches (incomplete automaton).
  std::optional<int> step(int q, AtomSet letter) const;

  /// The matching transition itself (nullptr when none matches).
  const MonitorTransition* matching_transition(int q, AtomSet letter) const;

  /// Run the automaton over a finite trace from the initial state.
  /// Precondition: the automaton is complete over the trace's letters.
  int run(const std::vector<AtomSet>& trace) const;

  /// All atoms mentioned by any guard.
  AtomSet relevant_atoms() const;

  // -- statistics reported by Table 5.1 / Fig. 5.1 --
  int count_total() const { return num_transitions(); }
  int count_self_loops() const;
  int count_outgoing() const { return count_total() - count_self_loops(); }

  /// Check determinism + completeness over the relevant atoms. Returns an
  /// error description, or nullopt when valid. Exponential in the number of
  /// relevant atoms; intended for construction-time checks.
  std::optional<std::string> validate() const;

  std::string to_dot(const AtomRegistry* reg = nullptr) const;

 private:
  int initial_ = 0;
  std::vector<Verdict> verdicts_;
  std::vector<std::vector<int>> out_;       ///< per-state transition ids
  std::vector<MonitorTransition> transitions_;
};

}  // namespace decmon
