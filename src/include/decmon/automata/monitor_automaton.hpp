// The deterministic LTL3 monitor automaton (Def. 12): a complete Moore
// machine whose states carry verdicts in {TRUE, FALSE, UNKNOWN} and whose
// transitions are guarded by conjunctive global-state predicates.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "decmon/automata/guard.hpp"
#include "decmon/ltl/atoms.hpp"

namespace decmon {

/// 3-valued LTL verdict (Def. 11).
enum class Verdict : std::uint8_t {
  kUnknown = 0,  ///< '?': current finite trace decides nothing
  kTrue = 1,     ///< every infinite extension satisfies the property
  kFalse = 2,    ///< every infinite extension violates the property
};

std::string to_string(Verdict v);

/// One monitor transition; `id` is dense across the whole automaton.
struct MonitorTransition {
  int id = -1;
  int from = -1;
  int to = -1;
  Cube guard;

  bool self_loop() const { return from == to; }
};

/// Deterministic, complete Moore machine over global states.
///
/// Determinism and completeness are with respect to the *relevant* atoms
/// (the union of all guard supports): for every state and every assignment
/// of those atoms, exactly one transition matches. `validate()` checks this
/// exhaustively.
class MonitorAutomaton {
 public:
  MonitorAutomaton() = default;

  /// Add a state with the given verdict; returns its index.
  int add_state(Verdict v);

  /// Add a transition; returns its dense id.
  int add_transition(int from, int to, Cube guard);

  int num_states() const { return static_cast<int>(verdicts_.size()); }
  int initial_state() const { return initial_; }
  void set_initial(int q) { initial_ = q; }

  Verdict verdict(int q) const {
    return verdicts_.at(static_cast<std::size_t>(q));
  }
  bool is_final(int q) const { return verdict(q) != Verdict::kUnknown; }

  /// Ids of the transitions leaving state `q` (self-loops included).
  const std::vector<int>& transitions_from(int q) const {
    return out_.at(static_cast<std::size_t>(q));
  }
  const MonitorTransition& transition(int id) const {
    return transitions_.at(static_cast<std::size_t>(id));
  }
  int num_transitions() const { return static_cast<int>(transitions_.size()); }
  const std::vector<MonitorTransition>& transitions() const {
    return transitions_;
  }

  /// Deterministic step: the target of the unique matching transition, or
  /// nullopt when no transition matches (incomplete automaton). With the
  /// dispatch table built this is one table lookup -- the target array is
  /// separate from the transition array so stepping loads no transition.
  std::optional<int> step(int q, AtomSet letter) const {
    if (dispatch_built_) {
      const std::int32_t to =
          dispatch_to_[static_cast<std::size_t>(q) << dispatch_bits_ |
                       compress_letter(letter)];
      if (to < 0) return std::nullopt;
      return static_cast<int>(to);
    }
    const MonitorTransition* t = matching_transition_linear(q, letter);
    if (!t) return std::nullopt;
    return t->to;
  }

  /// The matching transition itself (nullptr when none matches). O(1) via
  /// the dense dispatch table once build_dispatch() has run; otherwise the
  /// linear guard scan.
  const MonitorTransition* matching_transition(int q, AtomSet letter) const {
    if (dispatch_built_) {
      const std::int32_t id =
          dispatch_[static_cast<std::size_t>(q) << dispatch_bits_ |
                    compress_letter(letter)];
      return id < 0 ? nullptr : &transitions_[static_cast<std::size_t>(id)];
    }
    return matching_transition_linear(q, letter);
  }

  /// Reference implementation: first transition out of `q` (in insertion
  /// order) whose guard matches. The dispatch table reproduces exactly this;
  /// kept public for the table's cross-check tests.
  const MonitorTransition* matching_transition_linear(int q,
                                                      AtomSet letter) const;

  /// Build the dense (state, letter)-indexed dispatch table. Guard matching
  /// depends only on the relevant atoms, so letters are compressed to their
  /// relevant bits: the table has num_states * 2^k entries. A no-op above
  /// kMaxDispatchAtoms relevant atoms (the linear scan stays in use) and
  /// when already built. Call after the last add_state/add_transition;
  /// mutation invalidates the table. Not thread-safe; the built table is
  /// safe for concurrent readers.
  void build_dispatch();
  bool dispatch_built() const { return dispatch_built_; }

  /// A dispatch table computed ahead of time (tools/decmon_gen emits these
  /// as static arrays in src/generated/). `dispatch`/`dispatch_to` hold
  /// num_states << bits entries each; `atom_pos[b]` is the atom position of
  /// compressed bit b, ascending.
  struct PrebuiltDispatch {
    int bits = 0;
    const std::uint8_t* atom_pos = nullptr;
    const std::int32_t* dispatch = nullptr;
    const std::int32_t* dispatch_to = nullptr;
  };

  /// Install an ahead-of-time dispatch table instead of rebuilding it with
  /// build_dispatch(). The atom positions must be exactly the set bits of
  /// relevant_atoms() in ascending order (throws std::invalid_argument
  /// otherwise); the compression lanes are derived from them, so a table
  /// generated from a structurally identical automaton steps identically.
  /// The table contents themselves are trusted -- the codegen drift CI job
  /// and the structural-equality tests keep them honest.
  void install_dispatch(const PrebuiltDispatch& pre);

  // -- dispatch introspection (codegen + structural-equality tests) --
  int dispatch_bits() const { return dispatch_bits_; }
  const std::vector<std::uint8_t>& dispatch_atom_positions() const {
    return dispatch_atom_pos_;
  }
  const std::vector<std::int32_t>& dispatch_table() const { return dispatch_; }
  const std::vector<std::int32_t>& dispatch_to_table() const {
    return dispatch_to_;
  }

  /// Field-by-field structural identity: states (verdicts + initial),
  /// transitions (dense ids, endpoints, guards, insertion order), and --
  /// when both sides have their dispatch tables built -- the dense tables
  /// themselves. Two structurally identical automata are observationally
  /// indistinguishable to every monitor, on any runtime.
  bool same_structure(const MonitorAutomaton& other) const;

  /// Largest relevant-atom count the dense table is built for (the paper's
  /// properties use <= 2n atoms; 16 caps the table at 64K entries/state).
  static constexpr int kMaxDispatchAtoms = 16;

  /// Run the automaton over a finite trace from the initial state.
  /// Precondition: the automaton is complete over the trace's letters.
  int run(const std::vector<AtomSet>& trace) const;

  /// All atoms mentioned by any guard. O(1): maintained incrementally by
  /// add_transition.
  AtomSet relevant_atoms() const { return relevant_mask_; }

  // -- statistics reported by Table 5.1 / Fig. 5.1 --
  int count_total() const { return num_transitions(); }
  int count_self_loops() const;
  int count_outgoing() const { return count_total() - count_self_loops(); }

  /// Check determinism + completeness over the relevant atoms. Returns an
  /// error description, or nullopt when valid. Exponential in the number of
  /// relevant atoms; intended for construction-time checks.
  std::optional<std::string> validate() const;

  std::string to_dot(const AtomRegistry* reg = nullptr) const;

 private:
  /// Rebuild compress_lanes_ from relevant_mask_ / dispatch_atom_pos_
  /// (shared by build_dispatch and install_dispatch).
  void build_compress_lanes(int k);

  /// Per-byte compression lane: maps one byte of the letter to its packed
  /// relevant bits (a software pext, one lookup per mask-covered byte).
  struct CompressLane {
    std::uint8_t shift = 0;
    std::array<std::uint16_t, 256> table{};
  };

  /// Dense index of `letter` restricted to the relevant atoms (the table's
  /// second key). Bits outside the relevant mask cannot influence any guard,
  /// so dropping them preserves matching semantics exactly. The paper's
  /// properties keep all relevant atoms within one or two bytes, so this is
  /// one or two table lookups.
  std::size_t compress_letter(AtomSet letter) const {
    std::size_t out = 0;
    for (const CompressLane& lane : compress_lanes_) {
      out |= lane.table[(letter >> lane.shift) & 0xFF];
    }
    return out;
  }

  int initial_ = 0;
  std::vector<Verdict> verdicts_;
  std::vector<std::vector<int>> out_;       ///< per-state transition ids
  std::vector<MonitorTransition> transitions_;
  AtomSet relevant_mask_ = 0;  ///< union of guard supports, kept incrementally

  // -- O(1) dispatch (built by build_dispatch) --
  bool dispatch_built_ = false;
  int dispatch_bits_ = 0;                        ///< popcount(relevant_mask_)
  std::vector<std::uint8_t> dispatch_atom_pos_;  ///< bit i <- atom position
  std::vector<CompressLane> compress_lanes_;     ///< bytes the mask covers
  /// [q << dispatch_bits_ | compressed letter] -> transition id (-1 = none).
  std::vector<std::int32_t> dispatch_;
  /// Same indexing -> target state (-1 = none); lets step() skip the
  /// transition-record load entirely.
  std::vector<std::int32_t> dispatch_to_;
};

}  // namespace decmon
