// Static analysis of monitor automata (the paper's future-work item 7.2.2):
// per-state facts that let the runtime monitors prioritize and prune.
//
//   * verdict reachability -- whether TRUE / FALSE states are reachable
//     from each state. A state from which no definite verdict is reachable
//     can never change the outcome: monitors may stop probing there
//     entirely (e.g. the single-state monitor of G F p).
//   * distance to the nearest definite-verdict state -- the paper suggests
//     exploring "the shorter path first"; token routing can prefer
//     transitions whose target is closer to a verdict.
#pragma once

#include <vector>

#include "decmon/automata/monitor_automaton.hpp"

namespace decmon {

struct AutomatonAnalysis {
  /// Per state: can a FALSE-labelled state be reached?
  std::vector<char> can_reach_false;
  /// Per state: can a TRUE-labelled state be reached?
  std::vector<char> can_reach_true;
  /// Per state: edge distance to the nearest definite-verdict state
  /// (0 for final states, kUnreachable when none is reachable).
  std::vector<int> distance_to_verdict;

  static constexpr int kUnreachable = -1;

  /// No definite verdict reachable: the state's '?' can never change.
  bool verdict_settled(int q) const {
    return !can_reach_false[static_cast<std::size_t>(q)] &&
           !can_reach_true[static_cast<std::size_t>(q)];
  }
};

/// Analyze `automaton` (linear in states + transitions).
AutomatonAnalysis analyze_automaton(const MonitorAutomaton& automaton);

/// Monitorability classification (Bauer-Leucker-Schallhart terminology),
/// decided on the monitor automaton's reachable states.
enum class Monitorability {
  /// Only FALSE is ever reachable: pure safety (violations detectable,
  /// satisfaction never declarable). Example: G p.
  kSafety,
  /// Only TRUE is ever reachable: pure co-safety. Example: F p.
  kCoSafety,
  /// Both verdicts occur and every reachable state can still reach one:
  /// monitoring always stays useful. Example: p U q.
  kMonitorable,
  /// Verdicts are possible, but some reachable "ugly" state is settled:
  /// monitoring can become permanently uninformative. Example:
  /// (p U q) || G F r.
  kWeaklyMonitorable,
  /// No finite trace ever produces a verdict. Example: G F p.
  kNonMonitorable,
};

std::string to_string(Monitorability m);

Monitorability classify(const MonitorAutomaton& automaton);

}  // namespace decmon
