// Conjunctive guards (cubes) over atomic propositions.
//
// Every transition of an LTL3 monitor automaton is labelled by a conjunction
// of literals (the paper splits disjunctive predicates into one transition
// per disjunct, §4.1 footnote 1). A cube stores the positive and negative
// literal sets as bitmasks over atom ids.
#pragma once

#include <string>
#include <vector>

#include "decmon/ltl/atoms.hpp"

namespace decmon {

struct Cube {
  AtomSet pos = 0;  ///< atoms that must hold
  AtomSet neg = 0;  ///< atoms that must not hold

  /// Does the assignment `letter` satisfy the cube?
  bool matches(AtomSet letter) const {
    return (letter & pos) == pos && (letter & neg) == 0;
  }

  /// `true` guard (no literals).
  bool is_true() const { return pos == 0 && neg == 0; }

  /// Requires an atom both positively and negatively — unsatisfiable.
  bool contradictory() const { return (pos & neg) != 0; }

  /// All atoms mentioned.
  AtomSet support() const { return pos | neg; }

  /// Number of literals.
  int size() const;

  /// Conjunction of two cubes (may be contradictory).
  static Cube conjoin(const Cube& a, const Cube& b) {
    return Cube{a.pos | b.pos, a.neg | b.neg};
  }

  /// Does every assignment satisfying `*this` also satisfy `other`?
  bool implies(const Cube& other) const {
    return (other.pos & ~pos) == 0 && (other.neg & ~neg) == 0;
  }

  bool operator==(const Cube&) const = default;

  /// Render as "a0 && !a1" (or "true"); names from `reg` if given.
  std::string to_string(const AtomRegistry* reg = nullptr) const;
};

/// The literals of a cube restricted to atoms owned by process `proc`.
Cube restrict_to_process(const Cube& cube, const AtomRegistry& reg, int proc);

/// Do the local values in `letter` (for `proc`-owned atoms) satisfy the
/// `proc`-owned literals of `cube`? Other processes' literals are ignored.
bool locally_satisfied(const Cube& cube, AtomSet letter, AtomSet owned_mask);

}  // namespace decmon
