// Nondeterministic Buchi automata and the GPVW (Gerth-Peled-Vardi-Wolper)
// on-the-fly translation from LTL. This is the front half of the LTL3
// monitor synthesis of Bauer-Leucker-Schallhart [1] used by the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decmon/automata/guard.hpp"
#include "decmon/ltl/formula.hpp"

namespace decmon {

/// Nondeterministic Buchi automaton over the alphabet 2^AP.
///
/// Transitions are guarded by cubes (conjunctions of literals); a letter may
/// enable several transitions. Acceptance is state-based (Buchi).
struct Nba {
  struct Transition {
    int target = -1;
    Cube guard;
  };

  int num_states = 0;
  std::vector<int> initial;                        ///< set of initial states
  std::vector<char> accepting;                     ///< per-state flag
  std::vector<std::vector<Transition>> out;        ///< per-state transitions
  AtomSet atom_mask = 0;                           ///< atoms referenced

  /// States from which some infinite word is accepted (the function F_phi of
  /// the LTL3 construction): the state can reach a nontrivial SCC containing
  /// an accepting state.
  std::vector<char> nonempty_states() const;

  /// Does the automaton accept the lasso word `prefix . loop^omega`?
  /// Exponential in principle but fine for the test-sized inputs; checks
  /// for an accepting cycle in the (state, position) product graph.
  bool accepts_lasso(const std::vector<AtomSet>& prefix,
                     const std::vector<AtomSet>& loop) const;

  /// Set of states reachable from `from` by reading `letter` (one step).
  std::vector<int> step(const std::vector<int>& from, AtomSet letter) const;

  std::string to_dot(const AtomRegistry* reg = nullptr) const;
};

/// Translate an LTL formula to an NBA accepting exactly its models.
/// The formula is converted to negation normal form internally.
Nba ltl_to_nba(const FormulaPtr& formula);

}  // namespace decmon
